//===- tests/TraceSimulatorTest.cpp - Simulator edge-case tests -------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Edge cases for the dynamic C2/C3 verdicts, complementing the cost-model
/// scenarios in SimulatorTest.cpp: the zero-trip optimism of Section 2
/// (a reference backed only by a definition inside a loop that ran zero
/// times is an OptimisticMiss, not a C3 error), a JUMP out of a doubly
/// nested interval (Section 5.3 poisoning must still yield a plan that
/// passes the dynamic checks on every branch outcome), and an item that
/// is produced, stolen by an aliasing definition, and produced again
/// (the re-production is required, so it must not count as O1
/// redundancy).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "comm/CommGen.h"
#include "sim/TraceSimulator.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

/// A definition of distributed x(2) that only executes when the m-loop
/// takes at least one trip, backing a reference after the loop. The
/// solver is optimistic about the trip count (Section 2), so no TAKE is
/// placed for the reference.
const char *ZeroTripDefSource = R"(
distribute x
array w
do k = 1, m
  x(2) = k
enddo
w(1) = x(2)
)";

/// Jump from the innermost body of a depth-2 nest to a loop after it:
/// both enclosing intervals see the JUMP edge and are poisoned.
const char *DoubleNestJumpSource = R"(
distribute x
array a, w, z
do i = 1, n
  do j = 1, n
    w(j) = x(a(j))
    if (t(i)) goto 99
  enddo
enddo
99 do k = 1, n
  z(k) = x(k)
enddo
)";

/// x(5) is taken, a branch arm may redefine it through an indirection
/// (stealing availability at the join), and x(5) is referenced again.
const char *StolenReproducedSource = R"(
distribute x
array a, w, z
w(1) = x(5)
if (t) then
  x(a(1)) = 2
endif
z(1) = x(5)
)";

SimStats run(const char *Source, const SimConfig &C) {
  Pipeline P = Pipeline::fromSource(Source);
  EXPECT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);
  return simulate(P.Prog, Plan, C);
}

} // namespace

//===----------------------------------------------------------------------===//
// Zero-trip producer: OptimisticMiss, not C3.
//===----------------------------------------------------------------------===//

TEST(TraceSimulatorEdge, ZeroTripProducerIsOptimisticMissNotError) {
  SimConfig C;
  C.Params["m"] = 0;
  SimStats S = run(ZeroTripDefSource, C);
  // The defining loop ran zero times, so the reference finds x(2)
  // unavailable — but the item *was* given statically, so this is the
  // documented optimism, not a C3 violation.
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  EXPECT_GE(S.OptimisticMisses, 1u);
}

TEST(TraceSimulatorEdge, OneTripProducerSatisfiesReference) {
  SimConfig C;
  C.Params["m"] = 3;
  SimStats S = run(ZeroTripDefSource, C);
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  EXPECT_EQ(S.OptimisticMisses, 0u);
}

//===----------------------------------------------------------------------===//
// JUMP out of a doubly nested interval.
//===----------------------------------------------------------------------===//

TEST(TraceSimulatorEdge, DoubleNestJumpPlanIsSufficientOnEveryPath) {
  Pipeline P = Pipeline::fromSource(DoubleNestJumpSource);
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);

  // Whether the jump fires on the first inner iteration, late, or never
  // depends on the branch RNG — C3 must hold on every outcome, and the
  // balance check C1 must hold at exit (no dangling receives).
  for (unsigned Seed = 1; Seed <= 6; ++Seed) {
    SimConfig C;
    C.Params["n"] = 5;
    C.BranchSeed = Seed;
    SimStats S = simulate(P.Prog, Plan, C);
    EXPECT_TRUE(S.ok()) << "seed " << Seed << ": "
                        << (S.Errors.empty() ? "" : S.Errors.front());
    EXPECT_GE(S.Messages, 1u) << "seed " << Seed;
    EXPECT_EQ(S.OptimisticMisses, 0u) << "seed " << Seed;
  }

  // Forcing the jump on the very first trip is the harshest path: the
  // inner loop's remaining communication is skipped with it, so the
  // plan must not have pre-received data it never consumes without the
  // simulator accounting it as waste (C2) rather than an error.
  SimConfig Taken;
  Taken.Params["n"] = 5;
  Taken.BranchTrueProb = 1.0;
  SimStats S = simulate(P.Prog, Plan, Taken);
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());

  SimConfig Never;
  Never.Params["n"] = 5;
  Never.BranchTrueProb = 0.0;
  SimStats S2 = simulate(P.Prog, Plan, Never);
  EXPECT_TRUE(S2.ok()) << (S2.Errors.empty() ? "" : S2.Errors.front());
  // The never-taken execution consumes at least as much as the
  // early-exit one.
  EXPECT_GE(S2.Volume, S.Volume);
}

//===----------------------------------------------------------------------===//
// Produced, stolen, produced again.
//===----------------------------------------------------------------------===//

TEST(TraceSimulatorEdge, StolenThenReproducedIsNotRedundant) {
  Pipeline P = Pipeline::fromSource(StolenReproducedSource);
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);

  for (long long Test : {1LL, 0LL}) {
    SimConfig C;
    C.Params["t"] = Test;
    SimStats S = simulate(P.Prog, Plan, C);
    EXPECT_TRUE(S.ok()) << "t=" << Test << ": "
                        << (S.Errors.empty() ? "" : S.Errors.front());
    // The second TAKE of x(5) re-produces an item whose availability was
    // stolen by the aliasing definition — required, hence not O1
    // redundancy, and consumed, hence not C2 waste.
    EXPECT_EQ(S.Redundant, 0u) << "t=" << Test;
    // Both references are satisfied without zero-trip optimism.
    EXPECT_EQ(S.OptimisticMisses, 0u) << "t=" << Test;
  }
}
