//===- tests/ItemClassesTest.cpp - Universe compression tests ---------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The compression layer's soundness rests on a chain of small exact
// claims: the partition groups precisely the items with identical init
// columns, the plans tile both universes without overlap, and the three
// bit-copy primitives agree with a naive per-bit model at every
// alignment. Each claim is tested on its own here; the end-to-end
// byte-identity of compressed solves is enforced by PropertyTest and
// the fuzzer's differential oracle on top.
//
//===----------------------------------------------------------------------===//

#include "support/ItemClasses.h"

#include "TestUtil.h"
#include "dataflow/GiveNTake.h"
#include "interval/IntervalFlowGraph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <random>

using namespace gnt;

namespace {

/// Init rows from a column-per-item spec: Spec[Item] is a 3x2-bit code
/// (take node, give node, steal node presence) — items with equal codes
/// must land in one class.
struct InitRows {
  std::vector<BitVector> Take, Give, Steal;
};

InitRows rowsFromColumns(unsigned Nodes, unsigned Universe,
                         const std::vector<std::array<int, 3>> &Spec) {
  InitRows R;
  R.Take.assign(Nodes, BitVector(Universe));
  R.Give.assign(Nodes, BitVector(Universe));
  R.Steal.assign(Nodes, BitVector(Universe));
  for (unsigned Item = 0; Item != Spec.size(); ++Item) {
    if (Spec[Item][0] >= 0)
      R.Take[Spec[Item][0]].set(Item);
    if (Spec[Item][1] >= 0)
      R.Give[Spec[Item][1]].set(Item);
    if (Spec[Item][2] >= 0)
      R.Steal[Spec[Item][2]].set(Item);
  }
  return R;
}

TEST(ItemClasses, PartitionGroupsIdenticalColumnsExactly) {
  // Items 0 and 3 share a column, 1 and 4 share a column, 2 is unique,
  // 5 is never referenced (trivially bottom).
  InitRows R = rowsFromColumns(3, 6,
                               {{0, 1, -1},
                                {1, -1, 2},
                                {0, 0, 0},
                                {0, 1, -1},
                                {1, -1, 2},
                                {-1, -1, -1}});
  ItemClasses C = computeItemClasses(6, R.Take, R.Give, R.Steal);
  EXPECT_FALSE(C.Aborted);
  EXPECT_EQ(C.Universe, 6u);
  EXPECT_EQ(C.NumClasses, 3u);
  EXPECT_EQ(C.elided(), 1u);
  // First-occurrence numbering: item order fixes class ids.
  EXPECT_EQ(C.ClassOf[0], 0u);
  EXPECT_EQ(C.ClassOf[1], 1u);
  EXPECT_EQ(C.ClassOf[2], 2u);
  EXPECT_EQ(C.ClassOf[3], 0u);
  EXPECT_EQ(C.ClassOf[4], 1u);
  EXPECT_EQ(C.ClassOf[5], ItemClasses::Bottom);
  ASSERT_EQ(C.Representative.size(), 3u);
  EXPECT_EQ(C.Representative[0], 0u);
  EXPECT_EQ(C.Representative[1], 1u);
  EXPECT_EQ(C.Representative[2], 2u);
}

TEST(ItemClasses, EmptyAndAllBottomUniverses) {
  ItemClasses Empty = computeItemClasses(0, {}, {}, {});
  EXPECT_EQ(Empty.NumClasses, 0u);
  EXPECT_FALSE(Empty.profitable());

  // A universe no row ever names: everything elides, zero classes.
  std::vector<BitVector> None(2, BitVector(128));
  ItemClasses C = computeItemClasses(128, None, None, None);
  EXPECT_EQ(C.NumClasses, 0u);
  EXPECT_EQ(C.elided(), 128u);
  EXPECT_TRUE(C.profitable());
  for (unsigned Item = 0; Item != 128; ++Item)
    EXPECT_EQ(C.ClassOf[Item], ItemClasses::Bottom);
}

TEST(ItemClasses, PartitionMatchesBruteForceOnRandomRows) {
  // Differential against the definition: two items are in one class iff
  // their (take, give, steal) columns are bit-identical.
  std::mt19937 Rng(7);
  for (unsigned Round = 0; Round != 20; ++Round) {
    unsigned Nodes = 3 + Rng() % 6;
    unsigned Universe = 1 + Rng() % 200;
    InitRows R = rowsFromColumns(Nodes, Universe, {});
    auto Scatter = [&](std::vector<BitVector> &Rows) {
      for (BitVector &Row : Rows)
        for (unsigned D = 0, E = Rng() % (Universe / 2 + 1); D != E; ++D)
          Row.set(Rng() % Universe);
    };
    Scatter(R.Take);
    Scatter(R.Give);
    Scatter(R.Steal);
    ItemClasses C = computeItemClasses(Universe, R.Take, R.Give, R.Steal);
    auto Column = [&](unsigned Item) {
      std::vector<bool> Col;
      for (const auto *Rows : {&R.Take, &R.Give, &R.Steal})
        for (const BitVector &Row : *Rows)
          Col.push_back(Row.test(Item));
      return Col;
    };
    for (unsigned A = 0; A != Universe; ++A) {
      std::vector<bool> ColA = Column(A);
      bool Bottom = std::none_of(ColA.begin(), ColA.end(),
                                 [](bool Set) { return Set; });
      EXPECT_EQ(C.ClassOf[A] == ItemClasses::Bottom, Bottom) << "item " << A;
      for (unsigned B = A + 1; B != Universe; ++B)
        EXPECT_EQ(C.ClassOf[A] == C.ClassOf[B], ColA == Column(B))
            << "items " << A << "," << B << " round " << Round;
    }
  }
}

TEST(ItemClasses, AbortFiresOnlyAboveThreshold) {
  // 64 items, all columns distinct -> 64 classes.
  InitRows R = rowsFromColumns(64, 64, {});
  for (unsigned Item = 0; Item != 64; ++Item)
    R.Take[Item].set(Item);
  // Threshold at or above the true class count: the monotone live count
  // never crosses it, so the partition must complete un-aborted.
  ItemClasses Full = computeItemClasses(64, R.Take, R.Give, R.Steal, 64);
  EXPECT_FALSE(Full.Aborted);
  EXPECT_EQ(Full.NumClasses, 64u);
  // Threshold below it: the refinement stops early; only the summary
  // fields are meaningful, and the gate reports unprofitable.
  ItemClasses Cut = computeItemClasses(64, R.Take, R.Give, R.Steal, 16);
  EXPECT_TRUE(Cut.Aborted);
  EXPECT_GT(Cut.NumClasses, 16u);
  EXPECT_FALSE(Cut.profitable());
  EXPECT_TRUE(Cut.ClassOf.empty());
  EXPECT_TRUE(Cut.Representative.empty());
}

TEST(ItemClasses, ProfitableGateIsQuarterUniverse) {
  ItemClasses C;
  C.Universe = 128;
  C.NumClasses = 32;
  EXPECT_TRUE(C.profitable());
  C.NumClasses = 33;
  EXPECT_FALSE(C.profitable());
  C.Aborted = true;
  C.NumClasses = 1;
  EXPECT_FALSE(C.profitable());
}

TEST(ItemClasses, ExpandPlanCoversBlockDuplicatedUniverse) {
  // Two identical 64-item blocks then 64 elided items: one class per
  // distinct item, one segment per block, nothing for the elided tail.
  InitRows R = rowsFromColumns(8, 192, {});
  for (unsigned Item = 0; Item != 64; ++Item) {
    R.Take[Item % 8].set(Item);
    R.Take[Item % 8].set(Item + 64);
    R.Give[(Item / 8) % 8].set(Item);
    R.Give[(Item / 8) % 8].set(Item + 64);
  }
  ItemClasses C = computeItemClasses(192, R.Take, R.Give, R.Steal);
  ASSERT_FALSE(C.Aborted);
  EXPECT_EQ(C.NumClasses, 64u); // 8x8 distinct (take, give) pairs.
  EXPECT_EQ(C.elided(), 64u);
  std::vector<ExpandSeg> Plan = buildExpandPlan(C);
  ASSERT_EQ(Plan.size(), 2u);
  EXPECT_EQ(Plan[0].DstBit, 0u);
  EXPECT_EQ(Plan[0].Len, 64u);
  EXPECT_EQ(Plan[1].DstBit, 64u);
  EXPECT_EQ(Plan[1].Len, 64u);
  EXPECT_EQ(Plan[0].SrcBit, Plan[1].SrcBit); // Duplicate blocks share classes.

  // The cover plan reads each class exactly once and tiles the
  // compressed universe contiguously.
  std::vector<ExpandSeg> Cover = buildCoverPlan(Plan);
  unsigned Next = 0;
  for (const ExpandSeg &S : Cover) {
    EXPECT_EQ(S.SrcBit, Next);
    Next += S.Len;
  }
  EXPECT_EQ(Next, C.NumClasses);
}

TEST(ItemClasses, CompressExpandRoundTripsInitRows) {
  // Compressing an init row through the cover plan and expanding it
  // back must reproduce the row exactly: items in one class carry equal
  // bits in every init row by construction.
  std::mt19937 Rng(11);
  for (unsigned Round = 0; Round != 10; ++Round) {
    unsigned Universe = 65 + Rng() % 300;
    InitRows R = rowsFromColumns(5, Universe, {});
    for (unsigned Item = 0; Item != Universe; ++Item) {
      if (Rng() % 4 == 0)
        continue; // Leave some items bottom.
      R.Take[Rng() % 3].set(Item);
      if (Rng() % 2)
        R.Give[Rng() % 5].set(Item);
    }
    ItemClasses C = computeItemClasses(Universe, R.Take, R.Give, R.Steal);
    ASSERT_FALSE(C.Aborted);
    std::vector<ExpandSeg> Plan = buildExpandPlan(C);
    std::vector<ExpandSeg> Cover = buildCoverPlan(Plan);
    unsigned DstWords = (Universe + BitVector::WordBits - 1) /
                        BitVector::WordBits;
    unsigned SrcWords =
        (C.NumClasses + BitVector::WordBits - 1) / BitVector::WordBits;
    for (const auto *Rows : {&R.Take, &R.Give, &R.Steal})
      for (const BitVector &Row : *Rows) {
        BitVector Narrow(std::max(C.NumClasses, 1u));
        for (const ExpandSeg &S : Cover)
          orCopyBits(Narrow.wordsData(), S.SrcBit, Row.words(), S.DstBit,
                     S.Len);
        std::vector<BitVector::Word> Out(DstWords, ~BitVector::Word(0));
        expandRow(Out.data(), DstWords, Narrow.words(),
                  std::max(SrcWords, 1u), Plan);
        EXPECT_EQ(BitVector::fromWords(Out.data(), Universe), Row)
            << "round " << Round;
      }
  }
}

//===----------------------------------------------------------------------===//
// Bit-copy primitives vs a per-bit model
//===----------------------------------------------------------------------===//

using Word = BitVector::Word;

std::vector<Word> randomWords(std::mt19937 &Rng, unsigned N) {
  std::vector<Word> W(N);
  for (Word &V : W)
    V = (Word(Rng()) << 32) | Rng();
  return W;
}

bool bitOf(const std::vector<Word> &W, unsigned Bit) {
  return (W[Bit / 64] >> (Bit % 64)) & 1;
}

TEST(ItemClasses, OrCopyBitsMatchesPerBitModel) {
  std::mt19937 Rng(3);
  for (unsigned Round = 0; Round != 200; ++Round) {
    unsigned SrcBit = Rng() % 150;
    unsigned DstBit = Rng() % 150;
    unsigned Len = Rng() % 150;
    std::vector<Word> Src = randomWords(Rng, 6);
    std::vector<Word> Dst = randomWords(Rng, 6);
    std::vector<Word> Want = Dst;
    for (unsigned K = 0; K != Len; ++K)
      if (bitOf(Src, SrcBit + K))
        Want[(DstBit + K) / 64] |= Word(1) << ((DstBit + K) % 64);
    orCopyBits(Dst.data(), DstBit, Src.data(), SrcBit, Len);
    EXPECT_EQ(Dst, Want) << "round " << Round << " src@" << SrcBit << " dst@"
                         << DstBit << " len " << Len;
  }
}

TEST(ItemClasses, CopyAndZeroBitsHonorTheTilingContract) {
  // copyBits/zeroBits promise: bits below DstBit survive, the target
  // range is exact, bits above it in the last touched word are
  // unspecified. Model that by comparing only bits < DstBit + Len and
  // the untouched whole words after.
  std::mt19937 Rng(5);
  for (unsigned Round = 0; Round != 200; ++Round) {
    unsigned SrcBit = Rng() % 150;
    unsigned DstBit = Rng() % 150;
    unsigned Len = 1 + Rng() % 150;
    std::vector<Word> Src = randomWords(Rng, 6);
    std::vector<Word> Dst = randomWords(Rng, 8);
    std::vector<Word> Before = Dst;
    copyBits(Dst.data(), DstBit, Src.data(), SrcBit, 6, Len);
    for (unsigned Bit = 0; Bit != DstBit; ++Bit)
      EXPECT_EQ(bitOf(Dst, Bit), bitOf(Before, Bit)) << Round << " bit " << Bit;
    for (unsigned K = 0; K != Len; ++K)
      EXPECT_EQ(bitOf(Dst, DstBit + K), bitOf(Src, SrcBit + K))
          << Round << " len-bit " << K;
    for (unsigned W = (DstBit + Len + 63) / 64; W != 8; ++W)
      EXPECT_EQ(Dst[W], Before[W]) << Round << " word " << W;

    Dst = randomWords(Rng, 8);
    Before = Dst;
    zeroBits(Dst.data(), DstBit, Len);
    for (unsigned Bit = 0; Bit != DstBit; ++Bit)
      EXPECT_EQ(bitOf(Dst, Bit), bitOf(Before, Bit)) << Round << " bit " << Bit;
    for (unsigned K = 0; K != Len; ++K)
      EXPECT_FALSE(bitOf(Dst, DstBit + K)) << Round << " len-bit " << K;
    for (unsigned W = (DstBit + Len + 63) / 64; W != 8; ++W)
      EXPECT_EQ(Dst[W], Before[W]) << Round << " word " << W;
  }
}

//===----------------------------------------------------------------------===//
// Compiled whole-word expansion program
//===----------------------------------------------------------------------===//

TEST(ItemClasses, WordPlanCompilesOnlyAlignedSegments) {
  // Aligned plan: ops must tile [0, DstWords) exactly once, in order.
  std::vector<ExpandSeg> Aligned = {{64, 0, 128}, {256, 0, 128}};
  std::vector<ExpandWordOp> Ops = compileExpandWordPlan(Aligned, 8);
  ASSERT_FALSE(Ops.empty());
  unsigned Cursor = 0;
  for (const ExpandWordOp &Op : Ops) {
    EXPECT_EQ(Op.DstWord, Cursor);
    Cursor += Op.NumWords;
  }
  EXPECT_EQ(Cursor, 8u);

  // Any unaligned boundary disables compilation (bit-granular fallback).
  for (std::vector<ExpandSeg> Bad :
       {std::vector<ExpandSeg>{{1, 0, 64}}, std::vector<ExpandSeg>{{0, 1, 64}},
        std::vector<ExpandSeg>{{0, 0, 63}}})
    EXPECT_TRUE(compileExpandWordPlan(Bad, 4).empty());
}

TEST(ItemClasses, ExpandRowWordsMatchesExpandRow) {
  std::mt19937 Rng(13);
  // Opaque to the optimizer: keeps GCC from "proving" the (unreachable
  // at these sizes) long-copy memcpy path out of bounds and warning.
  volatile unsigned EightWords = 8;
  const unsigned DW = EightWords;
  for (unsigned Round = 0; Round != 50; ++Round) {
    // Random word-aligned plan over a DW-word destination.
    std::vector<ExpandSeg> Plan;
    unsigned Dst = 0, Src = 0;
    while (Dst < DW) {
      if (Rng() % 3 == 0) {
        ++Dst; // Gap (elided words).
        continue;
      }
      unsigned Len = 1 + Rng() % (DW - Dst);
      unsigned From = Src ? Rng() % Src + 1 : 0;
      Plan.push_back({Dst * 64, (Src - From) * 64, Len * 64});
      Dst += Len;
      Src = std::max(Src, Src - From + Len);
    }
    std::vector<ExpandWordOp> Ops = compileExpandWordPlan(Plan, DW);
    ASSERT_FALSE(Ops.empty()) << "round " << Round;
    std::vector<Word> SrcRow = randomWords(Rng, std::max(Src, 1u));
    if (Round % 5 == 0)
      std::fill(SrcRow.begin(), SrcRow.end(), 0); // All-bottom fast path.
    std::vector<Word> A(DW, ~Word(0)), B(DW, Word(0xdeadbeef));
    expandRow(A.data(), DW, SrcRow.data(), std::max(Src, 1u), Plan);
    expandRowWords(B.data(), DW, SrcRow.data(), std::max(Src, 1u), Ops);
    EXPECT_EQ(A, B) << "round " << Round;
  }
}

//===----------------------------------------------------------------------===//
// Solver integration: the compressed entry point end to end
//===----------------------------------------------------------------------===//

/// Straight-line graph, enough to drive the solver.
IntervalFlowGraph lineGraph() {
  auto P = test::Pipeline::fromSource("continue\ncontinue\ncontinue\n");
  EXPECT_TRUE(P.Ifg.has_value());
  return std::move(*P.Ifg);
}

TEST(ItemClasses, CompressedSolveAppliesAndMatchesPlain) {
  IntervalFlowGraph Ifg = lineGraph();
  unsigned N = Ifg.size();
  ASSERT_GE(N, 5u);
  // 1024 items: the first 512 are a 64-item block of pairwise-distinct
  // columns duplicated 8 times (so classes stay consecutive and the
  // plan is one long segment per block); the last 512 never appear.
  GntProblem P(N, 1024);
  for (unsigned Item = 0; Item != 512; ++Item) {
    unsigned B = Item % 64; // Injective code for B < 125 over 5 nodes.
    P.TakeInit[B % 5].set(Item);
    P.GiveInit[(B / 5) % 5].set(Item);
    P.StealInit[(B / 25) % 5].set(Item);
  }
  GntResult Plain = solveGiveNTake(Ifg, P);
  GntResult Comp = solveGiveNTakeCompressed(Ifg, P);
  EXPECT_TRUE(Comp.Compression.Applied);
  EXPECT_EQ(Comp.Compression.Universe, 1024u);
  EXPECT_EQ(Comp.Compression.Classes, 64u);
  EXPECT_EQ(Comp.Compression.Elided, 512u);
  forEachGntField(Plain, [&](const char *Name,
                             const std::vector<BitVector> &Want) {
    forEachGntField(Comp, [&](const char *OtherName,
                              const std::vector<BitVector> &Got) {
      if (std::string(Name) != OtherName)
        return;
      ASSERT_EQ(Want.size(), Got.size()) << Name;
      for (unsigned Node = 0; Node != Want.size(); ++Node)
        EXPECT_TRUE(Want[Node] == Got[Node]) << Name << " node " << Node;
    });
  });
}

TEST(ItemClasses, IncompressibleSolveFallsBackWithStats) {
  IntervalFlowGraph Ifg = lineGraph();
  unsigned N = Ifg.size();
  GntProblem P(N, 256);
  // All columns distinct: the gate must reject and fall back, still
  // reporting the partition numbers with Applied == false.
  for (unsigned Item = 0; Item != 256; ++Item) {
    P.TakeInit[Item % N].set(Item);
    P.GiveInit[(Item / N) % N].set(Item);
  }
  GntResult Plain = solveGiveNTake(Ifg, P);
  GntResult Comp = solveGiveNTakeCompressed(Ifg, P);
  EXPECT_FALSE(Comp.Compression.Applied);
  EXPECT_EQ(Comp.Compression.Universe, 256u);
  forEachGntField(Plain, [&](const char *Name,
                             const std::vector<BitVector> &Want) {
    forEachGntField(Comp, [&](const char *OtherName,
                              const std::vector<BitVector> &Got) {
      if (std::string(Name) != OtherName)
        return;
      for (unsigned Node = 0; Node != Want.size(); ++Node)
        EXPECT_TRUE(Want[Node] == Got[Node]) << Name << " node " << Node;
    });
  });
}

TEST(ItemClasses, AllBottomUniverseSolvesWithoutWork) {
  IntervalFlowGraph Ifg = lineGraph();
  GntProblem P(Ifg.size(), 1024); // No init bit anywhere.
  GntResult R = solveGiveNTakeCompressed(Ifg, P);
  EXPECT_TRUE(R.Compression.Applied);
  EXPECT_EQ(R.Compression.Classes, 0u);
  EXPECT_EQ(R.Compression.Elided, 1024u);
  forEachGntField(R, [&](const char *Name, const std::vector<BitVector> &V) {
    for (unsigned Node = 0; Node != V.size(); ++Node)
      EXPECT_TRUE(V[Node].none()) << Name << " node " << Node;
  });
}

} // namespace
