//===- tests/DataflowMatrixTest.cpp - Flat bit-set arena tests --------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/DataflowMatrix.h"

#include "TestUtil.h"
#include "dataflow/GiveNTake.h"

#include <gtest/gtest.h>

using namespace gnt;

TEST(DataflowMatrix, EmptyAndShape) {
  DataflowMatrix Empty;
  EXPECT_EQ(Empty.rows(), 0u);
  EXPECT_EQ(Empty.bits(), 0u);
  EXPECT_EQ(Empty.wordsPerRow(), 0u);

  DataflowMatrix M(5, 130);
  EXPECT_EQ(M.rows(), 5u);
  EXPECT_EQ(M.bits(), 130u);
  EXPECT_EQ(M.wordsPerRow(), 3u);
  for (unsigned R = 0; R != 5; ++R)
    EXPECT_TRUE(M.rowNone(R)) << "row " << R;
}

TEST(DataflowMatrix, AssignExtractRoundTrip) {
  for (unsigned Bits : {1u, 63u, 64u, 65u, 200u}) {
    DataflowMatrix M(3, Bits);
    BitVector V(Bits);
    for (unsigned I = 0; I < Bits; I += 5)
      V.set(I);
    M.assignRow(1, V);
    EXPECT_EQ(M.extractRow(1), V) << "bits " << Bits;
    EXPECT_TRUE(M.rowNone(0)) << "bits " << Bits;
    EXPECT_TRUE(M.rowNone(2)) << "bits " << Bits;
    EXPECT_FALSE(M.rowNone(1)) << "bits " << Bits;
  }
}

TEST(DataflowMatrix, SetRowRespectsTailMask) {
  for (unsigned Bits : {1u, 63u, 64u, 65u, 130u}) {
    DataflowMatrix M(2, Bits);
    M.setRow(0);
    BitVector Row = M.extractRow(0);
    EXPECT_EQ(Row.count(), Bits) << "bits " << Bits;
    // The raw tail word must not carry bits past Bits: extractRow
    // masking would hide them, so check the words directly.
    const DataflowMatrix::Word *W = M.row(0);
    EXPECT_EQ(W[M.wordsPerRow() - 1] & ~M.tailMask(), 0u) << "bits " << Bits;
    EXPECT_TRUE(M.rowNone(1)) << "bits " << Bits;
  }
}

TEST(DataflowMatrix, TailMaskValues) {
  EXPECT_EQ(DataflowMatrix(1, 64).tailMask(), ~DataflowMatrix::Word(0));
  EXPECT_EQ(DataflowMatrix(1, 1).tailMask(), DataflowMatrix::Word(1));
  EXPECT_EQ(DataflowMatrix(1, 65).tailMask(), DataflowMatrix::Word(1));
  EXPECT_EQ(DataflowMatrix(1, 63).tailMask(),
            ~DataflowMatrix::Word(0) >> 1);
}

TEST(DataflowMatrix, ClearZeroesEverything) {
  DataflowMatrix M(4, 70);
  for (unsigned R = 0; R != 4; ++R)
    M.setRow(R);
  M.clear();
  for (unsigned R = 0; R != 4; ++R)
    EXPECT_TRUE(M.rowNone(R)) << "row " << R;
}

TEST(DataflowMatrix, UninitArenaIsUsableOnceEveryRowIsWritten) {
  // The Uninit tag's contract: rows hold garbage until assigned, and a
  // writer that assigns (or zeroes) every row gets a fully defined
  // matrix with the tail-word invariant intact. This is the pattern of
  // both the solver export and the compressed-expansion path.
  for (unsigned Bits : {1u, 63u, 64u, 65u, 130u, 200u}) {
    DataflowMatrix M(6, Bits, DataflowMatrix::Uninit);
    BitVector Odd(Bits);
    for (unsigned I = 1; I < Bits; I += 2)
      Odd.set(I);
    for (unsigned R = 0; R != 6; ++R) {
      if (R % 2)
        M.assignRow(R, Odd);
      else
        M.setRow(R);
    }
    for (unsigned R = 0; R != 6; ++R) {
      BitVector Row = M.extractRow(R);
      EXPECT_EQ(Row.count(), R % 2 ? Odd.count() : Bits)
          << "bits " << Bits << " row " << R;
      const DataflowMatrix::Word *W = M.row(R);
      EXPECT_EQ(W[M.wordsPerRow() - 1] & ~M.tailMask(), 0u)
          << "bits " << Bits << " row " << R;
    }
  }
}

TEST(DataflowMatrix, LazyZeroedReadsAsZeroAndAcceptsWrites) {
  // The lazily zeroed arena must be indistinguishable from an eagerly
  // cleared one: all-zero rows on first read (at widths exercising the
  // tail word both full and partial), and ordinary writes afterwards.
  for (unsigned Bits : {1u, 63u, 64u, 65u, 130u, 4096u}) {
    DataflowMatrix M(4, Bits, DataflowMatrix::LazyZeroed);
    for (unsigned R = 0; R != 4; ++R)
      EXPECT_TRUE(M.rowNone(R)) << "bits " << Bits << " row " << R;
    M.setRow(2);
    EXPECT_EQ(M.extractRow(2).count(), Bits) << "bits " << Bits;
    EXPECT_TRUE(M.rowNone(1)) << "bits " << Bits;
    EXPECT_TRUE(M.rowNone(3)) << "bits " << Bits;
  }
}

TEST(DataflowMatrix, MoveTransfersMappedStorage) {
  DataflowMatrix A(3, 4096, DataflowMatrix::LazyZeroed);
  A.setRow(1);
  DataflowMatrix B(std::move(A));
  EXPECT_EQ(B.extractRow(1).count(), 4096u);
  EXPECT_TRUE(B.rowNone(0));
  DataflowMatrix C;
  C = std::move(B);
  EXPECT_EQ(C.extractRow(1).count(), 4096u);
  EXPECT_TRUE(C.rowNone(2));
}

TEST(DataflowMatrix, GntResultCopyOutlivesItsArena) {
  // The solver's result vectors borrow their words from the arena the
  // GntResult keeps alive; copying a result must deep-copy into owned
  // storage so the copy survives the original (and its arena) being
  // destroyed. A use-after-free here is exactly what ASan builds of
  // this test would catch.
  auto P = test::Pipeline::fromSource("continue\ncontinue\n");
  ASSERT_TRUE(P.Ifg.has_value());
  unsigned N = P.Ifg->size();
  GntProblem Prob(N, 130); // Partial tail word.
  for (unsigned Item = 0; Item != 130; ++Item) {
    Prob.TakeInit[Item % N].set(Item);
    if (Item % 3 == 0)
      Prob.GiveInit[(Item / N) % N].set(Item);
  }
  GntResult Copy;
  BitVector TakeAtOne;
  {
    GntResult R = solveGiveNTake(*P.Ifg, Prob);
    ASSERT_NE(R.Arena, nullptr);
    TakeAtOne = BitVector::fromWords(R.Take[1].words(), R.Take[1].size());
    Copy = R;           // Deep copy: every BitVector now owns its words.
    Copy.Arena.reset(); // Drop the copied keep-alive handle on purpose.
  }                     // Original result and the arena die here.
  ASSERT_EQ(Copy.Take.size(), TakeAtOne.size() ? Copy.Take.size() : 0u);
  EXPECT_EQ(Copy.Take[1], TakeAtOne);
  forEachGntField(Copy, [&](const char *Name,
                            const std::vector<BitVector> &V) {
    for (const BitVector &BV : V) {
      EXPECT_EQ(BV.size(), 130u) << Name;
      (void)BV.count(); // Touch every word: must be owned storage.
    }
  });
}

TEST(DataflowMatrix, RowsAreIndependent) {
  // Adjacent rows share the allocation; writes through row pointers
  // must stay within their own row.
  DataflowMatrix M(3, 65);
  M.setRow(1);
  DataflowMatrix::Word *Mid = M.row(1);
  Mid[0] = 0; // Partial clear through the raw pointer.
  EXPECT_TRUE(M.rowNone(0));
  EXPECT_TRUE(M.rowNone(2));
  EXPECT_EQ(M.extractRow(1).count(), 1u); // Only bit 64 survives.
  EXPECT_TRUE(M.extractRow(1).test(64));
}
