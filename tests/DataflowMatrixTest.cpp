//===- tests/DataflowMatrixTest.cpp - Flat bit-set arena tests --------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/DataflowMatrix.h"

#include <gtest/gtest.h>

using namespace gnt;

TEST(DataflowMatrix, EmptyAndShape) {
  DataflowMatrix Empty;
  EXPECT_EQ(Empty.rows(), 0u);
  EXPECT_EQ(Empty.bits(), 0u);
  EXPECT_EQ(Empty.wordsPerRow(), 0u);

  DataflowMatrix M(5, 130);
  EXPECT_EQ(M.rows(), 5u);
  EXPECT_EQ(M.bits(), 130u);
  EXPECT_EQ(M.wordsPerRow(), 3u);
  for (unsigned R = 0; R != 5; ++R)
    EXPECT_TRUE(M.rowNone(R)) << "row " << R;
}

TEST(DataflowMatrix, AssignExtractRoundTrip) {
  for (unsigned Bits : {1u, 63u, 64u, 65u, 200u}) {
    DataflowMatrix M(3, Bits);
    BitVector V(Bits);
    for (unsigned I = 0; I < Bits; I += 5)
      V.set(I);
    M.assignRow(1, V);
    EXPECT_EQ(M.extractRow(1), V) << "bits " << Bits;
    EXPECT_TRUE(M.rowNone(0)) << "bits " << Bits;
    EXPECT_TRUE(M.rowNone(2)) << "bits " << Bits;
    EXPECT_FALSE(M.rowNone(1)) << "bits " << Bits;
  }
}

TEST(DataflowMatrix, SetRowRespectsTailMask) {
  for (unsigned Bits : {1u, 63u, 64u, 65u, 130u}) {
    DataflowMatrix M(2, Bits);
    M.setRow(0);
    BitVector Row = M.extractRow(0);
    EXPECT_EQ(Row.count(), Bits) << "bits " << Bits;
    // The raw tail word must not carry bits past Bits: extractRow
    // masking would hide them, so check the words directly.
    const DataflowMatrix::Word *W = M.row(0);
    EXPECT_EQ(W[M.wordsPerRow() - 1] & ~M.tailMask(), 0u) << "bits " << Bits;
    EXPECT_TRUE(M.rowNone(1)) << "bits " << Bits;
  }
}

TEST(DataflowMatrix, TailMaskValues) {
  EXPECT_EQ(DataflowMatrix(1, 64).tailMask(), ~DataflowMatrix::Word(0));
  EXPECT_EQ(DataflowMatrix(1, 1).tailMask(), DataflowMatrix::Word(1));
  EXPECT_EQ(DataflowMatrix(1, 65).tailMask(), DataflowMatrix::Word(1));
  EXPECT_EQ(DataflowMatrix(1, 63).tailMask(),
            ~DataflowMatrix::Word(0) >> 1);
}

TEST(DataflowMatrix, ClearZeroesEverything) {
  DataflowMatrix M(4, 70);
  for (unsigned R = 0; R != 4; ++R)
    M.setRow(R);
  M.clear();
  for (unsigned R = 0; R != 4; ++R)
    EXPECT_TRUE(M.rowNone(R)) << "row " << R;
}

TEST(DataflowMatrix, RowsAreIndependent) {
  // Adjacent rows share the allocation; writes through row pointers
  // must stay within their own row.
  DataflowMatrix M(3, 65);
  M.setRow(1);
  DataflowMatrix::Word *Mid = M.row(1);
  Mid[0] = 0; // Partial clear through the raw pointer.
  EXPECT_TRUE(M.rowNone(0));
  EXPECT_TRUE(M.rowNone(2));
  EXPECT_EQ(M.extractRow(1).count(), 1u); // Only bit 64 survives.
  EXPECT_TRUE(M.extractRow(1).test(64));
}
