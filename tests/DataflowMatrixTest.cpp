//===- tests/DataflowMatrixTest.cpp - Flat bit-set arena tests --------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/DataflowMatrix.h"

#include "TestUtil.h"
#include "dataflow/GiveNTake.h"

#include <gtest/gtest.h>

#include <cstdint>

using namespace gnt;

TEST(DataflowMatrix, EmptyAndShape) {
  DataflowMatrix Empty;
  EXPECT_EQ(Empty.rows(), 0u);
  EXPECT_EQ(Empty.bits(), 0u);
  EXPECT_EQ(Empty.wordsPerRow(), 0u);

  DataflowMatrix M(5, 130);
  EXPECT_EQ(M.rows(), 5u);
  EXPECT_EQ(M.bits(), 130u);
  EXPECT_EQ(M.wordsPerRow(), 3u);
  for (unsigned R = 0; R != 5; ++R)
    EXPECT_TRUE(M.rowNone(R)) << "row " << R;
}

TEST(DataflowMatrix, AssignExtractRoundTrip) {
  for (unsigned Bits : {1u, 63u, 64u, 65u, 200u}) {
    DataflowMatrix M(3, Bits);
    BitVector V(Bits);
    for (unsigned I = 0; I < Bits; I += 5)
      V.set(I);
    M.assignRow(1, V);
    EXPECT_EQ(M.extractRow(1), V) << "bits " << Bits;
    EXPECT_TRUE(M.rowNone(0)) << "bits " << Bits;
    EXPECT_TRUE(M.rowNone(2)) << "bits " << Bits;
    EXPECT_FALSE(M.rowNone(1)) << "bits " << Bits;
  }
}

TEST(DataflowMatrix, SetRowRespectsTailMask) {
  for (unsigned Bits : {1u, 63u, 64u, 65u, 130u}) {
    DataflowMatrix M(2, Bits);
    M.setRow(0);
    BitVector Row = M.extractRow(0);
    EXPECT_EQ(Row.count(), Bits) << "bits " << Bits;
    // The raw tail word must not carry bits past Bits: extractRow
    // masking would hide them, so check the words directly.
    const DataflowMatrix::Word *W = M.row(0);
    EXPECT_EQ(W[M.wordsPerRow() - 1] & ~M.tailMask(), 0u) << "bits " << Bits;
    EXPECT_TRUE(M.rowNone(1)) << "bits " << Bits;
  }
}

TEST(DataflowMatrix, TailMaskValues) {
  EXPECT_EQ(DataflowMatrix(1, 64).tailMask(), ~DataflowMatrix::Word(0));
  EXPECT_EQ(DataflowMatrix(1, 1).tailMask(), DataflowMatrix::Word(1));
  EXPECT_EQ(DataflowMatrix(1, 65).tailMask(), DataflowMatrix::Word(1));
  EXPECT_EQ(DataflowMatrix(1, 63).tailMask(),
            ~DataflowMatrix::Word(0) >> 1);
}

TEST(DataflowMatrix, ClearZeroesEverything) {
  DataflowMatrix M(4, 70);
  for (unsigned R = 0; R != 4; ++R)
    M.setRow(R);
  M.clear();
  for (unsigned R = 0; R != 4; ++R)
    EXPECT_TRUE(M.rowNone(R)) << "row " << R;
}

TEST(DataflowMatrix, UninitArenaIsUsableOnceEveryRowIsWritten) {
  // The Uninit tag's contract: rows hold garbage until assigned, and a
  // writer that assigns (or zeroes) every row gets a fully defined
  // matrix with the tail-word invariant intact. This is the pattern of
  // both the solver export and the compressed-expansion path.
  for (unsigned Bits : {1u, 63u, 64u, 65u, 130u, 200u}) {
    DataflowMatrix M(6, Bits, DataflowMatrix::Uninit);
    BitVector Odd(Bits);
    for (unsigned I = 1; I < Bits; I += 2)
      Odd.set(I);
    for (unsigned R = 0; R != 6; ++R) {
      if (R % 2)
        M.assignRow(R, Odd);
      else
        M.setRow(R);
    }
    for (unsigned R = 0; R != 6; ++R) {
      BitVector Row = M.extractRow(R);
      EXPECT_EQ(Row.count(), R % 2 ? Odd.count() : Bits)
          << "bits " << Bits << " row " << R;
      const DataflowMatrix::Word *W = M.row(R);
      EXPECT_EQ(W[M.wordsPerRow() - 1] & ~M.tailMask(), 0u)
          << "bits " << Bits << " row " << R;
    }
  }
}

TEST(DataflowMatrix, LazyZeroedReadsAsZeroAndAcceptsWrites) {
  // The lazily zeroed arena must be indistinguishable from an eagerly
  // cleared one: all-zero rows on first read (at widths exercising the
  // tail word both full and partial), and ordinary writes afterwards.
  for (unsigned Bits : {1u, 63u, 64u, 65u, 130u, 4096u}) {
    DataflowMatrix M(4, Bits, DataflowMatrix::LazyZeroed);
    for (unsigned R = 0; R != 4; ++R)
      EXPECT_TRUE(M.rowNone(R)) << "bits " << Bits << " row " << R;
    M.setRow(2);
    EXPECT_EQ(M.extractRow(2).count(), Bits) << "bits " << Bits;
    EXPECT_TRUE(M.rowNone(1)) << "bits " << Bits;
    EXPECT_TRUE(M.rowNone(3)) << "bits " << Bits;
  }
}

TEST(DataflowMatrix, MoveTransfersMappedStorage) {
  DataflowMatrix A(3, 4096, DataflowMatrix::LazyZeroed);
  A.setRow(1);
  DataflowMatrix B(std::move(A));
  EXPECT_EQ(B.extractRow(1).count(), 4096u);
  EXPECT_TRUE(B.rowNone(0));
  DataflowMatrix C;
  C = std::move(B);
  EXPECT_EQ(C.extractRow(1).count(), 4096u);
  EXPECT_TRUE(C.rowNone(2));
}

TEST(DataflowMatrix, GntResultCopyOutlivesItsArena) {
  // The solver's result vectors borrow their words from the arena the
  // GntResult keeps alive; copying a result must deep-copy into owned
  // storage so the copy survives the original (and its arena) being
  // destroyed. A use-after-free here is exactly what ASan builds of
  // this test would catch.
  auto P = test::Pipeline::fromSource("continue\ncontinue\n");
  ASSERT_TRUE(P.Ifg.has_value());
  unsigned N = P.Ifg->size();
  GntProblem Prob(N, 130); // Partial tail word.
  for (unsigned Item = 0; Item != 130; ++Item) {
    Prob.TakeInit[Item % N].set(Item);
    if (Item % 3 == 0)
      Prob.GiveInit[(Item / N) % N].set(Item);
  }
  GntResult Copy;
  BitVector TakeAtOne;
  {
    GntResult R = solveGiveNTake(*P.Ifg, Prob);
    ASSERT_NE(R.Arena, nullptr);
    TakeAtOne = BitVector::fromWords(R.Take[1].words(), R.Take[1].size());
    Copy = R;           // Deep copy: every BitVector now owns its words.
    Copy.Arena.reset(); // Drop the copied keep-alive handle on purpose.
  }                     // Original result and the arena die here.
  ASSERT_EQ(Copy.Take.size(), TakeAtOne.size() ? Copy.Take.size() : 0u);
  EXPECT_EQ(Copy.Take[1], TakeAtOne);
  forEachGntField(Copy, [&](const char *Name,
                            const std::vector<BitVector> &V) {
    for (const BitVector &BV : V) {
      EXPECT_EQ(BV.size(), 130u) << Name;
      (void)BV.count(); // Touch every word: must be owned storage.
    }
  });
}

TEST(DataflowMatrix, RowsAreLaneAlignedAndStridePadded) {
  // The SIMD alignment contract (support/SimdKernels.h): base and every
  // row start on a 64-byte boundary, and the stride is the word count
  // rounded up to a lane multiple — so a 512-bit load of a row's last
  // words never straddles into the next row.
  for (unsigned Bits : {1u, 63u, 64u, 65u, 130u, 512u, 513u}) {
    DataflowMatrix M(5, Bits);
    EXPECT_EQ(M.rowStride() % DataflowMatrix::LaneWords, 0u)
        << "bits " << Bits;
    EXPECT_GE(M.rowStride(), M.wordsPerRow()) << "bits " << Bits;
    EXPECT_LT(M.rowStride(), M.wordsPerRow() + DataflowMatrix::LaneWords)
        << "bits " << Bits;
    EXPECT_EQ(M.storageWords(),
              static_cast<std::size_t>(M.rows()) * M.rowStride())
        << "bits " << Bits;
    for (unsigned R = 0; R != 5; ++R)
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(M.row(R)) %
                    DataflowMatrix::LaneBytes,
                0u)
          << "bits " << Bits << " row " << R;
  }
}

TEST(DataflowMatrix, PaddingNeverLeaksIntoExports) {
  // Fill the padding words behind every row with garbage through the
  // raw stride, then check that extraction, comparison, and the
  // exportability probe see only the data words. This is the
  // tail-word/padding contract borrowWords exports rely on.
  for (unsigned Bits : {1u, 63u, 65u, 130u}) {
    DataflowMatrix M(3, Bits);
    BitVector V(Bits);
    for (unsigned I = 0; I < Bits; I += 3)
      V.set(I);
    for (unsigned R = 0; R != 3; ++R)
      M.assignRow(R, V);
    for (unsigned R = 0; R != 3; ++R) {
      DataflowMatrix::Word *Row = M.row(R);
      for (unsigned W = M.wordsPerRow(); W != M.rowStride(); ++W)
        Row[W] = ~DataflowMatrix::Word(0);
    }
    EXPECT_TRUE(M.rowsExportable()) << "bits " << Bits;
    for (unsigned R = 0; R != 3; ++R) {
      EXPECT_EQ(M.extractRow(R), V) << "bits " << Bits << " row " << R;
      BitVector Borrowed = BitVector::borrowWords(M.row(R), Bits);
      EXPECT_EQ(Borrowed.count(), V.count()) << "bits " << Bits;
    }
  }
}

#ifndef NDEBUG
TEST(DataflowMatrix, UninitPoisonTripsExportabilityCheck) {
  // Debug builds poison Uninit storage with 0xA5. For any universe that
  // is not a word multiple the poison puts bits past bits() in the tail
  // word, so a never-written row must fail rowsExportable() — this is
  // what makes the solver's export assert catch missed rows instead of
  // silently exporting leftover heap bytes.
  DataflowMatrix M(2, 65, DataflowMatrix::Uninit);
  EXPECT_FALSE(M.rowsExportable());
  M.setRow(0);
  EXPECT_FALSE(M.rowsExportable()); // Row 1 still poisoned.
  M.setRow(1);
  EXPECT_TRUE(M.rowsExportable());

  // Word-multiple universes have no out-of-range tail bits to poison;
  // the check is trivially true there (the poison still makes reads
  // loud, it just cannot be *detected* as an invariant violation).
  DataflowMatrix Full(2, 128, DataflowMatrix::Uninit);
  EXPECT_TRUE(Full.rowsExportable());
}
#endif

TEST(DataflowMatrix, RowsAreIndependent) {
  // Adjacent rows share the allocation; writes through row pointers
  // must stay within their own row.
  DataflowMatrix M(3, 65);
  M.setRow(1);
  DataflowMatrix::Word *Mid = M.row(1);
  Mid[0] = 0; // Partial clear through the raw pointer.
  EXPECT_TRUE(M.rowNone(0));
  EXPECT_TRUE(M.rowNone(2));
  EXPECT_EQ(M.extractRow(1).count(), 1u); // Only bit 64 survives.
  EXPECT_TRUE(M.extractRow(1).test(64));
}
