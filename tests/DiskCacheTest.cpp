//===- tests/DiskCacheTest.cpp - Persistent result cache tests --------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The persistent cache's whole job is to never return a wrong payload,
// no matter what happened to the bytes on disk. These tests cover the
// happy path (roundtrip, restart persistence, eviction, flush index)
// and every defensive check: bit flips in the payload, the header, and
// the magic; renamed entries; trailing garbage; truncation. Each
// corruption costs exactly one recompute (a miss plus a Corrupt count),
// never a hit with bad data. The BatchServer-level tests then confirm
// the same guarantees through the service: a restarted server answers
// from disk byte-identically, and a flipped bit silently recompiles.
//
//===----------------------------------------------------------------------===//

#include "service/BatchServer.h"
#include "service/DiskCache.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace gnt;
namespace fs = std::filesystem;

namespace {

/// A unique scratch directory, removed on scope exit.
struct TempDir {
  TempDir() {
    std::string Template = (fs::temp_directory_path() / "gnt-disk-XXXXXX");
    std::vector<char> Buf(Template.begin(), Template.end());
    Buf.push_back('\0');
    Path = mkdtemp(Buf.data());
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string Path;
};

/// The single .gc entry file in \p Dir (fails the test when there is
/// not exactly one).
fs::path onlyEntry(const std::string &Dir) {
  fs::path Found;
  unsigned Count = 0;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".gc") {
      Found = E.path();
      ++Count;
    }
  EXPECT_EQ(Count, 1u);
  return Found;
}

void flipByteAt(const fs::path &File, std::size_t Offset) {
  std::fstream F(File, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(F.good());
  F.seekg(static_cast<std::streamoff>(Offset));
  char C = 0;
  F.get(C);
  F.seekp(static_cast<std::streamoff>(Offset));
  F.put(static_cast<char>(C ^ 0x40));
}

TEST(DiskCacheTest, RoundTrip) {
  TempDir Tmp;
  DiskCache Cache(Tmp.Path, 16);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;

  std::string Payload;
  EXPECT_FALSE(Cache.lookup(42, Payload));
  Cache.insert(42, "{\"ok\":true}");
  ASSERT_TRUE(Cache.lookup(42, Payload));
  EXPECT_EQ(Payload, "{\"ok\":true}");
  EXPECT_EQ(Cache.entries(), 1u);
  EXPECT_EQ(Cache.stats().Hits.load(), 1u);
  EXPECT_EQ(Cache.stats().Misses.load(), 1u);
  EXPECT_EQ(Cache.stats().Writes.load(), 1u);
}

TEST(DiskCacheTest, SurvivesReopen) {
  TempDir Tmp;
  std::string Error;
  {
    DiskCache Cache(Tmp.Path, 16);
    ASSERT_TRUE(Cache.open(Error)) << Error;
    Cache.insert(7, "first");
    Cache.insert(9, "second");
    Cache.flush();
  }
  DiskCache Reopened(Tmp.Path, 16);
  ASSERT_TRUE(Reopened.open(Error)) << Error;
  EXPECT_EQ(Reopened.entries(), 2u);
  std::string Payload;
  ASSERT_TRUE(Reopened.lookup(7, Payload));
  EXPECT_EQ(Payload, "first");
  ASSERT_TRUE(Reopened.lookup(9, Payload));
  EXPECT_EQ(Payload, "second");
}

TEST(DiskCacheTest, PayloadBitFlipDiscarded) {
  TempDir Tmp;
  DiskCache Cache(Tmp.Path, 16);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  Cache.insert(5, "payload-bytes-here");

  // Flip one bit inside the payload region (header is 40 bytes).
  flipByteAt(onlyEntry(Tmp.Path), 45);

  std::string Payload;
  EXPECT_FALSE(Cache.lookup(5, Payload));
  EXPECT_EQ(Cache.stats().Corrupt.load(), 1u);
  EXPECT_EQ(Cache.entries(), 0u);
  // The entry file itself is gone: corruption is evicted, not retried.
  unsigned Remaining = 0;
  for (const auto &E : fs::directory_iterator(Tmp.Path))
    if (E.path().extension() == ".gc")
      ++Remaining;
  EXPECT_EQ(Remaining, 0u);

  // A re-insert fully heals the slot.
  Cache.insert(5, "payload-bytes-here");
  ASSERT_TRUE(Cache.lookup(5, Payload));
  EXPECT_EQ(Payload, "payload-bytes-here");
}

TEST(DiskCacheTest, HeaderBitFlipDiscarded) {
  TempDir Tmp;
  DiskCache Cache(Tmp.Path, 16);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  Cache.insert(5, "x");
  flipByteAt(onlyEntry(Tmp.Path), 18); // Inside the size field.
  std::string Payload;
  EXPECT_FALSE(Cache.lookup(5, Payload));
  EXPECT_EQ(Cache.stats().Corrupt.load(), 1u);
}

TEST(DiskCacheTest, MagicVersionMismatchDiscarded) {
  TempDir Tmp;
  DiskCache Cache(Tmp.Path, 16);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  Cache.insert(5, "x");
  // A format bump shows up as different magic bytes ("GNTDCv2\n"...).
  flipByteAt(onlyEntry(Tmp.Path), 6);
  std::string Payload;
  EXPECT_FALSE(Cache.lookup(5, Payload));
  EXPECT_EQ(Cache.stats().Corrupt.load(), 1u);
}

TEST(DiskCacheTest, RenamedEntryDiscarded) {
  TempDir Tmp;
  std::string Error;
  {
    DiskCache Cache(Tmp.Path, 16);
    ASSERT_TRUE(Cache.open(Error)) << Error;
    Cache.insert(5, "x");
  }
  // Rename the entry to a different (valid-looking) key: the header's
  // embedded key no longer matches the file name.
  fs::rename(onlyEntry(Tmp.Path),
             fs::path(Tmp.Path) / "00000000000000aa.gc");
  DiskCache Reopened(Tmp.Path, 16);
  ASSERT_TRUE(Reopened.open(Error)) << Error;
  std::string Payload;
  EXPECT_FALSE(Reopened.lookup(0xaa, Payload));
  EXPECT_EQ(Reopened.stats().Corrupt.load(), 1u);
}

TEST(DiskCacheTest, TrailingGarbageDiscarded) {
  TempDir Tmp;
  DiskCache Cache(Tmp.Path, 16);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  Cache.insert(5, "x");
  {
    std::ofstream F(onlyEntry(Tmp.Path),
                    std::ios::binary | std::ios::app);
    F << "extra";
  }
  std::string Payload;
  EXPECT_FALSE(Cache.lookup(5, Payload));
  EXPECT_EQ(Cache.stats().Corrupt.load(), 1u);
}

TEST(DiskCacheTest, TruncatedEntryDiscarded) {
  TempDir Tmp;
  DiskCache Cache(Tmp.Path, 16);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  Cache.insert(5, "a-payload-long-enough-to-truncate");
  fs::resize_file(onlyEntry(Tmp.Path), 48);
  std::string Payload;
  EXPECT_FALSE(Cache.lookup(5, Payload));
  EXPECT_EQ(Cache.stats().Corrupt.load(), 1u);
}

TEST(DiskCacheTest, EvictsOldestFirst) {
  TempDir Tmp;
  DiskCache Cache(Tmp.Path, 2);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  Cache.insert(1, "one");
  Cache.insert(2, "two");
  std::string Payload;
  ASSERT_TRUE(Cache.lookup(1, Payload)); // Refreshes 1; 2 is now oldest.
  Cache.insert(3, "three");
  EXPECT_EQ(Cache.entries(), 2u);
  EXPECT_EQ(Cache.stats().Evicted.load(), 1u);
  EXPECT_TRUE(Cache.lookup(1, Payload));
  EXPECT_FALSE(Cache.lookup(2, Payload));
  EXPECT_TRUE(Cache.lookup(3, Payload));
}

TEST(DiskCacheTest, FlushWritesIndex) {
  TempDir Tmp;
  DiskCache Cache(Tmp.Path, 16);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  Cache.insert(0xbeef, "x");
  Cache.flush();
  std::ifstream F(fs::path(Tmp.Path) / "index.txt");
  ASSERT_TRUE(F.good());
  std::string Contents((std::istreambuf_iterator<char>(F)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(Contents.find("entries 1"), std::string::npos) << Contents;
  EXPECT_NE(Contents.find("000000000000beef"), std::string::npos)
      << Contents;
}

//===----------------------------------------------------------------------===//
// Memo category (byte-capped .gm entries)
//===----------------------------------------------------------------------===//

TEST(DiskCacheTest, MemoRoundTripIsSeparateFromResults) {
  TempDir Tmp;
  DiskCache Cache(Tmp.Path, 16);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  // The same key in both categories must resolve independently: the
  // categories share the directory, never an entry.
  Cache.insert(0x1111, "result-payload");
  Cache.insertMemo(0x1111, "memo-payload");
  std::string Got;
  ASSERT_TRUE(Cache.lookup(0x1111, Got));
  EXPECT_EQ(Got, "result-payload");
  ASSERT_TRUE(Cache.lookupMemo(0x1111, Got));
  EXPECT_EQ(Got, "memo-payload");
  EXPECT_EQ(Cache.entries(), 1u);
  EXPECT_EQ(Cache.memoEntries(), 1u);
  // A memo lookup for a key present only as a result misses.
  EXPECT_FALSE(Cache.lookupMemo(0x2222, Got));
}

TEST(DiskCacheTest, MemoBytesEvictOldestFirst) {
  TempDir Tmp;
  // Header is 40 bytes; a 100-byte payload charges 140. Budget of 300
  // bytes holds two entries, never three.
  DiskCache Cache(Tmp.Path, 16, /*MaxMemoBytes=*/300);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  const std::string Payload(100, 'm');
  Cache.insertMemo(1, Payload);
  Cache.insertMemo(2, Payload);
  EXPECT_EQ(Cache.memoEntries(), 2u);
  EXPECT_EQ(Cache.memoBytes(), 280u);
  Cache.insertMemo(3, Payload);
  EXPECT_EQ(Cache.memoEntries(), 2u);
  std::string Got;
  EXPECT_FALSE(Cache.lookupMemo(1, Got)); // Oldest evicted.
  EXPECT_TRUE(Cache.lookupMemo(2, Got));
  EXPECT_TRUE(Cache.lookupMemo(3, Got));
  EXPECT_EQ(Cache.stats().Evicted.load(), 1u);
}

TEST(DiskCacheTest, MemoEvictionNeverTouchesResults) {
  TempDir Tmp;
  DiskCache Cache(Tmp.Path, 16, /*MaxMemoBytes=*/150);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  Cache.insert(7, std::string(500, 'r')); // Far over the *memo* budget.
  Cache.insertMemo(8, std::string(100, 'a'));
  Cache.insertMemo(9, std::string(100, 'b')); // Evicts memo 8 only.
  std::string Got;
  EXPECT_TRUE(Cache.lookup(7, Got));
  EXPECT_EQ(Got.size(), 500u);
  EXPECT_FALSE(Cache.lookupMemo(8, Got));
  EXPECT_TRUE(Cache.lookupMemo(9, Got));
  EXPECT_EQ(Cache.entries(), 1u);
  EXPECT_EQ(Cache.memoEntries(), 1u);
}

TEST(DiskCacheTest, MemoBudgetSurvivesReopen) {
  TempDir Tmp;
  {
    DiskCache Cache(Tmp.Path, 16, /*MaxMemoBytes=*/400);
    std::string Error;
    ASSERT_TRUE(Cache.open(Error)) << Error;
    Cache.insertMemo(1, std::string(100, 'x'));
    Cache.insertMemo(2, std::string(100, 'y'));
  }
  {
    // Reopen under a tighter budget: the scan must charge the on-disk
    // sizes and evict oldest-first down to the cap.
    DiskCache Cache(Tmp.Path, 16, /*MaxMemoBytes=*/150);
    std::string Error;
    ASSERT_TRUE(Cache.open(Error)) << Error;
    EXPECT_EQ(Cache.memoEntries(), 1u);
    std::string Got;
    EXPECT_FALSE(Cache.lookupMemo(1, Got));
    ASSERT_TRUE(Cache.lookupMemo(2, Got));
    EXPECT_EQ(Got, std::string(100, 'y'));
  }
}

TEST(DiskCacheTest, UncappedMemosNeverEvict) {
  TempDir Tmp;
  DiskCache Cache(Tmp.Path, 1, /*MaxMemoBytes=*/0);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  for (std::uint64_t K = 1; K <= 8; ++K)
    Cache.insertMemo(K, std::string(64, 'z'));
  EXPECT_EQ(Cache.memoEntries(), 8u);
  EXPECT_EQ(Cache.stats().Evicted.load(), 0u);
}

TEST(DiskCacheTest, CorruptMemoRecomputedNotServed) {
  TempDir Tmp;
  DiskCache Cache(Tmp.Path, 16, /*MaxMemoBytes=*/0);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  Cache.insertMemo(0xabcd, "memo-data");
  fs::path Entry;
  for (const auto &E : fs::directory_iterator(Tmp.Path))
    if (E.path().extension() == ".gm")
      Entry = E.path();
  ASSERT_FALSE(Entry.empty());
  flipByteAt(Entry, 45); // Payload byte.
  std::string Got;
  EXPECT_FALSE(Cache.lookupMemo(0xabcd, Got));
  EXPECT_EQ(Cache.stats().Corrupt.load(), 1u);
  EXPECT_EQ(Cache.memoEntries(), 0u); // Discarded, not retried forever.
}

TEST(DiskCacheTest, FlushReportsMemoCounters) {
  TempDir Tmp;
  DiskCache Cache(Tmp.Path, 16);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  Cache.insertMemo(0xfeed, std::string(10, 'q'));
  Cache.flush();
  std::ifstream F(fs::path(Tmp.Path) / "index.txt");
  ASSERT_TRUE(F.good());
  std::string Contents((std::istreambuf_iterator<char>(F)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(Contents.find("memo-entries 1"), std::string::npos) << Contents;
  EXPECT_NE(Contents.find("memo-bytes 50"), std::string::npos) << Contents;
  EXPECT_NE(Contents.find("memo 000000000000feed"), std::string::npos)
      << Contents;
}

//===----------------------------------------------------------------------===//
// Through the BatchServer
//===----------------------------------------------------------------------===//

const char *TestProgram = "distribute x\n"
                          "do i = 1, n\n"
                          "  x(i) = x(i + 1)\n"
                          "enddo\n";

ServiceRequest testRequest() {
  ServiceRequest Req;
  Req.Id = "r1";
  Req.Source = TestProgram;
  return Req;
}

TEST(DiskCacheServiceTest, RestartServesFromDisk) {
  TempDir Tmp;
  ServiceConfig Config;
  Config.Workers = 0;
  Config.DiskCachePath = Tmp.Path;

  std::string FirstResponse;
  {
    BatchServer Server(Config);
    ASSERT_TRUE(Server.diskCacheError().empty())
        << Server.diskCacheError();
    FirstResponse = Server.serve(testRequest());
    EXPECT_EQ(Server.metrics().DiskHits, 0u);
    Server.flushDiskCache();
  }

  // A fresh server (cold in-memory LRU) answers from the disk layer,
  // byte-identically, without recompiling.
  BatchServer Restarted(Config);
  ASSERT_TRUE(Restarted.diskCacheError().empty());
  EXPECT_EQ(Restarted.serve(testRequest()), FirstResponse);
  EXPECT_EQ(Restarted.metrics().DiskHits, 1u);
  EXPECT_EQ(Restarted.metrics().CacheMisses, 0u);
}

TEST(DiskCacheServiceTest, CorruptEntryRecomputed) {
  TempDir Tmp;
  ServiceConfig Config;
  Config.Workers = 0;
  Config.DiskCachePath = Tmp.Path;

  std::string FirstResponse;
  {
    BatchServer Server(Config);
    FirstResponse = Server.serve(testRequest());
  }
  flipByteAt(onlyEntry(Tmp.Path), 60); // Somewhere in the payload.

  BatchServer Restarted(Config);
  // The flipped entry is discarded and the program recompiled: the
  // response is still byte-identical, served via a miss, and the
  // corruption is visible in the disk stats.
  EXPECT_EQ(Restarted.serve(testRequest()), FirstResponse);
  EXPECT_EQ(Restarted.metrics().DiskHits, 0u);
  EXPECT_EQ(Restarted.metrics().CacheMisses, 1u);
  ASSERT_NE(Restarted.diskCache(), nullptr);
  EXPECT_EQ(Restarted.diskCache()->stats().Corrupt.load(), 1u);
}

} // namespace
