//===- tests/CfgTest.cpp - CFG construction tests ---------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace gnt;
using namespace gnt::test;

namespace {

/// Keeps the parsed Program alive alongside the CFG: CfgNode holds
/// non-owning Stmt pointers into the AST.
struct Built {
  Program Prog;
  CfgBuildResult R;

  bool success() const { return R.success(); }
  const Cfg &graph() const { return R.G; }
};

Built buildFrom(const std::string &Src) {
  ParseResult PR = parseProgram(Src);
  EXPECT_TRUE(PR.success()) << (PR.Errors.empty() ? "" : PR.Errors.front());
  Built B;
  B.Prog = std::move(PR.Prog);
  B.R = buildCfg(B.Prog);
  return B;
}

bool hasEdge(const Cfg &G, NodeId From, NodeId To) {
  const auto &S = G.node(From).Succs;
  return std::find(S.begin(), S.end(), To) != S.end();
}

unsigned countKind(const Cfg &G, NodeKind K) {
  unsigned N = 0;
  for (NodeId Id = 0; Id != G.size(); ++Id)
    N += G.node(Id).Kind == K;
  return N;
}

} // namespace

TEST(Cfg, StraightLine) {
  Built B = buildFrom("v = 1\nw = 2\n");
  ASSERT_TRUE(B.success());
  const Cfg &G = B.graph();
  // entry -> v -> w -> exit.
  EXPECT_EQ(G.size(), 4u);
  EXPECT_EQ(G.node(G.entry()).Succs.size(), 1u);
  EXPECT_EQ(G.node(G.exit()).Preds.size(), 1u);
  EXPECT_EQ(countKind(G, NodeKind::Stmt), 2u);
}

TEST(Cfg, DoLoopShape) {
  Built B = buildFrom("do i = 1, n\nv = i\nenddo\n");
  ASSERT_TRUE(B.success());
  const Cfg &G = B.graph();
  ASSERT_EQ(countKind(G, NodeKind::LoopHeader), 1u);
  ASSERT_EQ(countKind(G, NodeKind::LoopLatch), 1u);
  NodeId H = InvalidNode, L = InvalidNode, S = InvalidNode;
  for (NodeId Id = 0; Id != G.size(); ++Id) {
    if (G.node(Id).Kind == NodeKind::LoopHeader)
      H = Id;
    if (G.node(Id).Kind == NodeKind::LoopLatch)
      L = Id;
    if (G.node(Id).Kind == NodeKind::Stmt)
      S = Id;
  }
  // header -> body -> latch -> header; header -> exit side.
  EXPECT_TRUE(hasEdge(G, H, S));
  EXPECT_TRUE(hasEdge(G, S, L));
  EXPECT_TRUE(hasEdge(G, L, H));
  EXPECT_EQ(G.node(H).Succs.size(), 2u);
  // The body arm is successor 0 (splitter relies on this).
  EXPECT_EQ(G.node(H).Succs[0], S);
  // The latch has exactly one successor: the unique CYCLE edge.
  EXPECT_EQ(G.node(L).Succs.size(), 1u);
}

TEST(Cfg, EmptyLoopBody) {
  Built B = buildFrom("do i = 1, n\nenddo\n");
  ASSERT_TRUE(B.success());
  // Header -> latch -> header still forms a well-shaped loop.
  EXPECT_EQ(countKind(B.graph(), NodeKind::LoopLatch), 1u);
}

TEST(Cfg, IfThenElseDiamond) {
  Built B = buildFrom(R"(
if (c > 0) then
  v = 1
else
  v = 2
endif
w = 3
)");
  ASSERT_TRUE(B.success());
  const Cfg &G = B.graph();
  EXPECT_EQ(countKind(G, NodeKind::Branch), 1u);
  EXPECT_EQ(countKind(G, NodeKind::Merge), 1u);
  // No critical edges anywhere after construction.
  for (NodeId M = 0; M != G.size(); ++M)
    for (NodeId S : G.node(M).Succs)
      EXPECT_FALSE(G.isCriticalEdge(M, S));
}

TEST(Cfg, IfWithoutElseSplitsCriticalEdge) {
  Built B = buildFrom(R"(
if (c > 0) then
  v = 1
endif
w = 3
)");
  ASSERT_TRUE(B.success());
  const Cfg &G = B.graph();
  // The branch->merge fallthrough was critical (branch has 2 succs, merge
  // has 2 preds); a synthetic node must have been inserted, anchored as
  // the new else branch (paper Figure 3).
  bool FoundElseSynth = false;
  for (NodeId Id = 0; Id != G.size(); ++Id) {
    const CfgNode &N = G.node(Id);
    if (N.Kind == NodeKind::Synthetic && N.Where == EmitWhere::ElseEntry)
      FoundElseSynth = true;
  }
  EXPECT_TRUE(FoundElseSynth);
  for (NodeId M = 0; M != G.size(); ++M)
    for (NodeId S : G.node(M).Succs)
      EXPECT_FALSE(G.isCriticalEdge(M, S));
}

TEST(Cfg, GotoGetsLandingPad) {
  Built B = buildFrom(R"(
do i = 1, n
  if (t(i)) goto 10
  v = i
enddo
10 w = 1
)");
  ASSERT_TRUE(B.success());
  const Cfg &G = B.graph();
  NodeId Branch = InvalidNode, Pad = InvalidNode;
  for (NodeId Id = 0; Id != G.size(); ++Id) {
    if (G.node(Id).Kind == NodeKind::Branch)
      Branch = Id;
    if (G.node(Id).Kind == NodeKind::Synthetic && G.node(Id).EmitStmt &&
        isa<GotoStmt>(G.node(Id).EmitStmt))
      Pad = Id;
  }
  ASSERT_NE(Branch, InvalidNode);
  ASSERT_NE(Pad, InvalidNode);
  // The branch node sources the jump edge straight into the landing pad,
  // which has exactly one predecessor (paper Section 3.4).
  EXPECT_TRUE(hasEdge(G, Branch, Pad));
  EXPECT_EQ(G.node(Pad).Preds.size(), 1u);
  EXPECT_EQ(G.node(Pad).Succs.size(), 1u);
}

TEST(Cfg, UndefinedLabel) {
  Built B = buildFrom("goto 99\nv = 1\n99 w = 2\ngoto 42\n");
  EXPECT_FALSE(B.success());
  bool Found = false;
  for (const std::string &E : B.R.Errors)
    Found |= E.find("undefined label 42") != std::string::npos;
  EXPECT_TRUE(Found);
}

TEST(Cfg, DuplicateLabel) {
  Built B = buildFrom("10 v = 1\n10 w = 2\n");
  EXPECT_FALSE(B.success());
}

TEST(Cfg, UnreachableStatement) {
  Built B = buildFrom("goto 10\nv = 1\n10 w = 2\n");
  EXPECT_FALSE(B.success());
  bool Found = false;
  for (const std::string &E : B.R.Errors)
    Found |= E.find("unreachable") != std::string::npos;
  EXPECT_TRUE(Found);
}

TEST(Cfg, LoopBodyAlwaysJumpsOut) {
  Built B = buildFrom("do i = 1, n\ngoto 10\nenddo\n10 v = 1\n");
  EXPECT_FALSE(B.success());
}

TEST(Cfg, Fig11Shape) {
  Built B = buildFrom(fig11Source());
  ASSERT_TRUE(B.success());
  const Cfg &G = B.graph();
  Fig11Nodes N = locateFig11(G);
  // All roles present.
  for (NodeId Id : {N.Root, N.Hi, N.A, N.B, N.Li, N.SAfterI, N.Hj, N.JB,
                    N.Lj, N.SAfterJ, N.Pad, N.Hk, N.KB, N.Lk, N.Exit})
    EXPECT_NE(Id, InvalidNode);
  // 15 nodes: the paper's 14, minus its separate pre-loop node 1 (folded
  // into ROOT/Entry), plus the assignment/branch split of its node 3 and
  // the two extra latches our builder materializes for the j and k loops.
  EXPECT_EQ(G.size(), 15u);
  // Key edges.
  EXPECT_TRUE(hasEdge(G, N.Hi, N.A));
  EXPECT_TRUE(hasEdge(G, N.A, N.B));
  EXPECT_TRUE(hasEdge(G, N.B, N.Li));
  EXPECT_TRUE(hasEdge(G, N.Li, N.Hi));
  EXPECT_TRUE(hasEdge(G, N.B, N.Pad));
  EXPECT_TRUE(hasEdge(G, N.Pad, N.Hk));
  EXPECT_TRUE(hasEdge(G, N.Hi, N.SAfterI));
  EXPECT_TRUE(hasEdge(G, N.SAfterI, N.Hj));
  EXPECT_TRUE(hasEdge(G, N.Hj, N.SAfterJ));
  EXPECT_TRUE(hasEdge(G, N.SAfterJ, N.Hk));
  EXPECT_TRUE(hasEdge(G, N.Hk, N.Exit));
  // No critical edges.
  for (NodeId M = 0; M != G.size(); ++M)
    for (NodeId S : G.node(M).Succs)
      EXPECT_FALSE(G.isCriticalEdge(M, S));
}

TEST(Cfg, DotOutput) {
  Built B = buildFrom("do i = 1, n\nv = i\nenddo\n");
  ASSERT_TRUE(B.success());
  std::string Dot = B.graph().dot();
  EXPECT_NE(Dot.find("digraph cfg"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
}
