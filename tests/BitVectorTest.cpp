//===- tests/BitVectorTest.cpp - BitVector unit tests -----------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace gnt;

TEST(BitVector, EmptyAndSized) {
  BitVector Empty;
  EXPECT_EQ(Empty.size(), 0u);
  EXPECT_TRUE(Empty.none());
  EXPECT_EQ(Empty.count(), 0u);

  BitVector V(130);
  EXPECT_EQ(V.size(), 130u);
  EXPECT_TRUE(V.none());
  EXPECT_FALSE(V.any());
}

TEST(BitVector, SetResetTest) {
  BitVector V(100);
  V.set(0);
  V.set(63);
  V.set(64);
  V.set(99);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(63));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(99));
  EXPECT_FALSE(V.test(1));
  EXPECT_EQ(V.count(), 4u);
  V.reset(63);
  EXPECT_FALSE(V.test(63));
  EXPECT_EQ(V.count(), 3u);
}

TEST(BitVector, AllOnesConstruction) {
  BitVector V(70, true);
  EXPECT_TRUE(V.all());
  EXPECT_EQ(V.count(), 70u);
  // Excess bits in the tail word must not leak into count().
  V.reset(69);
  EXPECT_EQ(V.count(), 69u);
  EXPECT_FALSE(V.all());
}

TEST(BitVector, ResizeGrowWithValue) {
  BitVector V(10, true);
  V.resize(130, true);
  EXPECT_EQ(V.count(), 130u);
  BitVector W(10, true);
  W.resize(130, false);
  EXPECT_EQ(W.count(), 10u);
}

TEST(BitVector, SetAlgebra) {
  BitVector A(80), B(80);
  A.set(1);
  A.set(40);
  A.set(70);
  B.set(40);
  B.set(71);

  BitVector U = unionOf(A, B);
  EXPECT_EQ(U.count(), 4u);
  EXPECT_TRUE(U.test(1) && U.test(40) && U.test(70) && U.test(71));

  BitVector I = intersectionOf(A, B);
  EXPECT_EQ(I.count(), 1u);
  EXPECT_TRUE(I.test(40));

  BitVector D = differenceOf(A, B);
  EXPECT_EQ(D.count(), 2u);
  EXPECT_TRUE(D.test(1) && D.test(70));
  EXPECT_FALSE(D.test(40));
}

TEST(BitVector, SubsetAndCommon) {
  BitVector A(64), B(64);
  A.set(3);
  B.set(3);
  B.set(9);
  EXPECT_TRUE(A.isSubsetOf(B));
  EXPECT_FALSE(B.isSubsetOf(A));
  EXPECT_TRUE(A.anyCommon(B));
  A.reset(3);
  EXPECT_FALSE(A.anyCommon(B));
  EXPECT_TRUE(A.isSubsetOf(B)); // Empty set is a subset of everything.
}

TEST(BitVector, FindAndIteration) {
  BitVector V(200);
  std::set<unsigned> Expected = {0, 5, 63, 64, 65, 128, 199};
  for (unsigned I : Expected)
    V.set(I);

  std::set<unsigned> Seen;
  for (unsigned I : V)
    Seen.insert(I);
  EXPECT_EQ(Seen, Expected);

  EXPECT_EQ(V.findFirst(), 0);
  EXPECT_EQ(V.findNext(0), 5);
  EXPECT_EQ(V.findNext(65), 128);
  EXPECT_EQ(V.findNext(199), -1);
}

TEST(BitVector, EqualityAndEmptyIteration) {
  BitVector A(33), B(33);
  EXPECT_EQ(A, B);
  A.set(32);
  EXPECT_NE(A, B);
  B.set(32);
  EXPECT_EQ(A, B);

  BitVector E(50);
  unsigned Count = 0;
  for (unsigned I : E) {
    (void)I;
    ++Count;
  }
  EXPECT_EQ(Count, 0u);
}

/// Randomized consistency check against std::set as the reference model.
TEST(BitVector, RandomizedAgainstReferenceModel) {
  std::mt19937 Rng(12345);
  for (unsigned Trial = 0; Trial != 50; ++Trial) {
    unsigned Size = 1 + Rng() % 300;
    BitVector A(Size), B(Size);
    std::set<unsigned> RefA, RefB;
    for (unsigned I = 0; I != Size / 2; ++I) {
      unsigned X = Rng() % Size, Y = Rng() % Size;
      A.set(X);
      RefA.insert(X);
      B.set(Y);
      RefB.insert(Y);
    }
    BitVector U = unionOf(A, B), In = intersectionOf(A, B),
              D = differenceOf(A, B);
    for (unsigned I = 0; I != Size; ++I) {
      EXPECT_EQ(U.test(I), RefA.count(I) || RefB.count(I));
      EXPECT_EQ(In.test(I), RefA.count(I) && RefB.count(I));
      EXPECT_EQ(D.test(I), RefA.count(I) && !RefB.count(I));
    }
    EXPECT_EQ(A.count(), RefA.size());
  }
}
