//===- tests/BitVectorTest.cpp - BitVector unit tests -----------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace gnt;

TEST(BitVector, EmptyAndSized) {
  BitVector Empty;
  EXPECT_EQ(Empty.size(), 0u);
  EXPECT_TRUE(Empty.none());
  EXPECT_EQ(Empty.count(), 0u);

  BitVector V(130);
  EXPECT_EQ(V.size(), 130u);
  EXPECT_TRUE(V.none());
  EXPECT_FALSE(V.any());
}

TEST(BitVector, SetResetTest) {
  BitVector V(100);
  V.set(0);
  V.set(63);
  V.set(64);
  V.set(99);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(63));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(99));
  EXPECT_FALSE(V.test(1));
  EXPECT_EQ(V.count(), 4u);
  V.reset(63);
  EXPECT_FALSE(V.test(63));
  EXPECT_EQ(V.count(), 3u);
}

TEST(BitVector, AllOnesConstruction) {
  BitVector V(70, true);
  EXPECT_TRUE(V.all());
  EXPECT_EQ(V.count(), 70u);
  // Excess bits in the tail word must not leak into count().
  V.reset(69);
  EXPECT_EQ(V.count(), 69u);
  EXPECT_FALSE(V.all());
}

TEST(BitVector, ResizeGrowWithValue) {
  BitVector V(10, true);
  V.resize(130, true);
  EXPECT_EQ(V.count(), 130u);
  BitVector W(10, true);
  W.resize(130, false);
  EXPECT_EQ(W.count(), 10u);
}

TEST(BitVector, SetAlgebra) {
  BitVector A(80), B(80);
  A.set(1);
  A.set(40);
  A.set(70);
  B.set(40);
  B.set(71);

  BitVector U = unionOf(A, B);
  EXPECT_EQ(U.count(), 4u);
  EXPECT_TRUE(U.test(1) && U.test(40) && U.test(70) && U.test(71));

  BitVector I = intersectionOf(A, B);
  EXPECT_EQ(I.count(), 1u);
  EXPECT_TRUE(I.test(40));

  BitVector D = differenceOf(A, B);
  EXPECT_EQ(D.count(), 2u);
  EXPECT_TRUE(D.test(1) && D.test(70));
  EXPECT_FALSE(D.test(40));
}

TEST(BitVector, SubsetAndCommon) {
  BitVector A(64), B(64);
  A.set(3);
  B.set(3);
  B.set(9);
  EXPECT_TRUE(A.isSubsetOf(B));
  EXPECT_FALSE(B.isSubsetOf(A));
  EXPECT_TRUE(A.anyCommon(B));
  A.reset(3);
  EXPECT_FALSE(A.anyCommon(B));
  EXPECT_TRUE(A.isSubsetOf(B)); // Empty set is a subset of everything.
}

TEST(BitVector, FindAndIteration) {
  BitVector V(200);
  std::set<unsigned> Expected = {0, 5, 63, 64, 65, 128, 199};
  for (unsigned I : Expected)
    V.set(I);

  std::set<unsigned> Seen;
  for (unsigned I : V)
    Seen.insert(I);
  EXPECT_EQ(Seen, Expected);

  EXPECT_EQ(V.findFirst(), 0);
  EXPECT_EQ(V.findNext(0), 5);
  EXPECT_EQ(V.findNext(65), 128);
  EXPECT_EQ(V.findNext(199), -1);
}

TEST(BitVector, EqualityAndEmptyIteration) {
  BitVector A(33), B(33);
  EXPECT_EQ(A, B);
  A.set(32);
  EXPECT_NE(A, B);
  B.set(32);
  EXPECT_EQ(A, B);

  BitVector E(50);
  unsigned Count = 0;
  for (unsigned I : E) {
    (void)I;
    ++Count;
  }
  EXPECT_EQ(Count, 0u);
}

/// Randomized consistency check against std::set as the reference model.
TEST(BitVector, RandomizedAgainstReferenceModel) {
  std::mt19937 Rng(12345);
  for (unsigned Trial = 0; Trial != 50; ++Trial) {
    unsigned Size = 1 + Rng() % 300;
    BitVector A(Size), B(Size);
    std::set<unsigned> RefA, RefB;
    for (unsigned I = 0; I != Size / 2; ++I) {
      unsigned X = Rng() % Size, Y = Rng() % Size;
      A.set(X);
      RefA.insert(X);
      B.set(Y);
      RefB.insert(Y);
    }
    BitVector U = unionOf(A, B), In = intersectionOf(A, B),
              D = differenceOf(A, B);
    for (unsigned I = 0; I != Size; ++I) {
      EXPECT_EQ(U.test(I), RefA.count(I) || RefB.count(I));
      EXPECT_EQ(In.test(I), RefA.count(I) && RefB.count(I));
      EXPECT_EQ(D.test(I), RefA.count(I) && !RefB.count(I));
    }
    EXPECT_EQ(A.count(), RefA.size());
  }
}

//===----------------------------------------------------------------------===//
// Tail-word edge cases: sizes that are not a multiple of 64
//===----------------------------------------------------------------------===//
//
// The sharded solver and the DataflowMatrix arena depend on the
// tail-word invariant (bits beyond size() in the last word stay zero)
// holding through every mutation path; these tests pin the awkward
// sizes: 1, 63, 65, 127 and the word boundary itself.

TEST(BitVector, FlipRespectsTailWord) {
  for (unsigned Size : {1u, 63u, 64u, 65u, 127u, 130u}) {
    BitVector V(Size);
    V.flip();
    EXPECT_EQ(V.count(), Size) << "size " << Size;
    EXPECT_TRUE(V.all()) << "size " << Size;
    V.flip();
    EXPECT_TRUE(V.none()) << "size " << Size;
    EXPECT_EQ(V, BitVector(Size)) << "size " << Size;
  }
}

TEST(BitVector, ResizeShrinkClearsExcess) {
  BitVector V(130, true);
  V.resize(65);
  EXPECT_EQ(V.size(), 65u);
  EXPECT_EQ(V.count(), 65u);
  // Regrow: the bits dropped by the shrink must not reappear.
  V.resize(130, false);
  EXPECT_EQ(V.count(), 65u);
  EXPECT_EQ(V.findNext(64), -1);
}

TEST(BitVector, ResizeGrowFromPartialTail) {
  // Growing an all-ones vector whose old tail word was partial must
  // fill the fresh high bits of that word too.
  BitVector V(3, true);
  V.resize(65, true);
  EXPECT_EQ(V.count(), 65u);
  EXPECT_TRUE(V.all());
  V.resize(64);
  EXPECT_EQ(V.count(), 64u);
  V.resize(1);
  EXPECT_EQ(V.count(), 1u);
}

TEST(BitVector, SetAllThenShrinkGrowRoundTrip) {
  BitVector V(100);
  V.set();
  EXPECT_EQ(V.count(), 100u);
  V.flip();
  EXPECT_TRUE(V.none());
  V.set();
  V.reset();
  EXPECT_TRUE(V.none());
}

TEST(BitVector, FindNextNearTail) {
  BitVector V(65);
  V.set(64);
  EXPECT_EQ(V.findFirst(), 64);
  EXPECT_EQ(V.findNext(63), 64);
  EXPECT_EQ(V.findNext(64), -1);
  BitVector W(63);
  W.set(62);
  EXPECT_EQ(W.findNext(61), 62);
  EXPECT_EQ(W.findNext(62), -1);
}

TEST(BitVector, WordsRoundTrip) {
  for (unsigned Size : {1u, 63u, 64u, 65u, 200u}) {
    BitVector V(Size);
    for (unsigned I = 0; I < Size; I += 7)
      V.set(I);
    BitVector R = BitVector::fromWords(V.words(), V.size());
    EXPECT_EQ(R, V) << "size " << Size;
    EXPECT_EQ(R.wordCount(), (Size + 63) / 64) << "size " << Size;
  }
}

TEST(BitVector, FromWordsMasksTail) {
  // fromWords must clear source bits beyond the requested size.
  BitVector::Word Src[2] = {~BitVector::Word(0), ~BitVector::Word(0)};
  BitVector V = BitVector::fromWords(Src, 65);
  EXPECT_EQ(V.count(), 65u);
  BitVector W = BitVector::fromWords(Src, 63);
  EXPECT_EQ(W.count(), 63u);
}

TEST(BitVector, SliceWords) {
  BitVector V(200);
  for (unsigned I = 0; I < 200; I += 3)
    V.set(I);
  // Slice covering words 1..2 (bits 64..191), 100 bits worth.
  BitVector S = V.sliceWords(1, 100);
  EXPECT_EQ(S.size(), 100u);
  for (unsigned I = 0; I != 100; ++I)
    EXPECT_EQ(S.test(I), V.test(64 + I)) << "bit " << I;
  // A full-vector slice is the identity.
  EXPECT_EQ(V.sliceWords(0, 200), V);
  // A tail slice narrower than a word.
  BitVector T = V.sliceWords(3, 8);
  for (unsigned I = 0; I != 8; ++I)
    EXPECT_EQ(T.test(I), V.test(192 + I)) << "bit " << I;
}
