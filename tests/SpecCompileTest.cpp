//===- tests/SpecCompileTest.cpp - Spec compilation + solving ---------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for compiling analysis specs onto the production engines: the
/// three universes, the built-in analyses, the mandatory
/// iterative-vs-arena differential, strategy invariance (sharding and
/// universe compression) across a generated-program battery, and the
/// pipeline/batch-server surfaces.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/SpecCompile.h"
#include "analysis/SpecLang.h"
#include "gen/RandomProgram.h"
#include "service/BatchServer.h"
#include "service/Pipeline.h"
#include "support/Support.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

/// Index of the first item whose name starts with \p Prefix, or -1.
int itemIndex(const AnalysisRun &R, const std::string &Prefix) {
  for (unsigned I = 0; I != R.ItemNames.size(); ++I)
    if (R.ItemNames[I].rfind(Prefix, 0) == 0)
      return static_cast<int>(I);
  return -1;
}

AnalysisRun run(const std::string &NameOrText, test::Pipeline &P,
                unsigned Shards = 0, bool Compress = false) {
  return runAnalysisSpec(NameOrText, P.Prog, P.G, *P.Ifg, Shards, Compress);
}

} // namespace

TEST(SpecCompile, LivenessSemanticsOnFig11) {
  test::Pipeline P = test::Pipeline::fromSource(fig11Source());
  Fig11Nodes N = locateFig11(P.G);
  AnalysisRun R = run("liveness", P);
  ASSERT_TRUE(R.ok()) << R.Diags.renderText();
  EXPECT_EQ(R.Universe, SpecUniverse::Items);
  // The read sections: y(a(...)) is the *written* section, a distinct
  // item that is never consumed.
  int X = itemIndex(R, "x("), Y = itemIndex(R, "y(b");
  ASSERT_GE(X, 0);
  ASSERT_GE(Y, 0);
  // z(k) = x(k+10) + y(b(k)) consumes both items, so both are live at
  // the program entry (backward flow orientation: Out = node entry).
  EXPECT_TRUE(R.Out[N.Root].test(static_cast<unsigned>(X)));
  EXPECT_TRUE(R.Out[N.Root].test(static_cast<unsigned>(Y)));
  // The definition y(a(i)) = 0 produces y for free: liveness of y is
  // killed across node A (live after it, dead before it).
  EXPECT_TRUE(R.In[N.A].test(static_cast<unsigned>(Y)));
  EXPECT_FALSE(R.Out[N.A].test(static_cast<unsigned>(Y)));
  // Nothing is live at the exit (boundary empty, start exit).
  EXPECT_TRUE(R.In[N.Exit].none());
}

TEST(SpecCompile, AvailabilitySemanticsOnFig11) {
  test::Pipeline P = test::Pipeline::fromSource(fig11Source());
  Fig11Nodes N = locateFig11(P.G);
  AnalysisRun R = run("availability", P);
  ASSERT_TRUE(R.ok()) << R.Diags.renderText();
  // The written section is what the definition produces for free.
  int Y = itemIndex(R, "y(a");
  ASSERT_GE(Y, 0);
  // The y definition makes y available immediately after node A...
  EXPECT_TRUE(R.Out[N.A].test(static_cast<unsigned>(Y)));
  // ...but nothing is available at the entry under `boundary empty`.
  EXPECT_TRUE(R.In[N.Root].none());
}

TEST(SpecCompile, ExprsUniverseServesVeryBusy) {
  test::Pipeline P = test::Pipeline::fromSource(fig11Source());
  AnalysisRun R = run("very-busy", P);
  ASSERT_TRUE(R.ok()) << R.Diags.renderText();
  EXPECT_EQ(R.Universe, SpecUniverse::Exprs);
  EXPECT_GE(R.UniverseSize, 1u) << "fig11 has a speculable RHS expression";
  EXPECT_EQ(R.ItemNames.size(), R.UniverseSize);
}

TEST(SpecCompile, DefsUniverseSitesReachTheirDownstream) {
  test::Pipeline P = test::Pipeline::fromSource(fig11Source());
  Fig11Nodes N = locateFig11(P.G);
  AnalysisRun R = run("reaching", P);
  ASSERT_TRUE(R.ok()) << R.Diags.renderText();
  EXPECT_EQ(R.Universe, SpecUniverse::Defs);
  ASSERT_GE(R.UniverseSize, 1u);
  // Site names carry the "item@node" granularity.
  int Site = -1;
  for (unsigned I = 0; I != R.ItemNames.size(); ++I)
    if (R.ItemNames[I].find("@n") != std::string::npos &&
        R.ItemNames[I].rfind("y(", 0) == 0)
      Site = static_cast<int>(I);
  ASSERT_GE(Site, 0) << "no definition site for y";
  // The y(a(i)) definition reaches the loop exit path downstream.
  EXPECT_TRUE(R.Out[N.A].test(static_cast<unsigned>(Site)));
  EXPECT_FALSE(R.In[N.Root].test(static_cast<unsigned>(Site)))
      << "a definition reached upstream of itself";
}

TEST(SpecCompile, CustomSpecTextRunsEndToEnd) {
  test::Pipeline P = test::Pipeline::fromSource(fig11Source());
  AnalysisRun R = run("analysis anti\n"
                      "universe items\n"
                      "direction backward\n"
                      "confluence all\n"
                      "boundary empty\n"
                      "transfer out = (in - give) | take\n",
                      P);
  EXPECT_TRUE(R.ok()) << R.Diags.renderText();
  EXPECT_EQ(R.Name, "anti");
}

TEST(SpecCompile, UnknownBuiltinNameIsAStructuredError) {
  test::Pipeline P = test::Pipeline::fromSource(fig11Source());
  AnalysisRun R = run("dominance", P);
  EXPECT_FALSE(R.ok());
  bool Found = false;
  for (const Diagnostic &D : R.Diags.all())
    Found |= D.Message.find("unknown-analysis") != std::string::npos &&
             !D.FixHint.empty();
  EXPECT_TRUE(Found) << R.Diags.renderText();
}

TEST(SpecCompile, MalformedSpecYieldsDiagnosticsNotASolve) {
  test::Pipeline P = test::Pipeline::fromSource(fig11Source());
  AnalysisRun R = run("universe galaxies\ngen take\n", P);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.In.empty());
  EXPECT_TRUE(R.Out.empty());
}

TEST(SpecCompile, StrategyInvarianceOnFig11) {
  test::Pipeline P = test::Pipeline::fromSource(fig11Source());
  for (const auto &[Name, Text] : builtinAnalysisSpecs()) {
    AnalysisRun Base = run(Name, P);
    ASSERT_TRUE(Base.ok()) << Name << ":\n" << Base.Diags.renderText();
    for (unsigned Shards : {7u, 0u}) {
      for (bool Compress : {false, true}) {
        AnalysisRun R = run(Name, P, Shards, Compress);
        ASSERT_TRUE(R.ok()) << Name;
        EXPECT_EQ(R.solutionHash(), Base.solutionHash())
            << Name << " shards=" << Shards << " compress=" << Compress;
        EXPECT_EQ(R.In, Base.In) << Name;
        EXPECT_EQ(R.Out, Base.Out) << Name;
      }
    }
  }
}

// The acceptance battery: all four built-ins, byte-identical between
// the iterative and arena backends (checked inside every run) and
// hash-identical across the strategy grid, on 100 generated programs.
TEST(SpecCompile, ByteIdentityBatteryAcrossGeneratedPrograms) {
  unsigned Solved = 0;
  for (unsigned Seed = 1; Seed <= 100; ++Seed) {
    GenConfig C = genConfigForBucket(Seed % NumGenBuckets, Seed);
    Program Prog = generateRandomProgram(C);
    CfgBuildResult CR = buildCfg(Prog);
    ASSERT_TRUE(CR.success()) << "seed " << Seed;
    auto IR = IntervalFlowGraph::build(CR.G);
    ASSERT_TRUE(IR.success()) << "seed " << Seed;
    for (const auto &[Name, Text] : builtinAnalysisSpecs()) {
      AnalysisRun Base =
          runAnalysisSpec(Name, Prog, CR.G, *IR.Ifg, 0, false);
      ASSERT_TRUE(Base.ok())
          << Name << " seed " << Seed << ":\n" << Base.Diags.renderText();
      for (const auto &[Shards, Compress] :
           {std::pair<unsigned, bool>{7, false}, {0, true}, {7, true}}) {
        AnalysisRun R =
            runAnalysisSpec(Name, Prog, CR.G, *IR.Ifg, Shards, Compress);
        ASSERT_TRUE(R.ok()) << Name << " seed " << Seed << " shards="
                            << Shards << " compress=" << Compress;
        ASSERT_EQ(R.solutionHash(), Base.solutionHash())
            << Name << " seed " << Seed << " shards=" << Shards
            << " compress=" << Compress;
      }
      ++Solved;
    }
  }
  EXPECT_EQ(Solved, 400u);
}

TEST(SpecCompile, CompressionAppliesOnDuplicateColumns) {
  test::Pipeline P = test::Pipeline::fromSource(fig11Source());
  // Hand-build a compiled analysis whose 64-item universe is 8 distinct
  // columns repeated 8 times: the class solver must collapse it.
  CompiledAnalysis C;
  C.Name = "dup";
  C.Direction = FlowDirection::Forward;
  C.Meet = Confluence::Any;
  C.NumNodes = P.Ifg->size();
  C.UniverseSize = 64;
  C.Gen.assign(C.NumNodes, BitVector(64));
  C.Kill.assign(C.NumNodes, BitVector(64));
  C.Boundary = BitVector(64);
  for (unsigned Item = 0; Item != 64; ++Item) {
    unsigned Family = Item % 8;
    C.Gen[Family % C.NumNodes].set(Item);
    if (Family & 1)
      C.Kill[(Family + 3) % C.NumNodes].set(Item);
  }
  for (unsigned I = 0; I != C.UniverseSize; ++I)
    C.ItemNames.push_back("it" + itostr(I));

  AnalysisRun Plain = runAnalysis(C, *P.Ifg, 0, false);
  AnalysisRun Compressed = runAnalysis(C, *P.Ifg, 0, true);
  ASSERT_TRUE(Plain.ok()) << Plain.Diags.renderText();
  ASSERT_TRUE(Compressed.ok()) << Compressed.Diags.renderText();
  EXPECT_TRUE(Compressed.Stats.CompressionApplied);
  EXPECT_LE(Compressed.Stats.CompressedClasses, 8u);
  EXPECT_EQ(Plain.solutionHash(), Compressed.solutionHash());
  EXPECT_EQ(Plain.In, Compressed.In);
  EXPECT_EQ(Plain.Out, Compressed.Out);
}

TEST(SpecCompile, ElidedItemsUnderAllConfluenceUsePhantomClass) {
  test::Pipeline P = test::Pipeline::fromSource(fig11Source());
  // Items 8..63 are never generated, killed, or in the boundary —
  // elided by the class solver. Under All confluence interior nodes
  // start at top, so elision is only sound through the phantom class;
  // the uncompressed solve is the oracle.
  CompiledAnalysis C;
  C.Name = "phantom";
  C.Direction = FlowDirection::Forward;
  C.Meet = Confluence::All;
  C.NumNodes = P.Ifg->size();
  C.UniverseSize = 64;
  C.Gen.assign(C.NumNodes, BitVector(64));
  C.Kill.assign(C.NumNodes, BitVector(64));
  C.Boundary = BitVector(64);
  for (unsigned Item = 0; Item != 8; ++Item) {
    C.Gen[Item % C.NumNodes].set(Item);
    C.Kill[(Item + 5) % C.NumNodes].set(Item);
  }
  for (unsigned I = 0; I != C.UniverseSize; ++I)
    C.ItemNames.push_back("it" + itostr(I));

  AnalysisRun Plain = runAnalysis(C, *P.Ifg, 0, false);
  AnalysisRun Compressed = runAnalysis(C, *P.Ifg, 0, true);
  ASSERT_TRUE(Plain.ok()) << Plain.Diags.renderText();
  ASSERT_TRUE(Compressed.ok()) << Compressed.Diags.renderText();
  EXPECT_TRUE(Compressed.Stats.CompressionApplied);
  EXPECT_EQ(Compressed.Stats.ElidedItems, 56u);
  EXPECT_EQ(Plain.In, Compressed.In);
  EXPECT_EQ(Plain.Out, Compressed.Out);
}

TEST(SpecCompile, RenderersCarrySolutionAndStats) {
  test::Pipeline P = test::Pipeline::fromSource(fig11Source());
  AnalysisRun R = run("liveness", P);
  ASSERT_TRUE(R.ok());
  std::string Text = R.renderText();
  EXPECT_NE(Text.find("analysis liveness"), std::string::npos);
  EXPECT_NE(Text.find("universe items"), std::string::npos);
  std::string Json = R.renderJson(/*IncludeStats=*/true);
  EXPECT_NE(Json.find("\"analysis\":\"liveness\""), std::string::npos);
  EXPECT_NE(Json.find("\"arena_sweeps\""), std::string::npos);
  EXPECT_NE(Json.find("\"worklist_peak\""), std::string::npos);
  // The deterministic form drops the stats entirely.
  std::string Bare = R.renderJson(/*IncludeStats=*/false);
  EXPECT_EQ(Bare.find("\"arena_sweeps\""), std::string::npos);
}

TEST(SpecCompile, PipelineRunsExtraAnalyses) {
  PipelineOptions Opts;
  Opts.ExtraAnalyses = {"liveness", "reaching"};
  PipelineResult R = compilePipeline(fig11Source(), Opts);
  ASSERT_TRUE(R.ok()) << R.Diags.renderText();
  ASSERT_EQ(R.Analyses.size(), 2u);
  EXPECT_EQ(R.Analyses[0].Name, "liveness");
  EXPECT_EQ(R.Analyses[1].Name, "reaching");
  EXPECT_GT(R.stageMicros(PipelineStage::Analyze), 0.0);

  // Failures merge into the pipeline diagnostics with a stage prefix.
  Opts.ExtraAnalyses = {"universe galaxies\ngen take\n"};
  PipelineResult Bad = compilePipeline(fig11Source(), Opts);
  EXPECT_FALSE(Bad.ok());
  bool Prefixed = false;
  for (const Diagnostic &D : Bad.Diags.all())
    Prefixed |= D.Message.rfind("analyze(", 0) == 0;
  EXPECT_TRUE(Prefixed);
}

TEST(SpecCompile, ExtraAnalysesArePartOfTheCacheKey) {
  PipelineOptions Plain, WithAnalyses;
  WithAnalyses.ExtraAnalyses = {"liveness"};
  EXPECT_NE(Plain.canonical(), WithAnalyses.canonical());
  EXPECT_NE(pipelineCacheKey(fig11Source(), Plain),
            pipelineCacheKey(fig11Source(), WithAnalyses));
  // Strategy knobs still share one entry, analyses included.
  PipelineOptions Sharded = WithAnalyses;
  Sharded.SolverShards = 7;
  Sharded.CompressUniverse = true;
  EXPECT_EQ(WithAnalyses.canonical(), Sharded.canonical());
}

TEST(SpecCompile, BatchServerServesAnalysesDeterministically) {
  const char *Source =
      "distribute x\\narray z\\ndo i = 1, n\\n  z(i) = x(i)\\nenddo\\n";
  auto Line = [&](const char *Extra) {
    return std::string("{\"id\": \"job\", \"source\": \"") + Source +
           "\", \"options\": {\"analyses\": [\"liveness\", \"reaching\"]" +
           Extra + "}}";
  };
  ServiceConfig SerialCfg;
  SerialCfg.Workers = 0;
  SerialCfg.CacheCapacity = 0;
  BatchServer Serial(SerialCfg);
  std::vector<std::string> A = Serial.run({Line("")});
  std::vector<std::string> B =
      Serial.run({Line(", \"solver_shards\": 7, \"compress_universe\": true")});
  ASSERT_EQ(A.size(), 1u);
  ASSERT_EQ(B.size(), 1u);
  // Same id, same payload: the strategy knobs may not change one byte.
  EXPECT_EQ(A[0], B[0]);
  EXPECT_NE(A[0].find("\"analyses\":"), std::string::npos);
  EXPECT_NE(A[0].find("\"name\":\"liveness\""), std::string::npos);
  EXPECT_NE(A[0].find("\"hash\":"), std::string::npos);

  // Malformed analyses option is a per-request error, not a crash.
  std::vector<std::string> Bad = Serial.run(
      {"{\"id\": \"b\", \"source\": \"v = 1\\n\", \"options\": "
       "{\"analyses\": \"liveness\"}}"});
  ASSERT_EQ(Bad.size(), 1u);
  EXPECT_NE(Bad[0].find("must be an array of strings"), std::string::npos);
}
