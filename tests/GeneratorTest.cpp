//===- tests/GeneratorTest.cpp - Random program generator tests -------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"
#include "support/Hashing.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

TEST(Generator, DeterministicInSeed) {
  GenConfig C;
  C.Seed = 42;
  C.TargetStmts = 60;
  std::string A = AstPrinter().print(generateRandomProgram(C));
  std::string B = AstPrinter().print(generateRandomProgram(C));
  EXPECT_EQ(A, B);
  C.Seed = 43;
  EXPECT_NE(A, AstPrinter().print(generateRandomProgram(C)));
}

TEST(Generator, SizeTracksTarget) {
  for (unsigned Target : {10u, 50u, 200u}) {
    GenConfig C;
    C.Seed = 9;
    C.TargetStmts = Target;
    Program P = generateRandomProgram(C);
    unsigned Count = 0;
    forEachStmt(P.getBody(), [&](const Stmt *) { ++Count; });
    EXPECT_GE(Count, Target / 2);
    EXPECT_LE(Count, Target * 3);
  }
}

TEST(Generator, EveryProgramBuildsACleanPipeline) {
  for (unsigned Seed = 100; Seed != 140; ++Seed) {
    GenConfig C;
    C.Seed = Seed;
    C.TargetStmts = 35;
    Program P = generateRandomProgram(C);
    CfgBuildResult CR = buildCfg(P);
    ASSERT_TRUE(CR.success())
        << "seed " << Seed << ": " << CR.Errors.front();
    auto IR = IntervalFlowGraph::build(CR.G);
    ASSERT_TRUE(IR.success())
        << "seed " << Seed << ": " << IR.Errors.front();
  }
}

TEST(Generator, RespectsDepthLimit) {
  GenConfig C;
  C.Seed = 5;
  C.TargetStmts = 120;
  C.MaxDepth = 2;
  Program P = generateRandomProgram(C);
  CfgBuildResult CR = buildCfg(P);
  ASSERT_TRUE(CR.success());
  auto IR = IntervalFlowGraph::build(CR.G);
  ASSERT_TRUE(IR.success());
  for (NodeId Id = 0; Id != IR.Ifg->size(); ++Id)
    EXPECT_LE(IR.Ifg->level(Id), 3u); // Depth 2 nesting + statement level.
}

TEST(Generator, GotoProbabilityControlsJumps) {
  GenConfig C;
  C.Seed = 17;
  C.TargetStmts = 80;
  C.GotoProb = 0.0;
  Program P = generateRandomProgram(C);
  unsigned Gotos = 0;
  forEachStmt(P.getBody(), [&](const Stmt *S) {
    Gotos += S->getKind() == Stmt::Kind::Goto;
  });
  EXPECT_EQ(Gotos, 0u);

  C.GotoProb = 0.5;
  Program P2 = generateRandomProgram(C);
  Gotos = 0;
  forEachStmt(P2.getBody(), [&](const Stmt *S) {
    Gotos += S->getKind() == Stmt::Kind::Goto;
  });
  EXPECT_GT(Gotos, 0u);
}

TEST(Generator, UsesDistributedArrays) {
  GenConfig C;
  C.Seed = 3;
  C.TargetStmts = 60;
  C.NumDistributed = 2;
  Program P = generateRandomProgram(C);
  EXPECT_TRUE(P.isDistributed("x0"));
  EXPECT_TRUE(P.isDistributed("x1"));
  EXPECT_FALSE(P.isDistributed("x2"));
  std::string Out = AstPrinter().print(P);
  EXPECT_NE(Out.find("x0("), std::string::npos);
}

// Pins the exact text of one seed's program. Generation uses only raw
// std::mt19937 draws plus portable integer arithmetic (see
// RandomProgram.h), so this text is identical on every machine and
// standard library; if this test fails, the generator's draw stream
// changed and every seed-derived regression expectation in the suite is
// suspect.
// Pins one program per structure-bucket family (goto-heavy, zero-trip
// heavy, wide universe) by content hash. The fuzzer's seed round and
// the corpus provenance headers both regenerate programs from
// (bucket, seed) pairs, so a silent change to either the draw stream or
// the bucket knob values in genConfigForBucket() would orphan every
// checked-in `--gen BUCKET --seed N` provenance line. The full text is
// printed on failure so the new hash can be re-pinned deliberately.
TEST(Generator, BucketSeedHashesPinned) {
  struct Pin {
    unsigned Bucket;
    const char *Hash;
  };
  const Pin Pins[] = {
      {1, "9bb6f9d44483868a"}, // goto-heavy
      {2, "1267cda8a7bd7d6d"}, // constant/zero-trip-bound heavy
      {3, "5d86baf599306dc3"}, // wide item universe
  };
  for (const Pin &P : Pins) {
    GenConfig C = genConfigForBucket(P.Bucket, /*Seed=*/1);
    std::string Text = AstPrinter().print(generateRandomProgram(C));
    EXPECT_EQ(hashToHex(fnv1a(Text)), P.Hash)
        << "bucket " << P.Bucket << " drifted; new text:\n"
        << Text;
  }

  // The buckets must also keep their qualitative shape, not just any
  // stable hash: a jump for the goto bucket, a guaranteed zero-trip
  // loop for the constant-bound bucket, and a widened distributed set
  // for the wide-universe bucket.
  auto TextFor = [](unsigned Bucket) {
    return AstPrinter().print(
        generateRandomProgram(genConfigForBucket(Bucket, 1)));
  };
  EXPECT_NE(TextFor(1).find("goto"), std::string::npos);
  EXPECT_NE(TextFor(2).find("= 1, 0"), std::string::npos);
  EXPECT_NE(TextFor(3).find("x7"), std::string::npos);
}

TEST(Generator, SeedSevenGoldenText) {
  GenConfig C;
  C.Seed = 7;
  C.TargetStmts = 12;
  const char *Expected = "distribute x0, x1, x2\n"
                         "array a0, a1, w\n"
                         "do i0 = 1, 3\n"
                         "  if (t(n)) then\n"
                         "    if (t(i0)) then\n"
                         "      x2(n - 0) = x1(3) + x2(n - 0)\n"
                         "    else\n"
                         "      w(n - 3) = x1(n - 3)\n"
                         "      do i1 = 1, n\n"
                         "        x1(2) = x1(a0(i0)) + x0(i0 + 3)\n"
                         "        w(8) = x1(i0 + 0) + x2(a0(i1))\n"
                         "        x0(i1 + 6) = x1(2 * i1) + x2(n - 1)\n"
                         "      enddo\n"
                         "    endif\n"
                         "    w(i0 + 9) = x0(i0 + 3) + x0(2 * i0)\n"
                         "  else\n"
                         "    if (t(i0)) goto 10\n"
                         "  endif\n"
                         "  w(n - 0) = 12\n"
                         "enddo\n"
                         "10 continue\n";
  EXPECT_EQ(AstPrinter().print(generateRandomProgram(C)), Expected);
}
