//===- tests/GeneratorTest.cpp - Random program generator tests -------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

TEST(Generator, DeterministicInSeed) {
  GenConfig C;
  C.Seed = 42;
  C.TargetStmts = 60;
  std::string A = AstPrinter().print(generateRandomProgram(C));
  std::string B = AstPrinter().print(generateRandomProgram(C));
  EXPECT_EQ(A, B);
  C.Seed = 43;
  EXPECT_NE(A, AstPrinter().print(generateRandomProgram(C)));
}

TEST(Generator, SizeTracksTarget) {
  for (unsigned Target : {10u, 50u, 200u}) {
    GenConfig C;
    C.Seed = 9;
    C.TargetStmts = Target;
    Program P = generateRandomProgram(C);
    unsigned Count = 0;
    forEachStmt(P.getBody(), [&](const Stmt *) { ++Count; });
    EXPECT_GE(Count, Target / 2);
    EXPECT_LE(Count, Target * 3);
  }
}

TEST(Generator, EveryProgramBuildsACleanPipeline) {
  for (unsigned Seed = 100; Seed != 140; ++Seed) {
    GenConfig C;
    C.Seed = Seed;
    C.TargetStmts = 35;
    Program P = generateRandomProgram(C);
    CfgBuildResult CR = buildCfg(P);
    ASSERT_TRUE(CR.success())
        << "seed " << Seed << ": " << CR.Errors.front();
    auto IR = IntervalFlowGraph::build(CR.G);
    ASSERT_TRUE(IR.success())
        << "seed " << Seed << ": " << IR.Errors.front();
  }
}

TEST(Generator, RespectsDepthLimit) {
  GenConfig C;
  C.Seed = 5;
  C.TargetStmts = 120;
  C.MaxDepth = 2;
  Program P = generateRandomProgram(C);
  CfgBuildResult CR = buildCfg(P);
  ASSERT_TRUE(CR.success());
  auto IR = IntervalFlowGraph::build(CR.G);
  ASSERT_TRUE(IR.success());
  for (NodeId Id = 0; Id != IR.Ifg->size(); ++Id)
    EXPECT_LE(IR.Ifg->level(Id), 3u); // Depth 2 nesting + statement level.
}

TEST(Generator, GotoProbabilityControlsJumps) {
  GenConfig C;
  C.Seed = 17;
  C.TargetStmts = 80;
  C.GotoProb = 0.0;
  Program P = generateRandomProgram(C);
  unsigned Gotos = 0;
  forEachStmt(P.getBody(), [&](const Stmt *S) {
    Gotos += S->getKind() == Stmt::Kind::Goto;
  });
  EXPECT_EQ(Gotos, 0u);

  C.GotoProb = 0.5;
  Program P2 = generateRandomProgram(C);
  Gotos = 0;
  forEachStmt(P2.getBody(), [&](const Stmt *S) {
    Gotos += S->getKind() == Stmt::Kind::Goto;
  });
  EXPECT_GT(Gotos, 0u);
}

TEST(Generator, UsesDistributedArrays) {
  GenConfig C;
  C.Seed = 3;
  C.TargetStmts = 60;
  C.NumDistributed = 2;
  Program P = generateRandomProgram(C);
  EXPECT_TRUE(P.isDistributed("x0"));
  EXPECT_TRUE(P.isDistributed("x1"));
  EXPECT_FALSE(P.isDistributed("x2"));
  std::string Out = AstPrinter().print(P);
  EXPECT_NE(Out.find("x0("), std::string::npos);
}

// Pins the exact text of one seed's program. Generation uses only raw
// std::mt19937 draws plus portable integer arithmetic (see
// RandomProgram.h), so this text is identical on every machine and
// standard library; if this test fails, the generator's draw stream
// changed and every seed-derived regression expectation in the suite is
// suspect.
TEST(Generator, SeedSevenGoldenText) {
  GenConfig C;
  C.Seed = 7;
  C.TargetStmts = 12;
  const char *Expected = "distribute x0, x1, x2\n"
                         "array a0, a1, w\n"
                         "do i0 = 1, 3\n"
                         "  if (t(n)) then\n"
                         "    if (t(i0)) then\n"
                         "      x2(n - 0) = x1(3) + x2(n - 0)\n"
                         "    else\n"
                         "      w(n - 3) = x1(n - 3)\n"
                         "      do i1 = 1, n\n"
                         "        x1(2) = x1(a0(i0)) + x0(i0 + 3)\n"
                         "        w(8) = x1(i0 + 0) + x2(a0(i1))\n"
                         "        x0(i1 + 6) = x1(2 * i1) + x2(n - 1)\n"
                         "      enddo\n"
                         "    endif\n"
                         "    w(i0 + 9) = x0(i0 + 3) + x0(2 * i0)\n"
                         "  else\n"
                         "    if (t(i0)) goto 10\n"
                         "  endif\n"
                         "  w(n - 0) = 12\n"
                         "enddo\n"
                         "10 continue\n";
  EXPECT_EQ(AstPrinter().print(generateRandomProgram(C)), Expected);
}
