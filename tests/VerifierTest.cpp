//===- tests/VerifierTest.cpp - Static checker negative tests ---------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The independent C1/C3/O1 verifier must actually *catch* broken
/// placements — these tests corrupt solver results in targeted ways and
/// check for the right diagnostic (guarding against a checker that
/// trivially accepts everything).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dataflow/GiveNTake.h"
#include "dataflow/Verifier.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

constexpr unsigned ItemX = 0;

NodeId findAssign(const Cfg &G, const std::string &Var) {
  for (NodeId Id = 0; Id != G.size(); ++Id) {
    const auto *AS = dyn_cast_or_null<AssignStmt>(G.node(Id).S);
    if (G.node(Id).Kind == NodeKind::Stmt && AS)
      if (const auto *V = dyn_cast<VarExpr>(AS->getLHS()))
        if (V->getName() == Var)
          return Id;
  }
  ADD_FAILURE() << "no assignment to " << Var;
  return InvalidNode;
}

bool hasViolation(const GntVerifyResult &V, const std::string &Substr) {
  for (const Diagnostic &D : V.Diags.all())
    if (D.Severity == DiagSeverity::Error &&
        D.render().find(Substr) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(Verifier, AcceptsCorrectRun) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\n");
  GntProblem Prob(P.G.size(), 1);
  Prob.TakeInit[findAssign(P.G, "w")].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  EXPECT_TRUE(verifyGntRun(Run).ok());
}

TEST(Verifier, CatchesMissingProduction) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\n");
  GntProblem Prob(P.G.size(), 1);
  Prob.TakeInit[findAssign(P.G, "w")].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  // Remove every production of the EAGER solution.
  for (BitVector &BV : Run.Result.Eager.ResIn)
    BV.reset();
  GntVerifyResult V = verifyGntRun(Run);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasViolation(V, "C3/EAGER"));
}

TEST(Verifier, CatchesProductionKilledBySteal) {
  Pipeline P = Pipeline::fromSource("v = 1\nu = 3\nw = 2\n");
  GntProblem Prob(P.G.size(), 1);
  NodeId V1 = findAssign(P.G, "v"), U = findAssign(P.G, "u"),
         W = findAssign(P.G, "w");
  Prob.StealInit[U].set(ItemX);
  Prob.TakeInit[W].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  // Move the (lazy) production above the steal: now insufficient.
  Run.Result.Lazy.ResIn[W].reset();
  Run.Result.Lazy.ResIn[V1].set(ItemX);
  GntVerifyResult Res = verifyGntRun(Run);
  EXPECT_FALSE(Res.ok());
  EXPECT_TRUE(hasViolation(Res, "C3/LAZY"));
}

TEST(Verifier, CatchesUnmatchedSend) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\n");
  GntProblem Prob(P.G.size(), 1);
  Prob.TakeInit[findAssign(P.G, "w")].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  // Delete the LAZY (receive) production: the send never completes.
  for (BitVector &BV : Run.Result.Lazy.ResIn)
    BV.reset();
  GntVerifyResult V = verifyGntRun(Run);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasViolation(V, "never matched"));
}

TEST(Verifier, CatchesDoubleSend) {
  Pipeline P = Pipeline::fromSource("v = 1\nu = 3\nw = 2\n");
  GntProblem Prob(P.G.size(), 1);
  NodeId V1 = findAssign(P.G, "v"), U = findAssign(P.G, "u"),
         W = findAssign(P.G, "w");
  Prob.TakeInit[W].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  // Add a second eager production before the receive.
  Run.Result.Eager.ResIn[V1].set(ItemX);
  Run.Result.Eager.ResIn[U].set(ItemX);
  GntVerifyResult Res = verifyGntRun(Run);
  EXPECT_FALSE(Res.ok());
  EXPECT_TRUE(hasViolation(Res, "second eager production"));
}

TEST(Verifier, CatchesReceiveWithoutSend) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\n");
  GntProblem Prob(P.G.size(), 1);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  // A lazy receive with no eager send anywhere.
  Run.Result.Lazy.ResIn[findAssign(P.G, "w")].set(ItemX);
  GntVerifyResult V = verifyGntRun(Run);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasViolation(V, "without prior send"));
}

TEST(Verifier, CatchesBranchImbalance) {
  // A send above a branch whose receive exists on one arm only.
  Pipeline P = Pipeline::fromSource(R"(
v = 1
if (c > 0) then
  w = 2
else
  u = 3
endif
)");
  GntProblem Prob(P.G.size(), 1);
  NodeId V1 = findAssign(P.G, "v"), W = findAssign(P.G, "w");
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  Run.Result.Eager.ResIn[V1].set(ItemX);
  Run.Result.Lazy.ResIn[W].set(ItemX); // Only the then arm receives.
  GntVerifyResult Res = verifyGntRun(Run);
  EXPECT_FALSE(Res.ok());
  EXPECT_TRUE(hasViolation(Res, "never matched"));
}

TEST(Verifier, ReportsRedundantProductionAsNote) {
  Pipeline P = Pipeline::fromSource("v = 1\nu = 3\nw = 2\n");
  GntProblem Prob(P.G.size(), 1);
  NodeId U = findAssign(P.G, "u"), W = findAssign(P.G, "w");
  Prob.TakeInit[W].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  // Insert a pointless second lazy pair in the middle: still balanced
  // and sufficient, but O1-redundant.
  Run.Result.Eager.ResIn[U].reset();
  Run.Result.Lazy.ResIn[U].set(ItemX);
  Run.Result.Eager.ResOut[U].set(ItemX);
  // Sequence on the only path: send(v)... recv(u), send(u-exit), recv(w):
  // balanced, but u's receive re-produces an available item.
  GntVerifyResult Res = verifyGntRun(Run);
  EXPECT_TRUE(Res.ok()) << Res.firstViolation();
  ASSERT_TRUE(Res.hasNotes());
  EXPECT_NE(Res.firstNote().find("O1"), std::string::npos);
}

TEST(Verifier, SolverOutputsAlwaysPassOnPaperFigures) {
  for (const char *Src :
       {fig11Source(), "do i = 1, n\nv = i\nenddo\nw = 2\n",
        "if (c > 0) then\nv = 1\nendif\nw = 2\n"}) {
    Pipeline P = Pipeline::fromSource(Src);
    GntProblem Prob(P.G.size(), 2);
    for (NodeId Id = 0; Id != P.G.size(); ++Id)
      if (P.G.node(Id).Kind == NodeKind::Stmt) {
        Prob.TakeInit[Id].set(Id % 2);
        if (Id % 3 == 0)
          Prob.StealInit[Id].set((Id + 1) % 2);
      }
    for (Direction Dir : {Direction::Before, Direction::After}) {
      Prob.Dir = Dir;
      GntRun Run = runGiveNTake(*P.Ifg, Prob);
      GntVerifyResult V = verifyGntRun(Run);
      EXPECT_TRUE(V.ok()) << Src << ": " << V.firstViolation();
    }
  }
}
