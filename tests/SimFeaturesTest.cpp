//===- tests/SimFeaturesTest.cpp - Simulator mechanics ----------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the trace simulator's cost model and execution
/// mechanics, independent of any placement strategy.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "comm/CommGen.h"
#include "sim/TraceSimulator.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

CommPlan planFor(Pipeline &P, CommOptions Opts = {}) {
  EXPECT_TRUE(P.Ifg.has_value());
  return generateComm(P.Prog, P.G, *P.Ifg, Opts);
}

} // namespace

TEST(SimFeatures, WorkAccounting) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\nu = v + w\n");
  CommPlan Plan = planFor(P);
  SimConfig C;
  C.WorkPerStmt = 2.5;
  SimStats S = simulate(P.Prog, Plan, C);
  EXPECT_EQ(S.Steps, 3u);
  EXPECT_DOUBLE_EQ(S.Work, 7.5);
  EXPECT_EQ(S.Messages, 0u);
}

TEST(SimFeatures, LoopTripCountsFromParams) {
  Pipeline P = Pipeline::fromSource("do i = 1, n\nv = i\nenddo\n");
  CommPlan Plan = planFor(P);
  for (long long N : {0, 1, 7, 100}) {
    SimConfig C;
    C.Params["n"] = N;
    SimStats S = simulate(P.Prog, Plan, C);
    // One step for the do statement plus one per iteration.
    EXPECT_EQ(S.Steps, 1u + static_cast<unsigned long long>(N)) << N;
  }
}

TEST(SimFeatures, UnknownBoundsUseDefaultTrip) {
  Pipeline P = Pipeline::fromSource("do i = 1, q(3)\nv = i\nenddo\n");
  CommPlan Plan = planFor(P);
  SimConfig C;
  C.DefaultTrip = 5;
  SimStats S = simulate(P.Prog, Plan, C);
  EXPECT_EQ(S.Steps, 1u + 5u);
}

TEST(SimFeatures, ScalarEnvironmentTracksAssignments) {
  // The loop bound is computed by the program itself.
  Pipeline P = Pipeline::fromSource(R"(
m = 3
m = m + 2
do i = 1, m
  v = i
enddo
)");
  CommPlan Plan = planFor(P);
  SimConfig C;
  SimStats S = simulate(P.Prog, Plan, C);
  EXPECT_EQ(S.Steps, 2u + 1u + 5u);
}

TEST(SimFeatures, BranchProbabilityExtremes) {
  Pipeline P = Pipeline::fromSource(R"(
if (t(1)) then
  v = 1
  w = 2
endif
u = 3
)");
  CommPlan Plan = planFor(P);
  SimConfig C;
  C.BranchTrueProb = 1.0;
  EXPECT_EQ(simulate(P.Prog, Plan, C).Steps, 1u + 2u + 1u);
  C.BranchTrueProb = 0.0;
  EXPECT_EQ(simulate(P.Prog, Plan, C).Steps, 1u + 1u);
}

TEST(SimFeatures, DeterministicAcrossRunsSameSeed) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
do i = 1, n
  if (t(i)) then
    u(i) = x(i)
  endif
enddo
)");
  CommPlan Plan = planFor(P);
  SimConfig C;
  C.Params["n"] = 40;
  C.BranchSeed = 7;
  SimStats A = simulate(P.Prog, Plan, C);
  SimStats B = simulate(P.Prog, Plan, C);
  EXPECT_EQ(A.Steps, B.Steps);
  EXPECT_EQ(A.Messages, B.Messages);
  EXPECT_DOUBLE_EQ(A.ExposedLatency, B.ExposedLatency);
}

TEST(SimFeatures, ExposedLatencyArithmetic) {
  // Send, then exactly K work units, then receive: exposure is
  // max(0, latency - K).
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u, w
do i = 1, k
  w(i) = i
enddo
u(1) = x(5)
)");
  CommPlan Plan = planFor(P);
  for (long long K : {0, 10, 49, 50, 51, 200}) {
    SimConfig C;
    C.Params["k"] = K;
    C.Latency = 50.0;
    SimStats S = simulate(P.Prog, Plan, C);
    // The send precedes the work loop; work between send and receive is
    // the do statement + K iterations.
    double Hidden = static_cast<double>(K) + 1.0;
    double Expected = std::max(0.0, 50.0 - Hidden);
    EXPECT_DOUBLE_EQ(S.ExposedLatency, Expected) << K;
  }
}

TEST(SimFeatures, VolumeUsesSectionSizes) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x, y
array u
u(1) = x(4)
do i = 1, n
  u(i) = y(2 * i)
enddo
)");
  CommPlan Plan = planFor(P);
  SimConfig C;
  C.Params["n"] = 30;
  SimStats S = simulate(P.Prog, Plan, C);
  // x(4): one element; y(2:60:2): 30 elements.
  EXPECT_EQ(S.Volume, 1u + 30u);
}

TEST(SimFeatures, TotalTimeComposition) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
u(1) = x(7)
)");
  CommPlan Plan = planFor(P);
  SimConfig C;
  C.Latency = 30.0;
  C.PerElement = 4.0;
  SimStats S = simulate(P.Prog, Plan, C);
  EXPECT_DOUBLE_EQ(S.totalTime(C), S.Work + S.ExposedLatency + 4.0);
}

TEST(SimFeatures, StepLimitGuardsRunaways) {
  Pipeline P = Pipeline::fromSource(R"(
array w
v = 0
10 v = v + 1
w(1) = v
if (v < 1000000) goto 10
)");
  CommPlan Plan = planFor(P);
  SimConfig C;
  C.MaxSteps = 1000;
  SimStats S = simulate(P.Prog, Plan, C);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.Errors.front().find("step limit"), std::string::npos);
  EXPECT_LE(S.Steps, 1000u);
}

TEST(SimFeatures, FortranIndexAfterLoop) {
  // The index is hi+1 after a completed loop; programs may use it.
  Pipeline P = Pipeline::fromSource(R"(
do i = 1, n
  v = i
enddo
do j = 1, i
  w = j
enddo
)");
  CommPlan Plan = planFor(P);
  SimConfig C;
  C.Params["n"] = 4;
  SimStats S = simulate(P.Prog, Plan, C);
  // First loop: 1 + 4; second: bound i = 5 -> 1 + 5.
  EXPECT_EQ(S.Steps, 5u + 6u);
}
