//===- tests/SimulatorTest.cpp - Trace simulator tests ----------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Dynamic validation of communication plans under the distributed-memory
/// cost model: message counts and latency hiding for the paper's Figure
/// 1/2 scenario (experiment E1), zero-trip over-communication accounting
/// (E10), and the dynamic C1/C3 checks.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "baseline/Baselines.h"
#include "comm/CommGen.h"
#include "sim/TraceSimulator.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

const char *Fig2Source = R"(
distribute x
array a, y, z, u
do i = 1, n
  y(i) = 1
enddo
if (test) then
  do j = 1, n
    z(j) = 1
  enddo
  do k = 1, n
    u(k) = x(a(k))
  enddo
else
  do l = 1, n
    u(l) = x(a(l))
  enddo
endif
)";

SimConfig configN(long long N, long long Test = 1) {
  SimConfig C;
  C.Params["n"] = N;
  C.Params["test"] = Test;
  C.Latency = 100.0;
  return C;
}

} // namespace

TEST(Simulator, Fig2GntOneHiddenMessage) {
  Pipeline P = Pipeline::fromSource(Fig2Source);
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);

  SimStats S = simulate(P.Prog, Plan, configN(50));
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  // One vectorized message of the whole section.
  EXPECT_EQ(S.Messages, 1u);
  EXPECT_EQ(S.Volume, 50u);
  // The i and j loops (100 statements of work) hide the latency of 100.
  EXPECT_EQ(S.ExposedLatency, 0.0);
  EXPECT_EQ(S.Wasted, 0u);
  EXPECT_EQ(S.Redundant, 0u);

  // The else path behaves identically.
  SimStats S2 = simulate(P.Prog, Plan, configN(50, /*Test=*/0));
  EXPECT_TRUE(S2.ok());
  EXPECT_EQ(S2.Messages, 1u);
}

TEST(Simulator, Fig2NaiveManyExposedMessages) {
  Pipeline P = Pipeline::fromSource(Fig2Source);
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Naive = naivePlacement(P.Prog, P.G, *P.Ifg);

  SimStats S = simulate(P.Prog, Naive, configN(50));
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  // One element message per iteration of the consuming loop.
  EXPECT_EQ(S.Messages, 50u);
  EXPECT_EQ(S.Volume, 50u);
  // Nothing hides the latency: every message is fully exposed.
  EXPECT_GE(S.ExposedLatency, 50 * 99.0);
}

TEST(Simulator, Fig2AtomicHasNoHiding) {
  Pipeline P = Pipeline::fromSource(Fig2Source);
  ASSERT_TRUE(P.Ifg.has_value());
  CommOptions Opts;
  Opts.Atomic = true;
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg, Opts);

  SimStats S = simulate(P.Prog, Plan, configN(50));
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  EXPECT_EQ(S.Messages, 1u);
  // Atomic operations cannot overlap communication with computation.
  EXPECT_EQ(S.ExposedLatency, 100.0);
}

TEST(Simulator, Fig3WriteThenRead) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array a, y, w
if (test) then
  do i = 1, n
    x(a(i)) = 1
  enddo
  do j = 1, n
    y(j) = x(j + 5)
  enddo
endif
do k = 1, n
  w(k) = x(k + 5)
enddo
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);

  // Taken branch: one write-back plus one read.
  SimStats S = simulate(P.Prog, Plan, configN(40));
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  EXPECT_EQ(S.Messages, 2u);

  // Untaken branch: only the read (on the synthesized else path).
  SimStats S2 = simulate(P.Prog, Plan, configN(40, /*Test=*/0));
  EXPECT_TRUE(S2.ok()) << (S2.Errors.empty() ? "" : S2.Errors.front());
  EXPECT_EQ(S2.Messages, 1u);
}

TEST(Simulator, ZeroTripOverCommunicationIsWasteNotError) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
do k = 1, m
  u(k) = x(k)
enddo
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);

  SimConfig C;
  C.Params["n"] = 10;
  C.Params["m"] = 0; // The loop never executes.
  SimStats S = simulate(P.Prog, Plan, C);
  // Hoisted communication still happens: correct (C1 balanced) but
  // wasted — the slight over-communication the paper accepts (Section 2).
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  EXPECT_EQ(S.Messages, 1u);
  EXPECT_EQ(S.Wasted, 1u);

  // With hoisting disabled, a zero-trip loop communicates nothing.
  CommOptions NoHoist;
  NoHoist.HoistZeroTrip = false;
  CommPlan Plan2 = generateComm(P.Prog, P.G, *P.Ifg, NoHoist);
  SimStats S2 = simulate(P.Prog, Plan2, C);
  EXPECT_TRUE(S2.ok());
  EXPECT_EQ(S2.Messages, 0u);
  EXPECT_EQ(S2.Wasted, 0u);
}

TEST(Simulator, Fig14JumpPathsBalanced) {
  Pipeline P = Pipeline::fromSource(fig11Source());
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);

  // Exercise both the goto path and the fallthrough path across many
  // branch seeds; balance and sufficiency must hold dynamically.
  for (unsigned Seed = 1; Seed != 12; ++Seed) {
    SimConfig C = configN(20);
    C.Params.erase("test"); // test(i) is an opaque call: random.
    C.BranchSeed = Seed;
    SimStats S = simulate(P.Prog, Plan, C);
    EXPECT_TRUE(S.ok()) << "seed " << Seed << ": "
                        << (S.Errors.empty() ? "" : S.Errors.front());
    EXPECT_EQ(S.Wasted, 0u) << "seed " << Seed;
  }
}

TEST(Simulator, DetectsInsufficientPlan) {
  // An empty plan for a program that consumes distributed data must
  // trip the dynamic C3 check.
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
u(1) = x(5)
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Broken;
  Broken.Refs = analyzeReferences(P.Prog, P.G);
  buildCommProblems(Broken.Refs, P.G, *P.Ifg, CommOptions(),
                    Broken.ReadProblem, Broken.WriteProblem);
  SimStats S = simulate(P.Prog, Broken, configN(10));
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.Errors.front().find("C3"), std::string::npos);
}

TEST(Simulator, DetectsUnbalancedPlan) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
u(1) = x(5)
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Broken;
  Broken.Refs = analyzeReferences(P.Prog, P.G);
  buildCommProblems(Broken.Refs, P.G, *P.Ifg, CommOptions(),
                    Broken.ReadProblem, Broken.WriteProblem);
  // A receive with no matching send.
  const Stmt *First = P.Prog.getBody().front().get();
  Broken.Anchored[{First, EmitWhere::Before}].push_back(
      {CommOpKind::ReadRecv, 0});
  SimStats S = simulate(P.Prog, Broken, configN(10));
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.Errors.front().find("C1"), std::string::npos);
}

TEST(Simulator, GotoControlFlow) {
  // Forward and backward gotos execute correctly (step counts prove it).
  Pipeline P = Pipeline::fromSource(R"(
array w
v = 0
10 v = v + 1
if (v < 5) goto 10
w(1) = v
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);
  SimConfig C;
  SimStats S = simulate(P.Prog, Plan, C);
  EXPECT_TRUE(S.ok());
  // v=0, then 5 increments, 5 branch evaluations, final store.
  EXPECT_EQ(S.Steps, 1u + 5u + 5u + 1u);
}
