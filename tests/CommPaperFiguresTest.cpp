//===- tests/CommPaperFiguresTest.cpp - Figures 1/2, 3 and 14 ---------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Experiments E1, E2 and E5 of DESIGN.md: the communication placements
/// the paper derives for its three worked examples.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "comm/CommGen.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

/// Asserts \p Needle occurs exactly once in \p Hay and returns its
/// position.
size_t findOnce(const std::string &Hay, const std::string &Needle) {
  size_t First = Hay.find(Needle);
  EXPECT_NE(First, std::string::npos) << "missing: " << Needle;
  if (First == std::string::npos)
    return 0;
  EXPECT_EQ(Hay.find(Needle, First + 1), std::string::npos)
      << "duplicated: " << Needle;
  return First;
}

CommPlan planFor(Pipeline &P, CommOptions Opts = {}) {
  EXPECT_TRUE(P.Ifg.has_value());
  return generateComm(P.Prog, P.G, *P.Ifg, Opts);
}

} // namespace

//===----------------------------------------------------------------------===//
// Figure 1 -> Figure 2: one vectorized READ, hidden behind the i loop.
//===----------------------------------------------------------------------===//

TEST(CommFigures, Fig2ReadPlacement) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array a, y, z, u
do i = 1, n
  y(i) = 1
enddo
if (test) then
  do j = 1, n
    z(j) = 1
  enddo
  do k = 1, n
    u(k) = x(a(k))
  enddo
else
  do l = 1, n
    u(l) = x(a(l))
  enddo
endif
)");
  CommPlan Plan = planFor(P);

  // x(a(k)) and x(a(l)) are one item, by subscript value numbering.
  EXPECT_EQ(Plan.Refs.Items.size(), 1u);
  EXPECT_EQ(Plan.Refs.Items.item(0).Key, "x(a(1:n))");

  GntVerifyResult V = Plan.verify();
  EXPECT_TRUE(V.ok()) << V.firstViolation();

  std::string Out = Plan.annotate(P.Prog);
  SCOPED_TRACE(Out);

  // One send at the very top (latency hidden behind the i loop)...
  size_t Send = findOnce(Out, "Read_Send{x(a(1:n))}");
  EXPECT_LT(Send, Out.find("do i"));
  // ...and one receive per path, each directly before its consumer loop.
  size_t Recv1 = Out.find("Read_Recv{x(a(1:n))}");
  size_t Recv2 = Out.find("Read_Recv{x(a(1:n))}", Recv1 + 1);
  ASSERT_NE(Recv1, std::string::npos);
  ASSERT_NE(Recv2, std::string::npos);
  EXPECT_EQ(Out.find("Read_Recv{x(a(1:n))}", Recv2 + 1), std::string::npos);
  // The first receive sits after the j loop, before the k loop.
  EXPECT_GT(Recv1, Out.find("do j"));
  EXPECT_LT(Recv1, Out.find("do k"));
  // The second sits in the else branch, before the l loop.
  EXPECT_GT(Recv2, Out.find("else"));
  EXPECT_LT(Recv2, Out.find("do l"));

  // Exactly 1 static send and 2 receives; no writes (x is never defined).
  auto Counts = Plan.staticCounts();
  EXPECT_EQ(Counts[CommOpKind::ReadSend], 1u);
  EXPECT_EQ(Counts[CommOpKind::ReadRecv], 2u);
  EXPECT_EQ(Counts[CommOpKind::WriteSend], 0u);
}

//===----------------------------------------------------------------------===//
// Figure 3: WRITE placement with definitions giving reads "for free",
// plus the READ on the synthesized else branch.
//===----------------------------------------------------------------------===//

TEST(CommFigures, Fig3WriteAndRead) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array a, y, w
if (test) then
  do i = 1, n
    x(a(i)) = 1
  enddo
  do j = 1, n
    y(j) = x(j + 5)
  enddo
endif
do k = 1, n
  w(k) = x(k + 5)
enddo
)");
  CommPlan Plan = planFor(P);

  GntVerifyResult V = Plan.verify();
  EXPECT_TRUE(V.ok()) << V.firstViolation();

  std::string Out = Plan.annotate(P.Prog);
  SCOPED_TRACE(Out);

  // The write-back of the indirect definition goes between the i and j
  // loops, send before receive.
  size_t WS = findOnce(Out, "Write_Send{x(a(1:n))}");
  size_t WR = findOnce(Out, "Write_Recv{x(a(1:n))}");
  EXPECT_GT(WS, Out.find("enddo"));
  EXPECT_LT(WS, WR);
  EXPECT_LT(WR, Out.find("do j"));

  // The READ of x(6:n+5): on the then path after the write-back, and on
  // the (synthesized) else path. Both before their consumers.
  size_t RS1 = Out.find("Read_Send{x(6:n+5)}");
  size_t RS2 = Out.find("Read_Send{x(6:n+5)}", RS1 + 1);
  ASSERT_NE(RS1, std::string::npos);
  ASSERT_NE(RS2, std::string::npos);
  EXPECT_GT(RS1, WR);
  EXPECT_LT(RS1, Out.find("do j"));
  size_t Else = Out.find("else");
  ASSERT_NE(Else, std::string::npos);
  EXPECT_GT(RS2, Else);

  // Receives are balanced across both paths: one on each.
  size_t RR1 = Out.find("Read_Recv{x(6:n+5)}");
  size_t RR2 = Out.find("Read_Recv{x(6:n+5)}", RR1 + 1);
  ASSERT_NE(RR2, std::string::npos);
  EXPECT_EQ(Out.find("Read_Recv{x(6:n+5)}", RR2 + 1), std::string::npos);

  auto Counts = Plan.staticCounts();
  EXPECT_EQ(Counts[CommOpKind::WriteSend], 1u);
  EXPECT_EQ(Counts[CommOpKind::WriteRecv], 1u);
  EXPECT_EQ(Counts[CommOpKind::ReadSend], 2u);
  EXPECT_EQ(Counts[CommOpKind::ReadRecv], 2u);
}

//===----------------------------------------------------------------------===//
// Figure 11 -> Figure 14: the full annotated program.
//===----------------------------------------------------------------------===//

TEST(CommFigures, Fig14AnnotatedProgram) {
  Pipeline P = Pipeline::fromSource(fig11Source());
  CommPlan Plan = planFor(P);

  GntVerifyResult V = Plan.verify();
  EXPECT_TRUE(V.ok()) << V.firstViolation();

  std::string Out = Plan.annotate(P.Prog);
  SCOPED_TRACE(Out);

  // Read_Send{x(11:n+10)} right at the top, before the i loop: the whole
  // program hides its latency.
  size_t SendX = findOnce(Out, "Read_Send{x(11:n+10)}");
  EXPECT_LT(SendX, Out.find("do i"));

  // Read_Send{y(b(1:n))} twice: on the fallthrough path after the i loop
  // and on the goto path inside `if (test(i))` (Figure 14 prints it
  // before the goto).
  size_t SendY1 = Out.find("Read_Send{y(b(1:n))}");
  size_t SendY2 = Out.find("Read_Send{y(b(1:n))}", SendY1 + 1);
  ASSERT_NE(SendY1, std::string::npos);
  ASSERT_NE(SendY2, std::string::npos);
  EXPECT_EQ(Out.find("Read_Send{y(b(1:n))}", SendY2 + 1), std::string::npos);
  // One of them precedes the goto inside the expanded if.
  size_t Goto = Out.find("goto 77");
  ASSERT_NE(Goto, std::string::npos);
  EXPECT_LT(SendY1, Goto);
  // The other follows the i loop and precedes the j loop.
  EXPECT_GT(SendY2, Out.find("enddo"));
  EXPECT_LT(SendY2, Out.find("do j"));

  // Both receives merge at label 77, before the k loop.
  size_t RecvX = findOnce(Out, "Read_Recv{x(11:n+10)}");
  size_t RecvY = findOnce(Out, "Read_Recv{y(b(1:n))}");
  size_t LoopK = Out.find("77 do k");
  ASSERT_NE(LoopK, std::string::npos);
  EXPECT_LT(RecvX, LoopK);
  EXPECT_LT(RecvY, LoopK);

  // The write-back of y(a(1:n)): the paper's Figure 14 shows the
  // *idealized* placement at the two loop exits with partial sections
  // y(a(1:i)); its implemented Section 5.3 approach — reproduced here —
  // poisons jump-exited loops for AFTER problems and therefore writes
  // back once per iteration, balanced on both the goto and fallthrough
  // paths. (Section 6 lists the better treatment as future work: "may
  // miss some otherwise legal optimizations".)
  size_t WS1 = findOnce(Out, "Write_Send{y(a(1:n))}");
  size_t DefY = Out.find("y(a(i)) = 0");
  ASSERT_NE(DefY, std::string::npos);
  EXPECT_GT(WS1, DefY);
  EXPECT_LT(WS1, Goto);
  // Two balanced receives: inside `if test(i)` (goto path) and at the
  // body end (fallthrough path).
  size_t WR1 = Out.find("Write_Recv{y(a(1:n))}");
  size_t WR2 = Out.find("Write_Recv{y(a(1:n))}", WR1 + 1);
  ASSERT_NE(WR1, std::string::npos);
  ASSERT_NE(WR2, std::string::npos);
  EXPECT_EQ(Out.find("Write_Recv{y(a(1:n))}", WR2 + 1), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Option behaviors on the Figure 11 program.
//===----------------------------------------------------------------------===//

TEST(CommFigures, AtomicPlacement) {
  Pipeline P = Pipeline::fromSource(fig11Source());
  CommOptions Opts;
  Opts.Atomic = true;
  CommPlan Plan = planFor(P, Opts);
  std::string Out = Plan.annotate(P.Prog);
  SCOPED_TRACE(Out);
  // Atomic reads at the receive points; no split send/recv anywhere.
  EXPECT_EQ(Out.find("Read_Send"), std::string::npos);
  EXPECT_EQ(Out.find("Read_Recv"), std::string::npos);
  EXPECT_NE(Out.find("Read{x(11:n+10)}"), std::string::npos);
  EXPECT_NE(Out.find("Write{y(a(1:n))}"), std::string::npos);
}

TEST(CommFigures, OwnerComputesSkipsWrites) {
  Pipeline P = Pipeline::fromSource(fig11Source());
  CommOptions Opts;
  Opts.OwnerComputes = true;
  CommPlan Plan = planFor(P, Opts);
  auto Counts = Plan.staticCounts();
  EXPECT_EQ(Counts[CommOpKind::WriteSend], 0u);
  EXPECT_EQ(Counts[CommOpKind::WriteRecv], 0u);
  // Reads are still generated.
  EXPECT_GT(Counts[CommOpKind::ReadSend], 0u);
}

TEST(CommFigures, ZeroTripOptOutKeepsCommInLoop) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
do k = 1, n
  u(k) = x(k)
enddo
)");
  CommOptions Hoist;
  CommPlan Plan = planFor(P, Hoist);
  std::string Out = Plan.annotate(P.Prog);
  // Default: hoisted above the loop.
  EXPECT_LT(Out.find("Read_Send{x(1:n)}"), Out.find("do k"));

  CommOptions NoHoist;
  NoHoist.HoistZeroTrip = false;
  CommPlan Plan2 = planFor(P, NoHoist);
  std::string Out2 = Plan2.annotate(P.Prog);
  SCOPED_TRACE(Out2);
  // Opt-out: communication stays inside the loop, before the consumer.
  EXPECT_GT(Out2.find("Read_Send{x(1:n)}"), Out2.find("do k"));
  GntVerifyResult V = Plan2.verify();
  EXPECT_TRUE(V.ok()) << V.firstViolation();
}
