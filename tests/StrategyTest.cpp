//===- tests/StrategyTest.cpp - Placement-strategy zoo battery --------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The strategy-tournament test battery (DESIGN.md §15):
///
///  - `balanced` through the strategy dispatcher is byte-identical to
///    the default pipeline across solver shards and universe
///    compression, over a 100-seed generated suite;
///  - `speculative` degrades to balanced byte-identically without a
///    usable profile, never regresses the expected dynamic message
///    cost under the profile that guided it, and strictly beats
///    balanced on the biased-branch family;
///  - `lospre` reproduces LCM's dataflow exactly on jump-free graphs
///    and never places more dynamic READ messages than the LCM
///    baseline;
///  - every strategy passes the static auditor's re-checks, is
///    deterministic across shard counts, compression, and gntd worker
///    counts, and the strategy/profile knobs split every cache key
///    (the key-audit halves live in PipelineTest and StageCacheTest).
///
//===----------------------------------------------------------------------===//

#include "baseline/LazyCodeMotion.h"
#include "cfg/CfgBuilder.h"
#include "comm/Strategy.h"
#include "dataflow/Lospre.h"
#include "frontend/Parser.h"
#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"
#include "service/BatchServer.h"
#include "service/Pipeline.h"
#include "sim/TraceSimulator.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace gnt;

namespace {

Program makeProgram(unsigned Seed, unsigned Stmts = 30,
                    double GotoProb = 0.1) {
  GenConfig C;
  C.Seed = Seed;
  C.TargetStmts = Stmts;
  C.GotoProb = GotoProb;
  return generateRandomProgram(C);
}

struct Built {
  Program Prog;
  Cfg G;
  std::optional<IntervalFlowGraph> Ifg;
};

std::optional<Built> buildProgram(Program Prog) {
  Built B;
  B.Prog = std::move(Prog);
  CfgBuildResult CR = buildCfg(B.Prog);
  EXPECT_TRUE(CR.success()) << (CR.Errors.empty() ? "" : CR.Errors.front());
  if (!CR.success())
    return std::nullopt;
  B.G = std::move(CR.G);
  auto IR = IntervalFlowGraph::build(B.G);
  EXPECT_TRUE(IR.success()) << (IR.Errors.empty() ? "" : IR.Errors.front());
  if (!IR.success())
    return std::nullopt;
  B.Ifg = std::move(*IR.Ifg);
  return B;
}

/// A copy of \p Plan with every WRITE-side operation removed, so the
/// simulator's Messages counter compares READ placement only. The
/// lospre and LCM planners share a read model (atomic reads) but not a
/// write model (balanced GIVE-N-TAKE writes vs naive per-definition
/// pairs), so the dominance comparison must strip writes from both.
CommPlan stripWriteOps(const CommPlan &Plan) {
  CommPlan R = Plan;
  for (auto &[Key, Ops] : R.Anchored) {
    std::vector<CommOp> Reads;
    for (const CommOp &Op : Ops)
      if (Op.Kind != CommOpKind::WriteSend &&
          Op.Kind != CommOpKind::WriteRecv &&
          Op.Kind != CommOpKind::AtomicWrite)
        Reads.push_back(Op);
    Ops = std::move(Reads);
  }
  return R;
}

SimConfig simConfig(unsigned Seed, double TrueProb = 0.5) {
  SimConfig C;
  C.Params["n"] = 9;
  C.BranchSeed = Seed;
  C.BranchTrueProb = TrueProb;
  return C;
}

std::string readCorpusFile(const std::string &Name) {
  std::ifstream In(std::string(GNT_CORPUS_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << Name;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

const char *const kCorpusFiles[] = {
    "branch_redefine.fm",          "fuzz_deep_nest_jump.fm",
    "fuzz_double_jump_synthetic.fm", "fuzz_jump_storm.fm",
    "fuzz_wide_zero_trip_jump.fm", "fuzz_zero_trip_double_jump.fm",
    "fuzz_zero_trip_jump_indirect.fm", "goto_double_exit.fm",
    "nested_if_indirect.fm",
};

/// The acceptance family: a loop whose biased branch consumes a
/// loop-invariant distributed section on its likely arm. Balanced
/// placement pays one message per taken arm; speculation hoists the
/// read above the branch and (transitively) out of the loop.
const char *kBiasedBranchSource = R"(
distribute x, y
do i = 1, n
  if (i > 1) then
    y(i) = x(5) + 1
  else
    y(i) = 2
  endif
enddo
)";

//===----------------------------------------------------------------------===//
// Names and profile format
//===----------------------------------------------------------------------===//

TEST(Strategy, NamesRoundTrip) {
  for (PlacementStrategy S :
       {PlacementStrategy::Balanced, PlacementStrategy::Speculative,
        PlacementStrategy::Lospre}) {
    PlacementStrategy Parsed;
    ASSERT_TRUE(parsePlacementStrategy(placementStrategyName(S), Parsed));
    EXPECT_EQ(Parsed, S);
  }
  PlacementStrategy Out;
  EXPECT_FALSE(parsePlacementStrategy("eager", Out));
  EXPECT_FALSE(parsePlacementStrategy("", Out));
  EXPECT_FALSE(parsePlacementStrategy("Balanced", Out));
}

TEST(Strategy, ProfileFormatRoundTrips) {
  ExecProfile P;
  P.Stmt[0] = 1;
  P.Stmt[3] = 12.5;
  P.Branch[1] = {7, 2};
  P.Loop[0] = 9;

  std::string Text = renderExecProfile(P);
  EXPECT_EQ(Text.substr(0, Text.find('\n')), "gnt-profile-v1");

  ExecProfile Q;
  std::string Err;
  ASSERT_TRUE(parseExecProfile(Text, Q, Err)) << Err;
  EXPECT_EQ(Q.Stmt, P.Stmt);
  EXPECT_EQ(Q.Branch, P.Branch);
  EXPECT_EQ(Q.Loop, P.Loop);

  // Empty text is the empty profile, not an error.
  ASSERT_TRUE(parseExecProfile("", Q, Err)) << Err;
  EXPECT_TRUE(Q.empty());
  ASSERT_TRUE(parseExecProfile("  \n\n", Q, Err)) << Err;
  EXPECT_TRUE(Q.empty());

  // Malformed inputs fail with a line-numbered message.
  EXPECT_FALSE(parseExecProfile("stmt 0 1\n", Q, Err)); // Missing header.
  EXPECT_NE(Err.find("gnt-profile-v1"), std::string::npos);
  EXPECT_FALSE(parseExecProfile("gnt-profile-v1\nstmt 0\n", Q, Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos);
  EXPECT_FALSE(parseExecProfile("gnt-profile-v1\nbranch 1 4\n", Q, Err));
  EXPECT_FALSE(parseExecProfile("gnt-profile-v1\nedge 0 1\n", Q, Err));
  EXPECT_NE(Err.find("edge"), std::string::npos);
  EXPECT_FALSE(parseExecProfile("gnt-profile-v1\nstmt 0 -3\n", Q, Err));
}

//===----------------------------------------------------------------------===//
// Expected cost vs the simulator
//===----------------------------------------------------------------------===//

TEST(Strategy, ExpectedCostMatchesSimulatorOnJumpFreePrograms) {
  // On jump-free programs the anchor-frequency model is exact: every
  // message-charging operation fires exactly anchor-frequency times, so
  // the expected cost of a plan under the profile of any execution
  // equals that execution's Messages count. (Gotos break this: the
  // After anchor of a goto fires on the jump path and backward-jump
  // arrivals suppress entry anchors.)
  unsigned Checked = 0;
  for (unsigned Seed = 1; Seed <= 20; ++Seed) {
    auto B = buildProgram(makeProgram(Seed, 30, /*GotoProb=*/0.0));
    ASSERT_TRUE(B) << "seed " << Seed;
    if (B->Ifg->hasJumpEdges())
      continue;
    CommPlan Plan = generateComm(B->Prog, B->G, *B->Ifg);
    SimStats S = simulate(B->Prog, Plan, simConfig(Seed));
    ASSERT_TRUE(S.ok()) << "seed " << Seed << ": " << S.Errors.front();
    double Cost = expectedMessageCost(B->Prog, Plan, S.Profile);
    EXPECT_DOUBLE_EQ(Cost, static_cast<double>(S.Messages))
        << "seed " << Seed;
    ++Checked;
  }
  EXPECT_GE(Checked, 15u);
}

//===----------------------------------------------------------------------===//
// Satellite 1: balanced byte-identity, determinism, audit safety
//===----------------------------------------------------------------------===//

TEST(Strategy, BalancedIsByteIdenticalToDefaultOver100Seeds) {
  for (unsigned Seed = 1; Seed <= 100; ++Seed) {
    std::string Source = AstPrinter().print(makeProgram(Seed));
    PipelineOptions Def;
    PipelineResult Base = compilePipeline(Source, Def);
    ASSERT_TRUE(Base.ok()) << "seed " << Seed << ": "
                           << Base.Diags.renderText();
    for (unsigned Shards : {1u, 7u}) {
      for (bool Compress : {false, true}) {
        PipelineOptions O;
        O.Strategy = PlacementStrategy::Balanced;
        O.SolverShards = Shards;
        O.CompressUniverse = Compress;
        PipelineResult R = compilePipeline(Source, O);
        ASSERT_TRUE(R.ok()) << "seed " << Seed;
        EXPECT_EQ(R.Annotated, Base.Annotated)
            << "seed " << Seed << " shards " << Shards << " compress "
            << Compress;
        EXPECT_EQ(resultSignature(R), resultSignature(Base))
            << "seed " << Seed << " shards " << Shards << " compress "
            << Compress;
      }
    }
  }
}

TEST(Strategy, EveryStrategyIsShardAndCompressionDeterministic) {
  // The non-balanced strategies route their GNT solves through the same
  // sharded/compressed backends, so their output must be invariant too.
  for (unsigned Seed : {3u, 11u, 19u, 27u}) {
    std::string Source = AstPrinter().print(makeProgram(Seed));
    std::string Profile;
    {
      // A real profile so `speculative` actually takes its augmented
      // path where the program offers a biased branch.
      PipelineOptions Bal;
      PipelineResult R = compilePipeline(Source, Bal);
      ASSERT_TRUE(R.ok()) << "seed " << Seed;
      SimStats S =
          simulate(*R.Prog, *R.Plan, simConfig(Seed, /*TrueProb=*/0.9));
      Profile = renderExecProfile(S.Profile);
    }
    for (PlacementStrategy Strat :
         {PlacementStrategy::Speculative, PlacementStrategy::Lospre}) {
      PipelineOptions Ref;
      Ref.Strategy = Strat;
      Ref.Profile = Strat == PlacementStrategy::Speculative ? Profile : "";
      PipelineResult Base = compilePipeline(Source, Ref);
      ASSERT_TRUE(Base.ok())
          << "seed " << Seed << ": " << Base.Diags.renderText();
      for (unsigned Shards : {1u, 7u}) {
        for (bool Compress : {false, true}) {
          PipelineOptions O = Ref;
          O.SolverShards = Shards;
          O.CompressUniverse = Compress;
          PipelineResult R = compilePipeline(Source, O);
          ASSERT_TRUE(R.ok()) << "seed " << Seed;
          EXPECT_EQ(R.Annotated, Base.Annotated)
              << placementStrategyName(Strat) << " seed " << Seed
              << " shards " << Shards << " compress " << Compress;
          EXPECT_EQ(resultSignature(R), resultSignature(Base))
              << placementStrategyName(Strat) << " seed " << Seed;
        }
      }
    }
  }
}

TEST(Strategy, EveryStrategyPassesTheAuditOnGeneratedPrograms) {
  // The auditor re-derives each run's solution from its own oriented
  // problem, so a self-consistent augmented (speculative) run and the
  // balanced write run of a lospre plan must both re-check clean. The
  // lospre READ side has no GNT run — there is nothing to audit — so
  // the audit covers its WRITE half and the simulator (below) covers
  // the reads dynamically.
  for (unsigned Seed = 1; Seed <= 12; ++Seed) {
    std::string Source = AstPrinter().print(makeProgram(Seed));
    std::string Profile;
    {
      PipelineOptions Bal;
      PipelineResult R = compilePipeline(Source, Bal);
      ASSERT_TRUE(R.ok()) << "seed " << Seed;
      SimStats S = simulate(*R.Prog, *R.Plan, simConfig(Seed, 0.9));
      Profile = renderExecProfile(S.Profile);
    }
    for (PlacementStrategy Strat :
         {PlacementStrategy::Balanced, PlacementStrategy::Speculative,
          PlacementStrategy::Lospre}) {
      PipelineOptions O;
      O.Strategy = Strat;
      O.Profile = Strat == PlacementStrategy::Speculative ? Profile : "";
      O.Audit = true;
      O.Verify = true;
      PipelineResult R = compilePipeline(Source, O);
      EXPECT_TRUE(R.ok()) << placementStrategyName(Strat) << " seed "
                          << Seed << ": " << R.Diags.renderText();
    }
  }
}

TEST(Strategy, BatchServerStrategiesAreWorkerCountInvariant) {
  // gntd requests carrying a strategy field must produce identical
  // response lines no matter how many workers race over the batch.
  std::vector<std::string> Lines;
  for (unsigned Seed : {2u, 5u, 9u}) {
    std::string Source = AstPrinter().print(makeProgram(Seed, 20));
    std::string Esc;
    for (char C : Source) {
      if (C == '\n')
        Esc += "\\n";
      else if (C == '"')
        Esc += "\\\"";
      else
        Esc += C;
    }
    for (const char *Strat : {"balanced", "speculative", "lospre"})
      Lines.push_back("{\"id\": \"" + std::string(Strat) + "-" +
                      std::to_string(Seed) + "\", \"source\": \"" + Esc +
                      "\", \"options\": {\"strategy\": \"" + Strat +
                      "\", \"audit\": true}}");
  }
  ServiceConfig Serial;
  Serial.Workers = 0;
  std::vector<std::string> Expected = BatchServer(Serial).run(Lines);
  ASSERT_EQ(Expected.size(), Lines.size());
  for (unsigned Workers : {2u, 7u}) {
    ServiceConfig Par;
    Par.Workers = Workers;
    std::vector<std::string> Got = BatchServer(Par).run(Lines);
    ASSERT_EQ(Got.size(), Expected.size()) << Workers << " workers";
    for (size_t I = 0; I < Expected.size(); ++I)
      EXPECT_EQ(Got[I], Expected[I])
          << Workers << " workers, response " << I;
  }
}

//===----------------------------------------------------------------------===//
// Satellite 2: dominance properties
//===----------------------------------------------------------------------===//

TEST(Strategy, SpeculativeWithoutUsableProfileIsBalanced) {
  for (unsigned Seed = 1; Seed <= 20; ++Seed) {
    std::string Source = AstPrinter().print(makeProgram(Seed));
    PipelineResult Base = compilePipeline(Source, PipelineOptions());
    ASSERT_TRUE(Base.ok()) << "seed " << Seed;

    // No profile at all.
    PipelineOptions Spec;
    Spec.Strategy = PlacementStrategy::Speculative;
    PipelineResult R = compilePipeline(Source, Spec);
    ASSERT_TRUE(R.ok()) << "seed " << Seed;
    EXPECT_EQ(R.Annotated, Base.Annotated) << "seed " << Seed;

    // A perfectly unbiased profile: every branch 50/50 — below the bias
    // threshold, so no candidates survive.
    ExecProfile Uniform;
    {
      SimStats S = simulate(*Base.Prog, *Base.Plan, simConfig(Seed));
      Uniform = S.Profile;
      for (auto &[Ord, Arms] : Uniform.Branch) {
        double Total = Arms.first + Arms.second;
        Arms = {Total / 2, Total / 2};
      }
    }
    Spec.Profile = renderExecProfile(Uniform);
    R = compilePipeline(Source, Spec);
    ASSERT_TRUE(R.ok()) << "seed " << Seed;
    EXPECT_EQ(R.Annotated, Base.Annotated) << "seed " << Seed;
  }
}

TEST(Strategy, SpeculativeNeverRegressesExpectedCostUnderItsProfile) {
  // The adoption gate makes this a hard guarantee: the augmented plan
  // is kept only on a strict expected-cost win. On jump-free programs
  // the expected cost is exact, so the simulator's Messages count under
  // the profile-generating trajectory must not regress either.
  unsigned Adopted = 0;
  for (unsigned Seed = 1; Seed <= 30; ++Seed) {
    auto B = buildProgram(makeProgram(Seed, 30, /*GotoProb=*/0.0));
    ASSERT_TRUE(B) << "seed " << Seed;
    if (B->Ifg->hasJumpEdges())
      continue;
    CommPlan Balanced = generateComm(B->Prog, B->G, *B->Ifg);
    SimConfig Cfg = simConfig(Seed, /*TrueProb=*/0.85);
    SimStats BalSim = simulate(B->Prog, Balanced, Cfg);
    ASSERT_TRUE(BalSim.ok()) << "seed " << Seed;

    CommPlan Spec = generateSpeculativeComm(B->Prog, B->G, *B->Ifg,
                                            CommOptions(), BalSim.Profile);
    double BalCost = expectedMessageCost(B->Prog, Balanced, BalSim.Profile);
    double SpecCost = expectedMessageCost(B->Prog, Spec, BalSim.Profile);
    EXPECT_LE(SpecCost, BalCost) << "seed " << Seed;

    SimStats SpecSim = simulate(B->Prog, Spec, Cfg);
    ASSERT_TRUE(SpecSim.ok())
        << "seed " << Seed << ": " << SpecSim.Errors.front();
    EXPECT_LE(SpecSim.Messages, BalSim.Messages) << "seed " << Seed;
    Adopted += SpecCost < BalCost;
  }
  // The sweep must actually exercise the speculation path, not just the
  // fallbacks.
  EXPECT_GE(Adopted, 1u);
}

TEST(Strategy, SpeculativeBeatsBalancedOnTheBiasedBranchFamily) {
  // The acceptance criterion: with a 7/8-biased branch consuming a
  // loop-invariant section, balanced pays one message per taken arm
  // while speculation hoists the read out of the loop entirely.
  auto PR = parseProgram(kBiasedBranchSource);
  ASSERT_TRUE(PR.success());
  auto B = buildProgram(std::move(PR.Prog));
  ASSERT_TRUE(B);
  ASSERT_FALSE(B->Ifg->hasJumpEdges());

  CommPlan Balanced = generateComm(B->Prog, B->G, *B->Ifg);
  SimConfig Cfg = simConfig(/*Seed=*/1);
  SimStats BalSim = simulate(B->Prog, Balanced, Cfg);
  ASSERT_TRUE(BalSim.ok());

  CommPlan Spec = generateSpeculativeComm(B->Prog, B->G, *B->Ifg,
                                          CommOptions(), BalSim.Profile);
  EXPECT_LT(expectedMessageCost(B->Prog, Spec, BalSim.Profile),
            expectedMessageCost(B->Prog, Balanced, BalSim.Profile));

  SimStats SpecSim = simulate(B->Prog, Spec, Cfg);
  ASSERT_TRUE(SpecSim.ok()) << SpecSim.Errors.front();
  EXPECT_LT(SpecSim.Messages, BalSim.Messages);
  // The hoist may widen live ranges but must not produce waste the
  // balanced plan didn't have: the hoisted read is consumed every
  // taken-arm iteration.
  EXPECT_EQ(SpecSim.Wasted, BalSim.Wasted);
  EXPECT_LE(SpecSim.Redundant, BalSim.Redundant);
}

TEST(Strategy, LospreMatchesLcmDataflowOnJumpFreePrograms) {
  // The linear-time elimination must reproduce the iterative MFP
  // exactly wherever the interval abstraction is lossless (no JUMP
  // edges); its conservatism is confined to jumpy graphs.
  unsigned Checked = 0;
  for (unsigned Seed = 1; Seed <= 15; ++Seed) {
    auto B = buildProgram(makeProgram(Seed, 30, /*GotoProb=*/0.0));
    ASSERT_TRUE(B) << "seed " << Seed;
    if (B->Ifg->hasJumpEdges())
      continue;
    CommPlan Plan;
    Plan.Refs = analyzeReferences(B->Prog, B->G);
    buildCommProblems(Plan.Refs, B->G, *B->Ifg, CommOptions(),
                      Plan.ReadProblem, Plan.WriteProblem);
    unsigned N = B->G.size();
    unsigned U = Plan.Refs.Items.size();
    std::vector<BitVector> Transp(N, BitVector(U, true));
    std::vector<BitVector> Comp(N, BitVector(U));
    for (NodeId Id = 0; Id != N; ++Id) {
      Transp[Id].reset(Plan.ReadProblem.StealInit[Id]);
      Comp[Id] = Plan.ReadProblem.TakeInit[Id];
      Comp[Id] |= Plan.ReadProblem.GiveInit[Id];
    }
    LcmResult L = lazyCodeMotion(B->G, U, Plan.ReadProblem.TakeInit,
                                 Transp, Comp);
    LospreResult R = solveLospre(B->G, *B->Ifg, Plan.ReadProblem);
    for (NodeId Id = 0; Id != N; ++Id) {
      EXPECT_EQ(R.AntIn[Id], L.AntIn[Id]) << "seed " << Seed << " node "
                                          << Id;
      EXPECT_EQ(R.AntOut[Id], L.AntOut[Id])
          << "seed " << Seed << " node " << Id;
      EXPECT_EQ(R.AvIn[Id], L.AvIn[Id]) << "seed " << Seed << " node "
                                        << Id;
      EXPECT_EQ(R.AvOut[Id], L.AvOut[Id]) << "seed " << Seed << " node "
                                          << Id;
    }
    ++Checked;
  }
  EXPECT_GE(Checked, 10u);
}

TEST(Strategy, LospreReadMessagesNeverExceedLcmOnCorpus) {
  // The dominance half of the lospre contract: on every corpus program
  // (all jump-heavy distillations) and a generated sweep, the lospre
  // placement fires at most as many dynamic READ messages as the LCM
  // baseline. Writes are stripped from both plans first — the two
  // planners share a read model but not a write model.
  auto check = [](const std::string &Source, const std::string &Label) {
    auto PR = parseProgram(Source);
    ASSERT_TRUE(PR.success()) << Label;
    auto B = buildProgram(std::move(PR.Prog));
    ASSERT_TRUE(B) << Label;
    CommPlan Lospre = stripWriteOps(
        losprePlacement(B->Prog, B->G, *B->Ifg, CommOptions()));
    CommPlan Lcm = stripWriteOps(lcmPlacement(B->Prog, B->G, *B->Ifg));
    for (unsigned Seed : {1u, 2u, 3u}) {
      SimConfig Cfg = simConfig(Seed);
      SimStats SL = simulate(B->Prog, Lospre, Cfg);
      ASSERT_TRUE(SL.ok()) << Label << " lospre seed " << Seed << ": "
                           << SL.Errors.front();
      SimStats SM = simulate(B->Prog, Lcm, Cfg);
      ASSERT_TRUE(SM.ok()) << Label << " lcm seed " << Seed << ": "
                           << SM.Errors.front();
      EXPECT_LE(SL.Messages, SM.Messages) << Label << " seed " << Seed;
      // On jump-free graphs both are computationally optimal: equal.
      if (!B->Ifg->hasJumpEdges()) {
        EXPECT_EQ(SL.Messages, SM.Messages) << Label << " seed " << Seed;
      }
    }
  };
  for (const char *File : kCorpusFiles)
    check(readCorpusFile(File), File);
  for (unsigned Seed = 1; Seed <= 10; ++Seed)
    check(AstPrinter().print(makeProgram(Seed, 30, /*GotoProb=*/0.0)),
          "gen seed " + std::to_string(Seed));
}

TEST(Strategy, LospreSimulatesCleanlyOnGeneratedJumpyPrograms) {
  // Safety on the unstructured side: conservatism may cost messages but
  // never correctness — no dynamic C1/C3 violations on goto-heavy
  // programs.
  for (unsigned Seed = 1; Seed <= 15; ++Seed) {
    auto B = buildProgram(makeProgram(Seed, 35, /*GotoProb=*/0.3));
    ASSERT_TRUE(B) << "seed " << Seed;
    CommPlan Plan = losprePlacement(B->Prog, B->G, *B->Ifg, CommOptions());
    for (unsigned SimSeed : {1u, 2u}) {
      SimStats S = simulate(B->Prog, Plan, simConfig(SimSeed));
      EXPECT_TRUE(S.ok()) << "seed " << Seed << " sim " << SimSeed << ": "
                          << (S.ok() ? "" : S.Errors.front());
    }
  }
}

//===----------------------------------------------------------------------===//
// Option plumbing and validation
//===----------------------------------------------------------------------===//

TEST(Strategy, PipelineRejectsInvalidStrategyCombinations) {
  const char *Source = "distribute x\narray u\nu(1) = x(1)\n";

  PipelineOptions WithBaseline;
  WithBaseline.Strategy = PlacementStrategy::Lospre;
  WithBaseline.Baseline = "lcm";
  PipelineResult R = compilePipeline(Source, WithBaseline);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Diags.renderText().find("conflicts with baseline"),
            std::string::npos);

  PipelineOptions WithPre;
  WithPre.Strategy = PlacementStrategy::Speculative;
  WithPre.Mode = PipelineMode::Pre;
  R = compilePipeline(Source, WithPre);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Diags.renderText().find("PRE mode"), std::string::npos);

  PipelineOptions BadProfile;
  BadProfile.Strategy = PlacementStrategy::Speculative;
  BadProfile.Profile = "not-a-profile\n";
  R = compilePipeline(Source, BadProfile);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Diags.renderText().find("gnt-profile-v1"), std::string::npos);
}

TEST(Strategy, BatchServerValidatesStrategyField) {
  ServiceConfig Config;
  BatchServer Server(Config);
  std::vector<std::string> Out = Server.run(
      {"{\"id\": \"bad\", \"source\": \"continue\", "
       "\"options\": {\"strategy\": \"eager\"}}"});
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_NE(Out[0].find("strategy"), std::string::npos);
  EXPECT_NE(Out[0].find("error"), std::string::npos);
}

} // namespace
