//===- tests/PropertyTest.cpp - Randomized invariant sweeps -----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Experiment E7 at scale: seeded random programs swept through the whole
/// pipeline. For every program the static verifier must accept the
/// GIVE-N-TAKE placement (C1/C3/O1), and the trace simulator must run
/// both the GIVE-N-TAKE plan and every baseline without dynamic
/// violations across several branch-outcome seeds. Parameterized gtest
/// keeps each seed an individually reported test.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "baseline/Baselines.h"
#include "baseline/LazyCodeMotion.h"
#include "comm/CommGen.h"
#include "fuzz/Clone.h"
#include "fuzz/Mutator.h"
#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"
#include "service/BatchServer.h"
#include "service/Pipeline.h"
#include "service/StageCache.h"
#include "sim/TraceSimulator.h"
#include "support/SimdKernels.h"

#include <gtest/gtest.h>

#include <random>

using namespace gnt;
using namespace gnt::test;

namespace {

class RandomPrograms : public ::testing::TestWithParam<unsigned> {};

Program makeProgram(unsigned Seed, unsigned Stmts = 40,
                    double GotoProb = 0.1) {
  GenConfig C;
  C.Seed = Seed;
  C.TargetStmts = Stmts;
  C.GotoProb = GotoProb;
  return generateRandomProgram(C);
}

struct Built {
  Program Prog;
  Cfg G;
  IntervalFlowGraph Ifg;
};

std::optional<Built> buildProgram(Program Prog) {
  Built B;
  B.Prog = std::move(Prog);
  CfgBuildResult CR = buildCfg(B.Prog);
  EXPECT_TRUE(CR.success()) << (CR.Errors.empty() ? "" : CR.Errors.front());
  if (!CR.success())
    return std::nullopt;
  B.G = std::move(CR.G);
  auto IR = IntervalFlowGraph::build(B.G);
  EXPECT_TRUE(IR.success()) << (IR.Errors.empty() ? "" : IR.Errors.front());
  if (!IR.success())
    return std::nullopt;
  B.Ifg = std::move(*IR.Ifg);
  return B;
}

void simulateClean(const Built &B, const CommPlan &Plan, const char *What,
                   unsigned &WastedOut) {
  for (unsigned BranchSeed = 1; BranchSeed != 4; ++BranchSeed) {
    SimConfig C;
    C.Params["n"] = 5;
    C.BranchSeed = BranchSeed;
    SimStats S = simulate(B.Prog, Plan, C);
    EXPECT_TRUE(S.ok()) << What << " branch seed " << BranchSeed << ": "
                        << (S.Errors.empty() ? "" : S.Errors.front());
    WastedOut += static_cast<unsigned>(S.Wasted);
  }
}

} // namespace

/// The generated source parses back to an identical program.
TEST_P(RandomPrograms, PrintParseRoundTrip) {
  Program Prog = makeProgram(GetParam());
  std::string Printed = AstPrinter().print(Prog);
  ParseResult PR = parseProgram(Printed);
  ASSERT_TRUE(PR.success()) << (PR.Errors.empty() ? "" : PR.Errors.front())
                            << "\n" << Printed;
  EXPECT_EQ(Printed, AstPrinter().print(PR.Prog));
}

/// The static verifier accepts the GIVE-N-TAKE placement.
TEST_P(RandomPrograms, StaticInvariantsHold) {
  for (double GotoProb : {0.1, 0.0}) {
    auto B = buildProgram(makeProgram(GetParam(), 40, GotoProb));
    ASSERT_TRUE(B.has_value());
    CommPlan Plan = generateComm(B->Prog, B->G, B->Ifg);
    GntVerifyResult V = Plan.verify();
    EXPECT_TRUE(V.ok()) << V.firstViolation();
    for (const Diagnostic &D : V.Diags.all())
      if (D.Severity == DiagSeverity::Note)
        ADD_FAILURE() << "optimality note: " << D.render();
  }
}

/// Dynamic C1/C3 hold for the GIVE-N-TAKE plan and all baselines, with
/// and without gotos out of loops (the goto-free configuration keeps the
/// AFTER problems exact, exercising different placement shapes).
TEST_P(RandomPrograms, DynamicInvariantsHold) {
  for (double GotoProb : {0.1, 0.0}) {
    auto B = buildProgram(makeProgram(GetParam(), 40, GotoProb));
    ASSERT_TRUE(B.has_value());
    unsigned Wasted = 0;
    CommPlan Gnt = generateComm(B->Prog, B->G, B->Ifg);
    simulateClean(*B, Gnt, "give-n-take", Wasted);
    CommPlan Naive = naivePlacement(B->Prog, B->G, B->Ifg);
    simulateClean(*B, Naive, "naive", Wasted);
    CommPlan Vec = vectorizedPlacement(B->Prog, B->G, B->Ifg);
    simulateClean(*B, Vec, "vectorized", Wasted);
    CommPlan Lcm = lcmPlacement(B->Prog, B->G, B->Ifg);
    simulateClean(*B, Lcm, "lcm", Wasted);
  }
}

/// All four option combinations stay correct.
TEST_P(RandomPrograms, OptionCombinationsHold) {
  auto B = buildProgram(makeProgram(GetParam(), /*Stmts=*/25));
  ASSERT_TRUE(B.has_value());
  for (bool Atomic : {false, true}) {
    for (bool Hoist : {false, true}) {
      for (bool Owner : {false, true}) {
        CommOptions Opts;
        Opts.Atomic = Atomic;
        Opts.HoistZeroTrip = Hoist;
        Opts.OwnerComputes = Owner;
        CommPlan Plan = generateComm(B->Prog, B->G, B->Ifg, Opts);
        GntVerifyResult V = Plan.verify();
        EXPECT_TRUE(V.ok())
            << "atomic=" << Atomic << " hoist=" << Hoist
            << " owner=" << Owner << ": "
            << V.firstViolation();
        unsigned Wasted = 0;
        simulateClean(*B, Plan, "options", Wasted);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(1u, 31u));

//===----------------------------------------------------------------------===//
// Shard invariance and arena/classic differential
//===----------------------------------------------------------------------===//
//
// 100 seeds x 2 goto probabilities = 200 random programs, each solved
// for both problem directions (READ is BEFORE, WRITE is AFTER with jump
// poisoning). Every GntResult field — the ten Figure 13 variables plus
// both EAGER and LAZY placements — must be byte-identical across shard
// counts and between the arena solver and the classic per-equation
// oracle. This is the hard contract that lets PipelineOptions exclude
// SolverShards from the service cache key.

namespace {

class ShardInvariance : public ::testing::TestWithParam<unsigned> {};

/// The 20 dataflow variables of \p R in declaration order, by name.
std::vector<std::pair<const char *, const std::vector<BitVector> *>>
gntFields(const GntResult &R) {
  std::vector<std::pair<const char *, const std::vector<BitVector> *>> Out;
  forEachGntField(R, [&](const char *Name, const std::vector<BitVector> &V) {
    Out.emplace_back(Name, &V);
  });
  return Out;
}

void expectResultsIdentical(const GntResult &Want, const GntResult &Got,
                            const char *Problem, const std::string &How) {
  auto A = gntFields(Want);
  auto B = gntFields(Got);
  ASSERT_EQ(A.size(), B.size());
  for (std::size_t F = 0; F != A.size(); ++F) {
    ASSERT_EQ(A[F].second->size(), B[F].second->size())
        << Problem << " " << A[F].first << " (" << How << ")";
    for (std::size_t N = 0; N != A[F].second->size(); ++N)
      EXPECT_TRUE((*A[F].second)[N] == (*B[F].second)[N])
          << Problem << " " << A[F].first << " node " << N << " (" << How
          << ")";
  }
}

} // namespace

/// Solving at any shard count reproduces the serial solve bit for bit.
TEST_P(ShardInvariance, ShardedSolveMatchesSerial) {
  for (double GotoProb : {0.1, 0.0}) {
    auto B = buildProgram(makeProgram(GetParam(), 40, GotoProb));
    ASSERT_TRUE(B.has_value());
    CommPlan Plan = generateComm(B->Prog, B->G, B->Ifg);
    ASSERT_TRUE(Plan.ReadRun.has_value());
    ASSERT_TRUE(Plan.WriteRun.has_value());
    unsigned Items = Plan.ReadProblem.UniverseSize;
    for (unsigned Shards : {1u, 2u, 7u, std::max(Items, 1u)}) {
      std::string How = "goto=" + std::to_string(GotoProb) +
                        " shards=" + std::to_string(Shards);
      GntRun R = runGiveNTake(B->Ifg, Plan.ReadProblem, Shards);
      expectResultsIdentical(Plan.ReadRun->Result, R.Result, "READ", How);
      GntRun W = runGiveNTake(B->Ifg, Plan.WriteProblem, Shards);
      expectResultsIdentical(Plan.WriteRun->Result, W.Result, "WRITE", How);
    }
  }
}

/// The fused arena evaluator agrees with the classic one-equation-at-a-
/// time evaluator on every field.
TEST_P(ShardInvariance, ArenaMatchesClassicOracle) {
  for (double GotoProb : {0.1, 0.0}) {
    auto B = buildProgram(makeProgram(GetParam(), 40, GotoProb));
    ASSERT_TRUE(B.has_value());
    CommPlan Plan = generateComm(B->Prog, B->G, B->Ifg);
    for (const std::optional<GntRun> *Slot : {&Plan.ReadRun, &Plan.WriteRun}) {
      ASSERT_TRUE(Slot->has_value());
      const GntRun &Run = **Slot;
      GntResult Classic =
          solveGiveNTakeClassic(Run.OrientedIfg, Run.OrientedProblem);
      const char *Problem =
          Run.OrientedProblem.Dir == Direction::Before ? "READ" : "WRITE";
      expectResultsIdentical(Classic, Run.Result, Problem,
                             "goto=" + std::to_string(GotoProb));
    }
  }
}

/// Universe compression is the third solver strategy under the same
/// byte-identity contract: for every program, solving with compression
/// on and off, serial and sharded, must agree in all 20 dataflow
/// variables — and the production pipeline's resultSignature must be
/// blind to the knob. Compression decides per problem whether it pays
/// (the profitability gate), so across 100 random programs this covers
/// applied, fallback and all-bottom paths alike.
TEST_P(ShardInvariance, CompressedSolveMatchesSerial) {
  for (double GotoProb : {0.1, 0.0}) {
    auto B = buildProgram(makeProgram(GetParam(), 40, GotoProb));
    ASSERT_TRUE(B.has_value());
    CommPlan Plan = generateComm(B->Prog, B->G, B->Ifg);
    ASSERT_TRUE(Plan.ReadRun.has_value());
    ASSERT_TRUE(Plan.WriteRun.has_value());
    for (unsigned Shards : {1u, 7u}) {
      std::string How = "goto=" + std::to_string(GotoProb) + " shards=" +
                        std::to_string(Shards) + " compressed";
      GntRun R = runGiveNTake(B->Ifg, Plan.ReadProblem, Shards,
                              /*CompressUniverse=*/true);
      expectResultsIdentical(Plan.ReadRun->Result, R.Result, "READ", How);
      GntRun W = runGiveNTake(B->Ifg, Plan.WriteProblem, Shards,
                              /*CompressUniverse=*/true);
      expectResultsIdentical(Plan.WriteRun->Result, W.Result, "WRITE", How);
    }
  }
}

/// The pipeline-level contract behind the shared cache entry: source
/// compiled with and without universe compression produces the same
/// result signature (and therefore the same rendered output).
TEST_P(ShardInvariance, CompressionIsInvisibleInResultSignature) {
  std::string Source = AstPrinter().print(makeProgram(GetParam(), 30));
  PipelineOptions Plain;
  Plain.Audit = true;
  PipelineResult Base = compilePipeline(Source, Plain);
  ASSERT_TRUE(Base.ok()) << Base.Diags.renderText();
  for (unsigned Shards : {0u, 7u}) {
    PipelineOptions Opts = Plain;
    Opts.CompressUniverse = true;
    Opts.SolverShards = Shards;
    PipelineResult R = compilePipeline(Source, Opts);
    EXPECT_EQ(resultSignature(R), resultSignature(Base))
        << "shards " << Shards;
    EXPECT_EQ(R.Annotated, Base.Annotated) << "shards " << Shards;
    // The knob must still *report*: a compressed run carries the
    // accounting that feeds the metrics' compression ratio.
    if (R.Plan && R.Plan->ReadProblem.UniverseSize > 0) {
      EXPECT_GT(R.CompressedUniverse, 0u) << "shards " << Shards;
    }
    EXPECT_LE(R.compressionRatio(), 1.0) << "shards " << Shards;
  }
}

/// The full strategy grid: every SIMD kernel variant this machine can
/// run x {1, 2, 7, 16} shards x compression on/off x work stealing
/// on/off, every cell byte-compared against the classic per-equation
/// oracle. The kernel registry, the lane-padded arena, the word-window
/// partition, the oversplit stealing scheduler, and the class
/// compression all sit below this contract; a divergence in any one of
/// them fails with the exact cell named.
TEST_P(ShardInvariance, KernelShardCompressStealGridMatchesClassic) {
  auto B = buildProgram(makeProgram(GetParam(), 40, 0.1));
  ASSERT_TRUE(B.has_value());
  CommPlan Plan = generateComm(B->Prog, B->G, B->Ifg);
  for (const std::optional<GntRun> *Slot : {&Plan.ReadRun, &Plan.WriteRun}) {
    ASSERT_TRUE(Slot->has_value());
    const GntRun &Run = **Slot;
    const char *Problem =
        Run.OrientedProblem.Dir == Direction::Before ? "READ" : "WRITE";
    GntResult Classic =
        solveGiveNTakeClassic(Run.OrientedIfg, Run.OrientedProblem);
    for (const SolverKernels *K : availableSolverKernels()) {
      detail::ScopedKernelOverride Force(*K);
      for (unsigned Shards : {1u, 2u, 7u, 16u}) {
        for (bool Compress : {false, true}) {
          for (bool Steal : {false, true}) {
            GntShardPolicy Policy;
            Policy.WorkStealing = Steal;
            std::string How = std::string("kernel=") + K->Name +
                              " shards=" + std::to_string(Shards) +
                              (Compress ? " compressed" : "") +
                              (Steal ? " steal" : " static");
            GntResult Got =
                Compress
                    ? solveGiveNTakeCompressed(Run.OrientedIfg,
                                               Run.OrientedProblem, Shards,
                                               &Policy)
                    : solveGiveNTakeSharded(Run.OrientedIfg,
                                            Run.OrientedProblem, Shards,
                                            Policy);
            expectResultsIdentical(Classic, Got, Problem, How);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardInvariance, ::testing::Range(1u, 101u));

//===----------------------------------------------------------------------===//
// Incrementality equivalence battery
//===----------------------------------------------------------------------===//
//
// The contract behind PipelineOptions::Incremental (and behind excluding
// it from the service cache key): for ANY compile history, compiling a
// source through a warm stage cache with incremental solving must be
// byte-identical — result signature, rendered service payload, and all
// 20 solver variables — to a cold compile of the same source. 100 seeds
// each walk an edit script (whitespace-only edit, array rename,
// structural mutations covering statement insert/delete and loop-body
// edits, a revert to the base program, and option flips) against one
// persistent stage cache, under shard counts {1, 7} x universe
// compression {off, on}.

namespace {

class IncrementalEquivalence : public ::testing::TestWithParam<unsigned> {};

/// One step of the edit script: a label for failure messages, the
/// source to compile, and the options to compile it with.
struct EditStep {
  std::string Label;
  std::string Source;
  PipelineOptions Opts;
};

/// A whitespace-only variant: indentation and blank lines change the
/// parse key but not the canonical AST, so everything from the CFG
/// stage on must hit.
std::string whitespaceVariant(const std::string &Source) {
  std::string Out = "\n";
  for (char C : Source) {
    Out += C;
    if (C == '\n')
      Out += "  ";
  }
  Out += "\n\n";
  return Out;
}

/// Renames the first declared array everywhere (a semantic edit that
/// changes item identities but not program shape).
std::string renameVariant(const std::string &Source) {
  ParseResult PR = parseProgram(Source);
  if (!PR.success() || PR.Prog.getArrays().empty())
    return std::string();
  const std::string &Old = PR.Prog.getArrays().begin()->first;
  fuzz::ArrayRenameMap Rename{{Old, "zz_" + Old}};
  return AstPrinter().print(fuzz::cloneProgram(PR.Prog, Rename));
}

std::vector<EditStep> editScript(unsigned Seed, const PipelineOptions &Base) {
  // Goto-free base: partial (masked) incremental re-solves are only
  // legal without JUMP/SYNTHETIC edges, so this exercises the dirty-
  // interval path; mutants may introduce gotos and fall back to full
  // solves, which the equivalence must survive too.
  std::string BaseSrc = AstPrinter().print(makeProgram(Seed, 30, 0.0));
  std::vector<EditStep> Steps;
  Steps.push_back({"base", BaseSrc, Base});
  Steps.push_back({"whitespace", whitespaceVariant(BaseSrc), Base});
  std::string Renamed = renameVariant(BaseSrc);
  if (!Renamed.empty())
    Steps.push_back({"rename", Renamed, Base});
  // Structural mutations (statement insert/delete/duplicate, loop-body
  // rewrites, wraps, goto insertion) from the fuzzer's mutator; each
  // draw is deterministic in (source, seed).
  for (unsigned Draw = 0; Draw != 3; ++Draw) {
    std::mt19937 Rng(Seed * 7919u + Draw);
    std::string Mutant = fuzz::mutateSource(BaseSrc, Rng);
    if (!Mutant.empty() && Mutant != BaseSrc)
      Steps.push_back({"mutant" + std::to_string(Draw), Mutant, Base});
  }
  // Revert: a previously seen AST must still match cold.
  Steps.push_back({"revert", BaseSrc, Base});
  // Option flips against the same warm cache: different solve keys,
  // same frontend artifacts.
  PipelineOptions Owner = Base;
  Owner.Comm.OwnerComputes = true;
  Steps.push_back({"flip-owner-computes", BaseSrc, Owner});
  PipelineOptions Atomic = Base;
  Atomic.Comm.Atomic = true;
  Steps.push_back({"flip-atomic", BaseSrc, Atomic});
  PipelineOptions Pre = Base;
  Pre.Mode = PipelineMode::Pre;
  Steps.push_back({"flip-pre", BaseSrc, Pre});
  return Steps;
}

/// Byte-compares the solver runs of two results (when both carry one).
void expectRunsIdentical(const PipelineResult &Want,
                         const PipelineResult &Got,
                         const std::string &How) {
  if (!Want.Plan || !Got.Plan)
    return;
  auto Check = [&](const std::optional<GntRun> &W,
                   const std::optional<GntRun> &G, const char *Problem) {
    ASSERT_EQ(W.has_value(), G.has_value()) << Problem << " (" << How << ")";
    if (W)
      expectResultsIdentical(W->Result, G->Result, Problem, How);
  };
  Check(Want.Plan->ReadRun, Got.Plan->ReadRun, "READ");
  Check(Want.Plan->WriteRun, Got.Plan->WriteRun, "WRITE");
}

} // namespace

/// The battery: every step's incremental compile is byte-identical to a
/// cold compile, across shard counts and universe compression.
TEST_P(IncrementalEquivalence, EditSweepMatchesColdCompile) {
  for (unsigned Shards : {1u, 7u}) {
    for (bool Compress : {false, true}) {
      PipelineOptions Base;
      Base.Annotate = true;
      Base.Incremental = true;
      Base.SolverShards = Shards;
      Base.CompressUniverse = Compress;
      StageCache Warm; // One warm cache across the whole edit script.
      for (const EditStep &Step : editScript(GetParam(), Base)) {
        std::string How = Step.Label + " shards=" + std::to_string(Shards) +
                          " compress=" + std::to_string(Compress);
        PipelineResult Inc =
            gnt::Pipeline(Step.Opts).compile(Step.Source, &Warm);
        PipelineOptions ColdOpts = Step.Opts;
        ColdOpts.Incremental = false;
        PipelineResult Cold = gnt::Pipeline(ColdOpts).compile(Step.Source);
        EXPECT_EQ(resultSignature(Inc), resultSignature(Cold)) << How;
        EXPECT_EQ(Inc.Annotated, Cold.Annotated) << How;
        EXPECT_EQ(renderResultPayload(Inc), renderResultPayload(Cold))
            << How;
        expectRunsIdentical(Cold, Inc, How);
      }
      // The sweep must actually have exercised the machinery: the
      // whitespace and revert steps guarantee downstream hits, and
      // every comm-mode solve ran through the incremental context.
      StageCacheStats S = Warm.statsSnapshot();
      EXPECT_GT(S.hits(CacheStage::Cfg), 0u);
      EXPECT_GT(S.hits(CacheStage::Solve), 0u);
      EXPECT_TRUE(S.Inc.any());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalence,
                         ::testing::Range(1u, 101u));
