//===- tests/PropertyTest.cpp - Randomized invariant sweeps -----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Experiment E7 at scale: seeded random programs swept through the whole
/// pipeline. For every program the static verifier must accept the
/// GIVE-N-TAKE placement (C1/C3/O1), and the trace simulator must run
/// both the GIVE-N-TAKE plan and every baseline without dynamic
/// violations across several branch-outcome seeds. Parameterized gtest
/// keeps each seed an individually reported test.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "baseline/Baselines.h"
#include "baseline/LazyCodeMotion.h"
#include "comm/CommGen.h"
#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"
#include "sim/TraceSimulator.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

class RandomPrograms : public ::testing::TestWithParam<unsigned> {};

Program makeProgram(unsigned Seed, unsigned Stmts = 40,
                    double GotoProb = 0.1) {
  GenConfig C;
  C.Seed = Seed;
  C.TargetStmts = Stmts;
  C.GotoProb = GotoProb;
  return generateRandomProgram(C);
}

struct Built {
  Program Prog;
  Cfg G;
  IntervalFlowGraph Ifg;
};

std::optional<Built> buildProgram(Program Prog) {
  Built B;
  B.Prog = std::move(Prog);
  CfgBuildResult CR = buildCfg(B.Prog);
  EXPECT_TRUE(CR.success()) << (CR.Errors.empty() ? "" : CR.Errors.front());
  if (!CR.success())
    return std::nullopt;
  B.G = std::move(CR.G);
  auto IR = IntervalFlowGraph::build(B.G);
  EXPECT_TRUE(IR.success()) << (IR.Errors.empty() ? "" : IR.Errors.front());
  if (!IR.success())
    return std::nullopt;
  B.Ifg = std::move(*IR.Ifg);
  return B;
}

void simulateClean(const Built &B, const CommPlan &Plan, const char *What,
                   unsigned &WastedOut) {
  for (unsigned BranchSeed = 1; BranchSeed != 4; ++BranchSeed) {
    SimConfig C;
    C.Params["n"] = 5;
    C.BranchSeed = BranchSeed;
    SimStats S = simulate(B.Prog, Plan, C);
    EXPECT_TRUE(S.ok()) << What << " branch seed " << BranchSeed << ": "
                        << (S.Errors.empty() ? "" : S.Errors.front());
    WastedOut += static_cast<unsigned>(S.Wasted);
  }
}

} // namespace

/// The generated source parses back to an identical program.
TEST_P(RandomPrograms, PrintParseRoundTrip) {
  Program Prog = makeProgram(GetParam());
  std::string Printed = AstPrinter().print(Prog);
  ParseResult PR = parseProgram(Printed);
  ASSERT_TRUE(PR.success()) << (PR.Errors.empty() ? "" : PR.Errors.front())
                            << "\n" << Printed;
  EXPECT_EQ(Printed, AstPrinter().print(PR.Prog));
}

/// The static verifier accepts the GIVE-N-TAKE placement.
TEST_P(RandomPrograms, StaticInvariantsHold) {
  for (double GotoProb : {0.1, 0.0}) {
    auto B = buildProgram(makeProgram(GetParam(), 40, GotoProb));
    ASSERT_TRUE(B.has_value());
    CommPlan Plan = generateComm(B->Prog, B->G, B->Ifg);
    GntVerifyResult V = Plan.verify();
    EXPECT_TRUE(V.ok()) << V.firstViolation();
    for (const Diagnostic &D : V.Diags.all())
      if (D.Severity == DiagSeverity::Note)
        ADD_FAILURE() << "optimality note: " << D.render();
  }
}

/// Dynamic C1/C3 hold for the GIVE-N-TAKE plan and all baselines, with
/// and without gotos out of loops (the goto-free configuration keeps the
/// AFTER problems exact, exercising different placement shapes).
TEST_P(RandomPrograms, DynamicInvariantsHold) {
  for (double GotoProb : {0.1, 0.0}) {
    auto B = buildProgram(makeProgram(GetParam(), 40, GotoProb));
    ASSERT_TRUE(B.has_value());
    unsigned Wasted = 0;
    CommPlan Gnt = generateComm(B->Prog, B->G, B->Ifg);
    simulateClean(*B, Gnt, "give-n-take", Wasted);
    CommPlan Naive = naivePlacement(B->Prog, B->G, B->Ifg);
    simulateClean(*B, Naive, "naive", Wasted);
    CommPlan Vec = vectorizedPlacement(B->Prog, B->G, B->Ifg);
    simulateClean(*B, Vec, "vectorized", Wasted);
    CommPlan Lcm = lcmPlacement(B->Prog, B->G, B->Ifg);
    simulateClean(*B, Lcm, "lcm", Wasted);
  }
}

/// All four option combinations stay correct.
TEST_P(RandomPrograms, OptionCombinationsHold) {
  auto B = buildProgram(makeProgram(GetParam(), /*Stmts=*/25));
  ASSERT_TRUE(B.has_value());
  for (bool Atomic : {false, true}) {
    for (bool Hoist : {false, true}) {
      for (bool Owner : {false, true}) {
        CommOptions Opts;
        Opts.Atomic = Atomic;
        Opts.HoistZeroTrip = Hoist;
        Opts.OwnerComputes = Owner;
        CommPlan Plan = generateComm(B->Prog, B->G, B->Ifg, Opts);
        GntVerifyResult V = Plan.verify();
        EXPECT_TRUE(V.ok())
            << "atomic=" << Atomic << " hoist=" << Hoist
            << " owner=" << Owner << ": "
            << V.firstViolation();
        unsigned Wasted = 0;
        simulateClean(*B, Plan, "options", Wasted);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(1u, 31u));
