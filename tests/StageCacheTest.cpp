//===- tests/StageCacheTest.cpp - Content-addressed stage cache tests -------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The stage cache's contracts, bottom up: stable stage names (they are
// metrics keys), content addressing (whitespace-only edits converge at
// the cfg stage, semantic edits do not; the solve-options key contains
// exactly the knobs the solve consumes), LRU eviction under pressure,
// per-stage hit/miss accounting through Pipeline::compile, interval-
// level incremental re-solves touching a strict subset of nodes, and
// the defensive half: persisted solve memos survive a restart, while
// truncated or corrupted persisted memos silently fall back to a full
// solve — mirroring the DiskCache corruption battery one layer up.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "service/DiskCache.h"
#include "service/Pipeline.h"
#include "service/StageCache.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

using namespace gnt;
namespace fs = std::filesystem;

namespace {

/// A unique scratch directory, removed on scope exit.
struct TempDir {
  TempDir() {
    std::string Template = (fs::temp_directory_path() / "gnt-stage-XXXXXX");
    std::vector<char> Buf(Template.begin(), Template.end());
    Buf.push_back('\0');
    Path = mkdtemp(Buf.data());
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string Path;
};

const char *kBase = "distribute x, y\n"
                    "array u, w\n"
                    "do i = 1, n\n"
                    "  u(i) = x(i) + 1\n"
                    "enddo\n"
                    "do j = 1, n\n"
                    "  w(j) = x(j) + y(j)\n"
                    "  u(j) = x(j)\n"
                    "enddo\n";

/// Same AST as kBase, different bytes.
const char *kBaseWhitespace = "\ndistribute x, y\n"
                              "array u, w\n"
                              "do i = 1, n\n"
                              "    u(i) = x(i) + 1\n"
                              "enddo\n\n"
                              "do j = 1, n\n"
                              "  w(j) = x(j) + y(j)\n"
                              "  u(j) = x(j)\n"
                              "enddo\n\n";

/// kBase with the y(j) use moved to the other statement of the second
/// loop: same reference universe, same loop forest, different equation
/// inputs in the second loop only — the dirty-interval edit.
const char *kBaseMovedUse = "distribute x, y\n"
                            "array u, w\n"
                            "do i = 1, n\n"
                            "  u(i) = x(i) + 1\n"
                            "enddo\n"
                            "do j = 1, n\n"
                            "  w(j) = x(j)\n"
                            "  u(j) = x(j) + y(j)\n"
                            "enddo\n";

PipelineOptions incrementalOptions() {
  PipelineOptions Opts;
  Opts.Annotate = true;
  Opts.Incremental = true;
  return Opts;
}

std::uint64_t digestOf(const std::string &Source) {
  ParseResult PR = parseProgram(Source);
  EXPECT_TRUE(PR.success());
  return StageCache::astDigest(PR.Prog);
}

} // namespace

//===----------------------------------------------------------------------===//
// Stage names and keys
//===----------------------------------------------------------------------===//

/// The stage names are metrics keys (text, JSON, Prometheus labels) —
/// renaming one is a breaking change, so the exact strings are pinned.
TEST(StageCacheTest, StageNamesArePinned) {
  ASSERT_EQ(NumCacheStages, 5u);
  EXPECT_STREQ(cacheStageName(CacheStage::Parse), "parse");
  EXPECT_STREQ(cacheStageName(CacheStage::Cfg), "cfg");
  EXPECT_STREQ(cacheStageName(CacheStage::Interval), "interval");
  EXPECT_STREQ(cacheStageName(CacheStage::Solve), "solve");
  EXPECT_STREQ(cacheStageName(CacheStage::Annotate), "annotate");
}

/// Whitespace-only edits change the parse key but converge at the AST
/// digest; semantic edits change both.
TEST(StageCacheTest, WhitespaceConvergesSemanticEditsDoNot) {
  EXPECT_NE(StageCache::parseKey(kBase), StageCache::parseKey(kBaseWhitespace));
  std::uint64_t Base = digestOf(kBase);
  EXPECT_EQ(Base, digestOf(kBaseWhitespace));
  EXPECT_EQ(StageCache::cfgKey(Base), StageCache::cfgKey(digestOf(kBaseWhitespace)));
  std::uint64_t Moved = digestOf(kBaseMovedUse);
  EXPECT_NE(Base, Moved);
  EXPECT_NE(StageCache::cfgKey(Base), StageCache::cfgKey(Moved));
  EXPECT_NE(StageCache::intervalKey(Base), StageCache::intervalKey(Moved));
}

/// The solve-options key audit, mirroring the result-cache canonical()
/// audit: execution strategies and post-solve knobs must NOT split
/// solves; knobs the solve consumes must.
TEST(StageCacheTest, SolveOptionsKeySeparatesStrategyFromSemantics) {
  PipelineOptions Base;
  std::string K = StageCache::solveOptionsKey(Base);

  // Strategy and post-solve knobs: same key.
  struct Strategy {
    const char *Name;
    void (*Apply)(PipelineOptions &);
  };
  const Strategy Strategies[] = {
      {"solver_shards", [](PipelineOptions &O) { O.SolverShards = 7; }},
      {"compress_universe",
       [](PipelineOptions &O) { O.CompressUniverse = true; }},
      {"incremental", [](PipelineOptions &O) { O.Incremental = true; }},
      {"annotate", [](PipelineOptions &O) { O.Annotate = true; }},
      {"audit", [](PipelineOptions &O) { O.Audit = true; }},
      {"verify", [](PipelineOptions &O) { O.Verify = true; }},
      {"werror", [](PipelineOptions &O) { O.Werror = true; }},
      {"analyses",
       [](PipelineOptions &O) { O.ExtraAnalyses.push_back("liveness"); }},
  };
  for (const Strategy &S : Strategies) {
    PipelineOptions O = Base;
    S.Apply(O);
    EXPECT_EQ(StageCache::solveOptionsKey(O), K) << S.Name;
  }

  // Solve inputs: different key.
  const Strategy Semantic[] = {
      {"mode", [](PipelineOptions &O) { O.Mode = PipelineMode::Pre; }},
      {"baseline", [](PipelineOptions &O) { O.Baseline = "naive"; }},
      {"atomic", [](PipelineOptions &O) { O.Comm.Atomic = true; }},
      {"owner_computes",
       [](PipelineOptions &O) { O.Comm.OwnerComputes = true; }},
      {"hoist_zero_trip",
       [](PipelineOptions &O) { O.Comm.HoistZeroTrip = false; }},
      {"reads", [](PipelineOptions &O) { O.Comm.GenerateReads = false; }},
      {"writes", [](PipelineOptions &O) { O.Comm.GenerateWrites = false; }},
      {"strategy",
       [](PipelineOptions &O) { O.Strategy = PlacementStrategy::Lospre; }},
      {"profile",
       [](PipelineOptions &O) {
         O.Profile = "gnt-profile-v1\nbranch 1 9 1\n";
       }},
  };
  for (const Strategy &S : Semantic) {
    PipelineOptions O = Base;
    S.Apply(O);
    EXPECT_NE(StageCache::solveOptionsKey(O), K) << S.Name;
  }
}

//===----------------------------------------------------------------------===//
// LRU behavior and hit/miss accounting
//===----------------------------------------------------------------------===//

TEST(StageCacheTest, EvictsLeastRecentlyUsedUnderPressure) {
  StageCache::Config C;
  C.CapacityPerStage = 2;
  StageCache Cache(C);
  auto Artifact = [] { return std::make_shared<const ParseArtifact>(); };
  Cache.insertParse(1, Artifact());
  Cache.insertParse(2, Artifact());
  // Refresh key 1, then insert a third: key 2 is now the oldest.
  EXPECT_NE(Cache.lookupParse(1), nullptr);
  Cache.insertParse(3, Artifact());
  EXPECT_EQ(Cache.entries(CacheStage::Parse), 2u);
  EXPECT_NE(Cache.lookupParse(1), nullptr);
  EXPECT_EQ(Cache.lookupParse(2), nullptr);
  EXPECT_NE(Cache.lookupParse(3), nullptr);
  StageCacheStats S = Cache.statsSnapshot();
  EXPECT_EQ(S.hits(CacheStage::Parse), 3u);
  EXPECT_EQ(S.misses(CacheStage::Parse), 1u);
}

/// Compiling the same source twice hits every stage; a whitespace
/// variant misses only the parse stage.
TEST(StageCacheTest, PipelineStagesHitPerContentAddress) {
  StageCache Cache;
  PipelineOptions Opts;
  Opts.Annotate = true;
  PipelineResult First = Pipeline(Opts).compile(kBase, &Cache);
  ASSERT_TRUE(First.ok()) << First.Diags.renderText();
  StageCacheStats Cold = Cache.statsSnapshot();
  EXPECT_EQ(Cold.hits(CacheStage::Parse), 0u);
  EXPECT_EQ(Cold.misses(CacheStage::Parse), 1u);
  EXPECT_EQ(Cold.misses(CacheStage::Solve), 1u);

  PipelineResult Again = Pipeline(Opts).compile(kBase, &Cache);
  EXPECT_EQ(Again.Annotated, First.Annotated);
  StageCacheStats Warm = Cache.statsSnapshot();
  EXPECT_EQ(Warm.hits(CacheStage::Parse), 1u);
  EXPECT_EQ(Warm.hits(CacheStage::Solve), 1u);
  EXPECT_EQ(Warm.misses(CacheStage::Solve), 1u);

  PipelineResult Ws = Pipeline(Opts).compile(kBaseWhitespace, &Cache);
  EXPECT_EQ(Ws.Annotated, First.Annotated);
  StageCacheStats AfterWs = Cache.statsSnapshot();
  EXPECT_EQ(AfterWs.misses(CacheStage::Parse), 2u); // New bytes.
  // Same AST: the warm recompile and the whitespace variant each hit.
  EXPECT_EQ(AfterWs.hits(CacheStage::Cfg), 2u);
  EXPECT_EQ(AfterWs.hits(CacheStage::Solve), 2u);
  EXPECT_EQ(AfterWs.misses(CacheStage::Solve), 1u);
}

//===----------------------------------------------------------------------===//
// Interval-level incrementality
//===----------------------------------------------------------------------===//

/// The dirty-interval rule in action: moving one use between the two
/// statements of the second loop keeps the loop forest and the item
/// universe, so the incremental solve re-solves a strict subset of
/// nodes — and still matches a cold compile byte for byte.
TEST(StageCacheTest, SingleLoopEditResolvesStrictSubset) {
  StageCache Cache;
  PipelineOptions Opts = incrementalOptions();
  PipelineResult First = Pipeline(Opts).compile(kBase, &Cache);
  ASSERT_TRUE(First.ok()) << First.Diags.renderText();
  GntIncrementalStats S0 = Cache.statsSnapshot().Inc;
  EXPECT_GT(S0.FullSolves, 0u); // Cold memos: everything solves fully.
  EXPECT_EQ(S0.PartialSolves, 0u);

  PipelineResult Edited = Pipeline(Opts).compile(kBaseMovedUse, &Cache);
  ASSERT_TRUE(Edited.ok()) << Edited.Diags.renderText();
  GntIncrementalStats S1 = Cache.statsSnapshot().Inc;
  EXPECT_GT(S1.PartialSolves, 0u);
  EXPECT_GT(S1.NodesTotal, S1.NodesResolved); // Strict subset.
  EXPECT_LT(S1.IntervalsResolved, S1.IntervalsTotal);

  PipelineResult Cold = compilePipeline(kBaseMovedUse, [] {
    PipelineOptions O;
    O.Annotate = true;
    return O;
  }());
  EXPECT_EQ(resultSignature(Edited), resultSignature(Cold));
  EXPECT_EQ(Edited.Annotated, Cold.Annotated);
}

//===----------------------------------------------------------------------===//
// Memo persistence and corruption fallback
//===----------------------------------------------------------------------===//

namespace {

/// Compiles kBase incrementally against a fresh stage cache wired to
/// \p Disk, persisting the solve memos.
void primeDisk(DiskCache &Disk) {
  StageCache Cache(StageCache::Config{}, &Disk);
  PipelineResult R = Pipeline(incrementalOptions()).compile(kBase, &Cache);
  ASSERT_TRUE(R.ok()) << R.Diags.renderText();
  ASSERT_GT(Cache.statsSnapshot().Inc.FullSolves, 0u);
}

/// The persisted READ-problem memo payload for the default options.
std::string persistedReadMemo(DiskCache &Disk) {
  std::string SolveOpts =
      StageCache::solveOptionsKey(incrementalOptions());
  std::string Payload;
  EXPECT_TRUE(
      Disk.lookupMemo(StageCache::memoDiskKey(SolveOpts, "read"), Payload));
  return Payload;
}

void storeReadMemo(DiskCache &Disk, const std::string &Payload) {
  std::string SolveOpts =
      StageCache::solveOptionsKey(incrementalOptions());
  Disk.insertMemo(StageCache::memoDiskKey(SolveOpts, "read"), Payload);
}

/// Incremental solver stats of one compile of \p Source against a
/// restarted stage cache backed by \p Disk.
GntIncrementalStats restartAndCompile(DiskCache &Disk,
                                      const std::string &Source,
                                      std::string *AnnotatedOut = nullptr) {
  StageCache Cache(StageCache::Config{}, &Disk);
  PipelineResult R = Pipeline(incrementalOptions()).compile(Source, &Cache);
  EXPECT_TRUE(R.ok()) << R.Diags.renderText();
  if (AnnotatedOut)
    *AnnotatedOut = R.Annotated;
  return Cache.statsSnapshot().Inc;
}

} // namespace

/// A restarted process reuses the previous process's solve memos: the
/// identical source is a pure memo hit, the dirty-interval edit is a
/// partial solve — no full re-solve either way.
TEST(StageCacheTest, PersistedMemosServeARestart) {
  TempDir Tmp;
  DiskCache Disk(Tmp.Path, 64);
  std::string Error;
  ASSERT_TRUE(Disk.open(Error)) << Error;
  primeDisk(Disk);

  GntIncrementalStats Same = restartAndCompile(Disk, kBase);
  EXPECT_GT(Same.MemoHits, 0u);
  EXPECT_EQ(Same.FullSolves, 0u);

  std::string Annotated;
  GntIncrementalStats Edit =
      restartAndCompile(Disk, kBaseMovedUse, &Annotated);
  EXPECT_GT(Edit.PartialSolves, 0u);
  EXPECT_EQ(Edit.FullSolves, 0u);
  PipelineResult Cold = compilePipeline(kBaseMovedUse, [] {
    PipelineOptions O;
    O.Annotate = true;
    return O;
  }());
  EXPECT_EQ(Annotated, Cold.Annotated);
}

/// Truncated persisted memo: deserializes to an empty memo, compile
/// falls back to a full solve, output unharmed.
TEST(StageCacheTest, TruncatedPersistedMemoFallsBackToFullSolve) {
  TempDir Tmp;
  DiskCache Disk(Tmp.Path, 64);
  std::string Error;
  ASSERT_TRUE(Disk.open(Error)) << Error;
  primeDisk(Disk);

  std::string Payload = persistedReadMemo(Disk);
  ASSERT_GT(Payload.size(), 16u);
  storeReadMemo(Disk, Payload.substr(0, Payload.size() / 2));

  std::string Annotated;
  GntIncrementalStats S = restartAndCompile(Disk, kBase, &Annotated);
  EXPECT_GT(S.FullSolves, 0u); // The READ memo was unusable.
  PipelineResult Cold = compilePipeline(kBase, [] {
    PipelineOptions O;
    O.Annotate = true;
    return O;
  }());
  EXPECT_EQ(Annotated, Cold.Annotated);
}

/// Bit-flipped persisted memo: the trailing checksum catches it.
TEST(StageCacheTest, CorruptedPersistedMemoFallsBackToFullSolve) {
  TempDir Tmp;
  DiskCache Disk(Tmp.Path, 64);
  std::string Error;
  ASSERT_TRUE(Disk.open(Error)) << Error;
  primeDisk(Disk);

  std::string Payload = persistedReadMemo(Disk);
  ASSERT_GT(Payload.size(), 40u);
  Payload[Payload.size() / 2] =
      static_cast<char>(Payload[Payload.size() / 2] ^ 0x20);
  storeReadMemo(Disk, Payload);

  std::string Annotated;
  GntIncrementalStats S = restartAndCompile(Disk, kBase, &Annotated);
  EXPECT_GT(S.FullSolves, 0u);
  PipelineResult Cold = compilePipeline(kBase, [] {
    PipelineOptions O;
    O.Annotate = true;
    return O;
  }());
  EXPECT_EQ(Annotated, Cold.Annotated);
}

/// Garbage bytes under the memo key: rejected at the magic check.
TEST(StageCacheTest, GarbagePersistedMemoFallsBackToFullSolve) {
  TempDir Tmp;
  DiskCache Disk(Tmp.Path, 64);
  std::string Error;
  ASSERT_TRUE(Disk.open(Error)) << Error;
  primeDisk(Disk);

  storeReadMemo(Disk, "not a memo at all");

  GntIncrementalStats S = restartAndCompile(Disk, kBase);
  EXPECT_GT(S.FullSolves, 0u);
}
