//===- tests/DumpTest.cpp - Solver state dump tests -------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "comm/CommGen.h"
#include "dataflow/Dump.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

TEST(Dump, ContainsPaperVariablesOnFig11) {
  Pipeline P = Pipeline::fromSource(fig11Source());
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);
  ASSERT_TRUE(Plan.ReadRun.has_value());

  std::string Out =
      dumpGntRun(*Plan.ReadRun, P.G, Plan.Refs.Items.names());
  // Orientation header.
  EXPECT_NE(Out.find("BEFORE problem, forward graph"), std::string::npos);
  // The Section 4 values are visible with item names.
  EXPECT_NE(Out.find("RES_in^e   = {x(11:n+10)}"), std::string::npos);
  EXPECT_NE(Out.find("TAKE       = {x(11:n+10), y(b(1:n))}"),
            std::string::npos);
  // Every node appears.
  for (NodeId Id = 0; Id != P.G.size(); ++Id)
    EXPECT_NE(Out.find(describeNode(P.G, Id)), std::string::npos) << Id;
}

TEST(Dump, ReversedOrientationIsLabeled) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
do i = 1, n
  x(i) = u(i)
enddo
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);
  ASSERT_TRUE(Plan.WriteRun.has_value());
  std::string Out =
      dumpGntRun(*Plan.WriteRun, P.G, Plan.Refs.Items.names());
  EXPECT_NE(Out.find("AFTER problem, reversed graph"), std::string::npos);
  EXPECT_NE(Out.find("TAKE_init  = {x(1:n)}"), std::string::npos);
}

TEST(Dump, EmptySetsAreOmitted) {
  Pipeline P = Pipeline::fromSource("v = 1\n");
  ASSERT_TRUE(P.Ifg.has_value());
  GntProblem Prob(P.G.size(), 1);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  std::string Out = dumpGntRun(Run, P.G);
  // No items anywhere: only node lines.
  EXPECT_EQ(Out.find("= {"), std::string::npos);
}
