//===- tests/ParserTest.cpp - Lexer/parser/printer tests --------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/AstPrinter.h"

#include <gtest/gtest.h>

using namespace gnt;

namespace {

/// The paper's Figure 11 program (with concrete statements where the
/// paper elides them).
const char *Fig11 = R"(
distribute x, y
array a, b, w, z
do i = 1, n
  y(a(i)) = 0
  if (test(i)) goto 77
enddo
do j = 1, n
  w(j) = 0
enddo
77 do k = 1, n
  z(k) = x(k + 10) + y(b(k))
enddo
)";

} // namespace

TEST(Parser, Fig11Parses) {
  ParseResult R = parseProgram(Fig11);
  ASSERT_TRUE(R.success()) << (R.Errors.empty() ? "" : R.Errors.front());
  ASSERT_EQ(R.Prog.getBody().size(), 3u);
  EXPECT_TRUE(R.Prog.isDistributed("x"));
  EXPECT_TRUE(R.Prog.isDistributed("y"));
  EXPECT_FALSE(R.Prog.isDistributed("a"));
  EXPECT_FALSE(R.Prog.isDistributed("test"));

  const auto *Loop1 = dyn_cast<DoStmt>(R.Prog.getBody()[0].get());
  ASSERT_NE(Loop1, nullptr);
  EXPECT_EQ(Loop1->getIndexVar(), "i");
  ASSERT_EQ(Loop1->getBody().size(), 2u);

  const auto *Loop3 = dyn_cast<DoStmt>(R.Prog.getBody()[2].get());
  ASSERT_NE(Loop3, nullptr);
  EXPECT_EQ(Loop3->getLabel(), 77u);
}

TEST(Parser, IndirectReferencesResolveToArrayRefs) {
  ParseResult R = parseProgram(Fig11);
  ASSERT_TRUE(R.success());

  // y(a(i)) on an assignment LHS: both y and a must be ArrayRefExpr.
  const auto *Loop1 = cast<DoStmt>(R.Prog.getBody()[0].get());
  const auto *A = cast<AssignStmt>(Loop1->getBody()[0].get());
  const auto *LHS = dyn_cast<ArrayRefExpr>(A->getLHS());
  ASSERT_NE(LHS, nullptr);
  EXPECT_EQ(LHS->getArray(), "y");
  const auto *Sub = dyn_cast<ArrayRefExpr>(LHS->getSubscript());
  ASSERT_NE(Sub, nullptr);
  EXPECT_EQ(Sub->getArray(), "a");

  // test(i) stays a CallExpr (undeclared name).
  const auto *If = cast<IfStmt>(Loop1->getBody()[1].get());
  EXPECT_EQ(If->getCond()->getKind(), Expr::Kind::Call);

  // x(k+10) and y(b(k)) in the k-loop RHS are array references.
  const auto *Loop3 = cast<DoStmt>(R.Prog.getBody()[2].get());
  const auto *KAssign = cast<AssignStmt>(Loop3->getBody()[0].get());
  const auto *RHS = dyn_cast<BinaryExpr>(KAssign->getRHS());
  ASSERT_NE(RHS, nullptr);
  EXPECT_EQ(RHS->getLHS()->getKind(), Expr::Kind::ArrayRef);
  EXPECT_EQ(RHS->getRHS()->getKind(), Expr::Kind::ArrayRef);
}

TEST(Parser, PrintRoundTrip) {
  ParseResult R = parseProgram(Fig11);
  ASSERT_TRUE(R.success());
  std::string Printed = AstPrinter().print(R.Prog);
  // Re-parsing the printed form must give the same printed form again.
  ParseResult R2 = parseProgram(Printed);
  ASSERT_TRUE(R2.success()) << (R2.Errors.empty() ? "" : R2.Errors.front());
  EXPECT_EQ(Printed, AstPrinter().print(R2.Prog));
  // Structure survived.
  EXPECT_NE(Printed.find("if (test(i)) goto 77"), std::string::npos);
  EXPECT_NE(Printed.find("77 do k = 1, n"), std::string::npos);
  EXPECT_NE(Printed.find("x(k + 10) + y(b(k))"), std::string::npos);
}

TEST(Parser, IfThenElse) {
  ParseResult R = parseProgram(R"(
array u
if (n > 0) then
  u(1) = 1
else
  u(2) = 2
endif
)");
  ASSERT_TRUE(R.success());
  const auto *If = dyn_cast<IfStmt>(R.Prog.getBody()[0].get());
  ASSERT_NE(If, nullptr);
  EXPECT_TRUE(If->hasElse());
  EXPECT_EQ(If->getThen().size(), 1u);
  EXPECT_EQ(If->getElse().size(), 1u);
  const auto *Cond = dyn_cast<BinaryExpr>(If->getCond());
  ASSERT_NE(Cond, nullptr);
  EXPECT_EQ(Cond->getOp(), BinaryExpr::Op::Gt);
}

TEST(Parser, OperatorsAndPrecedence) {
  ParseResult R = parseProgram("v = 1 + 2 * 3 - (4 + 5) / 3\n");
  ASSERT_TRUE(R.success());
  const auto *A = cast<AssignStmt>(R.Prog.getBody()[0].get());
  EXPECT_EQ(AstPrinter::printExpr(A->getRHS()), "1 + 2 * 3 - (4 + 5) / 3");
}

TEST(Parser, NotEqualOperator) {
  ParseResult R = parseProgram("if (i /= j) then\nv = 1\nendif\n");
  ASSERT_TRUE(R.success());
  const auto *If = cast<IfStmt>(R.Prog.getBody()[0].get());
  EXPECT_EQ(cast<BinaryExpr>(If->getCond())->getOp(), BinaryExpr::Op::Ne);
}

TEST(Parser, CommentsAndBlankLines) {
  ParseResult R = parseProgram(R"(
! leading comment
v = 1   ! trailing comment

! comment between statements

w = 2
)");
  ASSERT_TRUE(R.success());
  EXPECT_EQ(R.Prog.getBody().size(), 2u);
}

TEST(Parser, ErrorRecovery) {
  ParseResult R = parseProgram(R"(
v =
w = 2
)");
  EXPECT_FALSE(R.success());
  ASSERT_FALSE(R.Errors.empty());
  EXPECT_NE(R.Errors.front().find("line 2"), std::string::npos);
  // The parser recovered and still saw the next statement.
  EXPECT_EQ(R.Prog.getBody().size(), 1u);
}

TEST(Parser, MissingEnddo) {
  ParseResult R = parseProgram("do i = 1, n\nv = 1\n");
  EXPECT_FALSE(R.success());
}

TEST(Parser, UnexpectedCharacter) {
  ParseResult R = parseProgram("v = 1 @ 2\n");
  EXPECT_FALSE(R.success());
}

TEST(Parser, LhsSubscriptDeclaresArray) {
  // q is undeclared but subscripted on an LHS, so q(i) elsewhere is an
  // array reference, not a call.
  ParseResult R = parseProgram("do i = 1, n\nq(i) = 1\nv = q(i)\nenddo\n");
  ASSERT_TRUE(R.success());
  const auto *Loop = cast<DoStmt>(R.Prog.getBody()[0].get());
  const auto *Use = cast<AssignStmt>(Loop->getBody()[1].get());
  EXPECT_EQ(Use->getRHS()->getKind(), Expr::Kind::ArrayRef);
}
