//===- tests/AnnotationTest.cpp - Print-anchor semantics --------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The annotation machinery: every EmitWhere position lands at the right
/// source location, the compact `if (c) goto L` form expands exactly when
/// something must print inside it (Figure 14), and the positions agree
/// with the simulator's firing semantics (per-entry vs per-iteration).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/AstPrinter.h"

#include <gtest/gtest.h>

#include <map>

using namespace gnt;
using namespace gnt::test;

namespace {

/// Prints \p Src with one annotation line placed at (\p Which statement
/// in preorder, \p Where).
std::string annotateAt(const Program &Prog, const Stmt *S, EmitWhere W,
                       const std::string &Line) {
  AstPrinter Printer([&](const Stmt *Q, EmitWhere QW) {
    std::vector<std::string> R;
    if (Q == S && QW == W)
      R.push_back(Line);
    return R;
  });
  return Printer.print(Prog);
}

const Stmt *nthStmt(const Program &P, unsigned N) {
  const Stmt *Found = nullptr;
  unsigned I = 0;
  forEachStmt(P.getBody(), [&](const Stmt *S) {
    if (I++ == N)
      Found = S;
  });
  return Found;
}

} // namespace

TEST(Annotation, BeforeAndAfter) {
  ParseResult R = parseProgram("v = 1\nw = 2\n");
  ASSERT_TRUE(R.success());
  const Stmt *First = nthStmt(R.Prog, 0);
  std::string Out = annotateAt(R.Prog, First, EmitWhere::Before, "<<B>>");
  EXPECT_LT(Out.find("<<B>>"), Out.find("v = 1"));
  Out = annotateAt(R.Prog, First, EmitWhere::After, "<<A>>");
  EXPECT_GT(Out.find("<<A>>"), Out.find("v = 1"));
  EXPECT_LT(Out.find("<<A>>"), Out.find("w = 2"));
}

TEST(Annotation, LoopPositions) {
  ParseResult R = parseProgram("do i = 1, n\nv = i\nw = i\nenddo\n");
  ASSERT_TRUE(R.success());
  const Stmt *Loop = nthStmt(R.Prog, 0);

  // BodyStart: after the do line, before the first body statement.
  std::string Out = annotateAt(R.Prog, Loop, EmitWhere::BodyStart, "<<S>>");
  EXPECT_GT(Out.find("<<S>>"), Out.find("do i"));
  EXPECT_LT(Out.find("<<S>>"), Out.find("v = i"));

  // BodyEnd: after the last body statement, before enddo.
  Out = annotateAt(R.Prog, Loop, EmitWhere::BodyEnd, "<<E>>");
  EXPECT_GT(Out.find("<<E>>"), Out.find("w = i"));
  EXPECT_LT(Out.find("<<E>>"), Out.find("enddo"));

  // Before/After bracket the whole loop.
  Out = annotateAt(R.Prog, Loop, EmitWhere::Before, "<<P>>");
  EXPECT_LT(Out.find("<<P>>"), Out.find("do i"));
  Out = annotateAt(R.Prog, Loop, EmitWhere::After, "<<Q>>");
  EXPECT_GT(Out.find("<<Q>>"), Out.find("enddo"));
}

TEST(Annotation, BranchPositions) {
  ParseResult R = parseProgram(R"(
if (c > 0) then
  v = 1
else
  w = 2
endif
)");
  ASSERT_TRUE(R.success());
  const Stmt *If = nthStmt(R.Prog, 0);
  std::string Out = annotateAt(R.Prog, If, EmitWhere::ThenEntry, "<<T>>");
  EXPECT_GT(Out.find("<<T>>"), Out.find("then"));
  EXPECT_LT(Out.find("<<T>>"), Out.find("v = 1"));
  Out = annotateAt(R.Prog, If, EmitWhere::ThenExit, "<<X>>");
  EXPECT_GT(Out.find("<<X>>"), Out.find("v = 1"));
  EXPECT_LT(Out.find("<<X>>"), Out.find("else"));
  Out = annotateAt(R.Prog, If, EmitWhere::ElseEntry, "<<L>>");
  EXPECT_GT(Out.find("<<L>>"), Out.find("else"));
  EXPECT_LT(Out.find("<<L>>"), Out.find("w = 2"));
}

TEST(Annotation, SynthesizedElseBranchAppears) {
  ParseResult R = parseProgram("if (c > 0) then\nv = 1\nendif\n");
  ASSERT_TRUE(R.success());
  const Stmt *If = nthStmt(R.Prog, 0);
  // Without annotations, no else is printed.
  EXPECT_EQ(AstPrinter().print(R.Prog).find("else"), std::string::npos);
  // An ElseEntry annotation materializes the branch (paper Figure 3).
  std::string Out = annotateAt(R.Prog, If, EmitWhere::ElseEntry, "<<L>>");
  size_t Else = Out.find("else");
  ASSERT_NE(Else, std::string::npos);
  EXPECT_GT(Out.find("<<L>>"), Else);
  EXPECT_LT(Out.find("<<L>>"), Out.find("endif"));
}

TEST(Annotation, CompactGotoExpandsOnlyWhenNeeded) {
  ParseResult R = parseProgram(R"(
do i = 1, n
  if (t(i)) goto 9
enddo
9 v = 1
)");
  ASSERT_TRUE(R.success());
  // Untouched: stays compact.
  std::string Plain = AstPrinter().print(R.Prog);
  EXPECT_NE(Plain.find("if (t(i)) goto 9"), std::string::npos);
  EXPECT_EQ(Plain.find("then"), std::string::npos);

  // An annotation before the goto forces the expanded form with the
  // line inside the then branch (Figure 14's Read_Send placement).
  const auto *Loop = cast<DoStmt>(R.Prog.getBody()[0].get());
  const auto *If = cast<IfStmt>(Loop->getBody()[0].get());
  const Stmt *Goto = If->getThen().front().get();
  std::string Out = annotateAt(R.Prog, Goto, EmitWhere::Before, "<<G>>");
  EXPECT_NE(Out.find("then"), std::string::npos);
  EXPECT_GT(Out.find("<<G>>"), Out.find("then"));
  EXPECT_LT(Out.find("<<G>>"), Out.find("goto 9"));
}

TEST(Annotation, LabelsArePreserved) {
  ParseResult R = parseProgram("10 v = 1\n77 do k = 1, n\nw = k\nenddo\n");
  ASSERT_TRUE(R.success());
  std::string Out = AstPrinter().print(R.Prog);
  EXPECT_NE(Out.find("10 v = 1"), std::string::npos);
  EXPECT_NE(Out.find("77 do k = 1, n"), std::string::npos);
}

TEST(Annotation, MultipleLinesKeepOrder) {
  ParseResult R = parseProgram("v = 1\n");
  ASSERT_TRUE(R.success());
  const Stmt *S = nthStmt(R.Prog, 0);
  AstPrinter Printer([&](const Stmt *Q, EmitWhere W) {
    std::vector<std::string> L;
    if (Q == S && W == EmitWhere::Before) {
      L.push_back("<<1>>");
      L.push_back("<<2>>");
      L.push_back("<<3>>");
    }
    return L;
  });
  std::string Out = Printer.print(R.Prog);
  EXPECT_LT(Out.find("<<1>>"), Out.find("<<2>>"));
  EXPECT_LT(Out.find("<<2>>"), Out.find("<<3>>"));
}
