//===- tests/RefAnalysisTest.cpp - Section analysis unit tests --------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The value-numbered section universe (paper Section 2/4.1): subscript
/// normalization against loop nests, indirect references, volatile
/// (mutated-scalar) subscripts, and the derived TAKE/GIVE/STEAL_init
/// sets.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "comm/CommGen.h"
#include "comm/RefAnalysis.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

RefAnalysisResult analyze(Pipeline &P) {
  EXPECT_TRUE(P.Ifg.has_value());
  return analyzeReferences(P.Prog, P.G);
}

} // namespace

TEST(RefAnalysis, DirectSectionNormalization) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
do k = 1, n
  u(k) = x(k + 10)
enddo
)");
  RefAnalysisResult R = analyze(P);
  ASSERT_EQ(R.Items.size(), 1u);
  EXPECT_EQ(R.Items.item(0).Key, "x(11:n+10)");
  EXPECT_FALSE(R.Items.item(0).Volatile);
  EXPECT_FALSE(R.Items.item(0).isIndirect());
}

TEST(RefAnalysis, StridedAndReversedSections) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x, y
array u
do k = 1, n
  u(k) = x(2 * k) + y(n - k)
enddo
)");
  RefAnalysisResult R = analyze(P);
  EXPECT_GE(R.Items.lookup("x(2:2*n:2)"), 0);
  // Negative coefficient: bounds swap so lo <= hi.
  EXPECT_GE(R.Items.lookup("y(0:n-1)"), 0);
}

TEST(RefAnalysis, TriangularBounds) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
do i = 1, n
  do j = 1, i
    u(j) = x(j)
  enddo
enddo
)");
  RefAnalysisResult R = analyze(P);
  // j in [1, i], i in [1, n]: the section expands to (1:n).
  EXPECT_GE(R.Items.lookup("x(1:n)"), 0);
}

TEST(RefAnalysis, IndirectValueNumbering) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array a, u
do k = 1, n
  u(k) = x(a(k))
enddo
do l = 1, n
  u(l) = x(a(l))
enddo
)");
  RefAnalysisResult R = analyze(P);
  // The Figure 2 caption's claim: both refs share one value number.
  ASSERT_EQ(R.Items.size(), 1u);
  EXPECT_EQ(R.Items.item(0).Key, "x(a(1:n))");
  EXPECT_TRUE(R.Items.item(0).isIndirect());
  EXPECT_EQ(R.Items.item(0).IndirectArray, "a");
}

TEST(RefAnalysis, DistributedIndirectionArrayIsAlsoConsumed) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x, a
array u
do k = 1, n
  u(k) = x(a(k))
enddo
)");
  RefAnalysisResult R = analyze(P);
  // Both x(a(1:n)) and a(1:n) are consumed.
  EXPECT_GE(R.Items.lookup("x(a(1:n))"), 0);
  EXPECT_GE(R.Items.lookup("a(1:n)"), 0);
}

TEST(RefAnalysis, MutatedScalarSubscriptIsVolatile) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
m = 1
u(1) = x(m)
m = 2
u(2) = x(m)
)");
  RefAnalysisResult R = analyze(P);
  // Two distinct volatile items: the value number cannot be shared.
  unsigned Volatile = 0;
  for (unsigned I = 0; I != R.Items.size(); ++I)
    Volatile += R.Items.item(I).Volatile;
  EXPECT_EQ(Volatile, 2u);
}

TEST(RefAnalysis, ParameterSubscriptIsStable) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
u(1) = x(m)
u(2) = x(m)
)");
  RefAnalysisResult R = analyze(P);
  // m is never assigned: both refs share one stable item.
  ASSERT_EQ(R.Items.size(), 1u);
  EXPECT_FALSE(R.Items.item(0).Volatile);
}

TEST(RefAnalysis, StealFromOverlappingDefinition) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
u(1) = x(6)
x(2) = 0
x(100) = 0
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);
  int Use = Plan.Refs.Items.lookup("x(6)");
  ASSERT_GE(Use, 0);
  // Find the defining nodes.
  unsigned Steals = 0;
  for (NodeId Id = 0; Id != P.G.size(); ++Id)
    Steals += Plan.ReadProblem.StealInit[Id].test(Use);
  // x(2) and x(100) are provably disjoint from x(6): no steals at all.
  EXPECT_EQ(Steals, 0u);
}

TEST(RefAnalysis, StealFromMayOverlapDefinition) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
do k = 1, n
  u(k) = x(k)
enddo
x(m) = 0
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);
  int Use = Plan.Refs.Items.lookup("x(1:n)");
  ASSERT_GE(Use, 0);
  unsigned Steals = 0;
  for (NodeId Id = 0; Id != P.G.size(); ++Id)
    Steals += Plan.ReadProblem.StealInit[Id].test(Use);
  // x(m) may alias any element of x(1:n).
  EXPECT_EQ(Steals, 1u);
}

TEST(RefAnalysis, IndirectionArrayStoreStealsIndirectItems) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array a, u
do k = 1, n
  u(k) = x(a(k))
enddo
a(3) = 7
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);
  int Use = Plan.Refs.Items.lookup("x(a(1:n))");
  ASSERT_GE(Use, 0);
  unsigned Steals = 0;
  for (NodeId Id = 0; Id != P.G.size(); ++Id)
    Steals += Plan.ReadProblem.StealInit[Id].test(Use);
  // Modifying the indirection array invalidates x(a(1:n)) even though a
  // itself is not distributed (paper Section 4.1).
  EXPECT_EQ(Steals, 1u);
}

TEST(RefAnalysis, ScalarAssignStealsDependentSections) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
u(1) = x(m + 1)
m = m + 5
u(2) = x(m + 1)
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);
  // Volatile items, each stolen at the scalar assignment.
  bool AnySteal = false;
  for (NodeId Id = 0; Id != P.G.size(); ++Id)
    AnySteal |= Plan.ReadProblem.StealInit[Id].any();
  EXPECT_TRUE(AnySteal);
  GntVerifyResult V = Plan.verify();
  EXPECT_TRUE(V.ok()) << V.firstViolation();
}

TEST(RefAnalysis, UsesInConditionsAndBounds) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x, y
array u
if (x(1) > 0) then
  do i = 1, y(2)
    u(i) = 0
  enddo
endif
)");
  RefAnalysisResult R = analyze(P);
  EXPECT_GE(R.Items.lookup("x(1)"), 0);
  EXPECT_GE(R.Items.lookup("y(2)"), 0);
  // The condition's use sits on the Branch node, the bound's on the
  // LoopHeader node.
  bool BranchUse = false, HeaderUse = false;
  for (NodeId Id = 0; Id != P.G.size(); ++Id) {
    if (P.G.node(Id).Kind == NodeKind::Branch && !R.PerNode[Id].Uses.empty())
      BranchUse = true;
    if (P.G.node(Id).Kind == NodeKind::LoopHeader &&
        !R.PerNode[Id].Uses.empty())
      HeaderUse = true;
  }
  EXPECT_TRUE(BranchUse);
  EXPECT_TRUE(HeaderUse);
}

TEST(RefAnalysis, DefsRecordedForDistributedArrays) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
do i = 1, n
  x(i) = u(i)
enddo
)");
  RefAnalysisResult R = analyze(P);
  unsigned Defs = 0;
  for (const NodeRefs &NR : R.PerNode)
    Defs += NR.Defs.size();
  EXPECT_EQ(Defs, 1u);
  EXPECT_GE(R.Items.lookup("x(1:n)"), 0);
}
