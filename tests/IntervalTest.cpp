//===- tests/IntervalTest.cpp - Interval flow graph tests (Fig. 12) ---------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces experiment E3 of DESIGN.md: the interval flow graph the
/// paper's Figure 12 derives from the Figure 11 code — intervals, levels,
/// edge classification (ENTRY/CYCLE/JUMP/FORWARD/SYNTHETIC), preorder, and
/// the reversed view used for AFTER problems.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

std::optional<EdgeType> edgeType(const IntervalFlowGraph &Ifg, NodeId From,
                                 NodeId To) {
  for (const IfgEdge &E : Ifg.succs(From))
    if (E.Dst == To)
      return E.Type;
  return std::nullopt;
}

unsigned preorderPos(const IntervalFlowGraph &Ifg, NodeId N) {
  const auto &P = Ifg.preorder();
  for (unsigned I = 0; I != P.size(); ++I)
    if (P[I] == N)
      return I;
  ADD_FAILURE() << "node " << N << " missing from preorder";
  return ~0u;
}

} // namespace

TEST(Interval, Fig12Structure) {
  Pipeline P = Pipeline::fromSource(fig11Source());
  ASSERT_TRUE(P.Ifg.has_value());
  const IntervalFlowGraph &Ifg = *P.Ifg;
  Fig11Nodes N = locateFig11(P.G);

  // ROOT is the entry node, level 0; everything else is level >= 1.
  EXPECT_EQ(Ifg.root(), N.Root);
  EXPECT_EQ(Ifg.level(N.Root), 0u);

  // Levels: the three loop bodies are level 2, the rest level 1.
  for (NodeId Id : {N.Hi, N.SAfterI, N.Hj, N.SAfterJ, N.Pad, N.Hk, N.Exit})
    EXPECT_EQ(Ifg.level(Id), 1u) << "node " << Id;
  for (NodeId Id : {N.A, N.B, N.Li, N.JB, N.Lj, N.KB, N.Lk})
    EXPECT_EQ(Ifg.level(Id), 2u) << "node " << Id;

  // Interval membership: T(Hi) = {A, B, Li} (paper: T(2) = {3,4,5}).
  for (NodeId Id : {N.A, N.B, N.Li})
    EXPECT_EQ(Ifg.parent(Id), N.Hi);
  for (NodeId Id : {N.JB, N.Lj})
    EXPECT_EQ(Ifg.parent(Id), N.Hj);
  for (NodeId Id : {N.KB, N.Lk})
    EXPECT_EQ(Ifg.parent(Id), N.Hk);
  for (NodeId Id : {N.Hi, N.SAfterI, N.Hj, N.SAfterJ, N.Pad, N.Hk, N.Exit})
    EXPECT_EQ(Ifg.parent(Id), N.Root);

  // Headers and their unique LASTCHILDs.
  EXPECT_TRUE(Ifg.isHeader(N.Hi));
  EXPECT_TRUE(Ifg.isHeader(N.Root));
  EXPECT_FALSE(Ifg.isHeader(N.A));
  EXPECT_EQ(Ifg.lastChild(N.Hi), N.Li);
  EXPECT_EQ(Ifg.lastChild(N.Hj), N.Lj);
  EXPECT_EQ(Ifg.lastChild(N.Hk), N.Lk);
  EXPECT_EQ(Ifg.lastChild(N.Root), N.Exit);

  // HEADER(n) for entry children.
  EXPECT_EQ(Ifg.headerOf(N.A), N.Hi);
  EXPECT_EQ(Ifg.headerOf(N.JB), N.Hj);
  EXPECT_EQ(Ifg.headerOf(N.KB), N.Hk);
  EXPECT_EQ(Ifg.headerOf(N.Hi), N.Root);
  EXPECT_EQ(Ifg.headerOf(N.B), InvalidNode);
}

TEST(Interval, Fig12EdgeClassification) {
  Pipeline P = Pipeline::fromSource(fig11Source());
  ASSERT_TRUE(P.Ifg.has_value());
  const IntervalFlowGraph &Ifg = *P.Ifg;
  Fig11Nodes N = locateFig11(P.G);

  EXPECT_EQ(edgeType(Ifg, N.Root, N.Hi), EdgeType::Entry);
  EXPECT_EQ(edgeType(Ifg, N.Hi, N.A), EdgeType::Entry);
  EXPECT_EQ(edgeType(Ifg, N.A, N.B), EdgeType::Forward);
  EXPECT_EQ(edgeType(Ifg, N.B, N.Li), EdgeType::Forward);
  EXPECT_EQ(edgeType(Ifg, N.Li, N.Hi), EdgeType::Cycle);
  EXPECT_EQ(edgeType(Ifg, N.Hi, N.SAfterI), EdgeType::Forward);
  // The jump out of the i loop (paper edge (4,10)).
  EXPECT_EQ(edgeType(Ifg, N.B, N.Pad), EdgeType::Jump);
  // Its projection onto the i header (paper's dashed edge (2,10)).
  EXPECT_EQ(edgeType(Ifg, N.Hi, N.Pad), EdgeType::Synthetic);
  EXPECT_EQ(edgeType(Ifg, N.Pad, N.Hk), EdgeType::Forward);
  EXPECT_EQ(edgeType(Ifg, N.SAfterJ, N.Hk), EdgeType::Forward);
  EXPECT_EQ(edgeType(Ifg, N.Hk, N.Exit), EdgeType::Forward);

  // Exactly one JUMP and one SYNTHETIC edge in the whole graph
  // (LEVEL(source) - LEVEL(sink) = 2 - 1 = 1).
  unsigned Jumps = 0, Synths = 0;
  for (NodeId Id = 0; Id != Ifg.size(); ++Id)
    for (const IfgEdge &E : Ifg.succs(Id)) {
      Jumps += E.Type == EdgeType::Jump;
      Synths += E.Type == EdgeType::Synthetic;
    }
  EXPECT_EQ(Jumps, 1u);
  EXPECT_EQ(Synths, 1u);

  // The i loop is the only jump-poisoned interval.
  ASSERT_EQ(Ifg.jumpPoisonedHeaders().size(), 1u);
  EXPECT_EQ(Ifg.jumpPoisonedHeaders()[0], N.Hi);
  EXPECT_TRUE(Ifg.hasJumpEdges());
}

TEST(Interval, Fig12Preorder) {
  Pipeline P = Pipeline::fromSource(fig11Source());
  ASSERT_TRUE(P.Ifg.has_value());
  const IntervalFlowGraph &Ifg = *P.Ifg;
  Fig11Nodes N = locateFig11(P.G);

  EXPECT_EQ(Ifg.preorder().size(), Ifg.size());
  EXPECT_EQ(Ifg.preorder().front(), N.Root);

  // FORWARD/JUMP/SYNTHETIC edges increase; headers precede members.
  for (NodeId Id = 0; Id != Ifg.size(); ++Id)
    for (const IfgEdge &E : Ifg.succs(Id))
      if (E.Type == EdgeType::Forward || E.Type == EdgeType::Jump ||
          E.Type == EdgeType::Synthetic) {
        EXPECT_LT(preorderPos(Ifg, E.Src), preorderPos(Ifg, E.Dst));
      }
  for (NodeId Id = 0; Id != Ifg.size(); ++Id)
    if (Id != N.Root) {
      EXPECT_LT(preorderPos(Ifg, Ifg.parent(Id)), preorderPos(Ifg, Id));
    }

  // Children lists are in FORWARD order and partition non-root nodes.
  unsigned Total = 0;
  for (NodeId Id = 0; Id != Ifg.size(); ++Id)
    Total += Ifg.children(Id).size();
  EXPECT_EQ(Total, Ifg.size() - 1);
  const auto &Body = Ifg.children(N.Hi);
  ASSERT_EQ(Body.size(), 3u);
  EXPECT_EQ(Body.front(), N.A);
  EXPECT_EQ(Body.back(), N.Li);
}

TEST(Interval, ReversedView) {
  Pipeline P = Pipeline::fromSource(fig11Source());
  ASSERT_TRUE(P.Ifg.has_value());
  const IntervalFlowGraph &Fwd = *P.Ifg;
  Fig11Nodes N = locateFig11(P.G);

  IntervalFlowGraph Rev = Fwd.reversed();
  EXPECT_TRUE(Rev.isReversed());
  EXPECT_EQ(Rev.size(), Fwd.size());

  // Same interval structure.
  for (NodeId Id = 0; Id != Fwd.size(); ++Id) {
    EXPECT_EQ(Rev.level(Id), Fwd.level(Id));
    EXPECT_EQ(Rev.parent(Id), Fwd.parent(Id));
  }

  // ENTRY and CYCLE swap: the reversed loop is entered through its old
  // latch and cycles through its old entry child.
  EXPECT_EQ(edgeType(Rev, N.Hi, N.Li), EdgeType::Entry);
  EXPECT_EQ(edgeType(Rev, N.A, N.Hi), EdgeType::Cycle);
  EXPECT_EQ(Rev.lastChild(N.Hi), N.A);
  EXPECT_EQ(Rev.headerOf(N.Li), N.Hi);

  // FORWARD edges mirror.
  EXPECT_EQ(edgeType(Rev, N.B, N.A), EdgeType::Forward);
  // The JUMP edge reverses (a jump *into* the loop, cf. Figure 16); the
  // poisoned-header list is preserved for the AFTER-problem driver.
  EXPECT_EQ(edgeType(Rev, N.Pad, N.B), EdgeType::Jump);
  ASSERT_EQ(Rev.jumpPoisonedHeaders().size(), 1u);
  EXPECT_EQ(Rev.jumpPoisonedHeaders()[0], N.Hi);

  // The reversed preorder starts at ROOT and visits the exit first among
  // ROOT's children.
  EXPECT_EQ(Rev.preorder().front(), N.Root);
  ASSERT_FALSE(Rev.children(N.Root).empty());
  EXPECT_EQ(Rev.children(N.Root).front(), N.Exit);

  // Reversing twice restores the forward orientation.
  IntervalFlowGraph Back = Rev.reversed();
  EXPECT_FALSE(Back.isReversed());
  EXPECT_EQ(edgeType(Back, N.Hi, N.A), EdgeType::Entry);
  EXPECT_EQ(Back.lastChild(N.Hi), N.Li);
}

TEST(Interval, NestedLoops) {
  Pipeline P = Pipeline::fromSource(R"(
do i = 1, n
  do j = 1, n
    v = i + j
  enddo
enddo
)");
  ASSERT_TRUE(P.Ifg.has_value());
  const IntervalFlowGraph &Ifg = *P.Ifg;
  // Find the two headers by level.
  NodeId Outer = InvalidNode, Inner = InvalidNode;
  for (NodeId Id = 0; Id != Ifg.size(); ++Id) {
    if (P.G.node(Id).Kind != NodeKind::LoopHeader)
      continue;
    if (Ifg.level(Id) == 1)
      Outer = Id;
    else
      Inner = Id;
  }
  ASSERT_NE(Outer, InvalidNode);
  ASSERT_NE(Inner, InvalidNode);
  EXPECT_EQ(Ifg.parent(Inner), Outer);
  EXPECT_EQ(Ifg.level(Inner), 2u);
  // The body statement is level 3.
  for (NodeId Id = 0; Id != Ifg.size(); ++Id)
    if (P.G.node(Id).Kind == NodeKind::Stmt) {
      EXPECT_EQ(Ifg.level(Id), 3u);
    }
}

TEST(Interval, MultiLevelJumpSynthetics) {
  // A jump out of a double nest crosses two interval boundaries, so it
  // spawns LEVEL(m) - LEVEL(n) = 2 synthetic edges and poisons both loops.
  Pipeline P = Pipeline::fromSource(R"(
do i = 1, n
  do j = 1, n
    if (t(j)) goto 99
    v = j
  enddo
enddo
99 w = 1
)");
  ASSERT_TRUE(P.Ifg.has_value());
  const IntervalFlowGraph &Ifg = *P.Ifg;
  unsigned Synths = 0, Jumps = 0;
  for (NodeId Id = 0; Id != Ifg.size(); ++Id)
    for (const IfgEdge &E : Ifg.succs(Id)) {
      Synths += E.Type == EdgeType::Synthetic;
      Jumps += E.Type == EdgeType::Jump;
    }
  EXPECT_EQ(Jumps, 1u);
  EXPECT_EQ(Synths, 2u);
  EXPECT_EQ(Ifg.jumpPoisonedHeaders().size(), 2u);
}

TEST(Interval, GotoFormedLoopIsNormalized) {
  // A backward goto forms a loop with no DO statement; normalization must
  // synthesize a unique latch.
  Pipeline P = Pipeline::fromSource(R"(
10 v = v + 1
if (v < n) goto 10
w = 1
)");
  ASSERT_TRUE(P.Ifg.has_value());
  const IntervalFlowGraph &Ifg = *P.Ifg;
  // Exactly one header besides ROOT, with a unique CYCLE edge.
  unsigned Cycles = 0;
  for (NodeId Id = 0; Id != Ifg.size(); ++Id)
    for (const IfgEdge &E : Ifg.succs(Id))
      Cycles += E.Type == EdgeType::Cycle;
  EXPECT_EQ(Cycles, 1u);
}

TEST(Interval, IrreducibleRejected) {
  // Jump into a loop body: classic irreducible control flow.
  ParseResult PR = parseProgram(R"(
if (c > 0) goto 20
do i = 1, n
20 v = i
enddo
)");
  ASSERT_TRUE(PR.success());
  CfgBuildResult CR = buildCfg(PR.Prog);
  ASSERT_TRUE(CR.success());
  auto IR = IntervalFlowGraph::build(CR.G);
  EXPECT_FALSE(IR.success());
}
