//===- tests/ExprPreTest.cpp - Expression PRE client tests ------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's generality claim (Sections 1/6): classical PRE as a LAZY
/// BEFORE problem — common subexpression elimination, partial redundancy
/// across joins, and loop-invariant code motion including the zero-trip
/// hoisting classical frameworks forgo.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pre/ExprPre.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

ExprPreResult preFor(Pipeline &P) {
  EXPECT_TRUE(P.Ifg.has_value());
  return runExprPre(P.Prog, P.G, *P.Ifg);
}

int itemOf(const ExprPreResult &R, const std::string &Text) {
  for (unsigned I = 0; I != R.Exprs.size(); ++I)
    if (R.Exprs[I] == Text)
      return static_cast<int>(I);
  return -1;
}

unsigned insertionsOf(const ExprPreResult &R, int Item) {
  unsigned N = 0;
  for (const PreInsertion &Ins : R.Insertions)
    N += Ins.Item == static_cast<unsigned>(Item);
  return N;
}

} // namespace

TEST(ExprPre, CommonSubexpressionEliminated) {
  Pipeline P = Pipeline::fromSource(R"(
array u
u(1) = a * b
u(2) = a * b
)");
  ExprPreResult R = preFor(P);
  int Item = itemOf(R, "a * b");
  ASSERT_GE(Item, 0);
  EXPECT_EQ(R.Occurrences[Item], 2u);
  // One temporary, one redundant occurrence.
  EXPECT_EQ(insertionsOf(R, Item), 1u);
  unsigned Redundant = 0;
  for (const auto &[Node, I] : R.Redundant)
    Redundant += I == static_cast<unsigned>(Item);
  EXPECT_EQ(Redundant, 1u);
  EXPECT_TRUE(R.verify().ok());
}

TEST(ExprPre, KilledByOperandAssignment) {
  Pipeline P = Pipeline::fromSource(R"(
array u
u(1) = a * b
a = 5
u(2) = a * b
)");
  ExprPreResult R = preFor(P);
  int Item = itemOf(R, "a * b");
  ASSERT_GE(Item, 0);
  // Recomputed after the kill: two temporaries, nothing redundant.
  EXPECT_EQ(insertionsOf(R, Item), 2u);
  EXPECT_TRUE(R.verify().ok());
}

TEST(ExprPre, LoopInvariantHoistedOutOfZeroTripLoop) {
  Pipeline P = Pipeline::fromSource(R"(
array u
do i = 1, n
  u(i) = a * b + i
enddo
)");
  ExprPreResult R = preFor(P);
  int Inv = itemOf(R, "a * b + i");
  ASSERT_GE(Inv, 0);
  // `a * b + i` depends on i: stays inside, one insertion per iteration.
  ASSERT_EQ(insertionsOf(R, Inv), 1u);
  std::string Out = R.annotate(P.Prog);
  SCOPED_TRACE(Out);
  // The temporary for the index-dependent expression is inside the loop.
  EXPECT_GT(Out.find("= a * b + i"), Out.find("do i"));
  EXPECT_TRUE(R.verify().ok());
}

TEST(ExprPre, PureInvariantLeavesTheLoop) {
  Pipeline P = Pipeline::fromSource(R"(
array u
do i = 1, n
  u(i) = a * b
enddo
)");
  ExprPreResult R = preFor(P);
  int Inv = itemOf(R, "a * b");
  ASSERT_GE(Inv, 0);
  ASSERT_EQ(insertionsOf(R, Inv), 1u);
  std::string Out = R.annotate(P.Prog);
  SCOPED_TRACE(Out);
  // Zero-trip hoisting: the temporary precedes the do statement — the
  // placement classical LCM must forgo (paper Section 1).
  size_t Temp = Out.find("= a * b");
  size_t Loop = Out.find("do i");
  ASSERT_NE(Temp, std::string::npos);
  EXPECT_LT(Temp, Loop);
  EXPECT_TRUE(R.verify().ok());
}

TEST(ExprPre, PartialRedundancyAcrossJoin) {
  // Computed on one path, needed afterwards on both: the else path gets
  // the balancing computation (paper Figure 4 semantics).
  Pipeline P = Pipeline::fromSource(R"(
array u
if (t(n)) then
  u(1) = a * b
endif
u(2) = a * b
)");
  ExprPreResult R = preFor(P);
  int Item = itemOf(R, "a * b");
  ASSERT_GE(Item, 0);
  // One computation per path: the then occurrence doubles as the
  // insertion point, the else arm gets the balancing computation, and
  // the final occurrence becomes redundant.
  EXPECT_EQ(insertionsOf(R, Item), 2u);
  unsigned Redundant = 0;
  for (const auto &[Node, I] : R.Redundant)
    Redundant += I == static_cast<unsigned>(Item);
  EXPECT_EQ(Redundant, 1u);
  EXPECT_TRUE(R.verify().ok());
}

TEST(ExprPre, DivisionIsNeverSpeculated) {
  Pipeline P = Pipeline::fromSource(R"(
array u
do i = 1, n
  u(i) = a / b
enddo
)");
  ExprPreResult R = preFor(P);
  // `a / b` may fault; it must not become an item at all (the paper's
  // "introducing a division by zero" caveat).
  EXPECT_EQ(itemOf(R, "a / b"), -1);
}

TEST(ExprPre, IndexedArrayKilledByArrayStore) {
  Pipeline P = Pipeline::fromSource(R"(
array u, v
u(1) = v(k) + 1
v(2) = 9
u(2) = v(k) + 1
)");
  ExprPreResult R = preFor(P);
  int Item = itemOf(R, "v(k) + 1");
  ASSERT_GE(Item, 0);
  // The store to v kills the expression: recomputed.
  EXPECT_EQ(insertionsOf(R, Item), 2u);
  EXPECT_TRUE(R.verify().ok());
}

TEST(ExprPre, NestedLoopInvariantGoesAllTheWayOut) {
  Pipeline P = Pipeline::fromSource(R"(
array u
do i = 1, n
  do j = 1, n
    u(j) = c * d
  enddo
enddo
)");
  ExprPreResult R = preFor(P);
  int Item = itemOf(R, "c * d");
  ASSERT_GE(Item, 0);
  EXPECT_EQ(insertionsOf(R, Item), 1u);
  std::string Out = R.annotate(P.Prog);
  EXPECT_LT(Out.find("= c * d"), Out.find("do i"));
  EXPECT_TRUE(R.verify().ok());
}

TEST(ExprPre, SharedAcrossBranchArms) {
  Pipeline P = Pipeline::fromSource(R"(
array u
if (t(n)) then
  u(1) = p + q
else
  u(2) = p + q
endif
)");
  ExprPreResult R = preFor(P);
  int Item = itemOf(R, "p + q");
  ASSERT_GE(Item, 0);
  // The LAZY solution computes as late as possible: once per arm (one
  // evaluation on any executed path). The EAGER solution of the same run
  // shows the O2-minimal alternative: a single producer above the branch.
  EXPECT_EQ(insertionsOf(R, Item), 2u);
  unsigned EagerProductions = 0;
  for (const BitVector &BV : R.Run.Result.Eager.ResIn)
    EagerProductions += BV.test(static_cast<unsigned>(Item));
  for (const BitVector &BV : R.Run.Result.Eager.ResOut)
    EagerProductions += BV.test(static_cast<unsigned>(Item));
  EXPECT_EQ(EagerProductions, 1u);
  EXPECT_TRUE(R.verify().ok());
}
