//===- tests/GntPaperValuesTest.cpp - Section 4 worked example gold test ----===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Experiment E4 of DESIGN.md: the per-node dataflow variable values the
/// paper quotes throughout Section 4 for the READ instance of the
/// Figure 11/12 example. Items: x_k ~ x(k+10) = x(11:N+10), y_a ~ y(a(i))
/// = y(a(1:N)), y_b ~ y(b(k)) = y(b(1:N)).
///
/// Node mapping (paper -> this reproduction, see tests/TestUtil.h):
///   1 -> (folded into ROOT/Hi), 2 -> Hi, 3 -> {A, B}, 4 -> G, 5 -> Li,
///   6 -> SAfterI, 7 -> Hj, 8 -> JB, 9/11 -> SAfterJ, 10 -> Pad,
///   12 -> Hk, 13 -> KB, 14 -> Exit.
///
/// Our statement-granular CFG splits the paper's node 3 into the
/// assignment A and the branch B, and materializes latches Lj/Lk; the
/// quoted values map accordingly. One deliberate deviation from the
/// paper's quoted lists, derived by hand from the equations:
///
///  - y_b not in STEAL_loc(Exit): the paper's "14" in the STEAL_loc list
///    contradicts its own GIVE_loc list (y_b in GIVE_loc(12) forces
///    y_b's exclusion from STEAL_loc(14) by Eq. 10, whichever of 12/13
///    is 14's predecessor) — an erratum in the paper.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dataflow/GiveNTake.h"
#include "dataflow/Verifier.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

constexpr unsigned Xk = 0, Ya = 1, Yb = 2;
const std::vector<std::string> Names = {"x_k", "y_a", "y_b"};

class PaperValues : public ::testing::Test {
protected:
  void SetUp() override {
    P = Pipeline::fromSource(fig11Source());
    ASSERT_TRUE(P.Ifg.has_value());
    N = locateFig11(P.G);

    GntProblem Prob(P.G.size(), 3);
    // Node A (paper 3): y(a(i)) = ... gives y_a for free and steals y_b
    // (a write through a(i) may touch sections referenced through b(k)).
    Prob.GiveInit[N.A].set(Ya);
    Prob.StealInit[N.A].set(Yb);
    // Node KB (paper 13): ... = x(k+10) + y(b(k)) consumes x_k and y_b.
    Prob.TakeInit[N.KB].set(Xk);
    Prob.TakeInit[N.KB].set(Yb);

    Run = runGiveNTake(*P.Ifg, Prob);
  }

  /// Asserts that, over all nodes, item \p Item is in variable \p Var
  /// exactly at \p Nodes.
  void expectExactly(const std::vector<BitVector> &Var, unsigned Item,
                     std::vector<NodeId> Nodes, const char *What) {
    std::vector<bool> Want(P.G.size(), false);
    for (NodeId Id : Nodes)
      Want[Id] = true;
    for (NodeId Id = 0; Id != P.G.size(); ++Id)
      EXPECT_EQ(Var[Id].test(Item), Want[Id])
          << What << " item " << Names[Item] << " at node " << Id << " ("
          << describeNode(P.G, Id) << ")";
  }

  Pipeline P;
  Fig11Nodes N;
  GntRun Run;
};

} // namespace

// "y_b in STEAL({2,3})" — our A carries the init, the header the summary.
TEST_F(PaperValues, Steal) {
  expectExactly(Run.Result.Steal, Yb, {N.Hi, N.A}, "STEAL");
  expectExactly(Run.Result.Steal, Xk, {}, "STEAL");
  expectExactly(Run.Result.Steal, Ya, {}, "STEAL");
}

// GIVE holds y_a at the defining node and (as the interval summary) the
// i-loop header; the k loop "gives" what it consumes.
TEST_F(PaperValues, Give) {
  // ROOT summarizes the whole program as one interval, so it also "gives"
  // everything that is given or taken somewhere inside.
  expectExactly(Run.Result.Give, Ya, {N.Hi, N.A, N.Root}, "GIVE");
  expectExactly(Run.Result.Give, Xk, {N.Hk, N.Root}, "GIVE");
  expectExactly(Run.Result.Give, Yb, {N.Hk, N.Root}, "GIVE");
}

// "y_a, y_b in BLOCK({2,3})".
TEST_F(PaperValues, Block) {
  expectExactly(Run.Result.Block, Ya, {N.Hi, N.A, N.Root}, "BLOCK");
  expectExactly(Run.Result.Block, Yb, {N.Hi, N.A, N.Hk, N.Root}, "BLOCK");
  expectExactly(Run.Result.Block, Xk, {N.Hk, N.Root}, "BLOCK");
}

// "x_k, y_b in TAKEN_out({2,6,7,9..11}); also x_k in TAKEN_out({1})."
// Paper node 1 is folded away; G belongs here too by Eq. 4 (the paper's
// example lists are illustrative, not exhaustive).
TEST_F(PaperValues, TakenOut) {
  expectExactly(Run.Result.TakenOut, Xk,
                {N.Hi, N.SAfterI, N.Hj, N.SAfterJ, N.Pad}, "TAKEN_out");
  expectExactly(Run.Result.TakenOut, Yb,
                {N.Hi, N.SAfterI, N.Hj, N.SAfterJ, N.Pad}, "TAKEN_out");
  expectExactly(Run.Result.TakenOut, Ya, {}, "TAKEN_out");
}

// "x_k, y_b in TAKE({12,13})" — and nowhere else: the k loop hoists its
// consumption into its header (zero-trip hoisting).
TEST_F(PaperValues, Take) {
  // ROOT hoists the unconditional, unstolen consumption of x_k to the
  // program level (its placement variables stay pinned, so this is
  // summary-only).
  expectExactly(Run.Result.Take, Xk, {N.Hk, N.KB, N.Root}, "TAKE");
  expectExactly(Run.Result.Take, Yb, {N.Hk, N.KB}, "TAKE");
  expectExactly(Run.Result.Take, Ya, {}, "TAKE");
}

// "x_k, y_b in TAKEN_in({6,7,9..13}); also x_k in TAKEN_in({1,2})."
TEST_F(PaperValues, TakenIn) {
  expectExactly(
      Run.Result.TakenIn, Xk,
      {N.Root, N.Hi, N.SAfterI, N.Hj, N.SAfterJ, N.Pad, N.Hk, N.KB},
      "TAKEN_in");
  expectExactly(Run.Result.TakenIn, Yb,
                {N.SAfterI, N.Hj, N.SAfterJ, N.Pad, N.Hk, N.KB},
                "TAKEN_in");
  expectExactly(Run.Result.TakenIn, Ya, {}, "TAKEN_in");
}

// "y_a, y_b in BLOCK_loc({1..3})": the blocking effects of the i loop
// reach back to the start of the program.
TEST_F(PaperValues, BlockLoc) {
  EXPECT_TRUE(Run.Result.BlockLoc[N.Hi].test(Ya));
  EXPECT_TRUE(Run.Result.BlockLoc[N.Hi].test(Yb));
  EXPECT_TRUE(Run.Result.BlockLoc[N.A].test(Ya));
  EXPECT_TRUE(Run.Result.BlockLoc[N.A].test(Yb));
  // Not blocked once past the loop.
  EXPECT_FALSE(Run.Result.BlockLoc[N.SAfterI].test(Yb));
}

// "y_a in GIVE_loc({2..7,9..11}); x_k, y_b in GIVE_loc({12..14})."
TEST_F(PaperValues, GiveLoc) {
  expectExactly(Run.Result.GiveLoc, Ya,
                {N.Hi, N.A, N.B, N.Li, N.SAfterI, N.Hj, N.SAfterJ,
                 N.Pad, N.Hk, N.Exit},
                "GIVE_loc");
  expectExactly(Run.Result.GiveLoc, Xk, {N.Hk, N.KB, N.Lk, N.Exit},
                "GIVE_loc");
  expectExactly(Run.Result.GiveLoc, Yb, {N.Hk, N.KB, N.Lk, N.Exit},
                "GIVE_loc");
}

// "y_b in STEAL_loc({2..7,9..12,14})" — see the file header for why the
// paper's "14" (Exit) is an erratum; Eq. 10 excludes it.
TEST_F(PaperValues, StealLoc) {
  expectExactly(Run.Result.StealLoc, Yb,
                {N.Hi, N.A, N.B, N.Li, N.SAfterI, N.Hj, N.SAfterJ,
                 N.Pad, N.Hk},
                "STEAL_loc");
  expectExactly(Run.Result.StealLoc, Xk, {}, "STEAL_loc");
  expectExactly(Run.Result.StealLoc, Ya, {}, "STEAL_loc");
}

// GIVEN^eager: x_k everywhere from the i header on; y_a from the def on;
// y_b from the first send point on (paper lists for nodes 1..14).
TEST_F(PaperValues, GivenEager) {
  const auto &G = Run.Result.Eager.Given;
  for (NodeId Id :
       {N.Hi, N.A, N.B, N.Li, N.SAfterI, N.Hj, N.JB, N.Lj, N.SAfterJ,
        N.Pad, N.Hk, N.KB, N.Lk, N.Exit})
    EXPECT_TRUE(G[Id].test(Xk)) << "GIVEN^eager x_k at " << Id;
  for (NodeId Id : {N.B, N.Li, N.SAfterI, N.Hj, N.SAfterJ, N.Pad, N.Hk,
                    N.KB, N.Lk, N.Exit})
    EXPECT_TRUE(G[Id].test(Ya)) << "GIVEN^eager y_a at " << Id;
  EXPECT_FALSE(G[N.Hi].test(Ya));
  // "y_b in GIVEN^eager({6..14})": from the send points on, not inside
  // the i loop.
  for (NodeId Id :
       {N.SAfterI, N.Hj, N.SAfterJ, N.Pad, N.Hk, N.KB, N.Lk, N.Exit})
    EXPECT_TRUE(G[Id].test(Yb)) << "GIVEN^eager y_b at " << Id;
  EXPECT_FALSE(G[N.A].test(Yb));
  EXPECT_FALSE(G[N.B].test(Yb));
  EXPECT_FALSE(G[N.Li].test(Yb));
}

// "x_k, y_b in GIVEN^lazy({12..14}); y_a in GIVEN^lazy({4..14})."
TEST_F(PaperValues, GivenLazy) {
  const auto &G = Run.Result.Lazy.Given;
  for (NodeId Id : {N.Hk, N.KB, N.Lk, N.Exit}) {
    EXPECT_TRUE(G[Id].test(Xk)) << "GIVEN^lazy x_k at " << Id;
    EXPECT_TRUE(G[Id].test(Yb)) << "GIVEN^lazy y_b at " << Id;
  }
  for (NodeId Id : {N.Hi, N.A, N.B, N.SAfterJ, N.Pad})
    EXPECT_FALSE(G[Id].test(Xk)) << "GIVEN^lazy x_k at " << Id;
  // y_a flows from the def onward (free give).
  for (NodeId Id : {N.B, N.SAfterI, N.Hj, N.SAfterJ, N.Pad, N.Hk})
    EXPECT_TRUE(G[Id].test(Ya)) << "GIVEN^lazy y_a at " << Id;
}

// The Read_Send placement: "x_k in RES_in^eager({1}), y_b in
// RES_in^eager({6,10})" — mapped to Hi (earliest real node; the paper's
// pre-loop node 1 is folded into ROOT), SAfterI (paper node 6, the
// fallthrough path) and Pad (paper node 10, the goto path; printed
// before the goto, i.e. inside `if test(i)` as in Figure 14).
TEST_F(PaperValues, ResEager) {
  expectExactly(Run.Result.Eager.ResIn, Xk, {N.Hi}, "RES_in^eager");
  expectExactly(Run.Result.Eager.ResIn, Yb, {N.SAfterI, N.Pad},
                "RES_in^eager");
  expectExactly(Run.Result.Eager.ResIn, Ya, {}, "RES_in^eager");
  // "There is no production needed on exit."
  for (NodeId Id = 0; Id != P.G.size(); ++Id)
    EXPECT_TRUE(Run.Result.Eager.ResOut[Id].none())
        << "RES_out^eager at " << Id;
}

// The Read_Recv placement: both items at the k header (label 77, just
// before the loop — Figure 14).
TEST_F(PaperValues, ResLazy) {
  expectExactly(Run.Result.Lazy.ResIn, Xk, {N.Hk}, "RES_in^lazy");
  expectExactly(Run.Result.Lazy.ResIn, Yb, {N.Hk}, "RES_in^lazy");
  expectExactly(Run.Result.Lazy.ResIn, Ya, {}, "RES_in^lazy");
  for (NodeId Id = 0; Id != P.G.size(); ++Id)
    EXPECT_TRUE(Run.Result.Lazy.ResOut[Id].none())
        << "RES_out^lazy at " << Id;
}

// The whole run satisfies C1/C3/O1 per the independent verifier.
TEST_F(PaperValues, VerifierAccepts) {
  GntVerifyResult V = verifyGntRun(Run, Names);
  EXPECT_TRUE(V.ok()) << V.firstViolation();
  EXPECT_FALSE(V.hasNotes()) << V.firstNote();
}
