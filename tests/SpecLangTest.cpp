//===- tests/SpecLangTest.cpp - Analysis-spec language tests ----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the declarative analysis-spec language: parsing,
/// the set-expression evaluator, and — one test per rule — the spec
/// linter's structured rejection of every documented malformed-spec
/// class.
///
//===----------------------------------------------------------------------===//

#include "analysis/SpecLang.h"

#include <gtest/gtest.h>

using namespace gnt;

namespace {

/// True when some CheckId::Spec error message mentions \p Rule (the
/// stable rule identifier the message starts with, after the optional
/// "line N: " prefix).
bool hasRule(const DiagnosticSet &Diags, const std::string &Rule) {
  for (const Diagnostic &D : Diags.all())
    if (D.Severity == DiagSeverity::Error && D.Check == CheckId::Spec &&
        D.Message.find(Rule + ":") != std::string::npos)
      return true;
  return false;
}

/// Parses + lints, expecting rejection by exactly the given rule.
void expectRejected(const std::string &Text, const std::string &Rule) {
  SpecParseResult R = parseAndLintAnalysisSpec(Text);
  EXPECT_FALSE(R.ok()) << "spec unexpectedly accepted:\n" << Text;
  EXPECT_TRUE(hasRule(R.Diags, Rule))
      << "no `" << Rule << "` diagnostic in:\n"
      << R.Diags.renderText();
}

BitVector bits(unsigned U, std::initializer_list<unsigned> Set) {
  BitVector V(U);
  for (unsigned B : Set)
    V.set(B);
  return V;
}

} // namespace

TEST(SpecLang, BuiltinLivenessFieldsRoundTrip) {
  const char *Text = builtinAnalysisSpecText("liveness");
  ASSERT_NE(Text, nullptr);
  SpecParseResult R = parseAndLintAnalysisSpec(Text);
  ASSERT_TRUE(R.ok()) << R.Diags.renderText();
  EXPECT_EQ(R.Spec->Name, "liveness");
  EXPECT_EQ(R.Spec->Universe, SpecUniverse::Items);
  EXPECT_EQ(R.Spec->Direction, FlowDirection::Backward);
  EXPECT_EQ(R.Spec->Meet, Confluence::Any);
  EXPECT_EQ(R.Spec->Start, AnalysisSpec::StartAnchor::Exit);
  EXPECT_TRUE(R.Spec->BoundarySet);
  EXPECT_FALSE(R.Spec->BoundaryAll);
  EXPECT_FALSE(R.Spec->IncludeSyntheticEdges);
  ASSERT_TRUE(R.Spec->GenExpr && R.Spec->KillExpr);
  EXPECT_FALSE(R.Spec->Transfer);
}

TEST(SpecLang, ExpressionPrecedenceAndParens) {
  // `take | give & steal` parses as take | (give & steal): & binds
  // tighter. With take={0}, give={1}, steal={1,2} the result is {0,1};
  // the parenthesized (take | give) & steal is {1}.
  BitVector In(3), Take = bits(3, {0}), Give = bits(3, {1}),
            Steal = bits(3, {1, 2});
  SpecParseResult Flat = parseAndLintAnalysisSpec(
      "universe items\ntransfer out = take | give & steal\n");
  ASSERT_TRUE(Flat.ok()) << Flat.Diags.renderText();
  EXPECT_EQ(evalSetExpr(*Flat.Spec->Transfer, 3, In, Take, Give, Steal),
            bits(3, {0, 1}));

  SpecParseResult Paren = parseAndLintAnalysisSpec(
      "universe items\ntransfer out = (take | give) & steal\n");
  ASSERT_TRUE(Paren.ok()) << Paren.Diags.renderText();
  EXPECT_EQ(evalSetExpr(*Paren.Spec->Transfer, 3, In, Take, Give, Steal),
            bits(3, {1}));

  // Difference and complement: (all - steal) == ~steal.
  SpecParseResult Diff = parseAndLintAnalysisSpec(
      "universe items\ntransfer out = all - steal\n");
  ASSERT_TRUE(Diff.ok()) << Diff.Diags.renderText();
  EXPECT_EQ(evalSetExpr(*Diff.Spec->Transfer, 3, In, Take, Give, Steal),
            bits(3, {0}));
}

TEST(SpecLang, RejectsUnknownUniverse) {
  expectRejected("universe galaxies\ngen take\n", "unknown-universe");
}

TEST(SpecLang, RejectsUnknownKey) {
  expectRejected("universe items\nflux capacitor\ngen take\n", "unknown-key");
}

TEST(SpecLang, RejectsDuplicateKey) {
  expectRejected("universe items\nuniverse exprs\ngen take\n",
                 "duplicate-key");
  // Transfer + sugar is the same rule: two ways to state one function.
  expectRejected("universe items\ngen take\ntransfer out = in\n",
                 "duplicate-key");
}

TEST(SpecLang, RejectsBadValue) {
  expectRejected("universe items\ndirection sideways\ngen take\n",
                 "bad-value");
  expectRejected("universe items\nconfluence some\ngen take\n", "bad-value");
  expectRejected("universe items\nboundary most\ngen take\n", "bad-value");
}

TEST(SpecLang, RejectsTransferSyntax) {
  expectRejected("universe items\ntransfer out = take |\n",
                 "transfer-syntax");
  expectRejected("universe items\ntransfer out = (take\n", "transfer-syntax");
  expectRejected("universe items\ntransfer out = blorp\n", "transfer-syntax");
  expectRejected("universe items\ntransfer in = take\n", "transfer-syntax");
}

TEST(SpecLang, RejectsInInsideGenKillSugar) {
  expectRejected("universe items\ngen in | take\n", "transfer-syntax");
  expectRejected("universe items\ngen take\nkill in\n", "transfer-syntax");
}

TEST(SpecLang, RejectsMissingTransfer) {
  expectRejected("universe items\ndirection forward\n", "missing-transfer");
}

TEST(SpecLang, RejectsNonMonotoneTransfer) {
  // ~in drops a fact because it arrived: the canonical violation. The
  // witness names a concrete corner.
  SpecParseResult R =
      parseAndLintAnalysisSpec("universe items\ntransfer out = ~in\n");
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasRule(R.Diags, "non-monotone")) << R.Diags.renderText();
  bool Witness = false;
  for (const Diagnostic &D : R.Diags.all())
    Witness |= D.Message.find("take=") != std::string::npos;
  EXPECT_TRUE(Witness) << "non-monotone diagnostic carries no witness corner";

  // A conditional drop is still a drop: in - (in & take) is fine
  // lane-wise, but (take - in) maps in=0 above in=1 when take=1.
  expectRejected("universe items\ntransfer out = take - in\n",
                 "non-monotone");
}

TEST(SpecLang, RejectsAllConfluenceWithoutBoundary) {
  expectRejected("universe items\nconfluence all\ngen give\n",
                 "all-confluence-no-boundary");
  // Stating the boundary — either value — satisfies the rule.
  SpecParseResult R = parseAndLintAnalysisSpec(
      "universe items\nconfluence all\nboundary empty\ngen give\n");
  EXPECT_TRUE(R.ok()) << R.Diags.renderText();
}

TEST(SpecLang, RejectsStartDirectionMismatch) {
  expectRejected(
      "universe items\ndirection backward\nstart entry\ngen take\n",
      "start-direction-mismatch");
  expectRejected(
      "universe items\ndirection forward\nstart exit\ngen give\n",
      "start-direction-mismatch");
}

TEST(SpecLang, DiagnosticsCarryLineNumbersAndFixHints) {
  SpecParseResult R = parseAndLintAnalysisSpec(
      "direction forward\nuniverse galaxies\ngen take\n");
  ASSERT_FALSE(R.ok());
  bool LineAndHint = false;
  for (const Diagnostic &D : R.Diags.all())
    LineAndHint |= D.Message.rfind("line 2:", 0) == 0 && !D.FixHint.empty();
  EXPECT_TRUE(LineAndHint) << R.Diags.renderText();
}

TEST(SpecLang, CommentsAndBlankLinesAreIgnored) {
  SpecParseResult R = parseAndLintAnalysisSpec(
      "# a liveness-flavoured spec\n\n"
      "universe items   # the comm universe\n"
      "direction backward\n\n"
      "gen take\n");
  EXPECT_TRUE(R.ok()) << R.Diags.renderText();
}

TEST(SpecLang, EveryBuiltinParsesAndLintsClean) {
  const auto &Builtins = builtinAnalysisSpecs();
  ASSERT_EQ(Builtins.size(), 4u);
  EXPECT_EQ(Builtins[0].first, "liveness");
  EXPECT_EQ(Builtins[1].first, "availability");
  EXPECT_EQ(Builtins[2].first, "very-busy");
  EXPECT_EQ(Builtins[3].first, "reaching");
  for (const auto &[Name, Text] : Builtins) {
    SpecParseResult R = parseAndLintAnalysisSpec(Text);
    EXPECT_TRUE(R.ok()) << Name << ":\n" << R.Diags.renderText();
    EXPECT_EQ(R.Spec->Name, Name);
    EXPECT_NE(builtinAnalysisSpecText(Name), nullptr);
  }
  EXPECT_EQ(builtinAnalysisSpecText("no-such-analysis"), nullptr);
}
