//===- tests/GntSolverTest.cpp - Solver behavior (paper Figs. 4-10) ---------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Experiment E7 of DESIGN.md: the correctness criteria C1-C3 and
/// optimality guidelines O1-O3' of Section 3.2, exercised on the small
/// schematic situations of the paper's Figures 4-10 expressed as FMini
/// programs. Every run is cross-checked with the independent static
/// verifier.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dataflow/GiveNTake.h"
#include "dataflow/Verifier.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

constexpr unsigned ItemX = 0;

/// Asserts that \p BV holds exactly \p Items.
void expectItems(const BitVector &BV, std::initializer_list<unsigned> Items,
                 const std::string &What) {
  BitVector Want(BV.size());
  for (unsigned I : Items)
    Want.set(I);
  EXPECT_EQ(BV, Want) << What;
}

/// Total number of production points of \p Pl for item \p Item.
unsigned productionCount(const GntPlacement &Pl, unsigned Item) {
  unsigned N = 0;
  for (const BitVector &BV : Pl.ResIn)
    N += BV.test(Item);
  for (const BitVector &BV : Pl.ResOut)
    N += BV.test(Item);
  return N;
}

void expectVerified(const GntRun &Run, const char *What) {
  GntVerifyResult V = verifyGntRun(Run);
  EXPECT_TRUE(V.ok()) << What << ": " << V.firstViolation();
  EXPECT_FALSE(V.hasNotes()) << What << ": " << V.firstNote();
}

/// Finds the single Stmt node assigning to scalar \p Var.
NodeId findAssign(const Cfg &G, const std::string &Var) {
  for (NodeId Id = 0; Id != G.size(); ++Id) {
    const auto *AS = dyn_cast_or_null<AssignStmt>(G.node(Id).S);
    if (G.node(Id).Kind == NodeKind::Stmt && AS)
      if (const auto *V = dyn_cast<VarExpr>(AS->getLHS()))
        if (V->getName() == Var)
          return Id;
  }
  ADD_FAILURE() << "no assignment to " << Var;
  return InvalidNode;
}

NodeId findHeader(const Cfg &G, const std::string &Idx) {
  for (NodeId Id = 0; Id != G.size(); ++Id)
    if (G.node(Id).Kind == NodeKind::LoopHeader &&
        cast<DoStmt>(G.node(Id).S)->getIndexVar() == Idx)
      return Id;
  ADD_FAILURE() << "no loop " << Idx;
  return InvalidNode;
}

} // namespace

// O3/O3': in a straight line, EAGER production is as early as possible
// (the first real node) and LAZY as late as possible (the consumer).
TEST(GntSolver, StraightLineEagerEarlyLazyLate) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\nu = 3\n");
  ASSERT_TRUE(P.Ifg.has_value());
  NodeId S1 = findAssign(P.G, "v"), S3 = findAssign(P.G, "u");

  GntProblem Prob(P.G.size(), 1);
  Prob.TakeInit[S3].set(ItemX); // u = 3 consumes X.
  GntRun Run = runGiveNTake(*P.Ifg, Prob);

  expectItems(Run.Result.Eager.ResIn[S1], {ItemX}, "eager at first node");
  expectItems(Run.Result.Lazy.ResIn[S3], {ItemX}, "lazy at consumer");
  EXPECT_EQ(productionCount(Run.Result.Eager, ItemX), 1u);
  EXPECT_EQ(productionCount(Run.Result.Lazy, ItemX), 1u);
  expectVerified(Run, "straight line");
}

// C2 safety (Figure 5): consumption only inside one branch must not be
// produced above the branch.
TEST(GntSolver, SafetyNoProductionAboveBranch) {
  Pipeline P = Pipeline::fromSource(R"(
v = 1
if (c > 0) then
  w = 2
endif
u = 3
)");
  ASSERT_TRUE(P.Ifg.has_value());
  NodeId S1 = findAssign(P.G, "v"), W = findAssign(P.G, "w");

  GntProblem Prob(P.G.size(), 1);
  Prob.TakeInit[W].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);

  // Nothing before or at the branch, for either urgency.
  EXPECT_TRUE(Run.Result.Eager.ResIn[S1].none());
  EXPECT_TRUE(Run.Result.Lazy.ResIn[S1].none());
  // Exactly one production each, inside the branch (at the consumer).
  EXPECT_EQ(productionCount(Run.Result.Eager, ItemX), 1u);
  EXPECT_EQ(productionCount(Run.Result.Lazy, ItemX), 1u);
  expectItems(Run.Result.Lazy.ResIn[W], {ItemX}, "lazy at guarded consumer");
  expectVerified(Run, "guarded consumer");
}

// O2 (Figure 8): both branches consume, so one producer above the branch
// beats one in each branch — at least for EAGER.
TEST(GntSolver, FewProducersAcrossDiamond) {
  Pipeline P = Pipeline::fromSource(R"(
v = 1
if (c > 0) then
  w = 2
else
  u = 3
endif
)");
  ASSERT_TRUE(P.Ifg.has_value());
  NodeId S1 = findAssign(P.G, "v");

  GntProblem Prob(P.G.size(), 1);
  Prob.TakeInit[findAssign(P.G, "w")].set(ItemX);
  Prob.TakeInit[findAssign(P.G, "u")].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);

  // EAGER: hoisted to the very start, one producer.
  expectItems(Run.Result.Eager.ResIn[S1], {ItemX}, "eager above diamond");
  EXPECT_EQ(productionCount(Run.Result.Eager, ItemX), 1u);
  // LAZY: one per branch (as late as possible), still balanced per path.
  EXPECT_EQ(productionCount(Run.Result.Lazy, ItemX), 2u);
  expectVerified(Run, "diamond");
}

// O1 (Figure 7): a second consumption of an unstolen item is not
// re-produced.
TEST(GntSolver, NoReproduction) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\n");
  ASSERT_TRUE(P.Ifg.has_value());
  NodeId S1 = findAssign(P.G, "v"), S2 = findAssign(P.G, "w");

  GntProblem Prob(P.G.size(), 1);
  Prob.TakeInit[S1].set(ItemX);
  Prob.TakeInit[S2].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);

  EXPECT_EQ(productionCount(Run.Result.Eager, ItemX), 1u);
  EXPECT_EQ(productionCount(Run.Result.Lazy, ItemX), 1u);
  expectItems(Run.Result.Lazy.ResIn[S1], {ItemX}, "lazy at first consumer");
  expectVerified(Run, "repeated consumption");
}

// The headline zero-trip behavior: consumption inside a DO loop is
// hoisted above the header, for both EAGER and LAZY.
TEST(GntSolver, HoistOutOfZeroTripLoop) {
  Pipeline P = Pipeline::fromSource("do i = 1, n\nv = i\nenddo\n");
  ASSERT_TRUE(P.Ifg.has_value());
  NodeId H = findHeader(P.G, "i"), Body = findAssign(P.G, "v");

  GntProblem Prob(P.G.size(), 1);
  Prob.TakeInit[Body].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);

  expectItems(Run.Result.Eager.ResIn[H], {ItemX}, "eager above loop");
  expectItems(Run.Result.Lazy.ResIn[H], {ItemX}, "lazy above loop");
  EXPECT_TRUE(Run.Result.Lazy.ResIn[Body].none());
  EXPECT_EQ(productionCount(Run.Result.Eager, ItemX), 1u);
  EXPECT_EQ(productionCount(Run.Result.Lazy, ItemX), 1u);
  expectVerified(Run, "loop hoist");
}

// Nested loops: hoisting goes all the way out.
TEST(GntSolver, HoistOutOfNestedLoops) {
  Pipeline P = Pipeline::fromSource(R"(
do i = 1, n
  do j = 1, n
    v = i + j
  enddo
enddo
)");
  ASSERT_TRUE(P.Ifg.has_value());
  NodeId Hi = findHeader(P.G, "i"), Body = findAssign(P.G, "v");

  GntProblem Prob(P.G.size(), 1);
  Prob.TakeInit[Body].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);

  expectItems(Run.Result.Eager.ResIn[Hi], {ItemX}, "eager above nest");
  expectItems(Run.Result.Lazy.ResIn[Hi], {ItemX}, "lazy above nest");
  EXPECT_EQ(productionCount(Run.Result.Lazy, ItemX), 1u);
  expectVerified(Run, "nested hoist");
}

// Section 4.1: STEAL_init at the header is the per-case opt-out of
// zero-trip hoisting; production then stays inside the loop.
TEST(GntSolver, ZeroTripHoistingOptOut) {
  Pipeline P = Pipeline::fromSource("do i = 1, n\nv = i\nenddo\n");
  ASSERT_TRUE(P.Ifg.has_value());
  NodeId H = findHeader(P.G, "i"), Body = findAssign(P.G, "v");

  GntProblem Prob(P.G.size(), 1);
  Prob.TakeInit[Body].set(ItemX);
  Prob.StealInit[H].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);

  EXPECT_TRUE(Run.Result.Eager.ResIn[H].none());
  EXPECT_TRUE(Run.Result.Lazy.ResIn[H].none());
  expectItems(Run.Result.Eager.ResIn[Body], {ItemX}, "eager inside loop");
  expectItems(Run.Result.Lazy.ResIn[Body], {ItemX}, "lazy inside loop");
  expectVerified(Run, "hoist opt-out");
}

// A steal inside the loop blocks hoisting a later consumer above it.
TEST(GntSolver, StealInLoopBlocksHoist) {
  Pipeline P = Pipeline::fromSource(R"(
do i = 1, n
  v = i
enddo
w = 2
)");
  ASSERT_TRUE(P.Ifg.has_value());
  NodeId H = findHeader(P.G, "i"), Body = findAssign(P.G, "v"),
         After = findAssign(P.G, "w");

  GntProblem Prob(P.G.size(), 1);
  Prob.StealInit[Body].set(ItemX); // The loop body destroys X...
  Prob.TakeInit[After].set(ItemX); // ...and X is consumed after the loop.
  GntRun Run = runGiveNTake(*P.Ifg, Prob);

  // No production before or inside the loop.
  EXPECT_TRUE(Run.Result.Eager.ResIn[H].none());
  EXPECT_TRUE(Run.Result.Eager.ResIn[Body].none());
  EXPECT_EQ(productionCount(Run.Result.Eager, ItemX), 1u);
  EXPECT_EQ(productionCount(Run.Result.Lazy, ItemX), 1u);
  expectItems(Run.Result.Lazy.ResIn[After], {ItemX}, "lazy at consumer");
  expectVerified(Run, "steal blocks hoist");
}

// Side effects come for free: a GIVE upstream covers the consumer with no
// production at all (the paper's "for free" behavior, Section 3.1).
TEST(GntSolver, FreeGiveNeedsNoProduction) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\n");
  ASSERT_TRUE(P.Ifg.has_value());
  NodeId S1 = findAssign(P.G, "v"), S2 = findAssign(P.G, "w");

  GntProblem Prob(P.G.size(), 1);
  Prob.GiveInit[S1].set(ItemX);
  Prob.TakeInit[S2].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);

  EXPECT_EQ(productionCount(Run.Result.Eager, ItemX), 0u);
  EXPECT_EQ(productionCount(Run.Result.Lazy, ItemX), 0u);
  expectVerified(Run, "free give");
}

// Balance across a partially consuming branch (Figure 4): when only the
// then-branch consumes early, the else path must still stop the pending
// eager production before the merge, via RES_out on the synthetic else.
TEST(GntSolver, BalanceAcrossBranch) {
  Pipeline P = Pipeline::fromSource(R"(
if (c > 0) then
  v = 1
endif
w = 2
)");
  ASSERT_TRUE(P.Ifg.has_value());
  NodeId V = findAssign(P.G, "v"), W = findAssign(P.G, "w");

  GntProblem Prob(P.G.size(), 1);
  Prob.TakeInit[V].set(ItemX);
  Prob.TakeInit[W].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);

  // Eager: one send above the branch (consumed on all paths eventually).
  EXPECT_EQ(productionCount(Run.Result.Eager, ItemX), 1u);
  // Lazy: received in the then branch at v, and on the else path before
  // the merge — two receives, one per path.
  expectItems(Run.Result.Lazy.ResIn[V], {ItemX}, "lazy at then consumer");
  EXPECT_EQ(productionCount(Run.Result.Lazy, ItemX), 2u);
  expectVerified(Run, "figure 4 balance");
}

// AFTER problems: production follows consumption. LAZY lands right after
// the consumer, EAGER as late as the last node.
TEST(GntSolver, AfterProblemStraightLine) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\nu = 3\n");
  ASSERT_TRUE(P.Ifg.has_value());
  NodeId S1 = findAssign(P.G, "v");

  GntProblem Prob(P.G.size(), 1, Direction::After);
  Prob.TakeInit[S1].set(ItemX); // v = 1 "defines" X; write it back after.
  GntRun Run = runGiveNTake(*P.Ifg, Prob);

  // LAZY (e.g. Write_Send): immediately after the definition.
  expectItems(Run.resAtExit(Urgency::Lazy, S1), {ItemX}, "send after def");
  // EAGER (e.g. Write_Recv): as late as possible — on the exit node.
  expectItems(Run.resAtExit(Urgency::Eager, P.G.exit()), {ItemX},
              "recv at end");
  expectVerified(Run, "after straight line");
}

// AFTER with a definition inside a loop: the write-back is placed once
// after the loop, not once per iteration.
TEST(GntSolver, AfterProblemLoopDefinition) {
  Pipeline P = Pipeline::fromSource(R"(
do i = 1, n
  v = i
enddo
w = 2
)");
  ASSERT_TRUE(P.Ifg.has_value());
  NodeId H = findHeader(P.G, "i"), Body = findAssign(P.G, "v");

  GntProblem Prob(P.G.size(), 1, Direction::After);
  Prob.TakeInit[Body].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);

  // Not inside the loop body.
  EXPECT_TRUE(Run.resAtExit(Urgency::Lazy, Body).none());
  EXPECT_TRUE(Run.resAtEntry(Urgency::Lazy, Body).none());
  // Hoisted to (the reversed view of) the header: placed once.
  unsigned Count = 0;
  for (NodeId Id = 0; Id != P.G.size(); ++Id)
    Count += Run.resAtEntry(Urgency::Lazy, Id).test(ItemX) +
             Run.resAtExit(Urgency::Lazy, Id).test(ItemX);
  EXPECT_EQ(Count, 1u);
  expectItems(Run.resAtExit(Urgency::Lazy, H), {ItemX},
              "write-back placed once after the loop");
  expectVerified(Run, "after loop def");
}

// AFTER + jump out of the loop (Figure 16 / Section 5.3): the reversed
// jump enters the loop mid-body, so the loop must not hoist; placement is
// conservative but safe.
TEST(GntSolver, AfterProblemWithJumpIsSafe) {
  Pipeline P = Pipeline::fromSource(R"(
do i = 1, n
  v = i
  if (t(i)) goto 9
enddo
9 w = 2
)");
  ASSERT_TRUE(P.Ifg.has_value());
  NodeId Body = findAssign(P.G, "v");

  GntProblem Prob(P.G.size(), 1, Direction::After);
  Prob.TakeInit[Body].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);

  // The poisoned loop keeps production next to the consumer.
  expectItems(Run.resAtExit(Urgency::Lazy, Body), {ItemX},
              "write-back stays at the def");
  expectVerified(Run, "after with jump");
}

// The solver's intermediate variables respect basic sanity invariants on
// an assortment of graphs (catches equation transcription typos).
TEST(GntSolver, VariableSanityInvariants) {
  const char *Sources[] = {
      "v = 1\n",
      "do i = 1, n\nv = i\nenddo\n",
      fig11Source(),
      "if (c > 0) then\nv = 1\nelse\nw = 2\nendif\nu = 3\n",
  };
  for (const char *Src : Sources) {
    Pipeline P = Pipeline::fromSource(Src);
    ASSERT_TRUE(P.Ifg.has_value());
    GntProblem Prob(P.G.size(), 3);
    // Scatter a few inits deterministically.
    for (NodeId Id = 0; Id != P.G.size(); ++Id) {
      if (P.G.node(Id).Kind == NodeKind::Stmt) {
        Prob.TakeInit[Id].set(Id % 3);
        if (Id % 2)
          Prob.StealInit[Id].set((Id + 1) % 3);
      }
    }
    GntRun Run = runGiveNTake(*P.Ifg, Prob);
    const GntResult &R = Run.Result;
    for (NodeId Id = 0; Id != P.G.size(); ++Id) {
      // TAKE subseteq TAKEN_in; BLOCK superseteq STEAL, GIVE.
      EXPECT_TRUE(R.Take[Id].isSubsetOf(R.TakenIn[Id]));
      EXPECT_TRUE(R.Steal[Id].isSubsetOf(R.Block[Id]));
      EXPECT_TRUE(R.Give[Id].isSubsetOf(R.Block[Id]));
      for (const GntPlacement *Pl : {&R.Eager, &R.Lazy}) {
        // GIVEN_in subseteq GIVEN; RES_in = GIVEN - GIVEN_in.
        EXPECT_TRUE(Pl->GivenIn[Id].isSubsetOf(Pl->Given[Id]));
        BitVector Expect = Pl->Given[Id];
        Expect.reset(Pl->GivenIn[Id]);
        EXPECT_EQ(Pl->ResIn[Id], Expect);
      }
      // LAZY production is never earlier than EAGER availability misses:
      // anything the LAZY solution has available, EAGER has too.
      EXPECT_TRUE(R.Lazy.Given[Id].isSubsetOf(R.Eager.Given[Id]));
    }
  }
}
