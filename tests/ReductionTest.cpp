//===- tests/ReductionTest.cpp - Reduction communication tests --------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's Section 6: "We generate READs, WRITEs, and WRITEs combined
/// with different reduction operations (such as summation)". A reduction
/// `a(s) = a(s) op ...` accumulates locally: the self-reference needs no
/// READ, the definition gives nothing for free, and the write-back
/// combines at the owner.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "comm/CommGen.h"
#include "sim/TraceSimulator.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

CommPlan planFor(Pipeline &P, CommOptions Opts = {}) {
  EXPECT_TRUE(P.Ifg.has_value());
  return generateComm(P.Prog, P.G, *P.Ifg, Opts);
}

} // namespace

TEST(Reduction, IrregularAccumulationNeedsNoRead) {
  // The classic irregular kernel (cf. the paper's Fortran D heritage):
  // scatter-add through an indirection array.
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array c, u
do i = 1, n
  x(c(i)) = x(c(i)) + u(i)
enddo
)");
  CommPlan Plan = planFor(P);
  auto Counts = Plan.staticCounts();
  // No READ at all: the self-reference accumulates locally.
  EXPECT_EQ(Counts[CommOpKind::ReadSend], 0u);
  EXPECT_EQ(Counts[CommOpKind::ReadRecv], 0u);
  // One reduction write-back pair, hoisted after the loop.
  EXPECT_EQ(Counts[CommOpKind::WriteSend], 1u);
  EXPECT_EQ(Counts[CommOpKind::WriteRecv], 1u);

  std::string Out = Plan.annotate(P.Prog);
  SCOPED_TRACE(Out);
  EXPECT_NE(Out.find("Write_Send[+]{x(c(1:n))}"), std::string::npos);
  EXPECT_GT(Out.find("Write_Send[+]"), Out.find("enddo"));

  GntVerifyResult V = Plan.verify();
  EXPECT_TRUE(V.ok()) << V.firstViolation();
  SimConfig C;
  C.Params["n"] = 32;
  SimStats S = simulate(P.Prog, Plan, C);
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  EXPECT_EQ(S.Messages, 1u);
}

TEST(Reduction, ProductReductionRendersItsOperator) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
do i = 1, n
  x(5) = x(5) * u(i)
enddo
)");
  CommPlan Plan = planFor(P);
  std::string Out = Plan.annotate(P.Prog);
  EXPECT_NE(Out.find("Write_Send[*]{x(5)}"), std::string::npos);
}

TEST(Reduction, ReadAfterReductionRequiresCommunication) {
  // Unlike a plain definition, a reduction does not satisfy a later read
  // "for free": the reduced global value lives at the owner.
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u, w
do i = 1, n
  x(i) = x(i) + u(i)
enddo
do j = 1, n
  w(j) = x(j)
enddo
)");
  CommPlan Plan = planFor(P);
  auto Counts = Plan.staticCounts();
  // The j loop's read of x(1:n) must fetch the reduced values.
  EXPECT_EQ(Counts[CommOpKind::ReadSend], 1u);
  EXPECT_EQ(Counts[CommOpKind::ReadRecv], 1u);
  std::string Out = Plan.annotate(P.Prog);
  SCOPED_TRACE(Out);
  // Ordering: the reduction write-back precedes the read.
  EXPECT_LT(Out.find("Write_Send[+]"), Out.find("Read_Send"));

  SimConfig C;
  C.Params["n"] = 16;
  SimStats S = simulate(P.Prog, Plan, C);
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  EXPECT_EQ(S.Messages, 2u); // One write-back, one read.
}

TEST(Reduction, PlainDefinitionStillGivesForFree) {
  // Contrast case: the same shape without the self-reference is a plain
  // store, which does satisfy the later read for free.
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u, w
do i = 1, n
  x(i) = u(i)
enddo
do j = 1, n
  w(j) = x(j)
enddo
)");
  CommPlan Plan = planFor(P);
  auto Counts = Plan.staticCounts();
  EXPECT_EQ(Counts[CommOpKind::ReadSend], 0u);
  EXPECT_EQ(Counts[CommOpKind::WriteSend], 1u);
}

TEST(Reduction, MixedDefinitionKindsFallBackToPlainWrites) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
do i = 1, n
  x(5) = x(5) + u(i)
enddo
x(5) = 0
)");
  CommPlan Plan = planFor(P);
  std::string Out = Plan.annotate(P.Prog);
  // An item with both reduction and plain definitions cannot be combined
  // at the owner: rendered as plain writes.
  EXPECT_EQ(Out.find("Write_Send[+]"), std::string::npos);
  EXPECT_NE(Out.find("Write_Send{x(5)}"), std::string::npos);
}

TEST(Reduction, ReductionSelfReferenceOtherOperandsStillRead) {
  // Only the self-reference is exempt; other distributed operands of the
  // reduction still need READs.
  Pipeline P = Pipeline::fromSource(R"(
distribute x, y
array u
do i = 1, n
  x(5) = x(5) + y(i)
enddo
)");
  CommPlan Plan = planFor(P);
  auto Counts = Plan.staticCounts();
  EXPECT_EQ(Counts[CommOpKind::ReadSend], 1u); // y(1:n).
  std::string Out = Plan.annotate(P.Prog);
  EXPECT_NE(Out.find("Read_Send{y(1:n)}"), std::string::npos);
}

TEST(Reduction, AtomicReductionWrite) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array c, u
do i = 1, n
  x(c(i)) = x(c(i)) + u(i)
enddo
)");
  CommOptions Opts;
  Opts.Atomic = true;
  CommPlan Plan = planFor(P, Opts);
  std::string Out = Plan.annotate(P.Prog);
  EXPECT_NE(Out.find("Write[+]{x(c(1:n))}"), std::string::npos);
}
