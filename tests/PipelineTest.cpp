//===- tests/PipelineTest.cpp - Service pipeline tests ----------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The Pipeline must behave exactly like the hand-rolled pass sequence it
// replaced (parse -> cfg -> interval -> solve -> annotate -> audit),
// turn every failure into diagnostics instead of exits, time its
// stages, and derive stable content-hash cache keys.
//
//===----------------------------------------------------------------------===//

#include "service/Pipeline.h"

#include "baseline/Baselines.h"
#include "cfg/CfgBuilder.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace gnt;

namespace {

const char *kLoopSource = R"(
distribute x
array u
do i = 1, n
  u(i) = x(i)
enddo
)";

const char *kBranchSource = R"(
distribute x, y
array a
do i = 1, n
  if (test(i)) then
    a(i) = x(i)
  else
    a(i) = y(i)
  endif
enddo
)";

TEST(Pipeline, CompilesAndMatchesDirectPassSequence) {
  PipelineResult R = compilePipeline(kLoopSource);
  ASSERT_TRUE(R.ok()) << R.Diags.renderText();
  ASSERT_TRUE((R.Plan != nullptr));
  EXPECT_FALSE((R.Pre != nullptr));

  // The direct pass sequence must agree byte for byte.
  ParseResult PR = parseProgram(kLoopSource);
  ASSERT_TRUE(PR.success());
  CfgBuildResult CR = buildCfg(PR.Prog);
  ASSERT_TRUE(CR.success());
  auto IR = IntervalFlowGraph::build(CR.G);
  ASSERT_TRUE(IR.success());
  CommPlan Direct = generateComm(PR.Prog, CR.G, *IR.Ifg);
  EXPECT_EQ(Direct.annotate(PR.Prog), R.Annotated);
}

TEST(Pipeline, ParseFailureIsDiagnosticNotExit) {
  PipelineResult R = compilePipeline("do i = \n");
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.Reached, PipelineStage::Frontend);
  ASSERT_FALSE(R.Diags.empty());
  for (const Diagnostic &D : R.Diags.all())
    EXPECT_EQ(D.Check, CheckId::Parse);
  EXPECT_FALSE((R.Plan != nullptr));
  EXPECT_TRUE(R.Annotated.empty());
}

TEST(Pipeline, BuildFailureIsDiagnostic) {
  // Duplicate labels fail CFG construction.
  PipelineResult R = compilePipeline("5 continue\n5 continue\n");
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.Reached, PipelineStage::Cfg);
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_EQ(R.Diags.all().front().Check, CheckId::Build);
}

TEST(Pipeline, UnknownBaselineIsDiagnostic) {
  PipelineOptions Opts;
  Opts.Baseline = "no-such-engine";
  PipelineResult R = compilePipeline(kLoopSource, Opts);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.Diags.all().front().Check, CheckId::Engine);
}

TEST(Pipeline, StopAfterCfgSkipsLaterStages) {
  PipelineOptions Opts;
  Opts.StopAfter = PipelineStop::AfterCfg;
  PipelineResult R = compilePipeline(kLoopSource, Opts);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Reached, PipelineStage::Cfg);
  EXPECT_FALSE(R.Ifg.has_value());
  EXPECT_FALSE((R.Plan != nullptr));
  EXPECT_GT(R.G.size(), 0u);
  EXPECT_EQ(R.stageMicros(PipelineStage::Solve), 0.0);
}

TEST(Pipeline, StageTimingsCoverExecutedStages) {
  PipelineOptions Opts;
  Opts.Audit = true;
  PipelineResult R = compilePipeline(kBranchSource, Opts);
  ASSERT_TRUE(R.ok()) << R.Diags.renderText();
  EXPECT_GT(R.stageMicros(PipelineStage::Frontend), 0.0);
  EXPECT_GT(R.stageMicros(PipelineStage::Cfg), 0.0);
  EXPECT_GT(R.stageMicros(PipelineStage::Interval), 0.0);
  EXPECT_GT(R.stageMicros(PipelineStage::Solve), 0.0);
  EXPECT_GT(R.stageMicros(PipelineStage::Audit), 0.0);
  EXPECT_GT(R.totalMicros(), 0.0);
  EXPECT_GT(R.Audit.EngineSolves, 0u);
}

TEST(Pipeline, PreModeProducesInsertions) {
  const char *Src = R"(
do i = 1, n
  u = 2 * c + 1
  v = 2 * c + 1
enddo
)";
  PipelineOptions Opts;
  Opts.Mode = PipelineMode::Pre;
  PipelineResult R = compilePipeline(Src, Opts);
  ASSERT_TRUE(R.ok()) << R.Diags.renderText();
  ASSERT_TRUE((R.Pre != nullptr));
  EXPECT_FALSE((R.Plan != nullptr));
  EXPECT_FALSE(R.Pre->Insertions.empty());
  EXPECT_NE(R.Annotated.find("="), std::string::npos);
}

TEST(Pipeline, AuditRunsAndVerifyMergesFindings) {
  PipelineOptions Opts;
  Opts.Audit = true;
  Opts.Verify = true;
  PipelineResult R = compilePipeline(kLoopSource, Opts);
  ASSERT_TRUE(R.ok()) << R.Diags.renderText();
  EXPECT_GT(R.Audit.EngineSolves, 0u);
  EXPECT_GT(R.Audit.ReferenceSweeps, 0u);
}

TEST(Pipeline, BaselineAuditIsRejectedWithDiagnostic) {
  PipelineOptions Opts;
  Opts.Baseline = "naive";
  Opts.Audit = true;
  PipelineResult R = compilePipeline(kLoopSource, Opts);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.Diags.all().front().Check, CheckId::Engine);
  EXPECT_NE(R.Diags.all().front().Message.find("baseline"),
            std::string::npos);
}

TEST(Pipeline, BaselinesCompile) {
  for (const char *B : {"naive", "vectorized", "lcm"}) {
    PipelineOptions Opts;
    Opts.Baseline = B;
    PipelineResult R = compilePipeline(kLoopSource, Opts);
    ASSERT_TRUE(R.ok()) << B << ": " << R.Diags.renderText();
    ASSERT_TRUE((R.Plan != nullptr)) << B;
    EXPECT_FALSE(R.Annotated.empty()) << B;
  }
}

TEST(Pipeline, WerrorPromotesAuditNotes) {
  // The LCM baseline can't be audited; use a program whose GNT audit is
  // clean, then check Werror leaves it clean (promotion of nothing) and
  // that a note-producing option set fails. Simplest reliable source of
  // notes: none guaranteed — so instead check promotion semantics
  // directly on the merged verifier diagnostics of a clean run.
  PipelineOptions Opts;
  Opts.Audit = true;
  Opts.Werror = true;
  PipelineResult R = compilePipeline(kBranchSource, Opts);
  // Whatever the audit found was promoted: no warnings/notes survive.
  EXPECT_EQ(R.Diags.count(DiagSeverity::Warning), 0u);
  EXPECT_EQ(R.Diags.count(DiagSeverity::Note), 0u);
}

TEST(Pipeline, OptionsCanonicalizationIsInjectiveOnKnobs) {
  PipelineOptions A;
  PipelineOptions B;
  EXPECT_EQ(A.canonical(), B.canonical());

  B.Comm.Atomic = true;
  EXPECT_NE(A.canonical(), B.canonical());

  B = PipelineOptions();
  B.Mode = PipelineMode::Pre;
  EXPECT_NE(A.canonical(), B.canonical());

  B = PipelineOptions();
  B.Baseline = "lcm";
  EXPECT_NE(A.canonical(), B.canonical());

  B = PipelineOptions();
  B.Werror = true;
  EXPECT_NE(A.canonical(), B.canonical());
}

TEST(Pipeline, CacheKeySeparatesSourceFromOptions) {
  PipelineOptions A;
  EXPECT_EQ(pipelineCacheKey("p", A), pipelineCacheKey("p", A));
  EXPECT_NE(pipelineCacheKey("p", A), pipelineCacheKey("q", A));
  PipelineOptions B;
  B.Audit = true;
  EXPECT_NE(pipelineCacheKey("p", A), pipelineCacheKey("p", B));
}

TEST(Pipeline, SolverShardsDoNotChangeOutputOrCacheKey) {
  // The shard-invariance contract surfaces here twice: compiled output
  // must be byte-identical for every shard count, and the cache key must
  // not see the knob at all (so sharded and serial requests share one
  // cache entry).
  PipelineOptions Serial;
  Serial.Audit = true;
  PipelineResult Base = compilePipeline(kBranchSource, Serial);
  ASSERT_TRUE(Base.ok()) << Base.Diags.renderText();
  for (unsigned Shards : {1u, 2u, 7u, 64u}) {
    PipelineOptions Opts = Serial;
    Opts.SolverShards = Shards;
    EXPECT_EQ(Opts.canonical(), Serial.canonical()) << "shards " << Shards;
    EXPECT_EQ(pipelineCacheKey(kBranchSource, Opts),
              pipelineCacheKey(kBranchSource, Serial))
        << "shards " << Shards;
    PipelineResult R = compilePipeline(kBranchSource, Opts);
    EXPECT_EQ(R.Annotated, Base.Annotated) << "shards " << Shards;
    EXPECT_EQ(R.Diags.renderJson(), Base.Diags.renderJson())
        << "shards " << Shards;
  }
}

TEST(Pipeline, CompressUniverseDoesNotChangeOutputOrCacheKey) {
  // Same contract as SolverShards, for the universe-compression layer:
  // identical compiled output, identical cache key, and the two knobs
  // must compose without becoming visible.
  PipelineOptions Plain;
  Plain.Audit = true;
  PipelineResult Base = compilePipeline(kBranchSource, Plain);
  ASSERT_TRUE(Base.ok()) << Base.Diags.renderText();
  for (unsigned Shards : {0u, 7u}) {
    PipelineOptions Opts = Plain;
    Opts.CompressUniverse = true;
    Opts.SolverShards = Shards;
    EXPECT_EQ(Opts.canonical(), Plain.canonical()) << "shards " << Shards;
    EXPECT_EQ(pipelineCacheKey(kBranchSource, Opts),
              pipelineCacheKey(kBranchSource, Plain))
        << "shards " << Shards;
    PipelineResult R = compilePipeline(kBranchSource, Opts);
    EXPECT_EQ(R.Annotated, Base.Annotated) << "shards " << Shards;
    EXPECT_EQ(R.Diags.renderJson(), Base.Diags.renderJson())
        << "shards " << Shards;
  }
  // The uncompressed run reports no compression accounting.
  EXPECT_EQ(Base.CompressedUniverse, 0u);
  EXPECT_EQ(Base.compressionRatio(), 1.0);
}

TEST(Pipeline, CacheKeyAuditSeparatesStrategyFromSemantics) {
  // The audit behind the service cache: every solver-strategy knob must
  // leave the cache key untouched (requests differing only in strategy
  // share one entry), and every output-affecting knob must change it
  // (no stale payloads served across semantic differences). Knobs added
  // to PipelineOptions belong on exactly one of these lists.
  const PipelineOptions Def;
  const std::uint64_t DefKey = pipelineCacheKey(kBranchSource, Def);

  // Strategy knobs: cache hit expected.
  std::vector<std::pair<const char *, PipelineOptions>> Strategy;
  {
    PipelineOptions O;
    O.SolverShards = 16;
    Strategy.emplace_back("solver_shards", O);
  }
  {
    PipelineOptions O;
    O.CompressUniverse = true;
    Strategy.emplace_back("compress_universe", O);
  }
  {
    PipelineOptions O;
    O.SolverShards = 7;
    O.CompressUniverse = true;
    Strategy.emplace_back("both strategies", O);
  }
  {
    // The incrementality-equivalence battery pins incremental output
    // byte-identical to a cold solve, which is what licenses sharing a
    // cache entry with non-incremental requests.
    PipelineOptions O;
    O.Incremental = true;
    Strategy.emplace_back("incremental", O);
  }
  {
    PipelineOptions O;
    O.Incremental = true;
    O.SolverShards = 7;
    O.CompressUniverse = true;
    Strategy.emplace_back("incremental + both strategies", O);
  }
  for (const auto &[Name, O] : Strategy) {
    EXPECT_EQ(O.canonical(), Def.canonical()) << Name;
    EXPECT_EQ(pipelineCacheKey(kBranchSource, O), DefKey) << Name;
  }

  // Output-affecting knobs: cache miss expected, each with a distinct
  // key (pairwise, so no two option sets alias one entry).
  std::vector<std::pair<const char *, PipelineOptions>> Semantic;
  {
    PipelineOptions O;
    O.Mode = PipelineMode::Pre;
    Semantic.emplace_back("mode", O);
  }
  {
    PipelineOptions O;
    O.StopAfter = PipelineStop::AfterCfg;
    Semantic.emplace_back("stop_after", O);
  }
  {
    PipelineOptions O;
    O.Baseline = "lcm";
    Semantic.emplace_back("baseline", O);
  }
  {
    PipelineOptions O;
    O.Annotate = false;
    Semantic.emplace_back("annotate", O);
  }
  {
    PipelineOptions O;
    O.Audit = true;
    Semantic.emplace_back("audit", O);
  }
  {
    PipelineOptions O;
    O.Verify = true;
    Semantic.emplace_back("verify", O);
  }
  {
    PipelineOptions O;
    O.Werror = true;
    Semantic.emplace_back("werror", O);
  }
  {
    PipelineOptions O;
    O.Comm.Atomic = true;
    Semantic.emplace_back("atomic", O);
  }
  {
    PipelineOptions O;
    O.Comm.HoistZeroTrip = false; // Default is true (the paper's choice).
    Semantic.emplace_back("hoist_zero_trip", O);
  }
  {
    PipelineOptions O;
    O.Comm.OwnerComputes = true;
    Semantic.emplace_back("owner_computes", O);
  }
  {
    // Placement strategies change the emitted plan, so unlike the solver
    // execution strategies above they MUST split the cache.
    PipelineOptions O;
    O.Strategy = PlacementStrategy::Lospre;
    Semantic.emplace_back("strategy=lospre", O);
  }
  {
    PipelineOptions O;
    O.Strategy = PlacementStrategy::Speculative;
    Semantic.emplace_back("strategy=speculative", O);
  }
  {
    PipelineOptions O;
    O.Strategy = PlacementStrategy::Speculative;
    O.Profile = "gnt-profile-v1\nbranch 1 9 1\n";
    Semantic.emplace_back("strategy=speculative + profile", O);
  }
  {
    // A profile alone must split too: a later strategy switch served
    // from a profile-less entry would be stale.
    PipelineOptions O;
    O.Profile = "gnt-profile-v1\nbranch 1 9 1\n";
    Semantic.emplace_back("profile", O);
  }
  std::vector<std::uint64_t> Keys{DefKey};
  for (const auto &[Name, O] : Semantic) {
    std::uint64_t Key = pipelineCacheKey(kBranchSource, O);
    for (std::uint64_t Seen : Keys)
      EXPECT_NE(Key, Seen) << Name;
    Keys.push_back(Key);
  }
}

TEST(Pipeline, ResultSignatureIsShardInvariantAndDiscriminating) {
  // The fuzzer's production-path differential compares resultSignature()
  // instead of re-walking every artifact, so the signature must be equal
  // across shard counts even when the compilation carries diagnostics
  // (here: jump poisoning makes the audit emit O1 conservatism notes).
  const char *JumpSource = R"(
distribute x
array a, w, z
do i = 1, n
  w(a(i)) = x(i)
  if (t(i)) goto 55
enddo
55 do k = 1, n
  z(k) = x(k)
enddo
)";
  PipelineOptions Serial;
  Serial.Audit = true;
  Serial.Annotate = true;
  PipelineResult Base = compilePipeline(JumpSource, Serial);
  ASSERT_TRUE(Base.ok()) << Base.Diags.renderText();
  std::uint64_t Sig = resultSignature(Base);
  for (unsigned Shards : {2u, 7u, 64u}) {
    PipelineOptions Opts = Serial;
    Opts.SolverShards = Shards;
    PipelineResult R = compilePipeline(JumpSource, Opts);
    EXPECT_EQ(resultSignature(R), Sig) << "shards " << Shards;
  }

  // ... while still separating genuinely different outcomes: another
  // source, and the same source through PRE (different plan summary).
  PipelineResult Other = compilePipeline(kBranchSource, Serial);
  EXPECT_NE(resultSignature(Other), Sig);
  PipelineOptions Pre = Serial;
  Pre.Mode = PipelineMode::Pre;
  Pre.Audit = false;
  PipelineResult PreR = compilePipeline(JumpSource, Pre);
  ASSERT_TRUE(PreR.ok()) << PreR.Diags.renderText();
  EXPECT_NE(resultSignature(PreR), Sig);
}

TEST(Pipeline, CompileIsDeterministic) {
  PipelineOptions Opts;
  Opts.Audit = true;
  PipelineResult A = compilePipeline(kBranchSource, Opts);
  PipelineResult B = compilePipeline(kBranchSource, Opts);
  EXPECT_EQ(A.Annotated, B.Annotated);
  EXPECT_EQ(A.Diags.renderJson(), B.Diags.renderJson());
}

} // namespace
