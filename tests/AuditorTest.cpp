//===- tests/AuditorTest.cpp - Static auditor acceptance + fault injection --===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The auditor must accept everything the solver produces (on the paper
/// figures, the full pipeline, and randomized programs) and reject
/// targeted corruptions with the *right* check ID anchored to the right
/// node — a differential-testing harness for the elimination solver.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/Auditor.h"
#include "comm/CommGen.h"
#include "dataflow/GiveNTake.h"
#include "gen/RandomProgram.h"
#include "pre/ExprPre.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

constexpr unsigned ItemX = 0;

NodeId findAssign(const Cfg &G, const std::string &Var) {
  for (NodeId Id = 0; Id != G.size(); ++Id) {
    const auto *AS = dyn_cast_or_null<AssignStmt>(G.node(Id).S);
    if (G.node(Id).Kind == NodeKind::Stmt && AS)
      if (const auto *V = dyn_cast<VarExpr>(AS->getLHS()))
        if (V->getName() == Var)
          return Id;
  }
  ADD_FAILURE() << "no assignment to " << Var;
  return InvalidNode;
}

std::string errors(const AuditResult &A) {
  std::string S;
  for (const Diagnostic &D : A.Diags.all())
    if (D.Severity == DiagSeverity::Error)
      S += D.render() + "\n";
  return S;
}

} // namespace

TEST(Auditor, AcceptsSolverOutputOnPaperFigures) {
  for (const char *Src :
       {fig11Source(), "do i = 1, n\nv = i\nenddo\nw = 2\n",
        "if (c > 0) then\nv = 1\nendif\nw = 2\n"}) {
    Pipeline P = Pipeline::fromSource(Src);
    GntProblem Prob(P.G.size(), 2);
    for (NodeId Id = 0; Id != P.G.size(); ++Id)
      if (P.G.node(Id).Kind == NodeKind::Stmt) {
        Prob.TakeInit[Id].set(Id % 2);
        if (Id % 3 == 0)
          Prob.StealInit[Id].set((Id + 1) % 2);
      }
    for (Direction Dir : {Direction::Before, Direction::After}) {
      Prob.Dir = Dir;
      GntRun Run = runGiveNTake(*P.Ifg, Prob);
      AuditResult A = auditGntRun(Run);
      EXPECT_TRUE(A.ok()) << Src << "\n" << errors(A);
      EXPECT_GE(A.Stats.EngineSolves, 5u);
      EXPECT_GE(A.Stats.ReferenceSweeps, 2u);
    }
  }
}

TEST(Auditor, IfgLintAcceptsBothOrientations) {
  Pipeline P = Pipeline::fromSource(fig11Source());
  AuditResult Fwd = auditIfg(*P.Ifg);
  EXPECT_TRUE(Fwd.ok()) << errors(Fwd);

  // An AFTER run carries the reversed orientation of the same graph.
  GntProblem Prob(P.G.size(), 1, Direction::After);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  AuditResult Rev = auditIfg(Run.OrientedIfg);
  EXPECT_TRUE(Rev.ok()) << errors(Rev);
}

TEST(Auditor, DroppedProductionIsRejectedAsC3) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\n");
  GntProblem Prob(P.G.size(), 1);
  NodeId W = findAssign(P.G, "w");
  Prob.TakeInit[W].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  for (BitVector &BV : Run.Result.Eager.ResIn)
    BV.reset();
  AuditResult A = auditGntRun(Run);
  EXPECT_FALSE(A.ok());
  EXPECT_TRUE(A.Diags.contains(CheckId::C3, W))
      << "expected C3 at node " << W << ", got:\n" << errors(A);
  // The from-scratch re-derivation disagrees with the corruption too.
  EXPECT_TRUE(A.Diags.contains(CheckId::Diff));
}

TEST(Auditor, SpuriousProductionIsRejectedAsO3) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\n");
  GntProblem Prob(P.G.size(), 2);
  NodeId V = findAssign(P.G, "v"), W = findAssign(P.G, "w");
  Prob.TakeInit[W].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  // Produce item 1, which nothing ever consumes: not anticipated
  // anywhere, so the eager placement law RES_in <= TAKEN_in breaks.
  Run.Result.Eager.ResIn[V].set(1u);
  AuditResult A = auditGntRun(Run);
  EXPECT_FALSE(A.ok());
  EXPECT_TRUE(A.Diags.contains(CheckId::O3, V))
      << "expected O3 at node " << V << ", got:\n" << errors(A);
  EXPECT_TRUE(A.Diags.contains(CheckId::Diff, V));
}

TEST(Auditor, SwappedUrgenciesAreRejectedAsC1) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\n");
  GntProblem Prob(P.G.size(), 1);
  NodeId W = findAssign(P.G, "w");
  Prob.TakeInit[W].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  ASSERT_NE(Run.Result.Eager.ResIn[W], Run.Result.Lazy.ResIn[W])
      << "test premise: EAGER and LAZY differ at the consumer";
  std::swap(Run.Result.Eager.ResIn[W], Run.Result.Lazy.ResIn[W]);
  AuditResult A = auditGntRun(Run);
  EXPECT_FALSE(A.ok());
  EXPECT_TRUE(A.Diags.contains(CheckId::C1))
      << "expected a C1 balance error, got:\n" << errors(A);
}

TEST(Auditor, MutatedDataflowVariableIsRejectedAsDiff) {
  Pipeline P = Pipeline::fromSource("v = 1\nu = 3\nw = 2\n");
  GntProblem Prob(P.G.size(), 1);
  NodeId U = findAssign(P.G, "u"), W = findAssign(P.G, "w");
  Prob.TakeInit[W].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  // Flip an intermediate variable the placement checks don't read
  // directly: only the differential pass can notice.
  if (Run.Result.TakeLoc[U].test(ItemX))
    Run.Result.TakeLoc[U].reset(ItemX);
  else
    Run.Result.TakeLoc[U].set(ItemX);
  AuditResult A = auditGntRun(Run);
  EXPECT_FALSE(A.ok());
  EXPECT_TRUE(A.Diags.contains(CheckId::Diff, U))
      << "expected DIFF at node " << U << ", got:\n" << errors(A);
}

TEST(Auditor, PassSelectionIsHonored) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\n");
  GntProblem Prob(P.G.size(), 1);
  Prob.TakeInit[findAssign(P.G, "w")].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  NodeId V = findAssign(P.G, "v");
  if (Run.Result.TakeLoc[V].test(ItemX))
    Run.Result.TakeLoc[V].reset(ItemX);
  else
    Run.Result.TakeLoc[V].set(ItemX);
  AuditOptions Opts;
  Opts.CheckDifferential = false;
  AuditResult A = auditGntRun(Run, {}, Opts);
  EXPECT_TRUE(A.ok()) << "differential pass ran although disabled:\n"
                      << errors(A);
  EXPECT_EQ(A.Stats.ReferenceSweeps, 0u);
}

TEST(Auditor, DiagnosticsCarryMachineReadableLocations) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\n");
  GntProblem Prob(P.G.size(), 1);
  NodeId W = findAssign(P.G, "w");
  Prob.TakeInit[W].set(ItemX);
  GntRun Run = runGiveNTake(*P.Ifg, Prob);
  for (BitVector &BV : Run.Result.Eager.ResIn)
    BV.reset();
  AuditResult A = auditGntRun(Run, {"x"});
  std::string Json = A.Diags.renderJson();
  EXPECT_NE(Json.find("\"check\":\"C3\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"node\":" + std::to_string(W)), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"itemName\":\"x\""), std::string::npos) << Json;
}

//===----------------------------------------------------------------------===//
// Randomized sweep: the auditor accepts the full pipeline's output on 200
// generated programs (50 seeds x 4 shapes), plus the PRE runs.
//===----------------------------------------------------------------------===//

namespace {

class AuditRandomPrograms : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(AuditRandomPrograms, PipelineOutputAuditsClean) {
  struct Shape {
    unsigned Stmts;
    double GotoProb;
  } Shapes[4] = {{15, 0.0}, {15, 0.15}, {40, 0.0}, {40, 0.1}};
  for (const Shape &S : Shapes) {
    GenConfig C;
    C.Seed = GetParam();
    C.TargetStmts = S.Stmts;
    C.GotoProb = S.GotoProb;
    Program Prog = generateRandomProgram(C);
    CfgBuildResult CR = buildCfg(Prog);
    ASSERT_TRUE(CR.success());
    auto IR = IntervalFlowGraph::build(CR.G);
    ASSERT_TRUE(IR.success());

    CommPlan Plan = generateComm(Prog, CR.G, *IR.Ifg);
    std::vector<std::string> Names = Plan.Refs.Items.names();
    auto checkRun = [&](const GntRun &Run, const char *What) {
      AuditResult A = auditGntRun(Run, Names);
      EXPECT_TRUE(A.ok()) << What << " seed " << GetParam() << " stmts "
                          << S.Stmts << " goto " << S.GotoProb << ":\n"
                          << errors(A);
    };
    if (Plan.ReadRun)
      checkRun(*Plan.ReadRun, "READ");
    if (Plan.WriteRun)
      checkRun(*Plan.WriteRun, "WRITE");

    ExprPreResult Pre = runExprPre(Prog, CR.G, *IR.Ifg);
    AuditResult A = auditGntRun(Pre.Run, Pre.Exprs);
    EXPECT_TRUE(A.ok()) << "PRE seed " << GetParam() << ":\n" << errors(A);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditRandomPrograms, ::testing::Range(1u, 51u));
