//===- tests/BaselineTest.cpp - Baseline placement tests --------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests of the comparison baselines: classical lazy code motion
/// (with its textbook behaviors on straight lines, diamonds and loops),
/// naive placement, and message vectorization — plus the headline
/// contrasts against GIVE-N-TAKE the benchmarks measure (E9/E10).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "baseline/Baselines.h"
#include "baseline/LazyCodeMotion.h"
#include "sim/TraceSimulator.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

SimConfig configN(long long N) {
  SimConfig C;
  C.Params["n"] = N;
  C.Latency = 100.0;
  return C;
}

unsigned dynamicOps(const SimStats &S) {
  return static_cast<unsigned>(S.Messages);
}

} // namespace

TEST(Lcm, StraightLineRedundancyEliminated) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
u(1) = x(5)
u(2) = x(5)
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = lcmPlacement(P.Prog, P.G, *P.Ifg);
  // One atomic read covers both uses.
  EXPECT_EQ(Plan.staticCounts()[CommOpKind::AtomicRead], 1u);
  SimStats S = simulate(P.Prog, Plan, configN(10));
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  EXPECT_EQ(S.Messages, 1u);
}

TEST(Lcm, DiamondReadsOncePerPath) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
if (t(n)) then
  u(1) = x(5)
else
  u(2) = x(5)
endif
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = lcmPlacement(P.Prog, P.G, *P.Ifg);
  // LCM places computations as late as possible: one occurrence per arm
  // statically, exactly one read on any executed path.
  EXPECT_LE(Plan.staticCounts()[CommOpKind::AtomicRead], 2u);
  SimStats S = simulate(P.Prog, Plan, configN(10));
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  EXPECT_EQ(S.Messages, 1u);
}

TEST(Lcm, GuardedUseStaysInBranch) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
if (t(n)) then
  u(1) = x(5)
endif
u(2) = 0
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = lcmPlacement(P.Prog, P.G, *P.Ifg);
  SimConfig C = configN(10);
  // Safety: nothing communicated when the branch is not taken.
  C.BranchTrueProb = 0.0;
  SimStats S = simulate(P.Prog, Plan, C);
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.Messages, 0u);
  C.BranchTrueProb = 1.0;
  SimStats S2 = simulate(P.Prog, Plan, C);
  EXPECT_TRUE(S2.ok());
  EXPECT_EQ(S2.Messages, 1u);
}

// The paper's "pessimistic loop handling" critique (Section 1): classical
// PRE cannot hoist out of a potentially zero-trip DO loop, so the
// loop-invariant read repeats every iteration; GIVE-N-TAKE issues one.
TEST(Lcm, CannotHoistOutOfZeroTripLoop) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
do i = 1, n
  u(i) = x(5)
enddo
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Lcm = lcmPlacement(P.Prog, P.G, *P.Ifg);
  CommPlan Gnt = generateComm(P.Prog, P.G, *P.Ifg);

  SimStats SLcm = simulate(P.Prog, Lcm, configN(30));
  SimStats SGnt = simulate(P.Prog, Gnt, configN(30));
  EXPECT_TRUE(SLcm.ok()) << (SLcm.Errors.empty() ? "" : SLcm.Errors.front());
  EXPECT_TRUE(SGnt.ok());
  EXPECT_EQ(dynamicOps(SLcm), 30u);
  EXPECT_EQ(dynamicOps(SGnt), 1u);
}

TEST(Lcm, IterationCountGrowsWithLoops) {
  // The iterative solver needs more passes on deeper structures — the
  // contrast with the single-pass elimination solver (experiment E8).
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
do i = 1, n
  do j = 1, n
    do k = 1, n
      u(k) = x(5)
    enddo
  enddo
enddo
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = lcmPlacement(P.Prog, P.G, *P.Ifg);
  SimStats S = simulate(P.Prog, Plan, configN(4));
  EXPECT_TRUE(S.ok());
}

TEST(Baselines, NaivePerReferenceMessages) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
do i = 1, n
  u(i) = x(i) + x(i + 1)
enddo
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Naive = naivePlacement(P.Prog, P.G, *P.Ifg);
  SimStats S = simulate(P.Prog, Naive, configN(25));
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  // Two element messages per iteration.
  EXPECT_EQ(S.Messages, 50u);
  EXPECT_EQ(S.Volume, 50u);
}

TEST(Baselines, VectorizedHoistsToLoopBoundary) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array a, u
do i = 1, n
  u(i) = x(a(i))
enddo
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Vec = vectorizedPlacement(P.Prog, P.G, *P.Ifg);
  std::string Out = Vec.annotate(P.Prog);
  SCOPED_TRACE(Out);
  EXPECT_LT(Out.find("Read_Send{x(a(1:n))}"), Out.find("do i"));
  SimStats S = simulate(P.Prog, Vec, configN(25));
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  EXPECT_EQ(S.Messages, 1u);
  EXPECT_EQ(S.Volume, 25u);
}

TEST(Baselines, VectorizedBlockedByInLoopDefinition) {
  // A definition of the referenced data inside the loop pins the read to
  // the reference.
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array a, u
do i = 1, n
  u(i) = x(a(i))
  x(i) = u(i)
enddo
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Vec = vectorizedPlacement(P.Prog, P.G, *P.Ifg);
  SimStats S = simulate(P.Prog, Vec, configN(10));
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  // One read per iteration (cannot vectorize) plus the write-backs.
  EXPECT_GE(S.Messages, 10u);
}

// Vectorization is per-reference: two loops reading the same section pay
// two messages; GIVE-N-TAKE recognizes the redundancy (criterion O1).
TEST(Baselines, VectorizedMissesCrossLoopRedundancy) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u, w
do i = 1, n
  u(i) = x(i)
enddo
do j = 1, n
  w(j) = x(j)
enddo
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Vec = vectorizedPlacement(P.Prog, P.G, *P.Ifg);
  CommPlan Gnt = generateComm(P.Prog, P.G, *P.Ifg);
  SimStats SVec = simulate(P.Prog, Vec, configN(20));
  SimStats SGnt = simulate(P.Prog, Gnt, configN(20));
  EXPECT_TRUE(SVec.ok());
  EXPECT_TRUE(SGnt.ok());
  EXPECT_EQ(SVec.Messages, 2u);
  EXPECT_EQ(SGnt.Messages, 1u);
  EXPECT_EQ(SVec.Redundant, 1u); // The second transfer was already local.
  EXPECT_EQ(SGnt.Redundant, 0u);
}

// Definitions come for free for GIVE-N-TAKE (Section 3.1); every baseline
// re-fetches data the processor just produced.
TEST(Baselines, GntExploitsFreeDefinitions) {
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array u
do i = 1, n
  x(i) = i
enddo
do j = 1, n
  u(j) = x(j)
enddo
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Gnt = generateComm(P.Prog, P.G, *P.Ifg);
  CommPlan Vec = vectorizedPlacement(P.Prog, P.G, *P.Ifg);
  SimStats SGnt = simulate(P.Prog, Gnt, configN(20));
  SimStats SVec = simulate(P.Prog, Vec, configN(20));
  EXPECT_TRUE(SGnt.ok()) << (SGnt.Errors.empty() ? "" : SGnt.Errors.front());
  EXPECT_TRUE(SVec.ok());
  // GIVE-N-TAKE: only the write-back; no read at all.
  EXPECT_EQ(SGnt.Messages, 1u);
  // Vectorized: write-back plus a read of data that was already local.
  EXPECT_EQ(SVec.Messages, 2u);
  EXPECT_EQ(SVec.Redundant, 1u);
}
