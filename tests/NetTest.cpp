//===- tests/NetTest.cpp - Socket server tests ------------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Socket-level tests for the net subsystem, against real connections to
// an in-process NetServer on an ephemeral port.
//
// The centerpiece is the determinism battery: 20 seeds x worker counts
// {1,4,8} x connection counts {1,8}, each seed's requests shuffled into
// a different arrival order and scattered across the connections. Every
// single response must be byte-identical to what a serial stdio batch
// (BatchServer::run, Workers=0) produces for the same request — the
// wire, the thread pool, the admission queue, and the caches must never
// leak scheduling into payloads.
//
// Around it: overload sheds with structured `overloaded`/queue_full
// errors while every request still gets exactly one response; malformed
// frames get the stdio-identical error payload; oversized and truncated
// frames get structured bad_frame errors and a clean close (never a
// crash or hang); per-tenant quotas shed with reason quota; draining
// servers shed with reason draining while in-flight work completes; and
// GET /metrics on the same port serves Prometheus text. The framing,
// token bucket, and fair-queue primitives get direct unit tests too.
//
//===----------------------------------------------------------------------===//

#include "net/AdmissionQueue.h"
#include "net/Framing.h"
#include "net/NetServer.h"
#include "net/TokenBucket.h"

#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"
#include "service/BatchServer.h"
#include "support/Json.h"

#include "gtest/gtest.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

using namespace gnt;
using namespace gnt::net;

namespace {

//===----------------------------------------------------------------------===//
// Test client
//===----------------------------------------------------------------------===//

struct TestClient {
  int Fd = -1;

  ~TestClient() { close(); }

  void close() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }

  bool dial(std::uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd < 0)
      return false;
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Port);
    ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0) {
      close();
      return false;
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    timeval Tv{20, 0}; // A hung server fails the test, never wedges it.
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
    return true;
  }

  bool send(const std::string &Data) {
    const char *P = Data.data();
    std::size_t Len = Data.size();
    while (Len) {
      ssize_t W = ::write(Fd, P, Len);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      P += W;
      Len -= static_cast<std::size_t>(W);
    }
    return true;
  }

  void finishSending() { ::shutdown(Fd, SHUT_WR); }

  /// Reads until EOF (or the receive timeout).
  std::string recvAll() {
    std::string Data;
    char Buf[64 * 1024];
    for (;;) {
      ssize_t R = ::read(Fd, Buf, sizeof(Buf));
      if (R < 0 && errno == EINTR)
        continue;
      if (R <= 0)
        break;
      Data.append(Buf, static_cast<std::size_t>(R));
    }
    return Data;
  }
};

std::vector<std::string> splitLines(const std::string &Data) {
  std::vector<std::string> Lines;
  std::size_t Pos = 0;
  while (Pos < Data.size()) {
    std::size_t Nl = Data.find('\n', Pos);
    if (Nl == std::string::npos)
      break;
    Lines.push_back(Data.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Lines;
}

std::unique_ptr<NetServer> startServer(unsigned Workers, NetConfig NC = {}) {
  ServiceConfig SC;
  SC.Workers = Workers;
  NC.Port = 0;
  auto Server = std::make_unique<NetServer>(SC, NC);
  std::string Error;
  EXPECT_TRUE(Server->start(Error)) << Error;
  return Server;
}

std::string requestLine(const std::string &Id, const std::string &Source,
                        const std::string &Tenant = "") {
  JsonWriter W;
  W.beginObject();
  W.key("id").value(Id);
  if (!Tenant.empty())
    W.key("tenant").value(Tenant);
  W.key("source").value(Source);
  W.endObject();
  return W.str();
}

std::string seededSource(unsigned Bucket, unsigned Seed,
                         unsigned TargetStmts = 0) {
  GenConfig GC = genConfigForBucket(Bucket % NumGenBuckets, Seed);
  if (TargetStmts)
    GC.TargetStmts = TargetStmts;
  return AstPrinter().print(generateRandomProgram(GC));
}

//===----------------------------------------------------------------------===//
// Determinism battery
//===----------------------------------------------------------------------===//

// Any worker count, connection spread, and arrival order must produce
// responses byte-identical to a serial stdio batch. 20 seeds so the
// shuffles and program shapes vary; cheap programs so the battery stays
// fast.
TEST(NetDeterminismTest, Battery) {
  constexpr unsigned NumSeeds = 20;
  constexpr unsigned RequestsPerSeed = 8;
  const unsigned WorkerCounts[] = {1, 4, 8};
  const unsigned ConnCounts[] = {1, 8};

  // Build per-seed request sets and their serial stdio reference.
  std::vector<std::vector<std::string>> Requests(NumSeeds);
  std::vector<std::vector<std::string>> Reference(NumSeeds);
  ServiceConfig SerialConfig;
  SerialConfig.Workers = 0;
  BatchServer Serial(SerialConfig);
  for (unsigned Seed = 0; Seed < NumSeeds; ++Seed) {
    for (unsigned I = 0; I < RequestsPerSeed; ++I) {
      // Two of the eight repeat an earlier source under a fresh id:
      // cache hits must be byte-identical to cold compiles too.
      unsigned ProgSeed = (I >= 6) ? Seed * 31 + (I - 6) : Seed * 31 + I;
      std::string Id =
          "s" + std::to_string(Seed) + "-" + std::to_string(I);
      Requests[Seed].push_back(
          requestLine(Id, seededSource(I, ProgSeed, 12)));
    }
    Reference[Seed] = Serial.run(Requests[Seed]);
    ASSERT_EQ(Reference[Seed].size(), RequestsPerSeed);
  }

  for (unsigned Workers : WorkerCounts) {
    for (unsigned NumConns : ConnCounts) {
      auto Server = startServer(Workers);
      for (unsigned Seed = 0; Seed < NumSeeds; ++Seed) {
        // A seed-specific arrival order, scattered round-robin over the
        // connections.
        std::vector<unsigned> Order(RequestsPerSeed);
        std::iota(Order.begin(), Order.end(), 0u);
        std::mt19937 Rng(Seed * 1000 + Workers * 10 + NumConns);
        std::shuffle(Order.begin(), Order.end(), Rng);

        std::vector<TestClient> Clients(NumConns);
        std::vector<std::vector<unsigned>> PerConn(NumConns);
        for (TestClient &C : Clients)
          ASSERT_TRUE(C.dial(Server->port()));
        for (unsigned K = 0; K < RequestsPerSeed; ++K) {
          unsigned Conn = K % NumConns;
          ASSERT_TRUE(
              Clients[Conn].send(Requests[Seed][Order[K]] + "\n"));
          PerConn[Conn].push_back(Order[K]);
        }
        for (TestClient &C : Clients)
          C.finishSending();
        for (unsigned Conn = 0; Conn < NumConns; ++Conn) {
          std::vector<std::string> Lines =
              splitLines(Clients[Conn].recvAll());
          ASSERT_EQ(Lines.size(), PerConn[Conn].size())
              << "workers=" << Workers << " conns=" << NumConns
              << " seed=" << Seed;
          for (unsigned K = 0; K < Lines.size(); ++K)
            EXPECT_EQ(Lines[K], Reference[Seed][PerConn[Conn][K]])
                << "workers=" << Workers << " conns=" << NumConns
                << " seed=" << Seed << " slot=" << K;
        }
      }
      Server->requestDrain();
      Server->join();
    }
  }
}

//===----------------------------------------------------------------------===//
// Load discipline
//===----------------------------------------------------------------------===//

TEST(NetOverloadTest, QueueFullShedsWithStructuredError) {
  NetConfig NC;
  NC.MaxPending = 1;
  auto Server = startServer(/*Workers=*/1, NC);

  // One expensive job to pin the single worker, then a burst the
  // 1-deep queue cannot hold.
  std::string Slow = requestLine("slow", seededSource(0, 1, 4000));
  constexpr unsigned Burst = 30;
  std::string Small = seededSource(1, 2, 8);

  TestClient C;
  ASSERT_TRUE(C.dial(Server->port()));
  std::string Payload = Slow + "\n";
  for (unsigned I = 0; I < Burst; ++I)
    Payload += requestLine("b" + std::to_string(I), Small) + "\n";
  ASSERT_TRUE(C.send(Payload));
  C.finishSending();

  std::vector<std::string> Lines = splitLines(C.recvAll());
  // Every request is answered exactly once, shed or not.
  ASSERT_EQ(Lines.size(), Burst + 1);
  unsigned Shed = 0;
  for (const std::string &Line : Lines) {
    if (Line.find("\"error\":\"overloaded\"") != std::string::npos) {
      EXPECT_NE(Line.find("\"reason\":\"queue_full\""), std::string::npos)
          << Line;
      ++Shed;
    }
  }
  EXPECT_GT(Shed, 0u);
  EXPECT_EQ(Server->metrics().ShedQueueFull.load(), Shed);
  Server->requestDrain();
  Server->join();
}

TEST(NetOverloadTest, QuotaShedsPerTenant) {
  NetConfig NC;
  NC.QuotaRps = 1e-6; // Effectively no refill within the test.
  NC.QuotaBurst = 1;
  auto Server = startServer(/*Workers=*/1, NC);

  std::string Source = seededSource(0, 3, 8);
  TestClient C;
  ASSERT_TRUE(C.dial(Server->port()));
  ASSERT_TRUE(C.send(requestLine("a1", Source, "alice") + "\n" +
                     requestLine("a2", Source, "alice") + "\n" +
                     requestLine("b1", Source, "bob") + "\n"));
  C.finishSending();

  std::vector<std::string> Lines = splitLines(C.recvAll());
  ASSERT_EQ(Lines.size(), 3u);
  // Each tenant's first request is admitted on its full bucket; the
  // second alice request is out of tokens.
  EXPECT_EQ(Lines[0].find("\"error\":\"overloaded\""), std::string::npos);
  EXPECT_NE(Lines[1].find("\"reason\":\"quota\""), std::string::npos);
  EXPECT_NE(Lines[1].find("alice"), std::string::npos);
  EXPECT_EQ(Lines[2].find("\"error\":\"overloaded\""), std::string::npos);
  EXPECT_EQ(Server->metrics().ShedQuota.load(), 1u);
  Server->requestDrain();
  Server->join();
}

TEST(NetDrainTest, DrainingShedsNewWorkAndFinishesInFlight) {
  auto Server = startServer(/*Workers=*/1);
  TestClient C;
  ASSERT_TRUE(C.dial(Server->port()));

  // Park a genuinely slow job so the drain stays open, then submit
  // more work mid-drain.
  ASSERT_TRUE(
      C.send(requestLine("slow", seededSource(0, 1, 4000)) + "\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Server->requestDrain();
  ASSERT_TRUE(C.send(requestLine("late", seededSource(1, 2, 8)) + "\n"));
  C.finishSending();

  std::vector<std::string> Lines = splitLines(C.recvAll());
  ASSERT_EQ(Lines.size(), 2u);
  // The in-flight job completed with a real payload; the late one was
  // shed with reason draining.
  EXPECT_EQ(Lines[0].find("\"error\":\"overloaded\""), std::string::npos);
  EXPECT_NE(Lines[0].find("\"id\":\"slow\""), std::string::npos);
  EXPECT_NE(Lines[1].find("\"reason\":\"draining\""), std::string::npos);
  Server->join();
  EXPECT_EQ(Server->metrics().ShedDraining.load(), 1u);
}

//===----------------------------------------------------------------------===//
// Framing failures
//===----------------------------------------------------------------------===//

TEST(NetFramingTest, MalformedFrameMatchesStdioErrorBytes) {
  auto Server = startServer(/*Workers=*/2);
  std::vector<std::string> Garbage = {
      "this is not json",
      "{\"id\":\"x\",\"source\":12}",
      "{\"id\":\"y\"}",
      "[1,2,3]",
  };

  // The stdio batch reference for the same garbage.
  ServiceConfig SerialConfig;
  SerialConfig.Workers = 0;
  std::vector<std::string> Reference = BatchServer(SerialConfig).run(Garbage);

  TestClient C;
  ASSERT_TRUE(C.dial(Server->port()));
  std::string Payload;
  for (const std::string &Line : Garbage)
    Payload += Line + "\n";
  ASSERT_TRUE(C.send(Payload));
  C.finishSending();

  std::vector<std::string> Lines = splitLines(C.recvAll());
  ASSERT_EQ(Lines.size(), Garbage.size());
  for (unsigned I = 0; I < Lines.size(); ++I) {
    // Socket ids are c<conn>-<seq>; normalize both to compare payloads.
    std::string Got = Lines[I].substr(Lines[I].find(",\"result\""));
    std::string Want =
        Reference[I].substr(Reference[I].find(",\"result\""));
    EXPECT_EQ(Got, Want) << Garbage[I];
  }
  EXPECT_EQ(Server->metrics().Malformed.load(), Garbage.size());
  Server->requestDrain();
  Server->join();
}

TEST(NetFramingTest, OversizedFrameAnsweredAndClosed) {
  NetConfig NC;
  NC.MaxFrameBytes = 64;
  auto Server = startServer(/*Workers=*/1, NC);
  TestClient C;
  ASSERT_TRUE(C.dial(Server->port()));
  // 200 bytes, no newline in sight: resynchronization is impossible.
  ASSERT_TRUE(C.send(std::string(200, 'a')));

  std::vector<std::string> Lines = splitLines(C.recvAll());
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_NE(Lines[0].find("\"error\":\"bad_frame\""), std::string::npos);
  EXPECT_NE(Lines[0].find("\"reason\":\"oversized\""), std::string::npos);
  EXPECT_EQ(Server->metrics().Oversized.load(), 1u);
  Server->requestDrain();
  Server->join();
}

TEST(NetFramingTest, TruncatedFrameAnsweredOnEof) {
  auto Server = startServer(/*Workers=*/1);
  TestClient C;
  ASSERT_TRUE(C.dial(Server->port()));
  ASSERT_TRUE(C.send("{\"id\":\"never-finished"));
  C.finishSending(); // EOF mid-frame.

  std::vector<std::string> Lines = splitLines(C.recvAll());
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_NE(Lines[0].find("\"error\":\"bad_frame\""), std::string::npos);
  EXPECT_NE(Lines[0].find("\"reason\":\"truncated\""), std::string::npos);
  EXPECT_EQ(Server->metrics().Truncated.load(), 1u);
  Server->requestDrain();
  Server->join();
}

TEST(NetFramingTest, InterleavedGoodAndBadFrames) {
  // A garbage line between two valid requests: both valid ones still
  // compile, the garbage gets its own error, the connection survives.
  auto Server = startServer(/*Workers=*/2);
  std::string Good = seededSource(2, 5, 8);
  TestClient C;
  ASSERT_TRUE(C.dial(Server->port()));
  ASSERT_TRUE(C.send(requestLine("g1", Good) + "\n!!!garbage!!!\n" +
                     requestLine("g2", Good) + "\n"));
  C.finishSending();

  std::vector<std::string> Lines = splitLines(C.recvAll());
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_NE(Lines[0].find("\"id\":\"g1\""), std::string::npos);
  EXPECT_NE(Lines[1].find("malformed JSON"), std::string::npos);
  EXPECT_NE(Lines[2].find("\"id\":\"g2\""), std::string::npos);
  // Identical sources, identical payloads: the second was a cache hit.
  EXPECT_EQ(Lines[0].substr(Lines[0].find(",\"result\"")),
            Lines[2].substr(Lines[2].find(",\"result\"")));
  Server->requestDrain();
  Server->join();
}

//===----------------------------------------------------------------------===//
// /metrics endpoint
//===----------------------------------------------------------------------===//

TEST(NetMetricsTest, ServesPrometheusText) {
  auto Server = startServer(/*Workers=*/2);

  // Generate some traffic first.
  TestClient Traffic;
  ASSERT_TRUE(Traffic.dial(Server->port()));
  ASSERT_TRUE(
      Traffic.send(requestLine("m1", seededSource(0, 7, 8)) + "\n"));
  Traffic.finishSending();
  EXPECT_EQ(splitLines(Traffic.recvAll()).size(), 1u);

  TestClient C;
  ASSERT_TRUE(C.dial(Server->port()));
  ASSERT_TRUE(C.send("GET /metrics HTTP/1.0\r\n\r\n"));
  std::string Response = C.recvAll();
  EXPECT_NE(Response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(Response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(Response.find("# TYPE gntd_frames_total counter"),
            std::string::npos);
  EXPECT_NE(Response.find("gntd_frames_total 1"), std::string::npos);
  EXPECT_NE(Response.find("gntd_jobs_total 1"), std::string::npos);
  EXPECT_NE(Response.find("gntd_job_latency_microseconds_count"),
            std::string::npos);
  EXPECT_NE(Response.find("quantile=\"0.999\""), std::string::npos);

  TestClient NotFound;
  ASSERT_TRUE(NotFound.dial(Server->port()));
  ASSERT_TRUE(NotFound.send("GET /nope HTTP/1.0\r\n\r\n"));
  EXPECT_NE(NotFound.recvAll().find("404 Not Found"), std::string::npos);

  Server->requestDrain();
  Server->join();
}

//===----------------------------------------------------------------------===//
// Net primitives
//===----------------------------------------------------------------------===//

TEST(FrameExtractorTest, ReassemblesSplitFrames) {
  FrameExtractor E(/*MaxFrameBytes=*/64);
  std::string Line;
  E.append("{\"a\":", 5);
  EXPECT_EQ(E.next(Line), FrameExtractor::Status::NeedMore);
  E.append("1}\r\n{\"b\":2}\n", 12);
  ASSERT_EQ(E.next(Line), FrameExtractor::Status::Frame);
  EXPECT_EQ(Line, "{\"a\":1}"); // CR stripped.
  ASSERT_EQ(E.next(Line), FrameExtractor::Status::Frame);
  EXPECT_EQ(Line, "{\"b\":2}");
  EXPECT_EQ(E.next(Line), FrameExtractor::Status::NeedMore);
  EXPECT_FALSE(E.hasPartial());
}

TEST(FrameExtractorTest, OversizedWithoutNewline) {
  FrameExtractor E(/*MaxFrameBytes=*/8);
  std::string Line;
  std::string Big(9, 'x');
  E.append(Big.data(), Big.size());
  EXPECT_EQ(E.next(Line), FrameExtractor::Status::Oversized);
}

TEST(FrameExtractorTest, StartsWithIsPrefixOfAvailable) {
  FrameExtractor E(64);
  E.append("GE", 2);
  EXPECT_TRUE(E.startsWith("GET ")); // Prefix of what we have so far.
  E.append("T /metrics", 10);
  EXPECT_TRUE(E.startsWith("GET "));
  FrameExtractor F(64);
  F.append("{\"id\"", 5);
  EXPECT_FALSE(F.startsWith("GET "));
}

TEST(TokenBucketTest, BurstThenRefill) {
  auto T0 = TokenBucket::Clock::now();
  TokenBucket B(/*RatePerSec=*/10, /*Burst=*/2, T0);
  EXPECT_TRUE(B.tryTake(T0)); // Starts full.
  EXPECT_TRUE(B.tryTake(T0));
  EXPECT_FALSE(B.tryTake(T0)); // Burst exhausted.
  // 100ms at 10/s refills exactly one token.
  auto T1 = T0 + std::chrono::milliseconds(100);
  EXPECT_TRUE(B.tryTake(T1));
  EXPECT_FALSE(B.tryTake(T1));
  // A long idle period caps at the burst, not the elapsed total.
  auto T2 = T1 + std::chrono::hours(1);
  EXPECT_TRUE(B.tryTake(T2));
  EXPECT_TRUE(B.tryTake(T2));
  EXPECT_FALSE(B.tryTake(T2));
}

TEST(AdmissionQueueTest, FairRoundRobinAcrossTenants) {
  AdmissionQueue Q(/*MaxPending=*/16);
  auto Enqueue = [&](const std::string &Tenant, std::uint64_t Seq) {
    NetJob Job;
    Job.Conn = 1;
    Job.Seq = Seq;
    Job.Req.Tenant = Tenant;
    return Q.tryEnqueue(std::move(Job));
  };
  // alice floods first; bob submits two afterwards.
  for (std::uint64_t I = 0; I < 4; ++I)
    ASSERT_TRUE(Enqueue("alice", I));
  ASSERT_TRUE(Enqueue("bob", 100));
  ASSERT_TRUE(Enqueue("bob", 101));

  // Fair dequeue alternates tenants instead of draining alice first.
  std::vector<std::string> Tenants;
  NetJob Job;
  while (Q.dequeue(Job))
    Tenants.push_back(Job.Req.Tenant);
  ASSERT_EQ(Tenants.size(), 6u);
  EXPECT_EQ(Tenants[0], "alice");
  EXPECT_EQ(Tenants[1], "bob");
  EXPECT_EQ(Tenants[2], "alice");
  EXPECT_EQ(Tenants[3], "bob");
  EXPECT_EQ(Tenants[4], "alice");
  EXPECT_EQ(Tenants[5], "alice");
}

TEST(AdmissionQueueTest, BoundedCapacity) {
  AdmissionQueue Q(2);
  NetJob Job;
  Job.Conn = 1;
  EXPECT_TRUE(Q.tryEnqueue(NetJob(Job)));
  EXPECT_TRUE(Q.tryEnqueue(NetJob(Job)));
  EXPECT_FALSE(Q.tryEnqueue(NetJob(Job))); // Full: caller sheds.
  EXPECT_EQ(Q.depth(), 2u);
  NetJob Out;
  EXPECT_TRUE(Q.dequeue(Out));
  EXPECT_TRUE(Q.tryEnqueue(NetJob(Job))); // Slot freed.
}

} // namespace
