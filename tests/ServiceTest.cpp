//===- tests/ServiceTest.cpp - Batch server tests ---------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The batch server's contract: responses in request order, byte-equal
// between serial and multi-worker runs (the determinism the tentpole
// acceptance criterion demands), per-job failure isolation, and an LRU
// result cache with honest hit/miss accounting.
//
//===----------------------------------------------------------------------===//

#include "service/BatchServer.h"

#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"
#include "support/Json.h"
#include "support/JsonParse.h"

#include <gtest/gtest.h>

using namespace gnt;

namespace {

/// Renders a seeded random program as an inline-source request line.
/// Every third job also runs the audit, so the workload covers both
/// cheap and expensive requests.
std::string requestLine(unsigned Seed) {
  GenConfig Config;
  Config.Seed = Seed;
  Config.TargetStmts = 18;
  std::string Source = AstPrinter().print(generateRandomProgram(Config));
  std::string Line = "{\"id\":\"job-" + std::to_string(Seed) +
                     "\",\"source\":\"" + jsonEscape(Source) + "\"";
  if (Seed % 3 == 0)
    Line += ",\"options\":{\"audit\":true}";
  Line += "}";
  return Line;
}

std::vector<std::string> workload(unsigned Count, unsigned FirstSeed = 1) {
  std::vector<std::string> Lines;
  for (unsigned I = 0; I < Count; ++I)
    Lines.push_back(requestLine(FirstSeed + I));
  return Lines;
}

TEST(ServiceRequest, ParsesFullRequest) {
  ServiceRequest Req;
  std::string Error;
  ASSERT_TRUE(parseServiceRequest(
      "{\"id\":\"a\",\"source\":\"continue\\n\",\"options\":"
      "{\"mode\":\"pre\",\"audit\":true,\"atomic\":true}}",
      "line-1", Req, Error))
      << Error;
  EXPECT_EQ(Req.Id, "a");
  EXPECT_EQ(Req.Source, "continue\n");
  EXPECT_EQ(Req.Opts.Mode, PipelineMode::Pre);
  EXPECT_TRUE(Req.Opts.Audit);
  EXPECT_TRUE(Req.Opts.Comm.Atomic);
}

TEST(ServiceRequest, DefaultsIdToLineNumber) {
  ServiceRequest Req;
  std::string Error;
  ASSERT_TRUE(
      parseServiceRequest("{\"source\":\"continue\\n\"}", "line-7", Req,
                          Error));
  EXPECT_EQ(Req.Id, "line-7");
}

TEST(ServiceRequest, RejectsMalformedInput) {
  ServiceRequest Req;
  std::string Error;
  EXPECT_FALSE(parseServiceRequest("not json", "l", Req, Error));
  EXPECT_NE(Error.find("malformed JSON"), std::string::npos);

  EXPECT_FALSE(parseServiceRequest("[1,2]", "l", Req, Error));
  EXPECT_FALSE(parseServiceRequest("{\"source\":\"x\",\"file\":\"y\"}", "l",
                                   Req, Error));
  EXPECT_FALSE(parseServiceRequest("{}", "l", Req, Error));
  EXPECT_FALSE(parseServiceRequest(
      "{\"source\":\"x\",\"options\":{\"no_such\":true}}", "l", Req, Error));
  EXPECT_NE(Error.find("no_such"), std::string::npos);
  EXPECT_FALSE(parseServiceRequest(
      "{\"source\":\"x\",\"options\":{\"audit\":\"yes\"}}", "l", Req,
      Error));
}

TEST(ServiceRequest, DecodesSolverShards) {
  ServiceRequest Req;
  std::string Error;
  ASSERT_TRUE(parseServiceRequest(
      "{\"source\":\"continue\\n\",\"options\":{\"solver_shards\":7}}", "l",
      Req, Error))
      << Error;
  EXPECT_EQ(Req.Opts.SolverShards, 7u);

  // Out-of-range and non-integer values are rejected with a pointed
  // message; booleans and strings are not silently coerced.
  for (const char *Bad :
       {"-1", "65537", "true", "\"7\"", "1.5"}) {
    std::string Line = std::string("{\"source\":\"x\",\"options\":"
                                   "{\"solver_shards\":") +
                       Bad + "}}";
    EXPECT_FALSE(parseServiceRequest(Line, "l", Req, Error)) << Bad;
    EXPECT_NE(Error.find("solver_shards"), std::string::npos) << Bad;
  }
}

TEST(ServiceRequest, DecodesCompressUniverse) {
  ServiceRequest Req;
  std::string Error;
  ASSERT_TRUE(parseServiceRequest(
      "{\"source\":\"continue\\n\",\"options\":{\"compress_universe\":true}}",
      "l", Req, Error))
      << Error;
  EXPECT_TRUE(Req.Opts.CompressUniverse);
  ASSERT_TRUE(parseServiceRequest(
      "{\"source\":\"continue\\n\",\"options\":{\"compress_universe\":false}}",
      "l", Req, Error))
      << Error;
  EXPECT_FALSE(Req.Opts.CompressUniverse);

  // Like every boolean option, non-bool values are rejected, not
  // coerced.
  for (const char *Bad : {"1", "\"true\"", "null"}) {
    std::string Line = std::string("{\"source\":\"x\",\"options\":"
                                   "{\"compress_universe\":") +
                       Bad + "}}";
    EXPECT_FALSE(parseServiceRequest(Line, "l", Req, Error)) << Bad;
    EXPECT_NE(Error.find("compress_universe"), std::string::npos) << Bad;
  }
}

TEST(BatchServer, CompressUniverseSharesOneCacheEntry) {
  // Universe compression is an execution strategy like solver_shards:
  // requests differing only in that knob (or in both strategy knobs)
  // must resolve to one cache entry with identical payloads.
  BatchServer Server;
  std::vector<std::string> Out = Server.run({
      "{\"id\":\"plain\",\"source\":\"distribute x\\narray u\\n"
      "do i = 1, n\\n  u(i) = x(i)\\nenddo\\n\"}",
      "{\"id\":\"compressed\",\"source\":\"distribute x\\narray u\\n"
      "do i = 1, n\\n  u(i) = x(i)\\nenddo\\n\",\"options\":"
      "{\"compress_universe\":true}}",
      "{\"id\":\"both\",\"source\":\"distribute x\\narray u\\n"
      "do i = 1, n\\n  u(i) = x(i)\\nenddo\\n\",\"options\":"
      "{\"compress_universe\":true,\"solver_shards\":4}}",
  });
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Server.metrics().CacheHits, 2u);
  EXPECT_EQ(Server.metrics().CacheMisses, 1u);
  std::string A = Out[0].substr(Out[0].find("\"result\""));
  for (unsigned I = 1; I != 3; ++I)
    EXPECT_EQ(A, Out[I].substr(Out[I].find("\"result\""))) << Out[I];
}

TEST(BatchServer, SolverShardsShareOneCacheEntry) {
  // Two requests differing only in shard count must compile once and
  // hit the cache on the second, returning identical payloads.
  BatchServer Server;
  std::vector<std::string> Out = Server.run({
      "{\"id\":\"serial\",\"source\":\"distribute x\\narray u\\n"
      "do i = 1, n\\n  u(i) = x(i)\\nenddo\\n\"}",
      "{\"id\":\"sharded\",\"source\":\"distribute x\\narray u\\n"
      "do i = 1, n\\n  u(i) = x(i)\\nenddo\\n\",\"options\":"
      "{\"solver_shards\":4}}",
  });
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Server.metrics().CacheHits, 1u);
  EXPECT_EQ(Server.metrics().CacheMisses, 1u);
  // Same payload modulo the echoed id.
  std::string A = Out[0].substr(Out[0].find("\"result\""));
  std::string B = Out[1].substr(Out[1].find("\"result\""));
  EXPECT_EQ(A, B);
}

TEST(ResultCache, LruEvictsOldest) {
  ResultCache Cache(2);
  Cache.insert(1, "one");
  Cache.insert(2, "two");
  std::string Out;
  ASSERT_TRUE(Cache.lookup(1, Out)); // Refreshes 1; 2 becomes LRU.
  Cache.insert(3, "three");
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_TRUE(Cache.lookup(1, Out));
  EXPECT_EQ(Out, "one");
  EXPECT_FALSE(Cache.lookup(2, Out));
  EXPECT_TRUE(Cache.lookup(3, Out));
}

TEST(ResultCache, ZeroCapacityDisables) {
  ResultCache Cache(0);
  Cache.insert(1, "one");
  std::string Out;
  EXPECT_FALSE(Cache.lookup(1, Out));
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(BatchServer, SerialAndParallelRunsAreByteIdentical) {
  std::vector<std::string> Lines = workload(40);

  ServiceConfig Serial;
  Serial.Workers = 0;
  BatchServer SerialServer(Serial);
  std::vector<std::string> Expected = SerialServer.run(Lines);
  ASSERT_EQ(Expected.size(), Lines.size());

  for (unsigned Workers : {2u, 8u}) {
    ServiceConfig Par;
    Par.Workers = Workers;
    BatchServer Server(Par);
    std::vector<std::string> Got = Server.run(Lines);
    ASSERT_EQ(Got.size(), Expected.size()) << Workers << " workers";
    for (size_t I = 0; I < Expected.size(); ++I)
      EXPECT_EQ(Got[I], Expected[I]) << Workers << " workers, response " << I;
    EXPECT_EQ(Server.metrics().Jobs, Lines.size());
  }
}

TEST(BatchServer, DuplicateRequestsStayDeterministicUnderThreads) {
  // A batch where every job appears twice: cache races between the two
  // copies must never leak into the responses.
  std::vector<std::string> Lines = workload(12);
  std::vector<std::string> Doubled = Lines;
  Doubled.insert(Doubled.end(), Lines.begin(), Lines.end());

  ServiceConfig Serial;
  Serial.Workers = 0;
  BatchServer SerialServer(Serial);
  std::vector<std::string> Expected = SerialServer.run(Doubled);

  ServiceConfig Par;
  Par.Workers = 8;
  BatchServer Server(Par);
  std::vector<std::string> Got = Server.run(Doubled);
  ASSERT_EQ(Got.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Got[I], Expected[I]) << "response " << I;
}

TEST(BatchServer, RepeatedBatchHitsCache) {
  std::vector<std::string> Lines = workload(10);
  ServiceConfig Config;
  Config.Workers = 2;
  BatchServer Server(Config);

  std::vector<std::string> First = Server.run(Lines);
  EXPECT_EQ(Server.metrics().CacheHits, 0u);
  EXPECT_EQ(Server.metrics().CacheMisses, Lines.size());

  std::vector<std::string> Second = Server.run(Lines);
  EXPECT_EQ(Server.metrics().CacheHits, Lines.size());
  EXPECT_GT(Server.metrics().cacheHitRate(), 0.0);
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I < First.size(); ++I)
    EXPECT_EQ(First[I], Second[I]);
}

TEST(BatchServer, CacheDistinguishesOptions) {
  std::string Source = "distribute x\narray u\ndo i = 1, n\n"
                       "  u(i) = x(i)\nenddo\n";
  std::string Plain =
      "{\"source\":\"" + jsonEscape(Source) + "\"}";
  std::string Atomic = "{\"source\":\"" + jsonEscape(Source) +
                       "\",\"options\":{\"atomic\":true}}";
  BatchServer Server{ServiceConfig()};
  std::vector<std::string> Got = Server.run({Plain, Atomic});
  EXPECT_EQ(Server.metrics().CacheMisses, 2u);
  EXPECT_EQ(Server.metrics().CacheHits, 0u);
  EXPECT_NE(Got[0].substr(Got[0].find("result")),
            Got[1].substr(Got[1].find("result")));
}

TEST(BatchServer, FailuresAreIsolated) {
  std::vector<std::string> Lines = {
      requestLine(1),
      "{\"id\":\"bad-syntax\",\"source\":\"do i = \\n\"}",
      "this is not json",
      "{\"id\":\"bad-file\",\"file\":\"/no/such/path.fm\"}",
      requestLine(2),
      "", // Blank lines are skipped, not jobs.
  };
  ServiceConfig Config;
  Config.Workers = 4;
  BatchServer Server(Config);
  std::vector<std::string> Got = Server.run(Lines);
  ASSERT_EQ(Got.size(), 5u); // Blank line dropped.
  EXPECT_EQ(Server.metrics().Jobs, 5u);
  EXPECT_EQ(Server.metrics().Failed, 3u);

  // Every response is well-formed JSON with the right id and ok flag.
  auto check = [&](const std::string &Line, const char *Id, bool Ok) {
    JsonParseResult P = parseJson(Line);
    ASSERT_TRUE(P.success()) << P.Error << " in " << Line;
    const JsonValue *IdV = P.Value.field("id");
    ASSERT_NE(IdV, nullptr);
    EXPECT_EQ(IdV->S, Id);
    const JsonValue *Result = P.Value.field("result");
    ASSERT_NE(Result, nullptr);
    const JsonValue *OkV = Result->field("ok");
    ASSERT_NE(OkV, nullptr);
    EXPECT_EQ(OkV->B, Ok);
    if (!Ok) {
      const JsonValue *Diags = Result->field("diagnostics");
      ASSERT_NE(Diags, nullptr);
      EXPECT_FALSE(Diags->field("diagnostics")->Elems.empty());
    }
  };
  check(Got[0], "job-1", true);
  check(Got[1], "bad-syntax", false);
  check(Got[2], "line-3", false);
  check(Got[3], "bad-file", false);
  check(Got[4], "job-2", true);
}

TEST(BatchServer, MetricsRenderAndRoundTrip) {
  std::vector<std::string> Lines = workload(6);
  ServiceConfig Config;
  Config.Workers = 2;
  BatchServer Server(Config);
  Server.run(Lines);
  Server.run(Lines); // Second pass for cache hits.

  const ServiceMetrics &M = Server.metrics();
  EXPECT_EQ(M.Jobs, 12u);
  EXPECT_GT(M.throughputJobsPerSec(), 0.0);
  EXPECT_GT(M.JobLatency.count(), 0u);

  std::string Text = M.renderText();
  EXPECT_NE(Text.find("jobs: 12"), std::string::npos);
  EXPECT_NE(Text.find("hit rate"), std::string::npos);

  JsonParseResult P = parseJson(M.renderJson());
  ASSERT_TRUE(P.success()) << P.Error;
  EXPECT_EQ(P.Value.field("jobs")->I, 12);
  const JsonValue *Cache = P.Value.field("cache");
  ASSERT_NE(Cache, nullptr);
  EXPECT_EQ(Cache->field("hits")->I, 6);
  EXPECT_GT(Cache->field("hit_rate")->asDouble(), 0.0);
  const JsonValue *Latency = P.Value.field("latency_micros");
  ASSERT_NE(Latency, nullptr);
  ASSERT_NE(Latency->field("job"), nullptr);
  EXPECT_GT(Latency->field("job")->field("p99")->asDouble(), 0.0);
}

TEST(LatencyStats, OrderStatistics) {
  LatencyStats L;
  for (double V : {5.0, 1.0, 3.0, 2.0, 4.0})
    L.record(V);
  EXPECT_EQ(L.min(), 1.0);
  EXPECT_EQ(L.mean(), 3.0);
  EXPECT_EQ(L.percentile(50), 3.0);
  EXPECT_EQ(L.percentile(0), 1.0);
  EXPECT_EQ(L.percentile(100), 5.0);
  LatencyStats Empty;
  EXPECT_EQ(Empty.percentile(99), 0.0);
}

} // namespace
