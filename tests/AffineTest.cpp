//===- tests/AffineTest.cpp - Affine expression and section tests -----------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Affine.h"
#include "ir/AstBuilder.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::build;

TEST(Affine, Constants) {
  AffineExpr C = AffineExpr::constant(42);
  EXPECT_TRUE(C.isAffine());
  EXPECT_TRUE(C.isConstant());
  EXPECT_EQ(C.getConstant(), 42);
  EXPECT_EQ(C.toString(), "42");
}

TEST(Affine, SymbolsAndArithmetic) {
  AffineExpr I = AffineExpr::symbol("i");
  AffineExpr N = AffineExpr::symbol("n");
  AffineExpr E = I + N + AffineExpr::constant(5);
  EXPECT_EQ(E.coeffOf("i"), 1);
  EXPECT_EQ(E.coeffOf("n"), 1);
  EXPECT_EQ(E.getConstTerm(), 5);
  EXPECT_EQ(E.toString(), "i+n+5");

  AffineExpr D = E - I;
  EXPECT_EQ(D.coeffOf("i"), 0);
  EXPECT_FALSE(D.usesSymbol("i"));
  EXPECT_EQ(D.toString(), "n+5");

  AffineExpr M = I * AffineExpr::constant(3);
  EXPECT_EQ(M.coeffOf("i"), 3);
  EXPECT_EQ(M.toString(), "3*i");

  AffineExpr Neg = M.negate();
  EXPECT_EQ(Neg.coeffOf("i"), -3);
  EXPECT_EQ(Neg.toString(), "-3*i");
}

TEST(Affine, NonAffineProducts) {
  AffineExpr I = AffineExpr::symbol("i");
  AffineExpr N = AffineExpr::symbol("n");
  EXPECT_FALSE((I * N).isAffine());
  EXPECT_FALSE((AffineExpr() + I).isAffine());
}

TEST(Affine, FromExpr) {
  // k + 10
  ExprPtr E = add(var("k"), lit(10));
  AffineExpr A = AffineExpr::fromExpr(E.get());
  EXPECT_TRUE(A.isAffine());
  EXPECT_EQ(A.coeffOf("k"), 1);
  EXPECT_EQ(A.getConstTerm(), 10);

  // 2*i - 1
  ExprPtr E2 = sub(bin(BinaryExpr::Op::Mul, lit(2), var("i")), lit(1));
  AffineExpr A2 = AffineExpr::fromExpr(E2.get());
  EXPECT_EQ(A2.coeffOf("i"), 2);
  EXPECT_EQ(A2.getConstTerm(), -1);

  // Indirect subscripts are not affine.
  ExprPtr E3 = aref("a", var("k"));
  EXPECT_FALSE(AffineExpr::fromExpr(E3.get()).isAffine());

  // Calls are not affine.
  std::vector<ExprPtr> Args;
  Args.push_back(var("i"));
  ExprPtr E4 = call("test", std::move(Args));
  EXPECT_FALSE(AffineExpr::fromExpr(E4.get()).isAffine());
}

TEST(Affine, Substitute) {
  // i + 10 with i := [lo = 1] gives 11.
  AffineExpr E = AffineExpr::symbol("i") + AffineExpr::constant(10);
  AffineExpr S = E.substitute("i", AffineExpr::constant(1));
  EXPECT_TRUE(S.isConstant());
  EXPECT_EQ(S.getConstant(), 11);

  // 2*i + n with i := n + 1 gives 3n + 2.
  AffineExpr E2 = AffineExpr::symbol("i") * AffineExpr::constant(2) +
                  AffineExpr::symbol("n");
  AffineExpr S2 =
      E2.substitute("i", AffineExpr::symbol("n") + AffineExpr::constant(1));
  EXPECT_EQ(S2.coeffOf("n"), 3);
  EXPECT_EQ(S2.getConstTerm(), 2);
}

TEST(Affine, DifferenceFrom) {
  AffineExpr N5 = AffineExpr::symbol("n") + AffineExpr::constant(5);
  AffineExpr N2 = AffineExpr::symbol("n") + AffineExpr::constant(2);
  auto D = N5.differenceFrom(N2);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(*D, 3);

  AffineExpr M = AffineExpr::symbol("m");
  EXPECT_FALSE(N5.differenceFrom(M).has_value());
}

TEST(Section, Printing) {
  AffineExpr N = AffineExpr::symbol("n");
  Section S(AffineExpr::constant(1), N);
  EXPECT_EQ(S.toString(), "(1:n)");
  Section El = Section::element(AffineExpr::constant(7));
  EXPECT_EQ(El.toString(), "(7)");
  Section Str(AffineExpr::constant(1), N, 2);
  EXPECT_EQ(Str.toString(), "(1:n:2)");
  EXPECT_EQ(Section::unknown().toString(), "(?)");
}

TEST(Section, EmptyAndOverlap) {
  AffineExpr N = AffineExpr::symbol("n");
  Section Empty(AffineExpr::constant(5), AffineExpr::constant(1));
  EXPECT_TRUE(Empty.isProvablyEmpty());

  // (1:n) and (n+1:2n) are provably disjoint: lo2 - hi1 = 1 > 0.
  Section A(AffineExpr::constant(1), N);
  Section B(N + AffineExpr::constant(1), N + N);
  EXPECT_FALSE(A.mayOverlap(B));
  EXPECT_FALSE(B.mayOverlap(A));

  // (1:n) and (6:n+5) may overlap (they do for n >= 6).
  Section C(AffineExpr::constant(6), N + AffineExpr::constant(5));
  EXPECT_TRUE(A.mayOverlap(C));

  // (1:n) vs (m:m) is unknown-relative: must assume overlap.
  Section D = Section::element(AffineExpr::symbol("m"));
  EXPECT_TRUE(A.mayOverlap(D));

  // Unknown sections overlap everything.
  EXPECT_TRUE(Section::unknown().mayOverlap(A));
  EXPECT_TRUE(A.mayOverlap(Section::unknown()));

  // Interleaved strides never touch: (1:n:2) vs (2:n:2).
  Section Odd(AffineExpr::constant(1), N, 2);
  Section Even(AffineExpr::constant(2), N, 2);
  EXPECT_FALSE(Odd.mayOverlap(Even));
  EXPECT_TRUE(Odd.mayOverlap(Odd));

  // Empty sections overlap nothing.
  EXPECT_FALSE(Empty.mayOverlap(A));
}
