//===- tests/NormalizationTest.cpp - Graph normalization tests --------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Section 3.3's graph requirements, exercised on the irregular control
/// flow our DO-loop builder does not shape by construction: goto-formed
/// loops with multiple back edges (unique-latch normalization), loop
/// headers branching into several body paths (unique-entry-child
/// normalization), and the parser-level rejection cases.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "comm/CommGen.h"
#include "sim/TraceSimulator.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

unsigned countEdges(const IntervalFlowGraph &Ifg, EdgeType T) {
  unsigned N = 0;
  for (NodeId Id = 0; Id != Ifg.size(); ++Id)
    for (const IfgEdge &E : Ifg.succs(Id))
      N += E.Type == T;
  return N;
}

/// Checks the structural invariants GIVE-N-TAKE requires of every graph.
void expectWellFormed(const Cfg &G, const IntervalFlowGraph &Ifg) {
  // No critical edges.
  for (NodeId M = 0; M != G.size(); ++M)
    for (NodeId S : G.node(M).Succs)
      EXPECT_FALSE(G.isCriticalEdge(M, S))
          << describeNode(G, M) << " -> " << describeNode(G, S);
  // One CYCLE edge per header, sourced by a direct single-successor
  // member; one ENTRY successor per header.
  for (NodeId H = 0; H != Ifg.size(); ++H) {
    unsigned Cycles = 0, Entries = 0;
    for (const IfgEdge &E : Ifg.preds(H))
      Cycles += E.Type == EdgeType::Cycle;
    for (const IfgEdge &E : Ifg.succs(H))
      Entries += E.Type == EdgeType::Entry;
    if (Ifg.isHeader(H) && H != Ifg.root()) {
      EXPECT_EQ(Cycles, 1u) << "header " << H;
      EXPECT_EQ(Entries, 1u) << "header " << H;
      NodeId L = Ifg.lastChild(H);
      ASSERT_NE(L, InvalidNode);
      EXPECT_EQ(Ifg.parent(L), H);
      EXPECT_EQ(G.node(L).Succs.size(), 1u);
    } else if (H != Ifg.root()) {
      EXPECT_EQ(Cycles, 0u);
    }
  }
  // FORWARD edges stay within one interval.
  for (NodeId Id = 0; Id != Ifg.size(); ++Id)
    for (const IfgEdge &E : Ifg.succs(Id))
      if (E.Type == EdgeType::Forward) {
        EXPECT_EQ(Ifg.parent(E.Src), Ifg.parent(E.Dst));
      }
}

} // namespace

TEST(Normalization, GotoLoopWithTwoBackEdgesGetsOneLatch) {
  // Two conditional backward gotos to the same label: two back edges
  // that must be funneled through one synthesized latch.
  Pipeline P = Pipeline::fromSource(R"(
array w
v = 0
10 v = v + 1
if (t(v)) goto 10
w(1) = v
if (t(v)) goto 10
w(2) = v
)");
  ASSERT_TRUE(P.Ifg.has_value());
  expectWellFormed(P.G, *P.Ifg);
  EXPECT_EQ(countEdges(*P.Ifg, EdgeType::Cycle), 1u);
}

TEST(Normalization, GotoLoopHeaderBranchingIntoBody) {
  // The loop is headed by a branch whose both arms are inside the loop:
  // a second ENTRY successor that normalization must funnel through a
  // pre-body node.
  Pipeline P = Pipeline::fromSource(R"(
array w
v = 0
10 if (t(v)) then
  v = v + 1
else
  v = v + 2
endif
if (v < n) goto 10
w(1) = v
)");
  ASSERT_TRUE(P.Ifg.has_value());
  expectWellFormed(P.G, *P.Ifg);
}

TEST(Normalization, DeepBackEdgeBecomesJumpPlusLatch) {
  // A backward goto from inside a DO loop to a label before it: the back
  // edge source sits two levels deep, so normalization must synthesize a
  // direct latch, turning the original edge into a JUMP.
  Pipeline P = Pipeline::fromSource(R"(
array w
v = 0
10 v = v + 1
do i = 1, n
  if (t(i)) goto 10
  w(i) = v
enddo
)");
  ASSERT_TRUE(P.Ifg.has_value());
  expectWellFormed(P.G, *P.Ifg);
  // The goto-formed outer loop and the DO loop both have one CYCLE edge.
  EXPECT_EQ(countEdges(*P.Ifg, EdgeType::Cycle), 2u);
}

TEST(Normalization, WellFormedOnPaperFigure) {
  Pipeline P = Pipeline::fromSource(fig11Source());
  ASSERT_TRUE(P.Ifg.has_value());
  expectWellFormed(P.G, *P.Ifg);
}

TEST(Normalization, CommClientSurvivesGotoLoops) {
  // End to end: a goto-formed loop consuming distributed data still gets
  // a verified, simulatable placement.
  Pipeline P = Pipeline::fromSource(R"(
distribute x
array w
v = 0
10 v = v + 1
w(v) = x(3)
if (v < n) goto 10
)");
  ASSERT_TRUE(P.Ifg.has_value());
  CommPlan Plan = generateComm(P.Prog, P.G, *P.Ifg);
  GntVerifyResult V = Plan.verify();
  EXPECT_TRUE(V.ok()) << V.firstViolation();
  SimConfig C;
  C.Params["n"] = 10;
  SimStats S = simulate(P.Prog, Plan, C);
  EXPECT_TRUE(S.ok()) << (S.Errors.empty() ? "" : S.Errors.front());
  // The invariant x(3) is fetched once, before the loop.
  EXPECT_EQ(S.Messages, 1u);
}

TEST(Normalization, MultiDimensionalArrayRejected) {
  ParseResult R = parseProgram(R"(
distribute x
array u
u(1) = x(1, 2)
)");
  EXPECT_FALSE(R.success());
  ASSERT_FALSE(R.Errors.empty());
  EXPECT_NE(R.Errors.front().find("one-dimensional"), std::string::npos);
}

TEST(Normalization, LabeledGotoRejected) {
  ParseResult PR = parseProgram("10 goto 20\n20 v = 1\n");
  ASSERT_TRUE(PR.success()); // Parses; the CFG builder rejects it.
  CfgBuildResult CR = buildCfg(PR.Prog);
  EXPECT_FALSE(CR.success());
}
