//===- tests/FuzzTest.cpp - Fuzz library tests ------------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit and end-to-end coverage for the metamorphic differential fuzzer:
/// AST cloning, mutation validity, structural coverage features, the
/// layered oracle (including the injected fused-sweep fault it must
/// catch), metamorphic transform application, class-preserving
/// minimization, and a short deterministic campaign.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dataflow/GiveNTake.h"
#include "fuzz/Clone.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Metamorphic.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Mutator.h"
#include "fuzz/Oracle.h"
#include "gen/RandomProgram.h"
#include "ir/AstPrinter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace gnt;
using namespace gnt::fuzz;

namespace {

/// Restores the fault-injection flag even when an assertion fails.
struct ScopedFaultInjection {
  ScopedFaultInjection() { detail::InjectFusedSweepBug.store(true); }
  ~ScopedFaultInjection() { detail::InjectFusedSweepBug.store(false); }
};

/// Structurally rich, oracle-clean program: loops, a branch with else,
/// an indirect subscript, and a constant zero-trip loop.
const char *RichSource = R"(
distribute x, y
array a, w, z
do i = 1, n
  w(i) = x(a(i))
enddo
if (t(n)) then
  do j = 1, 0
    y(j) = 4
  enddo
else
  z(1) = y(2)
endif
do k = 1, n
  w(k) = 5
  z(k) = x(k) + y(k)
enddo
)";

/// The fused-sweep fault's minimized shape: a read of a distributed
/// element in one arm of a branch. Flipping Eq. 14 (RES = GIVEN minus
/// inherited GIVEN_in) desynchronizes the arena sweep from the
/// reference engine here.
const char *FaultTriggerSource = R"(
distribute x2
array w
if (t(i1)) then
else
  w(1) = x2(1) + 24
endif
)";

unsigned lineCount(const std::string &S) {
  return static_cast<unsigned>(std::count(S.begin(), S.end(), '\n'));
}

} // namespace

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

TEST(FuzzClone, RoundTripIsByteIdentical) {
  ParseResult PR = parseProgram(test::fig11Source());
  ASSERT_TRUE(PR.success());
  Program Copy = cloneProgram(PR.Prog);
  EXPECT_EQ(AstPrinter().print(Copy), AstPrinter().print(PR.Prog));
}

TEST(FuzzClone, RenameRewritesDeclarationAndEveryReference) {
  ParseResult PR = parseProgram(test::fig11Source());
  ASSERT_TRUE(PR.success());
  Program Renamed = cloneProgram(PR.Prog, {{"y", "yq"}});
  EXPECT_TRUE(Renamed.isDistributed("yq"));
  EXPECT_FALSE(Renamed.isDistributed("y"));
  std::string Out = AstPrinter().print(Renamed);
  EXPECT_EQ(Out.find("y("), std::string::npos) << Out;
  EXPECT_NE(Out.find("yq("), std::string::npos);
  // Alpha-renaming is oracle-transparent end to end.
  EXPECT_TRUE(runOracle(Out).clean());
}

//===----------------------------------------------------------------------===//
// Mutation
//===----------------------------------------------------------------------===//

TEST(FuzzMutator, ProducesParseableProgramsDeterministically) {
  std::mt19937 RngA(11), RngB(11);
  unsigned Parsed = 0, Changed = 0;
  for (unsigned I = 0; I != 30; ++I) {
    std::string A = mutateSource(RichSource, RngA);
    EXPECT_EQ(A, mutateSource(RichSource, RngB)) << "draw " << I;
    if (A.empty())
      continue;
    if (parseProgram(A).success())
      ++Parsed;
    Changed += A != RichSource;
  }
  // The mutator re-prints through the AST, so emitted children always
  // parse; most draws find an applicable site.
  EXPECT_GE(Parsed, 25u);
  EXPECT_GE(Changed, 25u);
}

TEST(FuzzMutator, CrossoverImportsDeclarationsFromDonor) {
  std::mt19937 Rng(3);
  for (unsigned I = 0; I != 10; ++I) {
    std::string Child =
        crossoverSources(RichSource, test::fig11Source(), Rng);
    if (Child.empty())
      continue;
    ParseResult PR = parseProgram(Child);
    EXPECT_TRUE(PR.success())
        << (PR.Errors.empty() ? "" : PR.Errors.front()) << "\n"
        << Child;
  }
}

//===----------------------------------------------------------------------===//
// Coverage features
//===----------------------------------------------------------------------===//

TEST(FuzzCoverage, FlagsAndKeyReflectStructure) {
  OracleOutcome O = runOracle(RichSource);
  ASSERT_TRUE(O.Valid);
  EXPECT_TRUE(O.Features.HasElse);
  EXPECT_TRUE(O.Features.HasZeroTripConst);
  EXPECT_TRUE(O.Features.HasIndirect);
  EXPECT_FALSE(O.Features.HasWideUniverse);
  EXPECT_EQ(O.Features.key(), O.CoverageKey);
  EXPECT_NE(O.Features.describe().find("edges="), std::string::npos);

  // Deterministic, and sensitive to structure.
  EXPECT_EQ(runOracle(RichSource).CoverageKey, O.CoverageKey);
  EXPECT_NE(runOracle(test::fig11Source()).CoverageKey, O.CoverageKey);
}

//===----------------------------------------------------------------------===//
// Oracle
//===----------------------------------------------------------------------===//

TEST(FuzzOracle, FindingClassKeepsTwoComponents) {
  EXPECT_EQ(findingClass("differential.classic.READ.GIVE"),
            "differential.classic");
  EXPECT_EQ(findingClass("simulator.trace"), "simulator.trace");
  EXPECT_EQ(findingClass("audit"), "audit");
}

TEST(FuzzOracle, CleanOnEveryGeneratorBucket) {
  for (unsigned Bucket = 0; Bucket != NumGenBuckets; ++Bucket) {
    GenConfig C = genConfigForBucket(Bucket, 1);
    std::string Source = AstPrinter().print(generateRandomProgram(C));
    OracleOutcome O = runOracle(Source);
    EXPECT_TRUE(O.clean())
        << "bucket " << Bucket << ": "
        << (O.Findings.empty() ? "invalid" : O.Findings.front().Kind);
  }
}

TEST(FuzzOracle, InvalidInputYieldsNoFindings) {
  OracleOutcome O = runOracle("do i = 1\n  w(1) = \nenddo\n");
  EXPECT_FALSE(O.Valid);
  EXPECT_TRUE(O.Findings.empty());
}

TEST(FuzzOracle, ToleratesConservatismNotesButReportsThem) {
  // Jump poisoning makes the auditor emit O1 notes; that is documented
  // Section 5.3 conservatism, not a finding — but WerrorClean must
  // expose it so the distiller can hold corpus seeds to the strict bar.
  const char *Poisoned = R"(
distribute w
array a
do i = 1, n
  w(a(i)) = 1
  if (t(i)) goto 9
enddo
9 do k = 1, n
  w(a(k)) = 2
enddo
)";
  OracleOutcome O = runOracle(Poisoned);
  EXPECT_TRUE(O.clean());
  EXPECT_FALSE(O.WerrorClean);
  EXPECT_TRUE(runOracle(RichSource).WerrorClean);
}

TEST(FuzzOracle, CatchesInjectedFusedSweepBug) {
  ASSERT_TRUE(runOracle(FaultTriggerSource).clean());
  ScopedFaultInjection Inject;
  OracleOutcome O = runOracle(FaultTriggerSource);
  ASSERT_FALSE(O.Findings.empty());
  // The audit's differential re-derivation sees the desync first; the
  // artifact differential would catch it one layer later.
  EXPECT_TRUE(findingClass(O.Findings.front().Kind) == "audit.error" ||
              findingClass(O.Findings.front().Kind).rfind(
                  "differential", 0) == 0)
      << O.Findings.front().Kind;
}

//===----------------------------------------------------------------------===//
// Metamorphic transforms
//===----------------------------------------------------------------------===//

TEST(FuzzMetamorphic, EveryTransformAppliesAndStaysOracleClean) {
  for (unsigned T = 0; T != NumMetaTransforms; ++T) {
    auto Kind = static_cast<MetaTransform>(T);
    std::mt19937 Rng(41 + T);
    MetaVariant V = applyMetaTransform(RichSource, Kind, Rng);
    ASSERT_TRUE(V.Applied) << metaTransformName(Kind);
    EXPECT_NE(V.Source, RichSource) << metaTransformName(Kind);
    // The variant is itself a well-formed program the full oracle
    // accepts (its own metamorphic layer included).
    EXPECT_TRUE(runOracle(V.Source).clean())
        << metaTransformName(Kind) << ":\n"
        << V.Source;
  }
}

TEST(FuzzMetamorphic, InvariantMasksMatchDocumentedSemantics) {
  // Alpha-renaming is the only transform strong enough to pin the
  // plan's static counts; anything touching control flow or adding
  // statements must release the latency/work dimensions it shifts.
  EXPECT_TRUE(metaInvariants(MetaTransform::RenameItems).StaticCounts);
  EXPECT_TRUE(metaInvariants(MetaTransform::RenameItems).ExposedLatency);
  EXPECT_FALSE(
      metaInvariants(MetaTransform::SplitForwardEdge).ExposedLatency);
  EXPECT_FALSE(metaInvariants(MetaTransform::CloneBlockIfElse).Work);
  EXPECT_FALSE(metaInvariants(MetaTransform::InsertDeadStmt).Steps);
  EXPECT_TRUE(metaInvariants(MetaTransform::PermuteIndependent).Messages);
  for (unsigned T = 0; T != NumMetaTransforms; ++T)
    EXPECT_TRUE(metaInvariants(static_cast<MetaTransform>(T)).Volume);
}

//===----------------------------------------------------------------------===//
// Minimization
//===----------------------------------------------------------------------===//

TEST(FuzzMinimizer, ShrinksUnderSyntheticPredicate) {
  // Keep only "a goto survives": everything else in fig11 is ballast.
  MinimizeStats Stats;
  std::string Small = minimizeSource(
      test::fig11Source(),
      [](const std::string &Candidate) {
        return parseProgram(Candidate).success() &&
               Candidate.find("goto") != std::string::npos;
      },
      1000, &Stats);
  EXPECT_NE(Small.find("goto"), std::string::npos);
  EXPECT_LT(lineCount(Small), lineCount(test::fig11Source()));
  EXPECT_GT(Stats.Accepted, 0u);
  EXPECT_GT(Stats.Candidates, Stats.Accepted);
}

TEST(FuzzMinimizer, InjectedBugReproShrinksBelowFifteenLines) {
  ScopedFaultInjection Inject;
  // Start from a deliberately padded failing input.
  std::string Padded = std::string(RichSource) + FaultTriggerSource;
  OracleOutcome Base = runOracle(Padded);
  ASSERT_FALSE(Base.Findings.empty());
  std::string Class = findingClass(Base.Findings.front().Kind);
  std::string Small = minimizeSource(
      Padded,
      [&](const std::string &Candidate) {
        for (const OracleFinding &F : runOracle(Candidate).Findings)
          if (findingClass(F.Kind) == Class)
            return true;
        return false;
      },
      400);
  EXPECT_LT(lineCount(Small), 15u) << Small;
  // The shrunk repro still fails for the same class.
  bool StillFails = false;
  for (const OracleFinding &F : runOracle(Small).Findings)
    StillFails |= findingClass(F.Kind) == Class;
  EXPECT_TRUE(StillFails);
}

TEST(FuzzMinimizer, DistillKeepsCoverageKeyAndWerrorBar) {
  OracleOutcome Base = runOracle(RichSource);
  ASSERT_TRUE(Base.clean() && Base.WerrorClean);
  std::string Small = distillProgram(RichSource, 600);
  OracleOutcome O = runOracle(Small);
  EXPECT_TRUE(O.clean());
  EXPECT_TRUE(O.WerrorClean);
  EXPECT_EQ(O.CoverageKey, Base.CoverageKey);
  EXPECT_LE(lineCount(Small), lineCount(RichSource));
}

//===----------------------------------------------------------------------===//
// Campaign
//===----------------------------------------------------------------------===//

TEST(FuzzCampaign, ProvenanceHeaderFormat) {
  OracleOutcome O = runOracle(RichSource);
  std::string H = provenanceHeader("distilled", 7, O.Features);
  EXPECT_EQ(H.rfind("! gnt-fuzz: distilled seed=7 ", 0), 0u) << H;
  EXPECT_EQ(H.back(), '\n');
  EXPECT_NE(H.find("edges="), std::string::npos);
  // Headers are comments: prepending one changes nothing semantically.
  EXPECT_EQ(runOracle(H + RichSource).CoverageKey, O.CoverageKey);
}

TEST(FuzzCampaign, ShortCampaignIsCleanAndDeterministic) {
  FuzzOptions Opts;
  Opts.Seed = 3;
  Opts.MaxInputs = 40;
  FuzzReport A = runFuzzer(Opts);
  EXPECT_TRUE(A.clean());
  EXPECT_EQ(A.Executed, 40u);
  EXPECT_EQ(A.SeedInputs, 2 * NumGenBuckets);
  EXPECT_GT(A.Valid, 30u);
  EXPECT_GT(A.Novel, 5u);

  FuzzReport B = runFuzzer(Opts);
  EXPECT_EQ(B.Executed, A.Executed);
  EXPECT_EQ(B.Valid, A.Valid);
  EXPECT_EQ(B.Novel, A.Novel);
}

TEST(FuzzCampaign, CampaignCatchesAndMinimizesInjectedBug) {
  ScopedFaultInjection Inject;
  FuzzOptions Opts;
  Opts.Seed = 1;
  Opts.MaxInputs = 60;
  Opts.MinimizeBudget = 300;
  Opts.StopOnFinding = true;
  FuzzReport R = runFuzzer(Opts);
  ASSERT_FALSE(R.Findings.empty());
  const FuzzFinding &F = R.Findings.front();
  EXPECT_FALSE(F.Minimized.empty());
  EXPECT_LE(lineCount(F.Minimized), lineCount(F.Source));
  EXPECT_LT(lineCount(F.Minimized), 15u) << F.Minimized;
}
