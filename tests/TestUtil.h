//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef GNT_TESTS_TESTUTIL_H
#define GNT_TESTS_TESTUTIL_H

#include "cfg/Cfg.h"
#include "cfg/CfgBuilder.h"
#include "frontend/Parser.h"
#include "interval/IntervalFlowGraph.h"

#include <gtest/gtest.h>

namespace gnt::test {

/// The paper's Figure 11 program with concrete statements where the paper
/// elides them. Parameters: x, y distributed; a, b local index arrays.
inline const char *fig11Source() {
  return R"(
distribute x, y
array a, b, w, z
do i = 1, n
  y(a(i)) = 0
  if (test(i)) goto 77
enddo
do j = 1, n
  w(j) = 0
enddo
77 do k = 1, n
  z(k) = x(k + 10) + y(b(k))
enddo
)";
}

/// dyn_cast that tolerates null (test convenience).
template <typename To, typename From>
const To *dyn_cast_or_null(const From *V) {
  return V ? dyn_cast<To>(V) : nullptr;
}

/// Structural handles into the CFG built for fig11Source(). Node ids are
/// located by role, not hard-coded, so construction-order changes don't
/// break tests.
struct Fig11Nodes {
  NodeId Root = InvalidNode;    ///< Entry node (the interval ROOT).
  NodeId Hi = InvalidNode;      ///< do-i header (paper node 2).
  NodeId A = InvalidNode;       ///< y(a(i)) = 0 (paper node 3, partly).
  NodeId B = InvalidNode;       ///< if (test(i)) branch, the JUMP-edge
                                ///< source (paper node 4).
  NodeId Li = InvalidNode;      ///< i-loop latch (paper node 5).
  NodeId SAfterI = InvalidNode; ///< after-i synthetic (paper node 6).
  NodeId Hj = InvalidNode;      ///< do-j header (paper node 7).
  NodeId JB = InvalidNode;      ///< w(j) = 0 (paper node 8).
  NodeId Lj = InvalidNode;      ///< j-loop latch.
  NodeId SAfterJ = InvalidNode; ///< after-j synthetic (paper node 9/11).
  NodeId Pad = InvalidNode;     ///< jump landing pad (paper node 10).
  NodeId Hk = InvalidNode;      ///< do-k header (paper node 12).
  NodeId KB = InvalidNode;      ///< z(k) = ... (paper node 13).
  NodeId Lk = InvalidNode;      ///< k-loop latch.
  NodeId Exit = InvalidNode;    ///< program exit (paper node 14).
};

inline Fig11Nodes locateFig11(const Cfg &G) {
  Fig11Nodes N;
  N.Root = G.entry();
  N.Exit = G.exit();
  for (NodeId Id = 0; Id != G.size(); ++Id) {
    const CfgNode &Node = G.node(Id);
    auto indexVarIs = [&](const char *V) {
      const auto *D = dyn_cast_or_null<DoStmt>(Node.S);
      return D && D->getIndexVar() == V;
    };
    switch (Node.Kind) {
    case NodeKind::LoopHeader:
      if (indexVarIs("i"))
        N.Hi = Id;
      else if (indexVarIs("j"))
        N.Hj = Id;
      else if (indexVarIs("k"))
        N.Hk = Id;
      break;
    case NodeKind::LoopLatch:
      if (indexVarIs("i"))
        N.Li = Id;
      else if (indexVarIs("j"))
        N.Lj = Id;
      else if (indexVarIs("k"))
        N.Lk = Id;
      break;
    case NodeKind::Stmt: {
      const auto *AS = dyn_cast_or_null<AssignStmt>(Node.S);
      if (!AS)
        break;
      const auto *LHS = dyn_cast<ArrayRefExpr>(AS->getLHS());
      if (!LHS)
        break;
      if (LHS->getArray() == "y")
        N.A = Id;
      else if (LHS->getArray() == "w")
        N.JB = Id;
      else if (LHS->getArray() == "z")
        N.KB = Id;
      break;
    }
    case NodeKind::Branch:
      N.B = Id;
      break;
    case NodeKind::Synthetic: {
      if (dyn_cast_or_null<GotoStmt>(Node.EmitStmt)) {
        N.Pad = Id;
        break;
      }
      const auto *D = dyn_cast_or_null<DoStmt>(Node.EmitStmt);
      if (D && Node.Where == EmitWhere::After) {
        if (D->getIndexVar() == "i")
          N.SAfterI = Id;
        else if (D->getIndexVar() == "j")
          N.SAfterJ = Id;
      }
      break;
    }
    default:
      break;
    }
  }
  return N;
}

/// Parses, builds the CFG and the interval flow graph, failing the test on
/// any error.
struct Pipeline {
  Program Prog;
  Cfg G;
  std::optional<IntervalFlowGraph> Ifg;

  static Pipeline fromSource(const std::string &Src) {
    Pipeline P;
    ParseResult PR = parseProgram(Src);
    EXPECT_TRUE(PR.success()) << (PR.Errors.empty() ? "" : PR.Errors.front());
    P.Prog = std::move(PR.Prog);
    CfgBuildResult CR = buildCfg(P.Prog);
    EXPECT_TRUE(CR.success()) << (CR.Errors.empty() ? "" : CR.Errors.front());
    P.G = std::move(CR.G);
    auto IR = IntervalFlowGraph::build(P.G);
    EXPECT_TRUE(IR.success()) << (IR.Errors.empty() ? "" : IR.Errors.front());
    if (IR.success())
      P.Ifg = std::move(*IR.Ifg);
    return P;
  }
};

} // namespace gnt::test

#endif // GNT_TESTS_TESTUTIL_H
