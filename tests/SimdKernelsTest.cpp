//===- tests/SimdKernelsTest.cpp - Kernel variant parity --------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Every kernel variant this machine can run must agree with the scalar
// reference word-for-word, on every primitive, on widths that exercise
// the vector body, the scalar tail, and the degenerate cases (0, 1,
// sub-lane, exact-lane, lane+1, many lanes). The solver-level identity
// batteries (PropertyTest, fuzz oracle) subsume this in aggregate;
// this test exists so a tail-handling or operand-order bug in one
// primitive fails with the primitive's name in the test output rather
// than as a 20-variable solver diff.
//
//===----------------------------------------------------------------------===//

#include "support/ItemClasses.h"
#include "support/SimdKernels.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

using namespace gnt;

namespace {

using Word = SolverKernels::Word;

// Widths chosen to hit: empty, single word, below one AVX2 step (4),
// exactly one AVX-512 step (8), one step plus tail, several steps plus
// tail, and a large row.
const unsigned Widths[] = {0, 1, 3, 4, 5, 7, 8, 9, 12, 16, 17, 64, 129};

std::vector<Word> randomRow(std::mt19937_64 &Rng, unsigned W) {
  std::vector<Word> R(W);
  for (Word &X : R)
    X = Rng();
  return R;
}

class SimdKernelsTest : public ::testing::Test {
protected:
  const SolverKernels &Scalar = *solverKernelByName("scalar");
  std::mt19937_64 Rng{0x9e3779b97f4a7c15ull};
};

TEST_F(SimdKernelsTest, ScalarIsAlwaysAvailable) {
  ASSERT_NE(solverKernelByName("scalar"), nullptr);
  std::vector<const SolverKernels *> All = availableSolverKernels();
  ASSERT_FALSE(All.empty());
  EXPECT_STREQ(All.front()->Name, "scalar");
  // The active selection is one of the available ones.
  bool Found = false;
  for (const SolverKernels *K : All)
    Found |= std::string_view(K->Name) == solverKernelName();
  EXPECT_TRUE(Found);
}

TEST_F(SimdKernelsTest, UnknownNameIsRejected) {
  EXPECT_EQ(solverKernelByName("mmx"), nullptr);
  EXPECT_EQ(solverKernelByName(""), nullptr);
}

TEST_F(SimdKernelsTest, RowPrimitivesMatchScalar) {
  for (const SolverKernels *K : availableSolverKernels()) {
    SCOPED_TRACE(K->Name);
    for (unsigned W : Widths) {
      SCOPED_TRACE(W);
      const std::vector<Word> A = randomRow(Rng, W);
      const std::vector<Word> B = randomRow(Rng, W);
      const std::vector<Word> D0 = randomRow(Rng, W);

      std::vector<Word> Want = D0, Got = D0;
      Scalar.RowCopy(Want.data(), A.data(), W);
      K->RowCopy(Got.data(), A.data(), W);
      EXPECT_EQ(Want, Got) << "RowCopy";

      Want = D0;
      Got = D0;
      Scalar.RowOr(Want.data(), A.data(), W);
      K->RowOr(Got.data(), A.data(), W);
      EXPECT_EQ(Want, Got) << "RowOr";

      Want = D0;
      Got = D0;
      Scalar.RowAnd(Want.data(), A.data(), W);
      K->RowAnd(Got.data(), A.data(), W);
      EXPECT_EQ(Want, Got) << "RowAnd";

      Want = D0;
      Got = D0;
      Scalar.RowOrAndNot(Want.data(), A.data(), B.data(), W);
      K->RowOrAndNot(Got.data(), A.data(), B.data(), W);
      EXPECT_EQ(Want, Got) << "RowOrAndNot";
    }
  }
}

TEST_F(SimdKernelsTest, FusedSweepsMatchScalar) {
  for (const SolverKernels *K : availableSolverKernels()) {
    SCOPED_TRACE(K->Name);
    for (unsigned W : Widths) {
      SCOPED_TRACE(W);

      // FuseGiveLoc: D = (D | Give | Take) & ~Steal.
      {
        const std::vector<Word> Give = randomRow(Rng, W);
        const std::vector<Word> Take = randomRow(Rng, W);
        const std::vector<Word> Steal = randomRow(Rng, W);
        std::vector<Word> Want = randomRow(Rng, W);
        std::vector<Word> Got = Want;
        Scalar.FuseGiveLoc(W, Want.data(), Give.data(), Take.data(),
                           Steal.data());
        K->FuseGiveLoc(W, Got.data(), Give.data(), Take.data(),
                       Steal.data());
        EXPECT_EQ(Want, Got) << "FuseGiveLoc";
      }

      // FuseS1: 11 inputs, 7 outputs, plus the hoist mask.
      for (Word HoistMask : {~Word(0), Word(0)}) {
        std::vector<std::vector<Word>> In;
        for (int I = 0; I != 11; ++I)
          In.push_back(randomRow(Rng, W));
        std::vector<std::vector<Word>> Want(7, randomRow(Rng, W));
        std::vector<std::vector<Word>> Got = Want;
        auto RunS1 = [&](const SolverKernels &SK,
                         std::vector<std::vector<Word>> &Out) {
          SK.FuseS1(W, In[0].data(), In[1].data(), In[2].data(),
                    In[3].data(), In[4].data(), In[5].data(), In[6].data(),
                    In[7].data(), In[8].data(), In[9].data(), HoistMask,
                    In[10].data(), Out[0].data(), Out[1].data(),
                    Out[2].data(), Out[3].data(), Out[4].data(),
                    Out[5].data(), Out[6].data());
        };
        RunS1(Scalar, Want);
        RunS1(*K, Got);
        EXPECT_EQ(Want, Got) << "FuseS1 mask=" << HoistMask;
      }

      // FuseS3: RGivenIn is in-out, RGiven/RGivenOut are outputs.
      {
        std::vector<std::vector<Word>> In;
        for (int I = 0; I != 7; ++I)
          In.push_back(randomRow(Rng, W));
        std::vector<Word> GivenInW = randomRow(Rng, W);
        std::vector<Word> GivenInG = GivenInW;
        std::vector<Word> GivenW(W), GivenOutW(W), GivenG(W), GivenOutG(W);
        Scalar.FuseS3(W, GivenInW.data(), In[0].data(), In[1].data(),
                      In[2].data(), In[3].data(), In[4].data(),
                      In[5].data(), In[6].data(), GivenW.data(),
                      GivenOutW.data());
        K->FuseS3(W, GivenInG.data(), In[0].data(), In[1].data(),
                  In[2].data(), In[3].data(), In[4].data(), In[5].data(),
                  In[6].data(), GivenG.data(), GivenOutG.data());
        EXPECT_EQ(GivenInW, GivenInG) << "FuseS3 RGivenIn";
        EXPECT_EQ(GivenW, GivenG) << "FuseS3 RGiven";
        EXPECT_EQ(GivenOutW, GivenOutG) << "FuseS3 RGivenOut";
      }

      // FuseS4: RResOut arrives holding the successor union; the
      // returned word ORs the final RES_out. Both fault-injection arms.
      for (bool Flip : {false, true}) {
        const std::vector<Word> Given = randomRow(Rng, W);
        const std::vector<Word> GivenIn = randomRow(Rng, W);
        const std::vector<Word> GivenOut = randomRow(Rng, W);
        std::vector<Word> ResInW(W), ResInG(W);
        std::vector<Word> ResOutW = randomRow(Rng, W);
        std::vector<Word> ResOutG = ResOutW;
        Word RetW = Scalar.FuseS4(W, Flip, Given.data(), GivenIn.data(),
                                  GivenOut.data(), ResInW.data(),
                                  ResOutW.data());
        Word RetG = K->FuseS4(W, Flip, Given.data(), GivenIn.data(),
                              GivenOut.data(), ResInG.data(),
                              ResOutG.data());
        EXPECT_EQ(ResInW, ResInG) << "FuseS4 RResIn flip=" << Flip;
        EXPECT_EQ(ResOutW, ResOutG) << "FuseS4 RResOut flip=" << Flip;
        EXPECT_EQ(RetW, RetG) << "FuseS4 return flip=" << Flip;
      }

      // FuseTransfer: Out = (In & ~Kill) | Gen, returns OR of old^new.
      {
        const std::vector<Word> In = randomRow(Rng, W);
        const std::vector<Word> Gen = randomRow(Rng, W);
        const std::vector<Word> Kill = randomRow(Rng, W);
        std::vector<Word> OutW = randomRow(Rng, W);
        std::vector<Word> OutG = OutW;
        Word RetW = Scalar.FuseTransfer(W, OutW.data(), In.data(),
                                        Gen.data(), Kill.data());
        Word RetG = K->FuseTransfer(W, OutG.data(), In.data(), Gen.data(),
                                    Kill.data());
        EXPECT_EQ(OutW, OutG) << "FuseTransfer Out";
        EXPECT_EQ(RetW, RetG) << "FuseTransfer return";
        // No-change round-trip must report no diff.
        EXPECT_EQ(K->FuseTransfer(W, OutG.data(), In.data(), Gen.data(),
                                  Kill.data()),
                  Word(0))
            << "FuseTransfer fixed point";
        (void)RetW;
      }
    }
  }
}

TEST_F(SimdKernelsTest, ExpandRowWordsMatchesScalarAndBitExpansion) {
  // Random word-aligned expansion programs: tile [0, DstWords) with a
  // mix of zero-fill gaps and copy runs from a walking source cursor —
  // the shape compileExpandWordPlan emits.
  for (const SolverKernels *K : availableSolverKernels()) {
    SCOPED_TRACE(K->Name);
    for (unsigned Trial = 0; Trial != 20; ++Trial) {
      const unsigned DstWords = 1 + static_cast<unsigned>(Rng() % 96);
      std::vector<ExpandWordOp> Ops;
      unsigned Dst = 0, Src = 0;
      while (Dst < DstWords) {
        unsigned Run = 1 + static_cast<unsigned>(Rng() % 40);
        Run = std::min(Run, DstWords - Dst);
        if (Rng() & 1) {
          Ops.push_back({Dst, ExpandWordOp::ZeroFill, Run});
        } else {
          Ops.push_back({Dst, Src, Run});
          Src += Run;
        }
        Dst += Run;
      }
      const unsigned SrcWords = std::max(Src, 1u);
      const std::vector<Word> Source = randomRow(Rng, SrcWords);

      std::vector<Word> Want(DstWords, Word(0xA5A5A5A5A5A5A5A5ull));
      std::vector<Word> Got = Want;
      Scalar.ExpandRowWords(Want.data(), DstWords, Source.data(), SrcWords,
                            Ops.data(), Ops.size());
      K->ExpandRowWords(Got.data(), DstWords, Source.data(), SrcWords,
                        Ops.data(), Ops.size());
      EXPECT_EQ(Want, Got);

      // And against the header implementation the kernels mirror.
      std::vector<Word> Ref(DstWords, Word(0x5A5A5A5A5A5A5A5Aull));
      std::vector<ExpandWordOp> OpsVec = Ops;
      expandRowWords(Ref.data(), DstWords, Source.data(), SrcWords, OpsVec);
      EXPECT_EQ(Ref, Got);

      // All-zero source must take the memset fast path to the same end.
      const std::vector<Word> Zero(SrcWords, 0);
      std::vector<Word> GotZ(DstWords, Word(~0ull));
      K->ExpandRowWords(GotZ.data(), DstWords, Zero.data(), SrcWords,
                        Ops.data(), Ops.size());
      EXPECT_EQ(GotZ, std::vector<Word>(DstWords, 0));
    }
  }
}

} // namespace
