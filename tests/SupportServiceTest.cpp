//===- tests/SupportServiceTest.cpp - Hashing/JSON/ThreadPool tests ---------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The support pieces under the service subsystem: FNV-1a hashing (known
// vectors + chaining laws), the JSON reader (round trips with the
// writer), and the thread pool (completion, reuse, inline mode).
//
//===----------------------------------------------------------------------===//

#include "support/Hashing.h"
#include "support/Json.h"
#include "support/JsonParse.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

using namespace gnt;

namespace {

TEST(Hashing, Fnv1aKnownVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Hashing, AppendChainsLikeConcatenation) {
  std::uint64_t Chained = fnv1aAppend(fnv1a("give"), "ntake");
  EXPECT_EQ(Chained, fnv1a("giventake"));
  // A separator byte keeps part boundaries significant.
  std::uint64_t AB_c = fnv1aAppend(
      fnv1aAppend(fnv1a("ab"), std::string(1, '\0')), "c");
  std::uint64_t A_bc = fnv1aAppend(
      fnv1aAppend(fnv1a("a"), std::string(1, '\0')), "bc");
  EXPECT_NE(AB_c, A_bc);
}

TEST(Hashing, HexRenderingIsFixedWidth) {
  EXPECT_EQ(hashToHex(0), "0000000000000000");
  EXPECT_EQ(hashToHex(0xdeadbeefull), "00000000deadbeef");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parseJson("null").Value.isNull());
  EXPECT_TRUE(parseJson("true").Value.B);
  EXPECT_FALSE(parseJson("false").Value.B);
  EXPECT_EQ(parseJson("42").Value.I, 42);
  EXPECT_EQ(parseJson("-7").Value.I, -7);
  EXPECT_DOUBLE_EQ(parseJson("2.5").Value.D, 2.5);
  EXPECT_DOUBLE_EQ(parseJson("1e3").Value.asDouble(), 1000.0);
  EXPECT_EQ(parseJson("\"hi\\n\\\"there\\\"\"").Value.S, "hi\n\"there\"");
  EXPECT_EQ(parseJson("\"\\u0041\\u00e9\"").Value.S, "A\xc3\xa9");
}

TEST(JsonParse, Structures) {
  JsonParseResult P =
      parseJson("{\"a\": [1, 2, {\"b\": true}], \"c\": \"x\"} ");
  ASSERT_TRUE(P.success()) << P.Error;
  const JsonValue *A = P.Value.field("a");
  ASSERT_NE(A, nullptr);
  ASSERT_TRUE(A->isArray());
  ASSERT_EQ(A->Elems.size(), 3u);
  EXPECT_EQ(A->Elems[0].I, 1);
  EXPECT_TRUE(A->Elems[2].field("b")->B);
  EXPECT_EQ(P.Value.field("c")->S, "x");
  EXPECT_EQ(P.Value.field("missing"), nullptr);
}

TEST(JsonParse, Errors) {
  EXPECT_FALSE(parseJson("").success());
  EXPECT_FALSE(parseJson("{").success());
  EXPECT_FALSE(parseJson("{\"a\":}").success());
  EXPECT_FALSE(parseJson("[1,]").success());
  EXPECT_FALSE(parseJson("\"unterminated").success());
  EXPECT_FALSE(parseJson("1 2").success());
  EXPECT_FALSE(parseJson("nul").success());
  EXPECT_FALSE(parseJson("1.").success());
  EXPECT_FALSE(parseJson("-").success());
  EXPECT_FALSE(parseJson("\"\\q\"").success());

  JsonParseResult P = parseJson("{\"a\": @}");
  EXPECT_FALSE(P.success());
  EXPECT_EQ(P.ErrorOffset, 6u);
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter W;
  W.beginObject();
  W.key("name").value("line\n\"quoted\"\ttab");
  W.key("count").value(123456789LL);
  W.key("flag").value(true);
  W.beginArray("items");
  W.value("a");
  W.value(2LL);
  W.endArray();
  W.endObject();

  JsonParseResult P = parseJson(W.str());
  ASSERT_TRUE(P.success()) << P.Error;
  EXPECT_EQ(P.Value.field("name")->S, "line\n\"quoted\"\ttab");
  EXPECT_EQ(P.Value.field("count")->I, 123456789LL);
  EXPECT_TRUE(P.Value.field("flag")->B);
  ASSERT_EQ(P.Value.field("items")->Elems.size(), 2u);
}

TEST(ThreadPool, RunsEveryJob) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(4);
    for (int I = 0; I < 1000; ++I)
      Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
    Pool.wait();
    EXPECT_EQ(Count.load(), 1000);
  }
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  std::atomic<int> Count{0};
  ThreadPool Pool(2);
  for (int Batch = 0; Batch < 3; ++Batch) {
    for (int I = 0; I < 50; ++I)
      Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Batch + 1) * 50);
  }
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.workers(), 0u);
  int X = 0;
  Pool.submit([&X] { X = 7; });
  EXPECT_EQ(X, 7); // Ran synchronously; no wait() needed.
  Pool.wait();     // Still safe to call.
}

TEST(ThreadPool, DestructorDrainsPendingJobs) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 200; ++I)
      Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
    // No wait(): teardown must finish the queue, not drop it.
  }
  EXPECT_EQ(Count.load(), 200);
}

} // namespace
