//===- tests/AnalysisTest.cpp - Dataflow engine + reference solver ----------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the generic monotone-framework engine (directions,
/// confluences, solve modes, statistics), the declarative GIVE-N-TAKE
/// problem specs built on top of it, and the iterative reference solver
/// that re-derives Equations 1-15 independently of the elimination
/// schedule.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/DataflowEngine.h"
#include "analysis/GntProblems.h"
#include "analysis/ReferenceSolver.h"
#include "dataflow/GiveNTake.h"
#include "gen/RandomProgram.h"

#include <gtest/gtest.h>

using namespace gnt;
using namespace gnt::test;

namespace {

NodeId findAssign(const Cfg &G, const std::string &Var) {
  for (NodeId Id = 0; Id != G.size(); ++Id) {
    const auto *AS = dyn_cast_or_null<AssignStmt>(G.node(Id).S);
    if (G.node(Id).Kind == NodeKind::Stmt && AS)
      if (const auto *V = dyn_cast<VarExpr>(AS->getLHS()))
        if (V->getName() == Var)
          return Id;
  }
  ADD_FAILURE() << "no assignment to " << Var;
  return InvalidNode;
}

/// The checkerboard problem the verifier property tests use: every
/// statement consumes one of two items, every third one steals the other.
GntProblem checkerProblem(const Cfg &G, Direction Dir) {
  GntProblem Prob(G.size(), 2, Dir);
  for (NodeId Id = 0; Id != G.size(); ++Id)
    if (G.node(Id).Kind == NodeKind::Stmt) {
      Prob.TakeInit[Id].set(Id % 2);
      if (Id % 3 == 0)
        Prob.StealInit[Id].set((Id + 1) % 2);
    }
  return Prob;
}

} // namespace

TEST(DataflowEngine, ForwardAnyPropagatesDownstream) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\n");
  NodeId V = findAssign(P.G, "v"), W = findAssign(P.G, "w");
  DataflowSpec Spec;
  Spec.Direction = FlowDirection::Forward;
  Spec.Meet = Confluence::Any;
  Spec.UniverseSize = 1;
  Spec.Gen.assign(P.G.size(), BitVector(1));
  Spec.Gen[V].set(0u);
  DataflowResult R = solveDataflow(*P.Ifg, Spec);
  EXPECT_TRUE(R.Out[V].test(0));
  EXPECT_TRUE(R.In[W].test(0)) << "fact did not flow V -> W";
  EXPECT_FALSE(R.In[V].test(0)) << "fact flowed upstream";
}

TEST(DataflowEngine, KillStopsPropagation) {
  Pipeline P = Pipeline::fromSource("v = 1\nu = 3\nw = 2\n");
  NodeId V = findAssign(P.G, "v"), U = findAssign(P.G, "u"),
         W = findAssign(P.G, "w");
  DataflowSpec Spec;
  Spec.UniverseSize = 1;
  Spec.Gen.assign(P.G.size(), BitVector(1));
  Spec.Kill.assign(P.G.size(), BitVector(1));
  Spec.Gen[V].set(0u);
  Spec.Kill[U].set(0u);
  DataflowResult R = solveDataflow(*P.Ifg, Spec);
  EXPECT_TRUE(R.In[U].test(0));
  EXPECT_FALSE(R.Out[U].test(0));
  EXPECT_FALSE(R.In[W].test(0));
}

TEST(DataflowEngine, AnyVersusAllOnBranch) {
  Pipeline P = Pipeline::fromSource(R"(
if (c > 0) then
  v = 1
else
  u = 3
endif
w = 2
)");
  NodeId V = findAssign(P.G, "v"), W = findAssign(P.G, "w");
  DataflowSpec Spec;
  Spec.UniverseSize = 1;
  Spec.Gen.assign(P.G.size(), BitVector(1));
  Spec.Gen[V].set(0u); // Generated on the then arm only.
  Spec.Meet = Confluence::Any;
  DataflowResult May = solveDataflow(*P.Ifg, Spec);
  EXPECT_TRUE(May.In[W].test(0)) << "some-path fact lost at the merge";
  Spec.Meet = Confluence::All;
  DataflowResult Must = solveDataflow(*P.Ifg, Spec);
  EXPECT_FALSE(Must.In[W].test(0)) << "one-armed fact survived an all-paths merge";
}

TEST(DataflowEngine, BackwardFlowsAgainstEdges) {
  Pipeline P = Pipeline::fromSource("v = 1\nw = 2\n");
  NodeId V = findAssign(P.G, "v"), W = findAssign(P.G, "w");
  DataflowSpec Spec;
  Spec.Direction = FlowDirection::Backward;
  Spec.UniverseSize = 1;
  Spec.Gen.assign(P.G.size(), BitVector(1));
  Spec.Gen[W].set(0u);
  DataflowResult R = solveDataflow(*P.Ifg, Spec);
  // Backward flow orientation: Out is the value at the node's entry.
  EXPECT_TRUE(R.Out[W].test(0));
  EXPECT_TRUE(R.In[V].test(0)) << "demand did not flow W -> V";
  EXPECT_TRUE(R.Out[V].test(0));
}

TEST(DataflowEngine, BoundaryPinsNoInflowNodes) {
  Pipeline P = Pipeline::fromSource("v = 1\n");
  DataflowSpec Spec;
  Spec.UniverseSize = 2;
  Spec.Boundary = BitVector(2);
  Spec.Boundary.set(1u);
  DataflowResult R = solveDataflow(*P.Ifg, Spec);
  EXPECT_TRUE(R.In[P.Ifg->root()].test(1));
  EXPECT_TRUE(R.Out[findAssign(P.G, "v")].test(1))
      << "boundary value did not flow through";
}

TEST(DataflowEngine, StatsReflectTheSolve) {
  Pipeline P = Pipeline::fromSource(fig11Source());
  DataflowSpec Spec;
  Spec.UniverseSize = 1;
  DataflowResult R = solveDataflow(*P.Ifg, Spec);
  EXPECT_GE(R.Stats.Iterations, 1u);
  EXPECT_GE(R.Stats.NodeVisits, P.Ifg->size());
  EXPECT_GE(R.Stats.EdgeEvaluations, 1u);
}

TEST(DataflowEngine, WorklistPeakTracksPendingNodes) {
  Pipeline P = Pipeline::fromSource(fig11Source());
  DataflowSpec Spec;
  Spec.UniverseSize = 1;
  Spec.Gen.assign(P.G.size(), BitVector(1));
  Spec.Gen[P.Ifg->root()].set(0u);
  DataflowResult W = solveDataflow(*P.Ifg, Spec, SolveMode::Worklist);
  // The worklist is seeded with every node, so the peak is at least the
  // graph size; round-robin sweeps keep no worklist at all.
  EXPECT_GE(W.Stats.WorklistPeak, P.Ifg->size());
  DataflowResult R = solveDataflow(*P.Ifg, Spec, SolveMode::RoundRobin);
  EXPECT_EQ(R.Stats.WorklistPeak, 0u);
  EXPECT_EQ(W.In, R.In);
  EXPECT_EQ(W.Out, R.Out);
}

TEST(DataflowEngine, RoundRobinSupportsCrossNodeEdgeTransfers) {
  // An edge transfer that reads a node other than the edge source:
  // every edge value additionally carries U's out-value. Only
  // RoundRobin is documented to converge correctly for these.
  Pipeline P = Pipeline::fromSource("v = 1\nu = 3\nw = 2\n");
  NodeId V = findAssign(P.G, "v"), U = findAssign(P.G, "u"),
         W = findAssign(P.G, "w");
  DataflowSpec Spec;
  Spec.UniverseSize = 2;
  Spec.Gen.assign(P.G.size(), BitVector(2));
  Spec.Gen[V].set(0u);
  Spec.Gen[U].set(1u);
  Spec.EdgeTransfer = [U](const IfgEdge &E,
                          const std::vector<BitVector> &NodeOut) {
    BitVector Val = NodeOut[E.Src];
    Val |= NodeOut[U];
    return Val;
  };
  DataflowResult R = solveDataflow(*P.Ifg, Spec, SolveMode::RoundRobin);
  // U's fact rides every edge, including the ones upstream of U itself:
  // the edge into V already carries bit 1 even though U is not V's
  // predecessor.
  EXPECT_TRUE(R.In[V].test(1)) << "cross-node edge transfer not applied";
  EXPECT_TRUE(R.In[W].test(0));
  EXPECT_TRUE(R.In[W].test(1));
  // The fixed point satisfies the edge equation at every flow edge.
  for (NodeId N = 0; N != P.Ifg->size(); ++N) {
    for (const IfgEdge &E : P.Ifg->succs(N)) {
      if (E.Type == EdgeType::Synthetic)
        continue;
      BitVector Val = R.Out[E.Src];
      Val |= R.Out[U];
      BitVector Missing = Val;
      Missing.reset(R.In[E.Dst]);
      EXPECT_FALSE(Missing.any())
          << "edge " << E.Src << "->" << E.Dst << " value not merged";
    }
  }
}

TEST(DataflowEngine, AllConfluenceBoundaryDecidesMergePoints) {
  // All-paths confluence with a pinned boundary: the boundary fact
  // survives a branch merge only while no arm kills it, in both solve
  // modes identically.
  Pipeline P = Pipeline::fromSource(R"(
if (c > 0) then
  v = 1
else
  u = 3
endif
w = 2
)");
  NodeId V = findAssign(P.G, "v"), W = findAssign(P.G, "w");
  DataflowSpec Spec;
  Spec.Meet = Confluence::All;
  Spec.UniverseSize = 1;
  Spec.Boundary = BitVector(1, true);
  for (SolveMode Mode : {SolveMode::Worklist, SolveMode::RoundRobin}) {
    DataflowResult R = solveDataflow(*P.Ifg, Spec, Mode);
    EXPECT_TRUE(R.In[W].test(0))
        << "boundary fact lost on a kill-free all-paths merge";
  }
  Spec.Kill.assign(P.G.size(), BitVector(1));
  Spec.Kill[V].set(0u);
  for (SolveMode Mode : {SolveMode::Worklist, SolveMode::RoundRobin}) {
    DataflowResult R = solveDataflow(*P.Ifg, Spec, Mode);
    EXPECT_FALSE(R.In[W].test(0))
        << "fact killed on one arm survived an all-paths merge";
    EXPECT_TRUE(R.In[V].test(0)) << "boundary did not reach the arm";
  }
}

TEST(DataflowEngine, WorklistMatchesRoundRobinOnGntSpecs) {
  for (unsigned Seed = 1; Seed != 11; ++Seed) {
    GenConfig C;
    C.Seed = Seed;
    C.TargetStmts = 30;
    C.GotoProb = 0.1;
    Program Prog = generateRandomProgram(C);
    CfgBuildResult CR = buildCfg(Prog);
    ASSERT_TRUE(CR.success());
    auto IR = IntervalFlowGraph::build(CR.G);
    ASSERT_TRUE(IR.success());
    GntRun Run = runGiveNTake(*IR.Ifg, checkerProblem(CR.G, Direction::Before));
    for (Urgency U : {Urgency::Eager, Urgency::Lazy}) {
      for (DataflowSpec Spec :
           {makeAnticipabilitySpec(Run), makeProductionLivenessSpec(Run, U),
            makeStealReachabilitySpec(Run, U)}) {
        DataflowResult A = solveDataflow(Run.OrientedIfg, Spec,
                                         SolveMode::Worklist);
        DataflowResult B = solveDataflow(Run.OrientedIfg, Spec,
                                         SolveMode::RoundRobin);
        EXPECT_EQ(A.In, B.In) << "seed " << Seed;
        EXPECT_EQ(A.Out, B.Out) << "seed " << Seed;
      }
    }
  }
}

TEST(DataflowEngine, AvailabilityCoversEveryConsumer) {
  // C3 from the engine's side: with a valid placement, must-availability
  // at each node covers everything consumed there.
  Pipeline P = Pipeline::fromSource(fig11Source());
  GntRun Run = runGiveNTake(*P.Ifg, checkerProblem(P.G, Direction::Before));
  for (Urgency U : {Urgency::Eager, Urgency::Lazy}) {
    DataflowResult R = solveDataflow(
        Run.OrientedIfg, makeAvailabilitySpec(Run, U), SolveMode::RoundRobin);
    for (NodeId Node = 0; Node != Run.OrientedIfg.size(); ++Node) {
      BitVector Missing = Run.OrientedProblem.TakeInit[Node];
      Missing.reset(R.Out[Node]);
      EXPECT_FALSE(Missing.any())
          << "node " << Node << " consumes an unavailable item";
    }
  }
}

TEST(ReferenceSolver, ConvergesAndMatchesEliminationOnPaperFigures) {
  for (const char *Src :
       {fig11Source(), "do i = 1, n\nv = i\nenddo\nw = 2\n",
        "if (c > 0) then\nv = 1\nendif\nw = 2\n"}) {
    Pipeline P = Pipeline::fromSource(Src);
    for (Direction Dir : {Direction::Before, Direction::After}) {
      GntRun Run = runGiveNTake(*P.Ifg, checkerProblem(P.G, Dir));
      ReferenceResult Ref =
          solveGiveNTakeIterative(Run.OrientedIfg, Run.OrientedProblem);
      ASSERT_TRUE(Ref.Converged) << Src;
      EXPECT_GE(Ref.Sweeps, 2u) << "fixed point cannot be verified in one sweep";
      EXPECT_EQ(Ref.Result.Take, Run.Result.Take) << Src;
      EXPECT_EQ(Ref.Result.TakenIn, Run.Result.TakenIn) << Src;
      EXPECT_EQ(Ref.Result.Steal, Run.Result.Steal) << Src;
      EXPECT_EQ(Ref.Result.Give, Run.Result.Give) << Src;
      EXPECT_EQ(Ref.Result.Eager.ResIn, Run.Result.Eager.ResIn) << Src;
      EXPECT_EQ(Ref.Result.Eager.ResOut, Run.Result.Eager.ResOut) << Src;
      EXPECT_EQ(Ref.Result.Lazy.ResIn, Run.Result.Lazy.ResIn) << Src;
      EXPECT_EQ(Ref.Result.Lazy.ResOut, Run.Result.Lazy.ResOut) << Src;
    }
  }
}

TEST(ReferenceSolver, RespectsSweepBudget) {
  Pipeline P = Pipeline::fromSource(fig11Source());
  GntRun Run = runGiveNTake(*P.Ifg, checkerProblem(P.G, Direction::Before));
  ReferenceResult Ref = solveGiveNTakeIterative(Run.OrientedIfg,
                                                Run.OrientedProblem,
                                                /*MaxSweeps=*/1);
  EXPECT_EQ(Ref.Sweeps, 1u);
  EXPECT_FALSE(Ref.Converged);
}
