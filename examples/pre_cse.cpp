//===- examples/pre_cse.cpp - Classical PRE via GIVE-N-TAKE -----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's generality claim (Sections 1 and 6): classical partial
// redundancy elimination is "a LAZY, BEFORE problem" of the same
// framework that places communication. This example runs common
// subexpression elimination and loop-invariant code motion on a scalar
// program — including the hoist out of a potentially zero-trip DO loop
// that classical PRE (e.g. lazy code motion) must forgo.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "frontend/Parser.h"
#include "interval/IntervalFlowGraph.h"
#include "pre/ExprPre.h"

#include <cstdio>

using namespace gnt;

int main() {
  const char *Source = R"(
array u, v
c = n * 8
do i = 1, m
  u(i) = n * 8 + i
  v(i) = n * 8 + i
enddo
if (t(n)) then
  w = n * 8
else
  w = c + 1
endif
z = c + 1
)";

  std::printf("=== Input program ===\n%s\n", Source);

  ParseResult Parsed = parseProgram(Source);
  CfgBuildResult CfgRes = buildCfg(Parsed.Prog);
  auto IfgRes = IntervalFlowGraph::build(CfgRes.G);
  if (!Parsed.success() || !CfgRes.success() || !IfgRes.success()) {
    std::fprintf(stderr, "pipeline failed\n");
    return 1;
  }

  ExprPreResult Pre = runExprPre(Parsed.Prog, CfgRes.G, *IfgRes.Ifg);

  std::printf("=== With temporaries placed (LAZY solution) ===\n%s\n",
              Pre.annotate(Parsed.Prog).c_str());

  std::printf("=== Expression items ===\n");
  for (unsigned I = 0; I != Pre.Exprs.size(); ++I)
    std::printf("t%-3u %-20s  %u occurrence(s)\n", I, Pre.Exprs[I].c_str(),
                Pre.Occurrences[I]);

  std::printf("\n%zu insertions, %zu redundant occurrences eliminated\n",
              Pre.Insertions.size(), Pre.Redundant.size());

  GntVerifyResult V = Pre.verify();
  std::printf("verification: %s\n",
              V.ok() ? "C1/C3/O1 hold" : V.firstViolation().c_str());

  // Highlights to look for in the output above:
  //  - `n * 8` is computed once at the top and reused by the assignment
  //    to c, by both loop statements (hoisted above the potentially
  //    zero-trip i loop), and by the then-branch of the conditional;
  //  - `c + 1` is computed once and shared by the else branch and the
  //    final statement (partial redundancy across the join);
  //  - `n * 8 + i` varies with i, so its temporary stays inside the loop
  //    but is shared by the two statements of the body.
  return V.ok() ? 0 : 1;
}
