//===- examples/irregular_mesh.cpp - Irregular gather/scatter kernel --------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The workload class that motivated GIVE-N-TAKE inside the Fortran D
// compiler (the paper's [HKK+92]/[Han93] heritage): an unstructured-mesh
// sweep. Each edge e gathers values from its two endpoint nodes through
// indirection arrays (left(e), right(e)) and scatter-adds a flux back —
// a reduction. The paper's machinery shows up all at once:
//
//  - indirect sections x(left(1:e)) value-numbered across loops,
//  - one vectorized gather, issued early enough to hide latency behind
//    the purely local geometry loop,
//  - scatter-add write-backs as Write_Send[+]/Write_Recv[+] reductions,
//  - the write-backs ordered before the next iteration's gather.
//
//===----------------------------------------------------------------------===//

#include "baseline/Baselines.h"
#include "cfg/CfgBuilder.h"
#include "comm/CommGen.h"
#include "frontend/Parser.h"
#include "interval/IntervalFlowGraph.h"
#include "sim/TraceSimulator.h"

#include <cstdio>

using namespace gnt;

int main() {
  // x: node values; flux: node accumulators (both distributed).
  // left/right: edge endpoint indices; len/tmp: local per-edge data.
  const char *Source = R"(
distribute x, flux
array left, right, len, tmp
do e = 1, edges
  len(e) = left(e) - right(e)
  tmp(e) = 3 * len(e)
enddo
do e = 1, edges
  flux(left(e)) = flux(left(e)) + x(right(e))
enddo
do e = 1, edges
  flux(right(e)) = flux(right(e)) + x(left(e))
enddo
)";

  std::printf("=== Irregular mesh sweep (input) ===\n%s\n", Source);

  ParseResult Parsed = parseProgram(Source);
  CfgBuildResult CfgRes = buildCfg(Parsed.Prog);
  auto IfgRes = IntervalFlowGraph::build(CfgRes.G);
  if (!Parsed.success() || !CfgRes.success() || !IfgRes.success()) {
    std::fprintf(stderr, "pipeline failed\n");
    return 1;
  }

  CommPlan Plan = generateComm(Parsed.Prog, CfgRes.G, *IfgRes.Ifg);
  std::printf("=== GIVE-N-TAKE placement ===\n%s\n",
              Plan.annotate(Parsed.Prog).c_str());

  GntVerifyResult V = Plan.verify();
  std::printf("verification: %s\n\n",
              V.ok() ? "C1/C3/O1 hold" : V.firstViolation().c_str());

  CommPlan Naive = naivePlacement(Parsed.Prog, CfgRes.G, *IfgRes.Ifg);
  std::printf("=== Execution (edges = 5000, latency = 400) ===\n");
  std::printf("  %-12s | %9s | %9s | %10s | %10s\n", "strategy", "messages",
              "volume", "exposed", "total");
  for (auto [Name, P] :
       {std::pair<const char *, const CommPlan *>{"naive", &Naive},
        {"give-n-take", &Plan}}) {
    SimConfig Config;
    Config.Params["edges"] = 5000;
    Config.Latency = 400.0;
    SimStats S = simulate(Parsed.Prog, *P, Config);
    std::printf("  %-12s | %9llu | %9llu | %10.0f | %10.0f  %s\n", Name,
                S.Messages, S.Volume, S.ExposedLatency, S.totalTime(Config),
                S.ok() ? "" : S.Errors.front().c_str());
  }
  return V.ok() ? 0 : 1;
}
