//===- examples/latency_hiding.cpp - The paper's Figure 11/14 ---------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's running example end to end: the Figure 11
// program — a loop with a conditional jump out of it, followed by an
// independent loop that GIVE-N-TAKE uses for latency hiding — annotated
// as in Figure 14, then executed under several machine latencies and
// compared with atomic (fused send/receive) and naive placement.
//
//===----------------------------------------------------------------------===//

#include "baseline/Baselines.h"
#include "cfg/CfgBuilder.h"
#include "comm/CommGen.h"
#include "frontend/Parser.h"
#include "interval/IntervalFlowGraph.h"
#include "sim/TraceSimulator.h"

#include <cstdio>

using namespace gnt;

namespace {

const char *Fig11 = R"(
distribute x, y
array a, b, w, z
do i = 1, n
  y(a(i)) = 0
  if (test(i)) goto 77
enddo
do j = 1, n
  w(j) = 0
enddo
77 do k = 1, n
  z(k) = x(k + 10) + y(b(k))
enddo
)";

struct Pipeline {
  Program Prog;
  Cfg G;
  std::optional<IntervalFlowGraph> Ifg;
};

bool build(Pipeline &P) {
  ParseResult Parsed = parseProgram(Fig11);
  if (!Parsed.success())
    return false;
  P.Prog = std::move(Parsed.Prog);
  CfgBuildResult CfgRes = buildCfg(P.Prog);
  if (!CfgRes.success())
    return false;
  P.G = std::move(CfgRes.G);
  auto IfgRes = IntervalFlowGraph::build(P.G);
  if (!IfgRes.success())
    return false;
  P.Ifg = std::move(*IfgRes.Ifg);
  return true;
}

void report(const char *Name, const SimStats &S, const SimConfig &C) {
  std::printf("  %-12s msgs %4llu  volume %5llu  exposed %7.0f  total %8.0f"
              "  %s\n",
              Name, S.Messages, S.Volume, S.ExposedLatency, S.totalTime(C),
              S.ok() ? "" : S.Errors.front().c_str());
}

} // namespace

int main() {
  Pipeline P;
  if (!build(P)) {
    std::fprintf(stderr, "pipeline failed\n");
    return 1;
  }

  CommPlan Gnt = generateComm(P.Prog, P.G, *P.Ifg);
  std::printf("=== Figure 14: the annotated program ===\n%s\n",
              Gnt.annotate(P.Prog).c_str());

  CommOptions AtomicOpts;
  AtomicOpts.Atomic = true;
  CommPlan Atomic = generateComm(P.Prog, P.G, *P.Ifg, AtomicOpts);
  CommPlan Naive = naivePlacement(P.Prog, P.G, *P.Ifg);

  // Sweep the machine latency: split send/receive hides almost all of it
  // behind the i and j loops; atomic placement pays it in full; naive
  // placement pays it once per loop iteration.
  std::printf("=== Latency sweep (n = 200, both goto outcomes averaged)"
              " ===\n");
  for (double Latency : {25.0, 100.0, 400.0, 1600.0}) {
    std::printf("latency %.0f:\n", Latency);
    for (auto [Name, Plan] :
         {std::pair<const char *, const CommPlan *>{"give-n-take", &Gnt},
          {"atomic", &Atomic},
          {"naive", &Naive}}) {
      SimStats Sum;
      SimConfig Config;
      Config.Params["n"] = 200;
      Config.Latency = Latency;
      for (unsigned Seed = 1; Seed <= 4; ++Seed) {
        Config.BranchSeed = Seed;
        SimStats S = simulate(P.Prog, *Plan, Config);
        Sum.Messages += S.Messages;
        Sum.Volume += S.Volume;
        Sum.ExposedLatency += S.ExposedLatency;
        Sum.Work += S.Work;
        if (!S.ok())
          Sum.Errors = S.Errors;
      }
      Sum.Messages /= 4;
      Sum.Volume /= 4;
      Sum.ExposedLatency /= 4;
      Sum.Work /= 4;
      report(Name, Sum, Config);
    }
  }
  return 0;
}
