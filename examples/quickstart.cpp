//===- examples/quickstart.cpp - Five-minute tour ---------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: parse an FMini program with distributed arrays, run
// GIVE-N-TAKE communication generation, print the annotated program, and
// execute it under the distributed-memory cost model.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "comm/CommGen.h"
#include "frontend/Parser.h"
#include "cfg/CfgBuilder.h"
#include "interval/IntervalFlowGraph.h"
#include "sim/TraceSimulator.h"

#include <cstdio>

using namespace gnt;

int main() {
  // A data-parallel kernel: x is distributed across processors; every
  // reference to it needs communication. The loop-invariant section
  // x(1:n) is consumed inside a potentially zero-trip loop.
  const char *Source = R"(
distribute x
array u, w
do i = 1, n
  u(i) = 2 * i
enddo
do j = 1, n
  w(j) = x(j) + u(j)
enddo
)";

  std::printf("=== Input program ===\n%s\n", Source);

  // Front end: parse, build the CFG, build the interval flow graph.
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.success()) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Errors.front().c_str());
    return 1;
  }
  CfgBuildResult CfgRes = buildCfg(Parsed.Prog);
  if (!CfgRes.success()) {
    std::fprintf(stderr, "cfg error: %s\n", CfgRes.Errors.front().c_str());
    return 1;
  }
  auto IfgRes = IntervalFlowGraph::build(CfgRes.G);
  if (!IfgRes.success()) {
    std::fprintf(stderr, "interval error: %s\n",
                 IfgRes.Errors.front().c_str());
    return 1;
  }

  // The GIVE-N-TAKE framework: READs are a BEFORE problem (Read_Send =
  // EAGER solution, Read_Recv = LAZY solution), WRITEs an AFTER problem.
  CommPlan Plan = generateComm(Parsed.Prog, CfgRes.G, *IfgRes.Ifg);

  std::printf("=== Annotated program ===\n%s\n",
              Plan.annotate(Parsed.Prog).c_str());

  // The placement is verified against the paper's correctness criteria:
  // C1 balance, C3 sufficiency, O1 no re-production.
  GntVerifyResult V = Plan.verify();
  std::printf("=== Verification ===\n%s\n",
              V.ok() ? "C1/C3/O1 hold" : V.firstViolation().c_str());

  // Execute under an alpha/beta message cost model. The Read_Send issued
  // before the first loop overlaps its latency with the u(i) loop.
  SimConfig Config;
  Config.Params["n"] = 100;
  Config.Latency = 80.0;
  SimStats Stats = simulate(Parsed.Prog, Plan, Config);

  std::printf("=== Simulated execution (n = 100, latency = 80) ===\n");
  std::printf("messages:          %llu\n", Stats.Messages);
  std::printf("elements moved:    %llu\n", Stats.Volume);
  std::printf("local work:        %.0f\n", Stats.Work);
  std::printf("exposed latency:   %.0f  (hidden behind the u(i) loop)\n",
              Stats.ExposedLatency);
  std::printf("total time:        %.0f\n", Stats.totalTime(Config));
  return Stats.ok() && V.ok() ? 0 : 1;
}
