//===- examples/read_write.cpp - WRITE generation (Figure 3) ----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's Figure 3: without the owner-computes rule, processors may
// define non-owned data locally. Definitions then (a) need a WRITE — an
// AFTER problem: produce after consuming — and (b) make later local reads
// of the same section come "for free". GIVE-N-TAKE solves both from the
// same equations, with Write_Send as the LAZY and Write_Recv as the EAGER
// solution of the AFTER problem.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "comm/CommGen.h"
#include "frontend/Parser.h"
#include "interval/IntervalFlowGraph.h"
#include "sim/TraceSimulator.h"

#include <cstdio>

using namespace gnt;

int main() {
  const char *Fig3 = R"(
distribute x
array a, y, w
if (test) then
  do i = 1, n
    x(a(i)) = 1
  enddo
  do j = 1, n
    y(j) = x(j + 5)
  enddo
endif
do k = 1, n
  w(k) = x(k + 5)
enddo
)";

  std::printf("=== Input (paper Figure 3, left) ===\n%s\n", Fig3);

  ParseResult Parsed = parseProgram(Fig3);
  CfgBuildResult CfgRes = buildCfg(Parsed.Prog);
  auto IfgRes = IntervalFlowGraph::build(CfgRes.G);
  if (!Parsed.success() || !CfgRes.success() || !IfgRes.success()) {
    std::fprintf(stderr, "pipeline failed\n");
    return 1;
  }

  // Default: no owner-computes. The indirect definition x(a(i)) must be
  // written back to the owners before any processor re-fetches
  // overlapping data; the read of x(6:n+5) is placed once per path,
  // including the synthesized else branch (Figure 3, right).
  CommPlan Plan = generateComm(Parsed.Prog, CfgRes.G, *IfgRes.Ifg);
  std::printf("=== Annotated (Figure 3, right) ===\n%s\n",
              Plan.annotate(Parsed.Prog).c_str());

  // Owner-computes: definitions happen at the owners, so no WRITEs are
  // generated and definitions no longer satisfy reads for free.
  CommOptions Owner;
  Owner.OwnerComputes = true;
  CommPlan OwnerPlan = generateComm(Parsed.Prog, CfgRes.G, *IfgRes.Ifg, Owner);
  std::printf("=== Same program under the owner-computes rule ===\n%s\n",
              OwnerPlan.annotate(Parsed.Prog).c_str());

  // Execute both branches of the conditional.
  for (long long Test : {1, 0}) {
    SimConfig Config;
    Config.Params["n"] = 64;
    Config.Params["test"] = Test;
    SimStats S = simulate(Parsed.Prog, Plan, Config);
    std::printf("test=%lld: %llu messages, %llu elements, %s\n", Test,
                S.Messages, S.Volume,
                S.ok() ? "C1/C3 hold dynamically" : S.Errors.front().c_str());
  }
  return 0;
}
