//===- gen/RandomProgram.cpp - Seeded random FMini programs -----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/RandomProgram.h"

#include "ir/AstBuilder.h"
#include "support/Support.h"

#include <random>

using namespace gnt;
using namespace gnt::build;

namespace {

class Generator {
public:
  Generator(const GenConfig &C) : C(C), Rng(C.Seed) {}

  Program run() {
    Program P;
    for (unsigned I = 0; I != C.NumDistributed; ++I)
      P.declareArray("x" + itostr(I), /*Distributed=*/true);
    for (unsigned I = 0; I != C.NumIndexArrays; ++I)
      P.declareArray("a" + itostr(I), /*Distributed=*/false);
    P.declareArray("w", /*Distributed=*/false);

    StmtsLeft = C.TargetStmts;
    StmtList Body;
    while (StmtsLeft > 0) {
      // Top level: loops may allocate an exit label for gotos; the
      // labeled continue lands right after the loop.
      genStmtInto(Body, /*Depth=*/0, /*ExitLabel=*/0);
    }
    P.getBody() = std::move(Body);
    return P;
  }

private:
  unsigned pick(unsigned N) { return static_cast<unsigned>(Rng() % N); }

  /// One draw against probability \p P, computed with portable integer
  /// arithmetic. std::uniform_real_distribution is implementation
  /// defined (libstdc++ and libc++ consume the engine differently), so
  /// using it would break the "same seed, same program text on every
  /// machine" guarantee GeneratorTest pins. The top 24 engine bits give
  /// an exact dyadic rational in [0, 1).
  bool chance(double P) {
    return (Rng() >> 8) * (1.0 / 16777216.0) < P;
  }

  std::string distArray() { return "x" + itostr(pick(C.NumDistributed)); }
  std::string indexArray() { return "a" + itostr(pick(C.NumIndexArrays)); }

  /// A subscript expression valid in the current loop context.
  ExprPtr genSubscript() {
    bool HasIdx = !LoopVars.empty();
    switch (pick(HasIdx ? 5u : 2u)) {
    case 0:
      return lit(1 + pick(8)); // Constant element.
    case 1: { // Symbolic offset from the parameter.
      return sub(var("n"), lit(pick(4)));
    }
    case 2: // idx + c
      return add(var(LoopVars[pick(LoopVars.size())]), lit(pick(10)));
    case 3: // strided: 2*idx
      return bin(BinaryExpr::Op::Mul, lit(2),
                 var(LoopVars[pick(LoopVars.size())]));
    default: // indirect: a_m(idx)
      return aref(indexArray(), var(LoopVars[pick(LoopVars.size())]));
    }
  }

  ExprPtr genRhs() {
    ExprPtr E = chance(0.7) ? aref(distArray(), genSubscript())
                            : static_cast<ExprPtr>(lit(pick(100)));
    unsigned Extra = pick(2);
    for (unsigned I = 0; I != Extra; ++I)
      E = add(std::move(E), chance(0.6)
                                ? aref(distArray(), genSubscript())
                                : static_cast<ExprPtr>(lit(pick(100))));
    return E;
  }

  ExprPtr genCond() {
    if (!LoopVars.empty() && chance(0.5)) {
      std::vector<ExprPtr> Args;
      Args.push_back(var(LoopVars[pick(LoopVars.size())]));
      return call("t", std::move(Args)); // Opaque: random at simulation.
    }
    std::vector<ExprPtr> Args;
    Args.push_back(var("n"));
    return call("t", std::move(Args));
  }

  void genStmtInto(StmtList &Out, unsigned Depth, unsigned ExitLabel) {
    if (StmtsLeft == 0)
      return;
    --StmtsLeft;

    unsigned Kind = pick(10);
    // Goto out of the loop nest.
    if (ExitLabel != 0 && !LoopVars.empty() && chance(C.GotoProb)) {
      Out.push_back(ifGoto(genCond(), ExitLabel));
      return;
    }
    if (Kind < 4 || Depth >= C.MaxDepth) { // Assignment.
      if (chance(C.DefProb))
        Out.push_back(assign(aref(distArray(), genSubscript()), genRhs()));
      else
        Out.push_back(assign(aref("w", genSubscript()), genRhs()));
      return;
    }
    if (Kind < 7) { // DO loop.
      std::string Idx = "i" + itostr(LoopCounter++);
      ExprPtr Lo = lit(1);
      ExprPtr Hi;
      if (chance(C.ConstantBoundProb)) {
        // Constant bounds, sometimes provably zero-trip.
        long long H = chance(0.3) ? 0 : 1 + pick(6);
        Hi = lit(H);
      } else {
        Hi = var("n");
      }
      unsigned Label = 0;
      if (Depth == 0) {
        Label = NextLabel;
        NextLabel += 10;
      }
      LoopVars.push_back(Idx);
      StmtList Body;
      unsigned BodyStmts = 1 + pick(3);
      for (unsigned I = 0; I != BodyStmts && StmtsLeft > 0; ++I)
        genStmtInto(Body, Depth + 1, Label ? Label : ExitLabel);
      LoopVars.pop_back();
      if (Body.empty())
        Body.push_back(assign(aref("w", lit(1)), lit(0)));
      Out.push_back(doLoop(Idx, std::move(Lo), std::move(Hi),
                           std::move(Body)));
      if (Label)
        Out.push_back(labeled(Label, cont()));
      return;
    }
    // IF / IF-ELSE.
    StmtList Then, Else;
    unsigned ThenStmts = 1 + pick(2);
    for (unsigned I = 0; I != ThenStmts && StmtsLeft > 0; ++I)
      genStmtInto(Then, Depth + 1, ExitLabel);
    if (Then.empty())
      Then.push_back(assign(aref("w", lit(2)), lit(0)));
    if (chance(0.5)) {
      unsigned ElseStmts = 1 + pick(2);
      for (unsigned I = 0; I != ElseStmts && StmtsLeft > 0; ++I)
        genStmtInto(Else, Depth + 1, ExitLabel);
    }
    Out.push_back(ifThen(genCond(), std::move(Then), std::move(Else)));
  }

  const GenConfig &C;
  std::mt19937 Rng;
  unsigned StmtsLeft = 0;
  unsigned NextLabel = 10;
  unsigned LoopCounter = 0;
  std::vector<std::string> LoopVars;
};

} // namespace

Program gnt::generateRandomProgram(const GenConfig &Config) {
  Generator G(Config);
  return G.run();
}

GenConfig gnt::genConfigForBucket(unsigned Bucket, unsigned Seed) {
  GenConfig C;
  C.Seed = Seed;
  switch (Bucket % NumGenBuckets) {
  case 0: // Paper-sized default.
    break;
  case 1: // Goto-heavy: many jumps out of loop nests.
    C.GotoProb = 0.35;
    C.TargetStmts = 40;
    break;
  case 2: // Constant bounds dominate, including zero-trip loops.
    C.ConstantBoundProb = 0.85;
    C.TargetStmts = 35;
    break;
  case 3: // Wide item universe (multi-word bit rows).
    C.NumDistributed = 8;
    C.TargetStmts = 50;
    C.DefProb = 0.45;
    break;
  case 4: // Deep nesting.
    C.MaxDepth = 6;
    C.TargetStmts = 60;
    break;
  case 5: // Flat and wide: long straight-line runs.
    C.MaxDepth = 1;
    C.TargetStmts = 40;
    C.NumDistributed = 5;
    break;
  }
  return C;
}
