//===- gen/RandomProgram.h - Seeded random FMini programs -------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates seeded, well-formed FMini programs for property tests and
/// scaling benchmarks: nested DO loops (symbolic and constant bounds,
/// including guaranteed zero-trip ones), IF/ELSE, forward gotos jumping
/// out of loop nests, and reads/writes of distributed arrays with direct,
/// offset, strided and indirect subscripts. All generated programs parse,
/// build reducible CFGs, and terminate under simulation.
///
/// Reproducibility: generation is a pure function of GenConfig, using
/// only std::mt19937 raw draws (whose output sequence the standard
/// fully specifies) and portable integer arithmetic — never
/// distribution adaptors, whose results are implementation defined. The
/// same seed therefore yields the same program text on every machine
/// and standard library; GeneratorTest pins one golden program to catch
/// accidental stream changes.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_GEN_RANDOMPROGRAM_H
#define GNT_GEN_RANDOMPROGRAM_H

#include "ir/Ast.h"

namespace gnt {

/// Generator tuning.
struct GenConfig {
  unsigned Seed = 1;
  /// Approximate number of statements to generate.
  unsigned TargetStmts = 30;
  /// Maximum loop/branch nesting depth.
  unsigned MaxDepth = 4;
  /// Number of distributed arrays (x0, x1, ...).
  unsigned NumDistributed = 3;
  /// Number of local index arrays usable for indirect subscripts.
  unsigned NumIndexArrays = 2;
  /// Probability of a goto out of the enclosing loop nest.
  double GotoProb = 0.1;
  /// Probability that a generated loop has constant (possibly zero-trip)
  /// bounds instead of symbolic 1..n.
  double ConstantBoundProb = 0.3;
  /// Probability that an assignment defines a distributed array.
  double DefProb = 0.3;
};

/// Generates a program; deterministic in \p Config.Seed.
Program generateRandomProgram(const GenConfig &Config);

/// Number of structure buckets genConfigForBucket() distinguishes.
inline constexpr unsigned NumGenBuckets = 6;

/// Preset GenConfigs spanning qualitatively different program shapes:
/// 0 paper-sized default, 1 goto-heavy, 2 constant/zero-trip-bound
/// heavy, 3 wide item universe, 4 deeply nested, 5 flat and wide.
/// The fuzzer seeds its corpus across all buckets and GeneratorTest
/// pins one golden program per bucket family, so the exact knob values
/// here are load-bearing: changing them invalidates seed-derived
/// expectations just like changing the draw stream would.
GenConfig genConfigForBucket(unsigned Bucket, unsigned Seed);

} // namespace gnt

#endif // GNT_GEN_RANDOMPROGRAM_H
