//===- interval/LoopForest.h - Tarjan interval (loop) forest ----*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the Tarjan-interval structure of a reducible CFG: for every
/// loop header h, the interval T(h) is the set of nodes of the natural
/// loop of h excluding h itself (the paper's Section 3.3 definition —
/// nested, strongly connected regions entered through a unique header).
/// The intervals of a reducible graph form a forest; the CFG entry node
/// acts as ROOT, a pseudo-header for the entire program with LEVEL 0.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_INTERVAL_LOOPFOREST_H
#define GNT_INTERVAL_LOOPFOREST_H

#include "cfg/Cfg.h"
#include "cfg/Dominators.h"

#include <optional>
#include <string>
#include <vector>

namespace gnt {

/// Loop nesting structure of a reducible CFG.
class LoopForest {
public:
  /// Analyzes \p G. Returns std::nullopt (with messages in \p Errors) if
  /// the graph is irreducible — a retreating edge targets a node that does
  /// not dominate its source — or malformed (self loop).
  static std::optional<LoopForest> compute(const Cfg &G,
                                           const Dominators &Dom,
                                           std::vector<std::string> &Errors);

  /// True if \p N heads a loop (ROOT is *not* reported as a header here).
  bool isHeader(NodeId N) const { return !BackEdgeSources[N].empty(); }

  /// The innermost header whose interval contains \p N; the CFG entry
  /// (ROOT) for top-level nodes. Invalid for ROOT itself.
  NodeId parent(NodeId N) const { return Parent[N]; }

  /// Loop nesting depth: ROOT is 0, top-level nodes 1, and so on.
  unsigned level(NodeId N) const { return Level[N]; }

  /// True if \p N is a member of T(\p H) at any depth. Every node is a
  /// member of T(ROOT).
  bool contains(NodeId H, NodeId N) const;

  /// The sources of back (CYCLE) edges targeting header \p H.
  const std::vector<NodeId> &backEdgeSources(NodeId H) const {
    return BackEdgeSources[H];
  }

  NodeId root() const { return Root; }

private:
  NodeId Root = InvalidNode;
  std::vector<NodeId> Parent;
  std::vector<unsigned> Level;
  std::vector<std::vector<NodeId>> BackEdgeSources;
};

} // namespace gnt

#endif // GNT_INTERVAL_LOOPFOREST_H
