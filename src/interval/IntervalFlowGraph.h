//===- interval/IntervalFlowGraph.h - Paper Section 3.3 graph ---*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interval flow graph G = (N, E) of Section 3.3: a reducible CFG
/// whose edges are classified as ENTRY, CYCLE, JUMP or FORWARD, extended
/// with SYNTHETIC edges that project each JUMP edge onto the headers of
/// the intervals it leaves. Construction normalizes the CFG so that:
///
///  - every interval has exactly one CYCLE edge, whose source
///    (LASTCHILD) is a direct interval member with no other successors;
///  - every header has exactly one ENTRY successor (the entry child) —
///    stronger than the paper requires for BEFORE problems, but it makes
///    the reversed graph used for AFTER problems satisfy the unique-CYCLE
///    rule mechanically (Section 5.3);
///  - no critical edges remain (synthetic nodes are inserted).
///
/// The CFG entry node acts as ROOT, a level-0 header for the whole
/// program. The class also provides the traversal machinery of Section
/// 3.4: a PREORDER numbering (FORWARD and DOWNWARD) and per-interval
/// forward-ordered children lists.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_INTERVAL_INTERVALFLOWGRAPH_H
#define GNT_INTERVAL_INTERVALFLOWGRAPH_H

#include "cfg/Cfg.h"

#include <optional>
#include <string>
#include <vector>

namespace gnt {

/// Edge classification of Section 3.3.
enum class EdgeType {
  Entry,     ///< Header into its interval.
  Cycle,     ///< Interval member back to its header.
  Jump,      ///< Out of a loop, not to the header.
  Forward,   ///< Within one interval (between siblings).
  Synthetic, ///< Header of a jumped-out-of interval to the jump sink.
};

/// A typed edge of the interval flow graph.
struct IfgEdge {
  NodeId Src = InvalidNode;
  NodeId Dst = InvalidNode;
  EdgeType Type = EdgeType::Forward;
};

struct IfgBuildResult;

/// The interval flow graph. Node ids are shared with the underlying Cfg.
class IntervalFlowGraph {
public:
  using BuildResult = IfgBuildResult;

  /// Builds the interval flow graph of \p G, normalizing \p G in place
  /// (latch/entry-child insertion and critical-edge splitting may add
  /// synthetic nodes). Fails on irreducible graphs.
  static BuildResult build(Cfg &G);

  unsigned size() const { return static_cast<unsigned>(Succs.size()); }
  NodeId root() const { return Root; }

  /// Loop nesting level; LEVEL(ROOT) = 0.
  unsigned level(NodeId N) const { return Level[N]; }

  /// Header of the immediately enclosing interval J(n); InvalidNode for
  /// ROOT.
  NodeId parent(NodeId N) const { return Parent[N]; }

  /// True for loop headers and for ROOT.
  bool isHeader(NodeId N) const { return !Children[N].empty() || N == Root; }

  /// LASTCHILD(h): the source of the unique CYCLE edge into \p H. For
  /// ROOT (which has no CYCLE edge) this is the program exit node.
  NodeId lastChild(NodeId H) const { return LastChild[H]; }

  /// HEADER(n): the source of the ENTRY edge into \p N, or InvalidNode.
  NodeId headerOf(NodeId N) const { return HeaderOf[N]; }

  /// CHILDREN(h) in FORWARD order (per-interval topological order).
  const std::vector<NodeId> &children(NodeId H) const { return Children[H]; }

  const std::vector<IfgEdge> &succs(NodeId N) const { return Succs[N]; }
  const std::vector<IfgEdge> &preds(NodeId N) const { return Preds[N]; }

  /// Nodes in PREORDER (FORWARD and DOWNWARD); ROOT first.
  const std::vector<NodeId> &preorder() const { return Preorder; }

  /// True if the graph contains any JUMP edge.
  bool hasJumpEdges() const { return !PoisonedHeaders.empty(); }

  /// Headers of every interval that some JUMP edge leaves. When solving
  /// an AFTER problem these intervals must not hoist production
  /// (Section 5.3); the problem driver seeds STEAL_init = TOP for them.
  const std::vector<NodeId> &jumpPoisonedHeaders() const {
    return PoisonedHeaders;
  }

  /// Returns the reversed view used for AFTER problems: same nodes, same
  /// interval structure (Section 5.3), edges reversed with ENTRY and
  /// CYCLE swapped.
  IntervalFlowGraph reversed() const;

  /// True for graphs produced by reversed().
  bool isReversed() const { return Reversed; }

  /// Renders nodes with their levels, interval memberships and typed
  /// edges; for debugging and the documentation.
  std::string describe(const Cfg &G) const;

private:
  void addEdge(NodeId Src, NodeId Dst, EdgeType Type) {
    Succs[Src].push_back({Src, Dst, Type});
    Preds[Dst].push_back({Src, Dst, Type});
  }

  void computePreorder();

  NodeId Root = InvalidNode;
  bool Reversed = false;
  std::vector<unsigned> Level;
  std::vector<NodeId> Parent;
  std::vector<NodeId> LastChild;
  std::vector<NodeId> HeaderOf;
  std::vector<std::vector<NodeId>> Children;
  std::vector<std::vector<IfgEdge>> Succs;
  std::vector<std::vector<IfgEdge>> Preds;
  std::vector<NodeId> Preorder;
  std::vector<NodeId> PoisonedHeaders;
};

/// Outcome of IntervalFlowGraph::build().
struct IfgBuildResult {
  std::optional<IntervalFlowGraph> Ifg;
  std::vector<std::string> Errors;

  bool success() const { return Ifg.has_value(); }
};

/// Spelled-out edge type name ("ENTRY", "CYCLE", ...).
const char *edgeTypeName(EdgeType T);

} // namespace gnt

#endif // GNT_INTERVAL_INTERVALFLOWGRAPH_H
