//===- interval/LoopForest.cpp - Tarjan interval (loop) forest --------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interval/LoopForest.h"

#include "support/Support.h"

#include <algorithm>

using namespace gnt;

std::optional<LoopForest> LoopForest::compute(const Cfg &G,
                                              const Dominators &Dom,
                                              std::vector<std::string> &Errors) {
  unsigned N = G.size();
  LoopForest F;
  F.Root = G.entry();
  F.Parent.assign(N, InvalidNode);
  F.Level.assign(N, 1);
  F.BackEdgeSources.assign(N, {});
  F.Level[F.Root] = 0;

  // Find retreating edges: an edge (m, h) where h is on the DFS stack when
  // m is visited. In a reducible graph every retreating edge is a back
  // edge, i.e. h dominates m.
  std::vector<char> State(N, 0); // 0 = unvisited, 1 = on stack, 2 = done.
  {
    std::vector<std::pair<NodeId, unsigned>> Stack;
    Stack.push_back({F.Root, 0});
    State[F.Root] = 1;
    while (!Stack.empty()) {
      auto &[Node, NextSucc] = Stack.back();
      const auto &Succs = G.node(Node).Succs;
      if (NextSucc < Succs.size()) {
        NodeId S = Succs[NextSucc++];
        if (State[S] == 0) {
          State[S] = 1;
          Stack.push_back({S, 0});
        } else if (State[S] == 1) {
          // Retreating edge Node -> S.
          if (S == Node) {
            Errors.push_back("self loop at node " + describeNode(G, Node));
            return std::nullopt;
          }
          if (!Dom.dominates(S, Node)) {
            Errors.push_back("irreducible control flow: retreating edge " +
                             describeNode(G, Node) + " -> " +
                             describeNode(G, S) +
                             " targets a non-dominator");
            return std::nullopt;
          }
          F.BackEdgeSources[S].push_back(Node);
        }
        continue;
      }
      State[Node] = 2;
      Stack.pop_back();
    }
  }

  // Natural loop membership per header: backward closure from the back
  // edge sources, stopping at the header.
  std::vector<NodeId> Headers;
  std::vector<std::vector<char>> Member(N); // Member[h][n], headers only.
  for (NodeId H = 0; H != N; ++H) {
    if (F.BackEdgeSources[H].empty())
      continue;
    Headers.push_back(H);
    Member[H].assign(N, 0);
    std::vector<NodeId> Work;
    for (NodeId Src : F.BackEdgeSources[H])
      if (!Member[H][Src]) {
        Member[H][Src] = 1;
        Work.push_back(Src);
      }
    while (!Work.empty()) {
      NodeId M = Work.back();
      Work.pop_back();
      if (M == H)
        continue;
      for (NodeId P : G.node(M).Preds)
        if (P != H && !Member[H][P]) {
          Member[H][P] = 1;
          Work.push_back(P);
        }
    }
    Member[H][H] = 0; // T(h) excludes its header.
  }

  // Loop sizes determine nesting (reducible loops are disjoint or nested).
  std::vector<unsigned> LoopSize(N, 0);
  for (NodeId H : Headers)
    LoopSize[H] = static_cast<unsigned>(
        std::count(Member[H].begin(), Member[H].end(), 1));

  // Innermost enclosing header per node = the smallest loop containing it.
  for (NodeId Node = 0; Node != N; ++Node) {
    if (Node == F.Root)
      continue;
    NodeId Best = F.Root;
    unsigned BestSize = ~0u;
    for (NodeId H : Headers) {
      if (!Member[H][Node])
        continue;
      if (LoopSize[H] < BestSize) {
        Best = H;
        BestSize = LoopSize[H];
      }
    }
    F.Parent[Node] = Best;
  }

  // Levels follow the parent chain. Parents of headers point to loops that
  // strictly contain them, so the chain is acyclic; resolve with memoized
  // walks.
  std::vector<char> LevelKnown(N, 0);
  LevelKnown[F.Root] = 1;
  for (NodeId Node = 0; Node != N; ++Node) {
    if (LevelKnown[Node])
      continue;
    std::vector<NodeId> Chain;
    NodeId Cur = Node;
    while (!LevelKnown[Cur]) {
      Chain.push_back(Cur);
      Cur = F.Parent[Cur];
      if (Cur == InvalidNode) {
        // Unreachable node; give it level 1 under ROOT.
        Cur = F.Root;
        break;
      }
    }
    unsigned L = F.Level[Cur];
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
      F.Level[*It] = ++L;
      LevelKnown[*It] = 1;
      if (F.Parent[*It] == InvalidNode)
        F.Parent[*It] = F.Root;
    }
  }

  return F;
}

bool LoopForest::contains(NodeId H, NodeId N) const {
  if (N == H || N == InvalidNode)
    return false;
  NodeId Cur = Parent[N];
  while (Cur != InvalidNode) {
    if (Cur == H)
      return true;
    if (Cur == Root)
      return H == Root;
    Cur = Parent[Cur];
  }
  return false;
}
