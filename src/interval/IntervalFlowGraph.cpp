//===- interval/IntervalFlowGraph.cpp - Paper Section 3.3 graph -------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interval/IntervalFlowGraph.h"

#include "interval/LoopForest.h"
#include "support/Support.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

using namespace gnt;

const char *gnt::edgeTypeName(EdgeType T) {
  switch (T) {
  case EdgeType::Entry:
    return "ENTRY";
  case EdgeType::Cycle:
    return "CYCLE";
  case EdgeType::Jump:
    return "JUMP";
  case EdgeType::Forward:
    return "FORWARD";
  case EdgeType::Synthetic:
    return "SYNTHETIC";
  }
  gntUnreachable("covered switch");
}

namespace {

/// Replaces the CFG edge From->To with From->Mid (keeping the successor
/// slot, so branch arms retain their meaning) without adding Mid->To.
void retargetEdge(Cfg &G, NodeId From, NodeId To, NodeId Mid) {
  auto &FS = G.node(From).Succs;
  auto It = std::find(FS.begin(), FS.end(), To);
  assert(It != FS.end() && "edge to retarget does not exist");
  *It = Mid;
  auto &TP = G.node(To).Preds;
  auto It2 = std::find(TP.begin(), TP.end(), From);
  assert(It2 != TP.end() && "edge to retarget does not exist");
  TP.erase(It2);
  G.node(Mid).Preds.push_back(From);
}

/// One normalization round; returns true if the CFG changed. Rounds are
/// alternated with loop forest recomputation until a fixed point.
bool normalizeOnce(Cfg &G, const LoopForest &Forest) {
  // (1) Unique latch: every interval needs exactly one CYCLE edge whose
  // source is a direct member with no other successors (Section 3.3/3.4).
  bool Changed = false;
  unsigned OldSize = G.size();
  for (NodeId H = 0; H != OldSize; ++H) {
    if (!Forest.isHeader(H))
      continue;
    const std::vector<NodeId> &Srcs = Forest.backEdgeSources(H);
    bool NeedLatch = Srcs.size() > 1;
    if (!NeedLatch) {
      NodeId M = Srcs.front();
      NeedLatch = Forest.parent(M) != H || G.node(M).Succs.size() != 1;
    }
    if (!NeedLatch)
      continue;
    NodeId X = G.addNode(NodeKind::LoopLatch);
    CfgNode &XN = G.node(X);
    XN.EmitStmt = G.node(H).EmitStmt;
    XN.Where = G.node(H).Kind == NodeKind::LoopHeader ? EmitWhere::BodyEnd
                                                      : EmitWhere::Before;
    for (NodeId M : Srcs)
      retargetEdge(G, M, H, X);
    G.addEdge(X, H);
    Changed = true;
  }
  if (Changed)
    return true;

  // (2) Unique entry child: a header may keep only one ENTRY successor so
  // that the reversed graph has a unique CYCLE edge per interval.
  for (NodeId H = 0; H != OldSize; ++H) {
    if (!Forest.isHeader(H))
      continue;
    std::vector<NodeId> EntrySuccs;
    for (NodeId C : G.node(H).Succs)
      if (Forest.parent(C) == H)
        EntrySuccs.push_back(C);
    if (EntrySuccs.size() <= 1)
      continue;
    NodeId X = G.addNode(NodeKind::Synthetic);
    CfgNode &XN = G.node(X);
    XN.EmitStmt = G.node(H).EmitStmt;
    // The pre-body node runs once per iteration, at the body top for DO
    // loops; goto-formed loop headers re-execute per iteration anyway.
    XN.Where = G.node(H).Kind == NodeKind::LoopHeader ? EmitWhere::BodyStart
                                                      : EmitWhere::After;
    for (NodeId C : EntrySuccs)
      retargetEdge(G, H, C, X);
    // Remove the duplicate H->X slots that retargeting created, keep one.
    auto &HS = G.node(H).Succs;
    bool KeptOne = false;
    for (auto It = HS.begin(); It != HS.end();) {
      if (*It == X && KeptOne) {
        It = HS.erase(It);
      } else {
        KeptOne |= *It == X;
        ++It;
      }
    }
    // Preds of X already contain H once per retarget; dedupe likewise.
    auto &XP = G.node(X).Preds;
    XP.clear();
    XP.push_back(H);
    for (NodeId C : EntrySuccs)
      G.node(X).Succs.push_back(C), G.node(C).Preds.push_back(X);
    Changed = true;
  }
  if (Changed)
    return true;

  // (3) No critical edges.
  return G.splitAllCriticalEdges() > 0;
}

} // namespace

IntervalFlowGraph::BuildResult IntervalFlowGraph::build(Cfg &G) {
  BuildResult R;

  std::optional<LoopForest> Forest;
  for (unsigned Iter = 0;; ++Iter) {
    if (Iter > 16) {
      R.Errors.push_back("interval normalization did not converge");
      return R;
    }
    Dominators Dom(G);
    Forest = LoopForest::compute(G, Dom, R.Errors);
    if (!Forest)
      return R;
    if (!normalizeOnce(G, *Forest))
      break;
  }

  unsigned N = G.size();
  IntervalFlowGraph Ifg;
  Ifg.Root = G.entry();
  Ifg.Level.resize(N);
  Ifg.Parent.resize(N);
  Ifg.LastChild.assign(N, InvalidNode);
  Ifg.HeaderOf.assign(N, InvalidNode);
  Ifg.Children.resize(N);
  Ifg.Succs.resize(N);
  Ifg.Preds.resize(N);

  for (NodeId Node = 0; Node != N; ++Node) {
    Ifg.Level[Node] = Forest->level(Node);
    Ifg.Parent[Node] = Node == Ifg.Root ? InvalidNode : Forest->parent(Node);
  }

  auto isHeaderOrRoot = [&](NodeId Node) {
    return Node == Ifg.Root || Forest->isHeader(Node);
  };

  // Classify every CFG edge (Section 3.3).
  std::set<NodeId> Poisoned;
  std::vector<IfgEdge> JumpEdges;
  for (NodeId M = 0; M != N; ++M) {
    for (NodeId Node : G.node(M).Succs) {
      EdgeType T;
      if (Ifg.Parent[M] == Ifg.Parent[Node]) {
        T = EdgeType::Forward;
      } else if (isHeaderOrRoot(M) && Ifg.Parent[Node] == M) {
        T = EdgeType::Entry;
        assert(Ifg.HeaderOf[Node] == InvalidNode &&
               "node has several ENTRY edges after normalization");
        Ifg.HeaderOf[Node] = M;
      } else if (Forest->isHeader(Node) && Forest->contains(Node, M)) {
        T = EdgeType::Cycle;
        assert(Ifg.LastChild[Node] == InvalidNode &&
               "interval has several CYCLE edges after normalization");
        Ifg.LastChild[Node] = M;
      } else {
        // A jump out of one or more loops: the target's interval must
        // enclose the source.
        if (!(Ifg.Parent[Node] == Ifg.Root ||
              Forest->contains(Ifg.Parent[Node], M))) {
          R.Errors.push_back("edge " + describeNode(G, M) + " -> " +
                             describeNode(G, Node) +
                             " enters a loop without passing its header");
          return R;
        }
        T = EdgeType::Jump;
        JumpEdges.push_back({M, Node, EdgeType::Jump});
      }
      Ifg.addEdge(M, Node, T);
    }
  }
  Ifg.LastChild[Ifg.Root] = G.exit();

  // SYNTHETIC edges: one per interval a JUMP edge leaves, from that
  // interval's header to the jump sink (Section 3.3).
  for (const IfgEdge &J : JumpEdges) {
    NodeId H = Ifg.Parent[J.Src];
    assert(Ifg.Level[J.Src] > Ifg.Level[J.Dst] && "jump must leave a loop");
    while (H != InvalidNode && H != Ifg.Parent[J.Dst]) {
      Ifg.addEdge(H, J.Dst, EdgeType::Synthetic);
      Poisoned.insert(H);
      H = Ifg.Parent[H];
    }
  }
  Ifg.PoisonedHeaders.assign(Poisoned.begin(), Poisoned.end());

  // CHILDREN(h) in FORWARD order: Kahn's algorithm over the sibling DAG
  // formed by FORWARD edges and same-level SYNTHETIC edges.
  {
    std::vector<std::vector<NodeId>> Members(N);
    for (NodeId Node = 0; Node != N; ++Node)
      if (Node != Ifg.Root)
        Members[Ifg.Parent[Node]].push_back(Node);

    std::vector<unsigned> Indeg(N, 0);
    for (NodeId M = 0; M != N; ++M)
      for (const IfgEdge &E : Ifg.Succs[M])
        if ((E.Type == EdgeType::Forward || E.Type == EdgeType::Synthetic) &&
            Ifg.Parent[E.Src] == Ifg.Parent[E.Dst])
          ++Indeg[E.Dst];

    for (NodeId H = 0; H != N; ++H) {
      if (Members[H].empty())
        continue;
      std::set<NodeId> Ready;
      for (NodeId C : Members[H])
        if (Indeg[C] == 0)
          Ready.insert(C);
      std::vector<NodeId> &Order = Ifg.Children[H];
      while (!Ready.empty()) {
        NodeId C = *Ready.begin();
        Ready.erase(Ready.begin());
        Order.push_back(C);
        for (const IfgEdge &E : Ifg.Succs[C])
          if ((E.Type == EdgeType::Forward ||
               E.Type == EdgeType::Synthetic) &&
              Ifg.Parent[E.Dst] == H && --Indeg[E.Dst] == 0)
            Ready.insert(E.Dst);
      }
      if (Order.size() != Members[H].size()) {
        R.Errors.push_back("cyclic sibling order in interval of node " +
                           describeNode(G, H));
        return R;
      }
    }
  }

  Ifg.computePreorder();

#ifndef NDEBUG
  // Every FORWARD, JUMP and SYNTHETIC edge must increase in PREORDER.
  {
    std::vector<unsigned> Pos(N, 0);
    for (unsigned I = 0; I != Ifg.Preorder.size(); ++I)
      Pos[Ifg.Preorder[I]] = I;
    for (NodeId M = 0; M != N; ++M)
      for (const IfgEdge &E : Ifg.Succs[M])
        if (E.Type == EdgeType::Forward || E.Type == EdgeType::Jump ||
            E.Type == EdgeType::Synthetic)
          assert(Pos[E.Src] < Pos[E.Dst] && "preorder violates edge order");
  }
#endif

  R.Ifg = std::move(Ifg);
  return R;
}

void IntervalFlowGraph::computePreorder() {
  Preorder.clear();
  Preorder.reserve(size());
  // Headers precede their interval members (DOWNWARD); members appear in
  // the per-interval FORWARD order.
  std::vector<std::pair<NodeId, unsigned>> Stack;
  Stack.push_back({Root, 0});
  Preorder.push_back(Root);
  while (!Stack.empty()) {
    auto &[Node, NextChild] = Stack.back();
    const std::vector<NodeId> &Kids = Children[Node];
    if (NextChild < Kids.size()) {
      NodeId C = Kids[NextChild++];
      Preorder.push_back(C);
      Stack.push_back({C, 0});
      continue;
    }
    Stack.pop_back();
  }
  assert(Preorder.size() == size() && "preorder missed nodes");
}

IntervalFlowGraph IntervalFlowGraph::reversed() const {
  IntervalFlowGraph R;
  R.Root = Root;
  R.Reversed = !Reversed;
  R.Level = Level;
  R.Parent = Parent;
  R.PoisonedHeaders = PoisonedHeaders;
  unsigned N = size();
  R.LastChild.assign(N, InvalidNode);
  R.HeaderOf.assign(N, InvalidNode);
  R.Children.resize(N);
  R.Succs.resize(N);
  R.Preds.resize(N);

  for (NodeId M = 0; M != N; ++M) {
    for (const IfgEdge &E : Succs[M]) {
      EdgeType T = E.Type;
      if (T == EdgeType::Entry)
        T = EdgeType::Cycle;
      else if (T == EdgeType::Cycle)
        T = EdgeType::Entry;
      R.addEdge(E.Dst, E.Src, T);
      if (T == EdgeType::Entry)
        R.HeaderOf[E.Src] = E.Dst;
      else if (T == EdgeType::Cycle)
        R.LastChild[E.Src] = E.Dst;
    }
  }
  // Note: ROOT's reversed CYCLE edge (and hence LASTCHILD) comes from the
  // old ROOT ENTRY edge automatically; the reversed ROOT has no ENTRY
  // edge, mirroring the forward graph's missing exit->ROOT cycle edge.
  for (NodeId H = 0; H != N; ++H) {
    R.Children[H].assign(Children[H].rbegin(), Children[H].rend());
  }
  R.computePreorder();
  return R;
}

std::string IntervalFlowGraph::describe(const Cfg &G) const {
  std::ostringstream OS;
  for (NodeId Node : Preorder) {
    OS << describeNode(G, Node) << "  level=" << Level[Node];
    if (isHeader(Node)) {
      OS << "  header";
      if (LastChild[Node] != InvalidNode)
        OS << " lastchild=" << LastChild[Node];
    }
    OS << "\n";
    for (const IfgEdge &E : Succs[Node])
      OS << "    -> " << E.Dst << " " << edgeTypeName(E.Type) << "\n";
  }
  return OS.str();
}
