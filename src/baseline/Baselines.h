//===- baseline/Baselines.h - Comparison placements -------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison points for the paper's motivating claims (Section 2):
///
///  - *naive*: a Read_Send/Read_Recv pair immediately before every
///    reference and a Write pair after every definition — one message per
///    element per execution, no latency hiding (Figure 2 left);
///  - *vectorized*: classic per-reference message vectorization — each
///    reference's communication is hoisted to the outermost enclosing
///    loop whose body contains no conflicting definition; whole sections
///    per message, but no redundancy elimination across references, no
///    "free" definitions, no send/receive splitting;
///  - *LCM* (see LazyCodeMotion.h): classical PRE placement — atomic,
///    safety-first (no zero-trip hoisting).
///
/// All baselines produce CommPlan objects so the trace simulator and the
/// annotator treat them exactly like GIVE-N-TAKE plans.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_BASELINE_BASELINES_H
#define GNT_BASELINE_BASELINES_H

#include "comm/CommGen.h"

namespace gnt {

/// Per-reference, per-element communication (Figure 2 left).
CommPlan naivePlacement(const Program &P, const Cfg &G,
                        const IntervalFlowGraph &Ifg);

/// Message vectorization: per-reference hoisting to loop boundaries.
CommPlan vectorizedPlacement(const Program &P, const Cfg &G,
                             const IntervalFlowGraph &Ifg);

} // namespace gnt

#endif // GNT_BASELINE_BASELINES_H
