//===- baseline/Baselines.cpp - Comparison placements -----------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baseline/Baselines.h"

#include <set>

using namespace gnt;

namespace {

/// Appends (Kind, Item) at \p Key if not already present there.
void addOnce(CommPlan &Plan, const AnchorKey &Key, CommOpKind Kind,
             unsigned Item) {
  for (const CommOp &Op : Plan.Anchored[Key])
    if (Op.Kind == Kind && Op.Item == Item)
      return;
  Plan.Anchored[Key].push_back({Kind, Item});
}

CommPlan makeBasePlan(const Program &P, const Cfg &G,
                      const IntervalFlowGraph &Ifg) {
  CommPlan Plan;
  Plan.Refs = analyzeReferences(P, G);
  buildCommProblems(Plan.Refs, G, Ifg, CommOptions(), Plan.ReadProblem,
                    Plan.WriteProblem);
  return Plan;
}

} // namespace

CommPlan gnt::naivePlacement(const Program &P, const Cfg &G,
                             const IntervalFlowGraph &Ifg) {
  CommPlan Plan = makeBasePlan(P, G, Ifg);
  Plan.ElementMessages = true;

  for (NodeId N = 0; N != G.size(); ++N) {
    const CfgNode &Node = G.node(N);
    if (!Node.EmitStmt)
      continue;
    const NodeRefs &R = Plan.Refs.PerNode[N];
    // A send/receive pair immediately before every reference...
    std::set<unsigned> Seen;
    for (unsigned Use : R.Uses) {
      if (!Seen.insert(Use).second)
        continue;
      AnchorKey Key{Node.EmitStmt, Node.Where};
      Plan.Anchored[Key].push_back({CommOpKind::ReadSend, Use});
      Plan.Anchored[Key].push_back({CommOpKind::ReadRecv, Use});
    }
    // ... and a write-back pair immediately after every definition.
    Seen.clear();
    for (unsigned Def : R.Defs) {
      if (!Seen.insert(Def).second)
        continue;
      AnchorKey Key{Node.EmitStmt,
                    Node.Where == EmitWhere::Before ? EmitWhere::After
                                                    : Node.Where};
      Plan.Anchored[Key].push_back({CommOpKind::WriteSend, Def});
      Plan.Anchored[Key].push_back({CommOpKind::WriteRecv, Def});
    }
  }
  return Plan;
}

CommPlan gnt::vectorizedPlacement(const Program &P, const Cfg &G,
                                  const IntervalFlowGraph &Ifg) {
  CommPlan Plan = makeBasePlan(P, G, Ifg);

  // Precompute, per loop header, whether any interval member (or the
  // header itself) steals a given item.
  auto stolenWithin = [&](NodeId Header, unsigned Item,
                          const GntProblem &Prob) {
    if (Prob.StealInit[Header].test(Item))
      return true;
    for (NodeId M = 0; M != G.size(); ++M) {
      if (M == Header)
        continue;
      // Member of T(Header) at any depth?
      NodeId Cur = Ifg.parent(M);
      bool Inside = false;
      while (Cur != InvalidNode) {
        if (Cur == Header) {
          Inside = true;
          break;
        }
        Cur = Ifg.parent(Cur);
      }
      if (Inside && Prob.StealInit[M].test(Item))
        return true;
    }
    return false;
  };

  /// Hoists from node \p N to the outermost enclosing loop header with no
  /// conflicting steal inside; returns InvalidNode if no hoisting is
  /// possible.
  auto jumpPoisoned = [&](NodeId H) {
    for (NodeId P : Ifg.jumpPoisonedHeaders())
      if (P == H)
        return true;
    return false;
  };

  auto hoistTarget = [&](NodeId N, unsigned Item, const GntProblem &Prob) {
    NodeId Best = InvalidNode;
    NodeId H = Ifg.parent(N);
    while (H != InvalidNode && H != Ifg.root()) {
      if (!Ifg.isHeader(H))
        break;
      // A goto can leave this loop, skipping anything hoisted to its
      // boundary; keep the communication at the reference.
      if (jumpPoisoned(H))
        break;
      if (stolenWithin(H, Item, Prob))
        break;
      Best = H;
      H = Ifg.parent(H);
    }
    return Best;
  };

  for (NodeId N = 0; N != G.size(); ++N) {
    const CfgNode &Node = G.node(N);
    if (!Node.EmitStmt)
      continue;
    const NodeRefs &R = Plan.Refs.PerNode[N];
    for (unsigned Use : R.Uses) {
      NodeId H = hoistTarget(N, Use, Plan.ReadProblem);
      AnchorKey Key = H == InvalidNode
                          ? AnchorKey{Node.EmitStmt, Node.Where}
                          : AnchorKey{G.node(H).EmitStmt, EmitWhere::Before};
      addOnce(Plan, Key, CommOpKind::ReadSend, Use);
      addOnce(Plan, Key, CommOpKind::ReadRecv, Use);
    }
    for (unsigned Def : R.Defs) {
      NodeId H = hoistTarget(N, Def, Plan.WriteProblem);
      AnchorKey Key =
          H == InvalidNode
              ? AnchorKey{Node.EmitStmt,
                          Node.Where == EmitWhere::Before ? EmitWhere::After
                                                          : Node.Where}
              : AnchorKey{G.node(H).EmitStmt, EmitWhere::After};
      addOnce(Plan, Key, CommOpKind::WriteSend, Def);
      addOnce(Plan, Key, CommOpKind::WriteRecv, Def);
    }
  }
  return Plan;
}
