//===- baseline/LazyCodeMotion.h - Classical PRE baseline -------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Knoop/Rüthing/Steffen lazy code motion (PLDI '92), the state of the
/// art the paper positions GIVE-N-TAKE against. Implemented as a classic
/// *iterative* bitvector dataflow over the CFG (edge-based placement; our
/// graphs have no critical edges, so each insertion edge maps to a unique
/// node entry or exit).
///
/// Differences from GIVE-N-TAKE, by design (Section 1):
///  - atomic: one placement point per computation — when used for
///    communication, send and receive are fused and nothing hides latency;
///  - safety-first: never hoists out of potentially zero-trip loops, so
///    loop-invariant communication stays inside DO loops;
///  - elimination-unaware of side effects beyond plain availability.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_BASELINE_LAZYCODEMOTION_H
#define GNT_BASELINE_LAZYCODEMOTION_H

#include "comm/CommGen.h"
#include "support/BitVector.h"

namespace gnt {

/// Raw LCM dataflow results (exposed for unit tests).
struct LcmResult {
  std::vector<BitVector> AntIn, AntOut;   ///< Anticipability.
  std::vector<BitVector> AvIn, AvOut;     ///< Availability.
  /// Insertions: InsertAtEntry[n] places at the entry of n (single-pred
  /// edge targets), InsertAtExit[n] at the exit of n (single-succ edge
  /// sources).
  std::vector<BitVector> InsertAtEntry, InsertAtExit;
  /// Original occurrences that remain (act as their own placement).
  std::vector<BitVector> KeptOccurrences;
  /// Original occurrences proven redundant.
  std::vector<BitVector> Deleted;
  /// Number of fixed-point iterations the iterative solver needed (for
  /// the complexity comparison against the elimination solver).
  unsigned Iterations = 0;
};

/// Runs LCM over \p G for a universe of \p UniverseSize items with
/// per-node local predicates: \p Antloc (occurrence at n), \p Transp
/// (n does not kill), \p Comp (n makes the item available at its exit).
LcmResult lazyCodeMotion(const Cfg &G, unsigned UniverseSize,
                         const std::vector<BitVector> &Antloc,
                         const std::vector<BitVector> &Transp,
                         const std::vector<BitVector> &Comp);

/// Communication placement via LCM: atomic READ operations at the LCM
/// placement points; write-backs fall back to the naive per-definition
/// pairs (classical PRE has no AFTER-problem counterpart).
CommPlan lcmPlacement(const Program &P, const Cfg &G,
                      const IntervalFlowGraph &Ifg);

} // namespace gnt

#endif // GNT_BASELINE_LAZYCODEMOTION_H
