//===- baseline/LazyCodeMotion.cpp - Classical PRE baseline -----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Edge-based LCM after Knoop/Rüthing/Steffen (as presented by
/// Drechsler/Stadel and Muchnick §13.3):
///
///   ANTOUT(n) = meet_s ANTIN(s)            (bottom at exit)
///   ANTIN(n)  = ANTLOC(n) u (ANTOUT(n) n TRANSP(n))
///   AVIN(n)   = meet_p AVOUT(p)            (bottom at entry)
///   AVOUT(n)  = (AVIN(n) u COMP(n)) n TRANSP(n)
///   EARLIEST(p,n) = ANTIN(n) n ~AVOUT(p) n (~TRANSP(p) u ~ANTOUT(p))
///                   [p = entry: ANTIN(n) n ~AVOUT(p)]
///   LATERIN(n)  = meet_{(p,n)} LATER(p,n)  (bottom at entry)
///   LATER(p,n)  = EARLIEST(p,n) u (LATERIN(p) n ~ANTLOC(p))
///   INSERT(p,n) = LATER(p,n) n ~LATERIN(n)
///   DELETE(n)   = ANTLOC(n) n ~LATERIN(n)  (n != entry)
///
//===----------------------------------------------------------------------===//

#include "baseline/LazyCodeMotion.h"

#include <set>

using namespace gnt;

LcmResult gnt::lazyCodeMotion(const Cfg &G, unsigned U,
                              const std::vector<BitVector> &Antloc,
                              const std::vector<BitVector> &Transp,
                              const std::vector<BitVector> &Comp) {
  unsigned N = G.size();
  LcmResult R;
  R.AntIn.assign(N, BitVector(U));
  R.AntOut.assign(N, BitVector(U));
  R.AvIn.assign(N, BitVector(U));
  R.AvOut.assign(N, BitVector(U));
  R.InsertAtEntry.assign(N, BitVector(U));
  R.InsertAtExit.assign(N, BitVector(U));
  R.KeptOccurrences.assign(N, BitVector(U));
  R.Deleted.assign(N, BitVector(U));

  // Anticipability (backward, must) — greatest fixed point.
  for (NodeId Id = 0; Id != N; ++Id) {
    R.AntIn[Id] = BitVector(U, true);
    R.AntOut[Id] = BitVector(U, true);
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++R.Iterations;
    for (NodeId Id = N; Id-- != 0;) {
      BitVector Out(U);
      bool Any = false;
      for (NodeId S : G.node(Id).Succs) {
        if (!Any) {
          Out = R.AntIn[S];
          Any = true;
        } else {
          Out &= R.AntIn[S];
        }
      }
      BitVector In = Out;
      In &= Transp[Id];
      In |= Antloc[Id];
      if (Out != R.AntOut[Id] || In != R.AntIn[Id]) {
        R.AntOut[Id] = std::move(Out);
        R.AntIn[Id] = std::move(In);
        Changed = true;
      }
    }
  }

  // Availability (forward, must) — greatest fixed point.
  for (NodeId Id = 0; Id != N; ++Id) {
    R.AvIn[Id] = BitVector(U, Id != G.entry());
    R.AvOut[Id] = BitVector(U, true);
  }
  Changed = true;
  while (Changed) {
    Changed = false;
    ++R.Iterations;
    for (NodeId Id = 0; Id != N; ++Id) {
      BitVector In(U);
      if (Id != G.entry()) {
        bool Any = false;
        for (NodeId P : G.node(Id).Preds) {
          if (!Any) {
            In = R.AvOut[P];
            Any = true;
          } else {
            In &= R.AvOut[P];
          }
        }
      }
      BitVector Out = In;
      Out |= Comp[Id];
      Out &= Transp[Id];
      if (In != R.AvIn[Id] || Out != R.AvOut[Id]) {
        R.AvIn[Id] = std::move(In);
        R.AvOut[Id] = std::move(Out);
        Changed = true;
      }
    }
  }

  // EARLIEST per edge.
  auto earliest = [&](NodeId P, NodeId Node) {
    BitVector E = R.AntIn[Node];
    E.reset(R.AvOut[P]);
    if (P != G.entry()) {
      BitVector Guard = Transp[P]; // ~TRANSP u ~ANTOUT == ~(TRANSP n ANTOUT)
      Guard &= R.AntOut[P];
      E.reset(Guard);
    }
    return E;
  };

  // LATER (forward over edges, must at nodes) — greatest fixed point.
  std::vector<BitVector> LaterIn(N, BitVector(U, true));
  LaterIn[G.entry()] = BitVector(U);
  // Edge values are recomputed on the fly from LaterIn.
  auto later = [&](NodeId P, NodeId Node) {
    BitVector L = LaterIn[P];
    L.reset(Antloc[P]);
    L |= earliest(P, Node);
    return L;
  };
  Changed = true;
  while (Changed) {
    Changed = false;
    ++R.Iterations;
    for (NodeId Id = 0; Id != N; ++Id) {
      if (Id == G.entry())
        continue;
      BitVector In(U, true);
      bool Any = false;
      for (NodeId P : G.node(Id).Preds) {
        BitVector L = later(P, Id);
        if (!Any) {
          In = std::move(L);
          Any = true;
        } else {
          In &= L;
        }
      }
      if (Any && In != LaterIn[Id]) {
        LaterIn[Id] = std::move(In);
        Changed = true;
      }
    }
  }

  // INSERT per edge, mapped to the unique node-entry or node-exit this
  // edge owns (no critical edges: one endpoint is single-degree).
  for (NodeId P = 0; P != N; ++P) {
    for (NodeId S : G.node(P).Succs) {
      BitVector Ins = later(P, S);
      Ins.reset(LaterIn[S]);
      if (Ins.none())
        continue;
      // Map the edge insertion to the node point the edge owns. The
      // entry node has no print position, so its outgoing edge maps to
      // the successor's entry (that successor has no other predecessor).
      if (G.node(P).Succs.size() == 1 && P != G.entry())
        R.InsertAtExit[P] |= Ins;
      else
        R.InsertAtEntry[S] |= Ins;
    }
  }
  for (NodeId Id = 0; Id != N; ++Id) {
    if (Id == G.entry())
      continue;
    // DELETE = ANTLOC n ~LATERIN; kept occurrences (ANTLOC n LATERIN)
    // are their own placement points.
    BitVector Del = Antloc[Id];
    Del.reset(LaterIn[Id]);
    R.Deleted[Id] = Del;
    BitVector Kept = Antloc[Id];
    Kept.reset(Del);
    R.KeptOccurrences[Id] = Kept;
  }

  return R;
}

CommPlan gnt::lcmPlacement(const Program &P, const Cfg &G,
                           const IntervalFlowGraph &Ifg) {
  CommPlan Plan;
  Plan.Refs = analyzeReferences(P, G);
  buildCommProblems(Plan.Refs, G, Ifg, CommOptions(), Plan.ReadProblem,
                    Plan.WriteProblem);
  unsigned U = Plan.Refs.Items.size();
  unsigned N = G.size();

  std::vector<BitVector> Antloc = Plan.ReadProblem.TakeInit;
  std::vector<BitVector> Transp(N, BitVector(U, true));
  std::vector<BitVector> Comp(N, BitVector(U));
  for (NodeId Id = 0; Id != N; ++Id) {
    Transp[Id].reset(Plan.ReadProblem.StealInit[Id]);
    Comp[Id] = Plan.ReadProblem.TakeInit[Id];
    Comp[Id] |= Plan.ReadProblem.GiveInit[Id];
  }

  LcmResult L = lazyCodeMotion(G, U, Antloc, Transp, Comp);

  auto entryAnchor = [&](NodeId Id) {
    return AnchorKey{G.node(Id).EmitStmt, G.node(Id).Where};
  };
  auto exitAnchor = [&](NodeId Id) {
    const CfgNode &Node = G.node(Id);
    EmitWhere W = Node.Where == EmitWhere::Before ? EmitWhere::After
                                                  : Node.Where;
    return AnchorKey{Node.EmitStmt, W};
  };

  for (NodeId Id = 0; Id != N; ++Id) {
    const CfgNode &Node = G.node(Id);
    auto addReads = [&](const AnchorKey &Key, const BitVector &BV) {
      if (!Key.S)
        return;
      for (unsigned I : BV)
        Plan.Anchored[Key].push_back({CommOpKind::AtomicRead, I});
    };
    addReads(entryAnchor(Id), L.InsertAtEntry[Id]);
    // Kept occurrences read right before their statement.
    addReads(entryAnchor(Id), L.KeptOccurrences[Id]);
    addReads(exitAnchor(Id), L.InsertAtExit[Id]);

    // Writes: naive per-definition pairs (LCM has no AFTER problem).
    if (Node.EmitStmt) {
      std::set<unsigned> Seen;
      for (unsigned Def : Plan.Refs.PerNode[Id].Defs) {
        if (!Seen.insert(Def).second)
          continue;
        AnchorKey Key = exitAnchor(Id);
        Plan.Anchored[Key].push_back({CommOpKind::WriteSend, Def});
        Plan.Anchored[Key].push_back({CommOpKind::WriteRecv, Def});
      }
    }
  }
  return Plan;
}
