//===- service/StageCache.h - Content-addressed stage cache ----*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed cache over the pipeline's stage DAG. Where the
/// result cache (BatchServer's LRU + DiskCache) is all-or-nothing — one
/// key over (options, whole source), one payload — the stage cache keys
/// every stage by exactly the inputs that stage consumes, so an edited
/// source re-runs only the stages whose inputs changed and two requests
/// sharing a frontend result share the work:
///
///   parse    : FNV(source text)            -> ParseArtifact (AST)
///   cfg      : FNV(canonical AST print)    -> CfgArtifact (raw CFG)
///   interval : FNV(canonical AST print)    -> IntervalArtifact (IFG)
///   solve    : FNV(AST print, solve opts)  -> SolveArtifact (plan/PRE)
///   annotate : FNV(solve key)              -> rendered program text
///
/// A whitespace-only edit changes the parse key but converges at cfg:
/// the canonical AST print is identical, so everything from the CFG on
/// is a hit. Option knobs that cannot change the solve (annotate,
/// audit, verify, werror, analyses — and the strategy knobs) are
/// excluded from the solve key, so e.g. an audited and an unaudited
/// request share one solve.
///
/// Artifacts nest by shared_ptr: a CfgArtifact keeps its ParseArtifact
/// alive, a SolveArtifact its IntervalArtifact. This is load-bearing,
/// not a convenience — CFG nodes, comm-plan anchors and PRE insertions
/// hold `const Stmt *` pointers into one specific Program object, so a
/// consumer must adopt an artifact's *whole chain* (its Program, its
/// CFG, its plan) rather than mix artifacts from different parses that
/// merely print identically. Pipeline::compile does exactly that.
///
/// The solve stage additionally supports *interval-level* incrementality
/// (PipelineOptions::Incremental): per solve-option set, a SolveSlot
/// holds the GntIncrementalContext whose memos carry the previous
/// solve's loop forest digest, per-node equation input digests and the
/// solved arena, letting runGiveNTakeIncremental re-solve only the
/// intervals whose inputs changed (dataflow/Incremental.h). Memos are
/// write-through persisted into the server's DiskCache so a restarted
/// gntd re-solves incrementally against the previous process's work; a
/// truncated or corrupted persisted memo deserializes to an empty memo
/// and silently falls back to a full solve.
///
/// All methods are thread-safe. Per-stage hit/miss counters and the
/// aggregated incremental solver statistics are exposed through
/// statsSnapshot() for the service metrics.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SERVICE_STAGECACHE_H
#define GNT_SERVICE_STAGECACHE_H

#include "cfg/Cfg.h"
#include "comm/CommGen.h"
#include "dataflow/Incremental.h"
#include "interval/IntervalFlowGraph.h"
#include "pre/ExprPre.h"
#include "service/Pipeline.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace gnt {

class DiskCache;

/// The cached pipeline stages, in dependency order. Distinct from
/// PipelineStage: only stages whose outputs are reusable artifacts are
/// cached (audit, verify and user analyses are always recomputed — they
/// exist to re-check, caching them would be self-defeating).
enum class CacheStage : unsigned {
  Parse,    ///< Source text -> AST.
  Cfg,      ///< AST -> raw (pre-normalization) CFG.
  Interval, ///< AST -> normalized CFG + interval flow graph.
  Solve,    ///< AST + solve options -> comm plan / PRE result.
  Annotate, ///< Solve -> rendered annotated program.
};
inline constexpr unsigned NumCacheStages = 5;

/// "parse", "cfg", "interval", "solve", "annotate" — stable lowercase
/// names used as metrics keys; pinned by a test.
const char *cacheStageName(CacheStage S);

/// Output of the parse stage. AstDigest is the FNV-1a hash of the
/// canonical AST print — the content address of every downstream stage.
struct ParseArtifact {
  std::shared_ptr<const Program> Prog;
  std::uint64_t AstDigest = 0;
};

/// Output of the CFG stage: the graph as built, before interval
/// normalization (critical-edge splitting happens in buildCfg; the
/// interval builder mutates further). Keeps its parse alive — every
/// CfgNode anchors `const Stmt *` into Parse->Prog.
struct CfgArtifact {
  std::shared_ptr<const ParseArtifact> Parse;
  Cfg RawG;
};

/// Output of the interval stage: the normalized CFG plus the interval
/// flow graph built over it.
struct IntervalArtifact {
  std::shared_ptr<const ParseArtifact> Parse;
  Cfg NormG;
  IntervalFlowGraph Ifg;
};

/// Output of the solve stage: exactly one of Plan/Pre is set (shared
/// with every PipelineResult that adopted this artifact — plans carry
/// whole dataflow solutions, copying them would cost as much as
/// re-solving). Anchors point into Interval->Parse->Prog, hence the
/// chain reference.
struct SolveArtifact {
  std::shared_ptr<const IntervalArtifact> Interval;
  std::shared_ptr<const CommPlan> Plan;
  std::shared_ptr<const ExprPreResult> Pre;
  unsigned CompressedUniverse = 0;
  unsigned CompressedClasses = 0;
};

/// Incremental-solve state for one solve-option set: the three memo
/// slots (READ, WRITE, PRE — a run uses the ones its mode needs) plus
/// their accumulated statistics. Callers must hold M across the whole
/// solve; the memos are single-threaded by design.
struct SolveSlot {
  std::mutex M;
  GntIncrementalContext Ctx;
  bool DiskLoadAttempted = false;
};

/// Counter snapshot: per-stage cache hits/misses plus the aggregated
/// incremental solver statistics across all slots.
struct StageCacheStats {
  std::uint64_t Hits[NumCacheStages] = {};
  std::uint64_t Misses[NumCacheStages] = {};
  GntIncrementalStats Inc;

  std::uint64_t hits(CacheStage S) const {
    return Hits[static_cast<unsigned>(S)];
  }
  std::uint64_t misses(CacheStage S) const {
    return Misses[static_cast<unsigned>(S)];
  }

  /// Hits / (hits + misses) for one stage, or 0 when the stage was
  /// never probed.
  double hitRate(CacheStage S) const {
    std::uint64_t H = hits(S), M = misses(S);
    return H + M == 0 ? 0.0 : static_cast<double>(H) / (H + M);
  }
};

class StageCache {
public:
  struct Config {
    /// LRU capacity of each per-stage cache (entries, not bytes).
    std::size_t CapacityPerStage = 256;
  };

  /// \p Disk, when non-null, persists incremental solve memos across
  /// process restarts (borrowed; must outlive the cache).
  StageCache();
  explicit StageCache(Config C, DiskCache *Disk = nullptr);

  // Typed per-stage lookup/insert. Lookups count a hit or miss.
  std::shared_ptr<const ParseArtifact> lookupParse(std::uint64_t Key);
  void insertParse(std::uint64_t Key, std::shared_ptr<const ParseArtifact> A);
  std::shared_ptr<const CfgArtifact> lookupCfg(std::uint64_t Key);
  void insertCfg(std::uint64_t Key, std::shared_ptr<const CfgArtifact> A);
  std::shared_ptr<const IntervalArtifact> lookupInterval(std::uint64_t Key);
  void insertInterval(std::uint64_t Key,
                      std::shared_ptr<const IntervalArtifact> A);
  std::shared_ptr<const SolveArtifact> lookupSolve(std::uint64_t Key);
  void insertSolve(std::uint64_t Key, std::shared_ptr<const SolveArtifact> A);
  std::shared_ptr<const std::string> lookupAnnotate(std::uint64_t Key);
  void insertAnnotate(std::uint64_t Key, std::shared_ptr<const std::string> A);

  /// Returns (creating on first use) the incremental-solve slot for one
  /// solve-option set. On creation, persisted memos are loaded from the
  /// disk cache when one is attached; corrupt payloads load as empty
  /// memos (full-solve fallback).
  std::shared_ptr<SolveSlot> solveSlot(const std::string &SolveOptsKey);

  /// Write-through persists \p Slot's valid memos under \p SolveOptsKey.
  /// Caller must hold Slot.M. No-op without a disk cache.
  void persistSlot(SolveSlot &Slot, const std::string &SolveOptsKey);

  /// Accumulates a delta of incremental solver statistics into the
  /// aggregate exposed by statsSnapshot().
  void noteIncremental(const GntIncrementalStats &Delta);

  StageCacheStats statsSnapshot() const;

  std::size_t entries(CacheStage S) const;

  // -- Content addressing -------------------------------------------------

  /// Key of the parse stage: options-independent hash of the source.
  static std::uint64_t parseKey(const std::string &Source);

  /// Canonical AST digest: FNV-1a of the annotation-free AST print.
  static std::uint64_t astDigest(const Program &P);

  /// Keys of the AST-addressed stages.
  static std::uint64_t cfgKey(std::uint64_t AstDigest);
  static std::uint64_t intervalKey(std::uint64_t AstDigest);
  static std::uint64_t solveKey(std::uint64_t AstDigest,
                                const std::string &SolveOptsKey);
  static std::uint64_t annotateKey(std::uint64_t SolveKey);

  /// The subset of PipelineOptions the solve stage actually consumes:
  /// mode, baseline and the comm knobs. Annotate/audit/verify/werror/
  /// analyses are downstream of the solve; SolverShards /
  /// CompressUniverse / Incremental are strategy knobs with byte-
  /// identity contracts. None of those may appear here — they would
  /// split solves that are provably identical.
  static std::string solveOptionsKey(const PipelineOptions &Opts);

  /// DiskCache key of one persisted memo slot ("read", "write", "pre").
  static std::uint64_t memoDiskKey(const std::string &SolveOptsKey,
                                   const char *MemoSlot);

private:
  template <typename T> class Lru {
  public:
    void setCapacity(std::size_t C) { Cap = C < 1 ? 1 : C; }
    std::shared_ptr<const T> lookup(std::uint64_t Key);
    void insert(std::uint64_t Key, std::shared_ptr<const T> Value);
    std::size_t size() const;

  private:
    using Entry = std::pair<std::uint64_t, std::shared_ptr<const T>>;
    std::size_t Cap = 256;
    mutable std::mutex M;
    std::list<Entry> Order; // Most recent first.
    std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator>
        Index;
  };

  void noteProbe(CacheStage S, bool Hit);

  Config Cfg_;
  DiskCache *Disk;
  Lru<ParseArtifact> Parses;
  Lru<CfgArtifact> Cfgs;
  Lru<IntervalArtifact> Intervals;
  Lru<SolveArtifact> Solves;
  Lru<std::string> Annotations;
  mutable std::mutex SlotsMutex;
  std::unordered_map<std::string, std::shared_ptr<SolveSlot>> Slots;
  mutable std::mutex StatsMutex;
  StageCacheStats Stats;
};

template <typename T>
std::shared_ptr<const T> StageCache::Lru<T>::lookup(std::uint64_t Key) {
  std::lock_guard<std::mutex> L(M);
  auto It = Index.find(Key);
  if (It == Index.end())
    return nullptr;
  Order.splice(Order.begin(), Order, It->second);
  return It->second->second;
}

template <typename T>
void StageCache::Lru<T>::insert(std::uint64_t Key,
                                std::shared_ptr<const T> Value) {
  std::lock_guard<std::mutex> L(M);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    It->second->second = std::move(Value);
    Order.splice(Order.begin(), Order, It->second);
    return;
  }
  Order.emplace_front(Key, std::move(Value));
  Index.emplace(Key, Order.begin());
  if (Index.size() > Cap) {
    Index.erase(Order.back().first);
    Order.pop_back();
  }
}

template <typename T> std::size_t StageCache::Lru<T>::size() const {
  std::lock_guard<std::mutex> L(M);
  return Index.size();
}

} // namespace gnt

#endif // GNT_SERVICE_STAGECACHE_H
