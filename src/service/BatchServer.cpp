//===- service/BatchServer.cpp - Batch compilation server -------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/BatchServer.h"

#include "support/Hashing.h"
#include "support/JsonParse.h"
#include "support/Support.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <fstream>
#include <sstream>

using namespace gnt;

//===----------------------------------------------------------------------===//
// Request decoding
//===----------------------------------------------------------------------===//

namespace {

bool optionBool(const JsonValue &V, const std::string &Key, bool &Out,
                std::string &Error) {
  if (!V.isBool()) {
    Error = "option `" + Key + "` must be a boolean";
    return false;
  }
  Out = V.B;
  return true;
}

bool decodeOptions(const JsonValue &Obj, PipelineOptions &Opts,
                   std::string &Error) {
  for (const auto &[Key, V] : Obj.Fields) {
    if (Key == "mode") {
      if (V.isString() && V.S == "comm")
        Opts.Mode = PipelineMode::Comm;
      else if (V.isString() && V.S == "pre")
        Opts.Mode = PipelineMode::Pre;
      else {
        Error = "option `mode` must be \"comm\" or \"pre\"";
        return false;
      }
    } else if (Key == "baseline") {
      if (!V.isString()) {
        Error = "option `baseline` must be a string";
        return false;
      }
      Opts.Baseline = V.S;
    } else if (Key == "strategy") {
      // Placement strategy: semantic (part of the cache key), unlike
      // solver_shards/compress_universe/incremental below.
      if (!V.isString() || !parsePlacementStrategy(V.S, Opts.Strategy)) {
        Error = "option `strategy` must be \"balanced\", \"speculative\" "
                "or \"lospre\"";
        return false;
      }
    } else if (Key == "profile") {
      // gnt-profile-v1 text for the speculative strategy. Semantic
      // (cached); validated by the pipeline at solve time.
      if (!V.isString()) {
        Error = "option `profile` must be a string";
        return false;
      }
      Opts.Profile = V.S;
    } else if (Key == "atomic") {
      if (!optionBool(V, Key, Opts.Comm.Atomic, Error))
        return false;
    } else if (Key == "owner_computes") {
      if (!optionBool(V, Key, Opts.Comm.OwnerComputes, Error))
        return false;
    } else if (Key == "hoist_zero_trip") {
      if (!optionBool(V, Key, Opts.Comm.HoistZeroTrip, Error))
        return false;
    } else if (Key == "reads") {
      if (!optionBool(V, Key, Opts.Comm.GenerateReads, Error))
        return false;
    } else if (Key == "writes") {
      if (!optionBool(V, Key, Opts.Comm.GenerateWrites, Error))
        return false;
    } else if (Key == "annotate") {
      if (!optionBool(V, Key, Opts.Annotate, Error))
        return false;
    } else if (Key == "audit") {
      if (!optionBool(V, Key, Opts.Audit, Error))
        return false;
    } else if (Key == "verify") {
      if (!optionBool(V, Key, Opts.Verify, Error))
        return false;
    } else if (Key == "werror") {
      if (!optionBool(V, Key, Opts.Werror, Error))
        return false;
    } else if (Key == "solver_shards") {
      // Execution strategy, not a semantic knob: any value produces
      // byte-identical results (and shares one cache entry — the field
      // is excluded from the canonical options string).
      if (!V.isInt() || V.I < 0 || V.I > 65536) {
        Error = "option `solver_shards` must be an integer in [0, 65536]";
        return false;
      }
      Opts.SolverShards = static_cast<unsigned>(V.I);
    } else if (Key == "compress_universe") {
      // Also an execution strategy (universe compression is
      // byte-identical by contract); likewise excluded from the
      // canonical options string and thus the cache key.
      if (!optionBool(V, Key, Opts.CompressUniverse, Error))
        return false;
    } else if (Key == "incremental") {
      // Interval-level incremental solving: an execution strategy like
      // solver_shards — the incrementality-equivalence battery pins its
      // output byte-identical to a cold solve, so it is excluded from
      // the canonical options string and thus the cache key.
      if (!optionBool(V, Key, Opts.Incremental, Error))
        return false;
    } else if (Key == "analyses") {
      // User-specified analyses: built-in names or full spec texts,
      // run differentially after the solve. Semantic (cached).
      if (!V.isArray()) {
        Error = "option `analyses` must be an array of strings";
        return false;
      }
      for (const JsonValue &E : V.Elems) {
        if (!E.isString()) {
          Error = "option `analyses` must be an array of strings";
          return false;
        }
        Opts.ExtraAnalyses.push_back(E.S);
      }
    } else {
      Error = "unknown option `" + Key + "`";
      return false;
    }
  }
  return true;
}

} // namespace

bool gnt::parseServiceRequest(const std::string &Line,
                              const std::string &DefaultId,
                              ServiceRequest &Req, std::string &Error) {
  JsonParseResult P = parseJson(Line);
  if (!P.success()) {
    Error = "malformed JSON: " + P.Error + " (at byte " +
            itostr(static_cast<long long>(P.ErrorOffset)) + ")";
    return false;
  }
  if (!P.Value.isObject()) {
    Error = "request must be a JSON object";
    return false;
  }
  Req = ServiceRequest();
  Req.Id = DefaultId;
  for (const auto &[Key, V] : P.Value.Fields) {
    if (Key == "id") {
      if (!V.isString()) {
        Error = "`id` must be a string";
        return false;
      }
      Req.Id = V.S;
    } else if (Key == "source") {
      if (!V.isString()) {
        Error = "`source` must be a string";
        return false;
      }
      Req.Source = V.S;
    } else if (Key == "file") {
      if (!V.isString()) {
        Error = "`file` must be a string";
        return false;
      }
      Req.File = V.S;
    } else if (Key == "tenant") {
      if (!V.isString()) {
        Error = "`tenant` must be a string";
        return false;
      }
      Req.Tenant = V.S;
    } else if (Key == "options") {
      if (!V.isObject()) {
        Error = "`options` must be an object";
        return false;
      }
      if (!decodeOptions(V, Req.Opts, Error))
        return false;
    } else {
      Error = "unknown request field `" + Key + "`";
      return false;
    }
  }
  bool HasSource = P.Value.field("source") != nullptr;
  bool HasFile = P.Value.field("file") != nullptr;
  if (HasSource == HasFile) {
    Error = "request needs exactly one of `source` or `file`";
    return false;
  }
  if (HasFile && Req.File.empty()) {
    Error = "`file` must be a non-empty path";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Result rendering
//===----------------------------------------------------------------------===//

std::string gnt::renderResultPayload(const PipelineResult &R) {
  JsonWriter W;
  W.beginObject();
  W.key("ok").value(R.ok());
  W.key("annotated").value(R.Annotated);
  if (R.Plan) {
    W.key("placements");
    W.beginObject();
    for (const auto &[Kind, Count] : R.Plan->staticCounts())
      W.key(commOpName(Kind)).value(Count);
    W.endObject();
  }
  if (R.Pre) {
    W.key("pre");
    W.beginObject();
    W.key("insertions").value(
        static_cast<long long>(R.Pre->Insertions.size()));
    W.key("redundant").value(static_cast<long long>(R.Pre->Redundant.size()));
    W.endObject();
  }
  if (!R.Analyses.empty()) {
    // Deterministic per-analysis summary: name, verdict, universe
    // size, and the solution hash as the cross-configuration
    // invariance witness. No statistics here — cached and fresh
    // responses must be byte-identical.
    W.beginArray("analyses");
    for (const AnalysisRun &A : R.Analyses) {
      W.beginObject();
      W.key("name").value(A.Name);
      W.key("ok").value(A.ok());
      W.key("universe").value(specUniverseName(A.Universe));
      W.key("items").value(A.UniverseSize);
      W.key("hash").value(hashToHex(A.solutionHash()));
      W.endObject();
    }
    W.endArray();
  }
  W.key("diagnostics").raw(R.Diags.renderJson());
  W.endObject();
  return W.str();
}

std::string gnt::renderResponse(const std::string &Id,
                                const std::string &Payload) {
  JsonWriter W;
  W.beginObject();
  W.key("id").value(Id);
  W.key("result").raw(Payload);
  W.endObject();
  return W.str();
}

std::string gnt::renderErrorPayload(const std::string &Message) {
  DiagnosticSet Diags;
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Check = CheckId::Engine;
  D.Message = Message;
  Diags.add(std::move(D));
  JsonWriter W;
  W.beginObject();
  W.key("ok").value(false);
  W.key("annotated").value(std::string());
  W.key("diagnostics").raw(Diags.renderJson());
  W.endObject();
  return W.str();
}

namespace {

/// Local alias: the rendering predates the public name.
std::string errorPayload(const std::string &Message) {
  return renderErrorPayload(Message);
}

} // namespace

//===----------------------------------------------------------------------===//
// ResultCache
//===----------------------------------------------------------------------===//

bool ResultCache::lookup(std::uint64_t Key, std::string &Payload) {
  if (Capacity == 0)
    return false;
  std::lock_guard<std::mutex> Lock(M);
  auto It = Index.find(Key);
  if (It == Index.end())
    return false;
  Lru.splice(Lru.begin(), Lru, It->second);
  Payload = It->second->second;
  return true;
}

void ResultCache::insert(std::uint64_t Key, const std::string &Payload) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> Lock(M);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    It->second->second = Payload;
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.emplace_front(Key, Payload);
  Index[Key] = Lru.begin();
  while (Lru.size() > Capacity) {
    Index.erase(Lru.back().first);
    Lru.pop_back();
  }
}

unsigned ResultCache::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return static_cast<unsigned>(Lru.size());
}

//===----------------------------------------------------------------------===//
// BatchServer
//===----------------------------------------------------------------------===//

BatchServer::BatchServer(ServiceConfig Config)
    : Config(Config), Cache(Config.CacheCapacity) {
  if (!this->Config.DiskCachePath.empty()) {
    auto D = std::make_unique<DiskCache>(this->Config.DiskCachePath,
                                         this->Config.DiskCacheCapacity,
                                         this->Config.DiskCacheMemoBytes);
    if (D->open(DiskError))
      Disk = std::move(D);
    // On failure the server degrades to memory-only; DiskError tells
    // the operator why persistence is off.
  }
  // The stage cache shares the disk cache so incremental solve memos
  // survive restarts alongside the result payloads.
  Stages = std::make_unique<StageCache>(StageCache::Config{}, Disk.get());
}

ServiceMetrics BatchServer::metricsSnapshot() const {
  ServiceMetrics M;
  {
    std::lock_guard<std::mutex> Lock(MetricsMutex);
    M = Metrics;
  }
  StageCacheStats S = Stages->statsSnapshot();
  for (unsigned I = 0; I < NumCacheStages; ++I) {
    M.StageHits[I] = S.Hits[I];
    M.StageMisses[I] = S.Misses[I];
  }
  M.Incremental = S.Inc;
  return M;
}

void BatchServer::flushDiskCache() {
  if (Disk)
    Disk->flush();
}

std::string BatchServer::serve(const ServiceRequest &Req) {
  auto Start = std::chrono::steady_clock::now();
  bool DiskHit = false;
  auto Finish = [&](const std::string &Payload, bool Failed, bool Hit,
                    bool Miss, const PipelineResult *R) {
    auto End = std::chrono::steady_clock::now();
    double Micros =
        std::chrono::duration<double, std::micro>(End - Start).count();
    std::lock_guard<std::mutex> Lock(MetricsMutex);
    ++Metrics.Jobs;
    if (Failed)
      ++Metrics.Failed;
    if (Hit)
      ++Metrics.CacheHits;
    if (DiskHit)
      ++Metrics.DiskHits;
    if (Miss)
      ++Metrics.CacheMisses;
    Metrics.JobLatency.record(Micros);
    if (R) {
      for (unsigned I = 0; I < NumPipelineStages; ++I)
        if (R->StageMicros[I] > 0)
          Metrics.StageLatency[I].record(R->StageMicros[I]);
      Metrics.CompressedUniverseItems += R->CompressedUniverse;
      Metrics.CompressedClassItems += R->CompressedClasses;
    }
    return renderResponse(Req.Id, Payload);
  };

  // Resolve the source text; workers do the file I/O so a slow or
  // missing path never stalls request decoding.
  std::string Source;
  if (!Req.File.empty()) {
    std::ifstream In(Req.File);
    if (!In)
      return Finish(errorPayload("cannot open file `" + Req.File + "`"),
                    /*Failed=*/true, false, false, nullptr);
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  } else {
    Source = Req.Source;
  }

  std::uint64_t Key = pipelineCacheKey(Source, Req.Opts);
  std::string Payload;
  if (Cache.lookup(Key, Payload))
    return Finish(Payload, /*Failed=*/false, /*Hit=*/true, false, nullptr);

  // Persistent layer: a disk hit is promoted into the LRU so the next
  // lookup is a memory hit, and costs no recompilation.
  if (Disk && Disk->lookup(Key, Payload)) {
    DiskHit = true;
    Cache.insert(Key, Payload);
    return Finish(Payload, /*Failed=*/false, /*Hit=*/false, false, nullptr);
  }

  PipelineResult R = Pipeline(Req.Opts).compile(Source, Stages.get());
  Payload = renderResultPayload(R);
  Cache.insert(Key, Payload);
  if (Disk)
    Disk->insert(Key, Payload);
  return Finish(Payload, /*Failed=*/!R.ok(), false, /*Miss=*/true, &R);
}

std::vector<std::string> BatchServer::run(
    const std::vector<std::string> &Lines) {
  auto Start = std::chrono::steady_clock::now();

  // Decode up front (cheap, serial, deterministic ids), then fan the
  // compilations out. Responses land by request index, so output order
  // is input order no matter how the pool schedules.
  struct Slot {
    bool Valid = false;
    ServiceRequest Req;
    std::string Response; // Pre-filled for undecodable requests.
  };
  std::vector<Slot> Slots;
  Slots.reserve(Lines.size());
  unsigned LineNo = 0;
  for (const std::string &Line : Lines) {
    ++LineNo;
    if (Line.find_first_not_of(" \t\r\n") == std::string::npos)
      continue;
    Slot S;
    std::string Error;
    std::string DefaultId = "line-" + itostr(LineNo);
    if (parseServiceRequest(Line, DefaultId, S.Req, Error)) {
      S.Valid = true;
    } else {
      S.Response = renderResponse(DefaultId, errorPayload(Error));
      std::lock_guard<std::mutex> Lock(MetricsMutex);
      ++Metrics.Jobs;
      ++Metrics.Failed;
    }
    Slots.push_back(std::move(S));
  }

  {
    ThreadPool Pool(Config.Workers);
    for (Slot &S : Slots)
      if (S.Valid)
        Pool.submit([this, &S] {
          // Cooperative drain: after a shutdown signal, jobs that have
          // not started yet answer `cancelled` instead of compiling, so
          // the batch still renders every response and the metrics
          // block is reached (the old path died mid-batch).
          if (Config.Stop && Config.Stop->load(std::memory_order_relaxed)) {
            S.Response = renderResponse(
                S.Req.Id,
                errorPayload("cancelled: shutdown requested before this "
                             "job started"));
            std::lock_guard<std::mutex> Lock(MetricsMutex);
            ++Metrics.Jobs;
            ++Metrics.Cancelled;
            return;
          }
          S.Response = serve(S.Req);
        });
    Pool.wait();
  }

  auto End = std::chrono::steady_clock::now();
  std::vector<std::string> Responses;
  Responses.reserve(Slots.size());
  for (Slot &S : Slots)
    Responses.push_back(std::move(S.Response));
  {
    std::lock_guard<std::mutex> Lock(MetricsMutex);
    Metrics.WallMicros +=
        std::chrono::duration<double, std::micro>(End - Start).count();
  }
  return Responses;
}
