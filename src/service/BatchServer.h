//===- service/BatchServer.h - Batch compilation server --------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `gntd` server core: a batch of JSON-lines compilation requests
/// fanned out over a worker thread pool, with a content-addressed
/// result cache and service metrics.
///
/// One request per line:
///
/// \code
///   {"id": "job-1", "source": "distribute x\n...", "options": {...}}
///   {"id": "job-2", "file": "examples/fm/fig11.fm"}
/// \endcode
///
/// Exactly one of "source" (inline program text) or "file" (path read
/// by the worker) is required; "id" defaults to the 1-based line
/// number; "tenant" (optional string) names the quota principal in
/// socket mode and is ignored here; "options" maps onto PipelineOptions: "mode" ("comm"|"pre"),
/// "baseline", "strategy" ("balanced"|"speculative"|"lospre"),
/// "profile" (gnt-profile-v1 text for the speculative strategy),
/// "atomic", "owner_computes", "hoist_zero_trip", "reads",
/// "writes", "annotate", "audit", "verify", "werror", "solver_shards"
/// (integer), "compress_universe" (bool), "incremental" (bool) and
/// "analyses" (array of strings: built-in analysis names or full spec
/// texts, run differentially after the solve) — solver_shards,
/// compress_universe and incremental are solver execution strategies
/// with byte-identical results for any value, so none participates in
/// the result cache key; "strategy", "profile" and "analyses" change
/// the payload and do.
///
/// Compilations run through a content-addressed stage cache
/// (service/StageCache.h): an edited source re-runs only the pipeline
/// stages whose inputs changed, and with "incremental" set the solve
/// stage re-solves only the intervals whose equation inputs changed.
///
/// One response line per request, in request order regardless of
/// scheduling: {"id": ..., "result": {"ok": ..., "annotated": ...,
/// "placements": ..., "diagnostics": ..., "summary": ...}}. Failures
/// are isolated: a request that fails to parse (JSON or FMini) or
/// fails its audit produces a diagnostic payload and never kills the
/// batch. The "result" object is deterministic — it carries no timing
/// or cache state — so serial and parallel runs are byte-identical.
///
/// Repeat requests are served from an LRU-bounded cache keyed on the
/// FNV-1a content hash of (canonicalized options, source); hit/miss
/// counters and per-stage latency distributions land in
/// ServiceMetrics.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SERVICE_BATCHSERVER_H
#define GNT_SERVICE_BATCHSERVER_H

#include "service/DiskCache.h"
#include "service/Metrics.h"
#include "service/Pipeline.h"
#include "service/StageCache.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace gnt {

/// One decoded compilation request.
struct ServiceRequest {
  std::string Id;     ///< Echoed back; line number when absent.
  std::string Source; ///< Inline program text (empty if File is set).
  std::string File;   ///< Path to read instead (empty if Source is set).
  /// Quota accounting principal (socket mode); empty means the shared
  /// anonymous tenant. Routing metadata only — never part of the cache
  /// key, so tenants share each other's compilation results.
  std::string Tenant;
  PipelineOptions Opts;
};

/// Decodes one JSON line into \p Req. On malformed input returns false
/// and sets \p Error; \p DefaultId is used when the line has no "id".
bool parseServiceRequest(const std::string &Line,
                         const std::string &DefaultId, ServiceRequest &Req,
                         std::string &Error);

/// Server configuration.
struct ServiceConfig {
  /// Worker threads; 0 runs jobs inline in the caller (serial mode).
  unsigned Workers = 0;
  /// Result cache capacity in entries; 0 disables caching.
  unsigned CacheCapacity = 1024;
  /// Directory of the persistent disk cache layered under the in-memory
  /// LRU (service/DiskCache.h); empty disables persistence.
  std::string DiskCachePath;
  /// Disk cache capacity in entries.
  unsigned DiskCacheCapacity = 4096;
  /// Byte budget for persisted solve memos (`.gm` entries), evicted
  /// oldest-first when exceeded; 0 means uncapped. Memos are whole
  /// serialized solver arenas, so they are budgeted in bytes rather
  /// than sharing the result entry count.
  std::uint64_t DiskCacheMemoBytes = 64ull << 20;
  /// Cooperative cancellation: when set and it becomes true, batch jobs
  /// that have not started yet return a structured `cancelled` payload
  /// instead of compiling, so a signalled run still drains, renders
  /// every response, and reaches its shutdown metrics block.
  const std::atomic<bool> *Stop = nullptr;
};

/// A bounded, thread-safe, least-recently-used result cache keyed by
/// the pipeline content hash. Values are fully rendered result payloads
/// (strings), so a hit costs one lookup and no recompilation.
class ResultCache {
public:
  explicit ResultCache(unsigned Capacity) : Capacity(Capacity) {}

  /// Returns true and fills \p Payload on a hit (refreshing recency).
  bool lookup(std::uint64_t Key, std::string &Payload);

  /// Inserts \p Payload, evicting the least recently used entry beyond
  /// capacity. Racing inserts of one key are benign (last one wins).
  void insert(std::uint64_t Key, const std::string &Payload);

  unsigned size() const;

private:
  mutable std::mutex M;
  unsigned Capacity;
  /// Most recent first.
  std::list<std::pair<std::uint64_t, std::string>> Lru;
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t, std::string>>::iterator>
      Index;
};

/// The batch server: decode, schedule, cache, collect, measure.
class BatchServer {
public:
  explicit BatchServer(ServiceConfig Config = {});

  /// Processes one batch of JSON-lines (blank lines skipped) and
  /// returns one response line per request, in request order.
  /// Callable repeatedly; the cache and metrics persist across calls.
  std::vector<std::string> run(const std::vector<std::string> &Lines);

  /// Executes one decoded request (compile or cache hit) and returns
  /// the full response line. Thread-safe; this is the execution path
  /// the socket server's workers call directly.
  std::string serve(const ServiceRequest &Req);

  /// Locked copy of the metrics, safe to render while workers are
  /// still recording (the live /metrics endpoint needs this; the
  /// unlocked reference accessor is for quiescent shutdown reads).
  /// Stage-cache hit/miss counters and the incremental solver totals
  /// are merged into the copy — the raw metrics() reference carries
  /// only the job/result-cache counters.
  ServiceMetrics metricsSnapshot() const;

  /// Persists the disk cache index, if a disk cache is configured.
  void flushDiskCache();

  const ServiceMetrics &metrics() const { return Metrics; }
  const ServiceConfig &config() const { return Config; }
  /// The persistent layer, or nullptr when disabled or failed to open.
  const DiskCache *diskCache() const { return Disk.get(); }
  /// Non-empty when DiskCachePath was set but the directory could not
  /// be opened (the server then runs memory-only).
  const std::string &diskCacheError() const { return DiskError; }
  /// The content-addressed stage cache every miss compiles through.
  StageCache &stageCache() { return *Stages; }
  const StageCache &stageCache() const { return *Stages; }

private:
  ServiceConfig Config;
  ResultCache Cache;
  std::unique_ptr<DiskCache> Disk;
  std::unique_ptr<StageCache> Stages;
  std::string DiskError;
  mutable std::mutex MetricsMutex;
  ServiceMetrics Metrics;
};

/// Renders the structured failure payload for a request that never
/// reached the pipeline (malformed JSON, unreadable file, cancelled):
/// ok=false plus one engine diagnostic carrying \p Message.
std::string renderErrorPayload(const std::string &Message);

/// Renders the deterministic result payload for a finished compilation
/// (the cached portion of a response).
std::string renderResultPayload(const PipelineResult &R);

/// Wraps \p Payload into a full response line for request \p Id.
std::string renderResponse(const std::string &Id, const std::string &Payload);

} // namespace gnt

#endif // GNT_SERVICE_BATCHSERVER_H
