//===- service/Pipeline.cpp - Reusable compilation pipeline -----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Pipeline.h"

#include "baseline/Baselines.h"
#include "baseline/LazyCodeMotion.h"
#include "cfg/CfgBuilder.h"
#include "frontend/Parser.h"
#include "service/StageCache.h"
#include "support/Hashing.h"
#include "support/Support.h"

#include <algorithm>
#include <chrono>
#include <mutex>

using namespace gnt;

const char *gnt::pipelineStageName(PipelineStage S) {
  switch (S) {
  case PipelineStage::Frontend:
    return "frontend";
  case PipelineStage::Cfg:
    return "cfg";
  case PipelineStage::Interval:
    return "interval";
  case PipelineStage::Solve:
    return "solve";
  case PipelineStage::Annotate:
    return "annotate";
  case PipelineStage::Audit:
    return "audit";
  case PipelineStage::Analyze:
    return "analyze";
  }
  gntUnreachable("covered switch");
}

std::string PipelineOptions::canonical() const {
  std::string R;
  R += "mode=";
  R += Mode == PipelineMode::Comm ? "comm" : "pre";
  R += ";stop=";
  R += StopAfter == PipelineStop::AfterCfg        ? "cfg"
       : StopAfter == PipelineStop::AfterInterval ? "interval"
                                                  : "full";
  R += ";baseline=" + Baseline;
  R += ";strategy=";
  R += placementStrategyName(Strategy);
  R += ";profile=";
  R += '\x1f'; // Unit separators: profile text is free-form.
  R += Profile;
  R += '\x1f';
  R += ";atomic=" + itostr(Comm.Atomic);
  R += ";owner_computes=" + itostr(Comm.OwnerComputes);
  R += ";hoist_zero_trip=" + itostr(Comm.HoistZeroTrip);
  R += ";reads=" + itostr(Comm.GenerateReads);
  R += ";writes=" + itostr(Comm.GenerateWrites);
  R += ";annotate=" + itostr(Annotate);
  R += ";audit=" + itostr(Audit);
  R += ";verify=" + itostr(Verify);
  R += ";werror=" + itostr(Werror);
  R += ";analyses=" + itostr(static_cast<long long>(ExtraAnalyses.size()));
  for (const std::string &A : ExtraAnalyses) {
    R += '\x1f'; // Unit separator: spec texts may contain ';' and '='.
    R += A;
  }
  // SolverShards and CompressUniverse are intentionally absent: both
  // are solver execution strategies that cannot change any output byte
  // (the invariance contracts of dataflow/GiveNTake.h), so requests
  // differing only in those knobs must share a cache entry. The
  // cache-key audit test in PipelineTest guards this list from drift.
  return R;
}

double PipelineResult::totalMicros() const {
  double Sum = 0;
  for (double M : StageMicros)
    Sum += M;
  return Sum;
}

namespace {

/// RAII stage timer: charges wall time to one StageMicros slot and
/// records the stage as reached.
class StageTimer {
public:
  StageTimer(PipelineResult &R, PipelineStage S)
      : R(R), Slot(static_cast<unsigned>(S)),
        Start(std::chrono::steady_clock::now()) {
    R.Reached = S;
  }
  ~StageTimer() {
    auto End = std::chrono::steady_clock::now();
    R.StageMicros[Slot] +=
        std::chrono::duration<double, std::micro>(End - Start).count();
  }

private:
  PipelineResult &R;
  unsigned Slot;
  std::chrono::steady_clock::time_point Start;
};

Diagnostic makeError(CheckId Check, std::string Message) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Check = Check;
  D.Message = std::move(Message);
  return D;
}

/// Runs the auditor on \p Run and merges the findings into \p R with a
/// problem-name prefix ("READ: node 5: ..." style).
void auditInto(PipelineResult &R, const GntRun &Run,
               const std::vector<std::string> &Names, const char *Label) {
  AuditResult A = auditGntRun(Run, Names);
  for (Diagnostic D : A.Diags.all()) {
    D.Message = std::string(Label) + ": " + D.Message;
    R.Diags.add(std::move(D));
  }
  R.Audit.EngineSolves += A.Stats.EngineSolves;
  R.Audit.ReferenceSweeps += A.Stats.ReferenceSweeps;
  R.Audit.Engine.Iterations += A.Stats.Engine.Iterations;
  R.Audit.Engine.NodeVisits += A.Stats.Engine.NodeVisits;
  R.Audit.Engine.EdgeEvaluations += A.Stats.Engine.EdgeEvaluations;
  R.Audit.Engine.WorklistPeak =
      std::max(R.Audit.Engine.WorklistPeak, A.Stats.Engine.WorklistPeak);
}

/// Accumulates one solve's compression accounting into the result.
void recordCompression(PipelineResult &R, const GntCompressionStats &S) {
  R.CompressedUniverse += S.Universe;
  R.CompressedClasses += S.Applied ? S.Classes : S.Universe;
}

/// Component-wise Now - Then for the monotone incremental counters: the
/// contribution of one solve stage to a slot's accumulating stats.
GntIncrementalStats statsDelta(const GntIncrementalStats &Now,
                               const GntIncrementalStats &Then) {
  GntIncrementalStats D;
  D.FullSolves = Now.FullSolves - Then.FullSolves;
  D.MemoHits = Now.MemoHits - Then.MemoHits;
  D.PartialSolves = Now.PartialSolves - Then.PartialSolves;
  D.NodesTotal = Now.NodesTotal - Then.NodesTotal;
  D.NodesResolved = Now.NodesResolved - Then.NodesResolved;
  D.IntervalsTotal = Now.IntervalsTotal - Then.IntervalsTotal;
  D.IntervalsResolved = Now.IntervalsResolved - Then.IntervalsResolved;
  return D;
}

} // namespace

PipelineResult Pipeline::compile(const std::string &Source) const {
  return compile(Source, nullptr);
}

PipelineResult Pipeline::compile(const std::string &Source,
                                 StageCache *Cache) const {
  PipelineResult R;
  R.Opts = Opts;

  // A non-balanced strategy reconfigures the GIVE-N-TAKE engine; it has
  // no meaning for PRE mode or for a baseline engine.
  if (Opts.Strategy != PlacementStrategy::Balanced) {
    if (Opts.Mode == PipelineMode::Pre) {
      R.Diags.add(makeError(CheckId::Engine,
                            "placement strategies apply to communication "
                            "placement; PRE mode is balanced-only"));
      return R;
    }
    if (!Opts.Baseline.empty()) {
      R.Diags.add(makeError(
          CheckId::Engine,
          "strategy `" +
              std::string(placementStrategyName(Opts.Strategy)) +
              "` conflicts with baseline `" + Opts.Baseline +
              "`: baselines bypass the GIVE-N-TAKE engine"));
      return R;
    }
  }

  // Frontend. Keyed by the raw source text; the artifact carries the
  // canonical AST digest that addresses every downstream stage.
  std::shared_ptr<const ParseArtifact> PA;
  std::uint64_t Kparse = 0;
  if (Cache) {
    Kparse = StageCache::parseKey(Source);
    PA = Cache->lookupParse(Kparse);
  }
  if (!PA) {
    StageTimer T(R, PipelineStage::Frontend);
    ParseResult Parsed = parseProgram(Source);
    if (!Parsed.success()) {
      for (const std::string &E : Parsed.Errors)
        R.Diags.add(makeError(CheckId::Parse, E));
      return R;
    }
    auto A = std::make_shared<ParseArtifact>();
    A->Prog = std::make_shared<const Program>(std::move(Parsed.Prog));
    if (Cache) {
      A->AstDigest = StageCache::astDigest(*A->Prog);
      Cache->insertParse(Kparse, A);
    }
    PA = std::move(A);
  }
  R.Prog = PA->Prog;

  // CFG construction. A hit adopts the artifact's whole chain — its
  // nodes anchor `const Stmt *` into *its* Program, which prints
  // identically (same AST digest) but is a different object.
  std::shared_ptr<const CfgArtifact> CA;
  if (Cache)
    CA = Cache->lookupCfg(StageCache::cfgKey(PA->AstDigest));
  if (!CA) {
    StageTimer T(R, PipelineStage::Cfg);
    CfgBuildResult CfgRes = buildCfg(*PA->Prog);
    if (!CfgRes.success()) {
      for (const std::string &E : CfgRes.Errors)
        R.Diags.add(makeError(CheckId::Build, E));
      return R;
    }
    R.G = std::move(CfgRes.G);
    if (Cache) {
      auto A = std::make_shared<CfgArtifact>();
      A->Parse = PA;
      A->RawG = R.G;
      Cache->insertCfg(StageCache::cfgKey(PA->AstDigest), std::move(A));
    }
  } else {
    PA = CA->Parse;
    R.Prog = PA->Prog;
    R.G = CA->RawG;
    R.Reached = PipelineStage::Cfg;
  }
  if (Opts.StopAfter == PipelineStop::AfterCfg)
    return R;

  // Interval analysis. build() normalizes R.G in place; the artifact
  // keeps the normalized graph so a hit restores both.
  std::shared_ptr<const IntervalArtifact> IA;
  if (Cache)
    IA = Cache->lookupInterval(StageCache::intervalKey(PA->AstDigest));
  if (!IA) {
    StageTimer T(R, PipelineStage::Interval);
    auto IfgRes = IntervalFlowGraph::build(R.G);
    if (!IfgRes.success()) {
      for (const std::string &E : IfgRes.Errors)
        R.Diags.add(makeError(CheckId::Build, E));
      return R;
    }
    if (Cache) {
      auto A = std::make_shared<IntervalArtifact>();
      A->Parse = PA;
      A->NormG = R.G;
      A->Ifg = *IfgRes.Ifg;
      IA = std::move(A);
      Cache->insertInterval(StageCache::intervalKey(PA->AstDigest), IA);
    }
    R.Ifg = std::move(*IfgRes.Ifg);
  } else {
    PA = IA->Parse;
    R.Prog = PA->Prog;
    R.G = IA->NormG;
    R.Ifg = IA->Ifg;
    R.Reached = PipelineStage::Interval;
  }
  if (Opts.StopAfter == PipelineStop::AfterInterval)
    return R;

  // Solve: PRE, a baseline, or GIVE-N-TAKE communication. Keyed by the
  // AST digest plus the option subset the solve consumes.
  std::string SolveOpts;
  std::uint64_t Ksolve = 0;
  std::shared_ptr<const SolveArtifact> SA;
  if (Cache) {
    SolveOpts = StageCache::solveOptionsKey(Opts);
    Ksolve = StageCache::solveKey(PA->AstDigest, SolveOpts);
    SA = Cache->lookupSolve(Ksolve);
  }
  if (SA) {
    IA = SA->Interval;
    PA = IA->Parse;
    R.Prog = PA->Prog;
    R.G = IA->NormG;
    R.Ifg = IA->Ifg;
    R.Plan = SA->Plan;
    R.Pre = SA->Pre;
    R.CompressedUniverse = SA->CompressedUniverse;
    R.CompressedClasses = SA->CompressedClasses;
    R.Reached = PipelineStage::Solve;
  } else {
    // Incremental solving reuses the per-option-set memo slot; the
    // slot lock serializes solves that share it. Baselines have no GNT
    // runs to memoize.
    std::shared_ptr<SolveSlot> Slot;
    std::unique_lock<std::mutex> SlotLock;
    GntIncrementalContext *Inc = nullptr;
    GntIncrementalStats Before;
    if (Cache && Opts.Incremental &&
        (Opts.Mode == PipelineMode::Pre ||
         (Opts.Baseline.empty() &&
          Opts.Strategy == PlacementStrategy::Balanced))) {
      Slot = Cache->solveSlot(SolveOpts);
      SlotLock = std::unique_lock<std::mutex>(Slot->M);
      Inc = &Slot->Ctx;
      Before = Slot->Ctx.Stats;
    }
    {
      StageTimer T(R, PipelineStage::Solve);
      if (Opts.Mode == PipelineMode::Pre) {
        R.Pre = std::make_shared<const ExprPreResult>(
            runExprPre(*R.Prog, R.G, *R.Ifg, Opts.SolverShards,
                       Opts.CompressUniverse, Inc));
        recordCompression(R, R.Pre->Run.Result.Compression);
      } else if (Opts.Baseline == "naive")
        R.Plan = std::make_shared<const CommPlan>(
            naivePlacement(*R.Prog, R.G, *R.Ifg));
      else if (Opts.Baseline == "vectorized")
        R.Plan = std::make_shared<const CommPlan>(
            vectorizedPlacement(*R.Prog, R.G, *R.Ifg));
      else if (Opts.Baseline == "lcm")
        R.Plan = std::make_shared<const CommPlan>(
            lcmPlacement(*R.Prog, R.G, *R.Ifg));
      else if (Opts.Baseline.empty()) {
        if (Opts.Strategy == PlacementStrategy::Balanced)
          R.Plan = std::make_shared<const CommPlan>(
              generateComm(*R.Prog, R.G, *R.Ifg, Opts.Comm,
                           Opts.SolverShards, Opts.CompressUniverse, Inc));
        else {
          ExecProfile Prof;
          std::string ProfErr;
          if (!parseExecProfile(Opts.Profile, Prof, ProfErr)) {
            R.Diags.add(makeError(CheckId::Engine, ProfErr));
            return R;
          }
          R.Plan = std::make_shared<const CommPlan>(generateStrategyComm(
              Opts.Strategy, *R.Prog, R.G, *R.Ifg, Opts.Comm, Prof,
              Opts.SolverShards, Opts.CompressUniverse));
        }
        if (R.Plan->ReadRun)
          recordCompression(R, R.Plan->ReadRun->Result.Compression);
        if (R.Plan->WriteRun)
          recordCompression(R, R.Plan->WriteRun->Result.Compression);
      } else {
        R.Diags.add(makeError(CheckId::Engine,
                              "unknown baseline `" + Opts.Baseline + "`"));
        return R;
      }
    }
    if (Inc) {
      GntIncrementalStats Delta = statsDelta(Slot->Ctx.Stats, Before);
      Cache->noteIncremental(Delta);
      // Only re-persist when a solve refreshed a memo; pure memo hits
      // leave the persisted artifacts bit-identical.
      if (Delta.FullSolves || Delta.PartialSolves)
        Cache->persistSlot(*Slot, SolveOpts);
      SlotLock.unlock();
    }
    if (Cache) {
      auto A = std::make_shared<SolveArtifact>();
      A->Interval = IA;
      A->Plan = R.Plan;
      A->Pre = R.Pre;
      A->CompressedUniverse = R.CompressedUniverse;
      A->CompressedClasses = R.CompressedClasses;
      Cache->insertSolve(Ksolve, std::move(A));
    }
  }

  // Annotation rendering. Keyed by the solve key: the text is a pure
  // function of the solve artifact and the (digest-identical) program.
  if (Opts.Annotate) {
    std::shared_ptr<const std::string> Ann;
    std::uint64_t Kann = 0;
    if (Cache) {
      Kann = StageCache::annotateKey(Ksolve);
      Ann = Cache->lookupAnnotate(Kann);
    }
    if (!Ann) {
      StageTimer T(R, PipelineStage::Annotate);
      R.Annotated = Opts.Mode == PipelineMode::Pre
                        ? R.Pre->annotate(*R.Prog)
                        : R.Plan->annotate(*R.Prog);
      if (Cache)
        Cache->insertAnnotate(Kann,
                              std::make_shared<const std::string>(R.Annotated));
    } else {
      R.Annotated = *Ann;
      R.Reached = PipelineStage::Annotate;
    }
  }

  // Audit and verification always recompute: they exist to re-check
  // the solution, caching their verdicts would be self-defeating.
  if (Opts.Audit || Opts.Verify) {
    StageTimer T(R, PipelineStage::Audit);
    if (Opts.Mode == PipelineMode::Pre) {
      if (Opts.Audit)
        auditInto(R, R.Pre->Run, R.Pre->Exprs, "PRE");
      if (Opts.Verify)
        R.Diags.append(R.Pre->verify().Diags);
    } else {
      if (Opts.Audit) {
        // Baseline plans carry no GNT dataflow runs; auditing one would
        // be a vacuous pass, so report it as an engine error instead.
        if (!R.Plan->ReadRun && !R.Plan->WriteRun) {
          R.Diags.add(makeError(
              CheckId::Engine,
              "audit requires a GIVE-N-TAKE plan (baseline `" +
                  Opts.Baseline + "` has no dataflow runs to audit)"));
        } else {
          std::vector<std::string> Names = R.Plan->Refs.Items.names();
          if (R.Plan->ReadRun)
            auditInto(R, *R.Plan->ReadRun, Names, "READ");
          if (R.Plan->WriteRun)
            auditInto(R, *R.Plan->WriteRun, Names, "WRITE");
        }
      }
      if (Opts.Verify)
        R.Diags.append(R.Plan->verify().Diags);
    }
  }

  // User-specified analyses, each solved differentially on both
  // backends under the run's strategy knobs.
  if (!Opts.ExtraAnalyses.empty()) {
    StageTimer T(R, PipelineStage::Analyze);
    for (const std::string &Entry : Opts.ExtraAnalyses) {
      AnalysisRun Run = runAnalysisSpec(Entry, *R.Prog, R.G, *R.Ifg,
                                        Opts.SolverShards,
                                        Opts.CompressUniverse);
      for (Diagnostic D : Run.Diags.all()) {
        D.Message = "analyze(" + Run.Name + "): " + D.Message;
        R.Diags.add(std::move(D));
      }
      R.Analyses.push_back(std::move(Run));
    }
  }

  if (Opts.Werror)
    R.Diags.promoteToErrors();
  return R;
}

PipelineResult gnt::compilePipeline(const std::string &Source,
                                    const PipelineOptions &Opts) {
  return Pipeline(Opts).compile(Source);
}

std::uint64_t gnt::pipelineCacheKey(const std::string &Source,
                                    const PipelineOptions &Opts) {
  std::uint64_t H = fnv1a(Opts.canonical());
  H = fnv1aAppend(H, std::string(1, '\0'));
  return fnv1aAppend(H, Source);
}

std::uint64_t gnt::resultSignature(const PipelineResult &R) {
  std::uint64_t H = fnv1a(R.Annotated);
  for (const Diagnostic &D : R.Diags.all())
    H = fnv1aAppend(H, D.render() + "\n");
  if (R.Plan) {
    for (const auto &[Kind, Count] : R.Plan->staticCounts())
      H = fnv1aAppend(H, std::string(commOpName(Kind)) + "=" +
                             itostr(Count) + ";");
  }
  if (R.Pre) {
    H = fnv1aAppend(H, "pre_insertions=" +
                           itostr(static_cast<long long>(
                               R.Pre->Insertions.size())));
    H = fnv1aAppend(H, ";pre_redundant=" +
                           itostr(static_cast<long long>(
                               R.Pre->Redundant.size())));
  }
  for (const AnalysisRun &A : R.Analyses) {
    H = fnv1aAppend(H, ";analysis=" + A.Name);
    H = fnv1aAppend(H, std::string(":") + specUniverseName(A.Universe));
    H = fnv1aAppend(H, ":" + hashToHex(A.solutionHash()));
    H = fnv1aAppend(H, A.ok() ? ":ok" : ":failed");
  }
  return H;
}
