//===- service/Pipeline.cpp - Reusable compilation pipeline -----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Pipeline.h"

#include "baseline/Baselines.h"
#include "baseline/LazyCodeMotion.h"
#include "cfg/CfgBuilder.h"
#include "frontend/Parser.h"
#include "support/Hashing.h"
#include "support/Support.h"

#include <algorithm>
#include <chrono>

using namespace gnt;

const char *gnt::pipelineStageName(PipelineStage S) {
  switch (S) {
  case PipelineStage::Frontend:
    return "frontend";
  case PipelineStage::Cfg:
    return "cfg";
  case PipelineStage::Interval:
    return "interval";
  case PipelineStage::Solve:
    return "solve";
  case PipelineStage::Annotate:
    return "annotate";
  case PipelineStage::Audit:
    return "audit";
  case PipelineStage::Analyze:
    return "analyze";
  }
  gntUnreachable("covered switch");
}

std::string PipelineOptions::canonical() const {
  std::string R;
  R += "mode=";
  R += Mode == PipelineMode::Comm ? "comm" : "pre";
  R += ";stop=";
  R += StopAfter == PipelineStop::AfterCfg        ? "cfg"
       : StopAfter == PipelineStop::AfterInterval ? "interval"
                                                  : "full";
  R += ";baseline=" + Baseline;
  R += ";atomic=" + itostr(Comm.Atomic);
  R += ";owner_computes=" + itostr(Comm.OwnerComputes);
  R += ";hoist_zero_trip=" + itostr(Comm.HoistZeroTrip);
  R += ";reads=" + itostr(Comm.GenerateReads);
  R += ";writes=" + itostr(Comm.GenerateWrites);
  R += ";annotate=" + itostr(Annotate);
  R += ";audit=" + itostr(Audit);
  R += ";verify=" + itostr(Verify);
  R += ";werror=" + itostr(Werror);
  R += ";analyses=" + itostr(static_cast<long long>(ExtraAnalyses.size()));
  for (const std::string &A : ExtraAnalyses) {
    R += '\x1f'; // Unit separator: spec texts may contain ';' and '='.
    R += A;
  }
  // SolverShards and CompressUniverse are intentionally absent: both
  // are solver execution strategies that cannot change any output byte
  // (the invariance contracts of dataflow/GiveNTake.h), so requests
  // differing only in those knobs must share a cache entry. The
  // cache-key audit test in PipelineTest guards this list from drift.
  return R;
}

double PipelineResult::totalMicros() const {
  double Sum = 0;
  for (double M : StageMicros)
    Sum += M;
  return Sum;
}

namespace {

/// RAII stage timer: charges wall time to one StageMicros slot and
/// records the stage as reached.
class StageTimer {
public:
  StageTimer(PipelineResult &R, PipelineStage S)
      : R(R), Slot(static_cast<unsigned>(S)),
        Start(std::chrono::steady_clock::now()) {
    R.Reached = S;
  }
  ~StageTimer() {
    auto End = std::chrono::steady_clock::now();
    R.StageMicros[Slot] +=
        std::chrono::duration<double, std::micro>(End - Start).count();
  }

private:
  PipelineResult &R;
  unsigned Slot;
  std::chrono::steady_clock::time_point Start;
};

Diagnostic makeError(CheckId Check, std::string Message) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Check = Check;
  D.Message = std::move(Message);
  return D;
}

/// Runs the auditor on \p Run and merges the findings into \p R with a
/// problem-name prefix ("READ: node 5: ..." style).
void auditInto(PipelineResult &R, const GntRun &Run,
               const std::vector<std::string> &Names, const char *Label) {
  AuditResult A = auditGntRun(Run, Names);
  for (Diagnostic D : A.Diags.all()) {
    D.Message = std::string(Label) + ": " + D.Message;
    R.Diags.add(std::move(D));
  }
  R.Audit.EngineSolves += A.Stats.EngineSolves;
  R.Audit.ReferenceSweeps += A.Stats.ReferenceSweeps;
  R.Audit.Engine.Iterations += A.Stats.Engine.Iterations;
  R.Audit.Engine.NodeVisits += A.Stats.Engine.NodeVisits;
  R.Audit.Engine.EdgeEvaluations += A.Stats.Engine.EdgeEvaluations;
  R.Audit.Engine.WorklistPeak =
      std::max(R.Audit.Engine.WorklistPeak, A.Stats.Engine.WorklistPeak);
}

/// Accumulates one solve's compression accounting into the result.
void recordCompression(PipelineResult &R, const GntCompressionStats &S) {
  R.CompressedUniverse += S.Universe;
  R.CompressedClasses += S.Applied ? S.Classes : S.Universe;
}

} // namespace

PipelineResult Pipeline::compile(const std::string &Source) const {
  PipelineResult R;
  R.Opts = Opts;

  // Frontend.
  {
    StageTimer T(R, PipelineStage::Frontend);
    ParseResult Parsed = parseProgram(Source);
    if (!Parsed.success()) {
      for (const std::string &E : Parsed.Errors)
        R.Diags.add(makeError(CheckId::Parse, E));
      return R;
    }
    R.Prog = std::move(Parsed.Prog);
  }

  // CFG construction + normalization.
  {
    StageTimer T(R, PipelineStage::Cfg);
    CfgBuildResult CfgRes = buildCfg(R.Prog);
    if (!CfgRes.success()) {
      for (const std::string &E : CfgRes.Errors)
        R.Diags.add(makeError(CheckId::Build, E));
      return R;
    }
    R.G = std::move(CfgRes.G);
  }
  if (Opts.StopAfter == PipelineStop::AfterCfg)
    return R;

  // Interval analysis.
  {
    StageTimer T(R, PipelineStage::Interval);
    auto IfgRes = IntervalFlowGraph::build(R.G);
    if (!IfgRes.success()) {
      for (const std::string &E : IfgRes.Errors)
        R.Diags.add(makeError(CheckId::Build, E));
      return R;
    }
    R.Ifg = std::move(*IfgRes.Ifg);
  }
  if (Opts.StopAfter == PipelineStop::AfterInterval)
    return R;

  // Solve: PRE, a baseline, or GIVE-N-TAKE communication.
  if (Opts.Mode == PipelineMode::Pre) {
    {
      StageTimer T(R, PipelineStage::Solve);
      R.Pre = runExprPre(R.Prog, R.G, *R.Ifg, Opts.SolverShards,
                         Opts.CompressUniverse);
      recordCompression(R, R.Pre->Run.Result.Compression);
    }
    if (Opts.Annotate) {
      StageTimer T(R, PipelineStage::Annotate);
      R.Annotated = R.Pre->annotate(R.Prog);
    }
    if (Opts.Audit || Opts.Verify) {
      StageTimer T(R, PipelineStage::Audit);
      if (Opts.Audit)
        auditInto(R, R.Pre->Run, R.Pre->Exprs, "PRE");
      if (Opts.Verify)
        R.Diags.append(R.Pre->verify().Diags);
    }
  } else {
    {
      StageTimer T(R, PipelineStage::Solve);
      if (Opts.Baseline == "naive")
        R.Plan = naivePlacement(R.Prog, R.G, *R.Ifg);
      else if (Opts.Baseline == "vectorized")
        R.Plan = vectorizedPlacement(R.Prog, R.G, *R.Ifg);
      else if (Opts.Baseline == "lcm")
        R.Plan = lcmPlacement(R.Prog, R.G, *R.Ifg);
      else if (Opts.Baseline.empty()) {
        R.Plan = generateComm(R.Prog, R.G, *R.Ifg, Opts.Comm,
                              Opts.SolverShards, Opts.CompressUniverse);
        if (R.Plan->ReadRun)
          recordCompression(R, R.Plan->ReadRun->Result.Compression);
        if (R.Plan->WriteRun)
          recordCompression(R, R.Plan->WriteRun->Result.Compression);
      } else {
        R.Diags.add(makeError(CheckId::Engine,
                              "unknown baseline `" + Opts.Baseline + "`"));
        return R;
      }
    }
    if (Opts.Annotate) {
      StageTimer T(R, PipelineStage::Annotate);
      R.Annotated = R.Plan->annotate(R.Prog);
    }
    if (Opts.Audit || Opts.Verify) {
      StageTimer T(R, PipelineStage::Audit);
      if (Opts.Audit) {
        // Baseline plans carry no GNT dataflow runs; auditing one would
        // be a vacuous pass, so report it as an engine error instead.
        if (!R.Plan->ReadRun && !R.Plan->WriteRun) {
          R.Diags.add(makeError(
              CheckId::Engine,
              "audit requires a GIVE-N-TAKE plan (baseline `" +
                  Opts.Baseline + "` has no dataflow runs to audit)"));
        } else {
          std::vector<std::string> Names = R.Plan->Refs.Items.names();
          if (R.Plan->ReadRun)
            auditInto(R, *R.Plan->ReadRun, Names, "READ");
          if (R.Plan->WriteRun)
            auditInto(R, *R.Plan->WriteRun, Names, "WRITE");
        }
      }
      if (Opts.Verify)
        R.Diags.append(R.Plan->verify().Diags);
    }
  }

  // User-specified analyses, each solved differentially on both
  // backends under the run's strategy knobs.
  if (!Opts.ExtraAnalyses.empty()) {
    StageTimer T(R, PipelineStage::Analyze);
    for (const std::string &Entry : Opts.ExtraAnalyses) {
      AnalysisRun Run = runAnalysisSpec(Entry, R.Prog, R.G, *R.Ifg,
                                        Opts.SolverShards,
                                        Opts.CompressUniverse);
      for (Diagnostic D : Run.Diags.all()) {
        D.Message = "analyze(" + Run.Name + "): " + D.Message;
        R.Diags.add(std::move(D));
      }
      R.Analyses.push_back(std::move(Run));
    }
  }

  if (Opts.Werror)
    R.Diags.promoteToErrors();
  return R;
}

PipelineResult gnt::compilePipeline(const std::string &Source,
                                    const PipelineOptions &Opts) {
  return Pipeline(Opts).compile(Source);
}

std::uint64_t gnt::pipelineCacheKey(const std::string &Source,
                                    const PipelineOptions &Opts) {
  std::uint64_t H = fnv1a(Opts.canonical());
  H = fnv1aAppend(H, std::string(1, '\0'));
  return fnv1aAppend(H, Source);
}

std::uint64_t gnt::resultSignature(const PipelineResult &R) {
  std::uint64_t H = fnv1a(R.Annotated);
  for (const Diagnostic &D : R.Diags.all())
    H = fnv1aAppend(H, D.render() + "\n");
  if (R.Plan) {
    for (const auto &[Kind, Count] : R.Plan->staticCounts())
      H = fnv1aAppend(H, std::string(commOpName(Kind)) + "=" +
                             itostr(Count) + ";");
  }
  if (R.Pre) {
    H = fnv1aAppend(H, "pre_insertions=" +
                           itostr(static_cast<long long>(
                               R.Pre->Insertions.size())));
    H = fnv1aAppend(H, ";pre_redundant=" +
                           itostr(static_cast<long long>(
                               R.Pre->Redundant.size())));
  }
  for (const AnalysisRun &A : R.Analyses) {
    H = fnv1aAppend(H, ";analysis=" + A.Name);
    H = fnv1aAppend(H, std::string(":") + specUniverseName(A.Universe));
    H = fnv1aAppend(H, ":" + hashToHex(A.solutionHash()));
    H = fnv1aAppend(H, A.ok() ? ":ok" : ":failed");
  }
  return H;
}
