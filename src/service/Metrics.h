//===- service/Metrics.h - Batch service metrics ---------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shutdown-time metrics for the batch compilation service: job and
/// cache counters, wall-clock throughput, and latency distributions
/// (min/mean/p50/p99) per pipeline stage and per whole job. Samples are
/// recorded under the server's lock and reduced only when rendered, so
/// the hot path stays a push_back.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SERVICE_METRICS_H
#define GNT_SERVICE_METRICS_H

#include "service/Pipeline.h"
#include "service/StageCache.h"
#include "support/Json.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace gnt {

/// A latency sample set with order-statistic reductions.
class LatencyStats {
public:
  void record(double Micros) { Samples.push_back(Micros); }

  bool empty() const { return Samples.empty(); }
  size_t count() const { return Samples.size(); }

  double min() const {
    return Samples.empty()
               ? 0
               : *std::min_element(Samples.begin(), Samples.end());
  }

  double mean() const {
    if (Samples.empty())
      return 0;
    double Sum = 0;
    for (double S : Samples)
      Sum += S;
    return Sum / static_cast<double>(Samples.size());
  }

  /// Nearest-rank percentile; \p P in [0, 100].
  double percentile(double P) const {
    if (Samples.empty())
      return 0;
    std::vector<double> Sorted = Samples;
    std::sort(Sorted.begin(), Sorted.end());
    double Rank = P / 100.0 * static_cast<double>(Sorted.size() - 1);
    size_t Idx = static_cast<size_t>(Rank + 0.5);
    return Sorted[std::min(Idx, Sorted.size() - 1)];
  }

private:
  std::vector<double> Samples;
};

/// Everything the service measured over one run.
struct ServiceMetrics {
  unsigned long long Jobs = 0;      ///< Requests processed (incl. failed).
  unsigned long long Failed = 0;    ///< Requests whose result has errors.
  unsigned long long CacheHits = 0; ///< In-memory LRU hits.
  unsigned long long CacheMisses = 0;
  /// Persistent-layer hits (miss in memory, valid entry on disk).
  /// Always zero when no disk cache is configured.
  unsigned long long DiskHits = 0;
  /// Jobs answered `cancelled` because shutdown was requested before
  /// they started (ServiceConfig::Stop).
  unsigned long long Cancelled = 0;
  double WallMicros = 0; ///< Batch wall time (submit to drain).

  LatencyStats JobLatency; ///< Whole-job latency (hits and misses).
  /// Per-stage latency, misses only (hits run no stages).
  LatencyStats StageLatency[NumPipelineStages];

  /// Universe-compression accounting summed over compiled (miss) jobs:
  /// total original items vs total classes actually solved. Both stay
  /// zero when no job solved with compression enabled.
  unsigned long long CompressedUniverseItems = 0;
  unsigned long long CompressedClassItems = 0;

  /// Per-stage stage-cache hits and misses (service/StageCache.h
  /// order: parse, cfg, interval, solve, annotate). All zero when no
  /// job compiled through a stage cache — only requests that miss the
  /// result cache probe the stages.
  unsigned long long StageHits[NumCacheStages] = {};
  unsigned long long StageMisses[NumCacheStages] = {};

  /// Incremental solver counters aggregated over every solve slot
  /// (dataflow/Incremental.h). All zero unless a request asked for
  /// incremental solving.
  GntIncrementalStats Incremental;

  /// Hits / (hits + misses) for one cached stage; 0 when never probed.
  double stageHitRate(unsigned Stage) const {
    unsigned long long Probes = StageHits[Stage] + StageMisses[Stage];
    return Probes ? static_cast<double>(StageHits[Stage]) /
                        static_cast<double>(Probes)
                  : 0;
  }

  /// Aggregate classes/universe ratio; 1.0 when nothing was compressed.
  double compressionRatio() const {
    return CompressedUniverseItems
               ? static_cast<double>(CompressedClassItems) /
                     static_cast<double>(CompressedUniverseItems)
               : 1.0;
  }

  double throughputJobsPerSec() const {
    return WallMicros > 0
               ? static_cast<double>(Jobs) / (WallMicros / 1e6)
               : 0;
  }

  double cacheHitRate() const {
    unsigned long long Lookups = CacheHits + CacheMisses;
    return Lookups ? static_cast<double>(CacheHits) /
                         static_cast<double>(Lookups)
                   : 0;
  }

  /// Human-readable multi-line summary.
  std::string renderText() const {
    char Buf[256];
    std::string R;
    std::snprintf(Buf, sizeof(Buf),
                  "jobs: %llu (%llu failed)  wall: %.1f ms  "
                  "throughput: %.1f jobs/s\n",
                  Jobs, Failed, WallMicros / 1e3, throughputJobsPerSec());
    R += Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "cache: %llu hits / %llu misses (%.1f%% hit rate)\n",
                  CacheHits, CacheMisses, cacheHitRate() * 100.0);
    R += Buf;
    // Conditional lines: runs without a disk cache or a shutdown signal
    // render byte-identically to the pre-persistence format.
    if (DiskHits) {
      std::snprintf(Buf, sizeof(Buf), "disk cache: %llu hits\n", DiskHits);
      R += Buf;
    }
    if (Cancelled) {
      std::snprintf(Buf, sizeof(Buf), "cancelled: %llu jobs\n", Cancelled);
      R += Buf;
    }
    if (CompressedUniverseItems) {
      std::snprintf(Buf, sizeof(Buf),
                    "compression: %llu items -> %llu classes "
                    "(ratio %.3f)\n",
                    CompressedUniverseItems, CompressedClassItems,
                    compressionRatio());
      R += Buf;
    }
    // Stage cache and incremental blocks share the conditional idiom:
    // a server that never compiled through a stage cache (or never
    // solved incrementally) renders byte-identically to the old format.
    bool AnyStage = false;
    for (unsigned I = 0; I < NumCacheStages; ++I)
      AnyStage = AnyStage || StageHits[I] || StageMisses[I];
    if (AnyStage) {
      R += "stage cache:\n";
      for (unsigned I = 0; I < NumCacheStages; ++I) {
        if (!StageHits[I] && !StageMisses[I])
          continue;
        std::snprintf(Buf, sizeof(Buf),
                      "  %-9s %llu hits / %llu misses (%.1f%% hit rate)\n",
                      cacheStageName(static_cast<CacheStage>(I)),
                      StageHits[I], StageMisses[I],
                      stageHitRate(I) * 100.0);
        R += Buf;
      }
    }
    if (Incremental.any()) {
      std::snprintf(Buf, sizeof(Buf),
                    "incremental: %llu full / %llu partial / %llu memo "
                    "hits\n",
                    Incremental.FullSolves, Incremental.PartialSolves,
                    Incremental.MemoHits);
      R += Buf;
      if (Incremental.PartialSolves) {
        std::snprintf(Buf, sizeof(Buf),
                      "  re-solved %llu/%llu intervals (%llu/%llu "
                      "nodes)\n",
                      Incremental.IntervalsResolved,
                      Incremental.IntervalsTotal,
                      Incremental.NodesResolved, Incremental.NodesTotal);
        R += Buf;
      }
    }
    auto Line = [&R, &Buf](const char *Name, const LatencyStats &L) {
      if (L.empty())
        return;
      std::snprintf(Buf, sizeof(Buf),
                    "  %-9s min %8.1fus  mean %8.1fus  p50 %8.1fus  "
                    "p99 %8.1fus  (n=%zu)\n",
                    Name, L.min(), L.mean(), L.percentile(50),
                    L.percentile(99), L.count());
      R += Buf;
    };
    R += "latency:\n";
    Line("job", JobLatency);
    for (unsigned I = 0; I < NumPipelineStages; ++I)
      Line(pipelineStageName(static_cast<PipelineStage>(I)),
           StageLatency[I]);
    return R;
  }

  /// Machine-readable rendering with the same content.
  std::string renderJson() const {
    JsonWriter W;
    W.beginObject();
    W.key("jobs").value(static_cast<long long>(Jobs));
    W.key("failed").value(static_cast<long long>(Failed));
    W.key("wall_micros").value(static_cast<long long>(WallMicros));
    W.key("throughput_jobs_per_sec");
    jsonDouble(W, throughputJobsPerSec());
    W.key("cache");
    W.beginObject();
    W.key("hits").value(static_cast<long long>(CacheHits));
    W.key("misses").value(static_cast<long long>(CacheMisses));
    W.key("hit_rate");
    jsonDouble(W, cacheHitRate());
    // Emitted only when nonzero, like the text rendering, so stdio-mode
    // metrics JSON stays byte-compatible with the pre-net format.
    if (DiskHits)
      W.key("disk_hits").value(static_cast<long long>(DiskHits));
    W.endObject();
    if (Cancelled)
      W.key("cancelled").value(static_cast<long long>(Cancelled));
    // Conditional like the text rendering: absent unless some job
    // compiled through a stage cache / solved incrementally.
    bool AnyStage = false;
    for (unsigned I = 0; I < NumCacheStages; ++I)
      AnyStage = AnyStage || StageHits[I] || StageMisses[I];
    if (AnyStage) {
      W.key("stage_cache");
      W.beginObject();
      for (unsigned I = 0; I < NumCacheStages; ++I) {
        W.key(cacheStageName(static_cast<CacheStage>(I)));
        W.beginObject();
        W.key("hits").value(static_cast<long long>(StageHits[I]));
        W.key("misses").value(static_cast<long long>(StageMisses[I]));
        W.key("hit_rate");
        jsonDouble(W, stageHitRate(I));
        W.endObject();
      }
      W.endObject();
    }
    if (Incremental.any()) {
      W.key("incremental");
      W.beginObject();
      W.key("full_solves")
          .value(static_cast<long long>(Incremental.FullSolves));
      W.key("partial_solves")
          .value(static_cast<long long>(Incremental.PartialSolves));
      W.key("memo_hits").value(static_cast<long long>(Incremental.MemoHits));
      W.key("intervals_resolved")
          .value(static_cast<long long>(Incremental.IntervalsResolved));
      W.key("intervals_total")
          .value(static_cast<long long>(Incremental.IntervalsTotal));
      W.key("nodes_resolved")
          .value(static_cast<long long>(Incremental.NodesResolved));
      W.key("nodes_total")
          .value(static_cast<long long>(Incremental.NodesTotal));
      W.endObject();
    }
    W.key("compression");
    W.beginObject();
    W.key("universe_items")
        .value(static_cast<long long>(CompressedUniverseItems));
    W.key("class_items").value(static_cast<long long>(CompressedClassItems));
    W.key("ratio");
    jsonDouble(W, compressionRatio());
    W.endObject();
    W.key("latency_micros");
    W.beginObject();
    emitLatency(W, "job", JobLatency);
    for (unsigned I = 0; I < NumPipelineStages; ++I)
      emitLatency(W, pipelineStageName(static_cast<PipelineStage>(I)),
                  StageLatency[I]);
    W.endObject();
    W.endObject();
    return W.str();
  }

private:
  /// JsonWriter has no double overload (the diagnostics vocabulary is
  /// integral); render with fixed precision so output is stable.
  static void jsonDouble(JsonWriter &W, double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f", V);
    W.raw(Buf);
  }

  static void emitLatency(JsonWriter &W, const char *Name,
                          const LatencyStats &L) {
    if (L.empty())
      return;
    W.key(Name);
    W.beginObject();
    W.key("count").value(static_cast<long long>(L.count()));
    W.key("min");
    jsonDouble(W, L.min());
    W.key("mean");
    jsonDouble(W, L.mean());
    W.key("p50");
    jsonDouble(W, L.percentile(50));
    W.key("p99");
    jsonDouble(W, L.percentile(99));
    W.endObject();
  }
};

} // namespace gnt

#endif // GNT_SERVICE_METRICS_H
