//===- service/DiskCache.cpp - Persistent content-addressed cache -----------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/DiskCache.h"

#include "support/Endian.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <system_error>
#include <vector>

using namespace gnt;

namespace fs = std::filesystem;

namespace {

constexpr std::size_t HeaderBytes = 40;
constexpr const char *ResultSuffix = ".gc";
constexpr const char *MemoSuffix = ".gm";

std::uint64_t hashBytes(const unsigned char *P, std::size_t N) {
  std::uint64_t H = FnvOffsetBasis;
  for (std::size_t I = 0; I < N; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

/// Parses a 16-hex-digit entry file stem; false on any other name.
bool parseKeyStem(const std::string &Stem, std::uint64_t &Key) {
  if (Stem.size() != 16)
    return false;
  Key = 0;
  for (char C : Stem) {
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<unsigned>(C - 'a') + 10;
    else
      return false;
    Key = (Key << 4) | Digit;
  }
  return true;
}

} // namespace

DiskCache::DiskCache(std::string Dir, unsigned MaxEntries,
                     std::uint64_t MaxMemoBytes)
    : DirName(Dir), Dir(DirName), MaxEntries(MaxEntries ? MaxEntries : 1),
      MaxMemoBytes(MaxMemoBytes) {
  Results.Suffix = ResultSuffix;
  Memos.Suffix = MemoSuffix;
}

fs::path DiskCache::entryPath(const Bucket &B, std::uint64_t Key) const {
  return Dir / (hashToHex(Key) + B.Suffix);
}

bool DiskCache::open(std::string &Error) {
  std::lock_guard<std::mutex> Lock(M);
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec) {
    Error = "cannot create cache directory `" + DirName +
            "`: " + Ec.message();
    return false;
  }
  // Oldest-first scan so restart preserves the eviction order the
  // previous process would have used. Both categories come out of the
  // same directory pass; memo entries also record their file size,
  // which is what the byte budget below is charged in.
  struct FoundEntry {
    fs::file_time_type Time;
    std::uint64_t Key;
    Bucket *B;
    std::uint64_t Bytes;
  };
  std::vector<FoundEntry> Found;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec)) {
    if (Ec)
      break;
    if (!E.is_regular_file())
      continue;
    Bucket *B = nullptr;
    if (E.path().extension() == ResultSuffix)
      B = &Results;
    else if (E.path().extension() == MemoSuffix)
      B = &Memos;
    else
      continue;
    std::uint64_t Key;
    if (!parseKeyStem(E.path().stem().string(), Key))
      continue;
    std::error_code TimeEc;
    std::uint64_t Bytes = E.file_size(TimeEc);
    if (TimeEc)
      Bytes = 0;
    Found.push_back({E.last_write_time(TimeEc), Key, B, Bytes});
  }
  if (Ec) {
    Error = "cannot scan cache directory `" + DirName +
            "`: " + Ec.message();
    return false;
  }
  std::sort(Found.begin(), Found.end(),
            [](const auto &A, const auto &B) { return A.Time < B.Time; });
  for (const FoundEntry &F : Found) {
    F.B->Order.push_back(F.Key);
    F.B->Index[F.Key] = {std::prev(F.B->Order.end()), F.Bytes};
    F.B->TotalBytes += F.Bytes;
  }
  evictLocked();
  return true;
}

void DiskCache::removeLocked(Bucket &B, std::uint64_t Key) {
  auto It = B.Index.find(Key);
  if (It != B.Index.end()) {
    B.Order.erase(It->second.Pos);
    B.TotalBytes -= It->second.Bytes;
    B.Index.erase(It);
  }
  std::error_code Ec;
  fs::remove(entryPath(B, Key), Ec);
}

void DiskCache::evictLocked() {
  while (Results.Index.size() > MaxEntries) {
    Stats.Evicted.fetch_add(1, std::memory_order_relaxed);
    removeLocked(Results, Results.Order.front());
  }
  // The memo budget is bytes, not count: one oversized memo can push
  // out many small ones, and an over-budget *single* memo simply gets
  // evicted on the next insert (it still served its first use).
  if (MaxMemoBytes)
    while (Memos.TotalBytes > MaxMemoBytes && !Memos.Order.empty()) {
      Stats.Evicted.fetch_add(1, std::memory_order_relaxed);
      removeLocked(Memos, Memos.Order.front());
    }
}

bool DiskCache::lookupIn(Bucket &B, std::uint64_t Key, std::string &Payload) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = B.Index.find(Key);
  if (It == B.Index.end()) {
    Stats.Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Read and validate defensively: every failure path below discards
  // the entry and misses instead of trusting disk bytes.
  auto Corrupt = [&] {
    Stats.Corrupt.fetch_add(1, std::memory_order_relaxed);
    Stats.Misses.fetch_add(1, std::memory_order_relaxed);
    removeLocked(B, Key);
    return false;
  };

  std::ifstream In(entryPath(B, Key), std::ios::binary);
  if (!In)
    return Corrupt();
  unsigned char Header[HeaderBytes];
  if (!In.read(reinterpret_cast<char *>(Header), HeaderBytes))
    return Corrupt();
  if (std::memcmp(Header, Magic, 8) != 0)
    return Corrupt();
  if (getLe64(Header + 32) != hashBytes(Header, 32))
    return Corrupt();
  if (getLe64(Header + 8) != Key)
    return Corrupt();
  std::uint64_t Size = getLe64(Header + 16);
  // Refuse absurd sizes before allocating (a corrupt length field must
  // not become a multi-gigabyte allocation).
  if (Size > (std::uint64_t{1} << 32))
    return Corrupt();
  std::string Data(static_cast<std::size_t>(Size), '\0');
  if (!In.read(Data.data(), static_cast<std::streamsize>(Size)))
    return Corrupt();
  if (In.get() != std::ifstream::traits_type::eof())
    return Corrupt(); // Trailing bytes: not what we wrote.
  if (fnv1a(Data) != getLe64(Header + 24))
    return Corrupt();

  B.Order.splice(B.Order.end(), B.Order, It->second.Pos); // Refresh recency.
  Payload = std::move(Data);
  Stats.Hits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool DiskCache::lookup(std::uint64_t Key, std::string &Payload) {
  return lookupIn(Results, Key, Payload);
}

bool DiskCache::lookupMemo(std::uint64_t Key, std::string &Payload) {
  return lookupIn(Memos, Key, Payload);
}

void DiskCache::insertIn(Bucket &B, std::uint64_t Key,
                         const std::string &Payload) {
  std::lock_guard<std::mutex> Lock(M);

  unsigned char Header[HeaderBytes];
  std::memcpy(Header, Magic, 8);
  putLe64(Header + 8, Key);
  putLe64(Header + 16, Payload.size());
  putLe64(Header + 24, fnv1a(Payload));
  putLe64(Header + 32, hashBytes(Header, 32));

  // Temp file + rename: a crash mid-write can orphan a .tmp file but
  // never a half-written entry under a valid key name.
  fs::path Tmp = Dir / ("tmp-" + hashToHex(Key));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return;
    Out.write(reinterpret_cast<const char *>(Header), HeaderBytes);
    Out.write(Payload.data(),
              static_cast<std::streamsize>(Payload.size()));
    if (!Out) {
      Out.close();
      std::error_code Ec;
      fs::remove(Tmp, Ec);
      return;
    }
  }
  std::error_code Ec;
  fs::rename(Tmp, entryPath(B, Key), Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return;
  }
  Stats.Writes.fetch_add(1, std::memory_order_relaxed);

  const std::uint64_t Bytes = HeaderBytes + Payload.size();
  auto It = B.Index.find(Key);
  if (It != B.Index.end()) {
    B.Order.splice(B.Order.end(), B.Order, It->second.Pos);
    B.TotalBytes += Bytes - It->second.Bytes;
    It->second.Bytes = Bytes;
  } else {
    B.Order.push_back(Key);
    B.Index[Key] = {std::prev(B.Order.end()), Bytes};
    B.TotalBytes += Bytes;
  }
  evictLocked();
}

void DiskCache::insert(std::uint64_t Key, const std::string &Payload) {
  insertIn(Results, Key, Payload);
}

void DiskCache::insertMemo(std::uint64_t Key, const std::string &Payload) {
  insertIn(Memos, Key, Payload);
}

void DiskCache::flush() {
  std::lock_guard<std::mutex> Lock(M);
  fs::path Tmp = Dir / "index.tmp";
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out)
      return;
    Out << "gnt-disk-cache-v1\n"
        << "entries " << Results.Index.size() << "\n"
        << "hits " << Stats.Hits.load(std::memory_order_relaxed) << "\n"
        << "misses " << Stats.Misses.load(std::memory_order_relaxed) << "\n"
        << "writes " << Stats.Writes.load(std::memory_order_relaxed) << "\n"
        << "corrupt " << Stats.Corrupt.load(std::memory_order_relaxed)
        << "\n"
        << "evicted " << Stats.Evicted.load(std::memory_order_relaxed)
        << "\n"
        << "memo-entries " << Memos.Index.size() << "\n"
        << "memo-bytes " << Memos.TotalBytes << "\n";
    for (std::uint64_t Key : Results.Order)
      Out << hashToHex(Key) << "\n";
    for (std::uint64_t Key : Memos.Order)
      Out << "memo " << hashToHex(Key) << "\n";
  }
  std::error_code Ec;
  fs::rename(Tmp, Dir / "index.txt", Ec);
}

unsigned DiskCache::entries() const {
  std::lock_guard<std::mutex> Lock(M);
  return static_cast<unsigned>(Results.Index.size());
}

unsigned DiskCache::memoEntries() const {
  std::lock_guard<std::mutex> Lock(M);
  return static_cast<unsigned>(Memos.Index.size());
}

std::uint64_t DiskCache::memoBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Memos.TotalBytes;
}
