//===- service/DiskCache.cpp - Persistent content-addressed cache -----------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/DiskCache.h"

#include "support/Endian.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <system_error>
#include <vector>

using namespace gnt;

namespace fs = std::filesystem;

namespace {

constexpr std::size_t HeaderBytes = 40;
constexpr const char *EntrySuffix = ".gc";

std::uint64_t hashBytes(const unsigned char *P, std::size_t N) {
  std::uint64_t H = FnvOffsetBasis;
  for (std::size_t I = 0; I < N; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

/// Parses a 16-hex-digit entry file stem; false on any other name.
bool parseKeyStem(const std::string &Stem, std::uint64_t &Key) {
  if (Stem.size() != 16)
    return false;
  Key = 0;
  for (char C : Stem) {
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<unsigned>(C - 'a') + 10;
    else
      return false;
    Key = (Key << 4) | Digit;
  }
  return true;
}

} // namespace

DiskCache::DiskCache(std::string Dir, unsigned MaxEntries)
    : DirName(Dir), Dir(DirName), MaxEntries(MaxEntries ? MaxEntries : 1) {}

fs::path DiskCache::entryPath(std::uint64_t Key) const {
  return Dir / (hashToHex(Key) + EntrySuffix);
}

bool DiskCache::open(std::string &Error) {
  std::lock_guard<std::mutex> Lock(M);
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec) {
    Error = "cannot create cache directory `" + DirName +
            "`: " + Ec.message();
    return false;
  }
  // Oldest-first scan so restart preserves the eviction order the
  // previous process would have used.
  std::vector<std::pair<fs::file_time_type, std::uint64_t>> Found;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec)) {
    if (Ec)
      break;
    if (!E.is_regular_file() || E.path().extension() != EntrySuffix)
      continue;
    std::uint64_t Key;
    if (!parseKeyStem(E.path().stem().string(), Key))
      continue;
    std::error_code TimeEc;
    Found.emplace_back(E.last_write_time(TimeEc), Key);
  }
  if (Ec) {
    Error = "cannot scan cache directory `" + DirName +
            "`: " + Ec.message();
    return false;
  }
  std::sort(Found.begin(), Found.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  for (const auto &[Time, Key] : Found) {
    Order.push_back(Key);
    Index[Key] = std::prev(Order.end());
  }
  while (Index.size() > MaxEntries) {
    Stats.Evicted.fetch_add(1, std::memory_order_relaxed);
    removeLocked(Order.front());
  }
  return true;
}

void DiskCache::removeLocked(std::uint64_t Key) {
  auto It = Index.find(Key);
  if (It != Index.end()) {
    Order.erase(It->second);
    Index.erase(It);
  }
  std::error_code Ec;
  fs::remove(entryPath(Key), Ec);
}

bool DiskCache::lookup(std::uint64_t Key, std::string &Payload) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    Stats.Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Read and validate defensively: every failure path below discards
  // the entry and misses instead of trusting disk bytes.
  auto Corrupt = [&] {
    Stats.Corrupt.fetch_add(1, std::memory_order_relaxed);
    Stats.Misses.fetch_add(1, std::memory_order_relaxed);
    removeLocked(Key);
    return false;
  };

  std::ifstream In(entryPath(Key), std::ios::binary);
  if (!In)
    return Corrupt();
  unsigned char Header[HeaderBytes];
  if (!In.read(reinterpret_cast<char *>(Header), HeaderBytes))
    return Corrupt();
  if (std::memcmp(Header, Magic, 8) != 0)
    return Corrupt();
  if (getLe64(Header + 32) != hashBytes(Header, 32))
    return Corrupt();
  if (getLe64(Header + 8) != Key)
    return Corrupt();
  std::uint64_t Size = getLe64(Header + 16);
  // Refuse absurd sizes before allocating (a corrupt length field must
  // not become a multi-gigabyte allocation).
  if (Size > (std::uint64_t{1} << 32))
    return Corrupt();
  std::string Data(static_cast<std::size_t>(Size), '\0');
  if (!In.read(Data.data(), static_cast<std::streamsize>(Size)))
    return Corrupt();
  if (In.get() != std::ifstream::traits_type::eof())
    return Corrupt(); // Trailing bytes: not what we wrote.
  if (fnv1a(Data) != getLe64(Header + 24))
    return Corrupt();

  Order.splice(Order.end(), Order, It->second); // Refresh recency.
  Payload = std::move(Data);
  Stats.Hits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void DiskCache::insert(std::uint64_t Key, const std::string &Payload) {
  std::lock_guard<std::mutex> Lock(M);

  unsigned char Header[HeaderBytes];
  std::memcpy(Header, Magic, 8);
  putLe64(Header + 8, Key);
  putLe64(Header + 16, Payload.size());
  putLe64(Header + 24, fnv1a(Payload));
  putLe64(Header + 32, hashBytes(Header, 32));

  // Temp file + rename: a crash mid-write can orphan a .tmp file but
  // never a half-written entry under a valid key name.
  fs::path Tmp = Dir / ("tmp-" + hashToHex(Key));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return;
    Out.write(reinterpret_cast<const char *>(Header), HeaderBytes);
    Out.write(Payload.data(),
              static_cast<std::streamsize>(Payload.size()));
    if (!Out) {
      Out.close();
      std::error_code Ec;
      fs::remove(Tmp, Ec);
      return;
    }
  }
  std::error_code Ec;
  fs::rename(Tmp, entryPath(Key), Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return;
  }
  Stats.Writes.fetch_add(1, std::memory_order_relaxed);

  auto It = Index.find(Key);
  if (It != Index.end()) {
    Order.splice(Order.end(), Order, It->second);
  } else {
    Order.push_back(Key);
    Index[Key] = std::prev(Order.end());
  }
  while (Index.size() > MaxEntries) {
    Stats.Evicted.fetch_add(1, std::memory_order_relaxed);
    removeLocked(Order.front());
  }
}

void DiskCache::flush() {
  std::lock_guard<std::mutex> Lock(M);
  fs::path Tmp = Dir / "index.tmp";
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out)
      return;
    Out << "gnt-disk-cache-v1\n"
        << "entries " << Index.size() << "\n"
        << "hits " << Stats.Hits.load(std::memory_order_relaxed) << "\n"
        << "misses " << Stats.Misses.load(std::memory_order_relaxed) << "\n"
        << "writes " << Stats.Writes.load(std::memory_order_relaxed) << "\n"
        << "corrupt " << Stats.Corrupt.load(std::memory_order_relaxed)
        << "\n"
        << "evicted " << Stats.Evicted.load(std::memory_order_relaxed)
        << "\n";
    for (std::uint64_t Key : Order)
      Out << hashToHex(Key) << "\n";
  }
  std::error_code Ec;
  fs::rename(Tmp, Dir / "index.txt", Ec);
}

unsigned DiskCache::entries() const {
  std::lock_guard<std::mutex> Lock(M);
  return static_cast<unsigned>(Index.size());
}
