//===- service/DiskCache.h - Persistent content-addressed cache -*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent layer under the in-memory result cache: one file per
/// cached payload, content-addressed by the 64-bit pipeline cache key,
/// so a restarted server keeps its hit ratio. The format is defensive —
/// the cache trusts nothing it reads back:
///
///   entry file <dir>/<16-hex-key>.gc, little-endian header:
///     bytes  0..7   magic + format version ("GNTDCv1\n")
///     bytes  8..15  cache key (must equal the file name and the lookup)
///     bytes 16..23  payload size in bytes
///     bytes 24..31  FNV-1a of the payload
///     bytes 32..39  FNV-1a of header bytes 0..31
///     bytes 40..    payload
///
/// A lookup validates magic, header checksum, key, size, and payload
/// hash; any mismatch (bit flip, truncation, format bump, renamed file)
/// deletes the entry, counts it as corrupt, and reports a miss — a bad
/// byte on disk costs one recompilation, never a wrong answer. Writes go
/// through a temp file + rename so a crash mid-write leaves no partial
/// entry under a valid name. Entries beyond capacity are evicted oldest
/// first (recency-refreshed on hit); flush() persists a human-readable
/// index next to the entries for post-mortems and the shutdown path.
///
/// Thread-safe: one internal mutex serializes all filesystem traffic.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SERVICE_DISKCACHE_H
#define GNT_SERVICE_DISKCACHE_H

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace gnt {

/// Monotonic counters the cache keeps about itself. Readable while the
/// cache is live (atomics); rendered into /metrics and the flush index.
struct DiskCacheStats {
  std::atomic<std::uint64_t> Hits{0};    ///< Valid entries served.
  std::atomic<std::uint64_t> Misses{0};  ///< Keys with no (valid) entry.
  std::atomic<std::uint64_t> Writes{0};  ///< Entries written.
  std::atomic<std::uint64_t> Corrupt{0}; ///< Entries discarded as invalid.
  std::atomic<std::uint64_t> Evicted{0}; ///< Entries removed for capacity.
};

class DiskCache {
public:
  /// On-disk format tag; bump the digit when the header layout changes
  /// and every older entry self-invalidates on its next lookup.
  static constexpr char Magic[9] = "GNTDCv1\n";

  DiskCache(std::string Dir, unsigned MaxEntries);

  /// Creates the directory if needed and scans existing entries (oldest
  /// first, by mtime) into the index. Returns false with \p Error set
  /// when the directory cannot be created or read.
  bool open(std::string &Error);

  /// Returns true and fills \p Payload when a valid entry for \p Key
  /// exists. Invalid entries are deleted and counted, then miss.
  bool lookup(std::uint64_t Key, std::string &Payload);

  /// Writes (or refreshes) the entry for \p Key, evicting the oldest
  /// entries beyond capacity. I/O failures are silent: the disk layer
  /// is an accelerator, never a correctness dependency.
  void insert(std::uint64_t Key, const std::string &Payload);

  /// Persists the index file (entry keys + counters). Called on server
  /// shutdown; safe to call repeatedly.
  void flush();

  unsigned entries() const;
  const DiskCacheStats &stats() const { return Stats; }
  const std::string &directory() const { return DirName; }

private:
  std::filesystem::path entryPath(std::uint64_t Key) const;
  /// Unlinks \p Key's file and drops it from the index (lock held).
  void removeLocked(std::uint64_t Key);

  mutable std::mutex M;
  std::string DirName;
  std::filesystem::path Dir;
  unsigned MaxEntries;

  /// Eviction order, oldest first; refreshed to back on hit/insert.
  std::list<std::uint64_t> Order;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      Index;

  DiskCacheStats Stats;
};

} // namespace gnt

#endif // GNT_SERVICE_DISKCACHE_H
