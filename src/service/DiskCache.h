//===- service/DiskCache.h - Persistent content-addressed cache -*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent layer under the in-memory result cache: one file per
/// cached payload, content-addressed by the 64-bit pipeline cache key,
/// so a restarted server keeps its hit ratio. The format is defensive —
/// the cache trusts nothing it reads back:
///
///   entry file <dir>/<16-hex-key>.gc, little-endian header:
///     bytes  0..7   magic + format version ("GNTDCv1\n")
///     bytes  8..15  cache key (must equal the file name and the lookup)
///     bytes 16..23  payload size in bytes
///     bytes 24..31  FNV-1a of the payload
///     bytes 32..39  FNV-1a of header bytes 0..31
///     bytes 40..    payload
///
/// A lookup validates magic, header checksum, key, size, and payload
/// hash; any mismatch (bit flip, truncation, format bump, renamed file)
/// deletes the entry, counts it as corrupt, and reports a miss — a bad
/// byte on disk costs one recompilation, never a wrong answer. Writes go
/// through a temp file + rename so a crash mid-write leaves no partial
/// entry under a valid name. Entries beyond capacity are evicted oldest
/// first (recency-refreshed on hit); flush() persists a human-readable
/// index next to the entries for post-mortems and the shutdown path.
///
/// Two entry categories share the directory and the format but are
/// capped independently, because their economics differ:
///
///   - result entries (`.gc`): small rendered responses, capped by
///     *count* (MaxEntries) — the historical behavior;
///   - solve memos (`.gm`, lookupMemo/insertMemo): serialized solver
///     arenas that can be megabytes each, capped by total *bytes*
///     (MaxMemoBytes, 0 = uncapped) so a handful of giant memos cannot
///     silently occupy the disk a thousand small results were budgeted
///     for. Memo eviction is oldest-first within the memo category and
///     never touches result entries (nor vice versa).
///
/// Thread-safe: one internal mutex serializes all filesystem traffic.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SERVICE_DISKCACHE_H
#define GNT_SERVICE_DISKCACHE_H

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace gnt {

/// Monotonic counters the cache keeps about itself. Readable while the
/// cache is live (atomics); rendered into /metrics and the flush index.
struct DiskCacheStats {
  std::atomic<std::uint64_t> Hits{0};    ///< Valid entries served.
  std::atomic<std::uint64_t> Misses{0};  ///< Keys with no (valid) entry.
  std::atomic<std::uint64_t> Writes{0};  ///< Entries written.
  std::atomic<std::uint64_t> Corrupt{0}; ///< Entries discarded as invalid.
  std::atomic<std::uint64_t> Evicted{0}; ///< Entries removed for capacity.
};

class DiskCache {
public:
  /// On-disk format tag; bump the digit when the header layout changes
  /// and every older entry self-invalidates on its next lookup.
  static constexpr char Magic[9] = "GNTDCv1\n";

  /// \p MaxEntries caps result entries by count; \p MaxMemoBytes caps
  /// memo entries by total on-disk bytes (header + payload), 0 meaning
  /// uncapped.
  DiskCache(std::string Dir, unsigned MaxEntries,
            std::uint64_t MaxMemoBytes = 0);

  /// Creates the directory if needed and scans existing entries (oldest
  /// first, by mtime) into the index. Returns false with \p Error set
  /// when the directory cannot be created or read.
  bool open(std::string &Error);

  /// Returns true and fills \p Payload when a valid entry for \p Key
  /// exists. Invalid entries are deleted and counted, then miss.
  bool lookup(std::uint64_t Key, std::string &Payload);

  /// Writes (or refreshes) the entry for \p Key, evicting the oldest
  /// entries beyond capacity. I/O failures are silent: the disk layer
  /// is an accelerator, never a correctness dependency.
  void insert(std::uint64_t Key, const std::string &Payload);

  /// Memo-category twins of lookup/insert: same format and the same
  /// defensive validation, but `.gm` entries budgeted in bytes.
  bool lookupMemo(std::uint64_t Key, std::string &Payload);
  void insertMemo(std::uint64_t Key, const std::string &Payload);

  /// Persists the index file (entry keys + counters). Called on server
  /// shutdown; safe to call repeatedly.
  void flush();

  unsigned entries() const;
  unsigned memoEntries() const;
  /// Total on-disk bytes currently held by memo entries.
  std::uint64_t memoBytes() const;
  const DiskCacheStats &stats() const { return Stats; }
  const std::string &directory() const { return DirName; }

private:
  /// One entry category: its own suffix, recency list, and byte total,
  /// so result-count eviction and memo-byte eviction cannot interact.
  struct Bucket {
    const char *Suffix;
    /// Eviction order, oldest first; refreshed to back on hit/insert.
    std::list<std::uint64_t> Order;
    struct Slot {
      std::list<std::uint64_t>::iterator Pos;
      std::uint64_t Bytes;
    };
    std::unordered_map<std::uint64_t, Slot> Index;
    std::uint64_t TotalBytes = 0;
  };

  std::filesystem::path entryPath(const Bucket &B, std::uint64_t Key) const;
  /// Unlinks \p Key's file and drops it from \p B (lock held).
  void removeLocked(Bucket &B, std::uint64_t Key);
  bool lookupIn(Bucket &B, std::uint64_t Key, std::string &Payload);
  void insertIn(Bucket &B, std::uint64_t Key, const std::string &Payload);
  void evictLocked();

  mutable std::mutex M;
  std::string DirName;
  std::filesystem::path Dir;
  unsigned MaxEntries;
  std::uint64_t MaxMemoBytes;

  Bucket Results;
  Bucket Memos;

  DiskCacheStats Stats;
};

} // namespace gnt

#endif // GNT_SERVICE_DISKCACHE_H
