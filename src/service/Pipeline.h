//===- service/Pipeline.h - Reusable compilation pipeline ------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full placement pipeline behind one API: PipelineOptions in,
/// compile(source), PipelineResult out. The pipeline owns the pass
/// sequence — frontend parse, CFG construction and normalization,
/// interval analysis, GIVE-N-TAKE solve (communication READ/WRITE, a
/// baseline, or expression PRE), annotation rendering, and the optional
/// static audit — and reports failures as structured Diagnostics
/// instead of exiting, so the same code path serves the `gntc` command
/// line tool, the `gntd` batch server, tests and benchmarks. Every
/// stage is wall-clock timed; the result keeps the intermediate
/// artifacts (AST, CFG, IFG, plan) alive for clients that want more
/// than the rendered output (dot/IFG views, dataflow dumps, the
/// simulator).
///
/// compile() is a pure function of (source, options): it touches no
/// global state and may be called concurrently from many threads.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SERVICE_PIPELINE_H
#define GNT_SERVICE_PIPELINE_H

#include "analysis/Auditor.h"
#include "analysis/Diagnostics.h"
#include "analysis/SpecCompile.h"
#include "comm/CommGen.h"
#include "comm/Strategy.h"
#include "interval/IntervalFlowGraph.h"
#include "pre/ExprPre.h"

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace gnt {

class StageCache;

/// Which placement problem the pipeline solves.
enum class PipelineMode {
  Comm, ///< READ/WRITE communication placement (default).
  Pre,  ///< Expression PRE (the paper's Section 6 client).
};

/// How far the pipeline runs. Early stops serve clients that only want
/// a structural view (e.g. `gntc --dot` on a graph the interval
/// analysis would reject).
enum class PipelineStop {
  AfterCfg,      ///< Stop once the CFG is built.
  AfterInterval, ///< Stop once the interval flow graph is built.
  Full,          ///< Run everything requested (default).
};

/// The timed stages of a compilation, in execution order.
enum class PipelineStage : unsigned {
  Frontend, ///< Lex + parse.
  Cfg,      ///< CFG construction and normalization.
  Interval, ///< Interval flow graph construction.
  Solve,    ///< Reference analysis + GIVE-N-TAKE solve (or baseline/PRE).
  Annotate, ///< Rendering the annotated program.
  Audit,    ///< Static audit / verification.
  Analyze,  ///< User-specified analyses (PipelineOptions::ExtraAnalyses).
};
inline constexpr unsigned NumPipelineStages = 7;

/// "frontend", "cfg", ... stable lowercase stage names (metrics keys).
const char *pipelineStageName(PipelineStage S);

/// Everything that configures a compilation. Add new knobs here and to
/// canonical() — the canonical string is the options half of the
/// service cache key, so two option sets compare equal iff their
/// canonical strings do.
struct PipelineOptions {
  PipelineMode Mode = PipelineMode::Comm;
  PipelineStop StopAfter = PipelineStop::Full;

  /// Placement engine: empty for GIVE-N-TAKE, or one of the baselines
  /// ("naive", "vectorized", "lcm"). Unknown names fail compile() with
  /// an Engine diagnostic. Ignored in PRE mode.
  std::string Baseline;

  /// Placement strategy for the GIVE-N-TAKE engine (comm/Strategy.h):
  /// the paper's balanced discipline (default), profile-guided
  /// speculative hoisting, or the linear-time lospre formulation.
  /// Conflicts with Baseline and with PRE mode (Engine diagnostic).
  /// Unlike SolverShards this changes output, so it IS part of
  /// canonical() and of the stage-cache solve key.
  PlacementStrategy Strategy = PlacementStrategy::Balanced;

  /// Execution profile text in the gnt-profile-v1 format, consumed by
  /// the speculative strategy (empty = no profile, speculative degrades
  /// to balanced). Part of canonical(): two requests with different
  /// profiles may place differently and must not share a cache entry.
  std::string Profile;

  /// Communication generation knobs (Comm mode only).
  CommOptions Comm;

  /// Render the annotated program into PipelineResult::Annotated.
  bool Annotate = true;

  /// Run the full static audit and merge its findings (prefixed with
  /// the problem name: "READ: ", "WRITE: ", "PRE: ").
  bool Audit = false;

  /// Run the independent C1/C3/O1 verifier and merge its findings.
  bool Verify = false;

  /// Promote warnings and notes to errors at the end of the run.
  bool Werror = false;

  /// Number of word-aligned item shards the GIVE-N-TAKE solve runs in
  /// (0 or 1 = serial). Sharding is an execution strategy, not a
  /// semantic knob: the shard-invariance contract of
  /// dataflow/GiveNTake.h guarantees byte-identical results for every
  /// value, so this field is deliberately NOT part of canonical() — two
  /// requests that differ only in shard count share one cache entry.
  unsigned SolverShards = 0;

  /// Solve the GIVE-N-TAKE problems over the compressed universe of
  /// item equivalence classes (see solveGiveNTakeCompressed). Like
  /// SolverShards this is an execution strategy with a byte-identity
  /// contract, so it too is deliberately NOT part of canonical(): a
  /// compressed and an uncompressed request share one cache entry.
  bool CompressUniverse = false;

  /// Solve the GIVE-N-TAKE problems incrementally when compiling
  /// through a StageCache: the cache keeps, per solve-option set, the
  /// previous solve's loop forest and per-node equation input digests
  /// plus its solved arena, and re-solves only the intervals whose
  /// inputs an edit changed (dataflow/Incremental.h). Like SolverShards
  /// and CompressUniverse this is an execution strategy with a
  /// byte-identity contract — the incrementality-equivalence battery
  /// pins it — so it too is deliberately NOT part of canonical().
  /// Ignored when compiling without a StageCache.
  bool Incremental = false;

  /// User-specified dataflow analyses to run after the solve: each
  /// entry is a built-in name ("liveness", "availability", "very-busy",
  /// "reaching") or a full spec text (analysis/SpecLang.h). Every run
  /// is differential (iterative engine vs arena sweeps) and lands in
  /// PipelineResult::Analyses; failures merge into Diags. Unlike
  /// SolverShards this changes output, so it IS part of canonical().
  std::vector<std::string> ExtraAnalyses;

  /// Stable, human-readable key=value rendering of every knob that can
  /// change output (SolverShards and CompressUniverse cannot, see
  /// above, and are excluded).
  std::string canonical() const;
};

/// Outcome of one compilation. Artifacts are populated up to the stage
/// where compilation stopped or failed; Diags carries everything from
/// parse errors to audit notes.
struct PipelineResult {
  /// Options the run was compiled with.
  PipelineOptions Opts;

  /// The parsed program. Shared, not owned: stage-cached compilations
  /// adopt the cached parse (CFG nodes and plan anchors hold `const
  /// Stmt *` into exactly this object), and several results may share
  /// it. Null only when the frontend failed.
  std::shared_ptr<const Program> Prog;
  Cfg G;
  std::optional<IntervalFlowGraph> Ifg;

  /// Comm mode artifacts (GIVE-N-TAKE or baseline plan). Shared for
  /// the same reason as Prog: a stage-cached solve is adopted by many
  /// results, and a CommPlan owns whole dataflow solutions.
  std::shared_ptr<const CommPlan> Plan;

  /// PRE mode artifacts (shared, like Plan).
  std::shared_ptr<const ExprPreResult> Pre;

  /// Rendered annotated program (when Opts.Annotate and the solve
  /// stage completed).
  std::string Annotated;

  /// Completed user-specified analyses (Opts.ExtraAnalyses order).
  /// Each carries its own solution, statistics, and diagnostics; spec
  /// and differential errors are also merged into Diags with an
  /// "analyze(<name>): " prefix.
  std::vector<AnalysisRun> Analyses;

  /// Parse/build errors, verifier findings, audit findings.
  DiagnosticSet Diags;

  /// Audit work counters (zero when the audit did not run).
  AuditStats Audit;

  /// Wall-clock microseconds per stage; 0 for stages that did not run.
  std::array<double, NumPipelineStages> StageMicros{};

  /// Last stage that ran (even partially).
  PipelineStage Reached = PipelineStage::Frontend;

  /// Universe-compression accounting summed over the run's solves (two
  /// in Comm mode with writes, one otherwise). Zero when compression
  /// was off or the solve stage did not run.
  unsigned CompressedUniverse = 0; ///< Total original items.
  unsigned CompressedClasses = 0;  ///< Total classes actually solved.

  /// Classes / universe across the run's solves, or 1.0 when no solve
  /// ran. Smaller is better; 1.0 means nothing was saved.
  double compressionRatio() const {
    return CompressedUniverse == 0
               ? 1.0
               : static_cast<double>(CompressedClasses) / CompressedUniverse;
  }

  bool ok() const { return !Diags.hasErrors(); }

  double stageMicros(PipelineStage S) const {
    return StageMicros[static_cast<unsigned>(S)];
  }

  /// Sum over all stages.
  double totalMicros() const;
};

/// The pipeline: a fixed option set applied to many sources. Stateless
/// apart from the options; compile() is const and thread-safe.
class Pipeline {
public:
  explicit Pipeline(PipelineOptions Opts = {}) : Opts(std::move(Opts)) {}

  const PipelineOptions &options() const { return Opts; }

  /// Compiles \p Source through every configured stage. Never exits or
  /// throws on bad input: check PipelineResult::ok() and Diags.
  PipelineResult compile(const std::string &Source) const;

  /// Same, compiling through a content-addressed stage cache: each
  /// stage is looked up by a key over exactly the inputs it consumes
  /// (see service/StageCache.h) and only missing stages run. With
  /// Opts.Incremental the solve additionally reuses the cache's
  /// per-option-set incremental memo. Byte-identical to the uncached
  /// compile by contract. \p Cache may be null (plain compile).
  PipelineResult compile(const std::string &Source, StageCache *Cache) const;

private:
  PipelineOptions Opts;
};

/// Convenience one-shot form.
PipelineResult compilePipeline(const std::string &Source,
                               const PipelineOptions &Opts = {});

/// Content hash of a compilation request: FNV-1a over the canonicalized
/// options and the source text. This is the service cache key — equal
/// keys mean "same source compiled the same way".
std::uint64_t pipelineCacheKey(const std::string &Source,
                               const PipelineOptions &Opts);

/// Stable content signature of a compilation *outcome*: FNV-1a over the
/// rendered diagnostics, the annotated program, and the plan's static
/// placement counts (or the PRE insertion/redundancy counts). Two
/// compilations of one source through semantically equivalent
/// configurations — e.g. differing only in SolverShards — must produce
/// equal signatures; the fuzzer's production-path differential layer
/// compares these instead of re-walking every artifact.
std::uint64_t resultSignature(const PipelineResult &R);

} // namespace gnt

#endif // GNT_SERVICE_PIPELINE_H
