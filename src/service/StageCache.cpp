//===- service/StageCache.cpp - Content-addressed stage cache ---------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/StageCache.h"

#include "ir/AstPrinter.h"
#include "service/DiskCache.h"
#include "support/Hashing.h"
#include "support/Support.h"

using namespace gnt;

const char *gnt::cacheStageName(CacheStage S) {
  switch (S) {
  case CacheStage::Parse:
    return "parse";
  case CacheStage::Cfg:
    return "cfg";
  case CacheStage::Interval:
    return "interval";
  case CacheStage::Solve:
    return "solve";
  case CacheStage::Annotate:
    return "annotate";
  }
  gntUnreachable("covered switch");
}

StageCache::StageCache() : StageCache(Config{}) {}

StageCache::StageCache(Config C, DiskCache *Disk) : Cfg_(C), Disk(Disk) {
  Parses.setCapacity(Cfg_.CapacityPerStage);
  Cfgs.setCapacity(Cfg_.CapacityPerStage);
  Intervals.setCapacity(Cfg_.CapacityPerStage);
  Solves.setCapacity(Cfg_.CapacityPerStage);
  Annotations.setCapacity(Cfg_.CapacityPerStage);
}

void StageCache::noteProbe(CacheStage S, bool Hit) {
  std::lock_guard<std::mutex> L(StatsMutex);
  if (Hit)
    ++Stats.Hits[static_cast<unsigned>(S)];
  else
    ++Stats.Misses[static_cast<unsigned>(S)];
}

std::shared_ptr<const ParseArtifact>
StageCache::lookupParse(std::uint64_t Key) {
  auto A = Parses.lookup(Key);
  noteProbe(CacheStage::Parse, A != nullptr);
  return A;
}
void StageCache::insertParse(std::uint64_t Key,
                             std::shared_ptr<const ParseArtifact> A) {
  Parses.insert(Key, std::move(A));
}

std::shared_ptr<const CfgArtifact> StageCache::lookupCfg(std::uint64_t Key) {
  auto A = Cfgs.lookup(Key);
  noteProbe(CacheStage::Cfg, A != nullptr);
  return A;
}
void StageCache::insertCfg(std::uint64_t Key,
                           std::shared_ptr<const CfgArtifact> A) {
  Cfgs.insert(Key, std::move(A));
}

std::shared_ptr<const IntervalArtifact>
StageCache::lookupInterval(std::uint64_t Key) {
  auto A = Intervals.lookup(Key);
  noteProbe(CacheStage::Interval, A != nullptr);
  return A;
}
void StageCache::insertInterval(std::uint64_t Key,
                                std::shared_ptr<const IntervalArtifact> A) {
  Intervals.insert(Key, std::move(A));
}

std::shared_ptr<const SolveArtifact>
StageCache::lookupSolve(std::uint64_t Key) {
  auto A = Solves.lookup(Key);
  noteProbe(CacheStage::Solve, A != nullptr);
  return A;
}
void StageCache::insertSolve(std::uint64_t Key,
                             std::shared_ptr<const SolveArtifact> A) {
  Solves.insert(Key, std::move(A));
}

std::shared_ptr<const std::string>
StageCache::lookupAnnotate(std::uint64_t Key) {
  auto A = Annotations.lookup(Key);
  noteProbe(CacheStage::Annotate, A != nullptr);
  return A;
}
void StageCache::insertAnnotate(std::uint64_t Key,
                                std::shared_ptr<const std::string> A) {
  Annotations.insert(Key, std::move(A));
}

std::shared_ptr<SolveSlot>
StageCache::solveSlot(const std::string &SolveOptsKey) {
  std::shared_ptr<SolveSlot> Slot;
  {
    std::lock_guard<std::mutex> L(SlotsMutex);
    auto &Entry = Slots[SolveOptsKey];
    if (!Entry)
      Entry = std::make_shared<SolveSlot>();
    Slot = Entry;
  }
  if (Disk) {
    // First user of the slot restores the previous process's memos.
    // Done under the slot mutex, not SlotsMutex: deserialization can be
    // large and must not block unrelated slots.
    std::lock_guard<std::mutex> L(Slot->M);
    if (!Slot->DiskLoadAttempted) {
      Slot->DiskLoadAttempted = true;
      struct {
        const char *Name;
        GntSolveMemo *Memo;
      } Sl[3] = {{"read", &Slot->Ctx.Read},
                 {"write", &Slot->Ctx.Write},
                 {"pre", &Slot->Ctx.Pre}};
      for (auto &S : Sl) {
        std::string Payload;
        if (Disk->lookupMemo(memoDiskKey(SolveOptsKey, S.Name), Payload))
          deserializeGntMemo(Payload, *S.Memo); // Corrupt -> stays empty.
      }
    }
  }
  return Slot;
}

void StageCache::persistSlot(SolveSlot &Slot,
                             const std::string &SolveOptsKey) {
  if (!Disk)
    return;
  struct {
    const char *Name;
    const GntSolveMemo *Memo;
  } Sl[3] = {{"read", &Slot.Ctx.Read},
             {"write", &Slot.Ctx.Write},
             {"pre", &Slot.Ctx.Pre}};
  for (auto &S : Sl) {
    if (!S.Memo->valid())
      continue;
    std::string Payload = serializeGntMemo(*S.Memo);
    if (!Payload.empty())
      Disk->insertMemo(memoDiskKey(SolveOptsKey, S.Name), Payload);
  }
}

void StageCache::noteIncremental(const GntIncrementalStats &Delta) {
  std::lock_guard<std::mutex> L(StatsMutex);
  Stats.Inc.merge(Delta);
}

StageCacheStats StageCache::statsSnapshot() const {
  std::lock_guard<std::mutex> L(StatsMutex);
  return Stats;
}

std::size_t StageCache::entries(CacheStage S) const {
  switch (S) {
  case CacheStage::Parse:
    return Parses.size();
  case CacheStage::Cfg:
    return Cfgs.size();
  case CacheStage::Interval:
    return Intervals.size();
  case CacheStage::Solve:
    return Solves.size();
  case CacheStage::Annotate:
    return Annotations.size();
  }
  gntUnreachable("covered switch");
}

std::uint64_t StageCache::parseKey(const std::string &Source) {
  std::uint64_t H = fnv1a("stage:parse");
  H = fnv1aAppend(H, std::string(1, '\0'));
  return fnv1aAppend(H, Source);
}

std::uint64_t StageCache::astDigest(const Program &P) {
  return fnv1a(AstPrinter().print(P));
}

namespace {

std::uint64_t mixTag(const char *Tag, std::uint64_t Digest) {
  std::uint64_t H = fnv1a(Tag);
  for (unsigned I = 0; I != 8; ++I) {
    H ^= (Digest >> (8 * I)) & 0xff;
    H *= FnvPrime;
  }
  return H;
}

} // namespace

std::uint64_t StageCache::cfgKey(std::uint64_t AstDigest) {
  return mixTag("stage:cfg", AstDigest);
}

std::uint64_t StageCache::intervalKey(std::uint64_t AstDigest) {
  return mixTag("stage:interval", AstDigest);
}

std::uint64_t StageCache::solveKey(std::uint64_t AstDigest,
                                   const std::string &SolveOptsKey) {
  std::uint64_t H = mixTag("stage:solve", AstDigest);
  H = fnv1aAppend(H, std::string(1, '\0'));
  return fnv1aAppend(H, SolveOptsKey);
}

std::uint64_t StageCache::annotateKey(std::uint64_t SolveKey) {
  return mixTag("stage:annotate", SolveKey);
}

std::string StageCache::solveOptionsKey(const PipelineOptions &Opts) {
  // Only knobs the solve stage consumes; see the header contract. The
  // stage-cache key audit test guards this list from drift the same way
  // the result-cache test guards canonical().
  std::string R;
  R += "mode=";
  R += Opts.Mode == PipelineMode::Comm ? "comm" : "pre";
  R += ";baseline=" + Opts.Baseline;
  R += ";strategy=";
  R += placementStrategyName(Opts.Strategy);
  R += ";profile=";
  R += '\x1f'; // Unit separators: profile text is free-form.
  R += Opts.Profile;
  R += '\x1f';
  R += ";atomic=" + itostr(Opts.Comm.Atomic);
  R += ";owner_computes=" + itostr(Opts.Comm.OwnerComputes);
  R += ";hoist_zero_trip=" + itostr(Opts.Comm.HoistZeroTrip);
  R += ";reads=" + itostr(Opts.Comm.GenerateReads);
  R += ";writes=" + itostr(Opts.Comm.GenerateWrites);
  return R;
}

std::uint64_t StageCache::memoDiskKey(const std::string &SolveOptsKey,
                                      const char *MemoSlot) {
  std::uint64_t H = fnv1a("stage-memo");
  H = fnv1aAppend(H, std::string(1, '\0'));
  H = fnv1aAppend(H, SolveOptsKey);
  H = fnv1aAppend(H, std::string(1, '\0'));
  return fnv1aAppend(H, MemoSlot);
}
