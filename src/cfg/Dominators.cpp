//===- cfg/Dominators.cpp - Dominator tree ----------------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/Dominators.h"

using namespace gnt;

Dominators::Dominators(const Cfg &G) {
  unsigned N = G.size();
  Idom.assign(N, InvalidNode);
  RpoNumber.assign(N, ~0u);

  // Iterative post-order DFS from the entry.
  std::vector<NodeId> Post;
  Post.reserve(N);
  {
    std::vector<std::pair<NodeId, unsigned>> Stack;
    std::vector<bool> Seen(N, false);
    Stack.push_back({G.entry(), 0});
    Seen[G.entry()] = true;
    while (!Stack.empty()) {
      auto &[Node, NextSucc] = Stack.back();
      const auto &Succs = G.node(Node).Succs;
      if (NextSucc < Succs.size()) {
        NodeId S = Succs[NextSucc++];
        if (!Seen[S]) {
          Seen[S] = true;
          Stack.push_back({S, 0});
        }
        continue;
      }
      Post.push_back(Node);
      Stack.pop_back();
    }
  }
  Rpo.assign(Post.rbegin(), Post.rend());
  for (unsigned I = 0; I != Rpo.size(); ++I)
    RpoNumber[Rpo[I]] = I;

  // Cooper/Harvey/Kennedy: iterate to a fixed point over reverse
  // postorder, intersecting predecessor dominators.
  auto intersect = [&](NodeId A, NodeId B) {
    while (A != B) {
      while (RpoNumber[A] > RpoNumber[B])
        A = Idom[A];
      while (RpoNumber[B] > RpoNumber[A])
        B = Idom[B];
    }
    return A;
  };

  Idom[G.entry()] = G.entry();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (NodeId Node : Rpo) {
      if (Node == G.entry())
        continue;
      NodeId NewIdom = InvalidNode;
      for (NodeId P : G.node(Node).Preds) {
        if (RpoNumber[P] == ~0u || Idom[P] == InvalidNode)
          continue; // Unreachable or not yet processed.
        NewIdom = NewIdom == InvalidNode ? P : intersect(P, NewIdom);
      }
      if (NewIdom != InvalidNode && Idom[Node] != NewIdom) {
        Idom[Node] = NewIdom;
        Changed = true;
      }
    }
  }
  // By convention the entry has no immediate dominator.
  Idom[G.entry()] = InvalidNode;
}

bool Dominators::dominates(NodeId A, NodeId B) const {
  while (true) {
    if (A == B)
      return true;
    if (B == InvalidNode || Idom[B] == InvalidNode)
      return false;
    B = Idom[B];
  }
}
