//===- cfg/Cfg.cpp - Control flow graph ------------------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include "support/Support.h"

#include <algorithm>
#include <sstream>

using namespace gnt;

void Cfg::splitEdge(NodeId From, NodeId To, NodeId Mid) {
  auto &FS = Nodes[From].Succs;
  auto It = std::find(FS.begin(), FS.end(), To);
  assert(It != FS.end() && "edge to split does not exist");
  *It = Mid;

  auto &TP = Nodes[To].Preds;
  auto It2 = std::find(TP.begin(), TP.end(), From);
  assert(It2 != TP.end() && "edge to split does not exist");
  *It2 = Mid;

  Nodes[Mid].Succs.push_back(To);
  Nodes[Mid].Preds.push_back(From);
}

unsigned Cfg::splitAllCriticalEdges() {
  unsigned Inserted = 0;
  // Snapshot the node count: newly inserted nodes are single-in/single-out
  // and can never source or sink a critical edge.
  unsigned OldSize = size();
  for (NodeId From = 0; From != OldSize; ++From) {
    // Copy: splitting mutates the successor list.
    std::vector<NodeId> Succs = Nodes[From].Succs;
    for (unsigned Arm = 0; Arm != Succs.size(); ++Arm) {
      NodeId To = Succs[Arm];
      if (!isCriticalEdge(From, To))
        continue;
      NodeId Mid = addNode(NodeKind::Synthetic);
      // Derive a print anchor for the new node from the branch arm it
      // lives on. Only multi-successor nodes (loop headers and branches)
      // can source critical edges.
      CfgNode &F = Nodes[From];
      CfgNode &M = Nodes[Mid];
      if (F.Kind == NodeKind::LoopHeader) {
        M.EmitStmt = F.S;
        // Successor 0 is the body arm: the new node runs once per
        // iteration at the top of the body. The other arm leaves the
        // loop.
        M.Where = Arm == 0 ? EmitWhere::BodyStart : EmitWhere::After;
      } else if (F.Kind == NodeKind::Branch) {
        M.EmitStmt = F.S;
        M.Where = To == F.ThenSucc ? EmitWhere::ThenEntry
                                   : EmitWhere::ElseEntry;
      } else if (F.EmitStmt) {
        M.EmitStmt = F.EmitStmt;
        M.Where = EmitWhere::After;
      } else {
        M.EmitStmt = Nodes[To].EmitStmt;
        M.Where = EmitWhere::Before;
      }
      splitEdge(From, To, Mid);
      ++Inserted;
    }
  }
  return Inserted;
}

static const char *kindName(NodeKind K) {
  switch (K) {
  case NodeKind::Entry:
    return "entry";
  case NodeKind::Exit:
    return "exit";
  case NodeKind::Stmt:
    return "stmt";
  case NodeKind::LoopHeader:
    return "header";
  case NodeKind::LoopLatch:
    return "latch";
  case NodeKind::Branch:
    return "branch";
  case NodeKind::Merge:
    return "merge";
  case NodeKind::Synthetic:
    return "synth";
  }
  gntUnreachable("covered switch");
}

std::string gnt::describeNode(const Cfg &G, NodeId N) {
  const CfgNode &Node = G.node(N);
  std::string R = itostr(N);
  R += ":";
  R += kindName(Node.Kind);
  if (Node.S) {
    switch (Node.S->getKind()) {
    case Stmt::Kind::Assign:
      R += " " + AstPrinter::printExpr(cast<AssignStmt>(Node.S)->getLHS()) +
           "=...";
      break;
    case Stmt::Kind::Do:
      R += " do " + cast<DoStmt>(Node.S)->getIndexVar();
      break;
    case Stmt::Kind::If:
      R += " if";
      break;
    case Stmt::Kind::Goto:
      R += " goto " + itostr(cast<GotoStmt>(Node.S)->getTarget());
      break;
    case Stmt::Kind::Continue:
      R += " continue";
      break;
    }
  }
  return R;
}

std::string Cfg::dot() const {
  std::ostringstream OS;
  OS << "digraph cfg {\n  node [shape=box, fontname=monospace];\n";
  for (const CfgNode &N : Nodes) {
    OS << "  n" << N.Id << " [label=\"" << describeNode(*this, N.Id) << "\"";
    if (N.Kind == NodeKind::Synthetic || N.Kind == NodeKind::Merge ||
        N.Kind == NodeKind::LoopLatch)
      OS << ", style=dashed";
    OS << "];\n";
  }
  for (const CfgNode &N : Nodes)
    for (NodeId S : N.Succs)
      OS << "  n" << N.Id << " -> n" << S << ";\n";
  OS << "}\n";
  return OS.str();
}
