//===- cfg/Dominators.h - Dominator tree ------------------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immediate dominator computation using the Cooper/Harvey/Kennedy
/// iterative algorithm. GIVE-N-TAKE requires a reducible flow graph
/// (Section 3.3); the interval analysis uses dominators to verify that
/// every retreating edge targets a dominator of its source, which is the
/// classical reducibility criterion.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_CFG_DOMINATORS_H
#define GNT_CFG_DOMINATORS_H

#include "cfg/Cfg.h"

#include <vector>

namespace gnt {

/// Dominator information for a Cfg, rooted at its entry node.
class Dominators {
public:
  /// Computes immediate dominators for every node reachable from entry.
  explicit Dominators(const Cfg &G);

  /// Immediate dominator of \p N (InvalidNode for the entry node and for
  /// unreachable nodes).
  NodeId idom(NodeId N) const { return Idom[N]; }

  /// True if \p A dominates \p B (every node dominates itself).
  bool dominates(NodeId A, NodeId B) const;

  /// Nodes in reverse postorder of a DFS from entry (entry first).
  const std::vector<NodeId> &reversePostorder() const { return Rpo; }

private:
  std::vector<NodeId> Idom;
  std::vector<unsigned> RpoNumber; ///< Position in Rpo; ~0u if unreachable.
  std::vector<NodeId> Rpo;
};

} // namespace gnt

#endif // GNT_CFG_DOMINATORS_H
