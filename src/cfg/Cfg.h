//===- cfg/Cfg.h - Control flow graph ---------------------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control flow graph over which GIVE-N-TAKE runs. Nodes are
/// statement-granular, matching the paper's Figure 12: one node per
/// assignment, per branch condition, per loop header, plus the synthetic
/// nodes required by the framework (loop latches, merge points,
/// critical-edge splits, jump landing pads).
///
/// Each node carries an *emit anchor* — a (statement, EmitWhere) pair —
/// describing where code placed on this node appears when the program is
/// printed back as source. Synthetic nodes created to break critical edges
/// get anchors like "else branch of this if" or "after this loop",
/// mirroring how the paper materializes them (Figure 3's new else branch,
/// Figure 14's landing pad at label 77).
///
//===----------------------------------------------------------------------===//

#ifndef GNT_CFG_CFG_H
#define GNT_CFG_CFG_H

#include "ir/Ast.h"
#include "ir/AstPrinter.h"

#include <string>
#include <vector>

namespace gnt {

/// Identifies a CFG node; dense, starting at 0.
using NodeId = unsigned;
constexpr NodeId InvalidNode = ~0u;

/// Role of a CFG node.
enum class NodeKind {
  Entry,      ///< Program entry; becomes the interval ROOT.
  Exit,       ///< Program exit.
  Stmt,       ///< Evaluates one assignment (or a no-op continue).
  LoopHeader, ///< Header of a DO loop; evaluates bounds and trip test.
  LoopLatch,  ///< Back-edge source of a DO loop.
  Branch,     ///< Evaluates an IF condition; gotos in its arms make it a
              ///< JUMP-edge source (the paper's node 4 in Figure 12).
  Merge,      ///< Join point after an IF.
  Synthetic,  ///< Inserted to break a critical edge / land a jump.
};

/// One CFG node.
struct CfgNode {
  NodeId Id = InvalidNode;
  NodeKind Kind = NodeKind::Synthetic;

  /// The statement this node evaluates (assign / if / do / goto), or null.
  const Stmt *S = nullptr;

  /// Where code placed on this node prints: (statement, position).
  const Stmt *EmitStmt = nullptr;
  EmitWhere Where = EmitWhere::Before;

  /// For Branch nodes: the successor reached when the condition is true,
  /// so edge splitting can anchor synthetic nodes to the right arm.
  NodeId ThenSucc = InvalidNode;

  std::vector<NodeId> Succs;
  std::vector<NodeId> Preds;
};

/// A mutable control flow graph with a unique entry and exit.
class Cfg {
public:
  Cfg() = default;

  NodeId addNode(NodeKind Kind) {
    CfgNode N;
    N.Id = static_cast<NodeId>(Nodes.size());
    N.Kind = Kind;
    Nodes.push_back(std::move(N));
    return Nodes.back().Id;
  }

  void addEdge(NodeId From, NodeId To) {
    assert(From < Nodes.size() && To < Nodes.size() && "bad node id");
    Nodes[From].Succs.push_back(To);
    Nodes[To].Preds.push_back(From);
  }

  /// Redirects the existing edge From->To to go From->Mid->To. Keeps the
  /// successor position stable so branch arms keep their meaning.
  void splitEdge(NodeId From, NodeId To, NodeId Mid);

  unsigned size() const { return static_cast<unsigned>(Nodes.size()); }

  CfgNode &node(NodeId Id) {
    assert(Id < Nodes.size() && "bad node id");
    return Nodes[Id];
  }
  const CfgNode &node(NodeId Id) const {
    assert(Id < Nodes.size() && "bad node id");
    return Nodes[Id];
  }

  NodeId entry() const { return EntryId; }
  NodeId exit() const { return ExitId; }
  void setEntry(NodeId N) { EntryId = N; }
  void setExit(NodeId N) { ExitId = N; }

  /// True if the edge From->To is critical: From has several successors
  /// and To has several predecessors.
  bool isCriticalEdge(NodeId From, NodeId To) const {
    return Nodes[From].Succs.size() > 1 && Nodes[To].Preds.size() > 1;
  }

  /// Splits every critical edge with a Synthetic node. Returns the number
  /// of nodes inserted. New nodes inherit a best-effort emit anchor from
  /// the edge's endpoints.
  unsigned splitAllCriticalEdges();

  /// Graphviz rendering, for debugging and documentation.
  std::string dot() const;

private:
  std::vector<CfgNode> Nodes;
  NodeId EntryId = InvalidNode;
  NodeId ExitId = InvalidNode;
};

/// A short human-readable description of a node (kind plus anchor), used
/// in dot output and test failure messages.
std::string describeNode(const Cfg &G, NodeId N);

} // namespace gnt

#endif // GNT_CFG_CFG_H
