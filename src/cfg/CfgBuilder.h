//===- cfg/CfgBuilder.h - AST to CFG lowering -------------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers an FMini program to a control flow graph with the shape the
/// paper's framework expects:
///
///  - one Entry node (the interval ROOT) and one Exit node;
///  - a LoopHeader and a LoopLatch per DO loop, giving every loop a unique
///    back (CYCLE) edge and a unique entry child;
///  - a Branch node per IF plus a Merge join node;
///  - a Goto node per jump and a Synthetic landing pad per jump edge, so
///    the sink of a JUMP edge has no predecessor besides its source
///    (Section 3.4 of the paper);
///  - all critical edges split with Synthetic nodes (Section 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef GNT_CFG_CFGBUILDER_H
#define GNT_CFG_CFGBUILDER_H

#include "cfg/Cfg.h"

#include <string>
#include <vector>

namespace gnt {

/// Result of CFG construction.
struct CfgBuildResult {
  Cfg G;
  std::vector<std::string> Errors;

  bool success() const { return Errors.empty(); }
};

/// Builds the normalized control flow graph of \p P.
///
/// Reports errors for undefined or duplicate labels and for unreachable
/// statements. Reducibility is *not* checked here; the interval analysis
/// (src/interval) rejects irreducible graphs.
CfgBuildResult buildCfg(const Program &P);

} // namespace gnt

#endif // GNT_CFG_CFGBUILDER_H
