//===- cfg/CfgBuilder.cpp - AST to CFG lowering -----------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"

#include "support/Support.h"

#include <algorithm>
#include <map>

using namespace gnt;

namespace {

class Builder {
public:
  explicit Builder(CfgBuildResult &Result) : Result(Result), G(Result.G) {}

  void run(const Program &P) {
    NodeId Entry = G.addNode(NodeKind::Entry);
    G.setEntry(Entry);

    std::vector<NodeId> Dangles = buildList(P.getBody(), {Entry});

    NodeId Exit = G.addNode(NodeKind::Exit);
    G.setExit(Exit);
    for (NodeId D : Dangles)
      G.addEdge(D, Exit);
    // Production on the exit node (e.g. a final Write_Recv of an AFTER
    // problem) prints after the last top-level statement.
    if (!P.getBody().empty()) {
      G.node(Exit).EmitStmt = P.getBody().back().get();
      G.node(Exit).Where = EmitWhere::After;
    }

    resolveGotos();
    G.splitAllCriticalEdges();
    checkReachability();
  }

private:
  void error(const std::string &Msg) { Result.Errors.push_back(Msg); }

  /// Builds the statements of \p List; control enters from every node in
  /// \p In and the returned nodes dangle into whatever follows the list.
  std::vector<NodeId> buildList(const StmtList &List, std::vector<NodeId> In) {
    for (const StmtPtr &S : List) {
      NodeId First = InvalidNode;
      std::vector<NodeId> Out = buildStmt(S.get(), std::move(In), First);
      if (unsigned L = S->getLabel()) {
        if (Labels.count(L))
          error("duplicate label " + itostr(L));
        else
          Labels[L] = {First, S.get()};
      }
      In = std::move(Out);
    }
    return In;
  }

  NodeId makeNode(NodeKind Kind, const Stmt *S, EmitWhere Where) {
    NodeId N = G.addNode(Kind);
    CfgNode &Node = G.node(N);
    Node.S = S;
    Node.EmitStmt = S;
    Node.Where = Where;
    return N;
  }

  void connect(const std::vector<NodeId> &From, NodeId To) {
    for (NodeId F : From)
      G.addEdge(F, To);
  }

  std::vector<NodeId> buildStmt(const Stmt *S, std::vector<NodeId> In,
                                NodeId &First) {
    switch (S->getKind()) {
    case Stmt::Kind::Assign:
    case Stmt::Kind::Continue: {
      NodeId N = makeNode(NodeKind::Stmt, S, EmitWhere::Before);
      First = N;
      connect(In, N);
      return {N};
    }
    case Stmt::Kind::Goto: {
      // A goto creates no node of its own: the node control is flowing
      // from (typically the enclosing IF's branch node) becomes the JUMP
      // edge source, exactly as in the paper's Figure 12 where the branch
      // node 4 sources the jump. The edge to the landing pad is wired in
      // resolveGotos().
      if (S->getLabel() != 0)
        error("line " + itostr(S->getLoc().Line) +
              ": a label on a goto statement is not supported");
      if (In.empty()) {
        error("line " + itostr(S->getLoc().Line) + ": unreachable goto");
        return {};
      }
      assert(In.size() == 1 && "goto reached from several dangling edges");
      PendingGotos.push_back(
          {In.front(), cast<GotoStmt>(S)->getTarget(), S, S->getLoc()});
      return {}; // Nothing falls through a goto.
    }
    case Stmt::Kind::Do: {
      const auto *D = cast<DoStmt>(S);
      NodeId H = makeNode(NodeKind::LoopHeader, S, EmitWhere::Before);
      First = H;
      connect(In, H);
      // Successor 0 of a loop header is the body, successor 1 the exit;
      // splitAllCriticalEdges relies on this order for its anchors.
      std::vector<NodeId> BodyOut = buildList(D->getBody(), {H});
      // An empty body dangles the header itself, wiring header->latch
      // directly. A body whose every path jumps out of the loop is not a
      // loop at all; reject it rather than build a bogus back edge.
      if (BodyOut.empty()) {
        error("line " + itostr(S->getLoc().Line) +
              ": loop body never reaches the end of the loop");
        return {H};
      }
      NodeId L = makeNode(NodeKind::LoopLatch, S, EmitWhere::BodyEnd);
      connect(BodyOut, L);
      G.addEdge(L, H); // The unique CYCLE edge.
      return {H};      // The loop-exit arm dangles from the header.
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      NodeId B = makeNode(NodeKind::Branch, S, EmitWhere::Before);
      First = B;
      connect(In, B);
      std::vector<NodeId> ThenOut = buildList(If->getThen(), {B});
      // Record which successor is the taken arm so edge splitting can
      // anchor synthetic nodes to the correct branch.
      if (!G.node(B).Succs.empty())
        G.node(B).ThenSucc = G.node(B).Succs.front();
      std::vector<NodeId> ElseOut;
      if (If->hasElse())
        ElseOut = buildList(If->getElse(), {B});
      else
        ElseOut = {B};
      std::vector<NodeId> Joined = std::move(ThenOut);
      for (NodeId E : ElseOut)
        if (std::find(Joined.begin(), Joined.end(), E) == Joined.end())
          Joined.push_back(E);
      if (Joined.empty())
        return {}; // Both arms jumped away.
      if (Joined.size() == 1)
        return Joined; // No merge needed (e.g. one arm ends in a goto).
      NodeId M = makeNode(NodeKind::Merge, nullptr, EmitWhere::After);
      G.node(M).EmitStmt = S;
      connect(Joined, M);
      // An empty then branch reaches the merge straight from the branch
      // node; that edge is the then arm.
      if (G.node(B).ThenSucc == InvalidNode)
        G.node(B).ThenSucc = M;
      return {M};
    }
    }
    gntUnreachable("covered switch");
  }

  /// Wires each pending goto through a fresh landing pad to its target, so
  /// the sink of every JUMP edge has exactly one predecessor (paper node
  /// 10 in Figure 12). The pad prints immediately before the goto line,
  /// i.e. inside the taken arm — matching Figure 14's placement of
  /// Read_Send inside `if test(i)`.
  void resolveGotos() {
    for (const Pending &P : PendingGotos) {
      auto It = Labels.find(P.Target);
      if (It == Labels.end()) {
        error("line " + itostr(P.Loc.Line) + ": undefined label " +
              itostr(P.Target));
        continue;
      }
      NodeId TargetNode = It->second.first;
      NodeId Pad = G.addNode(NodeKind::Synthetic);
      CfgNode &PadNode = G.node(Pad);
      PadNode.EmitStmt = P.GotoS;
      PadNode.Where = EmitWhere::Before;
      G.addEdge(P.From, Pad);
      G.addEdge(Pad, TargetNode);
    }
  }

  void checkReachability() {
    std::vector<bool> Seen(G.size(), false);
    std::vector<NodeId> Work = {G.entry()};
    Seen[G.entry()] = true;
    while (!Work.empty()) {
      NodeId N = Work.back();
      Work.pop_back();
      for (NodeId S : G.node(N).Succs)
        if (!Seen[S]) {
          Seen[S] = true;
          Work.push_back(S);
        }
    }
    for (NodeId N = 0; N != G.size(); ++N)
      if (!Seen[N])
        error("unreachable code at node " + describeNode(G, N));
  }

  struct Pending {
    NodeId From;
    unsigned Target;
    const Stmt *GotoS;
    SourceLoc Loc;
  };

  CfgBuildResult &Result;
  Cfg &G;
  std::map<unsigned, std::pair<NodeId, const Stmt *>> Labels;
  std::vector<Pending> PendingGotos;
};

} // namespace

CfgBuildResult gnt::buildCfg(const Program &P) {
  CfgBuildResult Result;
  Builder B(Result);
  B.run(P);
  return Result;
}
