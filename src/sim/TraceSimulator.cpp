//===- sim/TraceSimulator.cpp - Annotated-program execution sim -------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/TraceSimulator.h"

#include "support/Support.h"

#include <optional>
#include <random>

using namespace gnt;

namespace {

/// Per-item runtime state.
struct ItemState {
  bool Avail = false;        ///< Locally available (read side).
  bool ReadPending = false;  ///< Read_Send issued, Read_Recv outstanding.
  double ReadSendTime = 0;
  bool ConsumedSinceProduced = true; ///< For waste accounting.
  bool Dirty = false;        ///< Defined locally, write-back outstanding.
  bool WritePending = false; ///< Write_Send issued, Write_Recv outstanding.
  double WriteSendTime = 0;
};

class Simulator {
public:
  Simulator(const Program &P, const CommPlan &Plan, const SimConfig &C,
            SimStats &Stats)
      : P(P), Plan(Plan), C(C), Stats(Stats), Rng(C.BranchSeed),
        Coin(C.BranchTrueProb) {
    Items.assign(Plan.Refs.Items.size(), ItemState());
    for (const auto &[Sym, V] : C.Params)
      Env[Sym] = V;
    unsigned Ord = 0;
    forEachStmt(P.getBody(), [&](const Stmt *S) { Ordinal[S] = Ord++; });
    Sizes.resize(Items.size());
    for (unsigned I = 0; I != Items.size(); ++I)
      Sizes[I] = Plan.ElementMessages
                     ? 1
                     : Plan.Refs.Items.item(I).size(C.Params,
                                                    C.DefaultSectionSize);
    for (const auto &[Key, Ops] : Plan.Anchored)
      for (const CommOp &Op : Ops)
        HasWrites |= Op.Kind == CommOpKind::WriteSend ||
                     Op.Kind == CommOpKind::WriteRecv ||
                     Op.Kind == CommOpKind::AtomicWrite;
    EverGiven.assign(Items.size(), false);
    for (const BitVector &BV : Plan.ReadProblem.GiveInit)
      for (unsigned I : BV)
        EverGiven[I] = true;
  }

  void run() {
    runList(P.getBody());
    finish();
  }

private:
  void error(const std::string &Msg) {
    if (Stats.Errors.size() < 20)
      Stats.Errors.push_back(Msg);
  }

  std::string itemName(unsigned I) const {
    return Plan.Refs.Items.item(I).Key;
  }

  //===--------------------------------------------------------------------===//
  // Expression evaluation
  //===--------------------------------------------------------------------===//

  std::optional<long long> eval(const Expr *E) {
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
      return cast<IntLitExpr>(E)->getValue();
    case Expr::Kind::Var: {
      auto It = Env.find(cast<VarExpr>(E)->getName());
      if (It == Env.end())
        return std::nullopt;
      return It->second;
    }
    case Expr::Kind::Unary: {
      auto V = eval(cast<UnaryExpr>(E)->getOperand());
      if (!V)
        return std::nullopt;
      return -*V;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      auto L = eval(B->getLHS()), R = eval(B->getRHS());
      if (!L || !R)
        return std::nullopt;
      switch (B->getOp()) {
      case BinaryExpr::Op::Add:
        return *L + *R;
      case BinaryExpr::Op::Sub:
        return *L - *R;
      case BinaryExpr::Op::Mul:
        return *L * *R;
      case BinaryExpr::Op::Div:
        return *R == 0 ? std::nullopt : std::optional<long long>(*L / *R);
      case BinaryExpr::Op::Lt:
        return *L < *R;
      case BinaryExpr::Op::Le:
        return *L <= *R;
      case BinaryExpr::Op::Gt:
        return *L > *R;
      case BinaryExpr::Op::Ge:
        return *L >= *R;
      case BinaryExpr::Op::Eq:
        return *L == *R;
      case BinaryExpr::Op::Ne:
        return *L != *R;
      }
      gntUnreachable("covered switch");
    }
    case Expr::Kind::ArrayRef:
    case Expr::Kind::Call:
      return std::nullopt; // Array contents and calls are not modeled.
    }
    gntUnreachable("covered switch");
  }

  bool evalCond(const Expr *E) {
    if (auto V = eval(E))
      return *V != 0;
    return Coin(Rng);
  }

  //===--------------------------------------------------------------------===//
  // Communication operations
  //===--------------------------------------------------------------------===//

  void setAvail(ItemState &S, bool V) {
    if (S.Avail == V)
      return;
    S.Avail = V;
    AvailCount += V ? 1 : -1;
    if (AvailCount > Stats.PeakAvail)
      Stats.PeakAvail = AvailCount;
  }

  void chargeMessage(unsigned Item, double SendTime) {
    ++Stats.Messages;
    Stats.Volume += static_cast<unsigned long long>(Sizes[Item]);
    double Exposed = C.Latency - (Now - SendTime);
    if (Exposed > 0) {
      Stats.ExposedLatency += Exposed;
      Now += Exposed; // The receive blocks until the data arrives.
    }
  }

  void fireOp(const CommOp &Op) {
    ItemState &S = Items[Op.Item];
    switch (Op.Kind) {
    case CommOpKind::ReadSend:
      if (S.ReadPending)
        error("C1: second Read_Send of " + itemName(Op.Item) +
              " while one is in flight");
      if (S.Avail)
        ++Stats.Redundant;
      S.ReadPending = true;
      S.ReadSendTime = Now;
      break;
    case CommOpKind::ReadRecv:
      if (!S.ReadPending) {
        error("C1: Read_Recv of " + itemName(Op.Item) + " without a send");
        break;
      }
      S.ReadPending = false;
      chargeMessage(Op.Item, S.ReadSendTime);
      setAvail(S, true);
      S.ConsumedSinceProduced = false;
      break;
    case CommOpKind::AtomicRead:
      if (S.Avail)
        ++Stats.Redundant;
      chargeMessage(Op.Item, Now); // No hiding: send and receive fused.
      setAvail(S, true);
      S.ConsumedSinceProduced = false;
      break;
    case CommOpKind::WriteSend:
      if (S.WritePending)
        error("C1: second Write_Send of " + itemName(Op.Item) +
              " while one is in flight");
      if (!S.Dirty)
        ++Stats.Redundant;
      S.WritePending = true;
      S.WriteSendTime = Now;
      S.Dirty = false; // The outgoing message captured the data.
      break;
    case CommOpKind::WriteRecv:
      if (!S.WritePending) {
        error("C1: Write_Recv of " + itemName(Op.Item) + " without a send");
        break;
      }
      S.WritePending = false;
      chargeMessage(Op.Item, S.WriteSendTime);
      break;
    case CommOpKind::AtomicWrite:
      if (!S.Dirty)
        ++Stats.Redundant;
      chargeMessage(Op.Item, Now);
      S.Dirty = false;
      break;
    }
  }

  void fireAnchor(const Stmt *S, EmitWhere W) {
    auto It = Plan.Anchored.find({S, W});
    if (It == Plan.Anchored.end())
      return;
    for (const CommOp &Op : It->second)
      fireOp(Op);
  }

  //===--------------------------------------------------------------------===//
  // Statement-level reference/definition events
  //===--------------------------------------------------------------------===//

  void nodeEvents(const Stmt *S) {
    auto It = Plan.Refs.StmtNode.find(S);
    if (It == Plan.Refs.StmtNode.end())
      return;
    NodeId N = It->second;

    // References consume (C3). A miss on an item that some definition
    // gives "for free" is the zero-trip optimism of Section 2 (the
    // defining loop ran zero times); anything else is a hard violation.
    for (unsigned I : Plan.ReadProblem.TakeInit[N]) {
      ItemState &St = Items[I];
      if (!St.Avail) {
        if (EverGiven.size() > I && EverGiven[I])
          ++Stats.OptimisticMisses;
        else
          error("C3: reference to " + itemName(I) +
                " is not locally available");
      }
      St.ConsumedSinceProduced = true;
    }
    // ... and require overlapping write-backs to have completed.
    if (HasWrites)
      for (unsigned I : Plan.WriteProblem.StealInit[N]) {
        ItemState &St = Items[I];
        if (St.Dirty)
          error("C3: " + itemName(I) +
                " referenced before its write-back was sent");
        if (St.WritePending)
          error("C3: " + itemName(I) +
                " referenced while its write-back is in flight");
      }
    // Definitions destroy overlapping read availability ...
    for (unsigned I : Plan.ReadProblem.StealInit[N]) {
      ItemState &St = Items[I];
      if (St.Avail && !St.ConsumedSinceProduced)
        ++Stats.Wasted;
      if (St.ReadPending)
        error("C1: read of " + itemName(I) + " in flight at a steal");
      setAvail(St, false);
    }
    // ... produce their own section for free ...
    for (unsigned I : Plan.ReadProblem.GiveInit[N]) {
      ItemState &St = Items[I];
      setAvail(St, true);
      St.ConsumedSinceProduced = true; // Free: never counted as waste.
    }
    // ... and leave data to be written back.
    if (HasWrites)
      for (unsigned I : Plan.WriteProblem.TakeInit[N])
        Items[I].Dirty = true;
  }

  //===--------------------------------------------------------------------===//
  // Control flow
  //===--------------------------------------------------------------------===//

  void runList(const StmtList &L) {
    size_t I = 0;
    bool SkipEntryAnchor = false;
    while (!Halt) {
      // Resolve a pending jump first — it may target a label anywhere in
      // this list (including backwards from the final statement).
      if (Jump) {
        bool Found = false;
        for (size_t K = 0; K != L.size(); ++K)
          if (L[K]->getLabel() == Jump->Label) {
            I = K;
            // A backward jump is the CYCLE edge of a goto-formed loop:
            // the target's entry productions fire on loop entry only,
            // not on this arrival.
            SkipEntryAnchor = Ordinal[L[K].get()] <= Jump->FromOrdinal;
            Jump.reset();
            Found = true;
            break;
          }
        if (!Found)
          return; // The label lives in an enclosing list.
      }
      if (I >= L.size())
        return;
      execStmt(L[I].get(), SkipEntryAnchor);
      SkipEntryAnchor = false;
      ++I;
    }
  }

  void execStmt(const Stmt *S, bool SkipEntryAnchor = false) {
    if (Halt)
      return;
    Stats.Profile.Stmt[Ordinal[S]] += 1;
    if (!SkipEntryAnchor)
      fireAnchor(S, EmitWhere::Before);
    switch (S->getKind()) {
    case Stmt::Kind::Assign: {
      nodeEvents(S);
      step();
      const auto *A = cast<AssignStmt>(S);
      if (const auto *V = dyn_cast<VarExpr>(A->getLHS())) {
        if (auto Val = eval(A->getRHS()))
          Env[V->getName()] = *Val;
        else
          Env.erase(V->getName());
      }
      break;
    }
    case Stmt::Kind::Do: {
      const auto *D = cast<DoStmt>(S);
      nodeEvents(S); // Bound expressions are evaluated once.
      step();
      long long Lo = eval(D->getLo()).value_or(1);
      long long Hi = eval(D->getHi()).value_or(Lo + C.DefaultTrip - 1);
      const std::string &Idx = D->getIndexVar();
      long long V = Lo;
      for (; V <= Hi && !Halt; ++V) {
        Env[Idx] = V;
        Stats.Profile.Loop[Ordinal[S]] += 1;
        fireAnchor(S, EmitWhere::BodyStart);
        runList(D->getBody());
        if (Jump || Halt)
          break;
        fireAnchor(S, EmitWhere::BodyEnd);
      }
      Env[Idx] = V; // Fortran leaves the index one past the bound.
      break;
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      nodeEvents(S);
      step();
      auto &Arms = Stats.Profile.Branch[Ordinal[S]];
      if (evalCond(If->getCond())) {
        Arms.first += 1;
        fireAnchor(S, EmitWhere::ThenEntry);
        runList(If->getThen());
        if (!Jump && !Halt)
          fireAnchor(S, EmitWhere::ThenExit);
      } else {
        Arms.second += 1;
        fireAnchor(S, EmitWhere::ElseEntry);
        runList(If->getElse());
        if (!Jump && !Halt)
          fireAnchor(S, EmitWhere::ElseExit);
      }
      break;
    }
    case Stmt::Kind::Goto:
      // Landing-pad productions print before and after the goto line and
      // execute exactly on the jump path.
      fireAnchor(S, EmitWhere::After);
      Jump = PendingJump{cast<GotoStmt>(S)->getTarget(), Ordinal[S]};
      return; // The After anchor already fired.
    case Stmt::Kind::Continue:
      nodeEvents(S);
      break;
    }
    if (!Jump && !Halt)
      fireAnchor(S, EmitWhere::After);
  }

  void step() {
    ++Stats.Steps;
    Stats.Work += C.WorkPerStmt;
    Now += C.WorkPerStmt;
    if (Stats.Steps >= C.MaxSteps) {
      error("step limit exceeded");
      Halt = true;
    }
  }

  void finish() {
    for (unsigned I = 0; I != Items.size(); ++I) {
      ItemState &S = Items[I];
      if (S.Avail && !S.ConsumedSinceProduced)
        ++Stats.Wasted;
      if (S.ReadPending)
        error("C1: Read_Send of " + itemName(I) + " never received");
      if (S.WritePending)
        error("C1: Write_Send of " + itemName(I) + " never received");
      if (HasWrites && S.Dirty)
        error("C3: " + itemName(I) + " never written back");
    }
  }

  const Program &P;
  const CommPlan &Plan;
  const SimConfig &C;
  SimStats &Stats;

  std::mt19937 Rng;
  std::bernoulli_distribution Coin;
  std::map<std::string, long long> Env;
  std::vector<ItemState> Items;
  std::vector<long long> Sizes;
  struct PendingJump {
    unsigned Label;
    unsigned FromOrdinal;
  };
  std::optional<PendingJump> Jump;
  std::map<const Stmt *, unsigned> Ordinal;
  std::vector<bool> EverGiven;
  unsigned long long AvailCount = 0;
  bool Halt = false;
  bool HasWrites = false;
  double Now = 0;
};

} // namespace

SimStats gnt::simulate(const Program &P, const CommPlan &Plan,
                       const SimConfig &Config) {
  SimStats Stats;
  Simulator S(P, Plan, Config, Stats);
  S.run();
  return Stats;
}
