//===- sim/TraceSimulator.h - Annotated-program execution sim ---*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an FMini program together with a communication plan under a
/// distributed-memory cost model, standing in for the iPSC/Paragon-class
/// machines the Fortran D compiler targeted. The simulator:
///
///  - interprets loops and branches with concrete parameter bindings
///    (unknown conditions draw from a seeded RNG);
///  - fires the plan's communication operations at their source anchors
///    and the program's reference/definition events at their statements;
///  - charges an alpha/beta message cost and measures *exposed* latency —
///    the part of the message latency not hidden behind local work
///    between a send and its matching receive;
///  - dynamically checks the paper's correctness criteria: C3 (every
///    reference locally satisfied), C1 (send/receive balance), and counts
///    C2-style waste (production never consumed) and O1-style redundancy
///    (production of already-available data).
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SIM_TRACESIMULATOR_H
#define GNT_SIM_TRACESIMULATOR_H

#include "comm/CommGen.h"
#include "comm/Strategy.h"

#include <map>
#include <string>

namespace gnt {

/// Machine and workload configuration.
struct SimConfig {
  /// Bindings for symbolic parameters (loop bounds like n).
  std::map<std::string, long long> Params;

  /// Trip count for loops whose bounds cannot be evaluated.
  long long DefaultTrip = 8;

  /// Element count for items whose section size cannot be evaluated.
  long long DefaultSectionSize = 8;

  /// Seed and bias for unknown branch conditions.
  unsigned BranchSeed = 1;
  double BranchTrueProb = 0.5;

  /// Message latency in work units (the alpha term).
  double Latency = 100.0;

  /// Per-element transfer cost in work units (the beta term).
  double PerElement = 0.25;

  /// Local work per executed assignment.
  double WorkPerStmt = 1.0;

  /// Runaway guard on executed statements.
  unsigned long long MaxSteps = 50'000'000;
};

/// Measured outcome of one simulated execution.
struct SimStats {
  unsigned long long Messages = 0; ///< Sends executed (reads + writes).
  unsigned long long Volume = 0;   ///< Total elements transferred.
  double Work = 0;                 ///< Local computation time.
  double ExposedLatency = 0;       ///< Latency not hidden behind work.
  unsigned long long Redundant = 0; ///< Productions of available data (O1).
  unsigned long long Wasted = 0;    ///< Productions never consumed (C2).
  /// References that relied on a definition inside a loop that executed
  /// zero times — the framework's documented zero-trip optimism
  /// (Section 2), counted rather than flagged.
  unsigned long long OptimisticMisses = 0;
  unsigned long long Steps = 0;     ///< Assignments executed.
  /// Peak number of simultaneously available items — a register-pressure
  /// proxy for placement strategies that widen live ranges by hoisting.
  unsigned long long PeakAvail = 0;
  /// Execution frequencies observed by this run, keyed by statement
  /// ordinal (gnt-profile-v1). Feed back into the speculative strategy.
  ExecProfile Profile;
  std::vector<std::string> Errors;  ///< Dynamic C1/C3 violations.

  bool ok() const { return Errors.empty(); }

  /// Total execution time under the cost model: work plus exposed
  /// latency plus bandwidth.
  double totalTime(const SimConfig &C) const {
    return Work + ExposedLatency + static_cast<double>(Volume) * C.PerElement;
  }
};

/// Runs \p Plan's annotated version of \p P under \p Config.
SimStats simulate(const Program &P, const CommPlan &Plan,
                  const SimConfig &Config);

} // namespace gnt

#endif // GNT_SIM_TRACESIMULATOR_H
