//===- analysis/Diagnostics.h - Structured analysis diagnostics -*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured, machine-readable diagnostics for the static analysis
/// subsystem. Every violation or optimality miss found by the verifier or
/// the auditor is a Diagnostic: a severity, a stable check identifier
/// (C1, C3, O1, O2, O3, O3', IFG, DIFF), an optional node/item location,
/// the message proper, and an optional fix hint. DiagnosticSet collects
/// them and renders either human-readable text or JSON (one object per
/// diagnostic plus a summary), so tools and tests can match on check IDs
/// and locations instead of scraping strings.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_ANALYSIS_DIAGNOSTICS_H
#define GNT_ANALYSIS_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace gnt {

/// How bad a finding is. Errors are correctness violations (the run is
/// wrong); warnings are suspicious-but-survivable; notes are optimality
/// guideline misses (`--werror` promotes warnings and notes to errors).
enum class DiagSeverity { Error, Warning, Note };

const char *severityName(DiagSeverity S);

/// Stable identifiers for every check the subsystem performs. The names
/// follow the paper's correctness criteria and optimality guidelines.
enum class CheckId {
  C1,   ///< Balance: EAGER/LAZY productions alternate and end matched.
  C3,   ///< Sufficiency: consumers covered on all incoming paths.
  O1,   ///< No production of an already-available item.
  O2,   ///< Few producers: no production that no consumer ever uses.
  O3,   ///< Eager productions only where consumption is anticipated.
  O3L,  ///< "O3'": lazy productions no earlier than demand requires.
  Ifg,  ///< Interval-flow-graph structural invariants.
  Diff, ///< Differential check against an independent re-derivation.
  Engine, ///< Internal failures of an analysis pass itself.
  Parse,  ///< Frontend: the source failed to parse.
  Build,  ///< CFG/interval construction failed (labels, irreducibility).
  Spec,   ///< A user-specified analysis spec failed parsing or linting.
};

/// Short stable name used in messages and JSON ("C1", "O3'", ...).
const char *checkIdName(CheckId C);

/// One finding.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  CheckId Check = CheckId::Engine;
  /// CFG/IFG node the finding is anchored to; ~0u when not node-specific.
  unsigned Node = ~0u;
  /// Dataflow item involved; -1 when not item-specific.
  int Item = -1;
  /// Display name of the item (empty when unknown).
  std::string ItemName;
  /// Which placement solution ("EAGER", "LAZY", or empty).
  std::string Solution;
  /// The finding proper.
  std::string Message;
  /// Optional suggestion for fixing or interpreting the finding.
  std::string FixHint;

  bool hasNode() const { return Node != ~0u; }

  /// "error: C3/EAGER: node 5: ..." one-line rendering.
  std::string render() const;

  /// One JSON object with every populated field.
  std::string json() const;
};

/// An ordered collection of diagnostics with renderers and summaries.
class DiagnosticSet {
public:
  void add(Diagnostic D) { Diags.push_back(std::move(D)); }
  void append(const DiagnosticSet &Other) {
    Diags.insert(Diags.end(), Other.Diags.begin(), Other.Diags.end());
  }

  const std::vector<Diagnostic> &all() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  unsigned count(DiagSeverity S) const;
  unsigned countCheck(CheckId C) const;
  bool hasErrors() const { return count(DiagSeverity::Error) != 0; }

  /// First diagnostic of severity \p S, or nullptr.
  const Diagnostic *first(DiagSeverity S) const;

  /// True if some diagnostic of check \p C mentions node \p Node
  /// (any node when \p Node is ~0u).
  bool contains(CheckId C, unsigned Node = ~0u) const;

  /// Promotes every warning and note to an error (--werror semantics).
  void promoteToErrors();

  /// One line per diagnostic.
  std::string renderText() const;

  /// {"diagnostics": [...], "summary": {...}} rendering. When \p
  /// ExtraKey is non-empty, one more top-level member is appended with
  /// \p ExtraJson emitted verbatim as its (pre-rendered) value — the
  /// hook `gntc --audit-json` uses to attach the engine convergence
  /// statistics without widening every other caller's output.
  std::string renderJson(const std::string &ExtraKey = std::string(),
                         const std::string &ExtraJson = std::string()) const;

private:
  std::vector<Diagnostic> Diags;
};

} // namespace gnt

#endif // GNT_ANALYSIS_DIAGNOSTICS_H
