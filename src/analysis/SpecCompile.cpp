//===- analysis/SpecCompile.cpp - Compile specs onto the engines ------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/SpecCompile.h"

#include "comm/CommGen.h"
#include "comm/RefAnalysis.h"
#include "pre/ExprPre.h"
#include "support/Hashing.h"
#include "support/ItemClasses.h"
#include "support/Json.h"
#include "support/SimdKernels.h"
#include "support/Support.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace gnt;

//===----------------------------------------------------------------------===//
// Universe construction
//===----------------------------------------------------------------------===//

namespace {

SpecUniverseData buildItemsUniverse(const Program &P, const Cfg &G,
                                    const IntervalFlowGraph &Ifg) {
  SpecUniverseData D;
  RefAnalysisResult Refs = analyzeReferences(P, G);
  CommOptions Opts;
  Opts.GenerateWrites = false;
  GntProblem Read, Write;
  buildCommProblems(Refs, G, Ifg, Opts, Read, Write);
  D.Size = Read.UniverseSize;
  D.Names = Refs.Items.names();
  D.Take = std::move(Read.TakeInit);
  D.Give = std::move(Read.GiveInit);
  D.Steal = std::move(Read.StealInit);
  return D;
}

SpecUniverseData buildExprsUniverse(const Program &P, const Cfg &G) {
  SpecUniverseData D;
  GntProblem Prob = buildExprPreProblem(P, G, D.Names);
  D.Size = Prob.UniverseSize;
  D.Take = std::move(Prob.TakeInit);
  D.Give = std::move(Prob.GiveInit);
  D.Steal = std::move(Prob.StealInit);
  return D;
}

/// Definition sites: one item per (array item, defining node) pair,
/// named "key@nN". GIVE is the sites at the node, STEAL the *other*
/// sites of the items it defines (classic reaching-definitions kill),
/// TAKE every site of the items the node reads.
SpecUniverseData buildDefsUniverse(const Program &P, const Cfg &G) {
  SpecUniverseData D;
  RefAnalysisResult Refs = analyzeReferences(P, G);
  const unsigned N = G.size();

  std::vector<std::vector<unsigned>> SitesOfItem(Refs.Items.size());
  std::vector<std::vector<unsigned>> SitesAtNode(N);
  for (NodeId Node = 0; Node != N; ++Node)
    for (unsigned Item : Refs.PerNode[Node].Defs) {
      unsigned Site = static_cast<unsigned>(D.Names.size());
      D.Names.push_back(Refs.Items.item(Item).Key + "@n" +
                        itostr(static_cast<long long>(Node)));
      SitesOfItem[Item].push_back(Site);
      SitesAtNode[Node].push_back(Site);
    }
  D.Size = static_cast<unsigned>(D.Names.size());

  D.Take.assign(N, BitVector(D.Size));
  D.Give.assign(N, BitVector(D.Size));
  D.Steal.assign(N, BitVector(D.Size));
  for (NodeId Node = 0; Node != N; ++Node) {
    for (unsigned Site : SitesAtNode[Node])
      D.Give[Node].set(Site);
    for (unsigned Item : Refs.PerNode[Node].Defs)
      for (unsigned Site : SitesOfItem[Item])
        D.Steal[Node].set(Site);
    D.Steal[Node].reset(D.Give[Node]);
    for (unsigned Item : Refs.PerNode[Node].Uses)
      for (unsigned Site : SitesOfItem[Item])
        D.Take[Node].set(Site);
  }
  return D;
}

} // namespace

SpecUniverseData gnt::buildSpecUniverse(SpecUniverse U, const Program &P,
                                        const Cfg &G,
                                        const IntervalFlowGraph &Ifg) {
  switch (U) {
  case SpecUniverse::Items:
    return buildItemsUniverse(P, G, Ifg);
  case SpecUniverse::Exprs:
    return buildExprsUniverse(P, G);
  case SpecUniverse::Defs:
    return buildDefsUniverse(P, G);
  }
  gntUnreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Compilation: normalize to gen/kill
//===----------------------------------------------------------------------===//

CompiledAnalysis gnt::compileAnalysisSpec(const AnalysisSpec &Spec,
                                          const SpecUniverseData &Data,
                                          unsigned NumNodes) {
  CompiledAnalysis C;
  C.Name = Spec.Name;
  C.Universe = Spec.Universe;
  C.Direction = Spec.Direction;
  C.Meet = Spec.Meet;
  C.IncludeSyntheticEdges = Spec.IncludeSyntheticEdges;
  C.NumNodes = NumNodes;
  C.UniverseSize = Data.Size;
  C.ItemNames = Data.Names;
  C.Boundary = BitVector(Data.Size, Spec.BoundaryAll);

  const unsigned U = Data.Size;
  const BitVector EmptyRow(U);
  C.Gen.assign(NumNodes, EmptyRow);
  C.Kill.assign(NumNodes, EmptyRow);
  for (unsigned Node = 0; Node != NumNodes; ++Node) {
    const BitVector &Take = Node < Data.Take.size() ? Data.Take[Node]
                                                    : EmptyRow;
    const BitVector &Give = Node < Data.Give.size() ? Data.Give[Node]
                                                    : EmptyRow;
    const BitVector &Steal = Node < Data.Steal.size() ? Data.Steal[Node]
                                                      : EmptyRow;
    if (Spec.Transfer) {
      // Gen = f(empty); Kill = ~f(all). Exact for lane-wise monotone
      // templates: per lane f is one of {0, 1, in}, and the two extreme
      // evaluations pin down which.
      C.Gen[Node] = evalSetExpr(*Spec.Transfer, U, BitVector(U), Take, Give,
                                Steal);
      BitVector One = evalSetExpr(*Spec.Transfer, U, BitVector(U, true),
                                  Take, Give, Steal);
      One.flip();
      C.Kill[Node] = std::move(One);
    } else {
      if (Spec.GenExpr)
        C.Gen[Node] =
            evalSetExpr(*Spec.GenExpr, U, EmptyRow, Take, Give, Steal);
      if (Spec.KillExpr)
        C.Kill[Node] =
            evalSetExpr(*Spec.KillExpr, U, EmptyRow, Take, Give, Steal);
    }
  }
  return C;
}

//===----------------------------------------------------------------------===//
// Iterative backend (the oracle)
//===----------------------------------------------------------------------===//

DataflowResult gnt::runAnalysisIterative(const CompiledAnalysis &C,
                                         const IntervalFlowGraph &Ifg) {
  DataflowSpec Spec;
  Spec.Direction = C.Direction;
  Spec.Meet = C.Meet;
  Spec.UniverseSize = C.UniverseSize;
  Spec.Gen = C.Gen;
  Spec.Kill = C.Kill;
  Spec.Boundary = C.Boundary;
  if (C.IncludeSyntheticEdges)
    Spec.EdgeFilter = [](const IfgEdge &) { return true; };
  return solveDataflow(Ifg, Spec, SolveMode::Worklist);
}

//===----------------------------------------------------------------------===//
// Arena backend: flat round-robin word sweeps
//===----------------------------------------------------------------------===//

namespace {

using Word = BitVector::Word;

/// Per-node flow predecessors under the spec's edge filter, in flow
/// orientation — the exact meet inputs of the iterative engine.
std::vector<std::vector<NodeId>> flowPreds(const CompiledAnalysis &C,
                                           const IntervalFlowGraph &Ifg) {
  std::vector<std::vector<NodeId>> Preds(C.NumNodes);
  const bool Fwd = C.Direction == FlowDirection::Forward;
  for (NodeId Node = 0; Node != Ifg.size(); ++Node)
    for (const IfgEdge &E : Ifg.succs(Node)) {
      if (!C.IncludeSyntheticEdges && E.Type == EdgeType::Synthetic)
        continue;
      Preds[Fwd ? E.Dst : E.Src].push_back(Fwd ? E.Src : E.Dst);
    }
  return Preds;
}

/// Sweep order: preorder for forward flow, reverse preorder backward —
/// the round-robin schedule of the iterative engine.
std::vector<NodeId> sweepOrder(const CompiledAnalysis &C,
                               const IntervalFlowGraph &Ifg) {
  std::vector<NodeId> Order = Ifg.preorder();
  if (C.Direction == FlowDirection::Backward)
    std::reverse(Order.begin(), Order.end());
  return Order;
}

/// Solves \p C into \p In / \p Out (already initialized and
/// boundary-pinned), sweeping only the word window [\p Lo, \p Hi).
/// Lanes are independent in a pure gen/kill problem, so a window
/// reaches its fixed point without ever reading outside itself.
unsigned sweepWindow(const CompiledAnalysis &C,
                     const std::vector<std::vector<NodeId>> &Preds,
                     const std::vector<NodeId> &Order,
                     const DataflowMatrix &GenM, const DataflowMatrix &KillM,
                     DataflowMatrix &In, DataflowMatrix &Out, unsigned Lo,
                     unsigned Hi) {
  if (Lo >= Hi)
    return 0;
  const bool AllMeet = C.Meet == Confluence::All;
  const unsigned W = Hi - Lo;
  const SolverKernels &SK = solverKernels();
  std::vector<Word> Tmp(W);
  unsigned Sweeps = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Sweeps;
    for (NodeId Node : Order) {
      const std::vector<NodeId> &P = Preds[Node];
      if (P.empty())
        continue; // Pinned to the boundary value.
      SK.RowCopy(Tmp.data(), Out.row(P[0]) + Lo, W);
      for (size_t K = 1; K != P.size(); ++K) {
        const Word *PR = Out.row(P[K]) + Lo;
        if (AllMeet)
          SK.RowAnd(Tmp.data(), PR, W);
        else
          SK.RowOr(Tmp.data(), PR, W);
      }
      SK.RowCopy(In.row(Node) + Lo, Tmp.data(), W);
      // The kernel stores the (possibly identical) value back
      // unconditionally and reports the XOR of old and new; the sweep
      // only needs to know whether *anything* moved.
      Word Diff = SK.FuseTransfer(W, Out.row(Node) + Lo, Tmp.data(),
                                  GenM.row(Node) + Lo, KillM.row(Node) + Lo);
      Changed |= Diff != 0;
    }
  }
  return Sweeps;
}

/// The uncompressed arena solve (sharding only).
ArenaSpecResult solveArena(const CompiledAnalysis &C,
                           const IntervalFlowGraph &Ifg, unsigned Shards) {
  const unsigned N = C.NumNodes, U = C.UniverseSize;
  ArenaSpecResult R;
  R.In = DataflowMatrix(N, U);
  R.Out = DataflowMatrix(N, U);
  DataflowMatrix GenM(N, U, DataflowMatrix::Uninit);
  DataflowMatrix KillM(N, U, DataflowMatrix::Uninit);
  for (NodeId Node = 0; Node != N; ++Node) {
    GenM.assignRow(Node, C.Gen[Node]);
    KillM.assignRow(Node, C.Kill[Node]);
  }

  std::vector<std::vector<NodeId>> Preds = flowPreds(C, Ifg);
  std::vector<NodeId> Order = sweepOrder(C, Ifg);

  // Interior nodes start at top for All confluence; boundary (no
  // inflow) nodes are pinned, mirroring the engine's constructor.
  if (C.Meet == Confluence::All)
    for (NodeId Node = 0; Node != N; ++Node) {
      R.In.setRow(Node);
      R.Out.setRow(Node);
    }
  const unsigned WPR = R.In.wordsPerRow();
  const SolverKernels &SK = solverKernels();
  for (NodeId Node = 0; Node != N; ++Node) {
    if (!Preds[Node].empty())
      continue;
    R.In.assignRow(Node, C.Boundary);
    (void)SK.FuseTransfer(WPR, R.Out.row(Node), R.In.row(Node),
                          GenM.row(Node), KillM.row(Node));
  }

  const unsigned S =
      Shards <= 1 ? 1 : std::min(Shards, std::max(WPR, 1u));
  R.ShardsUsed = S;
  if (S <= 1) {
    R.Sweeps = sweepWindow(C, Preds, Order, GenM, KillM, R.In, R.Out, 0, WPR);
    return R;
  }
  std::vector<unsigned> ShardSweeps(S, 0);
  ThreadPool Pool(S);
  for (unsigned I = 0; I != S; ++I)
    Pool.submit([&, I] {
      unsigned Lo = static_cast<unsigned>(
          static_cast<uint64_t>(WPR) * I / S);
      unsigned Hi = static_cast<unsigned>(
          static_cast<uint64_t>(WPR) * (I + 1) / S);
      ShardSweeps[I] =
          sweepWindow(C, Preds, Order, GenM, KillM, R.In, R.Out, Lo, Hi);
    });
  Pool.wait();
  R.Sweeps = *std::max_element(ShardSweeps.begin(), ShardSweeps.end());
  return R;
}

} // namespace

ArenaSpecResult gnt::runAnalysisArena(const CompiledAnalysis &C,
                                      const IntervalFlowGraph &Ifg,
                                      unsigned Shards, bool Compress) {
  const unsigned U = C.UniverseSize;
  if (!Compress || U == 0)
    return solveArena(C, Ifg, Shards);

  std::vector<BitVector> BoundaryRow{C.Boundary};
  ItemClasses Classes = computeItemClasses(U, C.Gen, C.Kill, BoundaryRow);
  const unsigned Phantom = Classes.Elided ? 1u : 0u;
  const unsigned CU = Classes.NumClasses + Phantom;
  if (Classes.Aborted || CU >= U)
    return solveArena(C, Ifg, Shards); // Nothing to gain; solve plain.

  // Compressed problem: one lane per class, columns read off the class
  // representatives, plus (when items were elided) the phantom lane
  // with empty gen/kill/boundary that tracks where top survives under
  // All confluence.
  CompiledAnalysis CC;
  CC.Name = C.Name;
  CC.Universe = C.Universe;
  CC.Direction = C.Direction;
  CC.Meet = C.Meet;
  CC.IncludeSyntheticEdges = C.IncludeSyntheticEdges;
  CC.NumNodes = C.NumNodes;
  CC.UniverseSize = CU;
  CC.Gen.assign(C.NumNodes, BitVector(CU));
  CC.Kill.assign(C.NumNodes, BitVector(CU));
  CC.Boundary = BitVector(CU);
  for (unsigned Cls = 0; Cls != Classes.NumClasses; ++Cls) {
    unsigned Rep = Classes.Representative[Cls];
    if (C.Boundary.test(Rep))
      CC.Boundary.set(Cls);
    for (NodeId Node = 0; Node != C.NumNodes; ++Node) {
      if (C.Gen[Node].test(Rep))
        CC.Gen[Node].set(Cls);
      if (C.Kill[Node].test(Rep))
        CC.Kill[Node].set(Cls);
    }
  }

  ArenaSpecResult Sub = solveArena(CC, Ifg, Shards);

  ArenaSpecResult R;
  R.Sweeps = Sub.Sweeps;
  R.ShardsUsed = Sub.ShardsUsed;
  R.CompressionApplied = true;
  R.CompressedClasses = CU;
  R.ElidedItems = Classes.Elided;
  R.In = DataflowMatrix(C.NumNodes, U, DataflowMatrix::Uninit);
  R.Out = DataflowMatrix(C.NumNodes, U, DataflowMatrix::Uninit);

  BitVector ElidedMask(U);
  for (unsigned Item = 0; Item != U; ++Item)
    if (Classes.ClassOf[Item] == ItemClasses::Bottom)
      ElidedMask.set(Item);

  std::vector<ExpandSeg> Plan = buildExpandPlan(Classes);
  const unsigned WPR = R.In.wordsPerRow();
  const unsigned SubWPR = Sub.In.wordsPerRow();
  const unsigned PhantomBit = Classes.NumClasses;
  auto Expand = [&](const DataflowMatrix &Src, DataflowMatrix &Dst,
                    NodeId Node) {
    const Word *SrcRow = Src.row(Node);
    Word *DstRow = Dst.row(Node);
    expandRow(DstRow, WPR, SrcRow, SubWPR, Plan);
    if (Phantom &&
        ((SrcRow[PhantomBit / BitVector::WordBits] >>
          (PhantomBit % BitVector::WordBits)) &
         1)) {
      const Word *M = ElidedMask.words();
      for (unsigned W = 0; W != WPR; ++W)
        DstRow[W] |= M[W];
    }
  };
  for (NodeId Node = 0; Node != C.NumNodes; ++Node) {
    Expand(Sub.In, R.In, Node);
    Expand(Sub.Out, R.Out, Node);
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Differential run
//===----------------------------------------------------------------------===//

AnalysisRun gnt::runAnalysis(const CompiledAnalysis &C,
                             const IntervalFlowGraph &Ifg, unsigned Shards,
                             bool Compress) {
  AnalysisRun R;
  R.Name = C.Name;
  R.Universe = C.Universe;
  R.UniverseSize = C.UniverseSize;
  R.ItemNames = C.ItemNames;

  DataflowResult Oracle = runAnalysisIterative(C, Ifg);
  ArenaSpecResult Arena = runAnalysisArena(C, Ifg, Shards, Compress);
  R.Stats.Iterative = Oracle.Stats;
  R.Stats.ArenaSweeps = Arena.Sweeps;
  R.Stats.ShardsUsed = Arena.ShardsUsed;
  R.Stats.CompressionApplied = Arena.CompressionApplied;
  R.Stats.CompressedClasses = Arena.CompressedClasses;
  R.Stats.ElidedItems = Arena.ElidedItems;

  // Mandatory per-node byte-identity differential: the arena values
  // ship, but only after the independent oracle agrees bit for bit.
  constexpr unsigned MaxReports = 10;
  unsigned Mismatches = 0;
  auto CheckSide = [&](NodeId Node, const BitVector &Want,
                       const BitVector &Got, const char *Side) {
    if (Want == Got)
      return;
    ++Mismatches;
    if (Mismatches > MaxReports)
      return;
    Diagnostic D;
    D.Severity = DiagSeverity::Error;
    D.Check = CheckId::Diff;
    D.Node = Node;
    const Word *A = Want.words();
    const Word *B = Got.words();
    for (unsigned W = 0; W != Want.wordCount(); ++W)
      if (A[W] != B[W]) {
        unsigned Item = W * BitVector::WordBits +
                        static_cast<unsigned>(__builtin_ctzll(A[W] ^ B[W]));
        D.Item = static_cast<int>(Item);
        if (Item < R.ItemNames.size())
          D.ItemName = R.ItemNames[Item];
        break;
      }
    D.Message = "analysis '" + C.Name +
                "': iterative and arena fixed points disagree (" + Side +
                " side)";
    D.FixHint = "the two backends must agree byte for byte in every "
                "configuration; this is a solver bug, not a spec bug";
    R.Diags.add(D);
  };

  R.In.reserve(C.NumNodes);
  R.Out.reserve(C.NumNodes);
  for (NodeId Node = 0; Node != C.NumNodes; ++Node) {
    BitVector AIn = Arena.In.extractRow(Node);
    BitVector AOut = Arena.Out.extractRow(Node);
    CheckSide(Node, Oracle.In[Node], AIn, "in");
    CheckSide(Node, Oracle.Out[Node], AOut, "out");
    R.In.push_back(std::move(AIn));
    R.Out.push_back(std::move(AOut));
  }
  if (Mismatches > MaxReports) {
    Diagnostic D;
    D.Severity = DiagSeverity::Note;
    D.Check = CheckId::Diff;
    D.Message = "analysis '" + C.Name + "': " +
                itostr(static_cast<long long>(Mismatches)) +
                " node sides disagree in total (first " +
                itostr(static_cast<long long>(MaxReports)) + " reported)";
    R.Diags.add(D);
  }
  return R;
}

//===----------------------------------------------------------------------===//
// AnalysisRun rendering
//===----------------------------------------------------------------------===//

uint64_t AnalysisRun::solutionHash() const {
  // Shape first so (2 nodes x 1 item) never collides with (1 x 2).
  uint64_t H = FnvOffsetBasis;
  H = fnv1aAppend(H, itostr(static_cast<long long>(In.size())));
  H = fnv1aAppend(H, ":");
  H = fnv1aAppend(H, itostr(static_cast<long long>(UniverseSize)));
  auto Fold = [&H](const BitVector &BV) {
    const BitVector::Word *W = BV.words();
    for (unsigned K = 0, E = BV.wordCount(); K != E; ++K) {
      BitVector::Word V = W[K];
      for (unsigned B = 0; B != 8; ++B) {
        H ^= (V >> (8 * B)) & 0xff;
        H *= FnvPrime;
      }
    }
  };
  for (const BitVector &Row : In)
    Fold(Row);
  for (const BitVector &Row : Out)
    Fold(Row);
  return H;
}

namespace {

std::string itemSetText(const BitVector &Row,
                        const std::vector<std::string> &Names) {
  std::string S = "{";
  bool First = true;
  for (unsigned Item : Row) {
    if (!First)
      S += ", ";
    First = false;
    S += Item < Names.size() ? Names[Item]
                             : "item" + itostr(static_cast<long long>(Item));
  }
  S += "}";
  return S;
}

} // namespace

std::string AnalysisRun::renderText() const {
  std::string S = "analysis " + Name + ": universe " +
                  specUniverseName(Universe) + " (" +
                  itostr(static_cast<long long>(UniverseSize)) + " items), " +
                  itostr(static_cast<long long>(In.size())) + " nodes, " +
                  (ok() ? "ok" : "FAILED") + "\n";
  for (unsigned Node = 0; Node != In.size(); ++Node)
    S += "  n" + itostr(static_cast<long long>(Node)) +
         " in=" + itemSetText(In[Node], ItemNames) +
         " out=" + itemSetText(Out[Node], ItemNames) + "\n";
  if (!Diags.empty())
    S += Diags.renderText();
  return S;
}

std::string AnalysisRun::renderJson(bool IncludeStats) const {
  JsonWriter W;
  W.beginObject();
  W.key("analysis").value(Name);
  W.key("universe").value(specUniverseName(Universe));
  W.key("items").value(UniverseSize);
  W.key("nodes").value(static_cast<unsigned>(In.size()));
  W.key("ok").value(ok());
  W.key("hash").value(hashToHex(solutionHash()));
  auto EmitSide = [&](const char *Key, const std::vector<BitVector> &Rows) {
    W.beginArray(Key);
    for (const BitVector &Row : Rows) {
      W.beginArray();
      for (unsigned Item : Row)
        W.value(Item < ItemNames.size()
                    ? ItemNames[Item]
                    : "item" + itostr(static_cast<long long>(Item)));
      W.endArray();
    }
    W.endArray();
  };
  EmitSide("in", In);
  EmitSide("out", Out);
  if (IncludeStats) {
    W.key("stats").beginObject();
    W.key("iterations").value(Stats.Iterative.Iterations);
    W.key("node_visits").value(Stats.Iterative.NodeVisits);
    W.key("edge_evaluations").value(Stats.Iterative.EdgeEvaluations);
    W.key("worklist_peak").value(Stats.Iterative.WorklistPeak);
    W.key("arena_sweeps").value(Stats.ArenaSweeps);
    W.key("shards").value(Stats.ShardsUsed);
    W.key("compression_applied").value(Stats.CompressionApplied);
    W.key("compressed_classes").value(Stats.CompressedClasses);
    W.key("elided_items").value(Stats.ElidedItems);
    W.endObject();
  }
  W.beginArray("diagnostics");
  for (const Diagnostic &D : Diags.all())
    W.raw(D.json());
  W.endArray();
  W.endObject();
  return W.str();
}

//===----------------------------------------------------------------------===//
// End-to-end entry
//===----------------------------------------------------------------------===//

AnalysisRun gnt::runAnalysisSpec(const std::string &NameOrText,
                                 const Program &P, const Cfg &G,
                                 const IntervalFlowGraph &Ifg, unsigned Shards,
                                 bool Compress) {
  std::string Text = NameOrText;
  const bool LooksLikeName = NameOrText.find('\n') == std::string::npos &&
                             NameOrText.find(' ') == std::string::npos;
  if (LooksLikeName) {
    const char *Builtin = builtinAnalysisSpecText(NameOrText);
    if (!Builtin) {
      AnalysisRun R;
      R.Name = NameOrText;
      std::string Known;
      for (const auto &[BName, BText] : builtinAnalysisSpecs()) {
        if (!Known.empty())
          Known += ", ";
        Known += BName;
      }
      Diagnostic D;
      D.Severity = DiagSeverity::Error;
      D.Check = CheckId::Spec;
      D.Message = "unknown-analysis: no built-in analysis named `" +
                  NameOrText + "`";
      D.FixHint = "built-ins: " + Known + "; or pass a full spec text";
      R.Diags.add(D);
      return R;
    }
    Text = Builtin;
  }

  SpecParseResult PR = parseAndLintAnalysisSpec(Text);
  if (!PR.ok()) {
    AnalysisRun R;
    if (PR.Spec)
      R.Name = PR.Spec->Name;
    R.Diags = PR.Diags;
    return R;
  }

  SpecUniverseData Data = buildSpecUniverse(PR.Spec->Universe, P, G, Ifg);
  CompiledAnalysis C = compileAnalysisSpec(*PR.Spec, Data, Ifg.size());
  AnalysisRun R = runAnalysis(C, Ifg, Shards, Compress);
  R.Diags.append(PR.Diags); // Carry parser/linter warnings through.
  return R;
}
