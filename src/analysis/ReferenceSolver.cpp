//===- analysis/ReferenceSolver.cpp - Iterative Eq. 1-15 oracle -------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Every sweep re-evaluates every equation at every node from the
/// current variable values (starting at bottom everywhere) and repeats
/// until a sweep changes nothing. Because set difference against a
/// computed variable is not monotone, convergence relies on the
/// dependency DAG rather than lattice monotonicity: once a variable's
/// inputs have settled, one more evaluation settles the variable, so the
/// process stabilizes in at most depth-of-DAG sweeps. Sweeps visit nodes
/// in the Figure 15 orders (S1/S2 in reverse preorder, S3 in preorder),
/// which keeps that depth small, but unlike the elimination solver
/// nothing here *depends* on one pass sufficing — the fixed point is
/// verified, not assumed.
///
//===----------------------------------------------------------------------===//

#include "analysis/ReferenceSolver.h"

#include <cassert>
#include <initializer_list>
#include <utility>

using namespace gnt;

namespace {

class IterativeSolver {
public:
  IterativeSolver(const IntervalFlowGraph &Ifg, const GntProblem &P)
      : Ifg(Ifg), P(P), N(Ifg.size()), U(P.UniverseSize) {
    assert(P.TakeInit.size() == N && P.GiveInit.size() == N &&
           P.StealInit.size() == N && "problem not sized to the graph");
    auto alloc = [&](std::vector<BitVector> &V) {
      V.assign(N, BitVector(U));
    };
    alloc(R.Steal);
    alloc(R.Give);
    alloc(R.Block);
    alloc(R.TakenOut);
    alloc(R.Take);
    alloc(R.TakenIn);
    alloc(R.BlockLoc);
    alloc(R.TakeLoc);
    alloc(R.GiveLoc);
    alloc(R.StealLoc);
    for (GntPlacement *Pl : {&R.Eager, &R.Lazy}) {
      alloc(Pl->GivenIn);
      alloc(Pl->Given);
      alloc(Pl->GivenOut);
      alloc(Pl->ResIn);
      alloc(Pl->ResOut);
    }
    NoHoist.assign(N, 0);
    for (NodeId H : P.NoHoistHeaders)
      NoHoist[H] = 1;

    // The elimination schedule evaluates Eq. 9/10 for the children of
    // each header, headers in reverse preorder. On a reversed graph,
    // JUMP and SYNTHETIC edges can point into deeper intervals, whose
    // children are scheduled earlier — the one-pass solver then reads
    // bottom for the pred's STEAL_loc/GIVE_loc. That read-before-write
    // behavior is part of the AFTER problem's specification (the header
    // poisoning keeps the result safe regardless), so the oracle
    // replicates it: Eq. 9/10 inputs from later schedule positions are
    // pinned to bottom. On forward graphs every pred is scheduled
    // earlier and the pin never fires.
    S2Pos.assign(N, 0);
    unsigned Counter = 0;
    const std::vector<NodeId> &Pre = Ifg.preorder();
    for (auto It = Pre.rbegin(), End = Pre.rend(); It != End; ++It)
      for (NodeId C : Ifg.children(*It))
        S2Pos[C] = ++Counter;
  }

  ReferenceResult run(unsigned MaxSweeps) {
    if (MaxSweeps == 0)
      MaxSweeps = 4 * N + 16; // Far above any converging instance's depth.
    ReferenceResult Out;
    while (Out.Sweeps < MaxSweeps) {
      ++Out.Sweeps;
      if (!sweep()) {
        Out.Converged = true;
        break;
      }
    }
    Out.Result = std::move(R);
    return Out;
  }

private:
  /// Union of \p Var over edges of the given types and direction.
  BitVector joinOver(const std::vector<IfgEdge> &Edges, bool UseDst,
                     const std::vector<BitVector> &Var,
                     std::initializer_list<EdgeType> Types) const {
    BitVector Acc(U);
    for (const IfgEdge &E : Edges)
      for (EdgeType T : Types)
        if (E.Type == T) {
          Acc |= Var[UseDst ? E.Dst : E.Src];
          break;
        }
    return Acc;
  }

  /// Intersection of \p Var over edges of the given types and direction;
  /// bottom when there are none (Section 4's convention).
  BitVector meetOver(const std::vector<IfgEdge> &Edges, bool UseDst,
                     const std::vector<BitVector> &Var,
                     std::initializer_list<EdgeType> Types) const {
    BitVector Acc(U);
    bool First = true;
    for (const IfgEdge &E : Edges)
      for (EdgeType T : Types)
        if (E.Type == T) {
          const BitVector &V = Var[UseDst ? E.Dst : E.Src];
          if (First) {
            Acc = V;
            First = false;
          } else {
            Acc &= V;
          }
          break;
        }
    return Acc;
  }

  /// Stores \p New into Var[Node]; remembers whether anything changed.
  void set(std::vector<BitVector> &Var, NodeId Node, BitVector New) {
    if (Var[Node] != New) {
      Var[Node] = std::move(New);
      Changed = true;
    }
  }

  bool sweep() {
    using ET = EdgeType;
    Changed = false;
    const std::vector<NodeId> &Pre = Ifg.preorder();

    // S1 + S2, reverse preorder.
    for (auto It = Pre.rbegin(), End = Pre.rend(); It != End; ++It) {
      NodeId Node = *It;

      if (Node != Ifg.root()) {
        // Eq. 9, with preds the elimination schedule has not evaluated
        // yet pinned to bottom (see the constructor): an empty meet
        // operand, so the whole meet term vanishes.
        BitVector GL(U);
        bool First = true;
        for (const IfgEdge &E : Ifg.preds(Node)) {
          if (E.Type != ET::Forward && E.Type != ET::Jump)
            continue;
          BitVector V(U);
          if (S2Pos[E.Src] < S2Pos[Node])
            V = R.GiveLoc[E.Src];
          if (First) {
            GL = std::move(V);
            First = false;
          } else {
            GL &= V;
          }
        }
        GL |= R.Give[Node];
        GL |= R.Take[Node];
        GL.reset(R.Steal[Node]);
        set(R.GiveLoc, Node, std::move(GL));

        // Eq. 10, same schedule pinning: a bottom input is an empty
        // union term, so the edge is skipped.
        BitVector SL = R.Steal[Node];
        for (const IfgEdge &E : Ifg.preds(Node)) {
          if (S2Pos[E.Src] > S2Pos[Node])
            continue;
          if (E.Type == ET::Forward || E.Type == ET::Jump) {
            BitVector T = R.StealLoc[E.Src];
            T.reset(R.GiveLoc[E.Src]);
            SL |= T;
          } else if (E.Type == ET::Synthetic) {
            SL |= R.StealLoc[E.Src];
          }
        }
        set(R.StealLoc, Node, std::move(SL));
      }

      // Eq. 1 / Eq. 2.
      {
        BitVector S = P.StealInit[Node];
        BitVector G = P.GiveInit[Node];
        if (Ifg.isHeader(Node) && Ifg.lastChild(Node) != InvalidNode) {
          S |= R.StealLoc[Ifg.lastChild(Node)];
          if (!NoHoist[Node])
            G |= R.GiveLoc[Ifg.lastChild(Node)];
        }
        set(R.Steal, Node, std::move(S));
        set(R.Give, Node, std::move(G));
      }

      // Eq. 3.
      {
        BitVector B = joinOver(Ifg.succs(Node), /*UseDst=*/true, R.BlockLoc,
                               {ET::Entry});
        B |= R.Steal[Node];
        B |= R.Give[Node];
        set(R.Block, Node, std::move(B));
      }

      // Eq. 4.
      set(R.TakenOut, Node,
          meetOver(Ifg.succs(Node), /*UseDst=*/true, R.TakenIn,
                   {ET::Forward, ET::Jump, ET::Synthetic}));

      // Eq. 5.
      {
        BitVector T = P.TakeInit[Node];
        if (!NoHoist[Node]) {
          BitVector Hoisted = joinOver(Ifg.succs(Node), /*UseDst=*/true,
                                       R.TakenIn, {ET::Entry});
          Hoisted.reset(R.Steal[Node]);
          BitVector Maybe = joinOver(Ifg.succs(Node), /*UseDst=*/true,
                                     R.TakeLoc, {ET::Entry});
          Maybe &= R.TakenOut[Node];
          Maybe.reset(R.Block[Node]);
          T |= Hoisted;
          T |= Maybe;
        }
        set(R.Take, Node, std::move(T));
      }

      // Eq. 6.
      if (NoHoist[Node]) {
        set(R.TakenIn, Node, R.Take[Node]);
      } else {
        BitVector T = R.TakenOut[Node];
        T.reset(R.Block[Node]);
        T |= R.Take[Node];
        set(R.TakenIn, Node, std::move(T));
      }

      // Eq. 7.
      {
        BitVector B = joinOver(Ifg.succs(Node), /*UseDst=*/true, R.BlockLoc,
                               {ET::Forward});
        B |= R.Block[Node];
        B.reset(R.Take[Node]);
        set(R.BlockLoc, Node, std::move(B));
      }

      // Eq. 8.
      {
        BitVector T = joinOver(Ifg.succs(Node), /*UseDst=*/true, R.TakeLoc,
                               {ET::Entry, ET::Forward});
        T.reset(R.Block[Node]);
        T |= R.Take[Node];
        set(R.TakeLoc, Node, std::move(T));
      }
    }

    // S3, preorder; ROOT's placement variables stay bottom.
    for (NodeId Node : Pre) {
      if (Node == Ifg.root())
        continue;
      for (Urgency Urg : {Urgency::Eager, Urgency::Lazy}) {
        GntPlacement &Pl = Urg == Urgency::Eager ? R.Eager : R.Lazy;

        // Eq. 11, with the implemented STEAL-summary refinement and
        // NoHoist opacity.
        BitVector In = meetOver(Ifg.preds(Node), /*UseDst=*/false,
                                Pl.GivenOut, {ET::Forward, ET::Jump});
        NodeId H = Ifg.headerOf(Node);
        if (H != InvalidNode && !NoHoist[H]) {
          BitVector FromHeader = Pl.Given[H];
          FromHeader.reset(R.Steal[H]);
          In |= FromHeader;
        }
        {
          BitVector Some = joinOver(Ifg.preds(Node), /*UseDst=*/false,
                                    Pl.GivenOut, {ET::Forward, ET::Jump});
          Some &= R.TakenIn[Node];
          In |= Some;
        }
        set(Pl.GivenIn, Node, std::move(In));

        // Eq. 12.
        {
          BitVector G = Pl.GivenIn[Node];
          G |= Urg == Urgency::Eager ? R.TakenIn[Node] : R.Take[Node];
          set(Pl.Given, Node, std::move(G));
        }

        // Eq. 13.
        {
          BitVector Out = R.Give[Node];
          Out |= Pl.Given[Node];
          Out.reset(R.Steal[Node]);
          set(Pl.GivenOut, Node, std::move(Out));
        }
      }
    }

    // S4.
    for (NodeId Node : Pre) {
      for (GntPlacement *Pl : {&R.Eager, &R.Lazy}) {
        // Eq. 14.
        {
          BitVector In = Pl->Given[Node];
          In.reset(Pl->GivenIn[Node]);
          set(Pl->ResIn, Node, std::move(In));
        }
        // Eq. 15.
        {
          BitVector Out = joinOver(Ifg.succs(Node), /*UseDst=*/true,
                                   Pl->GivenIn, {ET::Forward, ET::Jump});
          Out.reset(Pl->GivenOut[Node]);
          set(Pl->ResOut, Node, std::move(Out));
        }
      }
    }

    return Changed;
  }

  const IntervalFlowGraph &Ifg;
  const GntProblem &P;
  const unsigned N, U;
  std::vector<char> NoHoist;
  /// Eq. 9/10 evaluation position of each node in the elimination
  /// schedule (root stays 0: its locals are never evaluated).
  std::vector<unsigned> S2Pos;
  GntResult R;
  bool Changed = false;
};

} // namespace

ReferenceResult gnt::solveGiveNTakeIterative(const IntervalFlowGraph &Ifg,
                                             const GntProblem &P,
                                             unsigned MaxSweeps) {
  IterativeSolver S(Ifg, P);
  return S.run(MaxSweeps);
}
