//===- analysis/DataflowEngine.h - Generic monotone framework ---*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic iterative (monotone-framework) dataflow engine over BitVector
/// lattices, deliberately independent of the elimination solver in
/// src/dataflow: the auditor uses it to re-derive the solver's facts from
/// first principles, in the differential-checking style of validating an
/// optimized solver against a classic iterative one.
///
/// A problem is a DataflowSpec: direction (forward/backward), confluence
/// (any-path union / all-paths intersection), declarative per-node
/// gen/kill transfer functions, a boundary value for nodes with no
/// incoming flow, and optional per-edge hooks — an edge filter (which
/// edges carry flow; SYNTHETIC edges are excluded by default because they
/// are an analysis device, not control flow) and an edge transfer that
/// can replace the value flowing across an edge (used to model the
/// paper's loop-header subtleties, e.g. entry production firing on
/// non-CYCLE edges only).
///
/// Two evaluation strategies are provided:
///  - Worklist: seeded with every node, propagating only where inputs
///    changed. Correct whenever each edge value depends only on the
///    source node's value (always true for pure gen/kill problems).
///  - RoundRobin: repeated full sweeps in (reverse) preorder until a
///    fixed point. Required when an edge transfer reads *other* nodes'
///    values (e.g. the at-least-one-trip loop-exit rule reads the latch).
///
/// Both report iteration/visit statistics so tests and tools can observe
/// convergence behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_ANALYSIS_DATAFLOWENGINE_H
#define GNT_ANALYSIS_DATAFLOWENGINE_H

#include "interval/IntervalFlowGraph.h"
#include "support/BitVector.h"

#include <functional>
#include <vector>

namespace gnt {

enum class FlowDirection { Forward, Backward };

/// Path quantification at merge points: Any = union (may, "some path"),
/// All = intersection (must, "all paths").
enum class Confluence { Any, All };

/// Evaluation strategy; see the file comment.
enum class SolveMode { Worklist, RoundRobin };

/// A monotone dataflow problem instance over \p UniverseSize-bit sets.
struct DataflowSpec {
  FlowDirection Direction = FlowDirection::Forward;
  Confluence Meet = Confluence::Any;
  unsigned UniverseSize = 0;

  /// Declarative per-node transfer: Out = (In - Kill[n]) | Gen[n].
  /// Either may be empty (treated as all-bottom).
  std::vector<BitVector> Gen;
  std::vector<BitVector> Kill;

  /// Value at nodes with no participating incoming flow edges (the entry
  /// node for forward problems, exits for backward ones). Empty means
  /// bottom.
  BitVector Boundary;

  /// Which edges carry flow. Defaults to every non-SYNTHETIC edge.
  std::function<bool(const IfgEdge &)> EdgeFilter;

  /// Optional replacement for the value flowing across an edge. Receives
  /// the edge and the current per-node *out* values (in flow
  /// orientation); must be monotone in them. When it reads values of
  /// nodes other than the edge source, solve with SolveMode::RoundRobin.
  std::function<BitVector(const IfgEdge &,
                          const std::vector<BitVector> &NodeOut)>
      EdgeTransfer;
};

/// Convergence statistics of one solve.
struct DataflowStats {
  unsigned Iterations = 0;      ///< Sweeps (RoundRobin) or pops (Worklist).
  unsigned NodeVisits = 0;      ///< Node transfer evaluations.
  unsigned EdgeEvaluations = 0; ///< Edge value computations.
  unsigned WorklistPeak = 0;    ///< Max worklist length (0 for RoundRobin).
};

/// Fixed-point solution. For forward problems In[n] is the value at the
/// node's entry and Out[n] at its exit; for backward problems In[n] is
/// the value at the node's *exit* and Out[n] at its *entry* (flow
/// orientation).
struct DataflowResult {
  std::vector<BitVector> In;
  std::vector<BitVector> Out;
  DataflowStats Stats;
};

/// Solves \p Spec over \p Ifg to its least (Any) or greatest (All) fixed
/// point. Interior nodes start at bottom for Any confluence and at top
/// for All confluence.
DataflowResult solveDataflow(const IntervalFlowGraph &Ifg,
                             const DataflowSpec &Spec,
                             SolveMode Mode = SolveMode::Worklist);

} // namespace gnt

#endif // GNT_ANALYSIS_DATAFLOWENGINE_H
