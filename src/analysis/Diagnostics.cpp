//===- analysis/Diagnostics.cpp - Structured analysis diagnostics -----------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Diagnostics.h"

#include "support/Json.h"
#include "support/Support.h"

using namespace gnt;

const char *gnt::severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Error:
    return "error";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Note:
    return "note";
  }
  gntUnreachable("covered switch");
}

const char *gnt::checkIdName(CheckId C) {
  switch (C) {
  case CheckId::C1:
    return "C1";
  case CheckId::C3:
    return "C3";
  case CheckId::O1:
    return "O1";
  case CheckId::O2:
    return "O2";
  case CheckId::O3:
    return "O3";
  case CheckId::O3L:
    return "O3'";
  case CheckId::Ifg:
    return "IFG";
  case CheckId::Diff:
    return "DIFF";
  case CheckId::Engine:
    return "ENGINE";
  case CheckId::Parse:
    return "PARSE";
  case CheckId::Build:
    return "BUILD";
  case CheckId::Spec:
    return "SPEC";
  }
  gntUnreachable("covered switch");
}

std::string Diagnostic::render() const {
  std::string R = severityName(Severity);
  R += ": ";
  R += checkIdName(Check);
  if (!Solution.empty()) {
    R += "/";
    R += Solution;
  }
  R += ": ";
  if (hasNode())
    R += "node " + itostr(Node) + ": ";
  R += Message;
  if (Item >= 0) {
    R += " [item ";
    R += ItemName.empty() ? itostr(Item) : ItemName;
    R += "]";
  }
  if (!FixHint.empty())
    R += " (hint: " + FixHint + ")";
  return R;
}

std::string Diagnostic::json() const {
  JsonWriter W;
  W.beginObject();
  W.key("severity").value(severityName(Severity));
  W.key("check").value(checkIdName(Check));
  if (hasNode())
    W.key("node").value(Node);
  if (Item >= 0) {
    W.key("item").value(static_cast<long long>(Item));
    if (!ItemName.empty())
      W.key("itemName").value(ItemName);
  }
  if (!Solution.empty())
    W.key("solution").value(Solution);
  W.key("message").value(Message);
  if (!FixHint.empty())
    W.key("fixHint").value(FixHint);
  W.endObject();
  return W.str();
}

unsigned DiagnosticSet::count(DiagSeverity S) const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Severity == S;
  return N;
}

unsigned DiagnosticSet::countCheck(CheckId C) const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Check == C;
  return N;
}

const Diagnostic *DiagnosticSet::first(DiagSeverity S) const {
  for (const Diagnostic &D : Diags)
    if (D.Severity == S)
      return &D;
  return nullptr;
}

bool DiagnosticSet::contains(CheckId C, unsigned Node) const {
  for (const Diagnostic &D : Diags)
    if (D.Check == C && (Node == ~0u || D.Node == Node))
      return true;
  return false;
}

void DiagnosticSet::promoteToErrors() {
  for (Diagnostic &D : Diags)
    D.Severity = DiagSeverity::Error;
}

std::string DiagnosticSet::renderText() const {
  std::string R;
  for (const Diagnostic &D : Diags) {
    R += D.render();
    R += "\n";
  }
  return R;
}

std::string DiagnosticSet::renderJson(const std::string &ExtraKey,
                                      const std::string &ExtraJson) const {
  std::string R = "{\"diagnostics\":[";
  for (size_t I = 0; I != Diags.size(); ++I) {
    if (I)
      R += ",";
    R += Diags[I].json();
  }
  R += "],\"summary\":{";
  R += "\"errors\":" + itostr(count(DiagSeverity::Error));
  R += ",\"warnings\":" + itostr(count(DiagSeverity::Warning));
  R += ",\"notes\":" + itostr(count(DiagSeverity::Note));
  R += ",\"total\":" + itostr(static_cast<long long>(Diags.size()));
  R += "}";
  if (!ExtraKey.empty())
    R += ",\"" + jsonEscape(ExtraKey) + "\":" + ExtraJson;
  R += "}";
  return R;
}
