//===- analysis/SpecLang.h - User-specified analysis specs ------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small declarative language for user-specified monotone dataflow
/// analyses, turning the generic engine into an analysis server instead
/// of a single hardcoded client. A spec is a handful of `key value`
/// lines (`#` starts a comment, blank lines are ignored):
///
/// \code
///   analysis liveness          # display name (default "user")
///   universe items             # items | exprs | defs
///   direction backward         # forward | backward
///   confluence any             # any (union) | all (intersection)
///   gen take                   # gen/kill sugar over the init sets...
///   kill give | steal
///   transfer out = (in - steal) | take   # ...or one explicit template
///   boundary empty             # empty | all
///   edges real                 # real (non-SYNTHETIC, default) | all
///   start exit                 # optional boundary anchor: entry | exit
/// \endcode
///
/// Set expressions combine the atoms `in`, `take`, `give`, `steal`,
/// `empty`, `all` with `~` (complement), `&`, `|` and `-` (difference);
/// `&` binds tighter than `|`/`-`, which associate left. `gen`/`kill`
/// sugar means Out = (In - kill) | gen and may not mention `in`.
///
/// Specs are statically checked by a linter before anything runs. Every
/// violation is a structured CheckId::Spec Diagnostic whose message
/// starts with a stable rule identifier:
///
///   unknown-universe             universe is not items/exprs/defs
///   unknown-key                  unrecognized key line
///   duplicate-key                key stated twice (or transfer + sugar)
///   bad-value                    malformed value for a known key
///   transfer-syntax              set expression does not parse, or
///                                `in` inside gen/kill sugar
///   missing-transfer             neither transfer nor gen/kill given
///   non-monotone                 transfer template maps in=1 below
///                                in=0 somewhere (exhaustively checked
///                                lane-wise, with a concrete witness)
///   all-confluence-no-boundary   All confluence without an explicit
///                                boundary line (must-problems start
///                                interior nodes at top; an unstated
///                                boundary is almost always a bug)
///   start-direction-mismatch     start entry with backward flow, or
///                                start exit with forward flow
///
/// The transfer template is lane-wise boolean over four atoms, so the
/// monotonicity lint is exact, not heuristic: all eight (take, give,
/// steal) corners are evaluated at in=0 and in=1 on a 1-bit universe.
///
/// Compilation onto the engines lives in analysis/SpecCompile.h; four
/// built-in specs (liveness, availability, very-busy, reaching) ship as
/// ordinary spec texts in builtinAnalysisSpecs().
///
//===----------------------------------------------------------------------===//

#ifndef GNT_ANALYSIS_SPECLANG_H
#define GNT_ANALYSIS_SPECLANG_H

#include "analysis/DataflowEngine.h"
#include "analysis/Diagnostics.h"
#include "support/BitVector.h"

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace gnt {

/// Which item universe a spec analyzes. The compiler (SpecCompile.h)
/// materializes the per-node TAKE/GIVE/STEAL init sets for each.
enum class SpecUniverse {
  Items, ///< Distributed-array items of the communication READ problem.
  Exprs, ///< Maximal speculable expressions (the PRE universe).
  Defs,  ///< Definition sites of items ("x(i)@n7" granularity).
};

/// "items", "exprs", "defs".
const char *specUniverseName(SpecUniverse U);

/// Atoms of the set-expression language.
enum class SpecAtom { In, Take, Give, Steal, Empty, All };

/// One node of a parsed set expression.
struct SpecSetExpr {
  enum class Kind { Atom, Complement, Union, Intersect, Difference };
  Kind K = Kind::Atom;
  SpecAtom Atom = SpecAtom::Empty;            ///< For Kind::Atom.
  std::unique_ptr<SpecSetExpr> LHS;           ///< Operand(s); Complement
  std::unique_ptr<SpecSetExpr> RHS;           ///< uses LHS only.
};

/// Evaluates \p E over a \p U-bit universe. Lane-wise: every operator
/// is a bitwise boolean, so this one evaluator serves both the
/// compile-time Gen/Kill normalization (full-width vectors) and the
/// linter's exact monotonicity check (1-bit vectors).
BitVector evalSetExpr(const SpecSetExpr &E, unsigned U, const BitVector &In,
                      const BitVector &Take, const BitVector &Give,
                      const BitVector &Steal);

/// One parsed analysis spec. Movable, not copyable (owns expression
/// trees); keep the original text around for re-parsing when a copy is
/// genuinely needed.
struct AnalysisSpec {
  std::string Name = "user";
  SpecUniverse Universe = SpecUniverse::Items;
  FlowDirection Direction = FlowDirection::Forward;
  Confluence Meet = Confluence::Any;

  /// Explicit transfer template (`transfer out = ...`), or null when
  /// the gen/kill sugar was used.
  std::unique_ptr<SpecSetExpr> Transfer;
  /// Sugar: Out = (In - KillExpr) | GenExpr. Either may be null
  /// (meaning empty). Mutually exclusive with Transfer.
  std::unique_ptr<SpecSetExpr> GenExpr;
  std::unique_ptr<SpecSetExpr> KillExpr;

  /// Boundary value for no-inflow nodes: all-ones when BoundaryAll,
  /// else empty. BoundarySet records whether the spec said so
  /// explicitly (the All-confluence lint requires it).
  bool BoundaryAll = false;
  bool BoundarySet = false;

  /// `edges all` includes SYNTHETIC edges in the flow; the default
  /// (`edges real`) excludes them, matching the engine's default.
  bool IncludeSyntheticEdges = false;

  /// Optional declared boundary anchor, checked against Direction.
  enum class StartAnchor { Default, Entry, Exit };
  StartAnchor Start = StartAnchor::Default;

  /// The exact source text the spec was parsed from.
  std::string Text;
};

/// Outcome of parsing (and optionally linting) one spec text.
struct SpecParseResult {
  /// Engaged only when the text parsed completely.
  std::optional<AnalysisSpec> Spec;
  DiagnosticSet Diags;
  bool ok() const { return Spec.has_value() && !Diags.hasErrors(); }
};

/// Parses \p Text. Syntax-level rules (unknown-universe, unknown-key,
/// duplicate-key, bad-value, transfer-syntax, missing-transfer) are
/// reported here; semantic lints run in lintAnalysisSpec().
SpecParseResult parseAnalysisSpec(const std::string &Text);

/// Semantic lint of a parsed spec: non-monotone,
/// all-confluence-no-boundary, start-direction-mismatch.
DiagnosticSet lintAnalysisSpec(const AnalysisSpec &Spec);

/// parseAnalysisSpec + lintAnalysisSpec with merged diagnostics — what
/// every production consumer calls.
SpecParseResult parseAndLintAnalysisSpec(const std::string &Text);

/// The built-in specs, in stable order: liveness, availability,
/// very-busy, reaching. Each is an ordinary spec text that parses and
/// lints clean; nothing about them is special-cased downstream.
const std::vector<std::pair<std::string, std::string>> &
builtinAnalysisSpecs();

/// Text of the built-in spec named \p Name, or nullptr.
const char *builtinAnalysisSpecText(const std::string &Name);

} // namespace gnt

#endif // GNT_ANALYSIS_SPECLANG_H
