//===- analysis/GntProblems.cpp - Declarative GNT dataflow specs ------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Within one node the event order is: entry production (RES_in, fired
/// on non-CYCLE incoming edges only — Figure 14 prints header entry
/// production above the `do` line), consumption (TAKE_init), free
/// production (GIVE_init), voiding (STEAL_init), exit production
/// (RES_out). Every spec below is a projection of that little
/// operational model onto a gen/kill transfer plus a per-edge hook for
/// the entry production.
///
//===----------------------------------------------------------------------===//

#include "analysis/GntProblems.h"

using namespace gnt;

namespace {

const GntPlacement &placement(const GntRun &Run, Urgency U) {
  return U == Urgency::Eager ? Run.Result.Eager : Run.Result.Lazy;
}

/// Availability at \p X's exit: AvailBody[X] plus free and placed exit
/// production, minus steals.
BitVector availAtExit(const GntProblem &P, const GntPlacement &Pl,
                      const std::vector<BitVector> &AvailBody, NodeId X) {
  BitVector A = AvailBody[X];
  A |= P.GiveInit[X];
  A.reset(P.StealInit[X]);
  A |= Pl.ResOut[X];
  return A;
}

} // namespace

BitVector gnt::availabilityOverEdge(const GntRun &Run, Urgency U,
                                    const IfgEdge &E,
                                    const std::vector<BitVector> &AvailBody) {
  const IntervalFlowGraph &Ifg = Run.OrientedIfg;
  const GntProblem &P = Run.OrientedProblem;
  const GntPlacement &Pl = placement(Run, U);
  if (E.Type == EdgeType::Entry) {
    // GIVEN(h) semantics (Eq. 11): a header's STEAL applies at the loop
    // boundary, not to the in-flow into the body.
    BitVector A = AvailBody[E.Src];
    A |= P.GiveInit[E.Src];
    A |= Pl.ResOut[E.Src];
    return A;
  }
  if (Ifg.isHeader(E.Src) && E.Src != Ifg.root()) {
    // Loop-exit arm: under the at-least-one-trip assumption the last
    // arrival at the header came over the CYCLE edge, where the header's
    // entry production does not re-fire.
    for (const IfgEdge &PE : Ifg.preds(E.Src))
      if (PE.Type == EdgeType::Cycle) {
        BitVector A = availAtExit(P, Pl, AvailBody, PE.Src);
        A |= P.GiveInit[E.Src];
        A.reset(P.StealInit[E.Src]);
        A |= Pl.ResOut[E.Src];
        return A;
      }
  }
  return availAtExit(P, Pl, AvailBody, E.Src);
}

DataflowSpec gnt::makeAvailabilitySpec(const GntRun &Run, Urgency U) {
  const IntervalFlowGraph &Ifg = Run.OrientedIfg;
  const GntPlacement &Pl = placement(Run, U);
  DataflowSpec Spec;
  Spec.Direction = FlowDirection::Forward;
  Spec.Meet = Confluence::All;
  Spec.UniverseSize = Run.OrientedProblem.UniverseSize;
  // No per-node gen/kill: the whole transfer lives on the edges, so the
  // fixed-point Out value at a node is the availability right after its
  // entry production.
  for (NodeId Node = 0, N = Ifg.size(); Node != N; ++Node) {
    bool HasRealPred = false;
    for (const IfgEdge &E : Ifg.preds(Node))
      HasRealPred |= E.Type != EdgeType::Synthetic;
    if (!HasRealPred) {
      // The start node's availability is exactly its own entry
      // production (callers must ensure the start is unique).
      Spec.Boundary = Pl.ResIn[Node];
      break;
    }
  }
  // Pointer captures: the spec outlives this frame (Run outlives the
  // spec per the header contract).
  const GntRun *RunP = &Run;
  const GntPlacement *PlP = &Pl;
  Spec.EdgeTransfer = [RunP, U, PlP](const IfgEdge &E,
                                     const std::vector<BitVector> &NodeOut) {
    BitVector A = availabilityOverEdge(*RunP, U, E, NodeOut);
    if (E.Type != EdgeType::Cycle)
      A |= PlP->ResIn[E.Dst];
    return A;
  };
  return Spec;
}

DataflowSpec gnt::makeAnticipabilitySpec(const GntRun &Run) {
  const GntProblem &P = Run.OrientedProblem;
  DataflowSpec Spec;
  Spec.Direction = FlowDirection::Backward;
  Spec.Meet = Confluence::Any;
  Spec.UniverseSize = P.UniverseSize;
  Spec.Gen = P.TakeInit;   // Consumption demands the item...
  Spec.Kill = P.StealInit; // ...but not across a voiding point.
  return Spec;
}

DataflowSpec gnt::makeProductionLivenessSpec(const GntRun &Run, Urgency U) {
  const GntProblem &P = Run.OrientedProblem;
  const GntPlacement &Pl = placement(Run, U);
  const unsigned N = Run.OrientedIfg.size();
  DataflowSpec Spec;
  Spec.Direction = FlowDirection::Backward;
  Spec.Meet = Confluence::Any;
  Spec.UniverseSize = P.UniverseSize;
  Spec.Gen = P.TakeInit;
  // Crossing (backwards) a steal, a free production or a placed exit
  // production kills liveness: demand below those points cannot reach a
  // production above them (voided, or already resupplied).
  Spec.Kill.resize(N);
  for (NodeId Node = 0; Node != N; ++Node) {
    BitVector K = P.StealInit[Node];
    K |= P.GiveInit[Node];
    K |= Pl.ResOut[Node];
    Spec.Kill[Node] = std::move(K);
  }
  // The destination's entry production resupplies on non-CYCLE arrivals.
  const GntPlacement *PlP = &Pl;
  Spec.EdgeTransfer = [PlP](const IfgEdge &E,
                            const std::vector<BitVector> &NodeOut) {
    BitVector V = NodeOut[E.Dst]; // Flow source of a backward problem.
    if (E.Type != EdgeType::Cycle)
      V.reset(PlP->ResIn[E.Dst]);
    return V;
  };
  return Spec;
}

DataflowSpec gnt::makeStealReachabilitySpec(const GntRun &Run, Urgency U) {
  const GntProblem &P = Run.OrientedProblem;
  const GntPlacement &Pl = placement(Run, U);
  const unsigned N = Run.OrientedIfg.size();
  DataflowSpec Spec;
  Spec.Direction = FlowDirection::Forward;
  Spec.Meet = Confluence::Any;
  Spec.UniverseSize = P.UniverseSize;
  Spec.Gen.resize(N);
  Spec.Kill.resize(N);
  for (NodeId Node = 0; Node != N; ++Node) {
    // Within the node, STEAL precedes RES_out, so a steal whose item is
    // re-produced at the exit does not escape the node.
    BitVector G = P.StealInit[Node];
    G.reset(Pl.ResOut[Node]);
    Spec.Gen[Node] = std::move(G);
    BitVector K = P.GiveInit[Node];
    K |= Pl.ResOut[Node];
    Spec.Kill[Node] = std::move(K);
  }
  // The destination's entry production un-voids on non-CYCLE arrivals.
  const GntPlacement *PlP = &Pl;
  Spec.EdgeTransfer = [PlP](const IfgEdge &E,
                            const std::vector<BitVector> &NodeOut) {
    BitVector V = NodeOut[E.Src];
    if (E.Type != EdgeType::Cycle)
      V.reset(PlP->ResIn[E.Dst]);
    return V;
  };
  return Spec;
}
