//===- analysis/DataflowEngine.cpp - Generic monotone framework -------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DataflowEngine.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace gnt;

namespace {

bool defaultEdgeFilter(const IfgEdge &E) {
  return E.Type != EdgeType::Synthetic;
}

/// The node a value flows *from* across \p E, in flow orientation.
NodeId flowSource(const IfgEdge &E, FlowDirection Dir) {
  return Dir == FlowDirection::Forward ? E.Src : E.Dst;
}

/// The node a value flows *into* across \p E, in flow orientation.
NodeId flowSink(const IfgEdge &E, FlowDirection Dir) {
  return Dir == FlowDirection::Forward ? E.Dst : E.Src;
}

class Solver {
public:
  Solver(const IntervalFlowGraph &Ifg, const DataflowSpec &Spec)
      : Ifg(Ifg), Spec(Spec), N(Ifg.size()), U(Spec.UniverseSize),
        Filter(Spec.EdgeFilter ? Spec.EdgeFilter : defaultEdgeFilter) {
    assert((Spec.Gen.empty() || Spec.Gen.size() == N) && "Gen size mismatch");
    assert((Spec.Kill.empty() || Spec.Kill.size() == N) &&
           "Kill size mismatch");

    // Per-node incoming flow edges (the meet inputs).
    InEdges.resize(N);
    FlowSuccs.resize(N);
    for (NodeId Node = 0; Node != N; ++Node)
      for (const IfgEdge &E : Ifg.succs(Node)) {
        if (!Filter(E))
          continue;
        InEdges[flowSink(E, Spec.Direction)].push_back(E);
        FlowSuccs[flowSource(E, Spec.Direction)].push_back(
            flowSink(E, Spec.Direction));
      }

    const bool Top = Spec.Meet == Confluence::All;
    R.In.assign(N, BitVector(U, Top));
    R.Out.assign(N, BitVector(U, Top));
    Boundary = Spec.Boundary.size() == U ? Spec.Boundary : BitVector(U);
    // Boundary nodes have no meet inputs; pin them immediately so both
    // strategies see the same starting point.
    for (NodeId Node = 0; Node != N; ++Node)
      if (InEdges[Node].empty()) {
        R.In[Node] = Boundary;
        R.Out[Node] = transfer(Node, R.In[Node]);
      }
  }

  DataflowResult solve(SolveMode Mode) {
    if (Mode == SolveMode::Worklist)
      runWorklist();
    else
      runRoundRobin();
    return std::move(R);
  }

private:
  BitVector transfer(NodeId Node, const BitVector &In) {
    ++R.Stats.NodeVisits;
    BitVector Out = In;
    if (!Spec.Kill.empty())
      Out.reset(Spec.Kill[Node]);
    if (!Spec.Gen.empty())
      Out |= Spec.Gen[Node];
    return Out;
  }

  BitVector edgeValue(const IfgEdge &E) {
    ++R.Stats.EdgeEvaluations;
    if (Spec.EdgeTransfer)
      return Spec.EdgeTransfer(E, R.Out);
    return R.Out[flowSource(E, Spec.Direction)];
  }

  /// Recomputes node \p Node; returns true if its Out value changed.
  bool update(NodeId Node) {
    if (InEdges[Node].empty())
      return false; // Pinned to the boundary value in the constructor.
    BitVector In(U, Spec.Meet == Confluence::All);
    bool First = true;
    for (const IfgEdge &E : InEdges[Node]) {
      BitVector V = edgeValue(E);
      if (First) {
        In = std::move(V);
        First = false;
      } else if (Spec.Meet == Confluence::All) {
        In &= V;
      } else {
        In |= V;
      }
    }
    BitVector Out = transfer(Node, In);
    bool Changed = Out != R.Out[Node];
    R.In[Node] = std::move(In);
    R.Out[Node] = std::move(Out);
    return Changed;
  }

  void runWorklist() {
    std::deque<NodeId> Work;
    std::vector<char> InWork(N, 1);
    // Seed in flow order so the first pass already propagates far.
    const std::vector<NodeId> &Pre = Ifg.preorder();
    if (Spec.Direction == FlowDirection::Forward)
      Work.assign(Pre.begin(), Pre.end());
    else
      Work.assign(Pre.rbegin(), Pre.rend());
    R.Stats.WorklistPeak = static_cast<unsigned>(Work.size());
    while (!Work.empty()) {
      NodeId Node = Work.front();
      Work.pop_front();
      InWork[Node] = 0;
      ++R.Stats.Iterations;
      if (!update(Node))
        continue;
      for (NodeId S : FlowSuccs[Node])
        if (!InWork[S]) {
          InWork[S] = 1;
          Work.push_back(S);
        }
      R.Stats.WorklistPeak = std::max(
          R.Stats.WorklistPeak, static_cast<unsigned>(Work.size()));
    }
  }

  void runRoundRobin() {
    const std::vector<NodeId> &Pre = Ifg.preorder();
    bool Changed = true;
    while (Changed) {
      Changed = false;
      ++R.Stats.Iterations;
      if (Spec.Direction == FlowDirection::Forward) {
        for (NodeId Node : Pre)
          Changed |= update(Node);
      } else {
        for (auto It = Pre.rbegin(), E = Pre.rend(); It != E; ++It)
          Changed |= update(*It);
      }
    }
  }

  const IntervalFlowGraph &Ifg;
  const DataflowSpec &Spec;
  const unsigned N, U;
  std::function<bool(const IfgEdge &)> Filter;
  std::vector<std::vector<IfgEdge>> InEdges;
  std::vector<std::vector<NodeId>> FlowSuccs;
  BitVector Boundary;
  DataflowResult R;
};

} // namespace

DataflowResult gnt::solveDataflow(const IntervalFlowGraph &Ifg,
                                  const DataflowSpec &Spec, SolveMode Mode) {
  Solver S(Ifg, Spec);
  return S.solve(Mode);
}
