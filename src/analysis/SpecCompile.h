//===- analysis/SpecCompile.h - Compile specs onto the engines --*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a linted AnalysisSpec (analysis/SpecLang.h) onto the two
/// production solvers and runs them against each other.
///
/// Compilation first materializes the spec's universe: per-node TAKE /
/// GIVE / STEAL init sets plus display names, built from the same
/// analyses the placement clients use (`items` = the communication READ
/// problem, `exprs` = the PRE expression problem, `defs` = definition
/// sites from reference analysis). It then *normalizes* the transfer
/// template to gen/kill form by evaluating it at the lattice extremes:
///
///   Gen[n]  = f_n(empty)            (produced from nothing)
///   Kill[n] = ~f_n(all)             (dropped even when everything
///                                    arrives)
///
/// For a template that is lane-wise boolean and monotone in `in` — which
/// the linter guarantees — f_n(in) = (in - Kill[n]) | Gen[n] holds
/// exactly: per lane, a monotone boolean function of one variable is one
/// of {0, 1, in}, and the two extreme evaluations distinguish the three.
/// Normalization is what lets one compiled form drive both backends and
/// keeps every user analysis word-parallel.
///
/// Every run is differential by construction: the iterative worklist
/// engine (analysis/DataflowEngine.h) solves the problem as the oracle,
/// the flat DataflowMatrix arena sweeps solve it again — optionally
/// sharded across word-aligned universe windows and optionally over the
/// ItemClasses-compressed universe — and runAnalysis() demands per-node
/// byte identity of both fixed points, reporting any divergence as
/// CheckId::Diff diagnostics. The arena values are the ones shipped.
///
/// Compressed solves append one *phantom class* when items were elided:
/// elided items (all-zero gen/kill/boundary columns) are not constant
/// under All confluence — they stay top at nodes unreachable from the
/// boundary — so a single extra lane with empty gen/kill/boundary
/// tracks exactly where top survives, and expansion ORs the elided
/// items back in wherever the phantom lane is set.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_ANALYSIS_SPECCOMPILE_H
#define GNT_ANALYSIS_SPECCOMPILE_H

#include "analysis/DataflowEngine.h"
#include "analysis/Diagnostics.h"
#include "analysis/SpecLang.h"
#include "ir/Ast.h"
#include "support/DataflowMatrix.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gnt {

class Cfg;

/// A materialized spec universe: per-node init sets and item names.
struct SpecUniverseData {
  unsigned Size = 0;
  std::vector<std::string> Names;      ///< Display name per item.
  std::vector<BitVector> Take;         ///< Per node, sized to Size.
  std::vector<BitVector> Give;
  std::vector<BitVector> Steal;
};

/// Builds the init sets of \p U for \p P. \p G and \p Ifg must be the
/// normalized CFG and its interval flow graph (node ids shared).
SpecUniverseData buildSpecUniverse(SpecUniverse U, const Program &P,
                                   const Cfg &G,
                                   const IntervalFlowGraph &Ifg);

/// One spec compiled to normalized gen/kill form. Plain data — copyable,
/// serializable-by-hand — so backends and tests can share instances.
struct CompiledAnalysis {
  std::string Name;
  SpecUniverse Universe = SpecUniverse::Items;
  FlowDirection Direction = FlowDirection::Forward;
  Confluence Meet = Confluence::Any;
  bool IncludeSyntheticEdges = false;

  unsigned NumNodes = 0;
  unsigned UniverseSize = 0;
  std::vector<std::string> ItemNames;

  /// Normalized transfer: Out = (In - Kill[n]) | Gen[n]. Always sized
  /// NumNodes x UniverseSize.
  std::vector<BitVector> Gen;
  std::vector<BitVector> Kill;

  /// Value at no-inflow nodes.
  BitVector Boundary;
};

/// Compiles \p Spec (which must have linted clean) against \p Data.
/// \p NumNodes is the node count of the graph the analysis will run on.
CompiledAnalysis compileAnalysisSpec(const AnalysisSpec &Spec,
                                     const SpecUniverseData &Data,
                                     unsigned NumNodes);

/// Solves \p C on the iterative worklist engine — the differential
/// oracle. Always uncompressed, always unsharded.
DataflowResult runAnalysisIterative(const CompiledAnalysis &C,
                                    const IntervalFlowGraph &Ifg);

/// Outcome of one arena solve.
struct ArenaSpecResult {
  DataflowMatrix In;  ///< Per-node meet input (flow orientation).
  DataflowMatrix Out; ///< Per-node transfer output.
  unsigned Sweeps = 0;             ///< Max sweeps over any shard.
  unsigned ShardsUsed = 0;         ///< Actual shard count after clamping.
  bool CompressionApplied = false; ///< Solved over item classes.
  unsigned CompressedClasses = 0;  ///< Classes when compression applied.
  unsigned ElidedItems = 0;        ///< Trivially-bottom items elided.
};

/// Solves \p C with flat round-robin word sweeps over a DataflowMatrix
/// arena. \p Shards > 1 splits the universe into that many word-aligned
/// windows swept independently (lanes are independent in a pure
/// gen/kill problem); \p Compress solves over the ItemClasses partition
/// of (Gen, Kill, Boundary) columns when profitable, expanding the
/// result back to the full universe. Both are strategy knobs only: the
/// fixed point is byte-identical in every configuration.
ArenaSpecResult runAnalysisArena(const CompiledAnalysis &C,
                                 const IntervalFlowGraph &Ifg,
                                 unsigned Shards = 0, bool Compress = false);

/// Statistics of one differential run.
struct AnalysisRunStats {
  DataflowStats Iterative;         ///< Oracle convergence statistics.
  unsigned ArenaSweeps = 0;
  unsigned ShardsUsed = 0;
  bool CompressionApplied = false;
  unsigned CompressedClasses = 0;
  unsigned ElidedItems = 0;
};

/// A completed (or failed) user analysis: the arena solution, the
/// differential verdict, and enough metadata to render it.
struct AnalysisRun {
  std::string Name = "user";
  SpecUniverse Universe = SpecUniverse::Items;
  unsigned UniverseSize = 0;
  std::vector<std::string> ItemNames;

  /// Per-node fixed point (the arena backend's values; byte-identical
  /// to the oracle's whenever ok()). Empty when the spec never ran.
  std::vector<BitVector> In;
  std::vector<BitVector> Out;

  AnalysisRunStats Stats;

  /// Spec/lint failures, or Diff errors from the backend differential.
  DiagnosticSet Diags;

  bool ok() const { return !Diags.hasErrors(); }

  /// FNV-1a over every In/Out row — the cheap cross-configuration
  /// invariance witness used by the service payload and the fuzzer.
  uint64_t solutionHash() const;

  /// Human-readable per-node rendering of the solution.
  std::string renderText() const;

  /// JSON object: name, universe, ok, hash, per-node sets, and (when
  /// \p IncludeStats) the convergence statistics. Deterministic.
  std::string renderJson(bool IncludeStats) const;
};

/// Runs \p C on both backends, checks per-node byte identity, and
/// returns the arena solution with the differential verdict.
AnalysisRun runAnalysis(const CompiledAnalysis &C,
                        const IntervalFlowGraph &Ifg, unsigned Shards = 0,
                        bool Compress = false);

/// End-to-end convenience: \p NameOrText is a builtin name (single
/// token: no newline, no space) or a full spec text. Parses, lints,
/// builds the universe, compiles, and runs differentially; failures of
/// any stage come back as an AnalysisRun holding only diagnostics.
AnalysisRun runAnalysisSpec(const std::string &NameOrText, const Program &P,
                            const Cfg &G, const IntervalFlowGraph &Ifg,
                            unsigned Shards = 0, bool Compress = false);

} // namespace gnt

#endif // GNT_ANALYSIS_SPECCOMPILE_H
