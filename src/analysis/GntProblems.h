//===- analysis/GntProblems.h - Declarative GNT dataflow specs --*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarative monotone-framework problem definitions over a GIVE-N-TAKE
/// run, expressed as gen/kill transfer functions (plus per-edge hooks for
/// the paper's loop-header placement semantics). The auditor solves these
/// with the generic DataflowEngine to independently re-derive facts the
/// elimination solver only establishes implicitly:
///
///  - availability: items guaranteed produced on all incoming paths with
///    no intervening steal, under the paper's at-least-one-trip loop
///    optimism (drives the C3 and O1 re-checks);
///  - anticipability: items consumed on some path onward before being
///    stolen (drives speculation accounting);
///  - production liveness: placed productions that some path actually
///    consumes (drives the O2 useless-producer audit);
///  - steal reachability: items arriving voided by a steal with no
///    re-production since (drives re-production statistics).
///
/// All specs are formulated on the run's *oriented* graph and problem
/// (AFTER problems run reversed); the returned closures keep references
/// into \p Run, which must outlive the spec.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_ANALYSIS_GNTPROBLEMS_H
#define GNT_ANALYSIS_GNTPROBLEMS_H

#include "analysis/DataflowEngine.h"
#include "dataflow/GiveNTake.h"

namespace gnt {

/// Must-availability of solution \p U's productions, forward over real
/// edges. The fixed-point value at node n is the availability right
/// after n's entry production (applied on non-CYCLE incoming edges only,
/// matching Figure 14's placement of header productions above the loop).
/// Loop-exit edges take the latch-side value (at-least-one-trip
/// optimism). The edge transfer reads latch values of other nodes, so
/// this spec requires SolveMode::RoundRobin.
DataflowSpec makeAvailabilitySpec(const GntRun &Run, Urgency U);

/// May-anticipability of consumption, backward over real edges: an item
/// is anticipated at a point if some path onward consumes it before it
/// is stolen. Pure gen/kill (TAKE_init generates, STEAL_init kills);
/// worklist-safe.
DataflowSpec makeAnticipabilitySpec(const GntRun &Run);

/// May-liveness of solution \p U's productions, backward over real
/// edges: an item is live at a point if some path onward consumes it
/// before a steal, a free production (GIVE_init) or another placed
/// production resupplies it. The value at node n is the liveness just
/// below n's entry-production point. Worklist-safe.
DataflowSpec makeProductionLivenessSpec(const GntRun &Run, Urgency U);

/// May-steal-reachability for solution \p U, forward over real edges: an
/// item is "voided" at a point if some path from the start steals it
/// after the last (re-)production. The value at node n is the voided set
/// at n's exit. Worklist-safe.
DataflowSpec makeStealReachabilitySpec(const GntRun &Run, Urgency U);

/// The availability of \p U's productions flowing across \p E, *before*
/// the destination's entry production, given the per-node availability
/// fixpoint \p AvailBody (the Out values of makeAvailabilitySpec).
/// Implements the verifier's edge semantics: ENTRY edges carry GIVEN(h)
/// flow (no steal subtraction at the loop boundary), non-ENTRY edges
/// leaving a header use the latch-side value (at-least-one-trip
/// optimism), everything else is plain node-exit availability.
BitVector availabilityOverEdge(const GntRun &Run, Urgency U,
                               const IfgEdge &E,
                               const std::vector<BitVector> &AvailBody);

} // namespace gnt

#endif // GNT_ANALYSIS_GNTPROBLEMS_H
