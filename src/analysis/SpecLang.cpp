//===- analysis/SpecLang.cpp - User-specified analysis specs ----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/SpecLang.h"

#include "support/Support.h"

#include <cctype>

using namespace gnt;

const char *gnt::specUniverseName(SpecUniverse U) {
  switch (U) {
  case SpecUniverse::Items:
    return "items";
  case SpecUniverse::Exprs:
    return "exprs";
  case SpecUniverse::Defs:
    return "defs";
  }
  gntUnreachable("covered switch");
}

BitVector gnt::evalSetExpr(const SpecSetExpr &E, unsigned U,
                           const BitVector &In, const BitVector &Take,
                           const BitVector &Give, const BitVector &Steal) {
  switch (E.K) {
  case SpecSetExpr::Kind::Atom:
    switch (E.Atom) {
    case SpecAtom::In:
      return In;
    case SpecAtom::Take:
      return Take;
    case SpecAtom::Give:
      return Give;
    case SpecAtom::Steal:
      return Steal;
    case SpecAtom::Empty:
      return BitVector(U);
    case SpecAtom::All:
      return BitVector(U, true);
    }
    gntUnreachable("covered switch");
  case SpecSetExpr::Kind::Complement: {
    BitVector V = evalSetExpr(*E.LHS, U, In, Take, Give, Steal);
    V.flip();
    return V;
  }
  case SpecSetExpr::Kind::Union: {
    BitVector V = evalSetExpr(*E.LHS, U, In, Take, Give, Steal);
    V |= evalSetExpr(*E.RHS, U, In, Take, Give, Steal);
    return V;
  }
  case SpecSetExpr::Kind::Intersect: {
    BitVector V = evalSetExpr(*E.LHS, U, In, Take, Give, Steal);
    V &= evalSetExpr(*E.RHS, U, In, Take, Give, Steal);
    return V;
  }
  case SpecSetExpr::Kind::Difference: {
    BitVector V = evalSetExpr(*E.LHS, U, In, Take, Give, Steal);
    V.reset(evalSetExpr(*E.RHS, U, In, Take, Give, Steal));
    return V;
  }
  }
  gntUnreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Set-expression parsing
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent parser over one set expression. Grammar:
///   union     := intersect (('|' | '-') intersect)*   (left assoc)
///   intersect := unary ('&' unary)*
///   unary     := '~' unary | '(' union ')' | atom
struct ExprParser {
  const std::string &S;
  size_t Pos = 0;
  std::string Error;

  explicit ExprParser(const std::string &S) : S(S) {}

  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  char peek() {
    skipWs();
    return Pos < S.size() ? S[Pos] : '\0';
  }

  std::unique_ptr<SpecSetExpr> fail(std::string Msg) {
    if (Error.empty())
      Error = std::move(Msg);
    return nullptr;
  }

  std::unique_ptr<SpecSetExpr> atom(SpecAtom A) {
    auto E = std::make_unique<SpecSetExpr>();
    E->K = SpecSetExpr::Kind::Atom;
    E->Atom = A;
    return E;
  }

  std::unique_ptr<SpecSetExpr> binary(SpecSetExpr::Kind K,
                                      std::unique_ptr<SpecSetExpr> L,
                                      std::unique_ptr<SpecSetExpr> R) {
    auto E = std::make_unique<SpecSetExpr>();
    E->K = K;
    E->LHS = std::move(L);
    E->RHS = std::move(R);
    return E;
  }

  std::unique_ptr<SpecSetExpr> parseUnary() {
    if (eat('~')) {
      auto Sub = parseUnary();
      if (!Sub)
        return nullptr;
      auto E = std::make_unique<SpecSetExpr>();
      E->K = SpecSetExpr::Kind::Complement;
      E->LHS = std::move(Sub);
      return E;
    }
    if (eat('(')) {
      auto Sub = parseUnion();
      if (!Sub)
        return nullptr;
      if (!eat(')'))
        return fail("missing `)`");
      return Sub;
    }
    skipWs();
    size_t Start = Pos;
    while (Pos < S.size() &&
           std::isalpha(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    std::string Word = S.substr(Start, Pos - Start);
    if (Word == "in")
      return atom(SpecAtom::In);
    if (Word == "take")
      return atom(SpecAtom::Take);
    if (Word == "give")
      return atom(SpecAtom::Give);
    if (Word == "steal")
      return atom(SpecAtom::Steal);
    if (Word == "empty")
      return atom(SpecAtom::Empty);
    if (Word == "all")
      return atom(SpecAtom::All);
    if (Word.empty())
      return fail(Pos < S.size()
                      ? "unexpected `" + std::string(1, S[Pos]) + "`"
                      : "expression ends early");
    return fail("unknown atom `" + Word +
                "` (expected in/take/give/steal/empty/all)");
  }

  std::unique_ptr<SpecSetExpr> parseIntersect() {
    auto L = parseUnary();
    while (L && peek() == '&') {
      eat('&');
      auto R = parseUnary();
      if (!R)
        return nullptr;
      L = binary(SpecSetExpr::Kind::Intersect, std::move(L), std::move(R));
    }
    return L;
  }

  std::unique_ptr<SpecSetExpr> parseUnion() {
    auto L = parseIntersect();
    while (L) {
      char C = peek();
      if (C != '|' && C != '-')
        break;
      eat(C);
      auto R = parseIntersect();
      if (!R)
        return nullptr;
      L = binary(C == '|' ? SpecSetExpr::Kind::Union
                          : SpecSetExpr::Kind::Difference,
                 std::move(L), std::move(R));
    }
    return L;
  }

  /// Parses the whole string; trailing garbage is an error.
  std::unique_ptr<SpecSetExpr> parseAll() {
    auto E = parseUnion();
    if (!E)
      return nullptr;
    skipWs();
    if (Pos != S.size())
      return fail("trailing `" + S.substr(Pos) + "`");
    return E;
  }
};

/// True when \p E mentions the `in` atom (illegal in gen/kill sugar).
bool mentionsIn(const SpecSetExpr &E) {
  if (E.K == SpecSetExpr::Kind::Atom)
    return E.Atom == SpecAtom::In;
  if (E.LHS && mentionsIn(*E.LHS))
    return true;
  return E.RHS && mentionsIn(*E.RHS);
}

Diagnostic specError(std::string Message, std::string FixHint = {}) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Check = CheckId::Spec;
  D.Message = std::move(Message);
  D.FixHint = std::move(FixHint);
  return D;
}

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r");
  if (B == std::string::npos)
    return std::string();
  size_t E = S.find_last_not_of(" \t\r");
  return S.substr(B, E - B + 1);
}

} // namespace

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

SpecParseResult gnt::parseAnalysisSpec(const std::string &Text) {
  SpecParseResult R;
  AnalysisSpec Spec;
  Spec.Text = Text;

  std::vector<std::string> Seen;
  auto SeenBefore = [&](const std::string &Key) {
    for (const std::string &K : Seen)
      if (K == Key)
        return true;
    Seen.push_back(Key);
    return false;
  };

  size_t LineNo = 0, Pos = 0;
  bool Bad = false;
  auto Err = [&](std::string Message, std::string FixHint = {}) {
    R.Diags.add(specError("line " + itostr(static_cast<long long>(LineNo)) +
                              ": " + std::move(Message),
                          std::move(FixHint)));
    Bad = true;
  };

  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    Line = trim(Line);
    if (Line.empty()) {
      if (End == Text.size())
        break;
      continue;
    }

    size_t Sp = Line.find_first_of(" \t");
    std::string Key = Sp == std::string::npos ? Line : Line.substr(0, Sp);
    std::string Value =
        Sp == std::string::npos ? std::string() : trim(Line.substr(Sp + 1));

    auto ParseExpr = [&](const char *What) -> std::unique_ptr<SpecSetExpr> {
      ExprParser P(Value);
      auto E = P.parseAll();
      if (!E)
        Err("transfer-syntax: bad " + std::string(What) + " expression: " +
                P.Error,
            "atoms are in/take/give/steal/empty/all; operators ~ & | -");
      return E;
    };

    if (Key == "analysis") {
      if (SeenBefore(Key)) {
        Err("duplicate-key: `analysis` stated twice");
        continue;
      }
      bool Ok = !Value.empty();
      for (char C : Value)
        Ok &= std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
              C == '-';
      if (!Ok) {
        Err("bad-value: analysis name `" + Value +
            "` (use letters, digits, `_`, `-`)");
        continue;
      }
      Spec.Name = Value;
    } else if (Key == "universe") {
      if (SeenBefore(Key)) {
        Err("duplicate-key: `universe` stated twice");
        continue;
      }
      if (Value == "items")
        Spec.Universe = SpecUniverse::Items;
      else if (Value == "exprs")
        Spec.Universe = SpecUniverse::Exprs;
      else if (Value == "defs")
        Spec.Universe = SpecUniverse::Defs;
      else
        Err("unknown-universe: `" + Value + "`",
            "universe must be items, exprs or defs");
    } else if (Key == "direction") {
      if (SeenBefore(Key)) {
        Err("duplicate-key: `direction` stated twice");
        continue;
      }
      if (Value == "forward")
        Spec.Direction = FlowDirection::Forward;
      else if (Value == "backward")
        Spec.Direction = FlowDirection::Backward;
      else
        Err("bad-value: direction `" + Value + "` (forward or backward)");
    } else if (Key == "confluence") {
      if (SeenBefore(Key)) {
        Err("duplicate-key: `confluence` stated twice");
        continue;
      }
      if (Value == "any")
        Spec.Meet = Confluence::Any;
      else if (Value == "all")
        Spec.Meet = Confluence::All;
      else
        Err("bad-value: confluence `" + Value + "` (any or all)");
    } else if (Key == "boundary") {
      if (SeenBefore(Key)) {
        Err("duplicate-key: `boundary` stated twice");
        continue;
      }
      if (Value == "empty")
        Spec.BoundaryAll = false;
      else if (Value == "all")
        Spec.BoundaryAll = true;
      else {
        Err("bad-value: boundary `" + Value + "` (empty or all)");
        continue;
      }
      Spec.BoundarySet = true;
    } else if (Key == "edges") {
      if (SeenBefore(Key)) {
        Err("duplicate-key: `edges` stated twice");
        continue;
      }
      if (Value == "real")
        Spec.IncludeSyntheticEdges = false;
      else if (Value == "all")
        Spec.IncludeSyntheticEdges = true;
      else
        Err("bad-value: edges `" + Value + "` (real or all)");
    } else if (Key == "start") {
      if (SeenBefore(Key)) {
        Err("duplicate-key: `start` stated twice");
        continue;
      }
      if (Value == "entry")
        Spec.Start = AnalysisSpec::StartAnchor::Entry;
      else if (Value == "exit")
        Spec.Start = AnalysisSpec::StartAnchor::Exit;
      else
        Err("bad-value: start `" + Value + "` (entry or exit)");
    } else if (Key == "gen" || Key == "kill") {
      if (SeenBefore(Key)) {
        Err("duplicate-key: `" + Key + "` stated twice");
        continue;
      }
      if (Spec.Transfer) {
        Err("duplicate-key: `" + Key +
            "` conflicts with an explicit `transfer` line");
        continue;
      }
      auto E = ParseExpr(Key.c_str());
      if (!E)
        continue;
      if (mentionsIn(*E)) {
        Err("transfer-syntax: `in` is not allowed in " + Key + " sugar",
            "use `transfer out = ...` for templates that read `in`");
        continue;
      }
      (Key == "gen" ? Spec.GenExpr : Spec.KillExpr) = std::move(E);
    } else if (Key == "transfer") {
      if (SeenBefore(Key)) {
        Err("duplicate-key: `transfer` stated twice");
        continue;
      }
      if (Spec.GenExpr || Spec.KillExpr) {
        Err("duplicate-key: `transfer` conflicts with gen/kill sugar");
        continue;
      }
      // Expect `out = EXPR`.
      size_t Eq = Value.find('=');
      std::string Head =
          Eq == std::string::npos ? Value : trim(Value.substr(0, Eq));
      if (Eq == std::string::npos || Head != "out") {
        Err("transfer-syntax: expected `transfer out = <set expression>`");
        continue;
      }
      Value = trim(Value.substr(Eq + 1));
      auto E = ParseExpr("transfer");
      if (E)
        Spec.Transfer = std::move(E);
    } else {
      Err("unknown-key: `" + Key + "`",
          "keys are analysis, universe, direction, confluence, gen, kill, "
          "transfer, boundary, edges, start");
    }
    if (End == Text.size())
      break;
  }

  if (!Spec.Transfer && !Spec.GenExpr && !Spec.KillExpr) {
    R.Diags.add(specError(
        "missing-transfer: spec has no transfer function",
        "add `gen <expr>`/`kill <expr>` or `transfer out = <expr>`"));
    Bad = true;
  }

  if (!Bad)
    R.Spec = std::move(Spec);
  return R;
}

//===----------------------------------------------------------------------===//
// Linting
//===----------------------------------------------------------------------===//

namespace {

/// Evaluates the spec's effective transfer on a 1-bit universe.
bool eval1(const AnalysisSpec &Spec, bool In, bool Take, bool Give,
           bool Steal) {
  BitVector VIn(1, In), VTake(1, Take), VGive(1, Give), VSteal(1, Steal);
  if (Spec.Transfer)
    return evalSetExpr(*Spec.Transfer, 1, VIn, VTake, VGive, VSteal).test(0);
  // Sugar: Out = (In - Kill) | Gen, with absent sides empty.
  bool Kill = Spec.KillExpr &&
              evalSetExpr(*Spec.KillExpr, 1, VIn, VTake, VGive, VSteal)
                  .test(0);
  bool Gen = Spec.GenExpr &&
             evalSetExpr(*Spec.GenExpr, 1, VIn, VTake, VGive, VSteal)
                 .test(0);
  return (In && !Kill) || Gen;
}

} // namespace

DiagnosticSet gnt::lintAnalysisSpec(const AnalysisSpec &Spec) {
  DiagnosticSet Diags;

  // The transfer template is lane-wise over four boolean atoms, so
  // monotonicity is decidable by exhaustion: for each of the eight
  // (take, give, steal) corners, raising `in` must never lower the
  // output. Gen/kill sugar cannot mention `in` and is monotone by
  // construction, but is checked anyway — it is eight cheap
  // evaluations, and the uniformity keeps this lint oblivious to how
  // the transfer was written.
  for (unsigned Corner = 0; Corner != 8; ++Corner) {
    bool Take = Corner & 1, Give = Corner & 2, Steal = Corner & 4;
    bool AtBottom = eval1(Spec, false, Take, Give, Steal);
    bool AtTop = eval1(Spec, true, Take, Give, Steal);
    if (AtBottom && !AtTop) {
      Diags.add(specError(
          std::string("non-monotone: transfer maps in=0 to 1 but in=1 to 0 "
                      "at take=") +
              (Take ? "1" : "0") + " give=" + (Give ? "1" : "0") +
              " steal=" + (Steal ? "1" : "0"),
          "a monotone template never drops a fact because more arrived; "
          "remove the `~in`-style negation"));
      break;
    }
  }

  if (Spec.Meet == Confluence::All && !Spec.BoundarySet)
    Diags.add(specError(
        "all-confluence-no-boundary: all-paths confluence without an "
        "explicit boundary",
        "state `boundary empty` or `boundary all`: interior nodes start "
        "at top, so the boundary decides everything reachable from it"));

  if (Spec.Start == AnalysisSpec::StartAnchor::Entry &&
      Spec.Direction == FlowDirection::Backward)
    Diags.add(specError(
        "start-direction-mismatch: `start entry` with backward flow",
        "backward problems anchor their boundary at the exit"));
  if (Spec.Start == AnalysisSpec::StartAnchor::Exit &&
      Spec.Direction == FlowDirection::Forward)
    Diags.add(specError(
        "start-direction-mismatch: `start exit` with forward flow",
        "forward problems anchor their boundary at the entry"));

  return Diags;
}

SpecParseResult gnt::parseAndLintAnalysisSpec(const std::string &Text) {
  SpecParseResult R = parseAnalysisSpec(Text);
  if (R.Spec)
    R.Diags.append(lintAnalysisSpec(*R.Spec));
  return R;
}

//===----------------------------------------------------------------------===//
// Built-in specs
//===----------------------------------------------------------------------===//

const std::vector<std::pair<std::string, std::string>> &
gnt::builtinAnalysisSpecs() {
  static const std::vector<std::pair<std::string, std::string>> Builtins = {
      {"liveness",
       "# An item is live where it is consumed downstream before being\n"
       "# produced for free or invalidated.\n"
       "analysis liveness\n"
       "universe items\n"
       "direction backward\n"
       "confluence any\n"
       "gen take\n"
       "kill give | steal\n"
       "boundary empty\n"
       "start exit\n"},
      {"availability",
       "# An item is available where it was produced for free on every\n"
       "# path and not invalidated since.\n"
       "analysis availability\n"
       "universe items\n"
       "direction forward\n"
       "confluence all\n"
       "gen give\n"
       "kill steal\n"
       "boundary empty\n"
       "start entry\n"},
      {"very-busy",
       "# An expression is very busy where every path evaluates it\n"
       "# before any operand changes.\n"
       "analysis very-busy\n"
       "universe exprs\n"
       "direction backward\n"
       "confluence all\n"
       "gen take\n"
       "kill steal\n"
       "boundary empty\n"
       "start exit\n"},
      {"reaching",
       "# A definition site reaches the nodes downstream of it until the\n"
       "# item is redefined elsewhere.\n"
       "analysis reaching\n"
       "universe defs\n"
       "direction forward\n"
       "confluence any\n"
       "gen give\n"
       "kill steal\n"
       "boundary empty\n"
       "start entry\n"},
  };
  return Builtins;
}

const char *gnt::builtinAnalysisSpecText(const std::string &Name) {
  for (const auto &[BName, Text] : builtinAnalysisSpecs())
    if (BName == Name)
      return Text.c_str();
  return nullptr;
}
