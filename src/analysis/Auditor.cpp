//===- analysis/Auditor.cpp - GIVE-N-TAKE static auditor --------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Check catalogue and the argument for each:
///
///  C1 (balance) is solved on a paired universe of 2U bits — bit i is
///  "item i has an unmatched eager production (send) on some path", bit
///  U+i is "item i is clear on some path". Eager productions are send
///  events (gen pending / kill clear), lazy productions are receive
///  events (gen clear / kill pending); the two per-point events compose
///  into one gen/kill pair per node and per edge, so the generic engine
///  solves the whole state machine as a forward may-problem. A second
///  send while pending, a receive while clear, or pending state at a
///  terminal node is a violation.
///
///  C3/O1 re-derive must-availability with the engine's round-robin mode
///  (the at-least-one-trip loop-exit rule reads the latch, a non-local
///  edge dependency).
///
///  O2 flags placed productions that no path consumes, from an
///  engine-solved backward may-liveness of productions. Placements
///  forced by JUMP-edge projection (SYNTHETIC conservatism) can be
///  consumed on no real path, so on graphs with jumps the finding is
///  downgraded to a note.
///
///  O3/O3' check the exact placement laws Eqs. 12/14/15 imply: eager
///  entry production only where consumption is anticipated (RES_in
///  within TAKEN_in), lazy entry production only where demanded locally
///  (RES_in within TAKE), no production of an item already flowing
///  (RES_in/GIVEN_in and RES_out/GIVEN_out disjoint), and exit
///  production only on single-successor nodes (Section 4.5). On
///  jump-free graphs an engine-solved anticipability adds a speculation
///  note for eager production beyond any real-path demand.
///
///  DIFF re-solves the whole instance with the iterative reference
///  solver and compares every variable at every node, and checks the
///  LAZY-within-EAGER containment laws the two solutions must satisfy.
///
//===----------------------------------------------------------------------===//

#include "analysis/Auditor.h"

#include "analysis/GntProblems.h"
#include "analysis/ReferenceSolver.h"
#include "support/Support.h"

#include <algorithm>
#include <array>
#include <set>
#include <utility>

using namespace gnt;

namespace {

constexpr unsigned NumCheckIds = 9;

std::string itemName(const std::vector<std::string> &Names, unsigned I) {
  if (I < Names.size())
    return Names[I];
  return "item" + itostr(I);
}

bool isRealEdge(EdgeType T) { return T != EdgeType::Synthetic; }

/// Diagnostic sink with a per-check cap (AuditOptions::MaxDiagsPerCheck).
class Reporter {
public:
  Reporter(AuditResult &Out, const AuditOptions &Opts,
           const std::vector<std::string> &Names)
      : Out(Out), Opts(Opts), Names(Names) {}

  void report(DiagSeverity Sev, CheckId Check, const char *Solution,
              NodeId Node, int Item, std::string Msg,
              std::string Hint = std::string()) {
    unsigned Idx = static_cast<unsigned>(Check);
    if (Opts.MaxDiagsPerCheck && Emitted[Idx] >= Opts.MaxDiagsPerCheck) {
      ++Suppressed[Idx];
      return;
    }
    ++Emitted[Idx];
    Diagnostic D;
    D.Severity = Sev;
    D.Check = Check;
    D.Solution = Solution ? Solution : "";
    D.Node = Node;
    D.Item = Item;
    if (Item >= 0)
      D.ItemName = itemName(Names, static_cast<unsigned>(Item));
    D.Message = std::move(Msg);
    D.FixHint = std::move(Hint);
    Out.Diags.add(std::move(D));
  }

  /// Emits one summary note per check whose findings were capped.
  void finish() {
    for (unsigned Idx = 0; Idx != NumCheckIds; ++Idx)
      if (Suppressed[Idx]) {
        Diagnostic D;
        D.Severity = DiagSeverity::Note;
        D.Check = static_cast<CheckId>(Idx);
        D.Message = itostr(Suppressed[Idx]) +
                    " further findings suppressed (cap " +
                    itostr(Opts.MaxDiagsPerCheck) + " per check)";
        Out.Diags.add(std::move(D));
      }
  }

  const std::vector<std::string> &names() const { return Names; }

private:
  AuditResult &Out;
  const AuditOptions &Opts;
  const std::vector<std::string> &Names;
  std::array<unsigned, NumCheckIds> Emitted{};
  std::array<unsigned, NumCheckIds> Suppressed{};
};

//===----------------------------------------------------------------------===//
// IFG structural lint
//===----------------------------------------------------------------------===//

class IfgLinter {
public:
  IfgLinter(const IntervalFlowGraph &Ifg, Reporter &Rep)
      : Ifg(Ifg), Rep(Rep), N(Ifg.size()) {}

  void run() {
    checkPreorder();
    checkNesting();
    checkEdges();
    checkSyntheticProjection();
  }

private:
  void err(NodeId Node, std::string Msg, std::string Hint = std::string()) {
    Rep.report(DiagSeverity::Error, CheckId::Ifg, nullptr, Node, -1,
               std::move(Msg), std::move(Hint));
  }

  void checkPreorder() {
    const std::vector<NodeId> &Pre = Ifg.preorder();
    if (Pre.size() != N) {
      err(~0u, "preorder visits " + itostr(Pre.size()) + " of " + itostr(N) +
                   " nodes");
      return;
    }
    std::vector<char> Seen(N, 0);
    for (NodeId Node : Pre) {
      if (Node >= N || Seen[Node]) {
        err(Node, "preorder is not a permutation of the nodes");
        return;
      }
      Seen[Node] = 1;
    }
    if (!Pre.empty() && Pre.front() != Ifg.root())
      err(Pre.front(), "preorder does not start at ROOT");

    // Acyclicity/reducibility proxy: every edge except CYCLE advances in
    // preorder, CYCLE edges retreat (Section 3.4's FORWARD invariant).
    std::vector<unsigned> Pos(N, 0);
    for (unsigned I = 0; I != Pre.size(); ++I)
      Pos[Pre[I]] = I;
    for (NodeId Node = 0; Node != N; ++Node)
      for (const IfgEdge &E : Ifg.succs(Node)) {
        bool Ok = E.Type == EdgeType::Cycle ? Pos[E.Src] > Pos[E.Dst]
                                            : Pos[E.Src] < Pos[E.Dst];
        if (!Ok)
          err(E.Src, std::string(edgeTypeName(E.Type)) + " edge to node " +
                         itostr(E.Dst) + " does not respect preorder");
      }
  }

  void checkNesting() {
    NodeId Root = Ifg.root();
    if (Root >= N) {
      err(~0u, "ROOT node id out of range");
      return;
    }
    if (Ifg.level(Root) != 0)
      err(Root, "LEVEL(ROOT) is " + itostr(Ifg.level(Root)) + ", not 0");
    if (Ifg.parent(Root) != InvalidNode)
      err(Root, "ROOT has a parent interval");

    for (NodeId Node = 0; Node != N; ++Node) {
      if (Node == Root)
        continue;
      NodeId H = Ifg.parent(Node);
      if (H == InvalidNode || H >= N) {
        err(Node, "node outside every interval");
        continue;
      }
      if (!Ifg.isHeader(H))
        err(Node, "parent node " + itostr(H) + " is not a header");
      if (Ifg.level(Node) != Ifg.level(H) + 1)
        err(Node, "LEVEL is not LEVEL(parent) + 1");
      bool Listed = false;
      for (NodeId C : Ifg.children(H))
        Listed |= C == Node;
      if (!Listed)
        err(Node, "missing from CHILDREN of its header " + itostr(H));
    }
  }

  void checkEdges() {
    std::vector<unsigned> RealSuccs(N, 0), RealPreds(N, 0);
    std::vector<unsigned> NonEntrySuccs(N, 0);
    std::vector<unsigned> EntryIn(N, 0), EntryOut(N, 0), CycleIn(N, 0);
    for (NodeId Node = 0; Node != N; ++Node)
      for (const IfgEdge &E : Ifg.succs(Node)) {
        if (isRealEdge(E.Type)) {
          ++RealSuccs[E.Src];
          ++RealPreds[E.Dst];
          if (E.Type != EdgeType::Entry)
            ++NonEntrySuccs[E.Src];
        }
        switch (E.Type) {
        case EdgeType::Entry:
          ++EntryOut[E.Src];
          ++EntryIn[E.Dst];
          if (!Ifg.isHeader(E.Src) || Ifg.parent(E.Dst) != E.Src)
            err(E.Src, "ENTRY edge to node " + itostr(E.Dst) +
                           " does not enter the source's own interval");
          else if (Ifg.headerOf(E.Dst) != E.Src)
            err(E.Dst, "HEADER map disagrees with the incoming ENTRY edge");
          break;
        case EdgeType::Cycle:
          ++CycleIn[E.Dst];
          if (!Ifg.isHeader(E.Dst) || Ifg.parent(E.Src) != E.Dst)
            err(E.Src, "CYCLE edge to node " + itostr(E.Dst) +
                           " whose target is not the enclosing header");
          else if (Ifg.lastChild(E.Dst) != E.Src)
            err(E.Dst, "LASTCHILD disagrees with the CYCLE edge source " +
                           itostr(E.Src));
          break;
        case EdgeType::Forward:
          if (Ifg.parent(E.Src) != Ifg.parent(E.Dst))
            err(E.Src, "FORWARD edge to node " + itostr(E.Dst) +
                           " crosses an interval boundary");
          break;
        case EdgeType::Jump: {
          // A jump must leave at least one interval: in the forward
          // orientation the target is shallower; reversed jumps dive
          // back in.
          bool LeavesLoop = Ifg.isReversed()
                                ? Ifg.level(E.Dst) > Ifg.level(E.Src)
                                : Ifg.level(E.Src) > Ifg.level(E.Dst);
          if (!LeavesLoop)
            err(E.Src, "JUMP edge to node " + itostr(E.Dst) +
                           " does not cross a loop boundary");
          break;
        }
        case EdgeType::Synthetic:
          break; // Checked against the JUMP projection below.
        }
      }

    for (NodeId Node = 0; Node != N; ++Node) {
      if (EntryIn[Node] > 1)
        err(Node, "several incoming ENTRY edges");
      if (EntryIn[Node] == 0 && Ifg.headerOf(Node) != InvalidNode)
        err(Node, "HEADER map set without an incoming ENTRY edge");
      if (CycleIn[Node] > 1)
        err(Node, "several incoming CYCLE edges (intervals must have one)");
      if (Ifg.isHeader(Node)) {
        // Every header enters its interval exactly once. ROOT is exempt
        // in one orientation: the forward graph has no exit->ROOT CYCLE
        // edge, so the reversed ROOT has no ENTRY successor.
        if (EntryOut[Node] != 1 && Node != Ifg.root())
          err(Node, "header with " + itostr(EntryOut[Node]) +
                        " ENTRY successors (expected exactly 1)");
        if (CycleIn[Node] == 0 && Node != Ifg.root())
          err(Node, "interval without a CYCLE edge");
        NodeId Latch = Ifg.lastChild(Node);
        if (Latch == InvalidNode || Latch >= N)
          err(Node, "header without a LASTCHILD");
        else if (CycleIn[Node] != 0 && NonEntrySuccs[Latch] != 1)
          // ENTRY successors don't count: on a reversed graph the latch
          // is the forward entry child, which may itself be a header
          // descending into its own interval.
          err(Latch, "CYCLE edge source has other successors");
      } else {
        if (EntryOut[Node] != 0)
          err(Node, "ENTRY edge leaving a non-header");
        if (CycleIn[Node] != 0)
          err(Node, "CYCLE edge into a non-header");
      }
    }

    // No critical edges: the placement argument of Section 4.5 needs
    // every real edge to have a unique insertion point.
    for (NodeId Node = 0; Node != N; ++Node)
      for (const IfgEdge &E : Ifg.succs(Node))
        if (isRealEdge(E.Type) && RealSuccs[E.Src] > 1 && RealPreds[E.Dst] > 1)
          err(E.Src, std::string(edgeTypeName(E.Type)) + " edge to node " +
                         itostr(E.Dst) + " is critical",
              "split the edge with a synthetic node");
  }

  void checkSyntheticProjection() {
    // Expected SYNTHETIC edges: each JUMP edge projects onto the header
    // of every interval it leaves (forward: headers above the source up
    // to the target's interval; reversed: the mirrored walk).
    std::set<std::pair<NodeId, NodeId>> Expected;
    for (NodeId Node = 0; Node != N; ++Node)
      for (const IfgEdge &E : Ifg.succs(Node)) {
        if (E.Type != EdgeType::Jump)
          continue;
        NodeId Inner = Ifg.isReversed() ? E.Dst : E.Src;
        NodeId Outer = Ifg.isReversed() ? E.Src : E.Dst;
        NodeId H = Ifg.parent(Inner);
        while (H != InvalidNode && H != Ifg.parent(Outer)) {
          if (Ifg.isReversed())
            Expected.insert({Outer, H});
          else
            Expected.insert({H, Outer});
          H = Ifg.parent(H);
        }
        if (H == InvalidNode)
          err(E.Src, "JUMP edge to node " + itostr(E.Dst) +
                         " whose target interval does not enclose the source");
      }

    std::set<std::pair<NodeId, NodeId>> Present;
    for (NodeId Node = 0; Node != N; ++Node)
      for (const IfgEdge &E : Ifg.succs(Node))
        if (E.Type == EdgeType::Synthetic)
          Present.insert({E.Src, E.Dst});

    for (const auto &S : Present)
      if (!Expected.count(S))
        err(S.first, "SYNTHETIC edge to node " + itostr(S.second) +
                         " matches no JUMP edge projection");
    for (const auto &S : Expected)
      if (!Present.count(S))
        err(S.first, "missing SYNTHETIC edge to node " + itostr(S.second) +
                         " for a JUMP leaving this interval");
  }

  const IntervalFlowGraph &Ifg;
  Reporter &Rep;
  const unsigned N;
};

//===----------------------------------------------------------------------===//
// Run audit
//===----------------------------------------------------------------------===//

const char *urgencyTag(Urgency U) {
  return U == Urgency::Eager ? "EAGER" : "LAZY";
}

class RunAuditor {
public:
  RunAuditor(const GntRun &Run, const AuditOptions &Opts, Reporter &Rep,
             AuditResult &Out)
      : Run(Run), Ifg(Run.OrientedIfg), P(Run.OrientedProblem), R(Run.Result),
        Opts(Opts), Rep(Rep), Out(Out), N(Ifg.size()), U(P.UniverseSize) {}

  void run() {
    Start = findStart();
    if (Start == InvalidNode) {
      Rep.report(DiagSeverity::Error, CheckId::Ifg, nullptr, ~0u, -1,
                 "oriented graph has no unique start node");
      return;
    }
    if (Opts.CheckCorrectness || Opts.CheckOptimality) {
      checkSufficiencyAndO1(Urgency::Eager);
      checkSufficiencyAndO1(Urgency::Lazy);
    }
    if (Opts.CheckCorrectness)
      checkBalance();
    if (Opts.CheckOptimality) {
      checkLiveness(Urgency::Eager);
      checkLiveness(Urgency::Lazy);
      checkPlacementLaws();
      checkSpeculation();
    }
    if (Opts.CheckDifferential)
      checkDifferential();
  }

private:
  const GntPlacement &placement(Urgency Urg) const {
    return Urg == Urgency::Eager ? R.Eager : R.Lazy;
  }

  NodeId findStart() const {
    NodeId Found = InvalidNode;
    for (NodeId Node = 0; Node != N; ++Node) {
      bool HasRealPred = false;
      for (const IfgEdge &E : Ifg.preds(Node))
        HasRealPred |= isRealEdge(E.Type);
      if (!HasRealPred) {
        if (Found != InvalidNode)
          return InvalidNode;
        Found = Node;
      }
    }
    return Found;
  }

  DataflowResult solve(const DataflowSpec &Spec, SolveMode Mode) {
    DataflowResult D = solveDataflow(Ifg, Spec, Mode);
    ++Out.Stats.EngineSolves;
    Out.Stats.Engine.Iterations += D.Stats.Iterations;
    Out.Stats.Engine.NodeVisits += D.Stats.NodeVisits;
    Out.Stats.Engine.EdgeEvaluations += D.Stats.EdgeEvaluations;
    Out.Stats.Engine.WorklistPeak =
        std::max(Out.Stats.Engine.WorklistPeak, D.Stats.WorklistPeak);
    return D;
  }

  std::string named(unsigned Item) const { return itemName(Rep.names(), Item); }

  //===--------------------------------------------------------------------===//
  // C3 + O1: engine-solved must-availability.
  //===--------------------------------------------------------------------===//

  void checkSufficiencyAndO1(Urgency Urg) {
    const GntPlacement &Pl = placement(Urg);
    const char *Tag = urgencyTag(Urg);
    DataflowSpec Spec = makeAvailabilitySpec(Run, Urg);
    // The loop-exit arm reads the latch's value: a non-local edge
    // dependency, so round-robin it is.
    DataflowResult D = solve(Spec, SolveMode::RoundRobin);

    for (NodeId Node = 0; Node != N; ++Node) {
      if (Opts.CheckCorrectness) {
        // C3: every consumption covered at its own node.
        BitVector Need = P.TakeInit[Node];
        Need.reset(D.Out[Node]);
        for (unsigned I : Need)
          Rep.report(DiagSeverity::Error, CheckId::C3, Tag, Node,
                     static_cast<int>(I),
                     "consumes " + named(I) +
                         " which is not available on all incoming paths",
                     "a production must dominate this consumer with no "
                     "intervening steal");
      }
      if (!Opts.CheckOptimality)
        continue;
      // O1 at the entry: compare against the meet over non-CYCLE real
      // incoming edges (entry production is not applied on CYCLE edges,
      // so cycle-side availability cannot make it redundant).
      BitVector EntryAvail(U, true);
      bool Any = false;
      for (const IfgEdge &E : Ifg.preds(Node)) {
        if (!isRealEdge(E.Type) || E.Type == EdgeType::Cycle)
          continue;
        BitVector A = availabilityOverEdge(Run, Urg, E, D.Out);
        if (!Any) {
          EntryAvail = std::move(A);
          Any = true;
        } else {
          EntryAvail &= A;
        }
      }
      if (!Any)
        EntryAvail.reset();
      BitVector Re = Pl.ResIn[Node];
      Re &= EntryAvail;
      for (unsigned I : Re)
        Rep.report(DiagSeverity::Note, CheckId::O1, Tag, Node,
                   static_cast<int>(I), "re-produces " + named(I),
                   "drop the redundant production at the node entry");
      // O1 at the exit.
      BitVector AfterSteal = D.Out[Node];
      AfterSteal |= P.GiveInit[Node];
      AfterSteal.reset(P.StealInit[Node]);
      BitVector ReOut = Pl.ResOut[Node];
      ReOut &= AfterSteal;
      for (unsigned I : ReOut)
        Rep.report(DiagSeverity::Note, CheckId::O1, Tag, Node,
                   static_cast<int>(I),
                   "re-produces " + named(I) + " at its exit",
                   "drop the redundant production at the node exit");
    }
  }

  //===--------------------------------------------------------------------===//
  // C1: engine-solved balance state machine on a paired 2U universe.
  //===--------------------------------------------------------------------===//

  BitVector liftPend(const BitVector &V) const {
    BitVector L(2 * U);
    for (unsigned I : V)
      L.set(I);
    return L;
  }
  BitVector liftClear(const BitVector &V) const {
    BitVector L(2 * U);
    for (unsigned I : V)
      L.set(U + I);
    return L;
  }
  BitVector pendHalf(const BitVector &S) const {
    BitVector H(U);
    for (unsigned I = 0; I != U; ++I)
      if (S.test(I))
        H.set(I);
    return H;
  }
  BitVector clearHalf(const BitVector &S) const {
    BitVector H(U);
    for (unsigned I = 0; I != U; ++I)
      if (S.test(U + I))
        H.set(I);
    return H;
  }

  /// Applies a send (eager production) followed by a receive (lazy
  /// production) to a paired state.
  BitVector applyEvents(BitVector S, const BitVector &Send,
                        const BitVector &Recv) const {
    S.reset(liftClear(Send));
    S |= liftPend(Send);
    S.reset(liftPend(Recv));
    S |= liftClear(Recv);
    return S;
  }

  void checkBalance() {
    DataflowSpec Spec;
    Spec.Direction = FlowDirection::Forward;
    Spec.Meet = Confluence::Any;
    Spec.UniverseSize = 2 * U;
    Spec.Gen.resize(N);
    Spec.Kill.resize(N);
    for (NodeId Node = 0; Node != N; ++Node) {
      // Exit events, composed: send(EAGER RES_out) then recv(LAZY
      // RES_out). Gen applies after Kill in the engine's transfer.
      BitVector SendOnly = R.Eager.ResOut[Node];
      SendOnly.reset(R.Lazy.ResOut[Node]);
      BitVector G = liftPend(SendOnly);
      G |= liftClear(R.Lazy.ResOut[Node]);
      BitVector K = liftPend(R.Lazy.ResOut[Node]);
      K |= liftClear(SendOnly);
      Spec.Gen[Node] = std::move(G);
      Spec.Kill[Node] = std::move(K);
    }
    {
      // Initially every item is clear; the start node's entry events
      // apply before any flow.
      BitVector S0(2 * U);
      for (unsigned I = 0; I != U; ++I)
        S0.set(U + I);
      Spec.Boundary =
          applyEvents(std::move(S0), R.Eager.ResIn[Start], R.Lazy.ResIn[Start]);
    }
    const GntResult *RP = &R;
    auto *Self = this;
    Spec.EdgeTransfer = [RP, Self](const IfgEdge &E,
                                   const std::vector<BitVector> &NodeOut) {
      BitVector S = NodeOut[E.Src];
      if (E.Type != EdgeType::Cycle)
        S = Self->applyEvents(std::move(S), RP->Eager.ResIn[E.Dst],
                              RP->Lazy.ResIn[E.Dst]);
      return S;
    };
    DataflowResult D = solve(Spec, SolveMode::Worklist);

    std::set<std::pair<NodeId, std::string>> Reported;
    auto reportC1 = [&](NodeId Node, unsigned Item, const char *What) {
      std::string Msg = std::string(What) + " of " + named(Item);
      if (Reported.insert({Node, Msg}).second)
        Rep.report(DiagSeverity::Error, CheckId::C1, nullptr, Node,
                   static_cast<int>(Item), std::move(Msg),
                   "eager and lazy productions must alternate on every path");
    };
    auto checkEvents = [&](const BitVector &State, const BitVector &Send,
                           const BitVector &Recv, NodeId At) {
      BitVector BadSend = Send;
      BadSend &= pendHalf(State);
      for (unsigned I : BadSend)
        reportC1(At, I, "unmatched second eager production (send)");
      BitVector BadRecv = clearHalf(State);
      BadRecv.reset(Send); // The send (applied first) un-clears its items.
      BadRecv &= Recv;
      for (unsigned I : BadRecv)
        reportC1(At, I, "lazy production (receive) without prior send");
    };

    {
      BitVector S0(2 * U);
      for (unsigned I = 0; I != U; ++I)
        S0.set(U + I);
      checkEvents(S0, R.Eager.ResIn[Start], R.Lazy.ResIn[Start], Start);
    }
    for (NodeId Node = 0; Node != N; ++Node) {
      // D.In is the may-state after the node's entry events; exit events
      // are checked against it, edge arrivals against D.Out.
      checkEvents(D.In[Node], R.Eager.ResOut[Node], R.Lazy.ResOut[Node], Node);
      bool HasRealSucc = false;
      for (const IfgEdge &E : Ifg.succs(Node)) {
        if (!isRealEdge(E.Type))
          continue;
        HasRealSucc = true;
        if (E.Type != EdgeType::Cycle)
          checkEvents(D.Out[Node], R.Eager.ResIn[E.Dst], R.Lazy.ResIn[E.Dst],
                      E.Dst);
      }
      if (!HasRealSucc)
        for (unsigned I : pendHalf(D.Out[Node]))
          reportC1(Node, I, "eager production (send) never matched at exit");
    }
  }

  //===--------------------------------------------------------------------===//
  // O2: engine-solved production liveness.
  //===--------------------------------------------------------------------===//

  void checkLiveness(Urgency Urg) {
    const GntPlacement &Pl = placement(Urg);
    const char *Tag = urgencyTag(Urg);
    // JUMP-edge projection makes the solver place production for demand
    // that exists on no real path; do not call that an error.
    const bool Jumps = Ifg.hasJumpEdges();
    DiagSeverity Sev = Jumps ? DiagSeverity::Note : DiagSeverity::Warning;
    const char *Hint =
        Jumps ? "possibly forced by JUMP-edge projection; check the jump paths"
              : "no path consumes this production before it is voided";
    DataflowSpec Spec = makeProductionLivenessSpec(Run, Urg);
    DataflowResult D = solve(Spec, SolveMode::Worklist);
    for (NodeId Node = 0; Node != N; ++Node) {
      // Out = liveness just below the entry production point; In = just
      // below the exit production point (backward orientation).
      BitVector DeadIn = Pl.ResIn[Node];
      DeadIn.reset(D.Out[Node]);
      for (unsigned I : DeadIn)
        Rep.report(Sev, CheckId::O2, Tag, Node, static_cast<int>(I),
                   "produces " + named(I) + " which no consumer uses", Hint);
      BitVector DeadOut = Pl.ResOut[Node];
      DeadOut.reset(D.In[Node]);
      for (unsigned I : DeadOut)
        Rep.report(Sev, CheckId::O2, Tag, Node, static_cast<int>(I),
                   "produces " + named(I) + " at its exit which no consumer uses",
                   Hint);
    }
  }

  //===--------------------------------------------------------------------===//
  // O3/O3': exact placement laws.
  //===--------------------------------------------------------------------===//

  void checkPlacementLaws() {
    for (Urgency Urg : {Urgency::Eager, Urgency::Lazy}) {
      const GntPlacement &Pl = placement(Urg);
      const bool Eager = Urg == Urgency::Eager;
      CheckId Check = Eager ? CheckId::O3 : CheckId::O3L;
      const char *Tag = urgencyTag(Urg);
      for (NodeId Node = 0; Node != N; ++Node) {
        // Eq. 12/14: entry production only where consumption is
        // anticipated (EAGER: TAKEN_in) or demanded locally (LAZY: TAKE).
        const BitVector &Bound = Eager ? R.TakenIn[Node] : R.Take[Node];
        BitVector Bad = Pl.ResIn[Node];
        Bad.reset(Bound);
        for (unsigned I : Bad)
          Rep.report(DiagSeverity::Error, Check, Tag, Node,
                     static_cast<int>(I),
                     std::string("produces ") + named(I) +
                         (Eager ? " where no consumption is anticipated"
                                : " earlier than demand requires"),
                     Eager ? "RES_in must stay within TAKEN_in (Eq. 12/14)"
                           : "lazy RES_in must stay within TAKE (Eq. 12/14)");
        // Eq. 14: no production of an item already flowing in.
        BitVector Doubled = Pl.ResIn[Node];
        Doubled &= Pl.GivenIn[Node];
        for (unsigned I : Doubled)
          Rep.report(DiagSeverity::Error, Check, Tag, Node,
                     static_cast<int>(I),
                     "produces " + named(I) + " which GIVEN_in already carries",
                     "RES_in and GIVEN_in must be disjoint (Eq. 14)");
        // Eq. 15: no exit production of an item already flowing out.
        BitVector DoubledOut = Pl.ResOut[Node];
        DoubledOut &= Pl.GivenOut[Node];
        for (unsigned I : DoubledOut)
          Rep.report(DiagSeverity::Error, Check, Tag, Node,
                     static_cast<int>(I),
                     "produces " + named(I) +
                         " at its exit which GIVEN_out already carries",
                     "RES_out and GIVEN_out must be disjoint (Eq. 15)");
        // Section 4.5: exit production needs a unique insertion edge.
        if (Pl.ResOut[Node].any()) {
          unsigned RealSuccs = 0;
          for (const IfgEdge &E : Ifg.succs(Node))
            RealSuccs += isRealEdge(E.Type);
          if (RealSuccs != 1)
            Rep.report(DiagSeverity::Error, Check, Tag, Node, -1,
                       "exit production on a node with " + itostr(RealSuccs) +
                           " successors",
                       "RES_out must land on single-successor nodes "
                       "(no-critical-edge argument, Section 4.5)");
        }
      }
    }
  }

  /// Speculation note: on jump-free graphs, eager production of an item
  /// no real path consumes before stealing it is speculative. (With
  /// jumps, SYNTHETIC projection makes such placements legitimate.)
  void checkSpeculation() {
    if (Ifg.hasJumpEdges())
      return;
    DataflowSpec Spec = makeAnticipabilitySpec(Run);
    DataflowResult D = solve(Spec, SolveMode::Worklist);
    for (NodeId Node = 0; Node != N; ++Node) {
      // Backward orientation: Out = anticipability at the node entry,
      // In = at the node exit.
      BitVector Spec1 = R.Eager.ResIn[Node];
      Spec1.reset(D.Out[Node]);
      for (unsigned I : Spec1)
        Rep.report(DiagSeverity::Note, CheckId::O3, "EAGER", Node,
                   static_cast<int>(I),
                   "speculatively produces " + named(I) +
                       " which no path consumes before a steal");
      BitVector Spec2 = R.Eager.ResOut[Node];
      Spec2.reset(D.In[Node]);
      for (unsigned I : Spec2)
        Rep.report(DiagSeverity::Note, CheckId::O3, "EAGER", Node,
                   static_cast<int>(I),
                   "speculatively produces " + named(I) +
                       " at its exit which no path consumes before a steal");
    }
  }

  //===--------------------------------------------------------------------===//
  // DIFF: iterative reference solver comparison.
  //===--------------------------------------------------------------------===//

  void diffVariable(const char *Name, const char *Solution,
                    const std::vector<BitVector> &Got,
                    const std::vector<BitVector> &Want) {
    for (NodeId Node = 0; Node != N; ++Node) {
      if (Got[Node] == Want[Node])
        continue;
      BitVector Extra = Got[Node];
      Extra.reset(Want[Node]);
      BitVector Missing = Want[Node];
      Missing.reset(Got[Node]);
      int Item = Extra.any() ? Extra.findFirst() : Missing.findFirst();
      Rep.report(DiagSeverity::Error, CheckId::Diff, Solution, Node, Item,
                 std::string(Name) + " disagrees with the iterative "
                     "reference solver (" +
                     itostr(Extra.count()) + " extra, " +
                     itostr(Missing.count()) + " missing)",
                 "re-derive the variable by chaotic iteration of Eqs. 1-15");
    }
  }

  void checkDifferential() {
    ReferenceResult Ref = solveGiveNTakeIterative(Ifg, P);
    Out.Stats.ReferenceSweeps = Ref.Sweeps;
    if (!Ref.Converged) {
      Rep.report(DiagSeverity::Error, CheckId::Engine, nullptr, ~0u, -1,
                 "iterative reference solver did not converge in " +
                     itostr(Ref.Sweeps) + " sweeps");
      return;
    }
    const GntResult &W = Ref.Result;
    diffVariable("STEAL", nullptr, R.Steal, W.Steal);
    diffVariable("GIVE", nullptr, R.Give, W.Give);
    diffVariable("BLOCK", nullptr, R.Block, W.Block);
    diffVariable("TAKEN_out", nullptr, R.TakenOut, W.TakenOut);
    diffVariable("TAKE", nullptr, R.Take, W.Take);
    diffVariable("TAKEN_in", nullptr, R.TakenIn, W.TakenIn);
    diffVariable("BLOCK_loc", nullptr, R.BlockLoc, W.BlockLoc);
    diffVariable("TAKE_loc", nullptr, R.TakeLoc, W.TakeLoc);
    diffVariable("GIVE_loc", nullptr, R.GiveLoc, W.GiveLoc);
    diffVariable("STEAL_loc", nullptr, R.StealLoc, W.StealLoc);
    struct {
      const GntPlacement *Got, *Want;
      const char *Tag;
    } Sides[2] = {{&R.Eager, &W.Eager, "EAGER"}, {&R.Lazy, &W.Lazy, "LAZY"}};
    for (const auto &S : Sides) {
      diffVariable("GIVEN_in", S.Tag, S.Got->GivenIn, S.Want->GivenIn);
      diffVariable("GIVEN", S.Tag, S.Got->Given, S.Want->Given);
      diffVariable("GIVEN_out", S.Tag, S.Got->GivenOut, S.Want->GivenOut);
      diffVariable("RES_in", S.Tag, S.Got->ResIn, S.Want->ResIn);
      diffVariable("RES_out", S.Tag, S.Got->ResOut, S.Want->ResOut);
    }

    // The LAZY solution never carries more than the EAGER one: Take is
    // within TakenIn, and Eq. 11-13 preserve the containment node by
    // node in preorder.
    struct {
      const std::vector<BitVector> *Lazy, *Eager;
      const char *Name;
    } Laws[3] = {{&R.Lazy.GivenIn, &R.Eager.GivenIn, "GIVEN_in"},
                 {&R.Lazy.Given, &R.Eager.Given, "GIVEN"},
                 {&R.Lazy.GivenOut, &R.Eager.GivenOut, "GIVEN_out"}};
    for (const auto &L : Laws)
      for (NodeId Node = 0; Node != N; ++Node)
        if (!(*L.Lazy)[Node].isSubsetOf((*L.Eager)[Node])) {
          BitVector Extra = (*L.Lazy)[Node];
          Extra.reset((*L.Eager)[Node]);
          Rep.report(DiagSeverity::Error, CheckId::Diff, "LAZY", Node,
                     Extra.findFirst(),
                     std::string("LAZY ") + L.Name +
                         " is not contained in the EAGER one",
                     "the lazy placement must never exceed the eager one");
        }
  }

  const GntRun &Run;
  const IntervalFlowGraph &Ifg;
  const GntProblem &P;
  const GntResult &R;
  const AuditOptions &Opts;
  Reporter &Rep;
  AuditResult &Out;
  const unsigned N, U;
  NodeId Start = InvalidNode;
};

} // namespace

AuditResult gnt::auditIfg(const IntervalFlowGraph &Ifg) {
  AuditResult Out;
  AuditOptions Opts;
  std::vector<std::string> NoNames;
  Reporter Rep(Out, Opts, NoNames);
  IfgLinter(Ifg, Rep).run();
  Rep.finish();
  return Out;
}

AuditResult gnt::auditGntRun(const GntRun &Run,
                             const std::vector<std::string> &ItemNames,
                             const AuditOptions &Opts) {
  AuditResult Out;
  Reporter Rep(Out, Opts, ItemNames);
  if (Opts.CheckStructure)
    IfgLinter(Run.OrientedIfg, Rep).run();
  RunAuditor(Run, Opts, Rep, Out).run();
  Rep.finish();
  return Out;
}
