//===- analysis/Auditor.h - GIVE-N-TAKE static auditor ----------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static auditor re-checks a GIVE-N-TAKE run from first principles,
/// independently of the elimination solver that produced it:
///
///  - IFG:  structural lint of the interval flow graph (interval
///          nesting, unique CYCLE/ENTRY edges, no critical edges,
///          SYNTHETIC edge projection consistency, preorder sanity);
///  - C1:   production balance along every path (via the generic
///          dataflow engine over a paired pending/clear universe);
///  - C3:   sufficiency — every consumer covered on all incoming paths
///          (engine-solved must-availability);
///  - O1:   no production of an already-available item (notes);
///  - O2:   no production that no consumer ever uses (engine-solved
///          production liveness; warnings — conservative placements
///          forced by JUMP-edge projection can trip it legitimately);
///  - O3:   eager placements produce only anticipated items; O3' checks
///          the lazy side plus the exact Eq. 14/15 placement invariants;
///  - DIFF: every dataflow variable compared against the iterative
///          reference solver, plus the LAZY-subset-of-EAGER laws.
///
/// Results come back as a DiagnosticSet plus engine statistics, so both
/// humans (text), tools (JSON) and tests (check IDs + locations) consume
/// the same findings.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_ANALYSIS_AUDITOR_H
#define GNT_ANALYSIS_AUDITOR_H

#include "analysis/DataflowEngine.h"
#include "analysis/Diagnostics.h"
#include "dataflow/GiveNTake.h"

#include <string>
#include <vector>

namespace gnt {

/// Which audit passes to run and how chatty to be.
struct AuditOptions {
  bool CheckStructure = true;    ///< IFG lint.
  bool CheckCorrectness = true;  ///< C1 and C3.
  bool CheckOptimality = true;   ///< O1, O2, O3, O3'.
  bool CheckDifferential = true; ///< Reference-solver comparison.
  /// Per-check diagnostic cap; excess findings are counted, summarized
  /// in one trailing note, and dropped. 0 means unlimited.
  unsigned MaxDiagsPerCheck = 25;
};

/// Work the audit performed, for observability and engine tests.
struct AuditStats {
  unsigned EngineSolves = 0;  ///< Dataflow problems solved.
  DataflowStats Engine;       ///< Statistics summed over those solves.
  unsigned ReferenceSweeps = 0; ///< Iterative oracle sweeps (0 if skipped).
};

/// Outcome of an audit.
struct AuditResult {
  DiagnosticSet Diags;
  AuditStats Stats;
  bool ok() const { return !Diags.hasErrors(); }
};

/// Structural lint of \p Ifg alone (also run by auditGntRun). Works on
/// both orientations; reversed graphs are checked against the reversed
/// invariants.
AuditResult auditIfg(const IntervalFlowGraph &Ifg);

/// Full audit of a solved run. \p ItemNames (parallel to the item
/// universe) makes diagnostics human-readable when available.
AuditResult auditGntRun(const GntRun &Run,
                        const std::vector<std::string> &ItemNames = {},
                        const AuditOptions &Opts = {});

} // namespace gnt

#endif // GNT_ANALYSIS_AUDITOR_H
