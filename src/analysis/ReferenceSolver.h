//===- analysis/ReferenceSolver.h - Iterative Eq. 1-15 oracle ---*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch re-implementation of the GIVE-N-TAKE equations
/// (Figure 13) solved by chaotic iteration from bottom instead of the
/// production solver's one-pass elimination schedule (Figure 15). The
/// equation dependencies are acyclic in the schedule order, so iteration
/// converges to the same unique fixed point; the auditor's differential
/// check compares the two solutions variable by variable, catching
/// schedule-ordering bugs, stale-read regressions and any drift between
/// the two implementations of the equations themselves.
///
/// The implemented refinements of the production solver are replicated
/// deliberately (they are part of the specification being checked):
/// Eq. 11 subtracts the enclosing loop's STEAL summary from the header
/// in-flow, NoHoist headers drop their GIVE summary and hoisting terms
/// and are opaque to Eq. 11, and ROOT's placement variables stay bottom.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_ANALYSIS_REFERENCESOLVER_H
#define GNT_ANALYSIS_REFERENCESOLVER_H

#include "dataflow/GiveNTake.h"

namespace gnt {

/// Outcome of the iterative reference solve.
struct ReferenceResult {
  GntResult Result;
  unsigned Sweeps = 0;    ///< Full re-evaluation sweeps performed.
  bool Converged = false; ///< False if the sweep cap was hit first.
};

/// Solves \p P over \p Ifg (already oriented; see runGiveNTake) by
/// repeated full re-evaluation of Equations 1-15 until no variable
/// changes. \p MaxSweeps caps the iteration; 0 picks a bound that any
/// converging instance satisfies comfortably.
ReferenceResult solveGiveNTakeIterative(const IntervalFlowGraph &Ifg,
                                        const GntProblem &P,
                                        unsigned MaxSweeps = 0);

} // namespace gnt

#endif // GNT_ANALYSIS_REFERENCESOLVER_H
