//===- dataflow/GiveNTake.cpp - The GIVE-N-TAKE framework -------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Implements the equations of the paper's Figure 13 with the evaluation
/// schedule of Figure 15. The schedule's ordering constraints (Section
/// 5.1) are met as follows:
///
///  - S1 (Eq. 1-8) is evaluated in REVERSEPREORDER, i.e. BACKWARD (every
///    FORWARD/JUMP successor first) and UPWARD (interval members before
///    their headers);
///  - S2 (Eq. 9-10) for the children of n runs in per-interval FORWARD
///    order, interleaved just before S1(n);
///  - S3 (Eq. 11-13) runs in PREORDER;
///  - S4 (Eq. 14-15) is order-free.
///
/// Each equation reads only variables that an earlier step fully
/// computed, so one evaluation per node per equation reaches the fixed
/// point (the framework is "fast" in the Graham/Wegman sense).
///
/// Two evaluators implement the schedule:
///
///  - the arena solver (solveGiveNTake): all 20 dataflow variables live
///    in one flat DataflowMatrix allocation. Each schedule step runs as
///    a few vectorizable word sweeps per node — edge-list gathers into
///    scratch rows, then one fixed-arity fused loop — with no
///    allocation during evaluation. The result's BitVectors borrow the
///    arena rows outright (GntResult::Arena keeps the storage alive),
///    so exporting costs nothing.
///  - the classic solver (solveGiveNTakeClassic): the original
///    one-BitVector-temporary-per-term evaluator, kept as the
///    differential oracle and the bench baseline.
///
/// Both walk the nodes in the same order and read the same stored values
/// at every step, so their results are bit-for-bit identical; the
/// property battery enforces this.
///
/// Because every equation is a bitwise AND/OR/ANDNOT over item sets —
/// no operation crosses bit lanes — any word range of the universe can
/// be solved independently of the rest. Two further layers compose on
/// top of the arena sweeps by exploiting exactly that independence:
///
///  - solveGiveNTakeSharded(): workers solve disjoint word ranges of
///    one shared arena, with no slicing or stitching. Every word is
///    computed by the same sweep over the same inputs regardless of the
///    partition, so any shard count is byte-identical to the serial
///    solve.
///  - solveGiveNTakeCompressed(): the universe is first partitioned
///    into column equivalence classes (support/ItemClasses.h) — items
///    with identical (TAKE_init, GIVE_init, STEAL_init) columns have
///    identical solutions, and all-empty columns solve to bottom — so
///    the sweeps run over one representative per class and the full
///    result is reconstructed by word-run expansion afterwards.
///
//===----------------------------------------------------------------------===//

#include "dataflow/GiveNTake.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <thread>

#include "support/DataflowMatrix.h"
#include "support/ItemClasses.h"
#include "support/ShardSchedule.h"
#include "support/SimdKernels.h"
#include "support/Support.h"
#include "support/ThreadPool.h"

#include <cstdlib>
#include <string_view>

using namespace gnt;

std::atomic<bool> gnt::detail::InjectFusedSweepBug{false};

//===----------------------------------------------------------------------===//
// Classic evaluator (pre-arena differential oracle and bench baseline)
//===----------------------------------------------------------------------===//

namespace {

/// Union of \p Var over the \p Types-typed successors of \p N.
BitVector unionSuccs(const IntervalFlowGraph &Ifg,
                     const std::vector<BitVector> &Var, NodeId N,
                     std::initializer_list<EdgeType> Types, unsigned U) {
  BitVector R(U);
  for (const IfgEdge &E : Ifg.succs(N))
    for (EdgeType T : Types)
      if (E.Type == T) {
        R |= Var[E.Dst];
        break;
      }
  return R;
}

/// Intersection of \p Var over the \p Types-typed successors of \p N;
/// yields bottom (the empty set) if there are no such successors, as
/// Section 4 specifies.
BitVector meetSuccs(const IntervalFlowGraph &Ifg,
                    const std::vector<BitVector> &Var, NodeId N,
                    std::initializer_list<EdgeType> Types, unsigned U) {
  BitVector R(U);
  bool First = true;
  for (const IfgEdge &E : Ifg.succs(N))
    for (EdgeType T : Types)
      if (E.Type == T) {
        if (First) {
          R = Var[E.Dst];
          First = false;
        } else {
          R &= Var[E.Dst];
        }
        break;
      }
  return R;
}

BitVector unionPreds(const IntervalFlowGraph &Ifg,
                     const std::vector<BitVector> &Var, NodeId N,
                     std::initializer_list<EdgeType> Types, unsigned U) {
  BitVector R(U);
  for (const IfgEdge &E : Ifg.preds(N))
    for (EdgeType T : Types)
      if (E.Type == T) {
        R |= Var[E.Src];
        break;
      }
  return R;
}

BitVector meetPreds(const IntervalFlowGraph &Ifg,
                    const std::vector<BitVector> &Var, NodeId N,
                    std::initializer_list<EdgeType> Types, unsigned U) {
  BitVector R(U);
  bool First = true;
  for (const IfgEdge &E : Ifg.preds(N))
    for (EdgeType T : Types)
      if (E.Type == T) {
        if (First) {
          R = Var[E.Src];
          First = false;
        } else {
          R &= Var[E.Src];
        }
        break;
      }
  return R;
}

} // namespace

GntResult gnt::solveGiveNTakeClassic(const IntervalFlowGraph &Ifg,
                                     const GntProblem &P) {
  const unsigned N = Ifg.size();
  const unsigned U = P.UniverseSize;
  assert(P.TakeInit.size() == N && P.GiveInit.size() == N &&
         P.StealInit.size() == N && "problem not sized to the graph");

  GntResult R;
  auto alloc = [&](std::vector<BitVector> &V) {
    V.assign(N, BitVector(U));
  };
  alloc(R.Steal);
  alloc(R.Give);
  alloc(R.Block);
  alloc(R.TakenOut);
  alloc(R.Take);
  alloc(R.TakenIn);
  alloc(R.BlockLoc);
  alloc(R.TakeLoc);
  alloc(R.GiveLoc);
  alloc(R.StealLoc);
  for (GntPlacement *Pl : {&R.Eager, &R.Lazy}) {
    alloc(Pl->GivenIn);
    alloc(Pl->Given);
    alloc(Pl->GivenOut);
    alloc(Pl->ResIn);
    alloc(Pl->ResOut);
  }

  using ET = EdgeType;
  const std::vector<NodeId> &Pre = Ifg.preorder();

  std::vector<char> NoHoist(N, 0);
  for (NodeId H : P.NoHoistHeaders)
    NoHoist[H] = 1;

  //===------------------------------------------------------------------===//
  // Pass 1 (REVERSEPREORDER): S2 for the children of n, then S1(n).
  //===------------------------------------------------------------------===//
  for (auto It = Pre.rbegin(), E = Pre.rend(); It != E; ++It) {
    NodeId Node = *It;

    for (NodeId C : Ifg.children(Node)) {
      // Eq. 9: GIVE_loc(c) =
      //   (GIVE(c) u TAKE(c) u meet_{p in PREDS^FJ} GIVE_loc(p)) - STEAL(c)
      BitVector GL = meetPreds(Ifg, R.GiveLoc, C, {ET::Forward, ET::Jump}, U);
      GL |= R.Give[C];
      GL |= R.Take[C];
      GL.reset(R.Steal[C]);
      R.GiveLoc[C] = std::move(GL);

      // Eq. 10: STEAL_loc(c) = STEAL(c)
      //   u union_{p in PREDS^FJ} (STEAL_loc(p) - GIVE_loc(p))
      //   u union_{p in PREDS^S} STEAL_loc(p)
      BitVector SL = R.Steal[C];
      for (const IfgEdge &Edge : Ifg.preds(C)) {
        if (Edge.Type == ET::Forward || Edge.Type == ET::Jump) {
          BitVector T = R.StealLoc[Edge.Src];
          T.reset(R.GiveLoc[Edge.Src]);
          SL |= T;
        } else if (Edge.Type == ET::Synthetic) {
          // The jumped-out interval may have been left mid-flight, so its
          // resupplies (GIVE_loc) cannot be subtracted.
          SL |= R.StealLoc[Edge.Src];
        }
      }
      R.StealLoc[C] = std::move(SL);
    }

    // Eq. 1 / Eq. 2: fold the interval summary of the last child into the
    // header's own effects. NoHoist headers keep the STEAL summary (it
    // only blocks) but drop the GIVE summary: production inside a loop
    // that may run zero times must not count as available past it.
    R.Steal[Node] = P.StealInit[Node];
    R.Give[Node] = P.GiveInit[Node];
    if (Ifg.isHeader(Node) && Ifg.lastChild(Node) != InvalidNode) {
      R.Steal[Node] |= R.StealLoc[Ifg.lastChild(Node)];
      if (!NoHoist[Node])
        R.Give[Node] |= R.GiveLoc[Ifg.lastChild(Node)];
    }

    // Eq. 3: BLOCK(n) = STEAL(n) u GIVE(n) u union_{s in SUCCS^E} BLOCK_loc(s)
    R.Block[Node] = unionSuccs(Ifg, R.BlockLoc, Node, {ET::Entry}, U);
    R.Block[Node] |= R.Steal[Node];
    R.Block[Node] |= R.Give[Node];

    // Eq. 4: TAKEN_out(n) = meet_{s in SUCCS^FJS} TAKEN_in(s)
    R.TakenOut[Node] = meetSuccs(Ifg, R.TakenIn, Node,
                                 {ET::Forward, ET::Jump, ET::Synthetic}, U);

    // Eq. 5: TAKE(n) = TAKE_init(n)
    //   u (union_{s in SUCCS^E} TAKEN_in(s) - STEAL(n))
    //   u ((TAKEN_out(n) n union_{s in SUCCS^E} TAKE_loc(s)) - BLOCK(n))
    // For NoHoist headers the loop-body contributions are ignored
    // (Section 5.3's per-header alternative to STEAL_init poisoning).
    R.Take[Node] = P.TakeInit[Node];
    if (!NoHoist[Node]) {
      BitVector Hoisted = unionSuccs(Ifg, R.TakenIn, Node, {ET::Entry}, U);
      Hoisted.reset(R.Steal[Node]);
      BitVector Maybe = unionSuccs(Ifg, R.TakeLoc, Node, {ET::Entry}, U);
      Maybe &= R.TakenOut[Node];
      Maybe.reset(R.Block[Node]);
      R.Take[Node] |= Hoisted;
      R.Take[Node] |= Maybe;
    }

    // Eq. 6: TAKEN_in(n) = TAKE(n) u (TAKEN_out(n) - BLOCK(n)).
    // NoHoist headers are analysis barriers in this direction too:
    // consumption after the loop must not pull production above it, or
    // paths jumping out of the loop would see unbalanced productions.
    if (NoHoist[Node]) {
      R.TakenIn[Node] = R.Take[Node];
    } else {
      BitVector T = R.TakenOut[Node];
      T.reset(R.Block[Node]);
      T |= R.Take[Node];
      R.TakenIn[Node] = std::move(T);
    }

    // Eq. 7: BLOCK_loc(n) = (BLOCK(n) u union_{s in SUCCS^F} BLOCK_loc(s))
    //   - TAKE(n)
    {
      BitVector B = unionSuccs(Ifg, R.BlockLoc, Node, {ET::Forward}, U);
      B |= R.Block[Node];
      B.reset(R.Take[Node]);
      R.BlockLoc[Node] = std::move(B);
    }

    // Eq. 8: TAKE_loc(n) = TAKE(n)
    //   u (union_{s in SUCCS^EF} TAKE_loc(s) - BLOCK(n))
    {
      BitVector T = unionSuccs(Ifg, R.TakeLoc, Node, {ET::Entry, ET::Forward},
                               U);
      T.reset(R.Block[Node]);
      T |= R.Take[Node];
      R.TakeLoc[Node] = std::move(T);
    }
  }

  //===------------------------------------------------------------------===//
  // Pass 2 (PREORDER): S3 — Eq. 11-13 for EAGER and LAZY. ROOT's
  // placement variables stay at bottom so production is assigned to real
  // program nodes (the paper excludes ROOT from its worked example).
  //===------------------------------------------------------------------===//
  for (NodeId Node : Pre) {
    if (Node == Ifg.root())
      continue;
    for (Urgency Urg : {Urgency::Eager, Urgency::Lazy}) {
      GntPlacement &Pl = Urg == Urgency::Eager ? R.Eager : R.Lazy;

      // Eq. 11: GIVEN_in(n) = GIVEN(HEADER(n))
      //   u meet_{p in PREDS^FJ} GIVEN_out(p)
      //   u (TAKEN_in(n) n union_{q in PREDS^FJ} GIVEN_out(q))
      //
      // Soundness refinement over the paper's literal equation: the
      // in-flow from the header subtracts the loop's STEAL summary. An
      // item stolen somewhere in the body is not guaranteed at the body
      // top on iterations after the first, so consumers inside must
      // re-produce it (the literal GIVEN(HEADER) term would let a
      // pre-loop production cover every iteration).
      // NoHoist headers are fully opaque: availability does not flow
      // into the body at all, so in-loop consumers get per-iteration
      // production pairs in both solutions (keeping C1 balance).
      BitVector In =
          meetPreds(Ifg, Pl.GivenOut, Node, {ET::Forward, ET::Jump}, U);
      if (Ifg.headerOf(Node) != InvalidNode &&
          !NoHoist[Ifg.headerOf(Node)]) {
        BitVector FromHeader = Pl.Given[Ifg.headerOf(Node)];
        FromHeader.reset(R.Steal[Ifg.headerOf(Node)]);
        In |= FromHeader;
      }
      {
        BitVector Some =
            unionPreds(Ifg, Pl.GivenOut, Node, {ET::Forward, ET::Jump}, U);
        Some &= R.TakenIn[Node];
        In |= Some;
      }
      Pl.GivenIn[Node] = std::move(In);

      // Eq. 12: GIVEN(n) = GIVEN_in(n) u (EAGER ? TAKEN_in(n) : TAKE(n))
      Pl.Given[Node] = Pl.GivenIn[Node];
      Pl.Given[Node] |=
          Urg == Urgency::Eager ? R.TakenIn[Node] : R.Take[Node];

      // Eq. 13: GIVEN_out(n) = (GIVE(n) u GIVEN(n)) - STEAL(n)
      BitVector Out = R.Give[Node];
      Out |= Pl.Given[Node];
      Out.reset(R.Steal[Node]);
      Pl.GivenOut[Node] = std::move(Out);
    }
  }

  //===------------------------------------------------------------------===//
  // Pass 3 (any order): S4 — Eq. 14-15.
  //===------------------------------------------------------------------===//
  for (NodeId Node : Pre) {
    for (GntPlacement *Pl : {&R.Eager, &R.Lazy}) {
      // Eq. 14: RES_in(n) = GIVEN(n) - GIVEN_in(n)
      Pl->ResIn[Node] = Pl->Given[Node];
      Pl->ResIn[Node].reset(Pl->GivenIn[Node]);

      // Eq. 15: RES_out(n) = union_{s in SUCCS^FJ} GIVEN_in(s)
      //   - GIVEN_out(n)
      BitVector Out = unionSuccs(Ifg, Pl->GivenIn, Node,
                                 {ET::Forward, ET::Jump}, U);
      Out.reset(Pl->GivenOut[Node]);
      Pl->ResOut[Node] = std::move(Out);

      // The paper's no-critical-edge argument (Section 4.5) implies exit
      // production only lands on single-successor nodes.  JUMP edges are
      // the one exception: a jump source keeps both its fall-through and
      // its jump successor (normalization never splits jump edges), so
      // the argument does not apply there; Section 5.3's header poisoning
      // keeps such placements balanced instead.
      assert((Pl->ResOut[Node].none() || Ifg.succs(Node).size() == 1 ||
              std::any_of(Ifg.succs(Node).begin(), Ifg.succs(Node).end(),
                          [](const IfgEdge &E) {
                            return E.Type == EdgeType::Jump;
                          })) &&
             "RES_out on a multi-successor non-jump node");
    }
  }

  return R;
}

//===----------------------------------------------------------------------===//
// Arena evaluator
//===----------------------------------------------------------------------===//

namespace {

using Word = DataflowMatrix::Word;

/// Arena row layout: 20 fields x N nodes, field-major so one field's
/// rows are contiguous (the export walks field by field).
enum ArenaField : unsigned {
  FSteal,
  FGive,
  FBlock,
  FTakenOut,
  FTake,
  FTakenIn,
  FBlockLoc,
  FTakeLoc,
  FGiveLoc,
  FStealLoc,
  FEagerGivenIn,
  FEagerGiven,
  FEagerGivenOut,
  FEagerResIn,
  FEagerResOut,
  FLazyGivenIn,
  FLazyGiven,
  FLazyGivenOut,
  FLazyResIn,
  FLazyResOut,
  NumArenaFields
};

/// Reusable per-node scratch: row pointers of one edge-set x variable
/// combination, gathered once per node so the word sweeps below stay
/// free of edge-type dispatch.
using RowList = std::vector<const Word *>;

//===----------------------------------------------------------------------===//
// Row sweeps
//
// The row primitives and the fused sweeps live behind the
// support/SimdKernels registry: scalar reference loops plus
// hand-written AVX2/AVX-512/NEON variants, selected once per process
// (CPUID or GNT_KERNEL). The commented equation bodies (Eq. 1-15 word
// logic, operand roles, the HoistMask/NoHoist conventions, the Eq. 11
// soundness refinement) are documented on the scalar variant in
// SimdKernels.cpp. Aliasing contract carried over from the inline era:
// a destination is always the row of one (field, node) pair, every
// source is a different row or init storage, and several *sources* may
// alias each other (absent operands all point at one shared zero row).
//===----------------------------------------------------------------------===//

inline void rowZero(Word *D, unsigned W) {
  std::memset(D, 0, W * sizeof(Word));
}

/// D = union of the rows in \p L (bottom when empty).
inline void gatherUnion(const SolverKernels &SK, Word *D, const RowList &L,
                        unsigned W) {
  if (L.empty()) {
    rowZero(D, W);
    return;
  }
  SK.RowCopy(D, L[0], W);
  for (std::size_t I = 1, E = L.size(); I != E; ++I)
    SK.RowOr(D, L[I], W);
}

/// D = intersection of the rows in \p L (bottom when empty, as Section 4
/// specifies for empty successor sets).
inline void gatherMeet(const SolverKernels &SK, Word *D, const RowList &L,
                       unsigned W) {
  if (L.empty()) {
    rowZero(D, W);
    return;
  }
  SK.RowCopy(D, L[0], W);
  for (std::size_t I = 1, E = L.size(); I != E; ++I)
    SK.RowAnd(D, L[I], W);
}

/// The fused evaluator over the word window [\p WordOff, \p WordOff +
/// \p WWin) of the universe: identical schedule and identical reads as
/// the classic solver, but all variables live in \p M and each schedule
/// step runs as a handful of vectorizable word sweeps per node — union
/// and meet gathers over the edge lists, then one fixed-arity fused
/// pass with no allocation anywhere.
///
/// Windowing is exact because no equation crosses word lanes: the
/// window's words come out bit-for-bit equal to a full-width solve.
/// This one property backs both the cache-blocked serial driver and the
/// sharded driver, whose workers write disjoint windows of one shared
/// arena.
void solveIntoArena(const IntervalFlowGraph &Ifg, const GntProblem &P,
                    DataflowMatrix &M, unsigned WordOff, unsigned WWin,
                    const detail::ArenaSolveMasks *Masks = nullptr) {
  const unsigned N = Ifg.size();
  const unsigned W = WWin;
  using ET = EdgeType;
  if (W == 0)
    return; // Empty window: nothing to compute.
  const std::vector<NodeId> &Pre = Ifg.preorder();
  const SolverKernels &SK = solverKernels();
  const bool FlipEq14 =
      detail::InjectFusedSweepBug.load(std::memory_order_relaxed);
  // Step selectors for the masked re-solve; a cold solve runs everything.
  auto RunS1 = [&](NodeId Id) { return !Masks || (*Masks->S1)[Id]; };
  auto RunS2 = [&](NodeId Id) { return !Masks || (*Masks->S2)[Id]; };
  auto RunS3 = [&](NodeId Id) { return !Masks || (*Masks->S3)[Id]; };
  auto RunS4 = [&](NodeId Id) { return !Masks || (*Masks->S4)[Id]; };

  auto row = [&](ArenaField F, NodeId Id) -> Word * {
    return M.row(static_cast<unsigned>(F) * N + Id) + WordOff;
  };

  // Value-level refinement of the masked re-solve (see
  // ArenaSolveMasks::Baseline): per-row change flags, seeded by the
  // init-changed nodes and updated by comparing each evaluated step's
  // output rows against the baseline arena. A candidate step whose
  // input rows all carry clear flags is skipped — its inputs byte-equal
  // the converged baseline's, so the cloned output rows already hold
  // exactly what re-evaluation would write (induction in schedule
  // order).
  const bool Refine = Masks && Masks->Baseline;
  assert((!Refine || Masks->ChangedInit) &&
         "value-refined re-solve needs the init change flags");
  std::vector<char> RowChanged;
  if (Refine)
    RowChanged.assign(static_cast<std::size_t>(NumArenaFields) * N, 0);
  auto chg = [&](ArenaField F, NodeId Id) -> bool {
    return RowChanged[static_cast<std::size_t>(F) * N + Id] != 0;
  };
  auto noteOutput = [&](ArenaField F, NodeId Id) {
    const Word *Old =
        Masks->Baseline->row(static_cast<unsigned>(F) * N + Id) + WordOff;
    RowChanged[static_cast<std::size_t>(F) * N + Id] =
        std::memcmp(row(F, Id), Old, W * sizeof(Word)) != 0;
  };
  auto markRan = [&](NodeId Id) {
    if (Masks && Masks->Ran)
      (*Masks->Ran)[Id] = 1;
  };

  std::vector<char> NoHoist(N, 0);
  for (NodeId H : P.NoHoistHeaders)
    NoHoist[H] = 1;

  // Scratch rows for the edge gathers, plus one shared always-zero row
  // standing in for absent operands (no header summary, NoHoist) so the
  // fused sweeps never branch per word.
  std::vector<Word> Scratch(static_cast<std::size_t>(7) * W, 0);
  Word *SEntryBlock = Scratch.data() + 0 * W;
  Word *SEntryTaken = Scratch.data() + 1 * W;
  Word *SEntryTake = Scratch.data() + 2 * W;
  Word *SFwdBlock = Scratch.data() + 3 * W;
  Word *SEfTake = Scratch.data() + 4 * W;
  Word *SPredUnion = Scratch.data() + 5 * W;
  const Word *ZeroRow = Scratch.data() + 6 * W; // never written

  // The arena arrives uninitialized, so every row that can be read (or
  // exported) before its equation writes it must start at bottom,
  // mirroring the classic solver's zero-initialized vectors. Three
  // classes qualify:
  //
  //  - fields gathered across edges or into header summaries (TAKEN_in,
  //    BLOCK_loc, TAKE_loc, GIVE_loc, STEAL_loc, GIVEN_out): the
  //    elimination order guarantees write-before-read along FORWARD and
  //    child edges, but a JUMP/SYNTHETIC edge may reach a row whose
  //    producer has not run yet, and that early read must see bottom;
  //  - ROOT's remaining placement rows: it is nobody's child (Eq. 9-10)
  //    and Pass 2 skips it by design, yet Pass 3 reads them and the
  //    exported result exposes them;
  //  - every row of a node outside preorder (ROOT-unreachable code,
  //    which the reference solvers leave at bottom).
  //
  // The other fields (STEAL..TAKE, GIVEN_in, GIVEN, RES_*) are written
  // by their own node's schedule step strictly before any read, so they
  // can stay uninitialized.
  //
  // A masked re-solve skips all of this: its arena arrives as a clone
  // of a converged solution, whose rows already satisfy every invariant
  // the preamble establishes (root placement rows and unreachable nodes
  // at bottom), and the no-jump gate its callers enforce removes the
  // only early reads that must see bottom rather than converged values.
  if (!Masks) {
    for (ArenaField F : {FTakenIn, FBlockLoc, FTakeLoc, FGiveLoc, FStealLoc,
                         FEagerGivenOut, FLazyGivenOut})
      for (unsigned Id = 0; Id != N; ++Id)
        rowZero(row(F, Id), W);
    for (ArenaField F :
         {FEagerGivenIn, FEagerGiven, FLazyGivenIn, FLazyGiven})
      rowZero(row(F, Ifg.root()), W);
    if (Pre.size() != N) {
      std::vector<char> Reached(N, 0);
      for (NodeId Id : Pre)
        Reached[Id] = 1;
      for (unsigned Id = 0; Id != N; ++Id)
        if (!Reached[Id])
          for (unsigned F = 0; F != NumArenaFields; ++F)
            rowZero(row(static_cast<ArenaField>(F), Id), W);
    }
  }

  RowList EntryBlockLoc, EntryTakenIn, EntryTakeLoc, FjsTakenIn, FwdBlockLoc,
      EfTakeLoc, FjPredGiveLoc, FjPredStealLoc, SynPredStealLoc,
      FjPredGivenOut, FjSuccGivenIn;

  //===------------------------------------------------------------------===//
  // Pass 1 (REVERSEPREORDER): S2 for the children of n, then S1(n).
  //===------------------------------------------------------------------===//
  for (auto It = Pre.rbegin(), E = Pre.rend(); It != E; ++It) {
    NodeId Node = *It;

    for (NodeId C : Ifg.children(Node)) {
      if (!RunS2(C))
        continue;
      if (Refine) {
        // Eq. 9-10 read the child's own Eq. 5-7 rows and its
        // FORWARD/JUMP/SYNTHETIC predecessors' S2 rows.
        bool Need = chg(FSteal, C) || chg(FGive, C) || chg(FTake, C);
        if (!Need)
          for (const IfgEdge &Edge : Ifg.preds(C))
            if (Edge.Type != ET::Entry && Edge.Type != ET::Cycle &&
                (chg(FStealLoc, Edge.Src) || chg(FGiveLoc, Edge.Src))) {
              Need = true;
              break;
            }
        if (!Need)
          continue;
      }
      markRan(C);
      FjPredGiveLoc.clear();
      FjPredStealLoc.clear();
      SynPredStealLoc.clear();
      for (const IfgEdge &Edge : Ifg.preds(C)) {
        if (Edge.Type == ET::Forward || Edge.Type == ET::Jump) {
          FjPredGiveLoc.push_back(row(FGiveLoc, Edge.Src));
          FjPredStealLoc.push_back(row(FStealLoc, Edge.Src));
        } else if (Edge.Type == ET::Synthetic) {
          SynPredStealLoc.push_back(row(FStealLoc, Edge.Src));
        }
      }
      // Eq. 10: STEAL_loc(c) = STEAL(c)
      //   u union_{p in PREDS^FJ} (STEAL_loc(p) - GIVE_loc(p))
      //   u union_{p in PREDS^S} STEAL_loc(p)
      // (S preds are jumped-out intervals left mid-flight: their
      // resupplies cannot be subtracted.)
      Word *CStealLoc = row(FStealLoc, C);
      SK.RowCopy(CStealLoc, row(FSteal, C), W);
      for (std::size_t I = 0, IE = FjPredStealLoc.size(); I != IE; ++I)
        SK.RowOrAndNot(CStealLoc, FjPredStealLoc[I], FjPredGiveLoc[I], W);
      for (const Word *S : SynPredStealLoc)
        SK.RowOr(CStealLoc, S, W);
      if (Refine)
        noteOutput(FStealLoc, C);

      // Eq. 9: GIVE_loc(c) =
      //   (GIVE(c) u TAKE(c) u meet_{p in PREDS^FJ} GIVE_loc(p))
      //   - STEAL(c)
      Word *CGiveLoc = row(FGiveLoc, C);
      gatherMeet(SK, CGiveLoc, FjPredGiveLoc, W);
      SK.FuseGiveLoc(W, CGiveLoc, row(FGive, C), row(FTake, C),
                     row(FSteal, C));
      if (Refine)
        noteOutput(FGiveLoc, C);
    }

    if (!RunS1(Node))
      continue;
    if (Refine) {
      // Eq. 1-8 read the node's init rows, its non-CYCLE successors'
      // TAKEN_in/BLOCK_loc/TAKE_loc rows, and (for a header) the last
      // child's S2 rows.
      bool Need = (*Masks->ChangedInit)[Node] != 0;
      if (!Need)
        for (const IfgEdge &Edge : Ifg.succs(Node))
          if (Edge.Type != ET::Cycle &&
              (chg(FTakenIn, Edge.Dst) || chg(FBlockLoc, Edge.Dst) ||
               chg(FTakeLoc, Edge.Dst))) {
            Need = true;
            break;
          }
      if (!Need && Ifg.isHeader(Node) && Ifg.lastChild(Node) != InvalidNode)
        Need = chg(FStealLoc, Ifg.lastChild(Node)) ||
               chg(FGiveLoc, Ifg.lastChild(Node));
      if (!Need)
        continue;
    }
    markRan(Node);
    EntryBlockLoc.clear();
    EntryTakenIn.clear();
    EntryTakeLoc.clear();
    FjsTakenIn.clear();
    FwdBlockLoc.clear();
    EfTakeLoc.clear();
    for (const IfgEdge &Edge : Ifg.succs(Node)) {
      switch (Edge.Type) {
      case ET::Entry:
        EntryBlockLoc.push_back(row(FBlockLoc, Edge.Dst));
        EntryTakenIn.push_back(row(FTakenIn, Edge.Dst));
        EntryTakeLoc.push_back(row(FTakeLoc, Edge.Dst));
        EfTakeLoc.push_back(row(FTakeLoc, Edge.Dst));
        break;
      case ET::Forward:
        FjsTakenIn.push_back(row(FTakenIn, Edge.Dst));
        FwdBlockLoc.push_back(row(FBlockLoc, Edge.Dst));
        EfTakeLoc.push_back(row(FTakeLoc, Edge.Dst));
        break;
      case ET::Jump:
      case ET::Synthetic:
        FjsTakenIn.push_back(row(FTakenIn, Edge.Dst));
        break;
      case ET::Cycle:
        break;
      }
    }

    // Eq. 1 / Eq. 2 header summaries: NoHoist headers keep the STEAL
    // summary (it only blocks) but drop the GIVE summary — production
    // inside a loop that may run zero times must not count as available
    // past it.
    const Word *SumSteal = ZeroRow;
    const Word *SumGive = ZeroRow;
    if (Ifg.isHeader(Node) && Ifg.lastChild(Node) != InvalidNode) {
      SumSteal = row(FStealLoc, Ifg.lastChild(Node));
      if (!NoHoist[Node])
        SumGive = row(FGiveLoc, Ifg.lastChild(Node));
    }
    const bool Hoistable = !NoHoist[Node];

    // Edge gathers as plain row sweeps; Eq. 4's meet lands straight in
    // the TAKEN_out row. NoHoist headers ignore the loop-body TAKE
    // contributions (Section 5.3's per-header alternative to STEAL_init
    // poisoning), expressed as zero rows so fuseS1 stays branch-free.
    Word *RTakenOut = row(FTakenOut, Node);
    gatherMeet(SK, RTakenOut, FjsTakenIn, W);
    gatherUnion(SK, SEntryBlock, EntryBlockLoc, W);
    gatherUnion(SK, SFwdBlock, FwdBlockLoc, W);
    gatherUnion(SK, SEfTake, EfTakeLoc, W);
    const Word *EntryTaken = ZeroRow;
    const Word *EntryTake = ZeroRow;
    if (Hoistable) {
      gatherUnion(SK, SEntryTaken, EntryTakenIn, W);
      gatherUnion(SK, SEntryTake, EntryTakeLoc, W);
      EntryTaken = SEntryTaken;
      EntryTake = SEntryTake;
    }

    SK.FuseS1(W, P.StealInit[Node].words() + WordOff,
              P.GiveInit[Node].words() + WordOff,
              P.TakeInit[Node].words() + WordOff, SumSteal, SumGive,
              SEntryBlock, EntryTaken, EntryTake, SFwdBlock, SEfTake,
              Hoistable ? ~Word(0) : Word(0), RTakenOut, row(FSteal, Node),
              row(FGive, Node), row(FBlock, Node), row(FTake, Node),
              row(FTakenIn, Node), row(FBlockLoc, Node), row(FTakeLoc, Node));
    if (Refine)
      for (ArenaField F : {FTakenOut, FSteal, FGive, FBlock, FTake, FTakenIn,
                           FBlockLoc, FTakeLoc})
        noteOutput(F, Node);
  }

  //===------------------------------------------------------------------===//
  // Pass 2 (PREORDER): S3 — Eq. 11-13 for EAGER and LAZY. ROOT's
  // placement variables stay at bottom so production is assigned to real
  // program nodes (the paper excludes ROOT from its worked example).
  //===------------------------------------------------------------------===//
  for (NodeId Node : Pre) {
    if (Node == Ifg.root() || !RunS3(Node))
      continue;
    const NodeId Header = Ifg.headerOf(Node);
    const bool FromHeader = Header != InvalidNode && !NoHoist[Header];
    if (Refine) {
      // Eq. 11-13 read the node's own Eq. 3-7 rows, the (hoistable)
      // header's Eq. 2 summary and Eq. 12 rows, and the FORWARD/JUMP
      // predecessors' Eq. 13 rows, for both urgencies. ROOT's Eq. 12
      // rows are pinned at bottom (Pass 2 skips it), so their flags
      // stay clear and top-level siblings only rekindle on a changed
      // ROOT STEAL summary.
      bool Need = chg(FTakenIn, Node) || chg(FTake, Node) ||
                  chg(FGive, Node) || chg(FSteal, Node);
      if (!Need && FromHeader)
        Need = chg(FSteal, Header) || chg(FEagerGiven, Header) ||
               chg(FLazyGiven, Header);
      if (!Need)
        for (const IfgEdge &Edge : Ifg.preds(Node))
          if ((Edge.Type == ET::Forward || Edge.Type == ET::Jump) &&
              (chg(FEagerGivenOut, Edge.Src) ||
               chg(FLazyGivenOut, Edge.Src))) {
            Need = true;
            break;
          }
      if (!Need)
        continue;
    }
    markRan(Node);
    const Word *HdrSteal = FromHeader ? row(FSteal, Header) : ZeroRow;
    const Word *NTakenIn = row(FTakenIn, Node);
    const Word *NTake = row(FTake, Node);
    const Word *NGive = row(FGive, Node);
    const Word *NSteal = row(FSteal, Node);

    for (Urgency Urg : {Urgency::Eager, Urgency::Lazy}) {
      const bool Eager = Urg == Urgency::Eager;
      const ArenaField GivenInF = Eager ? FEagerGivenIn : FLazyGivenIn;
      const ArenaField GivenF = Eager ? FEagerGiven : FLazyGiven;
      const ArenaField GivenOutF = Eager ? FEagerGivenOut : FLazyGivenOut;

      FjPredGivenOut.clear();
      for (const IfgEdge &Edge : Ifg.preds(Node))
        if (Edge.Type == ET::Forward || Edge.Type == ET::Jump)
          FjPredGivenOut.push_back(row(GivenOutF, Edge.Src));
      const Word *HdrGiven = FromHeader ? row(GivenF, Header) : ZeroRow;

      // Predecessor meet lands straight in the GIVEN_in row, the union
      // in scratch; fuseS3 finishes Eq. 11-13 in one sweep.
      Word *RGivenIn = row(GivenInF, Node);
      gatherMeet(SK, RGivenIn, FjPredGivenOut, W);
      gatherUnion(SK, SPredUnion, FjPredGivenOut, W);
      SK.FuseS3(W, RGivenIn, SPredUnion, HdrGiven, HdrSteal, NTakenIn,
                Eager ? NTakenIn : NTake, NGive, NSteal, row(GivenF, Node),
                row(GivenOutF, Node));
      if (Refine)
        for (ArenaField F : {GivenInF, GivenF, GivenOutF})
          noteOutput(F, Node);
    }
  }

  //===------------------------------------------------------------------===//
  // Pass 3 (any order): S4 — Eq. 14-15.
  //===------------------------------------------------------------------===//
  for (NodeId Node : Pre) {
    if (!RunS4(Node))
      continue;
    if (Refine) {
      // Eq. 14-15 read the node's own placement rows and the
      // FORWARD/JUMP successors' GIVEN_in rows; nothing reads RES_in /
      // RES_out downstream, so their flags are never recorded.
      bool Need = chg(FEagerGivenIn, Node) || chg(FEagerGiven, Node) ||
                  chg(FEagerGivenOut, Node) || chg(FLazyGivenIn, Node) ||
                  chg(FLazyGiven, Node) || chg(FLazyGivenOut, Node);
      if (!Need)
        for (const IfgEdge &Edge : Ifg.succs(Node))
          if ((Edge.Type == ET::Forward || Edge.Type == ET::Jump) &&
              (chg(FEagerGivenIn, Edge.Dst) || chg(FLazyGivenIn, Edge.Dst))) {
            Need = true;
            break;
          }
      if (!Need)
        continue;
    }
    markRan(Node);
    for (unsigned PlIdx = 0; PlIdx != 2; ++PlIdx) {
      const bool Eager = PlIdx == 0;
      const ArenaField GivenInF = Eager ? FEagerGivenIn : FLazyGivenIn;
      const Word *RGivenIn = row(GivenInF, Node);
      const Word *RGiven = row(Eager ? FEagerGiven : FLazyGiven, Node);
      const Word *RGivenOut =
          row(Eager ? FEagerGivenOut : FLazyGivenOut, Node);
      Word *RResIn = row(Eager ? FEagerResIn : FLazyResIn, Node);
      Word *RResOut = row(Eager ? FEagerResOut : FLazyResOut, Node);

      FjSuccGivenIn.clear();
      for (const IfgEdge &Edge : Ifg.succs(Node))
        if (Edge.Type == ET::Forward || Edge.Type == ET::Jump)
          FjSuccGivenIn.push_back(row(GivenInF, Edge.Dst));

      // Eq. 15's successor union lands straight in the RES_out row;
      // fuseS4 finishes Eq. 14-15.
      gatherUnion(SK, RResOut, FjSuccGivenIn, W);
      Word AnyOut = SK.FuseS4(W, FlipEq14, RGiven, RGivenIn, RGivenOut,
                              RResIn, RResOut);
      (void)AnyOut;

      // The paper's no-critical-edge argument (Section 4.5) implies exit
      // production only lands on single-successor nodes.  JUMP edges are
      // the one exception: a jump source keeps both its fall-through and
      // its jump successor (normalization never splits jump edges), so
      // the argument does not apply there; Section 5.3's header poisoning
      // keeps such placements balanced instead.
      assert((AnyOut == 0 || Ifg.succs(Node).size() == 1 ||
              std::any_of(Ifg.succs(Node).begin(), Ifg.succs(Node).end(),
                          [](const IfgEdge &Edge) {
                            return Edge.Type == EdgeType::Jump;
                          })) &&
             "RES_out on a multi-successor non-jump node");
    }
  }
}

/// Solves words [\p W0, \p W1) of the universe in one evaluator pass.
/// (Splitting the range into cache-sized chunks was measured and
/// rejected: the per-pass graph walk and edge-list assembly repeated
/// per chunk cost roughly 2x more than the locality it bought, because
/// each schedule step already streams the arena linearly.)
void solveRange(const IntervalFlowGraph &Ifg, const GntProblem &P,
                DataflowMatrix &M, unsigned W0, unsigned W1) {
  solveIntoArena(Ifg, P, M, W0, W1 - W0);
}

/// Exposes the arena as the GntResult's BitVector fields. No words are
/// copied: every field vector borrows its rows, and the result keeps
/// the arena alive through its Arena handle. The forEachGntField
/// enumeration order matches the ArenaField layout.
GntResult exportArena(std::shared_ptr<DataflowMatrix> M, unsigned NumNodes) {
  // Bottom-row contract: every row an Uninit writer produced must honor
  // the tail-word invariant before it is borrowed into BitVectors. The
  // Debug 0xA5 poison makes a never-written row trip this whenever the
  // universe is not a word multiple.
  assert(M->rowsExportable() &&
         "arena row exported with bits past the universe "
         "(Uninit writer broke the bottom-row contract)");
  GntResult R;
  const unsigned Bits = M->bits();
  unsigned Field = 0;
  forEachGntField(R, [&](const char *, std::vector<BitVector> &V) {
    V.reserve(NumNodes);
    for (unsigned Id = 0; Id != NumNodes; ++Id)
      V.push_back(
          BitVector::borrowWords(M->row(Field * NumNodes + Id), Bits));
    ++Field;
  });
  assert(Field == NumArenaFields && "field enumeration out of sync");
  R.Arena = std::move(M);
  return R;
}

} // namespace

void gnt::detail::resolveArenaMasked(const IntervalFlowGraph &Ifg,
                                     const GntProblem &P, DataflowMatrix &M,
                                     const ArenaSolveMasks &Masks) {
  assert(Masks.S1 && Masks.S2 && Masks.S3 && Masks.S4 &&
         "masked re-solve needs all four step masks");
  assert(M.rows() == NumArenaFields * Ifg.size() &&
         "arena not laid out for this graph");
  solveIntoArena(Ifg, P, M, 0, M.wordsPerRow(), &Masks);
}

GntResult gnt::detail::exportGntArena(std::shared_ptr<DataflowMatrix> M,
                                      unsigned NumNodes) {
  return exportArena(std::move(M), NumNodes);
}

GntResult gnt::solveGiveNTake(const IntervalFlowGraph &Ifg,
                              const GntProblem &P) {
  const unsigned N = Ifg.size();
  assert(P.TakeInit.size() == N && P.GiveInit.size() == N &&
         P.StealInit.size() == N && "problem not sized to the graph");

  auto M = std::make_shared<DataflowMatrix>(NumArenaFields * N,
                                            P.UniverseSize,
                                            DataflowMatrix::Uninit);
  solveRange(Ifg, P, *M, 0, M->wordsPerRow());
  return exportArena(std::move(M), N);
}

//===----------------------------------------------------------------------===//
// Item-sharded solve
//===----------------------------------------------------------------------===//

GntShardPolicy gnt::defaultShardPolicy() {
  // Read the environment once per process: the policy must be stable
  // for the lifetime of a service, not flip between requests.
  static const GntShardPolicy Policy = [] {
    GntShardPolicy P;
    if (const char *Mode = std::getenv("GNT_SHARD_MODE"))
      P.WorkStealing = std::string_view(Mode) == "steal";
    return P;
  }();
  return Policy;
}

GntResult gnt::solveGiveNTakeSharded(const IntervalFlowGraph &Ifg,
                                     const GntProblem &P, unsigned Shards,
                                     ThreadPool &Pool) {
  const unsigned N = Ifg.size();
  const unsigned TotalWords = (P.UniverseSize + BitVector::WordBits - 1) /
                              BitVector::WordBits;
  if (Shards <= 1 || TotalWords <= 1)
    return solveGiveNTake(Ifg, P);
  Shards = std::min(Shards, TotalWords);
  assert(P.TakeInit.size() == N && P.GiveInit.size() == N &&
         P.StealInit.size() == N && "problem not sized to the graph");

  // Workers solve disjoint word ranges of one shared arena. Because no
  // equation crosses word lanes, each range's words come out exactly as
  // the serial solve computes them — byte-identity for every shard
  // count, with no slicing or stitching step at all. Writes are to
  // disjoint addresses and the pool's wait() orders them before the
  // export below.
  auto M = std::make_shared<DataflowMatrix>(NumArenaFields * N,
                                            P.UniverseSize,
                                            DataflowMatrix::Uninit);
  for (unsigned S = 0; S != Shards; ++S) {
    const unsigned A = static_cast<unsigned>(
        static_cast<std::uint64_t>(TotalWords) * S / Shards);
    const unsigned B = static_cast<unsigned>(
        static_cast<std::uint64_t>(TotalWords) * (S + 1) / Shards);
    Pool.submit([&Ifg, &P, &M, A, B] { solveRange(Ifg, P, *M, A, B); });
  }
  Pool.wait();
  return exportArena(std::move(M), N);
}

GntResult gnt::solveGiveNTakeSharded(const IntervalFlowGraph &Ifg,
                                     const GntProblem &P, unsigned Shards,
                                     const GntShardPolicy &Policy) {
  const unsigned N = Ifg.size();
  const unsigned TotalWords = (P.UniverseSize + BitVector::WordBits - 1) /
                              BitVector::WordBits;
  if (Shards <= 1 || TotalWords <= 1)
    return solveGiveNTake(Ifg, P);
  Shards = std::min(Shards, TotalWords);
  assert(P.TakeInit.size() == N && P.GiveInit.size() == N &&
         P.StealInit.size() == N && "problem not sized to the graph");

  unsigned Hardware = std::thread::hardware_concurrency();
  if (Hardware == 0)
    Hardware = 1;
  const unsigned Workers = std::min({Shards, TotalWords, Hardware});

  // Static mode splits the words into exactly Shards windows — the
  // historical partition, one chunk per shard. Stealing mode oversplits
  // (Oversplit chunks per shard) so that when word cost is skewed —
  // e.g. a compressed problem whose hot classes cluster in a few words
  // — idle workers can take chunks from the loaded ones. Either way the
  // chunks are disjoint word windows of one shared arena, and every
  // word is computed by the same sweep over the same inputs regardless
  // of which worker runs it or when: any schedule is byte-identical to
  // the serial solve.
  const unsigned Parts =
      Policy.WorkStealing ? Shards * std::max(Policy.Oversplit, 1u) : Shards;
  const std::vector<WorkChunk> Chunks = splitRange(TotalWords, Parts);

  auto M = std::make_shared<DataflowMatrix>(NumArenaFields * N,
                                            P.UniverseSize,
                                            DataflowMatrix::Uninit);
  runChunks(Chunks, Workers, Policy.NumaPinning, [&](WorkChunk C) {
    solveRange(Ifg, P, *M, C.Begin, C.End);
  });
  return exportArena(std::move(M), N);
}

GntResult gnt::solveGiveNTakeSharded(const IntervalFlowGraph &Ifg,
                                     const GntProblem &P, unsigned Shards) {
  return solveGiveNTakeSharded(Ifg, P, Shards, defaultShardPolicy());
}

//===----------------------------------------------------------------------===//
// Universe-compressed solve
//===----------------------------------------------------------------------===//

GntResult gnt::solveGiveNTakeCompressed(const IntervalFlowGraph &Ifg,
                                        const GntProblem &P, unsigned Shards,
                                        const GntShardPolicy *PolicyPtr) {
  const GntShardPolicy Policy = PolicyPtr ? *PolicyPtr : defaultShardPolicy();
  const unsigned N = Ifg.size();
  assert(P.TakeInit.size() == N && P.GiveInit.size() == N &&
         P.StealInit.size() == N && "problem not sized to the graph");

  // Abort the partition as soon as the live class count proves the
  // input unprofitable (the threshold mirrors profitable()): on
  // incompressible inputs this caps the compression attempt at a
  // fraction of one init sweep instead of a full refinement.
  const unsigned AbortAbove = P.UniverseSize / 4;
  const ItemClasses Classes = computeItemClasses(
      P.UniverseSize, P.TakeInit, P.GiveInit, P.StealInit, AbortAbove);
  GntCompressionStats Stats;
  Stats.Universe = P.UniverseSize;
  Stats.Classes = Classes.NumClasses;
  Stats.Elided = Classes.elided();

  // Two profitability conditions, both required: the partition must
  // shrink the universe at least 4x (the class-count gate, checked
  // first so incompressible inputs pay only the partition probe), and
  // the expansion plan must not be shattered — more segments than
  // destination words means the per-row reconstruction degenerates
  // toward a per-bit scatter (universes whose duplicate columns are
  // interleaved with many distinct ones fragment this way), at which
  // point expansion eats the narrower-sweep win.
  const unsigned DstWords = (P.UniverseSize + BitVector::WordBits - 1) /
                            BitVector::WordBits;
  auto Fallback = [&] {
    GntResult R = Shards > 1 ? solveGiveNTakeSharded(Ifg, P, Shards, Policy)
                             : solveGiveNTake(Ifg, P);
    R.Compression = Stats;
    return R;
  };
  if (!Classes.profitable())
    return Fallback();
  const std::vector<ExpandSeg> Plan = buildExpandPlan(Classes);
  if (Plan.size() > DstWords)
    return Fallback();
  Stats.Applied = true;

  // Every item is trivially bottom: the whole solution is the zero
  // matrix, no solve needed — and lazily zeroed, no memory touched.
  if (Classes.NumClasses == 0) {
    auto M = std::make_shared<DataflowMatrix>(NumArenaFields * N,
                                              P.UniverseSize,
                                              DataflowMatrix::LazyZeroed);
    GntResult R = exportArena(std::move(M), N);
    R.Compression = Stats;
    return R;
  }

  // Compressed problem: one bit per class. Reading each class's bit
  // from the column of one member through the cover plan is sound
  // precisely because items in a class have *identical* columns, and
  // keeps compression at word granularity — a handful of word-run
  // reads per row instead of a per-bit scatter.
  const std::vector<ExpandSeg> Cover = buildCoverPlan(Plan);
  GntProblem CP(N, Classes.NumClasses, P.Dir);
  CP.NoHoistHeaders = P.NoHoistHeaders;
  auto CompressRows = [&](const std::vector<BitVector> &Full,
                          std::vector<BitVector> &Narrow) {
    for (unsigned Id = 0; Id != N; ++Id) {
      const BitVector::Word *Src = Full[Id].words();
      BitVector::Word *Dst = Narrow[Id].wordsData();
      for (const ExpandSeg &Seg : Cover)
        orCopyBits(Dst, Seg.SrcBit, Src, Seg.DstBit, Seg.Len);
    }
  };
  CompressRows(P.TakeInit, CP.TakeInit);
  CompressRows(P.GiveInit, CP.GiveInit);
  CompressRows(P.StealInit, CP.StealInit);

  // Solve the narrow problem with the existing arena/sharded machinery;
  // its (small) arena is only an intermediate here.
  GntResult Narrow = Shards > 1 ? solveGiveNTakeSharded(Ifg, CP, Shards, Policy)
                                : solveGiveNTake(Ifg, CP);
  const auto *MC = static_cast<const DataflowMatrix *>(Narrow.Arena.get());
  assert(MC && "arena solver always exports an arena");

  // Expand all 20 variables back to the full universe, tiling every
  // destination word of an uninitialized arena exactly once (segments
  // plus the gaps between them — no memset-then-OR double pass). When
  // every segment boundary is word-aligned the plan compiles to a
  // straight-line whole-word program, which keeps the hot loop at bare
  // copies and memsets; otherwise the bit-granular expandRow handles
  // the general case. The expanded matrix honors the same borrowWords
  // export contract as a direct solve.
  const unsigned SrcWords = MC->wordsPerRow();
  const std::vector<ExpandWordOp> WordProg =
      compileExpandWordPlan(Plan, DstWords);
  auto ME = std::make_shared<DataflowMatrix>(NumArenaFields * N,
                                             P.UniverseSize,
                                             DataflowMatrix::Uninit);
  const unsigned NumRows = NumArenaFields * N;
  const SolverKernels &SK = solverKernels();
  auto ExpandRows = [&](unsigned Lo, unsigned Hi) {
    if (!WordProg.empty()) {
      for (unsigned Row = Lo; Row != Hi; ++Row)
        SK.ExpandRowWords(ME->row(Row), DstWords, MC->row(Row), SrcWords,
                          WordProg.data(), WordProg.size());
    } else {
      for (unsigned Row = Lo; Row != Hi; ++Row)
        expandRow(ME->row(Row), DstWords, MC->row(Row), SrcWords, Plan);
    }
  };
  // Expansion cost is *skewed* by construction — an all-zero source row
  // degrades to one memset while a dense row pays the full segment
  // program — so this is where work stealing (oversplit row chunks,
  // idle workers raiding loaded deques) earns its keep over static
  // windows. Rows are disjoint, so any schedule is byte-identical.
  if (Shards > 1 && NumRows > 1) {
    unsigned Hardware = std::thread::hardware_concurrency();
    if (Hardware == 0)
      Hardware = 1;
    const unsigned Workers = std::min({Shards, NumRows, Hardware});
    const unsigned Parts = Policy.WorkStealing
                               ? Shards * std::max(Policy.Oversplit, 1u)
                               : Shards;
    runChunks(splitRange(NumRows, Parts), Workers, Policy.NumaPinning,
              [&](WorkChunk C) { ExpandRows(C.Begin, C.End); });
  } else {
    ExpandRows(0, NumRows);
  }

  GntResult R = exportArena(std::move(ME), N);
  R.Compression = Stats;
  return R;
}

//===----------------------------------------------------------------------===//
// Oriented driver
//===----------------------------------------------------------------------===//

GntRun gnt::runGiveNTake(const IntervalFlowGraph &Forward, const GntProblem &P,
                         unsigned SolverShards, bool CompressUniverse) {
  GntRun Run;
  Run.OrientedProblem = P;
  if (P.Dir == Direction::Before) {
    Run.OrientedIfg = Forward;
  } else {
    Run.OrientedIfg = Forward.reversed();
    // Section 5.3: reversed JUMP edges would enter loops mid-body, so
    // every interval a jump leaves must not hoist production.
    for (NodeId H : Forward.jumpPoisonedHeaders())
      Run.OrientedProblem.StealInit[H].set();
  }
  // Compression partitions the *oriented* problem — after the poisoning
  // above — so the full-set STEAL rows it may introduce are part of the
  // columns being classed, which is what makes eliding sound here.
  if (CompressUniverse)
    Run.Result = solveGiveNTakeCompressed(Run.OrientedIfg,
                                          Run.OrientedProblem, SolverShards);
  else
    Run.Result = SolverShards > 1
                     ? solveGiveNTakeSharded(Run.OrientedIfg,
                                             Run.OrientedProblem, SolverShards)
                     : solveGiveNTake(Run.OrientedIfg, Run.OrientedProblem);
  return Run;
}
