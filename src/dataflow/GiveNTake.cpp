//===- dataflow/GiveNTake.cpp - The GIVE-N-TAKE framework -------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Implements the equations of the paper's Figure 13 with the evaluation
/// schedule of Figure 15. The schedule's ordering constraints (Section
/// 5.1) are met as follows:
///
///  - S1 (Eq. 1-8) is evaluated in REVERSEPREORDER, i.e. BACKWARD (every
///    FORWARD/JUMP successor first) and UPWARD (interval members before
///    their headers);
///  - S2 (Eq. 9-10) for the children of n runs in per-interval FORWARD
///    order, interleaved just before S1(n);
///  - S3 (Eq. 11-13) runs in PREORDER;
///  - S4 (Eq. 14-15) is order-free.
///
/// Each equation reads only variables that an earlier step fully
/// computed, so one evaluation per node per equation reaches the fixed
/// point (the framework is "fast" in the Graham/Wegman sense).
///
//===----------------------------------------------------------------------===//

#include "dataflow/GiveNTake.h"

#include <algorithm>

#include "support/Support.h"

using namespace gnt;

namespace {

/// Union of \p Var over the \p Types-typed successors of \p N.
BitVector unionSuccs(const IntervalFlowGraph &Ifg,
                     const std::vector<BitVector> &Var, NodeId N,
                     std::initializer_list<EdgeType> Types, unsigned U) {
  BitVector R(U);
  for (const IfgEdge &E : Ifg.succs(N))
    for (EdgeType T : Types)
      if (E.Type == T) {
        R |= Var[E.Dst];
        break;
      }
  return R;
}

/// Intersection of \p Var over the \p Types-typed successors of \p N;
/// yields bottom (the empty set) if there are no such successors, as
/// Section 4 specifies.
BitVector meetSuccs(const IntervalFlowGraph &Ifg,
                    const std::vector<BitVector> &Var, NodeId N,
                    std::initializer_list<EdgeType> Types, unsigned U) {
  BitVector R(U);
  bool First = true;
  for (const IfgEdge &E : Ifg.succs(N))
    for (EdgeType T : Types)
      if (E.Type == T) {
        if (First) {
          R = Var[E.Dst];
          First = false;
        } else {
          R &= Var[E.Dst];
        }
        break;
      }
  return R;
}

BitVector unionPreds(const IntervalFlowGraph &Ifg,
                     const std::vector<BitVector> &Var, NodeId N,
                     std::initializer_list<EdgeType> Types, unsigned U) {
  BitVector R(U);
  for (const IfgEdge &E : Ifg.preds(N))
    for (EdgeType T : Types)
      if (E.Type == T) {
        R |= Var[E.Src];
        break;
      }
  return R;
}

BitVector meetPreds(const IntervalFlowGraph &Ifg,
                    const std::vector<BitVector> &Var, NodeId N,
                    std::initializer_list<EdgeType> Types, unsigned U) {
  BitVector R(U);
  bool First = true;
  for (const IfgEdge &E : Ifg.preds(N))
    for (EdgeType T : Types)
      if (E.Type == T) {
        if (First) {
          R = Var[E.Src];
          First = false;
        } else {
          R &= Var[E.Src];
        }
        break;
      }
  return R;
}

} // namespace

GntResult gnt::solveGiveNTake(const IntervalFlowGraph &Ifg,
                              const GntProblem &P) {
  const unsigned N = Ifg.size();
  const unsigned U = P.UniverseSize;
  assert(P.TakeInit.size() == N && P.GiveInit.size() == N &&
         P.StealInit.size() == N && "problem not sized to the graph");

  GntResult R;
  auto alloc = [&](std::vector<BitVector> &V) {
    V.assign(N, BitVector(U));
  };
  alloc(R.Steal);
  alloc(R.Give);
  alloc(R.Block);
  alloc(R.TakenOut);
  alloc(R.Take);
  alloc(R.TakenIn);
  alloc(R.BlockLoc);
  alloc(R.TakeLoc);
  alloc(R.GiveLoc);
  alloc(R.StealLoc);
  for (GntPlacement *Pl : {&R.Eager, &R.Lazy}) {
    alloc(Pl->GivenIn);
    alloc(Pl->Given);
    alloc(Pl->GivenOut);
    alloc(Pl->ResIn);
    alloc(Pl->ResOut);
  }

  using ET = EdgeType;
  const std::vector<NodeId> &Pre = Ifg.preorder();

  std::vector<char> NoHoist(N, 0);
  for (NodeId H : P.NoHoistHeaders)
    NoHoist[H] = 1;

  //===------------------------------------------------------------------===//
  // Pass 1 (REVERSEPREORDER): S2 for the children of n, then S1(n).
  //===------------------------------------------------------------------===//
  for (auto It = Pre.rbegin(), E = Pre.rend(); It != E; ++It) {
    NodeId Node = *It;

    for (NodeId C : Ifg.children(Node)) {
      // Eq. 9: GIVE_loc(c) =
      //   (GIVE(c) u TAKE(c) u meet_{p in PREDS^FJ} GIVE_loc(p)) - STEAL(c)
      BitVector GL = meetPreds(Ifg, R.GiveLoc, C, {ET::Forward, ET::Jump}, U);
      GL |= R.Give[C];
      GL |= R.Take[C];
      GL.reset(R.Steal[C]);
      R.GiveLoc[C] = std::move(GL);

      // Eq. 10: STEAL_loc(c) = STEAL(c)
      //   u union_{p in PREDS^FJ} (STEAL_loc(p) - GIVE_loc(p))
      //   u union_{p in PREDS^S} STEAL_loc(p)
      BitVector SL = R.Steal[C];
      for (const IfgEdge &Edge : Ifg.preds(C)) {
        if (Edge.Type == ET::Forward || Edge.Type == ET::Jump) {
          BitVector T = R.StealLoc[Edge.Src];
          T.reset(R.GiveLoc[Edge.Src]);
          SL |= T;
        } else if (Edge.Type == ET::Synthetic) {
          // The jumped-out interval may have been left mid-flight, so its
          // resupplies (GIVE_loc) cannot be subtracted.
          SL |= R.StealLoc[Edge.Src];
        }
      }
      R.StealLoc[C] = std::move(SL);
    }

    // Eq. 1 / Eq. 2: fold the interval summary of the last child into the
    // header's own effects. NoHoist headers keep the STEAL summary (it
    // only blocks) but drop the GIVE summary: production inside a loop
    // that may run zero times must not count as available past it.
    R.Steal[Node] = P.StealInit[Node];
    R.Give[Node] = P.GiveInit[Node];
    if (Ifg.isHeader(Node) && Ifg.lastChild(Node) != InvalidNode) {
      R.Steal[Node] |= R.StealLoc[Ifg.lastChild(Node)];
      if (!NoHoist[Node])
        R.Give[Node] |= R.GiveLoc[Ifg.lastChild(Node)];
    }

    // Eq. 3: BLOCK(n) = STEAL(n) u GIVE(n) u union_{s in SUCCS^E} BLOCK_loc(s)
    R.Block[Node] = unionSuccs(Ifg, R.BlockLoc, Node, {ET::Entry}, U);
    R.Block[Node] |= R.Steal[Node];
    R.Block[Node] |= R.Give[Node];

    // Eq. 4: TAKEN_out(n) = meet_{s in SUCCS^FJS} TAKEN_in(s)
    R.TakenOut[Node] = meetSuccs(Ifg, R.TakenIn, Node,
                                 {ET::Forward, ET::Jump, ET::Synthetic}, U);

    // Eq. 5: TAKE(n) = TAKE_init(n)
    //   u (union_{s in SUCCS^E} TAKEN_in(s) - STEAL(n))
    //   u ((TAKEN_out(n) n union_{s in SUCCS^E} TAKE_loc(s)) - BLOCK(n))
    // For NoHoist headers the loop-body contributions are ignored
    // (Section 5.3's per-header alternative to STEAL_init poisoning).
    R.Take[Node] = P.TakeInit[Node];
    if (!NoHoist[Node]) {
      BitVector Hoisted = unionSuccs(Ifg, R.TakenIn, Node, {ET::Entry}, U);
      Hoisted.reset(R.Steal[Node]);
      BitVector Maybe = unionSuccs(Ifg, R.TakeLoc, Node, {ET::Entry}, U);
      Maybe &= R.TakenOut[Node];
      Maybe.reset(R.Block[Node]);
      R.Take[Node] |= Hoisted;
      R.Take[Node] |= Maybe;
    }

    // Eq. 6: TAKEN_in(n) = TAKE(n) u (TAKEN_out(n) - BLOCK(n)).
    // NoHoist headers are analysis barriers in this direction too:
    // consumption after the loop must not pull production above it, or
    // paths jumping out of the loop would see unbalanced productions.
    if (NoHoist[Node]) {
      R.TakenIn[Node] = R.Take[Node];
    } else {
      BitVector T = R.TakenOut[Node];
      T.reset(R.Block[Node]);
      T |= R.Take[Node];
      R.TakenIn[Node] = std::move(T);
    }

    // Eq. 7: BLOCK_loc(n) = (BLOCK(n) u union_{s in SUCCS^F} BLOCK_loc(s))
    //   - TAKE(n)
    {
      BitVector B = unionSuccs(Ifg, R.BlockLoc, Node, {ET::Forward}, U);
      B |= R.Block[Node];
      B.reset(R.Take[Node]);
      R.BlockLoc[Node] = std::move(B);
    }

    // Eq. 8: TAKE_loc(n) = TAKE(n)
    //   u (union_{s in SUCCS^EF} TAKE_loc(s) - BLOCK(n))
    {
      BitVector T = unionSuccs(Ifg, R.TakeLoc, Node, {ET::Entry, ET::Forward},
                               U);
      T.reset(R.Block[Node]);
      T |= R.Take[Node];
      R.TakeLoc[Node] = std::move(T);
    }
  }

  //===------------------------------------------------------------------===//
  // Pass 2 (PREORDER): S3 — Eq. 11-13 for EAGER and LAZY. ROOT's
  // placement variables stay at bottom so production is assigned to real
  // program nodes (the paper excludes ROOT from its worked example).
  //===------------------------------------------------------------------===//
  for (NodeId Node : Pre) {
    if (Node == Ifg.root())
      continue;
    for (Urgency Urg : {Urgency::Eager, Urgency::Lazy}) {
      GntPlacement &Pl = Urg == Urgency::Eager ? R.Eager : R.Lazy;

      // Eq. 11: GIVEN_in(n) = GIVEN(HEADER(n))
      //   u meet_{p in PREDS^FJ} GIVEN_out(p)
      //   u (TAKEN_in(n) n union_{q in PREDS^FJ} GIVEN_out(q))
      //
      // Soundness refinement over the paper's literal equation: the
      // in-flow from the header subtracts the loop's STEAL summary. An
      // item stolen somewhere in the body is not guaranteed at the body
      // top on iterations after the first, so consumers inside must
      // re-produce it (the literal GIVEN(HEADER) term would let a
      // pre-loop production cover every iteration).
      // NoHoist headers are fully opaque: availability does not flow
      // into the body at all, so in-loop consumers get per-iteration
      // production pairs in both solutions (keeping C1 balance).
      BitVector In =
          meetPreds(Ifg, Pl.GivenOut, Node, {ET::Forward, ET::Jump}, U);
      if (Ifg.headerOf(Node) != InvalidNode &&
          !NoHoist[Ifg.headerOf(Node)]) {
        BitVector FromHeader = Pl.Given[Ifg.headerOf(Node)];
        FromHeader.reset(R.Steal[Ifg.headerOf(Node)]);
        In |= FromHeader;
      }
      {
        BitVector Some =
            unionPreds(Ifg, Pl.GivenOut, Node, {ET::Forward, ET::Jump}, U);
        Some &= R.TakenIn[Node];
        In |= Some;
      }
      Pl.GivenIn[Node] = std::move(In);

      // Eq. 12: GIVEN(n) = GIVEN_in(n) u (EAGER ? TAKEN_in(n) : TAKE(n))
      Pl.Given[Node] = Pl.GivenIn[Node];
      Pl.Given[Node] |=
          Urg == Urgency::Eager ? R.TakenIn[Node] : R.Take[Node];

      // Eq. 13: GIVEN_out(n) = (GIVE(n) u GIVEN(n)) - STEAL(n)
      BitVector Out = R.Give[Node];
      Out |= Pl.Given[Node];
      Out.reset(R.Steal[Node]);
      Pl.GivenOut[Node] = std::move(Out);
    }
  }

  //===------------------------------------------------------------------===//
  // Pass 3 (any order): S4 — Eq. 14-15.
  //===------------------------------------------------------------------===//
  for (NodeId Node : Pre) {
    for (GntPlacement *Pl : {&R.Eager, &R.Lazy}) {
      // Eq. 14: RES_in(n) = GIVEN(n) - GIVEN_in(n)
      Pl->ResIn[Node] = Pl->Given[Node];
      Pl->ResIn[Node].reset(Pl->GivenIn[Node]);

      // Eq. 15: RES_out(n) = union_{s in SUCCS^FJ} GIVEN_in(s)
      //   - GIVEN_out(n)
      BitVector Out = unionSuccs(Ifg, Pl->GivenIn, Node,
                                 {ET::Forward, ET::Jump}, U);
      Out.reset(Pl->GivenOut[Node]);
      Pl->ResOut[Node] = std::move(Out);

      // The paper's no-critical-edge argument (Section 4.5) implies exit
      // production only lands on single-successor nodes.  JUMP edges are
      // the one exception: a jump source keeps both its fall-through and
      // its jump successor (normalization never splits jump edges), so
      // the argument does not apply there; Section 5.3's header poisoning
      // keeps such placements balanced instead.
      assert((Pl->ResOut[Node].none() || Ifg.succs(Node).size() == 1 ||
              std::any_of(Ifg.succs(Node).begin(), Ifg.succs(Node).end(),
                          [](const IfgEdge &E) {
                            return E.Type == EdgeType::Jump;
                          })) &&
             "RES_out on a multi-successor non-jump node");
    }
  }

  return R;
}

GntRun gnt::runGiveNTake(const IntervalFlowGraph &Forward,
                         const GntProblem &P) {
  GntRun Run;
  Run.OrientedProblem = P;
  if (P.Dir == Direction::Before) {
    Run.OrientedIfg = Forward;
  } else {
    Run.OrientedIfg = Forward.reversed();
    // Section 5.3: reversed JUMP edges would enter loops mid-body, so
    // every interval a jump leaves must not hoist production.
    for (NodeId H : Forward.jumpPoisonedHeaders())
      Run.OrientedProblem.StealInit[H].set();
  }
  Run.Result = solveGiveNTake(Run.OrientedIfg, Run.OrientedProblem);
  return Run;
}
