//===- dataflow/Dump.cpp - Human-readable solver state dumps -----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Dump.h"

#include "cfg/Cfg.h"
#include "support/Support.h"

#include <sstream>

using namespace gnt;

namespace {

std::string setToString(const BitVector &BV,
                        const std::vector<std::string> &Names) {
  std::vector<std::string> Parts;
  for (unsigned I : BV)
    Parts.push_back(I < Names.size() ? Names[I] : "item" + itostr(I));
  return "{" + join(Parts, ", ") + "}";
}

} // namespace

std::string gnt::dumpGntRun(const GntRun &Run, const Cfg &G,
                            const std::vector<std::string> &Names) {
  const IntervalFlowGraph &Ifg = Run.OrientedIfg;
  const GntProblem &P = Run.OrientedProblem;
  const GntResult &R = Run.Result;
  std::ostringstream OS;

  OS << "GIVE-N-TAKE run ("
     << (P.Dir == Direction::Before ? "BEFORE" : "AFTER") << " problem, "
     << (Ifg.isReversed() ? "reversed" : "forward") << " graph, "
     << P.UniverseSize << " items)\n";

  for (NodeId Node : Ifg.preorder()) {
    OS << "node " << describeNode(G, Node) << "  level "
       << Ifg.level(Node);
    if (Ifg.isHeader(Node))
      OS << "  header";
    OS << "\n";

    auto row = [&](const char *Name, const BitVector &BV) {
      if (BV.none())
        return;
      OS << "  " << Name << " = " << setToString(BV, Names) << "\n";
    };
    row("TAKE_init ", P.TakeInit[Node]);
    row("GIVE_init ", P.GiveInit[Node]);
    row("STEAL_init", P.StealInit[Node]);
    row("STEAL     ", R.Steal[Node]);
    row("GIVE      ", R.Give[Node]);
    row("BLOCK     ", R.Block[Node]);
    row("TAKEN_out ", R.TakenOut[Node]);
    row("TAKE      ", R.Take[Node]);
    row("TAKEN_in  ", R.TakenIn[Node]);
    row("BLOCK_loc ", R.BlockLoc[Node]);
    row("TAKE_loc  ", R.TakeLoc[Node]);
    row("GIVE_loc  ", R.GiveLoc[Node]);
    row("STEAL_loc ", R.StealLoc[Node]);
    row("GIVEN^e   ", R.Eager.Given[Node]);
    row("GIVEN^l   ", R.Lazy.Given[Node]);
    row("RES_in^e  ", R.Eager.ResIn[Node]);
    row("RES_out^e ", R.Eager.ResOut[Node]);
    row("RES_in^l  ", R.Lazy.ResIn[Node]);
    row("RES_out^l ", R.Lazy.ResOut[Node]);
  }
  return OS.str();
}
