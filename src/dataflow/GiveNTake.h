//===- dataflow/GiveNTake.h - The GIVE-N-TAKE framework ---------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution: the GIVE-N-TAKE balanced code placement
/// framework. Given per-node initial sets over an abstract item universe —
///
///   TAKE_init(n)  items consumed at n,
///   GIVE_init(n)  items produced "for free" at n (side effects),
///   STEAL_init(n) items whose production is voided at n —
///
/// the solver evaluates Equations 1-15 (Figure 13) with the three-pass
/// elimination schedule of Figure 15, producing the EAGER and LAZY
/// placements RES_in/RES_out for every node. Each equation is evaluated
/// exactly once per node, so the solver runs in O(E) set operations.
///
/// BEFORE problems (produce before consuming, e.g. message receives) run
/// on the forward interval flow graph; AFTER problems (produce after
/// consuming, e.g. writing results back) run on the reversed graph, with
/// every interval that a JUMP edge leaves poisoned via STEAL_init = TOP
/// to prevent unsafe hoisting (Section 5.3).
///
/// Solver performance is three composable layers, each preserving
/// byte-identical results: fused word sweeps over a flat DataflowMatrix
/// arena (solveGiveNTake), item-sharded parallel solving of disjoint
/// word windows (solveGiveNTakeSharded), and universe compression onto
/// column equivalence classes with verified expansion
/// (solveGiveNTakeCompressed — which itself shards the compressed
/// solve). None is "the" fast path; their wins multiply.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_DATAFLOW_GIVENTAKE_H
#define GNT_DATAFLOW_GIVENTAKE_H

#include "interval/IntervalFlowGraph.h"
#include "support/BitVector.h"

#include <atomic>
#include <memory>
#include <vector>

namespace gnt {

class DataflowMatrix;

namespace detail {
/// Test-only fault injection: when set, the arena evaluator's fused S4
/// sweep computes Eq. 14 as GIVEN n GIVEN_in instead of
/// GIVEN - GIVEN_in. The classic per-equation solver is unaffected, so
/// the fuzzer's differential oracle must flag every program with a
/// nonempty placement. Exists solely so gnt-fuzz --inject-bug and
/// FuzzTest can prove the harness catches and minimizes a real solver
/// bug; never set on a production path.
extern std::atomic<bool> InjectFusedSweepBug;
} // namespace detail

/// Whether items must be produced before or after they are consumed.
enum class Direction { Before, After };

/// Whether to produce as early as possible (e.g. sends) or as late as
/// possible (e.g. receives). For AFTER problems "early" and "late" are
/// relative to the reversed flow of control.
enum class Urgency { Eager, Lazy };

/// Inputs to a GIVE-N-TAKE instance. All vectors are indexed by CFG node
/// id and sized to the item universe.
struct GntProblem {
  Direction Dir = Direction::Before;
  unsigned UniverseSize = 0;
  std::vector<BitVector> TakeInit;
  std::vector<BitVector> GiveInit;
  std::vector<BitVector> StealInit;

  /// Headers treated pessimistically for zero-trip execution: the
  /// Equation 5 hoisting terms are suppressed (consumption from the loop
  /// body is not pulled into the header) and the Equation 2 GIVE summary
  /// is dropped (in-body production does not count as available past the
  /// loop). Unrelated production can still cross such loops. This is the
  /// per-loop opt-out of Sections 4.1 / 5.3.
  std::vector<NodeId> NoHoistHeaders;

  GntProblem() = default;
  GntProblem(unsigned NumNodes, unsigned UniverseSize,
             Direction Dir = Direction::Before)
      : Dir(Dir), UniverseSize(UniverseSize),
        TakeInit(NumNodes, BitVector(UniverseSize)),
        GiveInit(NumNodes, BitVector(UniverseSize)),
        StealInit(NumNodes, BitVector(UniverseSize)) {}
};

/// One placement solution (either EAGER or LAZY): Equations 11-15.
struct GntPlacement {
  std::vector<BitVector> GivenIn;  ///< Eq. 11.
  std::vector<BitVector> Given;    ///< Eq. 12.
  std::vector<BitVector> GivenOut; ///< Eq. 13.
  std::vector<BitVector> ResIn;    ///< Eq. 14: production at node entry.
  std::vector<BitVector> ResOut;   ///< Eq. 15: production at node exit.
};

/// What the universe-compression layer did for one solve. Zero-valued
/// (Applied == false, Classes == Universe) when compression was not
/// requested; when it was requested but unprofitable, the partition
/// numbers are still reported with Applied == false.
struct GntCompressionStats {
  unsigned Universe = 0; ///< Original item universe size.
  unsigned Classes = 0;  ///< Column equivalence classes (compressed size).
  unsigned Elided = 0;   ///< Trivially-bottom items dropped outright.
  bool Applied = false;  ///< Whether the compressed solve actually ran.
};

/// Full solver output, exposing every intermediate dataflow variable so
/// tests can validate the paper's Section 4 worked example directly.
/// All variables are expressed in the *solving* orientation: for AFTER
/// problems, "in" refers to the node exit in program order.
struct GntResult {
  std::vector<BitVector> Steal;    ///< Eq. 1.
  std::vector<BitVector> Give;     ///< Eq. 2.
  std::vector<BitVector> Block;    ///< Eq. 3.
  std::vector<BitVector> TakenOut; ///< Eq. 4.
  std::vector<BitVector> Take;     ///< Eq. 5.
  std::vector<BitVector> TakenIn;  ///< Eq. 6.
  std::vector<BitVector> BlockLoc; ///< Eq. 7.
  std::vector<BitVector> TakeLoc;  ///< Eq. 8.
  std::vector<BitVector> GiveLoc;  ///< Eq. 9.
  std::vector<BitVector> StealLoc; ///< Eq. 10.
  GntPlacement Eager;
  GntPlacement Lazy;

  /// Keep-alive handle for the DataflowMatrix arena backing the field
  /// BitVectors when this result came from the arena solver (the
  /// vectors then borrow their words from the arena instead of owning
  /// copies — see BitVector::borrowWords). Null for results assembled
  /// from standalone BitVectors, e.g. by the reference oracle. Copying
  /// a GntResult deep-copies every BitVector into owned storage either
  /// way, so the handle never outlives its users.
  std::shared_ptr<void> Arena;

  /// Universe-compression accounting for this solve (see
  /// solveGiveNTakeCompressed). Default-constructed for the other
  /// entry points.
  GntCompressionStats Compression;
};

/// Applies \p Fn("NAME", FieldVector) to every dataflow variable of a
/// GntResult: the ten Figure 13 variables plus the five placement
/// variables of each urgency (20 vectors total). Shard stitching and
/// the differential test battery iterate fields through this helper, so
/// both stay exhaustive by construction when a field is added.
template <typename ResultT, typename Fn>
void forEachGntField(ResultT &&R, Fn &&F) {
  F("STEAL", R.Steal);
  F("GIVE", R.Give);
  F("BLOCK", R.Block);
  F("TAKEN_out", R.TakenOut);
  F("TAKE", R.Take);
  F("TAKEN_in", R.TakenIn);
  F("BLOCK_loc", R.BlockLoc);
  F("TAKE_loc", R.TakeLoc);
  F("GIVE_loc", R.GiveLoc);
  F("STEAL_loc", R.StealLoc);
  F("EAGER.GIVEN_in", R.Eager.GivenIn);
  F("EAGER.GIVEN", R.Eager.Given);
  F("EAGER.GIVEN_out", R.Eager.GivenOut);
  F("EAGER.RES_in", R.Eager.ResIn);
  F("EAGER.RES_out", R.Eager.ResOut);
  F("LAZY.GIVEN_in", R.Lazy.GivenIn);
  F("LAZY.GIVEN", R.Lazy.Given);
  F("LAZY.GIVEN_out", R.Lazy.GivenOut);
  F("LAZY.RES_in", R.Lazy.ResIn);
  F("LAZY.RES_out", R.Lazy.ResOut);
}

/// Runs the three-pass elimination solver of Figure 15 on \p Ifg. The
/// graph must already be oriented for the problem direction (callers
/// normally use runGiveNTake() below). ROOT's placement variables are
/// pinned to bottom so production lands on real program nodes, matching
/// the paper's worked example.
///
/// The evaluator works on a flat DataflowMatrix arena (one contiguous
/// allocation for all 20 variables) and fuses the equations of each
/// schedule step into a single word loop per node; the result is
/// materialized into the BitVector fields afterwards. Values are
/// bit-for-bit identical to solveGiveNTakeClassic(). This is the base
/// layer of the solver stack; solveGiveNTakeSharded parallelizes it
/// across the universe and solveGiveNTakeCompressed narrows the
/// universe it sweeps.
GntResult solveGiveNTake(const IntervalFlowGraph &Ifg, const GntProblem &P);

/// The pre-arena evaluator: one BitVector temporary per equation term,
/// exactly one equation at a time. Kept as the differential oracle for
/// the arena solver (the property battery asserts byte-identical
/// results) and as the baseline bench_solver_scaling measures the arena
/// speedup against. Not used on any production path.
GntResult solveGiveNTakeClassic(const IntervalFlowGraph &Ifg,
                                const GntProblem &P);

class ThreadPool;

/// Scheduling policy for the sharded solve and the compressed-solve
/// expansion. Results are byte-identical under every policy (the word
/// windows are disjoint regardless of who executes them); this only
/// chooses how windows map to workers.
struct GntShardPolicy {
  /// Oversplit the range and let workers steal: wins when window costs
  /// are skewed (compressed expansion, non-uniform ItemClasses) or a
  /// worker is slowed by a remote NUMA node. Off = one static window
  /// per shard, the historical behavior.
  bool WorkStealing = false;
  /// Chunks per worker when stealing (clamped to the range).
  unsigned Oversplit = 4;
  /// Pin workers round-robin across NUMA nodes so first-touch places
  /// each window on the node of the worker that sweeps it. No-op on
  /// single-node machines.
  bool NumaPinning = true;
};

/// The process-default policy: GNT_SHARD_MODE=steal turns work
/// stealing on, anything else (or unset) keeps static windows. Read
/// once per process.
GntShardPolicy defaultShardPolicy();

/// Solves \p P with the item universe partitioned into \p Shards
/// word-aligned chunks solved independently (on \p Pool when given) and
/// stitched back together. Equations 1-15 are item-wise independent —
/// every operation is a bitwise AND/OR/ANDNOT that never crosses bit
/// lanes — so any shard count yields results byte-identical to the
/// serial solve; that invariance is a hard contract enforced by the
/// property battery. Shards <= 1 (or a single-word universe) falls back
/// to the serial arena solver; shard counts beyond the word count are
/// clamped.
GntResult solveGiveNTakeSharded(const IntervalFlowGraph &Ifg,
                                const GntProblem &P, unsigned Shards,
                                ThreadPool &Pool);

/// Policy-driven overload: spawns its own workers (min(Shards,
/// hardware)) and schedules the word windows per \p Policy — static
/// windows, or an oversplit range with work stealing and NUMA pinning.
GntResult solveGiveNTakeSharded(const IntervalFlowGraph &Ifg,
                                const GntProblem &P, unsigned Shards,
                                const GntShardPolicy &Policy);

/// Convenience overload using defaultShardPolicy().
GntResult solveGiveNTakeSharded(const IntervalFlowGraph &Ifg,
                                const GntProblem &P, unsigned Shards);

/// Solves \p P on the universe compressed to its column equivalence
/// classes. Equations 1-15 never cross bit lanes, so an item's solution
/// in every variable is a function of its column across (TAKE_init,
/// GIVE_init, STEAL_init) alone: items with identical columns are
/// solved once via a representative, items with all-empty columns are
/// elided as trivially bottom, and the compressed solution is expanded
/// back to the full universe afterwards (word-run copies into a fresh
/// arena, so the zero-copy borrowWords export contract is unchanged).
/// Results are byte-identical to the plain solve — a contract enforced
/// by the property battery and the fuzzer's differential oracle.
///
/// When the partition does not shrink the universe at least 4x the
/// call falls back to the plain arena/sharded solve; the partition
/// aborts as soon as its (monotone) live class count proves that
/// outcome, bounding the overhead on incompressible problems to a
/// fraction of the O(set bits) partition sweep. \p Shards applies to whichever solve runs (compressed or
/// fallback). Compression accounting is reported in
/// GntResult::Compression either way. \p Policy (defaultShardPolicy()
/// when null) schedules both the narrow solve and the row expansion;
/// expansion is where work stealing earns its keep, because all-zero
/// rows degrade to a memset while segment-dense rows pay the full
/// expand program.
GntResult solveGiveNTakeCompressed(const IntervalFlowGraph &Ifg,
                                   const GntProblem &P, unsigned Shards = 0,
                                   const GntShardPolicy *Policy = nullptr);

/// A complete, oriented GIVE-N-TAKE run.
struct GntRun {
  /// The graph the solver ran on: \p Forward itself for BEFORE problems,
  /// its reversal for AFTER problems.
  IntervalFlowGraph OrientedIfg;
  /// The problem after AFTER-direction jump poisoning.
  GntProblem OrientedProblem;
  GntResult Result;

  /// Production at the *program-order* entry of node \p N for \p U.
  const BitVector &resAtEntry(Urgency U, NodeId N) const {
    const GntPlacement &P = U == Urgency::Eager ? Result.Eager : Result.Lazy;
    return OrientedProblem.Dir == Direction::Before ? P.ResIn[N]
                                                    : P.ResOut[N];
  }

  /// Production at the *program-order* exit of node \p N for \p U.
  const BitVector &resAtExit(Urgency U, NodeId N) const {
    const GntPlacement &P = U == Urgency::Eager ? Result.Eager : Result.Lazy;
    return OrientedProblem.Dir == Direction::Before ? P.ResOut[N]
                                                    : P.ResIn[N];
  }
};

/// Orients the problem (reversing the graph and poisoning jumped-out
/// intervals for AFTER problems) and solves it. \p SolverShards > 1
/// solves the item universe in that many word-aligned shards on a
/// transient thread pool; \p CompressUniverse first narrows the
/// universe to its column equivalence classes (compression runs on the
/// *oriented* problem, after jump poisoning, so poisoned STEAL rows are
/// part of the partitioned columns). Both are solver strategy knobs:
/// by contract the result is byte-identical to the serial,
/// uncompressed solve.
GntRun runGiveNTake(const IntervalFlowGraph &Forward, const GntProblem &P,
                    unsigned SolverShards = 0, bool CompressUniverse = false);

namespace detail {

/// Node masks selecting which schedule steps the masked re-solve
/// evaluates (dataflow/Incremental.cpp computes them as the dirty
/// closure of the nodes whose init rows changed). Each vector has one
/// char per node; nonzero means "recompute this node's step". A step
/// skipped for node n leaves n's rows exactly as the caller seeded
/// them, so the arena must arrive holding a previously converged
/// solution for the same graph.
struct ArenaSolveMasks {
  const std::vector<char> *S1 = nullptr; ///< Pass 1 gathers + Eq. 1-8.
  const std::vector<char> *S2 = nullptr; ///< Eq. 9-10 at child visit.
  const std::vector<char> *S3 = nullptr; ///< Pass 2, Eq. 11-13.
  const std::vector<char> *S4 = nullptr; ///< Pass 3, Eq. 14-15.

  /// Optional value-level refinement. The step masks above are a
  /// structural over-approximation: they mark every step whose inputs
  /// *could* transitively depend on a changed init row, which on a
  /// straight-line interval chain degenerates to all steps (ROOT's
  /// Eq. 1-2 summaries chain through every sibling's S2 row). With
  /// \p Baseline set to the previously converged arena and
  /// \p ChangedInit to the per-node init-digest change flags, the
  /// evaluator prunes exactly: a candidate step runs only when one of
  /// the rows it reads has actually changed relative to \p Baseline
  /// (tracked by comparing each evaluated step's output rows against
  /// the baseline bytes). Skipping is sound by induction over the
  /// schedule — a skipped step's inputs are byte-equal to the baseline
  /// solve's, so its cloned output rows are exactly what re-evaluation
  /// would write.
  const DataflowMatrix *Baseline = nullptr;
  /// One char per node; nonzero marks nodes whose TAKE/GIVE/STEAL init
  /// rows differ from the baseline solve. Required when \p Baseline is
  /// set.
  const std::vector<char> *ChangedInit = nullptr;
  /// Out-param (may be null): one char per node, set to 1 when any
  /// schedule step for that node was actually evaluated. S2 runs are
  /// attributed to the child whose rows they write.
  std::vector<char> *Ran = nullptr;
};

/// Re-runs the fused evaluator full-width over \p M, restricted to the
/// nodes selected by \p Masks. Unlike a cold solve the arena is NOT
/// zero-initialized first: \p M must hold a complete converged solution
/// for the same (graph, universe) whose non-dirty rows double as the
/// skipped steps' values. Sound only on graphs whose oriented form has
/// no JUMP/SYNTHETIC edges — early reads across those edges must see
/// bottom on a cold solve, which a warm arena cannot provide; callers
/// (runGiveNTakeIncremental) gate on that and fall back to a full
/// solve.
void resolveArenaMasked(const IntervalFlowGraph &Ifg, const GntProblem &P,
                        DataflowMatrix &M, const ArenaSolveMasks &Masks);

/// Exports \p M as a GntResult exactly like the internal arena export:
/// every field BitVector borrows its words and the result keeps the
/// arena alive through GntResult::Arena. \p M must be laid out
/// field-major as 20 x \p NumNodes rows (the layout every arena entry
/// point produces).
GntResult exportGntArena(std::shared_ptr<DataflowMatrix> M,
                         unsigned NumNodes);

} // namespace detail

} // namespace gnt

#endif // GNT_DATAFLOW_GIVENTAKE_H
