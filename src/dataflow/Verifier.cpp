//===- dataflow/Verifier.cpp - C1/C3/O1 static checking ---------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A subtlety shared by both checks: production assigned to RES_in of a
/// loop header textually precedes the loop (Figure 14 prints the
/// Read_Send above the `do` line), so it executes once on loop *entry*,
/// not per iteration. The dataflow below therefore applies a node's
/// RES_in effects on its non-CYCLE incoming edges only.
///
/// Zero-trip optimism: Equation 2 summarizes in-loop production (GIVE)
/// into the header and lets it flow across the loop, accepting the risk
/// that a zero-trip execution skips it — the paper's documented stance
/// (Section 2: non-execution of a loop usually means the data is not
/// needed either). The sufficiency check mirrors this: availability on a
/// loop-*exit* edge is taken from the latch side (as if the body ran at
/// least once), not from the entry/latch meet.
///
//===----------------------------------------------------------------------===//

#include "dataflow/Verifier.h"

#include "support/Support.h"

#include <set>

using namespace gnt;

namespace {

/// True for edge types that represent actual control flow (SYNTHETIC
/// edges are an analysis device, not paths).
bool isRealEdge(EdgeType T) { return T != EdgeType::Synthetic; }

std::string itemName(const std::vector<std::string> &Names, unsigned I) {
  if (I < Names.size())
    return Names[I];
  return "item" + itostr(I);
}

class Verifier {
public:
  Verifier(const GntRun &Run, const std::vector<std::string> &Names,
           GntVerifyResult &Out)
      : Ifg(Run.OrientedIfg), P(Run.OrientedProblem), R(Run.Result),
        Names(Names), Out(Out), N(Ifg.size()), U(P.UniverseSize) {
    Start = findStart();
  }

  void run() {
    if (Start == InvalidNode) {
      Diagnostic D;
      D.Check = CheckId::Ifg;
      D.Message = "oriented graph has no unique start node";
      Out.Diags.add(std::move(D));
      return;
    }
    checkSufficiency(R.Eager, "EAGER");
    checkSufficiency(R.Lazy, "LAZY");
    checkBalance();
  }

private:
  NodeId findStart() const {
    NodeId Found = InvalidNode;
    for (NodeId Node = 0; Node != N; ++Node) {
      bool HasRealPred = false;
      for (const IfgEdge &E : Ifg.preds(Node))
        HasRealPred |= isRealEdge(E.Type);
      if (!HasRealPred) {
        if (Found != InvalidNode)
          return InvalidNode;
        Found = Node;
      }
    }
    return Found;
  }

  void report(DiagSeverity Sev, CheckId Check, const char *Solution,
              NodeId Node, unsigned Item, std::string Msg,
              std::string Hint = "") {
    Diagnostic D;
    D.Severity = Sev;
    D.Check = Check;
    D.Solution = Solution ? Solution : "";
    D.Node = Node;
    D.Item = static_cast<int>(Item);
    D.ItemName = itemName(Names, Item);
    D.Message = std::move(Msg);
    D.FixHint = std::move(Hint);
    Out.Diags.add(std::move(D));
  }

  /// C3 and O1 for one solution: a must-availability forward dataflow
  /// using only the *_init sets (real program semantics) plus the
  /// solution's productions. Greatest fixed point: start from TOP.
  ///
  /// AvailBody[n] is the availability right after n's entry production
  /// (header entry production applied on non-CYCLE edges only).
  void checkSufficiency(const GntPlacement &Pl, const char *Tag) {
    std::vector<BitVector> AvailBody(N, BitVector(U, true));
    {
      BitVector S = Pl.ResIn[Start];
      AvailBody[Start] = S;
    }

    auto availOut = [&](NodeId Node) {
      BitVector A = AvailBody[Node];
      A |= P.GiveInit[Node];
      A.reset(P.StealInit[Node]);
      A |= Pl.ResOut[Node];
      return A;
    };

    /// Availability on a header's loop-exit arm under the at-least-one-
    /// trip assumption: the last arrival at the header came over the
    /// CYCLE edge (header entry production does not re-fire there).
    auto availOutExitArm = [&](NodeId H) {
      BitVector A(U);
      bool Any = false;
      for (const IfgEdge &E : Ifg.preds(H))
        if (E.Type == EdgeType::Cycle) {
          A = availOut(E.Src);
          Any = true;
        }
      if (!Any)
        return availOut(H);
      A |= P.GiveInit[H];
      A.reset(P.StealInit[H]);
      A |= Pl.ResOut[H];
      return A;
    };

    /// Availability flowing over edge E: non-ENTRY edges leaving a loop
    /// header use the exit-arm (at-least-one-trip) variant; the ENTRY
    /// edge into a loop body carries GIVEN(h) semantics (Eq. 11) — a
    /// header's STEAL applies at the loop boundary, not to the in-flow.
    auto availOverEdge = [&](const IfgEdge &E) {
      if (E.Type == EdgeType::Entry) {
        BitVector A = AvailBody[E.Src];
        A |= P.GiveInit[E.Src];
        A |= Pl.ResOut[E.Src];
        return A;
      }
      if (Ifg.isHeader(E.Src) && E.Src != Ifg.root())
        return availOutExitArm(E.Src);
      return availOut(E.Src);
    };

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (NodeId Node : Ifg.preorder()) {
        if (Node == Start)
          continue;
        BitVector In(U, true);
        bool Any = false;
        for (const IfgEdge &E : Ifg.preds(Node)) {
          if (!isRealEdge(E.Type))
            continue;
          BitVector POut = availOverEdge(E);
          if (E.Type != EdgeType::Cycle)
            POut |= Pl.ResIn[Node];
          if (!Any) {
            In = std::move(POut);
            Any = true;
          } else {
            In &= POut;
          }
        }
        if (Any && In != AvailBody[Node]) {
          AvailBody[Node] = std::move(In);
          Changed = true;
        }
      }
    }

    for (NodeId Node = 0; Node != N; ++Node) {
      // C3: every consumption covered at its own node.
      BitVector Need = P.TakeInit[Node];
      Need.reset(AvailBody[Node]);
      for (unsigned I : Need)
        report(DiagSeverity::Error, CheckId::C3, Tag, Node, I,
               "consumes " + itemName(Names, I) +
                   " which is not available on all incoming paths",
               "a production must dominate this consumer with no "
               "intervening steal");
      // O1: no production of an item that is must-available on every
      // incoming *entry* path (production on cycle paths is not applied,
      // so compare against entry-side availability).
      BitVector EntryAvail(U, true);
      bool Any = false;
      for (const IfgEdge &E : Ifg.preds(Node)) {
        if (!isRealEdge(E.Type) || E.Type == EdgeType::Cycle)
          continue;
        BitVector POut = availOverEdge(E);
        if (!Any) {
          EntryAvail = std::move(POut);
          Any = true;
        } else {
          EntryAvail &= POut;
        }
      }
      if (!Any)
        EntryAvail.reset();
      BitVector Re = Pl.ResIn[Node];
      Re &= EntryAvail;
      for (unsigned I : Re)
        report(DiagSeverity::Note, CheckId::O1, Tag, Node, I,
               "re-produces " + itemName(Names, I),
               "drop the redundant production at the node entry");
      BitVector AfterSteal = AvailBody[Node];
      AfterSteal |= P.GiveInit[Node];
      AfterSteal.reset(P.StealInit[Node]);
      BitVector ReOut = Pl.ResOut[Node];
      ReOut &= AfterSteal;
      for (unsigned I : ReOut)
        report(DiagSeverity::Note, CheckId::O1, Tag, Node, I,
               "re-produces " + itemName(Names, I) + " at its exit",
               "drop the redundant production at the node exit");
    }
  }

  /// C1: along every path the EAGER and LAZY productions of an item
  /// alternate send, receive, send, receive, ... and end matched. A
  /// may-analysis over a two-state machine per item. Entry productions of
  /// a header fire on non-CYCLE incoming edges only.
  void checkBalance() {
    // Per-node may-states *after* the entry (RES_in) events.
    std::vector<BitVector> Pend(N, BitVector(U));
    std::vector<BitVector> Clear(N, BitVector(U));

    std::set<std::pair<NodeId, std::string>> Reported;
    auto reportC1 = [&](NodeId Node, unsigned Item, const char *What) {
      std::string Msg = std::string(What) + " of " + itemName(Names, Item);
      if (Reported.insert({Node, Msg}).second)
        report(DiagSeverity::Error, CheckId::C1, nullptr, Node, Item,
               std::move(Msg),
               "eager and lazy productions must alternate on every path");
    };

    struct State {
      BitVector Pend, Clear;
    };

    auto applySend = [&](State &S, const BitVector &Send, NodeId Node,
                         bool Final) {
      if (Final) {
        BitVector Bad = Send;
        Bad &= S.Pend;
        for (unsigned I : Bad)
          reportC1(Node, I, "unmatched second eager production (send)");
      }
      S.Pend |= Send;
      S.Clear.reset(Send);
    };
    auto applyRecv = [&](State &S, const BitVector &Recv, NodeId Node,
                         bool Final) {
      if (Final) {
        BitVector Bad = Recv;
        Bad &= S.Clear;
        for (unsigned I : Bad)
          reportC1(Node, I, "lazy production (receive) without prior send");
      }
      S.Clear |= Recv;
      S.Pend.reset(Recv);
    };

    /// Entry events of \p Node applied to the state flowing in over a
    /// non-cycle edge.
    auto applyEntry = [&](State S, NodeId Node, bool Final) {
      applySend(S, R.Eager.ResIn[Node], Node, Final);
      applyRecv(S, R.Lazy.ResIn[Node], Node, Final);
      return S;
    };
    /// Exit events of \p Node (fire on every execution).
    auto applyExit = [&](State S, NodeId Node, bool Final) {
      applySend(S, R.Eager.ResOut[Node], Node, Final);
      applyRecv(S, R.Lazy.ResOut[Node], Node, Final);
      return S;
    };

    {
      State S{BitVector(U), BitVector(U, true)};
      S = applyEntry(std::move(S), Start, /*Final=*/false);
      Pend[Start] = S.Pend;
      Clear[Start] = S.Clear;
    }

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (NodeId Node : Ifg.preorder()) {
        State Out_{Pend[Node], Clear[Node]};
        Out_ = applyExit(std::move(Out_), Node, /*Final=*/false);
        for (const IfgEdge &E : Ifg.succs(Node)) {
          if (!isRealEdge(E.Type))
            continue;
          State Arr = Out_;
          if (E.Type != EdgeType::Cycle)
            Arr = applyEntry(std::move(Arr), E.Dst, /*Final=*/false);
          BitVector NewPend = Pend[E.Dst];
          NewPend |= Arr.Pend;
          BitVector NewClear = Clear[E.Dst];
          NewClear |= Arr.Clear;
          if (NewPend != Pend[E.Dst] || NewClear != Clear[E.Dst]) {
            Pend[E.Dst] = std::move(NewPend);
            Clear[E.Dst] = std::move(NewClear);
            Changed = true;
          }
        }
      }
    }

    // Reporting pass at the fixed point.
    {
      State S0{BitVector(U), BitVector(U, true)};
      (void)applyEntry(std::move(S0), Start, /*Final=*/true);
    }
    for (NodeId Node = 0; Node != N; ++Node) {
      State Out_{Pend[Node], Clear[Node]};
      Out_ = applyExit(std::move(Out_), Node, /*Final=*/true);
      bool HasRealSucc = false;
      for (const IfgEdge &E : Ifg.succs(Node)) {
        if (!isRealEdge(E.Type))
          continue;
        HasRealSucc = true;
        if (E.Type != EdgeType::Cycle)
          (void)applyEntry(Out_, E.Dst, /*Final=*/true);
      }
      if (!HasRealSucc)
        for (unsigned I : Out_.Pend)
          reportC1(Node, I, "eager production (send) never matched at exit");
    }
  }

  const IntervalFlowGraph &Ifg;
  const GntProblem &P;
  const GntResult &R;
  const std::vector<std::string> &Names;
  GntVerifyResult &Out;
  unsigned N, U;
  NodeId Start = InvalidNode;
};

} // namespace

GntVerifyResult gnt::verifyGntRun(const GntRun &Run,
                                  const std::vector<std::string> &Names) {
  GntVerifyResult Out;
  Verifier V(Run, Names, Out);
  V.run();
  return Out;
}
