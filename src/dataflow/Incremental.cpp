//===- dataflow/Incremental.cpp - Interval-incremental GNT solve ------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Incremental.h"

#include "support/Hashing.h"

#include <cassert>
#include <cstring>

using namespace gnt;

namespace {

/// The arena row count per node (the 20 dataflow variables of
/// forEachGntField; GiveNTake.cpp's ArenaField layout).
constexpr unsigned NumGntFields = 20;

/// Folds one u64 into an FNV-1a state, byte by byte (little-endian, so
/// the digest is byte-order stable like the string hashers).
inline std::uint64_t mixU64(std::uint64_t H, std::uint64_t V) {
  for (unsigned I = 0; I != 8; ++I) {
    H ^= (V >> (8 * I)) & 0xff;
    H *= FnvPrime;
  }
  return H;
}

void putU64(std::string &S, std::uint64_t V) {
  for (unsigned I = 0; I != 8; ++I)
    S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

std::uint64_t getU64(const std::string &S, std::size_t Off) {
  std::uint64_t V = 0;
  for (unsigned I = 0; I != 8; ++I)
    V |= static_cast<std::uint64_t>(static_cast<unsigned char>(S[Off + I]))
         << (8 * I);
  return V;
}

constexpr char MemoMagic[9] = "GNTMEMO1";

} // namespace

std::uint64_t gnt::gntStructureDigest(const IntervalFlowGraph &Ifg,
                                      const GntProblem &P) {
  const unsigned N = Ifg.size();
  std::uint64_t H = fnv1a("gnt-structure-v1");
  H = mixU64(H, N);
  H = mixU64(H, Ifg.root());
  H = mixU64(H, P.Dir == Direction::Before ? 0 : 1);
  H = mixU64(H, P.UniverseSize);
  H = mixU64(H, Ifg.isReversed() ? 1 : 0);
  H = mixU64(H, P.NoHoistHeaders.size());
  for (NodeId Hdr : P.NoHoistHeaders)
    H = mixU64(H, Hdr);
  for (NodeId Id = 0; Id != N; ++Id) {
    H = mixU64(H, Ifg.parent(Id));
    H = mixU64(H, Ifg.lastChild(Id));
    H = mixU64(H, Ifg.headerOf(Id));
    H = mixU64(H, Ifg.level(Id));
    const std::vector<NodeId> &Kids = Ifg.children(Id);
    H = mixU64(H, Kids.size());
    for (NodeId C : Kids)
      H = mixU64(H, C);
    const std::vector<IfgEdge> &Succs = Ifg.succs(Id);
    H = mixU64(H, Succs.size());
    for (const IfgEdge &E : Succs) {
      H = mixU64(H, E.Dst);
      H = mixU64(H, static_cast<std::uint64_t>(E.Type));
    }
  }
  return H;
}

std::uint64_t gnt::gntNodeInputDigest(const GntProblem &P, NodeId N) {
  const unsigned Words = (P.UniverseSize + BitVector::WordBits - 1) /
                         BitVector::WordBits;
  std::uint64_t H = FnvOffsetBasis;
  for (const std::vector<BitVector> *Init :
       {&P.TakeInit, &P.GiveInit, &P.StealInit}) {
    const BitVector::Word *Row = (*Init)[N].words();
    for (unsigned K = 0; K != Words; ++K)
      H = mixU64(H, Row[K]);
    H = mixU64(H, 0x5e9a7a70ull); // Separator between the three rows.
  }
  return H;
}

namespace {

/// The per-step structural dirty closure (see Incremental.h's file
/// comment): given the set of nodes whose init rows changed, marks
/// every schedule step whose transitive inputs could differ from the
/// memoized solve. Walks the exact edges each step reads, in the
/// solver's own evaluation order, so a marked step never reads an
/// unmarked-but-stale row. Requires a jump-free oriented graph
/// (FORWARD is then the only cross-sibling edge type).
///
/// The closure is a *candidate* set, deliberately row-blind: on a
/// straight-line chain of intervals it degenerates to every step,
/// because ROOT's Eq. 1-2 summaries structurally chain through every
/// sibling's S2 row and Pass 2 hands ROOT's dirt back to all its
/// children. The masked solver prunes it to the steps whose input rows
/// *actually* changed (ArenaSolveMasks::Baseline), which is what keeps
/// a single-loop edit's re-solve inside that loop.
struct DirtyClosure {
  std::vector<char> S1, S2, S3, S4;

  DirtyClosure(const IntervalFlowGraph &Ifg, const std::vector<char> &Changed)
      : S1(Ifg.size(), 0), S2(Ifg.size(), 0), S3(Ifg.size(), 0),
        S4(Ifg.size(), 0) {
    const std::vector<NodeId> &Pre = Ifg.preorder();
    using ET = EdgeType;

    // Pass 1 order (reverse preorder; S2 of the children first, then
    // S1 of the visited node), mirroring solveIntoArena exactly.
    for (auto It = Pre.rbegin(), E = Pre.rend(); It != E; ++It) {
      NodeId Node = *It;
      for (NodeId C : Ifg.children(Node)) {
        char D = S1[C];
        for (const IfgEdge &Edge : Ifg.preds(C))
          if (Edge.Type == ET::Forward)
            D |= S2[Edge.Src];
        S2[C] = D;
      }
      char D = Changed[Node];
      for (const IfgEdge &Edge : Ifg.succs(Node))
        if (Edge.Type == ET::Entry || Edge.Type == ET::Forward)
          D |= S1[Edge.Dst];
      if (Ifg.isHeader(Node) && Ifg.lastChild(Node) != InvalidNode)
        D |= S2[Ifg.lastChild(Node)];
      S1[Node] = D;
    }

    // Pass 2 order (preorder). ROOT is skipped by the solver (its
    // placement rows are pinned), but its S1 outputs feed its
    // children's Eq. 11 header terms, so it carries S1 dirtiness into
    // the S3 lattice. The header term is taken conservatively even for
    // NoHoist headers (whose summary reads are zero rows); the
    // value-level refinement inside the solver is what discriminates.
    for (NodeId Node : Pre) {
      char D = S1[Node];
      if (Node != Ifg.root()) {
        for (const IfgEdge &Edge : Ifg.preds(Node))
          if (Edge.Type == ET::Forward)
            D |= S3[Edge.Src];
        NodeId Header = Ifg.headerOf(Node);
        if (Header != InvalidNode)
          D |= S3[Header];
      }
      S3[Node] = D;
    }

    // Pass 3 (any order): RES_out unions the FORWARD successors'
    // GIVEN_in rows.
    for (NodeId Node : Pre) {
      char D = S3[Node];
      for (const IfgEdge &Edge : Ifg.succs(Node))
        if (Edge.Type == ET::Forward)
          D |= S3[Edge.Dst];
      S4[Node] = D;
    }
  }
};

bool hasJumpOrSynthetic(const IntervalFlowGraph &Ifg) {
  for (unsigned Id = 0, N = Ifg.size(); Id != N; ++Id)
    for (const IfgEdge &E : Ifg.succs(Id))
      if (E.Type == EdgeType::Jump || E.Type == EdgeType::Synthetic)
        return true;
  return false;
}

std::shared_ptr<DataflowMatrix> cloneArena(const DataflowMatrix &Src) {
  auto Clone = std::make_shared<DataflowMatrix>(Src.rows(), Src.bits(),
                                                DataflowMatrix::Uninit);
  // Whole-storage copy, padding included: rows are stride-padded for
  // lane alignment, so rows()*wordsPerRow() would under-copy.
  if (Src.storageWords())
    std::memcpy(Clone->row(0), Src.row(0),
                Src.storageWords() * sizeof(DataflowMatrix::Word));
  return Clone;
}

} // namespace

GntRun gnt::runGiveNTakeIncremental(const IntervalFlowGraph &Forward,
                                    const GntProblem &P,
                                    unsigned SolverShards,
                                    bool CompressUniverse, GntSolveMemo &Memo,
                                    GntIncrementalStats &Stats) {
  // Orient exactly as runGiveNTake() does, so every outcome below is
  // byte-identical to the non-incremental driver.
  GntRun Run;
  Run.OrientedProblem = P;
  if (P.Dir == Direction::Before) {
    Run.OrientedIfg = Forward;
  } else {
    Run.OrientedIfg = Forward.reversed();
    for (NodeId H : Forward.jumpPoisonedHeaders())
      Run.OrientedProblem.StealInit[H].set();
  }
  const IntervalFlowGraph &Ifg = Run.OrientedIfg;
  const GntProblem &OP = Run.OrientedProblem;
  const unsigned N = Ifg.size();

  const std::uint64_t Structure = gntStructureDigest(Ifg, OP);
  std::vector<std::uint64_t> Digests(N);
  for (NodeId Id = 0; Id != N; ++Id)
    Digests[Id] = gntNodeInputDigest(OP, Id);

  if (Memo.valid() && Memo.StructureDigest == Structure && Memo.Nodes == N &&
      Memo.UniverseSize == OP.UniverseSize &&
      Memo.InputDigests.size() == N) {
    // Nodes outside preorder only matter through their (always-bottom)
    // rows, which every solve leaves at zero regardless of init, so
    // their digest changes are masked out of the dirty set.
    std::vector<char> Changed(N, 0);
    bool Any = false;
    for (NodeId Id : Ifg.preorder())
      if (Digests[Id] != Memo.InputDigests[Id]) {
        Changed[Id] = 1;
        Any = true;
      }

    if (!Any) {
      // Full memo hit: nothing to compute; re-export the previous
      // arena zero-copy. Several live results may share it — all
      // readers, by the immutability discipline of GntSolveMemo.
      ++Stats.MemoHits;
      Memo.InputDigests = std::move(Digests);
      Run.Result = detail::exportGntArena(Memo.Arena, N);
      return Run;
    }

    if (!hasJumpOrSynthetic(Ifg)) {
      // Masked partial re-solve on a clone of the previous arena. The
      // jump-free gate is what makes skipping the cold preamble sound:
      // without JUMP/SYNTHETIC edges the schedule reads every row
      // strictly after writing it, so a skipped step's cloned rows are
      // exactly what a cold solve would have recomputed.
      DirtyClosure Dirty(Ifg, Changed);
      auto Clone = cloneArena(*Memo.Arena);
      std::vector<char> Ran(N, 0);
      detail::ArenaSolveMasks Masks;
      Masks.S1 = &Dirty.S1;
      Masks.S2 = &Dirty.S2;
      Masks.S3 = &Dirty.S3;
      Masks.S4 = &Dirty.S4;
      // Value-level refinement: the old arena is the baseline the
      // solver diffs rows against, so only steps whose inputs actually
      // changed re-evaluate; Ran records the pruned footprint for the
      // stats below.
      Masks.Baseline = Memo.Arena.get();
      Masks.ChangedInit = &Changed;
      Masks.Ran = &Ran;
      detail::resolveArenaMasked(Ifg, OP, *Clone, Masks);

      ++Stats.PartialSolves;
      const std::vector<NodeId> &Pre = Ifg.preorder();
      std::vector<char> IntervalAll(N, 0), IntervalDirty(N, 0);
      for (NodeId Id : Pre) {
        ++Stats.NodesTotal;
        if (Ran[Id])
          ++Stats.NodesResolved;
        NodeId Key = Ifg.isHeader(Id) ? Id : Ifg.parent(Id);
        if (Key == InvalidNode)
          Key = Id;
        IntervalAll[Key] = 1;
        if (Ran[Id])
          IntervalDirty[Key] = 1;
      }
      for (unsigned Id = 0; Id != N; ++Id) {
        Stats.IntervalsTotal += IntervalAll[Id];
        Stats.IntervalsResolved += IntervalDirty[Id];
      }

      Memo.InputDigests = std::move(Digests);
      Memo.Arena = Clone;
      Run.Result = detail::exportGntArena(std::move(Clone), N);
      return Run;
    }
    // Jump edges present: fall through to a full solve (which still
    // refreshes the memo, so identical follow-ups become memo hits).
  }

  // Full solve through the normal strategy stack.
  if (CompressUniverse)
    Run.Result = solveGiveNTakeCompressed(Ifg, OP, SolverShards);
  else
    Run.Result = SolverShards > 1
                     ? solveGiveNTakeSharded(Ifg, OP, SolverShards)
                     : solveGiveNTake(Ifg, OP);
  ++Stats.FullSolves;

  Memo.clear();
  if (Run.Result.Arena) {
    // Recover the typed arena handle from the result's keep-alive
    // (aliasing constructor: shares ownership, re-types the pointee).
    Memo.Arena = std::shared_ptr<DataflowMatrix>(
        Run.Result.Arena, static_cast<DataflowMatrix *>(Run.Result.Arena.get()));
    Memo.StructureDigest = Structure;
    Memo.InputDigests = std::move(Digests);
    Memo.Nodes = N;
    Memo.UniverseSize = OP.UniverseSize;
  }
  return Run;
}

//===----------------------------------------------------------------------===//
// Memo persistence
//===----------------------------------------------------------------------===//

std::string gnt::serializeGntMemo(const GntSolveMemo &Memo) {
  if (!Memo.valid() || Memo.InputDigests.size() != Memo.Nodes)
    return std::string();
  const DataflowMatrix &M = *Memo.Arena;
  assert(M.rows() == NumGntFields * Memo.Nodes && "arena shape mismatch");
  std::string S;
  const unsigned Wpr = M.wordsPerRow();
  S.reserve(40 + 8 * Memo.Nodes +
            8 * static_cast<std::size_t>(M.rows()) * Wpr + 8);
  S.append(MemoMagic, 8);
  putU64(S, Memo.StructureDigest);
  putU64(S, Memo.Nodes);
  putU64(S, Memo.UniverseSize);
  for (std::uint64_t D : Memo.InputDigests)
    putU64(S, D);
  for (unsigned R = 0, E = M.rows(); R != E; ++R) {
    const DataflowMatrix::Word *Row = M.row(R);
    for (unsigned K = 0; K != Wpr; ++K)
      putU64(S, Row[K]);
  }
  putU64(S, fnv1a(S));
  return S;
}

bool gnt::deserializeGntMemo(const std::string &Payload, GntSolveMemo &Memo) {
  Memo.clear();
  if (Payload.size() < 40 || Payload.compare(0, 8, MemoMagic, 8) != 0)
    return false;
  const std::uint64_t Structure = getU64(Payload, 8);
  const std::uint64_t Nodes = getU64(Payload, 16);
  const std::uint64_t Universe = getU64(Payload, 24);
  // Sanity bounds before any size arithmetic: a corrupt header must not
  // drive a huge allocation (or overflow the expected-size formula).
  if (Nodes > (1u << 22) || Universe > (1u << 24))
    return false;
  const std::uint64_t Rows = NumGntFields * Nodes;
  const std::uint64_t Wpr = (Universe + BitVector::WordBits - 1) /
                            BitVector::WordBits;
  const std::uint64_t Expected = 32 + 8 * Nodes + 8 * Rows * Wpr + 8;
  if (Payload.size() != Expected)
    return false;
  const std::uint64_t Stored = getU64(Payload, Payload.size() - 8);
  if (fnv1a(Payload.substr(0, Payload.size() - 8)) != Stored)
    return false;

  Memo.StructureDigest = Structure;
  Memo.Nodes = static_cast<unsigned>(Nodes);
  Memo.UniverseSize = static_cast<unsigned>(Universe);
  std::size_t Off = 32;
  Memo.InputDigests.resize(Nodes);
  for (std::uint64_t I = 0; I != Nodes; ++I, Off += 8)
    Memo.InputDigests[I] = getU64(Payload, Off);
  auto M = std::make_shared<DataflowMatrix>(static_cast<unsigned>(Rows),
                                            static_cast<unsigned>(Universe),
                                            DataflowMatrix::Uninit);
  for (unsigned R = 0; R != Rows; ++R) {
    DataflowMatrix::Word *Row = M->row(R);
    for (unsigned K = 0; K != Wpr; ++K, Off += 8)
      Row[K] = getU64(Payload, Off);
  }
  // A forged tail word would break the BitVector invariant every sweep
  // assumes; reject rather than repair (repairing would hide that the
  // artifact no longer matches its checksum discipline).
  const DataflowMatrix::Word Tail = M->tailMask();
  if (Wpr)
    for (unsigned R = 0; R != Rows; ++R)
      if (M->row(R)[Wpr - 1] & ~Tail) {
        Memo.clear();
        return false;
      }
  Memo.Arena = std::move(M);
  return true;
}
