//===- dataflow/Lospre.h - Linear-time lospre on intervals ------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lospre-style (lifetime-optimal speculative PRE, after Krause's
/// "lospre in linear time") placement formulation solved by *elimination*
/// over the interval flow graph instead of iteration over the CFG. Both
/// dataflow problems LCM needs — must-anticipability and
/// must-availability — are instances of one generic shape:
///
///   In(n)  = meet over predecessors of Out(p)      (must / intersection)
///   Out(n) = (In(n) n T(n)) u C(n)
///
/// Transfer functions of that shape are closed under composition and
/// under meet, so each node's In value can be expressed as a linear
/// function (T, C) of its enclosing header's In value and every interval
/// collapses to one closed-form summary: a single bottom-up sweep
/// (reverse preorder) builds the per-node functions and per-interval
/// loop closures, and a single top-down sweep (preorder) concretizes
/// them — O(E) set operations total, the same complexity class as the
/// GIVE-N-TAKE solver, with all working rows living in one flat
/// DataflowMatrix arena. JUMP and SYNTHETIC edges contribute the
/// constant-bottom function, a sound (conservative) treatment of
/// unstructured exits; on jump-free graphs the solution equals the
/// iterative MFP exactly (pinned against LazyCodeMotion by test).
///
/// Insertion uses busy code motion: the EARLIEST edge predicate over the
/// real CFG edges, mapped to node entries/exits exactly like the LCM
/// baseline. Earliest insertions cover every original occurrence, so no
/// kept occurrences are needed.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_DATAFLOW_LOSPRE_H
#define GNT_DATAFLOW_LOSPRE_H

#include "dataflow/GiveNTake.h"
#include "support/BitVector.h"

namespace gnt {

/// One generic must-problem solution in the *solving* orientation of the
/// graph it ran on (for a reversed graph, In is the program-order out).
struct IntervalMustSolution {
  std::vector<BitVector> In, Out;
};

/// Solves In = meet(preds Out), Out = (In n T) u C over \p Ifg by
/// interval elimination. \p Transp and \p Comp are indexed by node id in
/// the solving orientation (they are per-node predicates, so orientation
/// does not change them). The boundary value at ROOT's in is bottom.
IntervalMustSolution solveIntervalMust(const IntervalFlowGraph &Ifg,
                                       const std::vector<BitVector> &Transp,
                                       const std::vector<BitVector> &Comp);

/// Full lospre dataflow for a READ (Before) problem: anticipability and
/// availability plus the busy-code-motion insertion points.
struct LospreResult {
  std::vector<BitVector> AntIn, AntOut; ///< Must-anticipability.
  std::vector<BitVector> AvIn, AvOut;   ///< Must-availability.
  /// Edge insertions mapped to the unique node point each CFG edge owns
  /// (same mapping as the LCM baseline; our graphs have no critical
  /// edges).
  std::vector<BitVector> InsertAtEntry, InsertAtExit;
};

/// Runs the two elimination solves for \p Read's predicates (ANTLOC =
/// TAKE_init, TRANSP = ~STEAL_init, COMP = TAKE_init u GIVE_init) and
/// computes EARLIEST insertions. \p Ifg must be the forward graph.
LospreResult solveLospre(const Cfg &G, const IntervalFlowGraph &Ifg,
                         const GntProblem &Read);

} // namespace gnt

#endif // GNT_DATAFLOW_LOSPRE_H
