//===- dataflow/Verifier.h - C1/C3/O1 static checking -----------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent validation of a GIVE-N-TAKE run against the paper's
/// correctness criteria. The checks use classic *iterative* dataflow over
/// the oriented graph (deliberately sharing no code with the elimination
/// solver), so they catch errors in the solver itself:
///
///  - C3 sufficiency: every consumer is covered on all incoming paths
///    with no intervening steal — checked per solution (EAGER and LAZY);
///  - C1 balance: along every path, EAGER ("send") and LAZY ("receive")
///    productions of an item strictly alternate and end matched;
///  - O1 no reproduction: no production of an item that is must-available.
///
/// C2 safety is checked dynamically by the trace simulator (src/sim),
/// because deliberate hoisting out of zero-trip loops makes the static
/// criterion configuration-dependent (Section 3.2).
///
/// Findings are reported as structured diagnostics (analysis/Diagnostics);
/// the deeper audit passes (O2/O3/O3', structural lint, differential
/// re-derivation) live in analysis/Auditor and share the same diagnostics
/// vocabulary.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_DATAFLOW_VERIFIER_H
#define GNT_DATAFLOW_VERIFIER_H

#include "analysis/Diagnostics.h"
#include "dataflow/GiveNTake.h"

#include <string>
#include <vector>

namespace gnt {

/// Outcome of verification. Error diagnostics are hard correctness
/// failures; notes report optimality-guideline misses.
struct GntVerifyResult {
  DiagnosticSet Diags;

  bool ok() const { return !Diags.hasErrors(); }
  bool hasNotes() const { return Diags.count(DiagSeverity::Note) != 0; }

  /// Rendered first error diagnostic, or "" (test/CLI convenience).
  std::string firstViolation() const {
    const Diagnostic *D = Diags.first(DiagSeverity::Error);
    return D ? D->render() : std::string();
  }

  /// Rendered first note diagnostic, or "".
  std::string firstNote() const {
    const Diagnostic *D = Diags.first(DiagSeverity::Note);
    return D ? D->render() : std::string();
  }

  void append(const GntVerifyResult &Other) { Diags.append(Other.Diags); }
};

/// Verifies \p Run. \p ItemNames (optional, may be empty) gives items
/// human-readable names in messages.
GntVerifyResult verifyGntRun(const GntRun &Run,
                             const std::vector<std::string> &ItemNames = {});

} // namespace gnt

#endif // GNT_DATAFLOW_VERIFIER_H
