//===- dataflow/Dump.h - Human-readable solver state dumps ------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a GIVE-N-TAKE run as the kind of per-node variable table the
/// paper's Section 4 walks through — every intermediate equation result
/// plus the placements — for studying and debugging problem instances
/// (`gntc --dump-vars`).
///
//===----------------------------------------------------------------------===//

#ifndef GNT_DATAFLOW_DUMP_H
#define GNT_DATAFLOW_DUMP_H

#include "dataflow/GiveNTake.h"

#include <string>
#include <vector>

namespace gnt {

class Cfg;

/// Renders every nonempty dataflow variable of \p Run, one node per
/// block, in PREORDER. \p Names maps item ids to display names (item
/// indices are used when absent); \p G supplies node descriptions.
std::string dumpGntRun(const GntRun &Run, const Cfg &G,
                       const std::vector<std::string> &Names = {});

} // namespace gnt

#endif // GNT_DATAFLOW_DUMP_H
