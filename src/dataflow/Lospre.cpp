//===- dataflow/Lospre.cpp - Linear-time lospre on intervals ----------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The elimination scheme. Every node's In value, restricted to one
/// interval, is a linear function of the enclosing header's In value X:
///
///   In(c) = (X n FT(c)) u FC(c)
///
/// Such pairs (T, C) form a closed algebra:
///
///   compose((Tp, Cp) then local (Tt, Ct)):
///       T = Tp n Tt,            C = (Cp n Tt) u Ct
///   meet((T1, C1), (T2, C2)):
///       T = (T1nT2) u (T1nC2) u (T2nC1),   C = C1 n C2
///
/// (both identities are per-bit boolean algebra: a value bit is
/// x = X*t + c, and (x1 AND x2) re-normalizes to the T/C form above).
///
/// Pass 1 (reverse preorder). At each header visit, sweep its children
/// in FORWARD order computing (FT, FC): the ENTRY predecessor
/// contributes the header's own local transfer, FORWARD predecessors
/// contribute their sibling's out-function (their in-function composed
/// with their through-function), and JUMP/SYNTHETIC predecessors
/// contribute constant bottom (conservative for a must problem). A
/// sibling's through-function is its local transfer for leaves and the
/// whole-loop summary (ST, SC) for headers. The loop closure is the
/// greatest fixed point of x = e * (x*t + c), which is x = e * (t + c):
///
///   X = E n ClosT(h),   ClosT(h) = T_latch-out u C_latch-out
///
/// and the loop summary seen by the next sibling folds the closure into
/// the header's local transfer: ST = ClosT n T(h), SC = C(h).
///
/// Pass 2 (preorder) concretizes: X(ROOT) = bottom, then per interval
/// E(c) = (X n FT(c)) u FC(c), In(c) = E(c) n ClosT(c) for headers and
/// E(c) otherwise, Out(c) = (In(c) n T(c)) u C(c).
///
//===----------------------------------------------------------------------===//

#include "dataflow/Lospre.h"

#include "support/DataflowMatrix.h"

using namespace gnt;

namespace {

/// Row sections of the working arena: per-node function and summary
/// rows, one DataflowMatrix allocation for all of them.
enum Section : unsigned { FT, FC, ST, SC, ClosT, NumSections };

} // namespace

IntervalMustSolution
gnt::solveIntervalMust(const IntervalFlowGraph &Ifg,
                       const std::vector<BitVector> &Transp,
                       const std::vector<BitVector> &Comp) {
  const unsigned N = Ifg.size();
  const unsigned U = N ? Transp[0].size() : 0;
  IntervalMustSolution R;
  R.In.assign(N, BitVector(U));
  R.Out.assign(N, BitVector(U));
  if (!N)
    return R;

  DataflowMatrix M(NumSections * N, U);
  auto row = [&](Section S, NodeId Node) {
    return BitVector::borrowWords(M.row(S * N + Node), U);
  };

  using ET = EdgeType;
  const std::vector<NodeId> &Pre = Ifg.preorder();

  // The through-function of a sibling: what flows out of it as a
  // function of the value flowing in from its own siblings.
  auto throughT = [&](NodeId P) {
    return Ifg.isHeader(P) ? row(ST, P) : BitVector(Transp[P]);
  };
  auto throughC = [&](NodeId P) {
    return Ifg.isHeader(P) ? row(SC, P) : BitVector(Comp[P]);
  };

  // Pass 1: bottom-up over headers; children functions + loop closure.
  for (auto It = Pre.rbegin(), E = Pre.rend(); It != E; ++It) {
    NodeId H = *It;
    if (!Ifg.isHeader(H))
      continue;
    for (NodeId C : Ifg.children(H)) {
      BitVector AccT(U), AccC(U);
      bool Any = false;
      for (const IfgEdge &Edge : Ifg.preds(C)) {
        if (Edge.Type == ET::Cycle)
          continue; // Folded into the loop closure below.
        BitVector PT(U), PC(U);
        if (Edge.Type == ET::Entry) {
          // The header's out as a function of its own in X.
          PT = Transp[H];
          PC = Comp[H];
        } else if (Edge.Type == ET::Forward) {
          // Sibling out-function: in-function composed with through.
          // fromWords detaches a deep copy — a moved borrow would write
          // the composition back through into the sibling's own rows.
          NodeId P = Edge.Src;
          BitVector ThT = throughT(P), ThC = throughC(P);
          PT = BitVector::fromWords(M.row(FT * N + P), U);
          PT &= ThT;
          PC = BitVector::fromWords(M.row(FC * N + P), U);
          PC &= ThT;
          PC |= ThC;
        }
        // JUMP/SYNTHETIC predecessors keep the constant-bottom (PT, PC):
        // a must value crossing an unstructured exit is conservatively
        // dropped.
        if (!Any) {
          AccT = std::move(PT);
          AccC = std::move(PC);
          Any = true;
          continue;
        }
        // meet: T = T1nT2 u T1nC2 u T2nC1; C = C1nC2.
        BitVector T = intersectionOf(AccT, PT);
        T |= intersectionOf(AccT, PC);
        T |= intersectionOf(PT, AccC);
        AccC &= PC;
        AccT = std::move(T);
      }
      M.assignRow(FT * N + C, AccT);
      M.assignRow(FC * N + C, AccC);
    }
    // Loop closure and whole-loop summary. The forward ROOT has no
    // CYCLE edge (its boundary in-value is bottom); the REVERSED root
    // does — the old program-entry ENTRY edge — and its closure row is
    // the boundary value Pass 2 reads back.
    // (The forward root's LASTCHILD is the exit node with no CYCLE edge
    // behind it; only the reversed root genuinely cycles.)
    NodeId Latch = Ifg.lastChild(H);
    if (Latch != InvalidNode && (H != Ifg.root() || Ifg.isReversed())) {
      BitVector OutT = BitVector::fromWords(M.row(FT * N + Latch), U);
      BitVector OutC = BitVector::fromWords(M.row(FC * N + Latch), U);
      BitVector ThT = throughT(Latch), ThC = throughC(Latch);
      OutT &= ThT;
      OutC &= ThT;
      OutC |= ThC;
      OutT |= OutC; // ClosT = T_body u C_body.
      M.assignRow(ClosT * N + H, OutT);
      OutT &= Transp[H]; // ST = ClosT n T(h).
      M.assignRow(ST * N + H, OutT);
      M.assignRow(SC * N + H, Comp[H]);
    }
  }

  // Pass 2: top-down concretization.
  for (NodeId Node : Pre) {
    if (Node == Ifg.root()) {
      // Boundary. Forward root: nothing flows into the program. The
      // reversed root is entered only by its own CYCLE edge, so its
      // in-value is the pure closure x = out_latch(x), whose greatest
      // solution is ClosT (the latch chain starts from the boundary
      // constant, so the through-part is empty and this is exact).
      BitVector In(U);
      if (Ifg.isReversed() && Ifg.lastChild(Node) != InvalidNode)
        In = BitVector::fromWords(M.row(ClosT * N + Node), U);
      BitVector Out = In;
      Out &= Transp[Node];
      Out |= Comp[Node];
      R.In[Node] = std::move(In);
      R.Out[Node] = std::move(Out);
      continue;
    }
    BitVector E = R.In[Ifg.parent(Node)];
    E &= row(FT, Node);
    E |= row(FC, Node);
    if (Ifg.isHeader(Node))
      E &= row(ClosT, Node);
    BitVector Out = E;
    Out &= Transp[Node];
    Out |= Comp[Node];
    R.In[Node] = std::move(E);
    R.Out[Node] = std::move(Out);
  }
  return R;
}

LospreResult gnt::solveLospre(const Cfg &G, const IntervalFlowGraph &Ifg,
                              const GntProblem &Read) {
  const unsigned N = G.size();
  const unsigned U = Read.UniverseSize;

  std::vector<BitVector> Transp(N, BitVector(U, true));
  std::vector<BitVector> Comp(N, BitVector(U));
  for (NodeId Id = 0; Id != N; ++Id) {
    Transp[Id].reset(Read.StealInit[Id]);
    Comp[Id] = Read.TakeInit[Id];
    Comp[Id] |= Read.GiveInit[Id];
  }

  LospreResult R;
  // Availability forward: Out = (In n TRANSP) u (COMP n TRANSP).
  {
    std::vector<BitVector> CompAv(N, BitVector(U));
    for (NodeId Id = 0; Id != N; ++Id) {
      CompAv[Id] = Comp[Id];
      CompAv[Id] &= Transp[Id];
    }
    IntervalMustSolution Av = solveIntervalMust(Ifg, Transp, CompAv);
    R.AvIn = std::move(Av.In);
    R.AvOut = std::move(Av.Out);
  }
  // Anticipability backward: the same engine on the reversed graph,
  // with ANTLOC as the constant term. Solving-In of the reversed graph
  // is the program-order ANTOUT.
  {
    IntervalFlowGraph Rev = Ifg.reversed();
    IntervalMustSolution Ant =
        solveIntervalMust(Rev, Transp, Read.TakeInit);
    R.AntOut = std::move(Ant.In);
    R.AntIn = std::move(Ant.Out);
  }

  // Busy-code-motion EARLIEST per real CFG edge:
  //   EARLIEST(p,n) = ANTIN(n) n ~AVOUT(p) n ~(TRANSP(p) n ANTOUT(p))
  // (guard dropped for the entry node), mapped to the node point each
  // edge owns exactly like the LCM baseline. Earliest insertions cover
  // every occurrence, so no kept occurrences are emitted.
  R.InsertAtEntry.assign(N, BitVector(U));
  R.InsertAtExit.assign(N, BitVector(U));
  for (NodeId P = 0; P != N; ++P) {
    for (NodeId S : G.node(P).Succs) {
      BitVector E = R.AntIn[S];
      E.reset(R.AvOut[P]);
      if (P != G.entry()) {
        BitVector Guard = Transp[P];
        Guard &= R.AntOut[P];
        E.reset(Guard);
      }
      if (E.none())
        continue;
      if (G.node(P).Succs.size() == 1 && P != G.entry())
        R.InsertAtExit[P] |= E;
      else
        R.InsertAtEntry[S] |= E;
    }
  }
  return R;
}
