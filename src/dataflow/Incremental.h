//===- dataflow/Incremental.h - Interval-incremental GNT solve -*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval-level incremental solving for GIVE-N-TAKE: a memo of the
/// previous solve (structure digest, per-node input digests, and the
/// converged DataflowMatrix arena) lets runGiveNTakeIncremental() react
/// to an edit by re-evaluating only the schedule steps whose inputs
/// could have changed, splicing every other node's solved rows straight
/// out of the previous arena.
///
/// The dirty set is well-defined per interval because the three-pass
/// elimination schedule (Figure 15) evaluates every equation exactly
/// once in a fixed dependency order: a step whose transitive inputs —
/// init rows plus other steps' outputs — are all unchanged must produce
/// bit-identical output, so its previous rows can be kept. The closure
/// is computed per schedule step (S1/S2/S3/S4 masks) along the exact
/// edges each step reads:
///
///   S1(n) dirties when n's init rows changed, any ENTRY/FORWARD
///         successor's S1 dirtied, or the header summary (lastChild's
///         S2) dirtied;
///   S2(c) dirties when c's S1 dirtied or a FORWARD predecessor's S2
///         dirtied;
///   S3(n) dirties when n's S1 dirtied, a FORWARD predecessor's or the
///         enclosing header's S3 dirtied;
///   S4(n) dirties when n's or a FORWARD successor's S3 dirtied.
///
/// The closure is only the structural candidate set: because ROOT's
/// Eq. 1-2 summaries chain through every sibling, it degenerates to
/// all steps on most edits. The masked solver refines it with
/// row-granular value tracking (ArenaSolveMasks::Baseline): a
/// candidate step runs only when one of the rows it reads differs in
/// bytes from the memoized solve, so dirt that an interval absorbs —
/// an edit that leaves the loop's summary rows unchanged — stops at
/// that interval's boundary. The stats below count the steps that
/// actually ran after this pruning.
///
/// Three outcomes per call, all byte-identical to a cold solve by
/// contract (enforced by the incrementality-equivalence battery):
///
///   memo hit      nothing changed; the previous arena is re-exported
///                 zero-copy (results share it read-only);
///   partial solve some nodes changed and the oriented graph has no
///                 JUMP/SYNTHETIC edges; the arena is cloned and only
///                 masked steps re-run;
///   full solve    structure changed, first call, or the graph has
///                 jump edges (whose early reads must see bottom — a
///                 warm arena cannot provide that, see Section 5.3);
///                 the normal solver stack runs and refills the memo.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_DATAFLOW_INCREMENTAL_H
#define GNT_DATAFLOW_INCREMENTAL_H

#include "dataflow/GiveNTake.h"
#include "support/DataflowMatrix.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gnt {

/// The previous solve of one (problem slot, option set): everything
/// needed to detect what an edit changed and to reuse what it did not.
/// The arena is immutable once stored — partial solves clone it — so
/// exported results may keep borrowing its rows indefinitely.
struct GntSolveMemo {
  /// Digest of the oriented graph shape + problem metadata (node count,
  /// direction, universe size, edges, interval structure, NoHoist set).
  /// A mismatch invalidates everything: node ids are not stable across
  /// structural edits.
  std::uint64_t StructureDigest = 0;
  /// Per-node FNV digest of the oriented TAKE/GIVE/STEAL init rows.
  std::vector<std::uint64_t> InputDigests;
  /// The converged solution arena (20 x Nodes rows). Immutable by
  /// discipline once stored: partial solves clone it before writing, so
  /// any number of exported results can keep borrowing its rows.
  std::shared_ptr<DataflowMatrix> Arena;
  unsigned Nodes = 0;
  unsigned UniverseSize = 0;

  bool valid() const { return Arena != nullptr; }
  void clear() {
    StructureDigest = 0;
    InputDigests.clear();
    Arena.reset();
    Nodes = 0;
    UniverseSize = 0;
  }
};

/// Counters describing what the incremental driver did. Monotone;
/// merged into service metrics and the gntd shutdown block.
struct GntIncrementalStats {
  unsigned long long FullSolves = 0;    ///< Cold or fallback solves.
  unsigned long long MemoHits = 0;      ///< Arena re-exported unchanged.
  unsigned long long PartialSolves = 0; ///< Masked re-solves.
  /// Node/interval accounting over partial solves only: how much of the
  /// graph the masked re-solves actually touched vs its size. A strict
  /// subset (Resolved < Total) is the whole point.
  unsigned long long NodesTotal = 0;
  unsigned long long NodesResolved = 0;
  unsigned long long IntervalsTotal = 0;
  unsigned long long IntervalsResolved = 0;

  void merge(const GntIncrementalStats &O) {
    FullSolves += O.FullSolves;
    MemoHits += O.MemoHits;
    PartialSolves += O.PartialSolves;
    NodesTotal += O.NodesTotal;
    NodesResolved += O.NodesResolved;
    IntervalsTotal += O.IntervalsTotal;
    IntervalsResolved += O.IntervalsResolved;
  }

  bool any() const {
    return FullSolves || MemoHits || PartialSolves;
  }
};

/// Digest of the *oriented* graph shape and problem metadata — every
/// structural fact the solver's schedule depends on. Equal digests mean
/// node ids, edges, interval structure, direction, universe size and
/// the NoHoist set all match, so per-node input digests are comparable.
std::uint64_t gntStructureDigest(const IntervalFlowGraph &Ifg,
                                 const GntProblem &P);

/// FNV digest of node \p N's init rows in \p P.
std::uint64_t gntNodeInputDigest(const GntProblem &P, NodeId N);

/// Drop-in replacement for runGiveNTake() that consults and refills
/// \p Memo: orients the problem identically, then serves the result as
/// a memo hit, a masked partial re-solve, or a full solve (see file
/// comment). Results are byte-identical to runGiveNTake() by contract.
/// Not thread-safe with respect to \p Memo — callers serialize access
/// per memo slot.
GntRun runGiveNTakeIncremental(const IntervalFlowGraph &Forward,
                               const GntProblem &P, unsigned SolverShards,
                               bool CompressUniverse, GntSolveMemo &Memo,
                               GntIncrementalStats &Stats);

/// The memo slots one pipeline compilation can thread through its
/// solves: Comm mode uses Read/Write, PRE mode uses Pre. Owned by the
/// service's stage cache, keyed by the solve-relevant option subset.
struct GntIncrementalContext {
  GntSolveMemo Read;
  GntSolveMemo Write;
  GntSolveMemo Pre;
  GntIncrementalStats Stats;
};

/// Serializes \p Memo into a self-checking binary payload ("GNTMEMO1"
/// magic, little-endian u64 fields, trailing FNV checksum) suitable for
/// the service's DiskCache. Empty string when the memo is invalid.
std::string serializeGntMemo(const GntSolveMemo &Memo);

/// Rebuilds \p Memo from a payload produced by serializeGntMemo().
/// Defensive like the disk cache itself: any mismatch (magic, sizes,
/// checksum, truncation) returns false and leaves \p Memo cleared — a
/// corrupt artifact costs one full solve, never a wrong answer.
bool deserializeGntMemo(const std::string &Payload, GntSolveMemo &Memo);

} // namespace gnt

#endif // GNT_DATAFLOW_INCREMENTAL_H
