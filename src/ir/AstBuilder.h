//===- ir/AstBuilder.h - Convenience AST construction ----------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Free-function helpers for building FMini ASTs programmatically. Used by
/// unit tests, the random program generator, and the examples; programs
/// can equally be produced by the parser in src/frontend.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_IR_ASTBUILDER_H
#define GNT_IR_ASTBUILDER_H

#include "ir/Ast.h"

namespace gnt::build {

inline ExprPtr lit(long long V) {
  return std::make_unique<IntLitExpr>(V, SourceLoc());
}

inline ExprPtr var(const std::string &Name) {
  return std::make_unique<VarExpr>(Name, SourceLoc());
}

inline ExprPtr aref(const std::string &Array, ExprPtr Sub) {
  return std::make_unique<ArrayRefExpr>(Array, std::move(Sub), SourceLoc());
}

inline ExprPtr bin(BinaryExpr::Op Op, ExprPtr L, ExprPtr R) {
  return std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R),
                                      SourceLoc());
}

inline ExprPtr add(ExprPtr L, ExprPtr R) {
  return bin(BinaryExpr::Op::Add, std::move(L), std::move(R));
}

inline ExprPtr sub(ExprPtr L, ExprPtr R) {
  return bin(BinaryExpr::Op::Sub, std::move(L), std::move(R));
}

inline ExprPtr call(const std::string &Callee, std::vector<ExprPtr> Args) {
  return std::make_unique<CallExpr>(Callee, std::move(Args), SourceLoc());
}

inline StmtPtr assign(ExprPtr LHS, ExprPtr RHS) {
  return std::make_unique<AssignStmt>(std::move(LHS), std::move(RHS),
                                      SourceLoc());
}

inline StmtPtr doLoop(const std::string &Idx, ExprPtr Lo, ExprPtr Hi,
                      StmtList Body) {
  return std::make_unique<DoStmt>(Idx, std::move(Lo), std::move(Hi),
                                  std::move(Body), SourceLoc());
}

inline StmtPtr ifThen(ExprPtr Cond, StmtList Then, StmtList Else = {}) {
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else), SourceLoc());
}

inline StmtPtr gotoStmt(unsigned Target) {
  return std::make_unique<GotoStmt>(Target, SourceLoc());
}

inline StmtPtr ifGoto(ExprPtr Cond, unsigned Target) {
  StmtList Then;
  Then.push_back(gotoStmt(Target));
  return ifThen(std::move(Cond), std::move(Then));
}

inline StmtPtr labeled(unsigned Label, StmtPtr S) {
  S->setLabel(Label);
  return S;
}

inline StmtPtr cont() { return std::make_unique<ContinueStmt>(SourceLoc()); }

/// Collects statements into a StmtList (variadic convenience).
template <typename... Ts> StmtList stmts(Ts &&...Items) {
  StmtList L;
  (L.push_back(std::forward<Ts>(Items)), ...);
  return L;
}

} // namespace gnt::build

#endif // GNT_IR_ASTBUILDER_H
