//===- ir/Ast.cpp - FMini AST out-of-line definitions ---------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Ast.h"

using namespace gnt;

// Out-of-line virtual destructors anchor the vtables.
Expr::~Expr() = default;
Stmt::~Stmt() = default;

void gnt::forEachExpr(const Expr *E,
                      const std::function<void(const Expr *)> &Fn) {
  if (!E)
    return;
  Fn(E);
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::Var:
    break;
  case Expr::Kind::ArrayRef:
    forEachExpr(cast<ArrayRefExpr>(E)->getSubscript(), Fn);
    break;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    forEachExpr(B->getLHS(), Fn);
    forEachExpr(B->getRHS(), Fn);
    break;
  }
  case Expr::Kind::Unary:
    forEachExpr(cast<UnaryExpr>(E)->getOperand(), Fn);
    break;
  case Expr::Kind::Call:
    for (const ExprPtr &A : cast<CallExpr>(E)->getArgs())
      forEachExpr(A.get(), Fn);
    break;
  }
}

void gnt::forEachStmt(const StmtList &List,
                      const std::function<void(const Stmt *)> &Fn) {
  for (const StmtPtr &S : List) {
    Fn(S.get());
    switch (S->getKind()) {
    case Stmt::Kind::Do:
      forEachStmt(cast<DoStmt>(S.get())->getBody(), Fn);
      break;
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(S.get());
      forEachStmt(If->getThen(), Fn);
      forEachStmt(If->getElse(), Fn);
      break;
    }
    case Stmt::Kind::Assign:
    case Stmt::Kind::Goto:
    case Stmt::Kind::Continue:
      break;
    }
  }
}
