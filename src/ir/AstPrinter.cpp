//===- ir/AstPrinter.cpp - FMini source printer ----------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/AstPrinter.h"

#include "support/Support.h"

using namespace gnt;

static const char *binOpSpelling(BinaryExpr::Op Op) {
  switch (Op) {
  case BinaryExpr::Op::Add:
    return "+";
  case BinaryExpr::Op::Sub:
    return "-";
  case BinaryExpr::Op::Mul:
    return "*";
  case BinaryExpr::Op::Div:
    return "/";
  case BinaryExpr::Op::Lt:
    return "<";
  case BinaryExpr::Op::Le:
    return "<=";
  case BinaryExpr::Op::Gt:
    return ">";
  case BinaryExpr::Op::Ge:
    return ">=";
  case BinaryExpr::Op::Eq:
    return "==";
  case BinaryExpr::Op::Ne:
    return "!=";
  }
  gntUnreachable("covered switch");
}

static unsigned binOpPrecedence(BinaryExpr::Op Op) {
  switch (Op) {
  case BinaryExpr::Op::Mul:
  case BinaryExpr::Op::Div:
    return 3;
  case BinaryExpr::Op::Add:
  case BinaryExpr::Op::Sub:
    return 2;
  default:
    return 1;
  }
}

static std::string printExprPrec(const Expr *E, unsigned ParentPrec) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return itostr(cast<IntLitExpr>(E)->getValue());
  case Expr::Kind::Var:
    return cast<VarExpr>(E)->getName();
  case Expr::Kind::ArrayRef: {
    const auto *A = cast<ArrayRefExpr>(E);
    return A->getArray() + "(" + printExprPrec(A->getSubscript(), 0) + ")";
  }
  case Expr::Kind::Unary:
    return "-" + printExprPrec(cast<UnaryExpr>(E)->getOperand(), 4);
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    unsigned Prec = binOpPrecedence(B->getOp());
    std::string S = printExprPrec(B->getLHS(), Prec) + " " +
                    binOpSpelling(B->getOp()) + " " +
                    printExprPrec(B->getRHS(), Prec + 1);
    if (Prec < ParentPrec)
      return "(" + S + ")";
    return S;
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    std::vector<std::string> Args;
    for (const ExprPtr &A : C->getArgs())
      Args.push_back(printExprPrec(A.get(), 0));
    return C->getCallee() + "(" + join(Args, ", ") + ")";
  }
  }
  gntUnreachable("covered switch");
}

std::string AstPrinter::printExpr(const Expr *E) {
  return printExprPrec(E, 0);
}

void AstPrinter::emitAnnotations(const Stmt *S, EmitWhere W, unsigned Level,
                                 std::string &Out) const {
  if (!Ann)
    return;
  for (const std::string &Line : Ann(S, W))
    Out += indent(Level) + Line + "\n";
}

void AstPrinter::printStmt(const Stmt *S, unsigned Level,
                           std::string &Out) const {
  emitAnnotations(S, EmitWhere::Before, Level, Out);

  std::string LabelPrefix;
  if (S->getLabel() != 0)
    LabelPrefix = itostr(S->getLabel()) + " ";

  switch (S->getKind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    Out += indent(Level) + LabelPrefix + printExpr(A->getLHS()) + " = " +
           printExpr(A->getRHS()) + "\n";
    break;
  }
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(S);
    Out += indent(Level) + LabelPrefix + "do " + D->getIndexVar() + " = " +
           printExpr(D->getLo()) + ", " + printExpr(D->getHi()) + "\n";
    emitAnnotations(S, EmitWhere::BodyStart, Level + 1, Out);
    printStmts(D->getBody(), Level + 1, Out);
    emitAnnotations(S, EmitWhere::BodyEnd, Level + 1, Out);
    Out += indent(Level) + "enddo\n";
    break;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    // `if (c) goto L` prints in its compact one-line form when there is
    // nothing to place inside its branches.
    bool CompactGoto = !If->hasElse() && If->getThen().size() == 1 &&
                       isa<GotoStmt>(If->getThen().front().get());
    if (CompactGoto && Ann) {
      const Stmt *G = If->getThen().front().get();
      CompactGoto = Ann(If, EmitWhere::ThenEntry).empty() &&
                    Ann(If, EmitWhere::ThenExit).empty() &&
                    Ann(If, EmitWhere::ElseEntry).empty() &&
                    Ann(If, EmitWhere::ElseExit).empty() &&
                    Ann(G, EmitWhere::Before).empty() &&
                    Ann(G, EmitWhere::After).empty();
    }
    if (CompactGoto) {
      const auto *G = cast<GotoStmt>(If->getThen().front().get());
      Out += indent(Level) + LabelPrefix + "if (" + printExpr(If->getCond()) +
             ") goto " + itostr(G->getTarget()) + "\n";
      break;
    }
    Out += indent(Level) + LabelPrefix + "if (" + printExpr(If->getCond()) +
           ") then\n";
    emitAnnotations(S, EmitWhere::ThenEntry, Level + 1, Out);
    printStmts(If->getThen(), Level + 1, Out);
    emitAnnotations(S, EmitWhere::ThenExit, Level + 1, Out);
    bool NeedElse = If->hasElse();
    if (!NeedElse && Ann)
      NeedElse = !Ann(S, EmitWhere::ElseEntry).empty() ||
                 !Ann(S, EmitWhere::ElseExit).empty();
    if (NeedElse) {
      Out += indent(Level) + "else\n";
      emitAnnotations(S, EmitWhere::ElseEntry, Level + 1, Out);
      printStmts(If->getElse(), Level + 1, Out);
      emitAnnotations(S, EmitWhere::ElseExit, Level + 1, Out);
    }
    Out += indent(Level) + "endif\n";
    break;
  }
  case Stmt::Kind::Goto:
    Out += indent(Level) + LabelPrefix + "goto " +
           itostr(cast<GotoStmt>(S)->getTarget()) + "\n";
    break;
  case Stmt::Kind::Continue:
    Out += indent(Level) + LabelPrefix + "continue\n";
    break;
  }

  emitAnnotations(S, EmitWhere::After, Level, Out);
}

void AstPrinter::printStmts(const StmtList &List, unsigned Level,
                            std::string &Out) const {
  for (const StmtPtr &S : List)
    printStmt(S.get(), Level, Out);
}

std::string AstPrinter::printStmts(const StmtList &List,
                                   unsigned Level) const {
  std::string Out;
  printStmts(List, Level, Out);
  return Out;
}

std::string AstPrinter::print(const Program &P) const {
  std::string Out;
  std::vector<std::string> Dist, Local;
  for (const auto &[Name, Info] : P.getArrays())
    (Info.Distributed ? Dist : Local).push_back(Name);
  if (!Dist.empty())
    Out += "distribute " + join(Dist, ", ") + "\n";
  if (!Local.empty())
    Out += "array " + join(Local, ", ") + "\n";
  printStmts(P.getBody(), 0, Out);
  return Out;
}
