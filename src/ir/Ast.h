//===- ir/Ast.h - FMini abstract syntax tree --------------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax tree of FMini, the Fortran-flavored mini language
/// used to drive the GIVE-N-TAKE framework. FMini covers exactly the
/// constructs exercised by the paper: counted DO loops (zero-trip capable),
/// IF/THEN/ELSE, forward GOTOs (including jumps out of loop nests),
/// assignments, and one-dimensional array references including indirect
/// references like `x(a(k))`. Arrays may be declared `distribute`d, which
/// makes their references and definitions participate in communication
/// generation.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_IR_AST_H
#define GNT_IR_AST_H

#include "support/Casting.h"

#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gnt {

/// Line/column pair for diagnostics. Line 0 means "unknown".
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all FMini expressions.
class Expr {
public:
  enum class Kind { IntLit, Var, ArrayRef, Binary, Unary, Call };

  virtual ~Expr();

  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

protected:
  Expr(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(long long Value, SourceLoc Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}

  long long getValue() const { return Value; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::IntLit; }

private:
  long long Value;
};

/// Reference to a scalar variable (loop index or symbolic parameter).
class VarExpr : public Expr {
public:
  VarExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::Var, Loc), Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Var; }

private:
  std::string Name;
};

/// One-dimensional array element reference `a(subscript)`.
class ArrayRefExpr : public Expr {
public:
  ArrayRefExpr(std::string Array, ExprPtr Subscript, SourceLoc Loc)
      : Expr(Kind::ArrayRef, Loc), Array(std::move(Array)),
        Subscript(std::move(Subscript)) {}

  const std::string &getArray() const { return Array; }
  const Expr *getSubscript() const { return Subscript.get(); }
  ExprPtr &getSubscriptPtr() { return Subscript; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::ArrayRef; }

private:
  std::string Array;
  ExprPtr Subscript;
};

/// Binary arithmetic or comparison.
class BinaryExpr : public Expr {
public:
  enum class Op { Add, Sub, Mul, Div, Lt, Le, Gt, Ge, Eq, Ne };

  BinaryExpr(Op TheOp, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), TheOp(TheOp), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  Op getOp() const { return TheOp; }
  const Expr *getLHS() const { return LHS.get(); }
  const Expr *getRHS() const { return RHS.get(); }
  ExprPtr &getLHSPtr() { return LHS; }
  ExprPtr &getRHSPtr() { return RHS; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }

private:
  Op TheOp;
  ExprPtr LHS, RHS;
};

/// Unary negation.
class UnaryExpr : public Expr {
public:
  UnaryExpr(ExprPtr Operand, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Operand(std::move(Operand)) {}

  const Expr *getOperand() const { return Operand.get(); }
  ExprPtr &getOperandPtr() { return Operand; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }

private:
  ExprPtr Operand;
};

/// Call of an opaque intrinsic, e.g. `test(i)`. Calls are side-effect free
/// scalar functions; their arguments may reference distributed arrays.
class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &getCallee() const { return Callee; }
  const std::vector<ExprPtr> &getArgs() const { return Args; }
  std::vector<ExprPtr> &getArgsRef() { return Args; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

/// Base class of all FMini statements. A statement may carry a numeric
/// label (Fortran style), which GOTOs target.
class Stmt {
public:
  enum class Kind { Assign, Do, If, Goto, Continue };

  virtual ~Stmt();

  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

  /// The statement's Fortran label, or 0 if unlabeled.
  unsigned getLabel() const { return Label; }
  void setLabel(unsigned L) { Label = L; }

protected:
  Stmt(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
  unsigned Label = 0;
};

/// Assignment `lhs = rhs`, where lhs is a scalar or array reference.
class AssignStmt : public Stmt {
public:
  AssignStmt(ExprPtr LHS, ExprPtr RHS, SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), LHS(std::move(LHS)), RHS(std::move(RHS)) {}

  const Expr *getLHS() const { return LHS.get(); }
  const Expr *getRHS() const { return RHS.get(); }
  ExprPtr &getLHSPtr() { return LHS; }
  ExprPtr &getRHSPtr() { return RHS; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }

private:
  ExprPtr LHS, RHS;
};

/// Counted loop `do i = lo, hi ... enddo`. Like a Fortran DO loop it is
/// zero-trip: if hi < lo the body never executes.
class DoStmt : public Stmt {
public:
  DoStmt(std::string IndexVar, ExprPtr Lo, ExprPtr Hi, StmtList Body,
         SourceLoc Loc)
      : Stmt(Kind::Do, Loc), IndexVar(std::move(IndexVar)), Lo(std::move(Lo)),
        Hi(std::move(Hi)), Body(std::move(Body)) {}

  const std::string &getIndexVar() const { return IndexVar; }
  const Expr *getLo() const { return Lo.get(); }
  const Expr *getHi() const { return Hi.get(); }
  ExprPtr &getLoPtr() { return Lo; }
  ExprPtr &getHiPtr() { return Hi; }
  const StmtList &getBody() const { return Body; }
  StmtList &getBodyRef() { return Body; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Do; }

private:
  std::string IndexVar;
  ExprPtr Lo, Hi;
  StmtList Body;
};

/// Conditional `if (cond) then ... [else ...] endif`. The single-statement
/// form `if (cond) goto L` is represented with a then-branch holding just
/// the GotoStmt and no else branch.
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtList Then, StmtList Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr *getCond() const { return Cond.get(); }
  ExprPtr &getCondPtr() { return Cond; }
  const StmtList &getThen() const { return Then; }
  const StmtList &getElse() const { return Else; }
  StmtList &getThenRef() { return Then; }
  StmtList &getElseRef() { return Else; }
  bool hasElse() const { return !Else.empty(); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtList Then, Else;
};

/// Unconditional `goto L`. FMini requires forward gotos whose target is at
/// the same or a shallower loop nesting level (jumps out of loops); this
/// keeps every control flow graph reducible, as GIVE-N-TAKE requires.
class GotoStmt : public Stmt {
public:
  GotoStmt(unsigned Target, SourceLoc Loc)
      : Stmt(Kind::Goto, Loc), Target(Target) {}

  unsigned getTarget() const { return Target; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Goto; }

private:
  unsigned Target;
};

/// `continue` — a no-op statement, typically used as a label carrier.
class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(Kind::Continue, Loc) {}

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Continue; }
};

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

/// Per-array metadata.
struct ArrayInfo {
  /// True if declared with `distribute a`; references to distributed
  /// arrays participate in communication generation.
  bool Distributed = false;
};

/// A whole FMini program: declarations plus a top-level statement list.
class Program {
public:
  Program() = default;
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  const StmtList &getBody() const { return Body; }
  StmtList &getBody() { return Body; }

  /// Declares (or updates) array \p Name.
  void declareArray(const std::string &Name, bool Distributed) {
    Arrays[Name].Distributed |= Distributed;
  }

  /// Returns true if \p Name is a declared, distributed array.
  bool isDistributed(const std::string &Name) const {
    auto It = Arrays.find(Name);
    return It != Arrays.end() && It->second.Distributed;
  }

  const std::map<std::string, ArrayInfo> &getArrays() const { return Arrays; }

private:
  StmtList Body;
  std::map<std::string, ArrayInfo> Arrays;
};

//===----------------------------------------------------------------------===//
// Traversal helpers
//===----------------------------------------------------------------------===//

/// Invokes \p Fn on \p E and every transitively contained expression.
void forEachExpr(const Expr *E, const std::function<void(const Expr *)> &Fn);

/// Invokes \p Fn on every statement in \p List, recursing into loop and if
/// bodies (pre-order).
void forEachStmt(const StmtList &List,
                 const std::function<void(const Stmt *)> &Fn);

} // namespace gnt

#endif // GNT_IR_AST_H
