//===- ir/Affine.cpp - Symbolic affine expressions -------------------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Affine.h"

#include "ir/Ast.h"
#include "support/Support.h"

#include <sstream>

using namespace gnt;

AffineExpr AffineExpr::constant(long long C) {
  AffineExpr E;
  E.Affine = true;
  E.Const = C;
  return E;
}

AffineExpr AffineExpr::symbol(const std::string &Name) {
  AffineExpr E;
  E.Affine = true;
  E.Terms[Name] = 1;
  return E;
}

AffineExpr AffineExpr::operator+(const AffineExpr &RHS) const {
  if (!Affine || !RHS.Affine)
    return AffineExpr();
  AffineExpr R = *this;
  R.Const += RHS.Const;
  for (const auto &[Sym, C] : RHS.Terms) {
    long long NewC = R.coeffOf(Sym) + C;
    if (NewC == 0)
      R.Terms.erase(Sym);
    else
      R.Terms[Sym] = NewC;
  }
  return R;
}

AffineExpr AffineExpr::negate() const {
  if (!Affine)
    return AffineExpr();
  AffineExpr R = *this;
  R.Const = -R.Const;
  for (auto &[Sym, C] : R.Terms)
    C = -C;
  return R;
}

AffineExpr AffineExpr::operator-(const AffineExpr &RHS) const {
  return *this + RHS.negate();
}

AffineExpr AffineExpr::operator*(const AffineExpr &RHS) const {
  if (!Affine || !RHS.Affine)
    return AffineExpr();
  const AffineExpr *Scalar = nullptr, *Other = nullptr;
  if (isConstant()) {
    Scalar = this;
    Other = &RHS;
  } else if (RHS.isConstant()) {
    Scalar = &RHS;
    Other = this;
  } else {
    return AffineExpr(); // Symbolic product is not affine.
  }
  long long K = Scalar->Const;
  if (K == 0)
    return constant(0);
  AffineExpr R = *Other;
  R.Const *= K;
  for (auto &[Sym, C] : R.Terms)
    C *= K;
  return R;
}

AffineExpr AffineExpr::substitute(const std::string &Sym,
                                  const AffineExpr &Repl) const {
  if (!Affine)
    return AffineExpr();
  long long C = coeffOf(Sym);
  if (C == 0)
    return *this;
  AffineExpr Without = *this;
  Without.Terms.erase(Sym);
  return Without + Repl * constant(C);
}

std::optional<long long> AffineExpr::differenceFrom(const AffineExpr &RHS) const {
  if (!Affine || !RHS.Affine)
    return std::nullopt;
  AffineExpr D = *this - RHS;
  if (!D.isConstant())
    return std::nullopt;
  return D.getConstant();
}

bool AffineExpr::operator<(const AffineExpr &RHS) const {
  if (Affine != RHS.Affine)
    return Affine < RHS.Affine;
  if (Const != RHS.Const)
    return Const < RHS.Const;
  return Terms < RHS.Terms;
}

std::string AffineExpr::toString() const {
  if (!Affine)
    return "<nonaffine>";
  std::ostringstream OS;
  bool First = true;
  for (const auto &[Sym, C] : Terms) {
    if (C == 0)
      continue;
    if (First) {
      if (C == -1)
        OS << '-';
      else if (C != 1)
        OS << C << '*';
    } else {
      OS << (C > 0 ? "+" : "-");
      if (C != 1 && C != -1)
        OS << (C > 0 ? C : -C) << '*';
    }
    OS << Sym;
    First = false;
  }
  if (First)
    return itostr(Const);
  if (Const > 0)
    OS << '+' << Const;
  else if (Const < 0)
    OS << Const;
  return OS.str();
}

AffineExpr AffineExpr::fromExpr(const Expr *E) {
  if (!E)
    return AffineExpr();
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return constant(cast<IntLitExpr>(E)->getValue());
  case Expr::Kind::Var:
    return symbol(cast<VarExpr>(E)->getName());
  case Expr::Kind::Unary:
    return fromExpr(cast<UnaryExpr>(E)->getOperand()).negate();
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    AffineExpr L = fromExpr(B->getLHS());
    AffineExpr R = fromExpr(B->getRHS());
    switch (B->getOp()) {
    case BinaryExpr::Op::Add:
      return L + R;
    case BinaryExpr::Op::Sub:
      return L - R;
    case BinaryExpr::Op::Mul:
      return L * R;
    default:
      return AffineExpr(); // Division and comparisons are not affine.
    }
  }
  case Expr::Kind::ArrayRef:
  case Expr::Kind::Call:
    return AffineExpr();
  }
  gntUnreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Section
//===----------------------------------------------------------------------===//

bool Section::isProvablyEmpty() const {
  if (!isKnown())
    return false;
  std::optional<long long> D = Hi.differenceFrom(Lo);
  return D.has_value() && *D < 0;
}

bool Section::mayOverlap(const Section &RHS) const {
  // Unknown sections overlap everything.
  if (!isKnown() || !RHS.isKnown())
    return true;
  if (isProvablyEmpty() || RHS.isProvablyEmpty())
    return false;
  // Provably disjoint if one section ends before the other begins, which
  // we can only decide when the bound difference is a compile-time
  // constant. (Symbols may take any value, so anything else may overlap.)
  std::optional<long long> D1 = RHS.Lo.differenceFrom(Hi); // RHS.Lo - Hi
  if (D1 && *D1 > 0)
    return false;
  std::optional<long long> D2 = Lo.differenceFrom(RHS.Hi); // Lo - RHS.Hi
  if (D2 && *D2 > 0)
    return false;
  // Same-stride sections with constant offset not divisible by the stride
  // interleave without touching, e.g. (1:N:2) vs (2:N:2).
  if (Stride == RHS.Stride && Stride > 1) {
    std::optional<long long> Off = RHS.Lo.differenceFrom(Lo);
    if (Off && (*Off % Stride) != 0)
      return false;
  }
  return true;
}

bool Section::operator<(const Section &RHS) const {
  if (Lo != RHS.Lo)
    return Lo < RHS.Lo;
  if (Hi != RHS.Hi)
    return Hi < RHS.Hi;
  return Stride < RHS.Stride;
}

std::string Section::toString() const {
  if (!isKnown())
    return "(?)";
  if (Lo == Hi)
    return "(" + Lo.toString() + ")";
  std::string R = "(" + Lo.toString() + ":" + Hi.toString();
  if (Stride != 1)
    R += ":" + itostr(Stride);
  return R + ")";
}
