//===- ir/AstPrinter.h - FMini source printer -------------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints FMini programs back to source form. The printer accepts an
/// annotation callback so that clients (notably the communication
/// generator) can interleave generated statements — e.g. Read_Send /
/// Read_Recv lines — at structural positions around each statement,
/// reproducing the style of the paper's Figures 2, 3 and 14.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_IR_ASTPRINTER_H
#define GNT_IR_ASTPRINTER_H

#include "ir/Ast.h"

#include <functional>
#include <string>
#include <vector>

namespace gnt {

/// Structural positions around a statement at which generated code can be
/// placed. These correspond to the control flow graph locations where
/// GIVE-N-TAKE may assign production, including the synthetic nodes
/// inserted to break critical edges (e.g. the "new else branch" of the
/// paper's Figure 3 and the jump landing pads of Figure 14).
enum class EmitWhere {
  Before,     ///< Immediately before the statement.
  After,      ///< Immediately after the statement (after enddo/endif).
  ThenEntry,  ///< First thing inside the then branch.
  ThenExit,   ///< Last thing inside the then branch.
  ElseEntry,  ///< First thing inside the (possibly synthesized) else branch.
  ElseExit,   ///< Last thing inside the else branch.
  BodyStart,  ///< Top of a loop body, executed every iteration.
  BodyEnd,    ///< End of a loop body (the latch), before enddo.
};

/// Renders programs and expressions as FMini source.
class AstPrinter {
public:
  /// Callback returning annotation lines for (statement, position).
  using AnnotationFn =
      std::function<std::vector<std::string>(const Stmt *, EmitWhere)>;

  AstPrinter() = default;
  explicit AstPrinter(AnnotationFn Ann) : Ann(std::move(Ann)) {}

  /// Prints the whole program, including declarations.
  std::string print(const Program &P) const;

  /// Prints a statement list at the given indent level.
  std::string printStmts(const StmtList &List, unsigned Level) const;

  /// Prints a single expression.
  static std::string printExpr(const Expr *E);

private:
  void printStmts(const StmtList &List, unsigned Level,
                  std::string &Out) const;
  void printStmt(const Stmt *S, unsigned Level, std::string &Out) const;
  void emitAnnotations(const Stmt *S, EmitWhere W, unsigned Level,
                       std::string &Out) const;

  AnnotationFn Ann;
};

} // namespace gnt

#endif // GNT_IR_ASTPRINTER_H
