//===- ir/Affine.h - Symbolic affine expressions and sections --*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small symbolic analysis engine: affine expressions over named scalar
/// symbols (loop indices, size parameters like N) with integer
/// coefficients, and regular array sections built from them.
///
/// This is the reproduction's stand-in for the symbolic analysis of the
/// Rice Fortran D compiler (Havlak's value numbering, acknowledged in the
/// paper). GIVE-N-TAKE itself only consumes the *identity* of items and a
/// conservative overlap relation, both of which this module supplies:
/// subscripts are normalized so that `x(a(k))` for k=1..N and `x(a(l))`
/// for l=1..N canonicalize to the same section, exactly as the paper's
/// Figure 2 caption requires.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_IR_AFFINE_H
#define GNT_IR_AFFINE_H

#include <map>
#include <optional>
#include <string>

namespace gnt {

class Expr;

/// An affine expression: sum of coefficient*symbol terms plus a constant,
/// or the distinguished non-affine value.
class AffineExpr {
public:
  /// The non-affine ("don't know") value.
  AffineExpr() : Affine(false), Const(0) {}

  /// Creates the constant expression \p C.
  static AffineExpr constant(long long C);

  /// Creates the expression consisting of the single symbol \p Name.
  static AffineExpr symbol(const std::string &Name);

  /// Analyzes an FMini expression. Returns the non-affine value for
  /// anything that is not an integer affine combination of scalars
  /// (array references, calls, divisions, symbolic products).
  static AffineExpr fromExpr(const Expr *E);

  bool isAffine() const { return Affine; }
  bool isConstant() const { return Affine && Terms.empty(); }

  /// The constant value; only valid if isConstant().
  long long getConstant() const { return Const; }

  /// The constant term of an affine expression.
  long long getConstTerm() const { return Const; }

  /// Coefficient of \p Sym (0 if absent).
  long long coeffOf(const std::string &Sym) const {
    auto It = Terms.find(Sym);
    return It == Terms.end() ? 0 : It->second;
  }

  /// True if \p Sym occurs with nonzero coefficient.
  bool usesSymbol(const std::string &Sym) const { return coeffOf(Sym) != 0; }

  const std::map<std::string, long long> &getTerms() const { return Terms; }

  AffineExpr operator+(const AffineExpr &RHS) const;
  AffineExpr operator-(const AffineExpr &RHS) const;
  AffineExpr negate() const;
  /// Multiplication; affine only if either side is constant.
  AffineExpr operator*(const AffineExpr &RHS) const;

  /// Replaces every occurrence of \p Sym with \p Repl.
  AffineExpr substitute(const std::string &Sym, const AffineExpr &Repl) const;

  /// If (this - RHS) is a compile-time constant, returns it.
  std::optional<long long> differenceFrom(const AffineExpr &RHS) const;

  bool operator==(const AffineExpr &RHS) const {
    return Affine == RHS.Affine && Const == RHS.Const && Terms == RHS.Terms;
  }
  bool operator!=(const AffineExpr &RHS) const { return !(*this == RHS); }
  bool operator<(const AffineExpr &RHS) const;

  /// Renders e.g. "N+5", "2*i-1", "7", or "<nonaffine>".
  std::string toString() const;

private:
  bool Affine = true;
  std::map<std::string, long long> Terms;
  long long Const = 0;
};

/// A regular array section [Lo : Hi : Stride] with symbolic affine bounds.
/// Degenerate single elements are [e : e : 1]. An invalid (unknown)
/// section, produced from non-affine subscripts, compares equal only to
/// itself structurally and overlaps everything.
struct Section {
  AffineExpr Lo;
  AffineExpr Hi;
  long long Stride = 1;

  Section() = default;
  Section(AffineExpr Lo, AffineExpr Hi, long long Stride = 1)
      : Lo(std::move(Lo)), Hi(std::move(Hi)), Stride(Stride) {}

  /// Section holding the single element \p E.
  static Section element(const AffineExpr &E) { return Section(E, E, 1); }

  /// The unknown section (non-affine bounds).
  static Section unknown() { return Section(AffineExpr(), AffineExpr(), 1); }

  bool isKnown() const { return Lo.isAffine() && Hi.isAffine(); }

  /// True when the section is provably empty (Hi < Lo for all parameter
  /// values); only decidable for constant differences.
  bool isProvablyEmpty() const;

  /// Conservative overlap test: returns false only if the two sections
  /// are *provably* disjoint for every value of the symbolic parameters
  /// (assuming every symbol may take any integer value).
  bool mayOverlap(const Section &RHS) const;

  bool operator==(const Section &RHS) const {
    return Lo == RHS.Lo && Hi == RHS.Hi && Stride == RHS.Stride;
  }
  bool operator<(const Section &RHS) const;

  /// Renders "(lo:hi)" or "(e)" for single elements, Fortran style.
  std::string toString() const;
};

} // namespace gnt

#endif // GNT_IR_AFFINE_H
