//===- support/SimdKernels.cpp - Runtime-dispatched row kernels ------------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// One translation unit holds every variant: the wide-ISA functions are
// compiled under __attribute__((target(...))), so the file itself needs
// no -mavx2/-mavx512f flags and the surrounding binary stays runnable
// on the baseline ISA. Each variant is the same per-word bitwise
// evaluation; the vector bodies process 256/512 bits per iteration with
// unaligned loads and fall back to a scalar tail for the remainder, so
// results are byte-identical regardless of width or alignment.
//
//===----------------------------------------------------------------------===//

#include "support/SimdKernels.h"

#include "support/ItemClasses.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define GNT_SIMD_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define GNT_SIMD_NEON 1
#endif

using namespace gnt;
using Word = SolverKernels::Word;

//===----------------------------------------------------------------------===//
// Scalar variant
//
// These are the auto-vectorizable reference loops (they used to live
// inline in GiveNTake.cpp); every wide variant below must match them
// word for word. The scalar tails of the wide variants reuse them.
//===----------------------------------------------------------------------===//

namespace {
namespace sc {

void rowCopy(Word *D, const Word *A, unsigned W) {
  std::memcpy(D, A, W * sizeof(Word));
}

void rowOr(Word *__restrict D, const Word *__restrict A, unsigned W) {
  for (unsigned K = 0; K != W; ++K)
    D[K] |= A[K];
}

void rowAnd(Word *__restrict D, const Word *__restrict A, unsigned W) {
  for (unsigned K = 0; K != W; ++K)
    D[K] &= A[K];
}

void rowOrAndNot(Word *__restrict D, const Word *__restrict A,
                 const Word *__restrict B, unsigned W) {
  for (unsigned K = 0; K != W; ++K)
    D[K] |= A[K] & ~B[K];
}

void fuseGiveLoc(unsigned W, Word *__restrict D, const Word *__restrict Give,
                 const Word *__restrict Take, const Word *__restrict Steal) {
  for (unsigned K = 0; K != W; ++K)
    D[K] = (D[K] | Give[K] | Take[K]) & ~Steal[K];
}

void fuseS1(unsigned W, const Word *__restrict StealI,
            const Word *__restrict GiveI, const Word *__restrict TakeI,
            const Word *__restrict SumSteal, const Word *__restrict SumGive,
            const Word *__restrict EntryBlock,
            const Word *__restrict EntryTaken,
            const Word *__restrict EntryTake, const Word *__restrict FwdBlock,
            const Word *__restrict EfTake, Word HoistMask,
            const Word *__restrict TakenOut, Word *__restrict RSteal,
            Word *__restrict RGive, Word *__restrict RBlock,
            Word *__restrict RTake, Word *__restrict RTakenIn,
            Word *__restrict RBlockLoc, Word *__restrict RTakeLoc) {
  for (unsigned K = 0; K != W; ++K) {
    Word Steal = StealI[K] | SumSteal[K];
    Word Give = GiveI[K] | SumGive[K];
    Word Block = Steal | Give | EntryBlock[K];
    Word TOut = TakenOut[K];
    Word Take =
        TakeI[K] | (EntryTaken[K] & ~Steal) | (EntryTake[K] & TOut & ~Block);
    Word TakenIn = Take | (TOut & ~Block & HoistMask);
    Word BlockLoc = (Block | FwdBlock[K]) & ~Take;
    Word TakeLoc = (EfTake[K] & ~Block) | Take;
    RSteal[K] = Steal;
    RGive[K] = Give;
    RBlock[K] = Block;
    RTake[K] = Take;
    RTakenIn[K] = TakenIn;
    RBlockLoc[K] = BlockLoc;
    RTakeLoc[K] = TakeLoc;
  }
}

void fuseS3(unsigned W, Word *__restrict RGivenIn,
            const Word *__restrict PredUnion, const Word *__restrict HdrGiven,
            const Word *__restrict HdrSteal, const Word *__restrict NTakenIn,
            const Word *__restrict NUrgent, const Word *__restrict NGive,
            const Word *__restrict NSteal, Word *__restrict RGiven,
            Word *__restrict RGivenOut) {
  for (unsigned K = 0; K != W; ++K) {
    Word In = RGivenIn[K] | (HdrGiven[K] & ~HdrSteal[K]) |
              (PredUnion[K] & NTakenIn[K]);
    Word Given = In | NUrgent[K];
    RGivenIn[K] = In;
    RGiven[K] = Given;
    RGivenOut[K] = (NGive[K] | Given) & ~NSteal[K];
  }
}

Word fuseS4(unsigned W, bool FlipEq14, const Word *__restrict RGiven,
            const Word *__restrict RGivenIn, const Word *__restrict RGivenOut,
            Word *__restrict RResIn, Word *__restrict RResOut) {
  // FlipEq14 (the fuzz fault injection) as a mask keeps the loop
  // branch-free in every variant: GivenIn ^ ~0 == ~GivenIn.
  const Word Inv = FlipEq14 ? Word(0) : ~Word(0);
  Word AnyOut = 0;
  for (unsigned K = 0; K != W; ++K) {
    RResIn[K] = RGiven[K] & (RGivenIn[K] ^ Inv);
    Word Out = RResOut[K] & ~RGivenOut[K];
    RResOut[K] = Out;
    AnyOut |= Out;
  }
  return AnyOut;
}

Word fuseTransfer(unsigned W, Word *__restrict Out, const Word *__restrict In,
                  const Word *__restrict Gen, const Word *__restrict Kill) {
  Word Diff = 0;
  for (unsigned K = 0; K != W; ++K) {
    Word NV = (In[K] & ~Kill[K]) | Gen[K];
    Diff |= Out[K] ^ NV;
    Out[K] = NV;
  }
  return Diff;
}

bool anyWord(const Word *Src, unsigned SrcWords) {
  for (unsigned K = 0; K != SrcWords; ++K)
    if (Src[K])
      return true;
  return false;
}

void expandRowWords(Word *Dst, unsigned DstWords, const Word *Src,
                    unsigned SrcWords, const ExpandWordOp *Ops,
                    std::size_t NumOps) {
  if (!anyWord(Src, SrcWords)) {
    std::memset(Dst, 0, static_cast<std::size_t>(DstWords) * sizeof(Word));
    return;
  }
  for (std::size_t I = 0; I != NumOps; ++I) {
    const ExpandWordOp &Op = Ops[I];
    Word *D = Dst + Op.DstWord;
    if (Op.SrcWord == ExpandWordOp::ZeroFill) {
      std::memset(D, 0, static_cast<std::size_t>(Op.NumWords) * sizeof(Word));
      continue;
    }
    const Word *S = Src + Op.SrcWord;
    if (Op.NumWords > 32) {
      std::memcpy(D, S, static_cast<std::size_t>(Op.NumWords) * sizeof(Word));
      continue;
    }
    for (unsigned K = 0; K != Op.NumWords; ++K)
      D[K] = S[K];
  }
}

} // namespace sc

const SolverKernels ScalarKernels = {
    "scalar",      sc::rowCopy, sc::rowOr,         sc::rowAnd,
    sc::rowOrAndNot, sc::fuseGiveLoc, sc::fuseS1, sc::fuseS3,
    sc::fuseS4,    sc::fuseTransfer, sc::expandRowWords,
};

} // namespace

//===----------------------------------------------------------------------===//
// AVX2 / AVX-512 variants (x86)
//===----------------------------------------------------------------------===//

#if GNT_SIMD_X86

namespace {
namespace v2 {

#define GNT_AVX2 __attribute__((target("avx2")))

GNT_AVX2 inline __m256i ld(const Word *P) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(P));
}
GNT_AVX2 inline void st(Word *P, __m256i V) {
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(P), V);
}

GNT_AVX2 void rowCopy(Word *D, const Word *A, unsigned W) {
  unsigned K = 0;
  for (; K + 4 <= W; K += 4)
    st(D + K, ld(A + K));
  for (; K != W; ++K)
    D[K] = A[K];
}

GNT_AVX2 void rowOr(Word *D, const Word *A, unsigned W) {
  unsigned K = 0;
  for (; K + 4 <= W; K += 4)
    st(D + K, _mm256_or_si256(ld(D + K), ld(A + K)));
  for (; K != W; ++K)
    D[K] |= A[K];
}

GNT_AVX2 void rowAnd(Word *D, const Word *A, unsigned W) {
  unsigned K = 0;
  for (; K + 4 <= W; K += 4)
    st(D + K, _mm256_and_si256(ld(D + K), ld(A + K)));
  for (; K != W; ++K)
    D[K] &= A[K];
}

GNT_AVX2 void rowOrAndNot(Word *D, const Word *A, const Word *B, unsigned W) {
  unsigned K = 0;
  for (; K + 4 <= W; K += 4)
    st(D + K,
       _mm256_or_si256(ld(D + K), _mm256_andnot_si256(ld(B + K), ld(A + K))));
  for (; K != W; ++K)
    D[K] |= A[K] & ~B[K];
}

GNT_AVX2 void fuseGiveLoc(unsigned W, Word *D, const Word *Give,
                          const Word *Take, const Word *Steal) {
  unsigned K = 0;
  for (; K + 4 <= W; K += 4) {
    __m256i V = _mm256_or_si256(_mm256_or_si256(ld(D + K), ld(Give + K)),
                                ld(Take + K));
    st(D + K, _mm256_andnot_si256(ld(Steal + K), V));
  }
  for (; K != W; ++K)
    D[K] = (D[K] | Give[K] | Take[K]) & ~Steal[K];
}

GNT_AVX2 void fuseS1(unsigned W, const Word *StealI, const Word *GiveI,
                     const Word *TakeI, const Word *SumSteal,
                     const Word *SumGive, const Word *EntryBlock,
                     const Word *EntryTaken, const Word *EntryTake,
                     const Word *FwdBlock, const Word *EfTake, Word HoistMask,
                     const Word *TakenOut, Word *RSteal, Word *RGive,
                     Word *RBlock, Word *RTake, Word *RTakenIn,
                     Word *RBlockLoc, Word *RTakeLoc) {
  const __m256i Hoist =
      _mm256_set1_epi64x(static_cast<long long>(HoistMask));
  unsigned K = 0;
  for (; K + 4 <= W; K += 4) {
    __m256i Steal = _mm256_or_si256(ld(StealI + K), ld(SumSteal + K));
    __m256i Give = _mm256_or_si256(ld(GiveI + K), ld(SumGive + K));
    __m256i Block =
        _mm256_or_si256(_mm256_or_si256(Steal, Give), ld(EntryBlock + K));
    __m256i TOut = ld(TakenOut + K);
    __m256i Take = _mm256_or_si256(
        ld(TakeI + K),
        _mm256_or_si256(
            _mm256_andnot_si256(Steal, ld(EntryTaken + K)),
            _mm256_andnot_si256(Block,
                                _mm256_and_si256(ld(EntryTake + K), TOut))));
    __m256i TakenIn = _mm256_or_si256(
        Take, _mm256_and_si256(_mm256_andnot_si256(Block, TOut), Hoist));
    __m256i BlockLoc =
        _mm256_andnot_si256(Take, _mm256_or_si256(Block, ld(FwdBlock + K)));
    __m256i TakeLoc =
        _mm256_or_si256(_mm256_andnot_si256(Block, ld(EfTake + K)), Take);
    st(RSteal + K, Steal);
    st(RGive + K, Give);
    st(RBlock + K, Block);
    st(RTake + K, Take);
    st(RTakenIn + K, TakenIn);
    st(RBlockLoc + K, BlockLoc);
    st(RTakeLoc + K, TakeLoc);
  }
  if (K != W)
    sc::fuseS1(W - K, StealI + K, GiveI + K, TakeI + K, SumSteal + K,
               SumGive + K, EntryBlock + K, EntryTaken + K, EntryTake + K,
               FwdBlock + K, EfTake + K, HoistMask, TakenOut + K, RSteal + K,
               RGive + K, RBlock + K, RTake + K, RTakenIn + K, RBlockLoc + K,
               RTakeLoc + K);
}

GNT_AVX2 void fuseS3(unsigned W, Word *RGivenIn, const Word *PredUnion,
                     const Word *HdrGiven, const Word *HdrSteal,
                     const Word *NTakenIn, const Word *NUrgent,
                     const Word *NGive, const Word *NSteal, Word *RGiven,
                     Word *RGivenOut) {
  unsigned K = 0;
  for (; K + 4 <= W; K += 4) {
    __m256i In = _mm256_or_si256(
        ld(RGivenIn + K),
        _mm256_or_si256(
            _mm256_andnot_si256(ld(HdrSteal + K), ld(HdrGiven + K)),
            _mm256_and_si256(ld(PredUnion + K), ld(NTakenIn + K))));
    __m256i Given = _mm256_or_si256(In, ld(NUrgent + K));
    st(RGivenIn + K, In);
    st(RGiven + K, Given);
    st(RGivenOut + K,
       _mm256_andnot_si256(ld(NSteal + K),
                           _mm256_or_si256(ld(NGive + K), Given)));
  }
  if (K != W)
    sc::fuseS3(W - K, RGivenIn + K, PredUnion + K, HdrGiven + K, HdrSteal + K,
               NTakenIn + K, NUrgent + K, NGive + K, NSteal + K, RGiven + K,
               RGivenOut + K);
}

GNT_AVX2 Word fuseS4(unsigned W, bool FlipEq14, const Word *RGiven,
                     const Word *RGivenIn, const Word *RGivenOut, Word *RResIn,
                     Word *RResOut) {
  const Word InvW = FlipEq14 ? Word(0) : ~Word(0);
  const __m256i Inv = _mm256_set1_epi64x(static_cast<long long>(InvW));
  __m256i Any = _mm256_setzero_si256();
  unsigned K = 0;
  for (; K + 4 <= W; K += 4) {
    st(RResIn + K, _mm256_and_si256(ld(RGiven + K),
                                    _mm256_xor_si256(ld(RGivenIn + K), Inv)));
    __m256i Out = _mm256_andnot_si256(ld(RGivenOut + K), ld(RResOut + K));
    st(RResOut + K, Out);
    Any = _mm256_or_si256(Any, Out);
  }
  Word Lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(Lanes), Any);
  Word AnyOut = Lanes[0] | Lanes[1] | Lanes[2] | Lanes[3];
  if (K != W)
    AnyOut |= sc::fuseS4(W - K, FlipEq14, RGiven + K, RGivenIn + K,
                         RGivenOut + K, RResIn + K, RResOut + K);
  return AnyOut;
}

GNT_AVX2 Word fuseTransfer(unsigned W, Word *Out, const Word *In,
                           const Word *Gen, const Word *Kill) {
  __m256i Diff = _mm256_setzero_si256();
  unsigned K = 0;
  for (; K + 4 <= W; K += 4) {
    __m256i NV = _mm256_or_si256(
        _mm256_andnot_si256(ld(Kill + K), ld(In + K)), ld(Gen + K));
    Diff = _mm256_or_si256(Diff, _mm256_xor_si256(ld(Out + K), NV));
    st(Out + K, NV);
  }
  Word Lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(Lanes), Diff);
  Word D = Lanes[0] | Lanes[1] | Lanes[2] | Lanes[3];
  if (K != W)
    D |= sc::fuseTransfer(W - K, Out + K, In + K, Gen + K, Kill + K);
  return D;
}

GNT_AVX2 void expandRowWords(Word *Dst, unsigned DstWords, const Word *Src,
                             unsigned SrcWords, const ExpandWordOp *Ops,
                             std::size_t NumOps) {
  if (!sc::anyWord(Src, SrcWords)) {
    std::memset(Dst, 0, static_cast<std::size_t>(DstWords) * sizeof(Word));
    return;
  }
  const __m256i Zero = _mm256_setzero_si256();
  for (std::size_t I = 0; I != NumOps; ++I) {
    const ExpandWordOp &Op = Ops[I];
    Word *D = Dst + Op.DstWord;
    unsigned K = 0;
    if (Op.SrcWord == ExpandWordOp::ZeroFill) {
      for (; K + 4 <= Op.NumWords; K += 4)
        st(D + K, Zero);
      for (; K != Op.NumWords; ++K)
        D[K] = 0;
      continue;
    }
    const Word *S = Src + Op.SrcWord;
    for (; K + 4 <= Op.NumWords; K += 4)
      st(D + K, ld(S + K));
    for (; K != Op.NumWords; ++K)
      D[K] = S[K];
  }
}

#undef GNT_AVX2

} // namespace v2

const SolverKernels Avx2Kernels = {
    "avx2",        v2::rowCopy, v2::rowOr,         v2::rowAnd,
    v2::rowOrAndNot, v2::fuseGiveLoc, v2::fuseS1, v2::fuseS3,
    v2::fuseS4,    v2::fuseTransfer, v2::expandRowWords,
};

namespace v5 {

#define GNT_AVX512 __attribute__((target("avx512f")))

GNT_AVX512 inline __m512i ld(const Word *P) {
  return _mm512_loadu_si512(reinterpret_cast<const void *>(P));
}
GNT_AVX512 inline void st(Word *P, __m512i V) {
  _mm512_storeu_si512(reinterpret_cast<void *>(P), V);
}
/// A | B | C in one ternary-logic op (truth table 0xFE).
GNT_AVX512 inline __m512i or3(__m512i A, __m512i B, __m512i C) {
  return _mm512_ternarylogic_epi64(A, B, C, 0xFE);
}

GNT_AVX512 void rowCopy(Word *D, const Word *A, unsigned W) {
  unsigned K = 0;
  for (; K + 8 <= W; K += 8)
    st(D + K, ld(A + K));
  for (; K != W; ++K)
    D[K] = A[K];
}

GNT_AVX512 void rowOr(Word *D, const Word *A, unsigned W) {
  unsigned K = 0;
  for (; K + 8 <= W; K += 8)
    st(D + K, _mm512_or_epi64(ld(D + K), ld(A + K)));
  for (; K != W; ++K)
    D[K] |= A[K];
}

GNT_AVX512 void rowAnd(Word *D, const Word *A, unsigned W) {
  unsigned K = 0;
  for (; K + 8 <= W; K += 8)
    st(D + K, _mm512_and_epi64(ld(D + K), ld(A + K)));
  for (; K != W; ++K)
    D[K] &= A[K];
}

GNT_AVX512 void rowOrAndNot(Word *D, const Word *A, const Word *B,
                            unsigned W) {
  unsigned K = 0;
  for (; K + 8 <= W; K += 8)
    // D | (A & ~B): ternary truth table 0xF4 over (D, A, B).
    st(D + K, _mm512_ternarylogic_epi64(ld(D + K), ld(A + K), ld(B + K),
                                        0xF4));
  for (; K != W; ++K)
    D[K] |= A[K] & ~B[K];
}

GNT_AVX512 void fuseGiveLoc(unsigned W, Word *D, const Word *Give,
                            const Word *Take, const Word *Steal) {
  unsigned K = 0;
  for (; K + 8 <= W; K += 8) {
    __m512i V = or3(ld(D + K), ld(Give + K), ld(Take + K));
    st(D + K, _mm512_andnot_epi64(ld(Steal + K), V));
  }
  for (; K != W; ++K)
    D[K] = (D[K] | Give[K] | Take[K]) & ~Steal[K];
}

GNT_AVX512 void fuseS1(unsigned W, const Word *StealI, const Word *GiveI,
                       const Word *TakeI, const Word *SumSteal,
                       const Word *SumGive, const Word *EntryBlock,
                       const Word *EntryTaken, const Word *EntryTake,
                       const Word *FwdBlock, const Word *EfTake,
                       Word HoistMask, const Word *TakenOut, Word *RSteal,
                       Word *RGive, Word *RBlock, Word *RTake, Word *RTakenIn,
                       Word *RBlockLoc, Word *RTakeLoc) {
  const __m512i Hoist =
      _mm512_set1_epi64(static_cast<long long>(HoistMask));
  unsigned K = 0;
  for (; K + 8 <= W; K += 8) {
    __m512i Steal = _mm512_or_epi64(ld(StealI + K), ld(SumSteal + K));
    __m512i Give = _mm512_or_epi64(ld(GiveI + K), ld(SumGive + K));
    __m512i Block = or3(Steal, Give, ld(EntryBlock + K));
    __m512i TOut = ld(TakenOut + K);
    __m512i Take = or3(
        ld(TakeI + K), _mm512_andnot_epi64(Steal, ld(EntryTaken + K)),
        _mm512_andnot_epi64(Block,
                            _mm512_and_epi64(ld(EntryTake + K), TOut)));
    __m512i TakenIn = _mm512_or_epi64(
        Take, _mm512_and_epi64(_mm512_andnot_epi64(Block, TOut), Hoist));
    __m512i BlockLoc =
        _mm512_andnot_epi64(Take, _mm512_or_epi64(Block, ld(FwdBlock + K)));
    __m512i TakeLoc =
        _mm512_or_epi64(_mm512_andnot_epi64(Block, ld(EfTake + K)), Take);
    st(RSteal + K, Steal);
    st(RGive + K, Give);
    st(RBlock + K, Block);
    st(RTake + K, Take);
    st(RTakenIn + K, TakenIn);
    st(RBlockLoc + K, BlockLoc);
    st(RTakeLoc + K, TakeLoc);
  }
  if (K != W)
    sc::fuseS1(W - K, StealI + K, GiveI + K, TakeI + K, SumSteal + K,
               SumGive + K, EntryBlock + K, EntryTaken + K, EntryTake + K,
               FwdBlock + K, EfTake + K, HoistMask, TakenOut + K, RSteal + K,
               RGive + K, RBlock + K, RTake + K, RTakenIn + K, RBlockLoc + K,
               RTakeLoc + K);
}

GNT_AVX512 void fuseS3(unsigned W, Word *RGivenIn, const Word *PredUnion,
                       const Word *HdrGiven, const Word *HdrSteal,
                       const Word *NTakenIn, const Word *NUrgent,
                       const Word *NGive, const Word *NSteal, Word *RGiven,
                       Word *RGivenOut) {
  unsigned K = 0;
  for (; K + 8 <= W; K += 8) {
    __m512i In = or3(ld(RGivenIn + K),
                     _mm512_andnot_epi64(ld(HdrSteal + K), ld(HdrGiven + K)),
                     _mm512_and_epi64(ld(PredUnion + K), ld(NTakenIn + K)));
    __m512i Given = _mm512_or_epi64(In, ld(NUrgent + K));
    st(RGivenIn + K, In);
    st(RGiven + K, Given);
    st(RGivenOut + K,
       _mm512_andnot_epi64(ld(NSteal + K),
                           _mm512_or_epi64(ld(NGive + K), Given)));
  }
  if (K != W)
    sc::fuseS3(W - K, RGivenIn + K, PredUnion + K, HdrGiven + K, HdrSteal + K,
               NTakenIn + K, NUrgent + K, NGive + K, NSteal + K, RGiven + K,
               RGivenOut + K);
}

GNT_AVX512 Word fuseS4(unsigned W, bool FlipEq14, const Word *RGiven,
                       const Word *RGivenIn, const Word *RGivenOut,
                       Word *RResIn, Word *RResOut) {
  const Word InvW = FlipEq14 ? Word(0) : ~Word(0);
  const __m512i Inv = _mm512_set1_epi64(static_cast<long long>(InvW));
  __m512i Any = _mm512_setzero_si512();
  unsigned K = 0;
  for (; K + 8 <= W; K += 8) {
    st(RResIn + K, _mm512_and_epi64(ld(RGiven + K),
                                    _mm512_xor_epi64(ld(RGivenIn + K), Inv)));
    __m512i Out = _mm512_andnot_epi64(ld(RGivenOut + K), ld(RResOut + K));
    st(RResOut + K, Out);
    Any = _mm512_or_epi64(Any, Out);
  }
  Word AnyOut = static_cast<Word>(_mm512_reduce_or_epi64(Any));
  if (K != W)
    AnyOut |= sc::fuseS4(W - K, FlipEq14, RGiven + K, RGivenIn + K,
                         RGivenOut + K, RResIn + K, RResOut + K);
  return AnyOut;
}

GNT_AVX512 Word fuseTransfer(unsigned W, Word *Out, const Word *In,
                             const Word *Gen, const Word *Kill) {
  __m512i Diff = _mm512_setzero_si512();
  unsigned K = 0;
  for (; K + 8 <= W; K += 8) {
    __m512i NV = _mm512_or_epi64(
        _mm512_andnot_epi64(ld(Kill + K), ld(In + K)), ld(Gen + K));
    Diff = _mm512_or_epi64(Diff, _mm512_xor_epi64(ld(Out + K), NV));
    st(Out + K, NV);
  }
  Word D = static_cast<Word>(_mm512_reduce_or_epi64(Diff));
  if (K != W)
    D |= sc::fuseTransfer(W - K, Out + K, In + K, Gen + K, Kill + K);
  return D;
}

GNT_AVX512 void expandRowWords(Word *Dst, unsigned DstWords, const Word *Src,
                               unsigned SrcWords, const ExpandWordOp *Ops,
                               std::size_t NumOps) {
  if (!sc::anyWord(Src, SrcWords)) {
    std::memset(Dst, 0, static_cast<std::size_t>(DstWords) * sizeof(Word));
    return;
  }
  const __m512i Zero = _mm512_setzero_si512();
  for (std::size_t I = 0; I != NumOps; ++I) {
    const ExpandWordOp &Op = Ops[I];
    Word *D = Dst + Op.DstWord;
    unsigned K = 0;
    if (Op.SrcWord == ExpandWordOp::ZeroFill) {
      for (; K + 8 <= Op.NumWords; K += 8)
        st(D + K, Zero);
      for (; K != Op.NumWords; ++K)
        D[K] = 0;
      continue;
    }
    const Word *S = Src + Op.SrcWord;
    for (; K + 8 <= Op.NumWords; K += 8)
      st(D + K, ld(S + K));
    for (; K != Op.NumWords; ++K)
      D[K] = S[K];
  }
}

#undef GNT_AVX512

} // namespace v5

const SolverKernels Avx512Kernels = {
    "avx512",      v5::rowCopy, v5::rowOr,         v5::rowAnd,
    v5::rowOrAndNot, v5::fuseGiveLoc, v5::fuseS1, v5::fuseS3,
    v5::fuseS4,    v5::fuseTransfer, v5::expandRowWords,
};

} // namespace

#endif // GNT_SIMD_X86

//===----------------------------------------------------------------------===//
// NEON variant (aarch64)
//
// NEON is baseline on aarch64, so no target attribute is needed; the
// vectors are 128-bit (2 words), which mostly matches what the
// auto-vectorizer already does — the value of the variant is keeping
// the dispatch seam and the fused multi-output sweeps explicit.
//===----------------------------------------------------------------------===//

#if GNT_SIMD_NEON

namespace {
namespace vn {

inline uint64x2_t ld(const Word *P) { return vld1q_u64(P); }
inline void st(Word *P, uint64x2_t V) { vst1q_u64(P, V); }

void rowCopy(Word *D, const Word *A, unsigned W) {
  std::memcpy(D, A, W * sizeof(Word));
}

void rowOr(Word *D, const Word *A, unsigned W) {
  unsigned K = 0;
  for (; K + 2 <= W; K += 2)
    st(D + K, vorrq_u64(ld(D + K), ld(A + K)));
  for (; K != W; ++K)
    D[K] |= A[K];
}

void rowAnd(Word *D, const Word *A, unsigned W) {
  unsigned K = 0;
  for (; K + 2 <= W; K += 2)
    st(D + K, vandq_u64(ld(D + K), ld(A + K)));
  for (; K != W; ++K)
    D[K] &= A[K];
}

void rowOrAndNot(Word *D, const Word *A, const Word *B, unsigned W) {
  unsigned K = 0;
  for (; K + 2 <= W; K += 2)
    st(D + K, vorrq_u64(ld(D + K), vbicq_u64(ld(A + K), ld(B + K))));
  for (; K != W; ++K)
    D[K] |= A[K] & ~B[K];
}

void fuseGiveLoc(unsigned W, Word *D, const Word *Give, const Word *Take,
                 const Word *Steal) {
  unsigned K = 0;
  for (; K + 2 <= W; K += 2) {
    uint64x2_t V = vorrq_u64(vorrq_u64(ld(D + K), ld(Give + K)),
                             ld(Take + K));
    st(D + K, vbicq_u64(V, ld(Steal + K)));
  }
  for (; K != W; ++K)
    D[K] = (D[K] | Give[K] | Take[K]) & ~Steal[K];
}

void fuseS1(unsigned W, const Word *StealI, const Word *GiveI,
            const Word *TakeI, const Word *SumSteal, const Word *SumGive,
            const Word *EntryBlock, const Word *EntryTaken,
            const Word *EntryTake, const Word *FwdBlock, const Word *EfTake,
            Word HoistMask, const Word *TakenOut, Word *RSteal, Word *RGive,
            Word *RBlock, Word *RTake, Word *RTakenIn, Word *RBlockLoc,
            Word *RTakeLoc) {
  const uint64x2_t Hoist = vdupq_n_u64(HoistMask);
  unsigned K = 0;
  for (; K + 2 <= W; K += 2) {
    uint64x2_t Steal = vorrq_u64(ld(StealI + K), ld(SumSteal + K));
    uint64x2_t Give = vorrq_u64(ld(GiveI + K), ld(SumGive + K));
    uint64x2_t Block = vorrq_u64(vorrq_u64(Steal, Give), ld(EntryBlock + K));
    uint64x2_t TOut = ld(TakenOut + K);
    uint64x2_t Take = vorrq_u64(
        ld(TakeI + K),
        vorrq_u64(vbicq_u64(ld(EntryTaken + K), Steal),
                  vbicq_u64(vandq_u64(ld(EntryTake + K), TOut), Block)));
    uint64x2_t TakenIn =
        vorrq_u64(Take, vandq_u64(vbicq_u64(TOut, Block), Hoist));
    uint64x2_t BlockLoc =
        vbicq_u64(vorrq_u64(Block, ld(FwdBlock + K)), Take);
    uint64x2_t TakeLoc = vorrq_u64(vbicq_u64(ld(EfTake + K), Block), Take);
    st(RSteal + K, Steal);
    st(RGive + K, Give);
    st(RBlock + K, Block);
    st(RTake + K, Take);
    st(RTakenIn + K, TakenIn);
    st(RBlockLoc + K, BlockLoc);
    st(RTakeLoc + K, TakeLoc);
  }
  if (K != W)
    sc::fuseS1(W - K, StealI + K, GiveI + K, TakeI + K, SumSteal + K,
               SumGive + K, EntryBlock + K, EntryTaken + K, EntryTake + K,
               FwdBlock + K, EfTake + K, HoistMask, TakenOut + K, RSteal + K,
               RGive + K, RBlock + K, RTake + K, RTakenIn + K, RBlockLoc + K,
               RTakeLoc + K);
}

void fuseS3(unsigned W, Word *RGivenIn, const Word *PredUnion,
            const Word *HdrGiven, const Word *HdrSteal, const Word *NTakenIn,
            const Word *NUrgent, const Word *NGive, const Word *NSteal,
            Word *RGiven, Word *RGivenOut) {
  unsigned K = 0;
  for (; K + 2 <= W; K += 2) {
    uint64x2_t In = vorrq_u64(
        ld(RGivenIn + K),
        vorrq_u64(vbicq_u64(ld(HdrGiven + K), ld(HdrSteal + K)),
                  vandq_u64(ld(PredUnion + K), ld(NTakenIn + K))));
    uint64x2_t Given = vorrq_u64(In, ld(NUrgent + K));
    st(RGivenIn + K, In);
    st(RGiven + K, Given);
    st(RGivenOut + K,
       vbicq_u64(vorrq_u64(ld(NGive + K), Given), ld(NSteal + K)));
  }
  if (K != W)
    sc::fuseS3(W - K, RGivenIn + K, PredUnion + K, HdrGiven + K, HdrSteal + K,
               NTakenIn + K, NUrgent + K, NGive + K, NSteal + K, RGiven + K,
               RGivenOut + K);
}

Word fuseS4(unsigned W, bool FlipEq14, const Word *RGiven,
            const Word *RGivenIn, const Word *RGivenOut, Word *RResIn,
            Word *RResOut) {
  const uint64x2_t Inv = vdupq_n_u64(FlipEq14 ? Word(0) : ~Word(0));
  uint64x2_t Any = vdupq_n_u64(0);
  unsigned K = 0;
  for (; K + 2 <= W; K += 2) {
    st(RResIn + K,
       vandq_u64(ld(RGiven + K), veorq_u64(ld(RGivenIn + K), Inv)));
    uint64x2_t Out = vbicq_u64(ld(RResOut + K), ld(RGivenOut + K));
    st(RResOut + K, Out);
    Any = vorrq_u64(Any, Out);
  }
  Word AnyOut = vgetq_lane_u64(Any, 0) | vgetq_lane_u64(Any, 1);
  if (K != W)
    AnyOut |= sc::fuseS4(W - K, FlipEq14, RGiven + K, RGivenIn + K,
                         RGivenOut + K, RResIn + K, RResOut + K);
  return AnyOut;
}

Word fuseTransfer(unsigned W, Word *Out, const Word *In, const Word *Gen,
                  const Word *Kill) {
  uint64x2_t Diff = vdupq_n_u64(0);
  unsigned K = 0;
  for (; K + 2 <= W; K += 2) {
    uint64x2_t NV =
        vorrq_u64(vbicq_u64(ld(In + K), ld(Kill + K)), ld(Gen + K));
    Diff = vorrq_u64(Diff, veorq_u64(ld(Out + K), NV));
    st(Out + K, NV);
  }
  Word D = vgetq_lane_u64(Diff, 0) | vgetq_lane_u64(Diff, 1);
  if (K != W)
    D |= sc::fuseTransfer(W - K, Out + K, In + K, Gen + K, Kill + K);
  return D;
}

} // namespace vn

const SolverKernels NeonKernels = {
    "neon",        vn::rowCopy, vn::rowOr,         vn::rowAnd,
    vn::rowOrAndNot, vn::fuseGiveLoc, vn::fuseS1, vn::fuseS3,
    vn::fuseS4,    vn::fuseTransfer, sc::expandRowWords,
};

} // namespace

#endif // GNT_SIMD_NEON

//===----------------------------------------------------------------------===//
// Selection
//===----------------------------------------------------------------------===//

namespace {

bool cpuHasAvx2() {
#if GNT_SIMD_X86
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool cpuHasAvx512() {
#if GNT_SIMD_X86
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

/// Widest variant this machine supports.
const SolverKernels &bestKernels() {
#if GNT_SIMD_X86
  if (cpuHasAvx512())
    return Avx512Kernels;
  if (cpuHasAvx2())
    return Avx2Kernels;
#endif
#if GNT_SIMD_NEON
  return NeonKernels;
#else
  return ScalarKernels;
#endif
}

/// The process-wide selection; null until first use.
std::atomic<const SolverKernels *> Active{nullptr};

const SolverKernels *resolve() {
  if (const char *Env = std::getenv("GNT_KERNEL"))
    if (const SolverKernels *K = solverKernelByName(Env))
      return K;
  // Unknown / unsupported override names fall through to autodetect:
  // a stale GNT_KERNEL=avx512 on a machine without it must not turn
  // into a crash or a silent scalar pin.
  return &bestKernels();
}

} // namespace

const SolverKernels &gnt::solverKernels() {
  const SolverKernels *K = Active.load(std::memory_order_acquire);
  if (!K) {
    K = resolve();
    Active.store(K, std::memory_order_release);
  }
  return *K;
}

const char *gnt::solverKernelName() { return solverKernels().Name; }

const SolverKernels *gnt::solverKernelByName(std::string_view Name) {
  for (const SolverKernels *K : availableSolverKernels())
    if (Name == K->Name)
      return K;
  return nullptr;
}

std::vector<const SolverKernels *> gnt::availableSolverKernels() {
  std::vector<const SolverKernels *> Out;
  Out.push_back(&ScalarKernels);
#if GNT_SIMD_X86
  if (cpuHasAvx2())
    Out.push_back(&Avx2Kernels);
  if (cpuHasAvx512())
    Out.push_back(&Avx512Kernels);
#endif
#if GNT_SIMD_NEON
  Out.push_back(&NeonKernels);
#endif
  return Out;
}

gnt::detail::ScopedKernelOverride::ScopedKernelOverride(
    const SolverKernels &K) {
  Prev = &solverKernels(); // Force resolution so restore is well-defined.
  Active.store(&K, std::memory_order_release);
}

gnt::detail::ScopedKernelOverride::~ScopedKernelOverride() {
  Active.store(Prev, std::memory_order_release);
}
