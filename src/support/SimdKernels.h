//===- support/SimdKernels.h - Runtime-dispatched row kernels --*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver's hot loops — the row primitives, the fused S1/S3/S4
/// sweeps, Eq. 9's fuseGiveLoc, the spec-compiled gen/kill transfer,
/// and the ItemClasses whole-word expansion program — behind one
/// registry of function pointers with explicit-SIMD variants. The
/// default build carries no architecture flags, so the compiler's
/// auto-vectorization of those loops bottoms out at the baseline ISA
/// (SSE2 on x86-64); the variants here are hand-written with AVX2 /
/// AVX-512 (x86) or NEON (aarch64) intrinsics inside
/// `__attribute__((target))` functions, which lets one ordinary
/// translation unit hold all of them and a CPUID probe pick the widest
/// one the machine actually has.
///
/// Every variant is a pure per-word bitwise evaluation of the same
/// equations — no reassociation of anything but bit operations, no
/// cross-lane state — so all variants are byte-identical by
/// construction, and the fuzz oracle plus the PropertyTest grid keep
/// them that way against the classic solver.
///
/// Selection happens once, on first use:
///   1. `GNT_KERNEL=scalar|avx2|avx512|neon` forces a variant when it
///      names one that is compiled in AND supported by this CPU;
///      anything else falls through to
///   2. runtime feature detection (`__builtin_cpu_supports`), widest
///      first.
///
/// All variants use unaligned loads, so alignment is a performance
/// property, not a correctness one: DataflowMatrix pads and aligns its
/// rows (64-byte base, stride a multiple of 8 words) so wide loads
/// never straddle rows, while scratch rows in plain vectors still work.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SUPPORT_SIMDKERNELS_H
#define GNT_SUPPORT_SIMDKERNELS_H

#include "support/BitVector.h"

#include <cstddef>
#include <string_view>
#include <vector>

namespace gnt {

struct ExpandWordOp; // support/ItemClasses.h

/// One selectable set of solver kernels. All pointers are always
/// non-null; `Name` is the stable identifier used by `GNT_KERNEL`,
/// `gntc --list-kernels`, the fuzz oracle, and bench output.
struct SolverKernels {
  using Word = BitVector::Word;

  const char *Name;

  /// D = A (W words).
  void (*RowCopy)(Word *D, const Word *A, unsigned W);
  /// D |= A.
  void (*RowOr)(Word *D, const Word *A, unsigned W);
  /// D &= A.
  void (*RowAnd)(Word *D, const Word *A, unsigned W);
  /// D |= A & ~B.
  void (*RowOrAndNot)(Word *D, const Word *A, const Word *B, unsigned W);

  /// Eq. 9 finisher: D = (D | Give | Take) & ~Steal.
  void (*FuseGiveLoc)(unsigned W, Word *D, const Word *Give, const Word *Take,
                      const Word *Steal);

  /// The fused S1 step (Eq. 1-3, 5-8); operand roles and the HoistMask
  /// convention are documented at the call site in GiveNTake.cpp.
  void (*FuseS1)(unsigned W, const Word *StealI, const Word *GiveI,
                 const Word *TakeI, const Word *SumSteal, const Word *SumGive,
                 const Word *EntryBlock, const Word *EntryTaken,
                 const Word *EntryTake, const Word *FwdBlock,
                 const Word *EfTake, Word HoistMask, const Word *TakenOut,
                 Word *RSteal, Word *RGive, Word *RBlock, Word *RTake,
                 Word *RTakenIn, Word *RBlockLoc, Word *RTakeLoc);

  /// The fused S3 step (Eq. 11-13); RGivenIn arrives holding the
  /// predecessor meet and is rewritten in place.
  void (*FuseS3)(unsigned W, Word *RGivenIn, const Word *PredUnion,
                 const Word *HdrGiven, const Word *HdrSteal,
                 const Word *NTakenIn, const Word *NUrgent, const Word *NGive,
                 const Word *NSteal, Word *RGiven, Word *RGivenOut);

  /// The fused S4 step (Eq. 14-15); RResOut arrives holding the
  /// successor union. Returns the OR over the final RES_out words
  /// (no-critical-edge assert). FlipEq14 is the fuzz fault injection.
  Word (*FuseS4)(unsigned W, bool FlipEq14, const Word *RGiven,
                 const Word *RGivenIn, const Word *RGivenOut, Word *RResIn,
                 Word *RResOut);

  /// Spec-compiled gen/kill transfer: Out = (In & ~Kill) | Gen.
  /// Returns the OR of (old ^ new) over Out so callers get change
  /// detection for free.
  Word (*FuseTransfer)(unsigned W, Word *Out, const Word *In, const Word *Gen,
                       const Word *Kill);

  /// Executes a compiled ItemClasses whole-word expansion program
  /// (same semantics as expandRowWords in support/ItemClasses.h,
  /// including the all-zero-source memset fast path).
  void (*ExpandRowWords)(Word *Dst, unsigned DstWords, const Word *Src,
                         unsigned SrcWords, const ExpandWordOp *Ops,
                         std::size_t NumOps);
};

/// The process-wide selected kernel set. First call resolves the
/// `GNT_KERNEL` override / CPUID probe and caches the result; later
/// calls are one relaxed atomic load.
const SolverKernels &solverKernels();

/// Name of the active kernel set (== solverKernels().Name).
const char *solverKernelName();

/// Looks a variant up by name; returns nullptr when the name is
/// unknown, not compiled into this binary, or unsupported by this CPU.
const SolverKernels *solverKernelByName(std::string_view Name);

/// Every variant this binary can run on this machine, scalar first.
/// Tests, the fuzz differential, and the bench roofline iterate this.
std::vector<const SolverKernels *> availableSolverKernels();

namespace detail {

/// Test/bench-only: forces the process-wide kernel selection for the
/// lifetime of the object. Not safe to use concurrently with running
/// solves (production code never overrides; it only reads).
class ScopedKernelOverride {
public:
  explicit ScopedKernelOverride(const SolverKernels &K);
  ~ScopedKernelOverride();
  ScopedKernelOverride(const ScopedKernelOverride &) = delete;
  ScopedKernelOverride &operator=(const ScopedKernelOverride &) = delete;

private:
  const SolverKernels *Prev;
};

} // namespace detail

} // namespace gnt

#endif // GNT_SUPPORT_SIMDKERNELS_H
