//===- support/ShardSchedule.h - Work-stealing shard scheduler -*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scheduling for the sharded solve. The solver splits the universe's
/// word range into disjoint windows; because no equation crosses word
/// lanes, any schedule of any partition produces byte-identical
/// results, so scheduling is a pure performance decision:
///
///  - `splitRange` is the static partition (the historical behavior):
///    one window per shard, submitted to a FIFO pool.
///  - `runChunks` is the work-stealing alternative for skewed work —
///    compressed universes make window costs wildly uneven (all-zero
///    rows degrade to a memset while segment-dense rows pay the full
///    expand program), and ItemClasses sizes follow the program, not
///    the partition. The range is oversplit into several chunks per
///    worker; each worker drains its own deque from the back and
///    steals from a victim's front when empty.
///
/// NUMA: chunk data is written first by the worker that executes the
/// chunk (the solver's arenas are allocated untouched), so first-touch
/// page placement lands each window on the executing worker's node.
/// `runChunks` additionally pins workers round-robin across the nodes
/// reported by /sys/devices/system/node (libnuma is consulted for the
/// node count when the header is available, but is not required), so
/// on multi-node machines the stolen tail is the only remote traffic.
/// On single-node machines all of this is a no-op.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SUPPORT_SHARDSCHEDULE_H
#define GNT_SUPPORT_SHARDSCHEDULE_H

#include <functional>
#include <vector>

namespace gnt {

/// A half-open index window [Begin, End) of whatever unit the caller
/// shards over (universe words, arena rows).
struct WorkChunk {
  unsigned Begin = 0;
  unsigned End = 0;
};

/// Splits [0, Total) into \p Parts balanced half-open chunks (the
/// same arithmetic the static sharded solve has always used). Parts
/// is clamped to Total; empty when Total is zero.
std::vector<WorkChunk> splitRange(unsigned Total, unsigned Parts);

/// The machine's NUMA topology, probed once from sysfs.
class NumaTopology {
public:
  static const NumaTopology &get();

  unsigned nodes() const { return static_cast<unsigned>(NodeCpus.size()); }

  /// Pins the calling thread to the CPUs of \p Node (modulo the node
  /// count). No-op on single-node machines, unknown topologies, or
  /// when the platform has no affinity call.
  void pinThreadToNode(unsigned Node) const;

private:
  NumaTopology();
  std::vector<std::vector<int>> NodeCpus; ///< CPU ids per node.
};

/// Executes \p Fn over every chunk on \p Workers threads with
/// per-worker deques and work stealing; returns when all chunks ran.
/// Workers <= 1 (or a single chunk) runs everything inline on the
/// caller. When \p PinNuma is set and the machine has more than one
/// node, worker threads are pinned round-robin across nodes before
/// touching any chunk (first-touch placement).
void runChunks(const std::vector<WorkChunk> &Chunks, unsigned Workers,
               bool PinNuma, const std::function<void(WorkChunk)> &Fn);

} // namespace gnt

#endif // GNT_SUPPORT_SHARDSCHEDULE_H
