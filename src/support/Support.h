//===- support/Support.h - Misc small utilities ----------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small utilities shared across the library: unreachable marker, string
/// joining, and indentation helpers used by the various printers.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SUPPORT_SUPPORT_H
#define GNT_SUPPORT_SUPPORT_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace gnt {

/// Marks a point in the code that must never be reached; aborts with a
/// message if it is.
[[noreturn]] inline void gntUnreachable(const char *Msg) {
  std::fprintf(stderr, "UNREACHABLE executed: %s\n", Msg);
  std::abort();
}

/// Joins the elements of \p Parts with \p Sep.
inline std::string join(const std::vector<std::string> &Parts,
                        const std::string &Sep) {
  std::string R;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      R += Sep;
    R += Parts[I];
  }
  return R;
}

/// Returns \p Level * 2 spaces, used by the AST and annotation printers.
inline std::string indent(unsigned Level) {
  return std::string(static_cast<size_t>(Level) * 2, ' ');
}

/// Formats a signed integer as a compact string.
inline std::string itostr(long long V) {
  std::ostringstream OS;
  OS << V;
  return OS.str();
}

} // namespace gnt

#endif // GNT_SUPPORT_SUPPORT_H
