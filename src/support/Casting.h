//===- support/Casting.h - LLVM-style isa/cast/dyn_cast --------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-rolled RTTI scheme in the style of llvm/Support/Casting.h.
/// Classes opt in by providing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SUPPORT_CASTING_H
#define GNT_SUPPORT_CASTING_H

#include <cassert>

namespace gnt {

/// Returns true if \p V is an instance of \p To.
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> on a null pointer");
  return To::classof(V);
}

/// Checked downcast; asserts that \p V really is a \p To.
template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<To *>(V);
}

template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<const To *>(V);
}

/// Checking downcast; returns null if \p V is not a \p To.
template <typename To, typename From> To *dyn_cast(From *V) {
  return isa<To>(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

} // namespace gnt

#endif // GNT_SUPPORT_CASTING_H
