//===- support/Hashing.h - Content hashing helpers -------------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 64-bit FNV-1a hashing, used by the compilation service to key its
/// result cache on (canonicalized options, source) content. FNV-1a is
/// not cryptographic; it is small, dependency-free, byte-order stable
/// and good enough for cache keys whose collisions only cost a wrong
/// cache hit on adversarial input we do not serve.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SUPPORT_HASHING_H
#define GNT_SUPPORT_HASHING_H

#include <cstdint>
#include <cstdio>
#include <string>

namespace gnt {

inline constexpr std::uint64_t FnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t FnvPrime = 0x100000001b3ull;

/// Folds the bytes of \p S into \p H (FNV-1a step). Chain calls to hash
/// multi-part content without concatenating; include an explicit
/// separator byte between parts to keep ("ab","c") != ("a","bc").
inline std::uint64_t fnv1aAppend(std::uint64_t H, const std::string &S) {
  for (unsigned char C : S) {
    H ^= C;
    H *= FnvPrime;
  }
  return H;
}

/// 64-bit FNV-1a of \p S.
inline std::uint64_t fnv1a(const std::string &S) {
  return fnv1aAppend(FnvOffsetBasis, S);
}

/// Fixed-width lowercase hex rendering of a hash, for logs and JSON.
inline std::string hashToHex(std::uint64_t H) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return std::string(Buf);
}

} // namespace gnt

#endif // GNT_SUPPORT_HASHING_H
