//===- support/Json.h - Minimal JSON emission helpers ----------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny hand-rolled JSON writer used by the structured diagnostics
/// renderer (`gntc --audit-json`). No external dependencies: the output
/// vocabulary is small (objects, arrays, strings, integers, booleans), so
/// a streaming writer with explicit escaping is all we need.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SUPPORT_JSON_H
#define GNT_SUPPORT_JSON_H

#include <sstream>
#include <string>

namespace gnt {

/// Escapes \p S for inclusion inside a double-quoted JSON string.
inline std::string jsonEscape(const std::string &S) {
  std::string R;
  R.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      R += "\\\"";
      break;
    case '\\':
      R += "\\\\";
      break;
    case '\n':
      R += "\\n";
      break;
    case '\r':
      R += "\\r";
      break;
    case '\t':
      R += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        R += Buf;
      } else {
        R += C;
      }
    }
  }
  return R;
}

/// Streaming writer for a flat mix of objects and arrays. The caller is
/// responsible for well-formedness (balanced begin/end calls); the writer
/// tracks comma placement only.
class JsonWriter {
public:
  std::string str() const { return OS.str(); }

  JsonWriter &beginObject() {
    sep();
    OS << "{";
    First = true;
    return *this;
  }
  JsonWriter &endObject() {
    OS << "}";
    First = false;
    return *this;
  }
  JsonWriter &beginArray(const std::string &Key = "") {
    sep();
    if (!Key.empty())
      OS << "\"" << jsonEscape(Key) << "\":";
    OS << "[";
    First = true;
    return *this;
  }
  JsonWriter &endArray() {
    OS << "]";
    First = false;
    return *this;
  }

  JsonWriter &key(const std::string &K) {
    sep();
    OS << "\"" << jsonEscape(K) << "\":";
    First = true; // The value that follows needs no comma.
    return *this;
  }
  JsonWriter &value(const std::string &V) {
    sep();
    OS << "\"" << jsonEscape(V) << "\"";
    return *this;
  }
  JsonWriter &value(const char *V) { return value(std::string(V)); }
  JsonWriter &value(long long V) {
    sep();
    OS << V;
    return *this;
  }
  JsonWriter &value(unsigned V) { return value(static_cast<long long>(V)); }
  JsonWriter &value(bool V) {
    sep();
    OS << (V ? "true" : "false");
    return *this;
  }
  /// Emits \p Token verbatim as a value: a pre-rendered number (doubles
  /// have no value() overload) or an embedded pre-rendered document.
  /// The caller guarantees the token is valid JSON.
  JsonWriter &raw(const std::string &Token) {
    sep();
    OS << Token;
    return *this;
  }

private:
  void sep() {
    if (!First)
      OS << ",";
    First = false;
  }

  std::ostringstream OS;
  bool First = true;
};

} // namespace gnt

#endif // GNT_SUPPORT_JSON_H
