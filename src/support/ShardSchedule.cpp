//===- support/ShardSchedule.cpp - Work-stealing shard scheduler -----------===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ShardSchedule.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif
#if __has_include(<numa.h>)
// libnuma is optional: when the dev headers happen to be present we use
// it only to cross-check availability; the topology itself always comes
// from sysfs so the two paths cannot disagree about node contents.
#include <numa.h>
#define GNT_HAVE_LIBNUMA 1
#endif

using namespace gnt;

std::vector<WorkChunk> gnt::splitRange(unsigned Total, unsigned Parts) {
  std::vector<WorkChunk> Chunks;
  if (!Total)
    return Chunks;
  Parts = std::min(std::max(Parts, 1u), Total);
  Chunks.reserve(Parts);
  for (unsigned S = 0; S != Parts; ++S) {
    unsigned A = static_cast<unsigned>(
        static_cast<unsigned long long>(Total) * S / Parts);
    unsigned B = static_cast<unsigned>(
        static_cast<unsigned long long>(Total) * (S + 1) / Parts);
    if (A != B)
      Chunks.push_back({A, B});
  }
  return Chunks;
}

//===----------------------------------------------------------------------===//
// NUMA topology
//===----------------------------------------------------------------------===//

namespace {

/// Parses a sysfs cpulist ("0-3,8,10-11") into CPU ids; returns an
/// empty list on any malformed input.
std::vector<int> parseCpuList(const std::string &Text) {
  std::vector<int> Cpus;
  std::istringstream In(Text);
  std::string Piece;
  while (std::getline(In, Piece, ',')) {
    while (!Piece.empty() && std::isspace(static_cast<unsigned char>(
                                 Piece.back())))
      Piece.pop_back();
    if (Piece.empty())
      continue;
    std::size_t Dash = Piece.find('-');
    try {
      if (Dash == std::string::npos) {
        Cpus.push_back(std::stoi(Piece));
      } else {
        int Lo = std::stoi(Piece.substr(0, Dash));
        int Hi = std::stoi(Piece.substr(Dash + 1));
        if (Hi < Lo || Hi - Lo > 4096)
          return {};
        for (int C = Lo; C <= Hi; ++C)
          Cpus.push_back(C);
      }
    } catch (...) {
      return {};
    }
  }
  return Cpus;
}

} // namespace

NumaTopology::NumaTopology() {
#if defined(__linux__)
#if GNT_HAVE_LIBNUMA
  // When libnuma says NUMA is unavailable, trust it and skip the scan:
  // the kernel would expose a single node anyway.
  if (numa_available() < 0)
    return;
#endif
  for (unsigned Node = 0;; ++Node) {
    std::ifstream In("/sys/devices/system/node/node" +
                     std::to_string(Node) + "/cpulist");
    if (!In)
      break;
    std::string Line;
    std::getline(In, Line);
    std::vector<int> Cpus = parseCpuList(Line);
    if (Cpus.empty())
      break;
    NodeCpus.push_back(std::move(Cpus));
  }
#endif
}

const NumaTopology &NumaTopology::get() {
  static NumaTopology T;
  return T;
}

void NumaTopology::pinThreadToNode(unsigned Node) const {
#if defined(__linux__)
  if (NodeCpus.size() < 2)
    return; // Single node (or unknown): placement cannot matter.
  const std::vector<int> &Cpus = NodeCpus[Node % NodeCpus.size()];
  cpu_set_t Set;
  CPU_ZERO(&Set);
  for (int C : Cpus)
    if (C >= 0 && C < CPU_SETSIZE)
      CPU_SET(C, &Set);
  // Best effort: a failed pin costs locality, never correctness.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(Set), &Set);
#else
  (void)Node;
#endif
}

//===----------------------------------------------------------------------===//
// Work stealing
//===----------------------------------------------------------------------===//

namespace {

/// One worker's chunk queue. A plain mutex per deque is enough here:
/// chunks are coarse (thousands of words / hundreds of rows each), so
/// queue traffic is a rounding error next to the sweeps themselves.
struct ChunkDeque {
  std::mutex M;
  std::deque<WorkChunk> Q;

  bool popBack(WorkChunk &C) {
    std::lock_guard<std::mutex> Lock(M);
    if (Q.empty())
      return false;
    C = Q.back();
    Q.pop_back();
    return true;
  }
  bool stealFront(WorkChunk &C) {
    std::lock_guard<std::mutex> Lock(M);
    if (Q.empty())
      return false;
    C = Q.front();
    Q.pop_front();
    return true;
  }
};

} // namespace

void gnt::runChunks(const std::vector<WorkChunk> &Chunks, unsigned Workers,
                    bool PinNuma, const std::function<void(WorkChunk)> &Fn) {
  if (Chunks.empty())
    return;
  Workers = static_cast<unsigned>(
      std::min<std::size_t>(std::max(Workers, 1u), Chunks.size()));
  if (Workers <= 1) {
    for (const WorkChunk &C : Chunks)
      Fn(C);
    return;
  }

  // Round-robin initial distribution: neighbors land on different
  // workers, so a hot region of the range is shared rather than
  // serialized on whoever owned it.
  std::vector<ChunkDeque> Deques(Workers);
  for (std::size_t I = 0; I != Chunks.size(); ++I)
    Deques[I % Workers].Q.push_back(Chunks[I]);

  std::atomic<unsigned> Remaining{static_cast<unsigned>(Chunks.size())};
  const NumaTopology &Topo = NumaTopology::get();

  auto Work = [&](unsigned Self) {
    if (PinNuma)
      Topo.pinThreadToNode(Self % std::max(Topo.nodes(), 1u));
    WorkChunk C;
    for (;;) {
      if (Deques[Self].popBack(C)) {
        Fn(C);
        Remaining.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      // Own deque dry: steal the oldest chunk from the next victim
      // that has one. Stealing from the *front* takes the chunk the
      // owner would reach last, minimizing contention on its hot end.
      bool Stole = false;
      for (unsigned V = 1; V != Workers; ++V) {
        if (Deques[(Self + V) % Workers].stealFront(C)) {
          Fn(C);
          Remaining.fetch_sub(1, std::memory_order_relaxed);
          Stole = true;
          break;
        }
      }
      if (!Stole) {
        // Every deque is empty; in-flight chunks belong to other
        // workers and cannot be helped, so this worker is done.
        return;
      }
    }
  };

  std::vector<std::thread> Threads;
  Threads.reserve(Workers - 1);
  for (unsigned T = 1; T != Workers; ++T)
    Threads.emplace_back(Work, T);
  Work(0);
  for (std::thread &T : Threads)
    T.join();
  (void)Remaining; // All chunks ran: deques drained and threads joined.
}
