//===- support/DataflowMatrix.h - Flat bit-set arena -----------*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat arena of equally sized bit sets: one contiguous uint64_t
/// allocation holding NumRows rows of NumBits bits each, every row
/// starting on a word boundary. This is the backing store for the
/// GIVE-N-TAKE solver's dataflow variables — a (field x node) matrix of
/// item sets — replacing one BitVector heap allocation per node per
/// equation with straight-line word loops over stable pointers.
///
/// Rows are exposed as raw `Word *` spans rather than wrapped views:
/// the solver's inner loops fuse several equations into one pass over
/// the words of a node, and a pointer-plus-index idiom keeps that code
/// free of abstraction overhead. The tail-word invariant of BitVector
/// (bits past NumBits in the last word stay zero) is maintained by
/// construction and by the masked mutators below; the bitwise AND / OR
/// / ANDNOT combinations the equations use preserve it automatically.
///
/// Alignment contract (support/SimdKernels.h): the base allocation is
/// 64-byte aligned and the distance between consecutive rows — the
/// stride, rowStride() — is padded up to a multiple of 8 words, so a
/// row that starts a 512-bit load never straddles into its neighbor
/// and every row starts on a cache-line/lane boundary. The padding
/// words are storage only: row(), extractRow(), rowNone(), and the
/// solver all address exactly wordsPerRow() words per row, and
/// borrowWords exports read exactly that many, so padding can never
/// leak into results. Debug builds poison Uninit storage (0xA5) to
/// make any read-before-write or padding leak loud.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SUPPORT_DATAFLOWMATRIX_H
#define GNT_SUPPORT_DATAFLOWMATRIX_H

#include "support/BitVector.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define GNT_DATAFLOWMATRIX_HAVE_MMAP 1
#endif

namespace gnt {

/// Contiguous (row x bit) matrix of dataflow sets.
class DataflowMatrix {
public:
  using Word = BitVector::Word;
  static constexpr unsigned WordBits = BitVector::WordBits;

  /// Rows are padded to a multiple of this many words (one 64-byte
  /// SIMD lane) and the base allocation is aligned to match.
  static constexpr unsigned LaneWords = 8;
  static constexpr std::size_t LaneBytes = LaneWords * sizeof(Word);

  /// Tag requesting an uninitialized arena (see the tagged constructor).
  struct UninitTag {};
  static constexpr UninitTag Uninit{};

  /// Tag requesting a lazily zeroed arena (see the tagged constructor).
  struct LazyZeroedTag {};
  static constexpr LazyZeroedTag LazyZeroed{};

  DataflowMatrix() = default;

  /// Creates \p NumRows rows of \p NumBits zeroed bits in one
  /// allocation.
  DataflowMatrix(unsigned NumRows, unsigned NumBits)
      : DataflowMatrix(NumRows, NumBits, Uninit) {
    clear();
  }

  /// Creates the arena without zero-filling it. For writers that assign
  /// every row exactly once (the GNT solver), the zero-fill is a wasted
  /// full pass over a potentially tens-of-megabytes allocation; such
  /// callers must take care to write (or explicitly zero) every row
  /// they later read or expose.
  DataflowMatrix(unsigned NumRows, unsigned NumBits, UninitTag)
      : NRows(NumRows), NBits(NumBits),
        WPerRow((NumBits + WordBits - 1) / WordBits),
        WStride(padStride(WPerRow)),
        NWords(static_cast<std::size_t>(NumRows) * WStride),
        Words(allocWords(NWords)) {
#ifndef NDEBUG
    // Poison uninitialized storage so a row that is read (or exported)
    // before being written shows up as garbage with out-of-range tail
    // bits rather than as plausible leftover zeros.
    if (NWords)
      std::memset(Words, 0xA5, NWords * sizeof(Word));
#endif
  }

  /// Creates the arena zeroed, but lazily: the storage comes straight
  /// from an anonymous mmap, so pages that are never written are
  /// backed by the kernel's shared zero page and cost neither a memset
  /// pass nor physical memory. Worth it only when whole pages stay
  /// untouched — the compressed solve uses it for the all-bottom
  /// result, whose matrix is never written at all. Writers that touch
  /// even a few bytes of every page (rows are typically smaller than a
  /// page, so any per-row write does) fault the entire mapping and pay
  /// more than an eager memset; they should use Uninit and assign
  /// every word. Falls back to an eager zero-fill where mmap is
  /// unavailable.
  DataflowMatrix(unsigned NumRows, unsigned NumBits, LazyZeroedTag)
      : NRows(NumRows), NBits(NumBits),
        WPerRow((NumBits + WordBits - 1) / WordBits),
        WStride(padStride(WPerRow)),
        NWords(static_cast<std::size_t>(NumRows) * WStride) {
#if GNT_DATAFLOWMATRIX_HAVE_MMAP
    if (NWords) {
      void *P = ::mmap(nullptr, NWords * sizeof(Word),
                       PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS,
                       -1, 0);
      if (P == MAP_FAILED)
        throw std::bad_alloc();
      Words = static_cast<Word *>(P);
      Mapped = true;
      return;
    }
#endif
    Words = allocWords(NWords);
    clear();
  }

  DataflowMatrix(DataflowMatrix &&RHS) noexcept
      : NRows(RHS.NRows), NBits(RHS.NBits), WPerRow(RHS.WPerRow),
        WStride(RHS.WStride), NWords(RHS.NWords), Words(RHS.Words),
        Mapped(RHS.Mapped) {
    RHS.Words = nullptr;
    RHS.NWords = 0;
    RHS.Mapped = false;
  }
  DataflowMatrix &operator=(DataflowMatrix &&RHS) noexcept {
    if (this != &RHS) {
      release();
      NRows = RHS.NRows;
      NBits = RHS.NBits;
      WPerRow = RHS.WPerRow;
      WStride = RHS.WStride;
      NWords = RHS.NWords;
      Words = RHS.Words;
      Mapped = RHS.Mapped;
      RHS.Words = nullptr;
      RHS.NWords = 0;
      RHS.Mapped = false;
    }
    return *this;
  }
  DataflowMatrix(const DataflowMatrix &) = delete;
  DataflowMatrix &operator=(const DataflowMatrix &) = delete;
  ~DataflowMatrix() { release(); }

  unsigned rows() const { return NRows; }
  unsigned bits() const { return NBits; }
  unsigned wordsPerRow() const { return WPerRow; }

  /// Words between consecutive row starts; >= wordsPerRow(), padded to
  /// a LaneWords multiple. The words past wordsPerRow() are padding —
  /// storage, never data.
  unsigned rowStride() const { return WStride; }

  /// Total allocated words (rows() * rowStride()), for whole-arena
  /// copies such as the incremental solver's memo clone.
  std::size_t storageWords() const { return NWords; }

  /// Mask selecting the in-range bits of the last word of a row (all
  /// ones when NumBits is a multiple of the word size or zero).
  Word tailMask() const {
    unsigned Rem = NBits % WordBits;
    return Rem == 0 ? ~Word(0) : (~Word(0) >> (WordBits - Rem));
  }

  Word *row(unsigned R) {
    assert(R < NRows && "row out of range");
    return Words + static_cast<std::size_t>(R) * WStride;
  }
  const Word *row(unsigned R) const {
    assert(R < NRows && "row out of range");
    return Words + static_cast<std::size_t>(R) * WStride;
  }

  /// Zeroes every row.
  void clear() {
    if (NWords)
      std::memset(Words, 0, NWords * sizeof(Word));
  }

  /// Copies \p BV (which must have exactly bits() bits) into row \p R.
  void assignRow(unsigned R, const BitVector &BV) {
    assert(BV.size() == NBits && "row size mismatch");
    if (WPerRow)
      std::memcpy(row(R), BV.words(), WPerRow * sizeof(Word));
  }

  /// Materializes row \p R as a standalone BitVector.
  BitVector extractRow(unsigned R) const {
    return BitVector::fromWords(row(R), NBits);
  }

  /// Sets every bit of row \p R, respecting the tail-word invariant.
  void setRow(unsigned R) {
    Word *W = row(R);
    for (unsigned K = 0; K != WPerRow; ++K)
      W[K] = ~Word(0);
    if (WPerRow)
      W[WPerRow - 1] &= tailMask();
  }

  /// True if row \p R has no bit set.
  bool rowNone(unsigned R) const {
    const Word *W = row(R);
    for (unsigned K = 0; K != WPerRow; ++K)
      if (W[K])
        return false;
    return true;
  }

  /// True when every row honors the tail-word invariant (no bits past
  /// bits() in the last data word). This is the bottom-row contract an
  /// Uninit writer must establish before rows are exported through
  /// borrowWords; the solver asserts it in Debug builds, where the
  /// 0xA5 poison guarantees a never-written row trips it whenever
  /// bits() is not a word multiple.
  bool rowsExportable() const {
    if (!WPerRow)
      return true;
    const Word Tail = tailMask();
    for (unsigned R = 0; R != NRows; ++R)
      if (row(R)[WPerRow - 1] & ~Tail)
        return false;
    return true;
  }

private:
  static unsigned padStride(unsigned WordsPerRow) {
    return (WordsPerRow + LaneWords - 1) / LaneWords * LaneWords;
  }

  static Word *allocWords(std::size_t N) {
    if (!N)
      return nullptr;
    return static_cast<Word *>(
        ::operator new(N * sizeof(Word), std::align_val_t(LaneBytes)));
  }

  void release() {
    if (!Words)
      return;
#if GNT_DATAFLOWMATRIX_HAVE_MMAP
    if (Mapped) {
      ::munmap(Words, NWords * sizeof(Word));
      Words = nullptr;
      return;
    }
#endif
    ::operator delete(Words, std::align_val_t(LaneBytes));
    Words = nullptr;
  }

  unsigned NRows = 0;
  unsigned NBits = 0;
  unsigned WPerRow = 0;
  unsigned WStride = 0;
  std::size_t NWords = 0;
  Word *Words = nullptr; ///< Matrix storage; the class is move-only.
  bool Mapped = false;   ///< Storage came from mmap, not new[].
};

} // namespace gnt

#endif // GNT_SUPPORT_DATAFLOWMATRIX_H
