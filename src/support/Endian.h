//===- support/Endian.h - Byte-order stable integer codecs -----*- C++ -*-===//
//
// Part of the GIVE-N-TAKE reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian fixed-width integer encode/decode, used by the
/// persistent disk cache's entry headers. Serialized byte-for-byte so a
/// cache directory written on one host validates on any other; memcpy of
/// host integers would tie the on-disk format to the writing machine.
///
//===----------------------------------------------------------------------===//

#ifndef GNT_SUPPORT_ENDIAN_H
#define GNT_SUPPORT_ENDIAN_H

#include <cstdint>

namespace gnt {

/// Writes \p V into \p P[0..7], least significant byte first.
inline void putLe64(unsigned char *P, std::uint64_t V) {
  for (unsigned I = 0; I < 8; ++I)
    P[I] = static_cast<unsigned char>(V >> (8 * I));
}

/// Reads the 64-bit value at \p P[0..7] written by putLe64().
inline std::uint64_t getLe64(const unsigned char *P) {
  std::uint64_t V = 0;
  for (unsigned I = 0; I < 8; ++I)
    V |= static_cast<std::uint64_t>(P[I]) << (8 * I);
  return V;
}

} // namespace gnt

#endif // GNT_SUPPORT_ENDIAN_H
